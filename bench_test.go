// Benchmarks that regenerate every table and figure in the paper's
// evaluation (Figures 1-8) plus the ablations DESIGN.md calls out. Each
// figure benchmark runs a reduced configuration per iteration (two trials,
// smaller transfers) so `go test -bench` stays tractable; `cmd/expt`
// regenerates the full-size artifacts. Custom metrics report the headline
// quantity of each experiment so regressions in *results*, not just in
// speed, are visible.
//
// Micro-benchmarks for the hot substrate paths (checksums, marshalling,
// the modulation engine, distillation) follow the figure benchmarks.
package tracemod_test

import (
	"bytes"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"tracemod/internal/apps/ftp"
	"tracemod/internal/capture"
	"tracemod/internal/core"
	"tracemod/internal/distill"
	"tracemod/internal/emud"
	"tracemod/internal/emud/wal"
	"tracemod/internal/expt"
	"tracemod/internal/modulation"
	"tracemod/internal/obs"
	"tracemod/internal/obs/span"
	"tracemod/internal/packet"
	"tracemod/internal/pinger"
	"tracemod/internal/replay"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
	"tracemod/internal/tracefmt"
	"tracemod/internal/transport"
)

// benchOptions is the reduced per-iteration configuration. Workers rides
// the machine's parallelism — output is identical at any worker count, so
// the figure benchmarks measure the parallel harness as shipped.
func benchOptions() expt.Options {
	o := expt.Default()
	o.Trials = 2
	o.FTPSize = 4 << 20
	o.Workers = runtime.NumCPU()
	return o
}

// BenchmarkFig1DelayCompensation regenerates Figure 1: FTP store/fetch
// over the synthetic WaveLAN-like trace with and without compensation.
func BenchmarkFig1DelayCompensation(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig1(o)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.ThroughputMbps3[0], "store-Mbps")
		b.ReportMetric(last.ThroughputMbps3[1], "fetchraw-Mbps")
		b.ReportMetric(last.ThroughputMbps3[2], "fetchcomp-Mbps")
	}
}

func benchScenarioFigure(b *testing.B, sc scenario.Scenario) {
	b.Helper()
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := expt.FigScenario(sc, o)
		if err != nil {
			b.Fatal(err)
		}
		if sc.Motion {
			b.ReportMetric(float64(len(fig.Points)), "legs")
		} else {
			b.ReportMetric(float64(fig.SignalH.N), "samples")
		}
	}
}

// BenchmarkFig2PorterTraces regenerates Figure 2's per-checkpoint series.
func BenchmarkFig2PorterTraces(b *testing.B) { benchScenarioFigure(b, scenario.Porter) }

// BenchmarkFig3FlagstaffTraces regenerates Figure 3's series.
func BenchmarkFig3FlagstaffTraces(b *testing.B) { benchScenarioFigure(b, scenario.Flagstaff) }

// BenchmarkFig4WeanTraces regenerates Figure 4's series.
func BenchmarkFig4WeanTraces(b *testing.B) { benchScenarioFigure(b, scenario.Wean) }

// BenchmarkFig5ChatterboxTraces regenerates Figure 5's histograms.
func BenchmarkFig5ChatterboxTraces(b *testing.B) { benchScenarioFigure(b, scenario.Chatterbox) }

// BenchmarkFig6Web regenerates Figure 6 (Web benchmark table) on one
// scenario per iteration to bound cost; the metric is the modulated/real
// elapsed ratio for Porter.
func BenchmarkFig6Web(b *testing.B) {
	o := benchOptions()
	comp, err := expt.MeasureCompensation(o)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := expt.Collect(scenario.Porter, 0, o)
		if err != nil {
			b.Fatal(err)
		}
		live, err := expt.RunLive(scenario.Porter, expt.BenchWeb, 0, o)
		if err != nil {
			b.Fatal(err)
		}
		mod, err := expt.RunModulated(res.Replay, expt.BenchWeb, 0, comp, o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mod.Elapsed.Seconds()/live.Elapsed.Seconds(), "mod/real")
	}
}

// BenchmarkFig7FTP regenerates Figure 7 (FTP table, reduced size).
func BenchmarkFig7FTP(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		tbl, err := expt.Fig7FTP(o)
		if err != nil {
			b.Fatal(err)
		}
		agree := 0
		for _, row := range tbl.Rows {
			if row.Send.Agrees() {
				agree++
			}
			if row.Recv.Agrees() {
				agree++
			}
		}
		b.ReportMetric(float64(agree), "cells-agreeing")
		b.ReportMetric(tbl.EthernetSend.Mean, "eth-send-s")
	}
}

// BenchmarkFig8Andrew regenerates Figure 8 on one scenario per iteration;
// the metric is the modulated/real total-time ratio for Wean.
func BenchmarkFig8Andrew(b *testing.B) {
	o := benchOptions()
	comp, err := expt.MeasureCompensation(o)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := expt.Collect(scenario.Wean, 0, o)
		if err != nil {
			b.Fatal(err)
		}
		live, err := expt.RunLive(scenario.Wean, expt.BenchAndrew, 0, o)
		if err != nil {
			b.Fatal(err)
		}
		mod, err := expt.RunModulated(res.Replay, expt.BenchAndrew, 0, comp, o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mod.Elapsed.Seconds()/live.Elapsed.Seconds(), "mod/real")
		b.ReportMetric(mod.Phases.ScanDir.Seconds(), "mod-scandir-s")
	}
}

// BenchmarkAblationTickGranularity sweeps the modulation scheduling tick
// (the Section 5.4 conjecture).
func BenchmarkAblationTickGranularity(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := expt.AblateTick(o)
		if err != nil {
			b.Fatal(err)
		}
		// Exact-vs-10ms ScanDir difference: the under-delay magnitude.
		b.ReportMetric(r.Rows[2].ScanDir.Seconds()-r.Rows[0].ScanDir.Seconds(), "scandir-underdelay-s")
	}
}

// BenchmarkAblationCompensation sweeps the compensation magnitude.
func BenchmarkAblationCompensation(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := expt.AblateCompensation(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].FetchRatio, "fetch/store-raw")
		b.ReportMetric(r.Rows[2].FetchRatio, "fetch/store-comp")
	}
}

// BenchmarkAblationWindowWidth sweeps the distillation window width.
func BenchmarkAblationWindowWidth(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := expt.AblateWindow(o)
		if err != nil {
			b.Fatal(err)
		}
		best := r.Rows[0].ErrorPct
		for _, row := range r.Rows {
			if row.ErrorPct < best {
				best = row.ErrorPct
			}
		}
		b.ReportMetric(best, "best-err-pct")
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkChecksum measures the RFC 1071 checksum over an MTU payload.
func BenchmarkChecksum(b *testing.B) {
	buf := make([]byte, packet.MTU)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packet.Checksum(buf, 0)
	}
}

// BenchmarkMarshalTCP measures full-segment serialization with checksum.
func BenchmarkMarshalTCP(b *testing.B) {
	payload := make([]byte, transport.MSS)
	src, dst := packet.IP4(10, 0, 0, 1), packet.IP4(10, 0, 0, 2)
	f := packet.TCPFields{SrcPort: 1, DstPort: 2, Seq: 3, Ack: 4, Flags: packet.TCPAck}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packet.MarshalTCP(f, src, dst, payload)
	}
}

// BenchmarkDecode measures the zero-copy layer classification.
func BenchmarkDecode(b *testing.B) {
	seg := packet.MarshalTCP(packet.TCPFields{SrcPort: 1, DstPort: 2}, packet.IP4(10, 0, 0, 1), packet.IP4(10, 0, 0, 2), make([]byte, 512))
	ip := packet.MarshalIPv4(packet.IPv4Fields{TTL: 64, Protocol: packet.ProtoTCP, Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 0, 0, 2)}, seg)
	b.SetBytes(int64(len(ip)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := packet.Decode(ip); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSubmit measures one packet through the modulation layer
// (exact scheduling, no drops).
func BenchmarkEngineSubmit(b *testing.B) {
	s := sim.New(1)
	trace := replay.Constant(core.DelayParams{F: time.Millisecond, Vb: 1000, Vr: 100}, 0, time.Hour, time.Second)
	eng := modulation.NewEngine(modulation.SimClock{S: s}, &modulation.SliceSource{Trace: trace}, modulation.Config{Tick: -1, RNG: rand.New(rand.NewSource(1))})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Submit(simnet.Outbound, 1500, func() {})
		if i%1024 == 0 {
			b.StopTimer()
			s.RunUntil(s.Now().Add(time.Hour)) // drain scheduled deliveries
			b.StartTimer()
		}
	}
}

// BenchmarkEngineSubmitBatch measures the same workload entering the
// engine as 32-packet bursts through SubmitBatch — one lock acquisition,
// one clock read, and one cached-cursor walk amortized over the burst.
// ns/op is per packet, directly comparable to BenchmarkEngineSubmit.
func BenchmarkEngineSubmitBatch(b *testing.B) {
	s := sim.New(1)
	trace := replay.Constant(core.DelayParams{F: time.Millisecond, Vb: 1000, Vr: 100}, 0, time.Hour, time.Second)
	eng := modulation.NewEngine(modulation.SimClock{S: s}, &modulation.SliceSource{Trace: trace}, modulation.Config{Tick: -1, RNG: rand.New(rand.NewSource(1))})
	deliver := func() {}
	subs := make([]modulation.Submission, 32)
	for i := range subs {
		subs[i] = modulation.Submission{Dir: simnet.Outbound, Size: 1500, Deliver: deliver}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(subs) {
		eng.SubmitBatch(subs)
		if i%1024 == 0 {
			b.StopTimer()
			s.RunUntil(s.Now().Add(time.Hour)) // drain scheduled deliveries
			b.StartTimer()
		}
	}
}

// engineHotPathBench drives the packet hot path — immediate deliveries,
// no timers — with observability off or on, so the two configurations are
// directly comparable.
func engineHotPathBench(withObs bool) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		s := sim.New(1)
		// One hour-long tuple with zero costs: every packet takes the
		// immediate path and no scheduling timers fire.
		trace := replay.Constant(core.DelayParams{}, 0, time.Hour, time.Hour)
		cfg := modulation.Config{RNG: rand.New(rand.NewSource(1))}
		if withObs {
			cfg.Metrics = obs.NewRegistry()
			cfg.Tracer = obs.NewRingTracer(0)
		}
		eng := modulation.NewEngine(modulation.SimClock{S: s}, &modulation.SliceSource{Trace: trace}, cfg)
		deliver := func() {}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Submit(simnet.Outbound, 1500, deliver)
		}
	}
}

// BenchmarkEngineSubmitObsDisabled measures the packet hot path with
// telemetry off — the default every simulation and relay runs with.
func BenchmarkEngineSubmitObsDisabled(b *testing.B) { engineHotPathBench(false)(b) }

// BenchmarkEngineSubmitObsEnabled measures the same path with the full
// metric set and event tracer attached, to keep the observation cost
// visible.
func BenchmarkEngineSubmitObsEnabled(b *testing.B) { engineHotPathBench(true)(b) }

// TestObsDisabledHotPathAddsNoAllocs is the regression guard for the
// observability layer's core promise: with telemetry off, the packet hot
// path performs zero allocations per packet.
func TestObsDisabledHotPathAddsNoAllocs(t *testing.T) {
	res := testing.Benchmark(BenchmarkEngineSubmitObsDisabled)
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("obs-disabled hot path: %d allocs/op, want 0", allocs)
	}
}

// spanHotPathBench drives the span-threading entry point (SubmitSpan, the
// call every emud session and traced relay makes) on the immediate-delivery
// hot path, in the three tracing configurations that must stay cheap:
// tracing off entirely, a tracer attached but this packet unsampled, and
// no parent with a sampling tracer configured on the engine.
func spanHotPathBench(tr *span.Tracer) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		s := sim.New(1)
		trace := replay.Constant(core.DelayParams{}, 0, time.Hour, time.Hour)
		cfg := modulation.Config{RNG: rand.New(rand.NewSource(1)), Spans: tr}
		eng := modulation.NewEngine(modulation.SimClock{S: s}, &modulation.SliceSource{Trace: trace}, cfg)
		deliver := func() {}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.SubmitSpan(simnet.Outbound, 1500, nil, deliver, nil)
		}
	}
}

// BenchmarkEngineSubmitSpansDisabled measures SubmitSpan with no tracer at
// all — emud's default. It must match the plain Submit hot path: zero
// allocations, a nil check of overhead.
func BenchmarkEngineSubmitSpansDisabled(b *testing.B) { spanHotPathBench(nil)(b) }

// BenchmarkEngineSubmitSpansUnsampled measures SubmitSpan with a tracer
// configured at a tiny sampling rate, on packets the sampler skips — the
// steady-state cost of running a farm with -trace-sample 0.01. The only
// overhead allowed is the sampling counter.
func BenchmarkEngineSubmitSpansUnsampled(b *testing.B) {
	spanHotPathBench(span.New(span.Config{Sample: 1e-9, Seed: 1}))(b)
}

// TestSpansDisabledHotPathAddsNoAllocs guards the span layer's core
// promise: with tracing disabled — or enabled but the packet unsampled —
// the hot path performs zero allocations per packet.
func TestSpansDisabledHotPathAddsNoAllocs(t *testing.T) {
	if res := testing.Benchmark(BenchmarkEngineSubmitSpansDisabled); res.AllocsPerOp() != 0 {
		t.Fatalf("spans-disabled hot path: %d allocs/op, want 0", res.AllocsPerOp())
	}
	if res := testing.Benchmark(BenchmarkEngineSubmitSpansUnsampled); res.AllocsPerOp() != 0 {
		t.Fatalf("spans-unsampled hot path: %d allocs/op, want 0", res.AllocsPerOp())
	}
}

// BenchmarkDistill measures distillation of a five-minute collected trace.
func BenchmarkDistill(b *testing.B) {
	s := sim.New(3)
	tb := scenario.BuildWireless(s, scenario.Porter)
	pinger.Start(s, tb.Laptop, scenario.ServerIP, scenario.Porter.Profile.Duration())
	tr, err := capture.Collect(s, tb.Laptop.NIC(0), 1<<16, scenario.Porter.Profile.Duration(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := distill.Distill(tr, distill.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimTCPTransfer measures simulator throughput end to end: a
// 1 MB TCP transfer over a clean simulated LAN per iteration.
func BenchmarkSimTCPTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(int64(i))
		tb := scenario.BuildEthernet(s)
		ct, st := transport.NewTCP(tb.Laptop), transport.NewTCP(tb.Server)
		ftp.Serve(s, st)
		done := false
		s.Spawn("bench", func(p *sim.Proc) {
			if _, err := ftp.Transfer(p, ct, scenario.ModServer, ftp.Send, 1<<20, 0); err != nil {
				b.Error(err)
			}
			done = true
		})
		s.RunUntil(sim.Time(time.Hour))
		if !done {
			b.Fatal("transfer did not finish")
		}
	}
}

// BenchmarkCollection measures a full collection traversal (pinger +
// tracer + daemon) of the Wean scenario.
func BenchmarkCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(int64(i))
		tb := scenario.BuildWireless(s, scenario.Wean)
		pinger.Start(s, tb.Laptop, scenario.ServerIP, scenario.Wean.Profile.Duration())
		tr, err := capture.Collect(s, tb.Laptop.NIC(0), 1<<16, scenario.Wean.Profile.Duration(), "bench")
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Packets) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkEmudSessionFarm is the daemon load benchmark: ≥1000 concurrent
// sessions on one shared timer wheel, each holding packets in flight, per
// iteration. The reported metrics make the scaling claim checkable —
// goroutines-per-session must stay near zero (the wheel gives O(shards),
// not O(in-flight packets)) and every submitted packet must resolve to a
// delivery or a lottery drop during the drain.
func BenchmarkEmudSessionFarm(b *testing.B) {
	const (
		sessions   = 1000
		perSession = 10
	)
	tr := replay.Constant(core.DelayParams{F: 20 * time.Millisecond, Vb: 100}, 0.1, time.Hour, time.Hour)
	for i := 0; i < b.N; i++ {
		m := emud.NewManager(emud.Options{
			Shards:      8,
			Granularity: 10 * time.Millisecond,
			MaxSessions: sessions,
		})
		base := runtime.NumGoroutine()
		ss := make([]*emud.Session, sessions)
		for j := range ss {
			s, err := m.Create(emud.SessionConfig{Trace: tr, Loop: true, Seed: int64(j)})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Start(); err != nil {
				b.Fatal(err)
			}
			ss[j] = s
		}
		var delivered, dropped atomic.Int64
		for _, s := range ss {
			for k := 0; k < perSession; k++ {
				s.SubmitWithDrop(simnet.Outbound, 512, func() { delivered.Add(1) }, func() { dropped.Add(1) })
			}
		}
		peak := runtime.NumGoroutine()
		m.Close() // graceful drain: every in-flight packet resolves
		if got := delivered.Load() + dropped.Load(); got != sessions*perSession {
			b.Fatalf("resolved %d of %d packets", got, sessions*perSession)
		}
		b.ReportMetric(float64(peak-base)/sessions, "goroutines/session")
		b.ReportMetric(float64(delivered.Load())/sessions, "delivered/session")
		b.ReportMetric(float64(dropped.Load())/float64(sessions*perSession), "drop-rate")
	}
}

// streamIngestBytes synthesizes a collected trace of the given duration
// in wire format, the input one live-ingest upload carries. ~205 bytes
// per traced second: four echo pairs, sorted by timestamp.
func streamIngestBytes(seconds int) []byte {
	const s1, s2 = 60, 1028
	params := core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 800}
	tr := &tracefmt.Trace{Header: tracefmt.Header{Device: "wavelan0"}}
	seq := uint16(0)
	for sec := 0; sec < seconds; sec++ {
		base := int64(sec) * int64(time.Second)
		emit := func(size int, rtt time.Duration) {
			seq++
			tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
				At: base, Dir: tracefmt.DirOut, Size: uint16(size),
				Protocol: packet.ProtoICMP, ICMPType: packet.ICMPEcho, ID: 1, Seq: seq, RTT: -1,
			})
			tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
				At: base + int64(rtt), Dir: tracefmt.DirIn, Size: uint16(size),
				Protocol: packet.ProtoICMP, ICMPType: packet.ICMPEchoReply, ID: 1, Seq: seq, RTT: int64(rtt),
			})
		}
		emit(s1, params.RoundTrip(s1))
		emit(s2, params.RoundTrip(s2))
		emit(s2, params.RoundTrip(s2))
		emit(s2, params.RoundTrip(s2)+params.Vb.Cost(s2))
	}
	sort.SliceStable(tr.Packets, func(i, j int) bool { return tr.Packets[i].At < tr.Packets[j].At })
	var buf bytes.Buffer
	if err := tracefmt.WriteAll(&buf, tr); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// BenchmarkStreamIngest measures the durable live-ingest path end to end:
// a five-minute collected trace uploaded in 4 KB chunks through a
// WAL-backed stream (fsync batched on the interval policy, as a tuned
// deployment runs it), distilled incrementally, and sealed. Per-op bytes
// track the upload size so throughput is comparable across runs.
func BenchmarkStreamIngest(b *testing.B) {
	b.ReportAllocs()
	data := streamIngestBytes(300)
	m := emud.NewManager(emud.Options{
		Granularity:   time.Millisecond,
		StreamWALDir:  b.TempDir(),
		StreamWALSync: wal.SyncInterval,
	})
	defer m.Close()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := m.Streams().Create(emud.StreamConfig{Name: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		for off := 0; off < len(data); off += 4096 {
			end := off + 4096
			if end > len(data) {
				end = len(data)
			}
			if err := st.Write(data[off:end]); err != nil {
				b.Fatal(err)
			}
		}
		sum, err := st.Finish()
		if err != nil {
			b.Fatal(err)
		}
		if len(sum.Replay) == 0 {
			b.Fatal("empty distilled replay")
		}
		b.StopTimer()
		m.Streams().Delete("bench")
		b.StartTimer()
	}
}

// BenchmarkTraceWriteRead measures tracefmt serialization round trips.
func BenchmarkTraceWriteRead(b *testing.B) {
	tr := &tracefmt.Trace{Header: tracefmt.Header{Device: "wavelan0"}}
	for i := 0; i < 2000; i++ {
		tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
			At: int64(i) * 1e6, Size: 1028, Protocol: 1, ICMPType: 8, Seq: uint16(i), RTT: -1,
		})
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tracefmt.WriteAll(&buf, tr); err != nil {
			b.Fatal(err)
		}
		if _, err := tracefmt.ReadAll(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
