// Adaptive application under synthetic modulation — the Section 6 use
// case: "the use of synthetic traces to explore the behavior of an
// adaptive mobile system in response to step and impulse variations in
// bandwidth."
//
// A fidelity-adaptive fetcher runs over a modulated network while the
// replay trace steps down to a slow link and back. Its fidelity track
// (which object size it dares to fetch) visualizes agility.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"tracemod/internal/apps/adaptive"
	"tracemod/internal/core"
	"tracemod/internal/modulation"
	"tracemod/internal/packet"
	"tracemod/internal/replay"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
	"tracemod/internal/transport"
)

func main() {
	good := core.DelayParams{F: 2 * time.Millisecond, Vb: core.PerByteFromBandwidth(1.5e6), Vr: 0}
	bad := core.DelayParams{F: 20 * time.Millisecond, Vb: core.PerByteFromBandwidth(150e3), Vr: 0}

	// Step down at t=40s, impulse recovery structure via Impulse: good,
	// then 30s of bad, then good again.
	trace := replay.Impulse(good, bad, 0.005, 0.02, 40*time.Second, 30*time.Second, time.Hour, time.Second)

	s := sim.New(11)
	m := simnet.NewMedium(s, "lan", simnet.Ethernet10())
	cn := simnet.NewNode(s, "client")
	cn.AttachNIC(m, packet.IP4(10, 7, 0, 1), packet.IP4(255, 255, 255, 0))
	sn := simnet.NewNode(s, "server")
	sn.AttachNIC(m, packet.IP4(10, 7, 0, 2), packet.IP4(255, 255, 255, 0))
	eng := modulation.NewEngine(modulation.SimClock{S: s},
		&modulation.SliceSource{Trace: trace, Loop: true},
		modulation.Config{Tick: modulation.DefaultTick, RNG: s.RNG("mod")})
	modulation.Install(cn, eng)

	if _, err := adaptive.NewServer(s, transport.NewUDP(sn), nil); err != nil {
		log.Fatal(err)
	}
	client, err := adaptive.NewClient(transport.NewUDP(cn), packet.IP4(10, 7, 0, 2), adaptive.Config{})
	if err != nil {
		log.Fatal(err)
	}

	var samples []adaptive.Sample
	s.Spawn("fetcher", func(p *sim.Proc) {
		samples = client.Run(p, 2*time.Minute)
	})
	s.RunUntil(sim.Time(time.Hour))

	fmt.Println("== adaptive fidelity under a 30s bandwidth impulse (t=40-70s) ==")
	fmt.Println("level 0 = full 64KB object, 1 = 16KB, 2 = minimal 4KB")
	fmt.Println()
	for _, smp := range samples {
		bar := strings.Repeat("█", (2-smp.Level)*8+4)
		fmt.Printf("t=%5.1fs  L%d %-22s %6.0fms %7.0f kb/s\n",
			time.Duration(smp.At).Seconds(), smp.Level, bar,
			float64(smp.Elapsed)/float64(time.Millisecond), smp.EstBW/1e3)
	}

	ag := adaptive.MeasureAgility(samples, 40*time.Second, len(adaptive.DefaultLevels)-1)
	fmt.Printf("\nagility: mean level %.2f before the impulse, %.2f during/after;\n", ag.MeanLevelBefore, ag.MeanLevelAfter)
	if ag.AdaptDelay >= 0 {
		fmt.Printf("reached minimal fidelity %.1fs after the step down.\n", ag.AdaptDelay.Seconds())
	}
}
