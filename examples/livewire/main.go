// Livewire: shape REAL traffic. This example distills a trace from the
// simulated Porter walk, then stands up a real UDP echo server and a
// shaping relay on loopback and measures actual round-trip times through
// it — the same modulation engine as the simulator, on a real wire and a
// real clock.
//
// Run with: go run ./examples/livewire
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/expt"
	"tracemod/internal/livewire"
	"tracemod/internal/scenario"
)

func main() {
	// Distill a replay trace from the simulated Porter traversal.
	o := expt.Default()
	res, err := expt.Collect(scenario.Porter, 0, o)
	if err != nil {
		log.Fatalf("collect: %v", err)
	}
	fmt.Printf("distilled Porter: %s\n", res.Describe())

	// A real UDP echo server on loopback.
	echo, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer echo.Close()
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, addr, err := echo.ReadFromUDP(buf)
			if err != nil {
				return
			}
			echo.WriteToUDP(buf[:n], addr)
		}
	}()

	// The shaping relay in front of it.
	relay, err := livewire.NewRelay("127.0.0.1:0", echo.LocalAddr().String(), livewire.Config{
		Trace: res.Replay,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer relay.Close()
	fmt.Printf("relay %v -> echo %v\n\n", relay.Addr(), echo.LocalAddr())

	// Ping through the relay with two payload sizes, like the collection
	// workload itself would.
	client, err := net.DialUDP("udp", nil, relay.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.SetReadDeadline(time.Now().Add(30 * time.Second))

	measure := func(size, count int) {
		payload := make([]byte, size)
		buf := make([]byte, 64*1024)
		lost := 0
		var rtts []time.Duration
		for i := 0; i < count; i++ {
			start := time.Now()
			if _, err := client.Write(payload); err != nil {
				log.Fatal(err)
			}
			client.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, err := client.Read(buf); err != nil {
				lost++
				continue
			}
			rtts = append(rtts, time.Since(start))
		}
		var sum time.Duration
		for _, r := range rtts {
			sum += r
		}
		mean := time.Duration(0)
		if len(rtts) > 0 {
			mean = sum / time.Duration(len(rtts))
		}
		// The model predicts 2(F + sV) for this packet size.
		tuple := res.Replay.At(0, false)
		predicted := core.DelayParams{F: tuple.F, Vb: tuple.Vb, Vr: tuple.Vr}.RoundTrip(size + 28)
		fmt.Printf("%5dB x%2d: mean rtt %8v (model ≈ %8v), lost %d\n",
			size, count, mean.Round(100*time.Microsecond), predicted.Round(100*time.Microsecond), lost)
	}

	fmt.Println("real round trips through the shaped relay:")
	measure(32, 10)
	measure(1000, 10)
	fmt.Printf("\nrelay stats: %+v\n", relay.Stats())
}
