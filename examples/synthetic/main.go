// Synthetic traces (Section 6): modulation is not limited to recorded
// networks. This example subjects an FTP transfer to step and impulse
// bandwidth variations that no physical walk would produce on demand —
// the technique the authors used to study adaptive mobile systems.
//
// Run with: go run ./examples/synthetic
package main

import (
	"fmt"
	"log"
	"time"

	"tracemod"
	"tracemod/internal/apps/ftp"
	"tracemod/internal/core"
	"tracemod/internal/modulation"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/transport"
)

// transferUnder runs a 4 MB FTP send on an isolated Ethernet modulated by
// the trace, reporting progress at quarter marks so the step/impulse is
// visible in the timings.
func transferUnder(name string, trace core.Trace) {
	s := sim.New(7)
	tb := scenario.BuildEthernet(s)
	dev := modulation.StartDaemon(s, trace, true)
	eng := modulation.NewEngine(modulation.SimClock{S: s}, dev, modulation.Config{
		Tick: modulation.DefaultTick,
		RNG:  s.RNG("synthetic"),
	})
	modulation.Install(tb.Laptop, eng)

	ct := transport.NewTCP(tb.Laptop)
	st := transport.NewTCP(tb.Server)
	ftp.Serve(s, st)

	const size = 4 << 20
	marks := make([]time.Duration, 0, 4)
	s.Spawn("bench", func(p *sim.Proc) {
		c, err := ct.Dial(p, scenario.ModServer, ftp.Port)
		if err != nil {
			log.Fatalf("dial: %v", err)
		}
		defer c.Close()
		c.Write(p, []byte(fmt.Sprintf("SEND %d\n", size)))
		chunk := make([]byte, 32*1024)
		sent := 0
		next := size / 4
		start := p.Now()
		for sent < size {
			n := len(chunk)
			if size-sent < n {
				n = size - sent
			}
			if _, err := c.Write(p, chunk[:n]); err != nil {
				log.Fatalf("write: %v", err)
			}
			sent += n
			if sent >= next {
				marks = append(marks, p.Now().Sub(start))
				next += size / 4
			}
		}
	})
	s.RunUntil(sim.Time(time.Hour))

	fmt.Printf("%-9s quarter marks:", name)
	prev := time.Duration(0)
	for _, m := range marks {
		fmt.Printf("  +%6.1fs", (m - prev).Seconds())
		prev = m
	}
	fmt.Printf("  (total %.1fs)\n", prev.Seconds())
}

func main() {
	fmt.Println("== synthetic trace modulation: 4 MB FTP send, time per quarter ==")
	fmt.Println("(a step or impulse in the trace shows up as a slow quarter)")
	fmt.Println()

	for _, kind := range []string{"wavelan", "step", "impulse", "slow"} {
		trace, err := tracemod.Synthetic(kind, 20*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		transferUnder(kind, trace)
	}
}
