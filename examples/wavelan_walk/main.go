// WaveLAN walk: the figure-style view of one scenario. Collects four
// traversals of the Wean scenario (office → elevator → classroom), prints
// the per-checkpoint characteristics the paper plots in Figure 4, and then
// shows what the elevator's dead zone does to a Web browsing session under
// modulation.
//
// Run with: go run ./examples/wavelan_walk
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tracemod/internal/apps/web"
	"tracemod/internal/expt"
	"tracemod/internal/modulation"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/transport"
)

func main() {
	o := expt.Default()

	fmt.Println("== the Wean walk: office, corridor, elevator, classroom ==")
	fig, err := expt.FigScenario(scenario.Wean, o)
	if err != nil {
		log.Fatalf("figure: %v", err)
	}
	fmt.Print(fig.Format())
	fmt.Println()

	// Distill one traversal and browse under it.
	res, err := expt.Collect(scenario.Wean, 0, o)
	if err != nil {
		log.Fatalf("collect: %v", err)
	}
	comp, err := expt.MeasureCompensation(o)
	if err != nil {
		log.Fatalf("compensation: %v", err)
	}

	s := sim.New(99)
	tb := scenario.BuildEthernet(s)
	dev := modulation.StartDaemon(s, res.Replay, true)
	eng := modulation.NewEngine(modulation.SimClock{S: s}, dev, modulation.Config{
		Tick:         o.Tick,
		Compensation: comp,
		RNG:          s.RNG("walk"),
	})
	modulation.Install(tb.Laptop, eng)
	ct, st := transport.NewTCP(tb.Laptop), transport.NewTCP(tb.Server)
	web.Serve(s, st)

	// A short browse: one user, a dozen pages. Timestamps show the stall
	// while the replay trace passes through the elevator.
	traces := web.GenTraces(rand.New(rand.NewSource(1)))[:1]
	traces[0].Pages = traces[0].Pages[:12]
	fmt.Println("browsing 12 pages starting at t=80s, straight into the elevator:")
	s.Spawn("browser", func(p *sim.Proc) {
		p.Sleep(80 * time.Second) // walk until just before the doors close
		for i, pg := range traces[0].Pages {
			start := p.Now()
			one := []web.UserTrace{{User: "walker", Pages: []web.Page{pg}}}
			if _, err := web.Run(p, ct, scenario.ModServer, one, web.Config{
				ProcMean: web.DefaultProcMean,
				RNG:      rand.New(rand.NewSource(int64(i))),
			}); err != nil {
				log.Fatalf("browse: %v", err)
			}
			fmt.Printf("  page %2d at t=%6.1fs took %5.1fs (%d objects)\n",
				i+1, start.Seconds(), p.Now().Sub(start).Seconds(), 1+len(pg.Objects))
		}
	})
	s.RunFor(res.Replay.TotalDuration() * 2)
	fmt.Println("\npages hitting the elevator window (t≈90-115s) stall; the rest fly.")
}
