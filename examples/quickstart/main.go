// Quickstart: the complete trace-modulation pipeline on one scenario.
//
//  1. Collect — walk the Porter path with the instrumented laptop while
//     the known ping workload runs.
//  2. Distill — reduce the observations to a replay trace.
//  3. Modulate — re-create the walk on an isolated Ethernet and run an
//     FTP benchmark under it.
//  4. Compare — the same benchmark over the live wireless path.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tracemod/internal/expt"
	"tracemod/internal/scenario"
)

func main() {
	o := expt.Default()

	fmt.Println("== trace modulation quickstart: Porter scenario ==")
	fmt.Printf("traversal: %v over %d checkpointed legs\n\n",
		scenario.Porter.Profile.Duration(), len(scenario.Porter.Profile.Segments))

	// Phase 1+2: collection traversal and distillation.
	res, err := expt.Collect(scenario.Porter, 0, o)
	if err != nil {
		log.Fatalf("collect: %v", err)
	}
	fmt.Printf("collected and distilled: %s\n", res.Describe())
	fmt.Printf("mean bottleneck bandwidth: %.2f Mb/s\n\n", res.Replay.MeanVb().BitsPerSec()/1e6)

	// One-time setup: measure the physical modulation network for delay
	// compensation.
	comp, err := expt.MeasureCompensation(o)
	if err != nil {
		log.Fatalf("compensation: %v", err)
	}
	fmt.Printf("physical path: %.1f ns/B (%.2f Mb/s) -> inbound compensation\n\n",
		float64(comp), comp.BitsPerSec()/1e6)

	// Phase 3: the benchmark under modulation, on the isolated Ethernet.
	mod, err := expt.RunModulated(res.Replay, expt.BenchFTPSend, 0, comp, o)
	if err != nil {
		log.Fatalf("modulated run: %v", err)
	}

	// Reference: the same benchmark over the live wireless scenario, and
	// over the bare Ethernet.
	live, err := expt.RunLive(scenario.Porter, expt.BenchFTPSend, 0, o)
	if err != nil {
		log.Fatalf("live run: %v", err)
	}
	eth, err := expt.RunEthernetReference(expt.BenchFTPSend, 0, o)
	if err != nil {
		log.Fatalf("ethernet run: %v", err)
	}

	fmt.Println("10 MB FTP send, elapsed:")
	fmt.Printf("  live WaveLAN walk:      %v\n", live.Elapsed)
	fmt.Printf("  modulated Ethernet:     %v\n", mod.Elapsed)
	fmt.Printf("  bare Ethernet:          %v\n", eth.Elapsed)
	fmt.Printf("\nmodulation error vs live: %+.1f%%\n",
		100*(mod.Elapsed.Seconds()-live.Elapsed.Seconds())/live.Elapsed.Seconds())
}
