package tracemod_test

import (
	"bytes"
	"testing"
	"time"

	"tracemod"
)

func TestScenarios(t *testing.T) {
	names := tracemod.Scenarios()
	if len(names) != 4 {
		t.Fatalf("scenarios = %v", names)
	}
	want := map[string]bool{"Wean": true, "Porter": true, "Flagstaff": true, "Chatterbox": true}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected scenario %q", n)
		}
	}
}

func TestCollectAndDistillFacade(t *testing.T) {
	tr, err := tracemod.CollectAndDistill("Porter", 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bw := tr.MeanVb().BitsPerSec()
	if bw < 0.8e6 || bw > 2.2e6 {
		t.Fatalf("bandwidth = %.2f Mb/s", bw/1e6)
	}
	if _, err := tracemod.CollectAndDistill("Narnia", 7); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

func TestReplayRoundTripFacade(t *testing.T) {
	tr, err := tracemod.Synthetic("wavelan", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracemod.WriteReplay(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := tracemod.ReadReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalDuration() != tr.TotalDuration() {
		t.Fatalf("duration %v != %v", got.TotalDuration(), tr.TotalDuration())
	}
}

func TestSyntheticKinds(t *testing.T) {
	for _, kind := range []string{"wavelan", "slow", "step", "impulse"} {
		tr, err := tracemod.Synthetic(kind, time.Minute)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := tracemod.Synthetic("nope", time.Minute); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestDefaultDistillConfig(t *testing.T) {
	cfg := tracemod.DefaultDistillConfig()
	if cfg.Window != 5*time.Second || cfg.Step != time.Second {
		t.Fatalf("config = %+v", cfg)
	}
}
