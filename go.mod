module tracemod

go 1.23
