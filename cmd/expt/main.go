// Command expt regenerates the paper's tables and figures. Each experiment
// runs entirely in virtual time and prints the same rows/series the paper
// reports.
//
// Usage:
//
//	expt [-run all|fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|abl-tick|abl-comp|abl-window]
//	     [-trials N] [-seed S] [-ftp-mb N] [-workers N]
//	     [-cpuprofile FILE] [-memprofile FILE]
//	     [-trace-out FILE]
//
// With -trace-out the harness additionally runs one fully-span-traced
// modulated Web benchmark trial over a synthetic WaveLAN-like trace and
// writes every sampled span as JSON lines (one span object per line,
// virtual-time timestamps; see internal/obs/span/encode.go for the
// format). Render the file with `tracedump -i FILE -render spans`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"tracemod/internal/expt"
	"tracemod/internal/obs/span"
	"tracemod/internal/replay"
	"tracemod/internal/scenario"
)

func main() {
	run := flag.String("run", "all", "experiment id (all, fig1..fig8, abl-tick, abl-comp, abl-window, abl-clock, abl-buffer)")
	trials := flag.Int("trials", 4, "trials per cell (the paper runs 4)")
	seed := flag.Int64("seed", 1997, "base seed")
	ftpMB := flag.Int("ftp-mb", 10, "FTP benchmark file size in MB")
	workers := flag.Int("workers", runtime.NumCPU(), "experiment cells run concurrently (output is identical at any count)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceOut := flag.String("trace-out", "", "write span JSONL from a fully-traced modulated run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expt: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "expt: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expt: -memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // report live objects, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "expt: -memprofile: %v\n", err)
			os.Exit(1)
		}
	}()

	o := expt.Default()
	o.Trials = *trials
	o.BaseSeed = *seed
	o.FTPSize = *ftpMB << 20
	o.Workers = *workers

	if *traceOut != "" {
		if err := writeTracedRun(*traceOut, o); err != nil {
			fmt.Fprintf(os.Stderr, "expt: -trace-out: %v\n", err)
			os.Exit(1)
		}
		if *run == "" {
			return
		}
	}

	ids := []string{*run}
	if *run == "all" {
		ids = []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "abl-tick", "abl-comp", "abl-window", "abl-clock", "abl-buffer"}
	}
	for _, id := range ids {
		start := time.Now()
		out, err := dispatch(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expt %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (generated in %v) ====\n%s\n", id, time.Since(start).Round(time.Millisecond), out)
	}
}

// writeTracedRun runs one span-traced modulated Web trial over a
// synthetic WaveLAN-like trace and writes the sampled spans as JSONL.
func writeTracedRun(path string, o expt.Options) error {
	start := time.Now()
	comp, err := expt.MeasureCompensation(o)
	if err != nil {
		return err
	}
	_, spans, err := expt.RunModulatedTraced(
		replay.WaveLANLike(time.Hour), expt.BenchWeb, 0, comp, o, 0)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := span.WriteJSONL(f, spans); err != nil {
		return err
	}
	fmt.Printf("expt: wrote %d spans to %s (in %v)\n",
		len(spans), path, time.Since(start).Round(time.Millisecond))
	return nil
}

func dispatch(id string, o expt.Options) (string, error) {
	switch strings.ToLower(id) {
	case "fig1":
		r, err := expt.Fig1(o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "fig2", "fig3", "fig4", "fig5":
		sc := map[string]string{"fig2": "Porter", "fig3": "Flagstaff", "fig4": "Wean", "fig5": "Chatterbox"}[strings.ToLower(id)]
		s, _ := scenario.ByName(sc)
		r, err := expt.FigScenario(s, o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "fig6":
		r, err := expt.Fig6Web(o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "fig7":
		r, err := expt.Fig7FTP(o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "fig8":
		r, err := expt.Fig8Andrew(o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "abl-tick":
		r, err := expt.AblateTick(o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "abl-comp":
		r, err := expt.AblateCompensation(o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "abl-window":
		r, err := expt.AblateWindow(o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "abl-clock":
		r, err := expt.AblateClock(o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "abl-buffer":
		r, err := expt.AblateBuffer(o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", id)
	}
}
