// Command tracedump prints a collected trace in a human-readable,
// tcpdump-like form: one line per record, with ICMP echo detail, transport
// ports, round-trip times, device-characteristic samples, and lost-record
// markers.
//
// Usage:
//
//	tracedump -i porter0.trace [-devices] [-n 50] [-stats]
//	tracedump -i porter0.trace -render obs    # observability summary
//	tracedump -i porter0.trace -render prom   # same, Prometheus text format
//	tracedump -i run.spans -render spans      # span trees from a traced run
//	tracedump -i porter0.trace -verify        # integrity check, exit 1 if dirty
//	tracedump -i porter0.trace -salvage       # read a damaged trace anyway
//
// The obs render mode folds the trace into the repository's telemetry
// registry — packet counters by direction and protocol, an RTT histogram,
// loss accounting — and prints the registry's human dump (or, with
// -render prom, the exact text a live daemon's /metrics endpoint serves).
//
// The spans render mode reads sampled spans instead of a collected trace:
// either span JSONL (one span object per line, as written by
// `expt -trace-out`) or a flight-recorder dump fetched from a daemon's
// GET /v1/sessions/{id}/flight endpoint. It prints each trace as an
// indented tree — span IDs, names, start offsets, durations, attributes,
// and events — the same rendering emud logs when it quarantines a
// session. See internal/obs/span/encode.go for the wire format.
//
// Verify mode parses the trace with the salvaging reader and runs the
// distillation sanitizer's validator over whatever was recovered: framing
// damage, CRC mismatches, truncation, non-monotonic timestamps, and
// implausible field values are all reported, and the exit status says
// whether the file would survive a strict ingest.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tracemod/internal/analysis"
	"tracemod/internal/distill"
	"tracemod/internal/obs"
	"tracemod/internal/obs/span"
	"tracemod/internal/packet"
	"tracemod/internal/tracefmt"
)

func main() {
	in := flag.String("i", "", "input collected trace (required)")
	devices := flag.Bool("devices", false, "include device-characteristic records")
	limit := flag.Int("n", 0, "print at most n records (0 = all)")
	statsOnly := flag.Bool("stats", false, "print the trace analysis report instead of records")
	render := flag.String("render", "records", "output mode: records, obs (telemetry dump), prom (Prometheus text), spans (span trees from a span dump)")
	verify := flag.Bool("verify", false, "validate the trace (salvage parse + sanitizer check) and exit 1 if anything is wrong")
	salvage := flag.Bool("salvage", false, "parse a damaged trace in salvage mode instead of aborting")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "tracedump: -i is required")
		os.Exit(1)
	}
	if *verify {
		os.Exit(runVerify(*in))
	}
	if *render == "spans" {
		os.Exit(renderSpans(*in))
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	var tr *tracefmt.Trace
	if *salvage {
		var rep *tracefmt.ReadReport
		tr, rep, err = tracefmt.SalvageAll(f)
		if err == nil && !rep.Clean() {
			fmt.Fprintf(os.Stderr, "tracedump: %s\n", rep)
		}
	} else {
		tr, err = tracefmt.ReadAll(f)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: %v\n", err)
		os.Exit(1)
	}

	switch *render {
	case "records":
		// fall through to the record listing below
	case "obs":
		if err := traceRegistry(tr).Dump(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "tracedump: %v\n", err)
			os.Exit(1)
		}
		return
	case "prom":
		if err := traceRegistry(tr).WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "tracedump: %v\n", err)
			os.Exit(1)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "tracedump: unknown -render mode %q\n", *render)
		os.Exit(1)
	}

	if *statsOnly {
		fmt.Print(analysis.Analyze(tr).Format())
		return
	}
	fmt.Printf("device %s  start %v  comment %q\n",
		tr.Header.Device, time.Duration(tr.Header.Start), tr.Header.Comment)
	fmt.Printf("%d packets, %d device samples, %d lost records, span %v\n\n",
		len(tr.Packets), len(tr.Devices), tr.TotalLost(), tr.Duration())

	// Merge packet and (optionally) device records in time order.
	printed := 0
	pi, di := 0, 0
	for pi < len(tr.Packets) || (*devices && di < len(tr.Devices)) {
		if *limit > 0 && printed >= *limit {
			fmt.Printf("... (%d more records)\n", len(tr.Packets)-pi)
			break
		}
		usePacket := pi < len(tr.Packets)
		if *devices && di < len(tr.Devices) && (!usePacket || tr.Devices[di].At < tr.Packets[pi].At) {
			d := tr.Devices[di]
			fmt.Printf("%12.6f  DEV   signal=%.1f quality=%.1f silence=%.1f\n",
				time.Duration(d.At).Seconds(), d.Signal, d.Quality, d.Silence)
			di++
			printed++
			continue
		}
		if !usePacket {
			break
		}
		p := tr.Packets[pi]
		pi++
		printed++
		fmt.Printf("%12.6f  %-3s  %4dB  %s\n",
			time.Duration(p.At).Seconds(), dirName(p.Dir), p.Size, describe(p))
	}

	for _, l := range tr.Lost {
		fmt.Printf("%12.6f  LOST  %d records of type %d overwritten in kernel buffer\n",
			time.Duration(l.At).Seconds(), l.Count, l.Of)
	}
}

// renderSpans is the -render spans mode: read a span dump (JSONL from a
// traced run, or a flight-recorder JSON dump from the control plane) and
// print the span forest.
func renderSpans(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: %v\n", err)
		return 1
	}
	spans, err := parseSpanDump(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: %s: %v\n", path, err)
		return 1
	}
	if len(spans) == 0 {
		fmt.Println("no spans")
		return 0
	}
	if err := span.RenderTree(os.Stdout, spans); err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: %v\n", err)
		return 1
	}
	return 0
}

// parseSpanDump accepts either shape a span dump comes in: the
// flight-recorder endpoint's single JSON object ({"session":..,"spans":
// [..]}) or span JSONL (one span object per line).
func parseSpanDump(data []byte) ([]*span.SpanData, error) {
	var dump struct {
		Spans []*span.SpanData `json:"spans"`
	}
	if err := json.Unmarshal(data, &dump); err == nil && dump.Spans != nil {
		return dump.Spans, nil
	}
	return span.ReadJSONL(bytes.NewReader(data))
}

// runVerify is the -verify mode: salvage-parse the file, validate what
// was recovered, report everything, and return the process exit code.
func runVerify(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: %v\n", err)
		return 1
	}
	defer f.Close()
	tr, rep, err := tracefmt.SalvageAll(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: %s: unreadable: %v\n", path, err)
		return 1
	}
	fmt.Printf("%s: %s\n", path, rep)
	problems := distill.ValidateCollected(tr, distill.SanitizeOptions{})
	for _, p := range problems {
		fmt.Printf("  %s\n", p)
	}
	if rep.Clean() && len(problems) == 0 {
		fmt.Printf("  ok: %d packets, %d device samples, %d lost records, span %v\n",
			len(tr.Packets), len(tr.Devices), tr.TotalLost(), tr.Duration())
		return 0
	}
	return 1
}

// traceRegistry folds a collected trace into an obs registry: the same
// metric vocabulary a live daemon exports, derived offline.
func traceRegistry(tr *tracefmt.Trace) *obs.Registry {
	reg := obs.NewRegistry()
	byDir := reg.CounterVec("tracemod_trace_packets_total", "Packet records by direction.", "dir")
	byProto := reg.CounterVec("tracemod_trace_packets_by_proto_total", "Packet records by protocol.", "proto")
	rtts := reg.Histogram("tracemod_trace_rtt_seconds", "Round-trip times of answered workload echoes.", nil)
	echoes := reg.Counter("tracemod_trace_echoes_total", "Outbound workload echoes.")
	replies := reg.Counter("tracemod_trace_replies_total", "Inbound echo replies.")
	samples := reg.Counter("tracemod_trace_device_samples_total", "Device-characteristic samples.")
	lost := reg.Counter("tracemod_trace_lost_records_total", "Records lost to kernel ring overruns.")
	reg.GaugeFunc("tracemod_trace_span_seconds", "Time covered by the trace.",
		func() float64 { return tr.Duration().Seconds() })

	for _, p := range tr.Packets {
		if p.Dir == tracefmt.DirOut {
			byDir.With("out").Inc()
		} else {
			byDir.With("in").Inc()
		}
		byProto.With(protoName(p.Protocol)).Inc()
		switch {
		case p.Protocol == packet.ProtoICMP && p.ICMPType == packet.ICMPEcho && p.Dir == tracefmt.DirOut:
			echoes.Inc()
		case p.Protocol == packet.ProtoICMP && p.ICMPType == packet.ICMPEchoReply && p.Dir == tracefmt.DirIn:
			replies.Inc()
			if p.RTT >= 0 {
				rtts.Observe(time.Duration(p.RTT))
			}
		}
	}
	samples.Add(int64(len(tr.Devices)))
	lost.Add(int64(tr.TotalLost()))
	return reg
}

func protoName(p uint8) string {
	switch p {
	case packet.ProtoICMP:
		return "icmp"
	case packet.ProtoUDP:
		return "udp"
	case packet.ProtoTCP:
		return "tcp"
	default:
		return fmt.Sprintf("proto-%d", p)
	}
}

func dirName(d tracefmt.Direction) string {
	if d == tracefmt.DirOut {
		return ">"
	}
	return "<"
}

func describe(p tracefmt.PacketRecord) string {
	switch p.Protocol {
	case packet.ProtoICMP:
		kind := fmt.Sprintf("icmp type %d", p.ICMPType)
		switch p.ICMPType {
		case packet.ICMPEcho:
			kind = "icmp echo"
		case packet.ICMPEchoReply:
			kind = "icmp echoreply"
		}
		s := fmt.Sprintf("%s id %d seq %d", kind, p.ID, p.Seq)
		if p.RTT >= 0 {
			s += fmt.Sprintf(" rtt %.3fms", float64(p.RTT)/1e6)
		}
		return s
	case packet.ProtoUDP:
		return fmt.Sprintf("udp %d > %d", p.SrcPort, p.DstPort)
	case packet.ProtoTCP:
		return fmt.Sprintf("tcp %d > %d flags %s", p.SrcPort, p.DstPort, tcpFlags(p.TCPFlags))
	default:
		return fmt.Sprintf("proto %d", p.Protocol)
	}
}

func tcpFlags(f uint8) string {
	names := []struct {
		bit  uint8
		name string
	}{
		{packet.TCPSyn, "S"}, {packet.TCPFin, "F"}, {packet.TCPRst, "R"},
		{packet.TCPPsh, "P"}, {packet.TCPAck, "."},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}
