// Command tracedump prints a collected trace in a human-readable,
// tcpdump-like form: one line per record, with ICMP echo detail, transport
// ports, round-trip times, device-characteristic samples, and lost-record
// markers.
//
// Usage:
//
//	tracedump -i porter0.trace [-devices] [-n 50] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tracemod/internal/analysis"
	"tracemod/internal/packet"
	"tracemod/internal/tracefmt"
)

func main() {
	in := flag.String("i", "", "input collected trace (required)")
	devices := flag.Bool("devices", false, "include device-characteristic records")
	limit := flag.Int("n", 0, "print at most n records (0 = all)")
	statsOnly := flag.Bool("stats", false, "print the trace analysis report instead of records")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "tracedump: -i is required")
		os.Exit(1)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := tracefmt.ReadAll(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: %v\n", err)
		os.Exit(1)
	}

	if *statsOnly {
		fmt.Print(analysis.Analyze(tr).Format())
		return
	}
	fmt.Printf("device %s  start %v  comment %q\n",
		tr.Header.Device, time.Duration(tr.Header.Start), tr.Header.Comment)
	fmt.Printf("%d packets, %d device samples, %d lost records, span %v\n\n",
		len(tr.Packets), len(tr.Devices), tr.TotalLost(), tr.Duration())

	// Merge packet and (optionally) device records in time order.
	printed := 0
	pi, di := 0, 0
	for pi < len(tr.Packets) || (*devices && di < len(tr.Devices)) {
		if *limit > 0 && printed >= *limit {
			fmt.Printf("... (%d more records)\n", len(tr.Packets)-pi)
			break
		}
		usePacket := pi < len(tr.Packets)
		if *devices && di < len(tr.Devices) && (!usePacket || tr.Devices[di].At < tr.Packets[pi].At) {
			d := tr.Devices[di]
			fmt.Printf("%12.6f  DEV   signal=%.1f quality=%.1f silence=%.1f\n",
				time.Duration(d.At).Seconds(), d.Signal, d.Quality, d.Silence)
			di++
			printed++
			continue
		}
		if !usePacket {
			break
		}
		p := tr.Packets[pi]
		pi++
		printed++
		fmt.Printf("%12.6f  %-3s  %4dB  %s\n",
			time.Duration(p.At).Seconds(), dirName(p.Dir), p.Size, describe(p))
	}

	for _, l := range tr.Lost {
		fmt.Printf("%12.6f  LOST  %d records of type %d overwritten in kernel buffer\n",
			time.Duration(l.At).Seconds(), l.Count, l.Of)
	}
}

func dirName(d tracefmt.Direction) string {
	if d == tracefmt.DirOut {
		return ">"
	}
	return "<"
}

func describe(p tracefmt.PacketRecord) string {
	switch p.Protocol {
	case packet.ProtoICMP:
		kind := fmt.Sprintf("icmp type %d", p.ICMPType)
		switch p.ICMPType {
		case packet.ICMPEcho:
			kind = "icmp echo"
		case packet.ICMPEchoReply:
			kind = "icmp echoreply"
		}
		s := fmt.Sprintf("%s id %d seq %d", kind, p.ID, p.Seq)
		if p.RTT >= 0 {
			s += fmt.Sprintf(" rtt %.3fms", float64(p.RTT)/1e6)
		}
		return s
	case packet.ProtoUDP:
		return fmt.Sprintf("udp %d > %d", p.SrcPort, p.DstPort)
	case packet.ProtoTCP:
		return fmt.Sprintf("tcp %d > %d flags %s", p.SrcPort, p.DstPort, tcpFlags(p.TCPFlags))
	default:
		return fmt.Sprintf("proto %d", p.Protocol)
	}
}

func tcpFlags(f uint8) string {
	names := []struct {
		bit  uint8
		name string
	}{
		{packet.TCPSyn, "S"}, {packet.TCPFin, "F"}, {packet.TCPRst, "R"},
		{packet.TCPPsh, "P"}, {packet.TCPAck, "."},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}
