// Command tracecollect performs the collection phase: it runs the known
// ping workload over a simulated wireless scenario with the in-kernel
// tracer enabled and writes the collected trace to a file in the tracefmt
// format.
//
// Usage:
//
//	tracecollect -scenario Porter -trial 0 -o porter0.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tracemod/internal/capture"
	"tracemod/internal/pinger"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/tracefmt"
)

func main() {
	name := flag.String("scenario", "Porter", "scenario: "+strings.Join(names(), ", "))
	trial := flag.Int("trial", 0, "trial number (varies the channel realization)")
	seed := flag.Int64("seed", 1997, "base seed")
	out := flag.String("o", "", "output trace file (default <scenario><trial>.trace)")
	bufCap := flag.Int("buf", 1<<16, "in-kernel record buffer capacity")
	flag.Parse()

	sc, ok := scenario.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracecollect: unknown scenario %q (have %s)\n", *name, strings.Join(names(), ", "))
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s%d.trace", strings.ToLower(sc.Name), *trial)
	}

	s := sim.New(*seed + int64(*trial)*107 + 13)
	tb := scenario.BuildWireless(s, sc)
	dur := sc.Profile.Duration()
	pg := pinger.Start(s, tb.Laptop, scenario.ServerIP, dur)
	tr, err := capture.Collect(s, tb.Laptop.NIC(0), *bufCap, dur, fmt.Sprintf("%s trial %d", sc.Name, *trial))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecollect: %v\n", err)
		os.Exit(1)
	}

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecollect: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := tracefmt.WriteAll(f, tr); err != nil {
		fmt.Fprintf(os.Stderr, "tracecollect: %v\n", err)
		os.Exit(1)
	}
	st := pg.Stats()
	fmt.Printf("collected %s over %v: %d packet records, %d device records, %d lost; workload %d/%d echoes answered -> %s\n",
		sc.Name, dur, len(tr.Packets), len(tr.Devices), tr.TotalLost(), st.Received, st.Sent, path)
}

func names() []string {
	var out []string
	for _, sc := range scenario.All() {
		out = append(out, sc.Name)
	}
	return out
}
