// Command modulate runs the modulation phase against real traffic: a
// transparent UDP relay that shapes live packets according to a replay
// trace, in wall-clock time. Point a UDP client at the relay and it will
// experience the recorded network.
//
// Usage:
//
//	modulate -replay porter0.replay -listen 127.0.0.1:7000 -target 127.0.0.1:7001
//	modulate -synthetic wavelan -listen 127.0.0.1:7000 -target 127.0.0.1:7001
//
// With -debug ADDR the daemon serves live introspection over HTTP:
// /metrics (Prometheus text; ?format=text for a human dump), /healthz,
// /debug/events (the packet-lifecycle event ring), and /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"tracemod"
	"tracemod/internal/core"
	"tracemod/internal/livewire"
	"tracemod/internal/modulation"
	"tracemod/internal/obs"
	"tracemod/internal/replay"
)

func main() {
	replayPath := flag.String("replay", "", "replay trace file to drive shaping")
	synthetic := flag.String("synthetic", "", "synthetic trace instead of a file: wavelan, slow, step, impulse")
	listen := flag.String("listen", "127.0.0.1:7000", "client-facing UDP address")
	target := flag.String("target", "", "target server UDP address (required)")
	tick := flag.Duration("tick", modulation.DefaultTick, "scheduling granularity (negative = exact)")
	comp := flag.Float64("comp", 0, "inbound compensation in ns/byte (physical path Vb)")
	inExtra := flag.Float64("inbound-extra", 0, "extra inbound per-byte cost in ns/byte (emulates the paper's kernel artifact)")
	seed := flag.Int64("seed", 1, "drop-lottery seed")
	stats := flag.Duration("stats", 10*time.Second, "stats reporting period (0 = quiet)")
	debug := flag.String("debug", "", "HTTP debug listener address, e.g. 127.0.0.1:9100 (empty = disabled)")
	events := flag.Int("events", obs.DefaultTracerCapacity, "packet-lifecycle event ring capacity for /debug/events (0 = tracing off)")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "modulate: -target is required")
		os.Exit(1)
	}

	// Telemetry: one registry for the whole daemon, an optional bounded
	// event ring, and the debug listener serving both.
	var reg *obs.Registry
	var tracer *obs.RingTracer
	if *debug != "" {
		reg = obs.NewRegistry()
		obs.Uptime(reg, time.Now())
		replay.EnableMetrics(reg)
		if *events > 0 {
			tracer = obs.NewRingTracer(*events)
		}
	}

	var trace core.Trace
	var err error
	switch {
	case *replayPath != "" && *synthetic != "":
		fmt.Fprintln(os.Stderr, "modulate: -replay and -synthetic are mutually exclusive")
		os.Exit(1)
	case *replayPath != "":
		f, ferr := os.Open(*replayPath)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "modulate: %v\n", ferr)
			os.Exit(1)
		}
		trace, err = tracemod.ReadReplay(f)
		f.Close()
	case *synthetic != "":
		trace, err = tracemod.Synthetic(*synthetic, time.Hour)
	default:
		fmt.Fprintln(os.Stderr, "modulate: one of -replay or -synthetic is required")
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "modulate: %v\n", err)
		os.Exit(1)
	}

	cfg := livewire.Config{
		Trace:        trace,
		Tick:         *tick,
		InboundExtra: core.PerByte(*inExtra),
		Compensation: core.PerByte(*comp),
		Seed:         *seed,
		Obs:          reg,
	}
	if tracer != nil {
		cfg.Tracer = tracer
	}
	relay, err := livewire.NewRelay(*listen, *target, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "modulate: %v\n", err)
		os.Exit(1)
	}
	defer relay.Close()
	fmt.Printf("shaping %s -> %s with %d tuples (%v, mean bottleneck %.2f Mb/s); ctrl-c to stop\n",
		relay.Addr(), *target, len(trace), trace.TotalDuration(), trace.MeanVb().BitsPerSec()/1e6)

	if reg != nil {
		srv, err := obs.StartDebugServer(*debug, reg, tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modulate: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("debug listener on http://%s (/metrics /healthz /debug/events /debug/pprof/)\n", srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	if *stats > 0 {
		tick := time.NewTicker(*stats)
		defer tick.Stop()
		for {
			select {
			case <-sig:
				fmt.Printf("final: %+v\n", relay.Stats())
				return
			case <-tick.C:
				fmt.Printf("%v %+v\n", time.Now().Format("15:04:05"), relay.Stats())
			}
		}
	}
	<-sig
	fmt.Printf("final: %+v\n", relay.Stats())
}
