// Command benchguard parses `go test -bench` output and guards against
// performance regressions. It has two modes:
//
//	benchguard -emit [-out BENCH_4.json] < bench.out
//	    Parse the benchmark output and write a JSON baseline.
//
//	benchguard -baseline BENCH_4.json [-threshold 0.20] < bench.out
//	    Compare the run against the committed baseline and exit non-zero
//	    if any guarded, lower-is-better figure (ns/op, allocs/op, or the
//	    goroutines/session metric) regressed by more than the threshold.
//	    A zero baseline admits no increase at all.
//
// Benchmarks present in the baseline but missing from the run fail the
// guard, so a benchmark cannot dodge it by being deleted or renamed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's figures. Metrics holds units beyond the three
// standard ones (MB/s, goroutines/session, ...).
type Bench struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the serialized baseline.
type File struct {
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	emit := flag.Bool("emit", false, "write a JSON baseline from stdin")
	out := flag.String("out", "", "baseline file to write with -emit (default stdout)")
	baseline := flag.String("baseline", "", "baseline file to compare stdin against")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional regression")
	flag.Parse()

	cur, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	switch {
	case *emit:
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *out == "" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
	case *baseline != "":
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var base File
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("%s: %w", *baseline, err))
		}
		if failures := compare(base, cur, *threshold); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "benchguard: FAIL %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Println("benchguard: OK")
	default:
		fatal(fmt.Errorf("need -emit or -baseline (see -h)"))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
	os.Exit(2)
}

// parse reads `go test -bench` output: each benchmark line is the name
// (with an optional -GOMAXPROCS suffix), an iteration count, then
// value/unit pairs. A benchmark that appears several times (-count N)
// keeps its best figures — best-of-N damps scheduler noise on shared
// runners, while allocs/op and goroutine counts are deterministic anyway.
func parse(r io.Reader) (File, error) {
	f := File{Benchmarks: map[string]Bench{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcSuffix(fields[0])
		b := Bench{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return f, fmt.Errorf("%s: bad value %q", name, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		if prev, ok := f.Benchmarks[name]; ok {
			b = merge(prev, b)
		}
		f.Benchmarks[name] = b
	}
	return f, sc.Err()
}

// merge keeps the minimum of every figure across repeated runs of one
// benchmark (all guarded figures are lower-is-better).
func merge(a, b Bench) Bench {
	out := Bench{
		NsPerOp:     min(a.NsPerOp, b.NsPerOp),
		BytesPerOp:  min(a.BytesPerOp, b.BytesPerOp),
		AllocsPerOp: min(a.AllocsPerOp, b.AllocsPerOp),
	}
	if a.Metrics != nil || b.Metrics != nil {
		out.Metrics = map[string]float64{}
		for k, v := range a.Metrics {
			out.Metrics[k] = v
		}
		for k, v := range b.Metrics {
			if prev, ok := out.Metrics[k]; !ok || v < prev {
				out.Metrics[k] = v
			}
		}
	}
	return out
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// stripProcSuffix removes the trailing -N GOMAXPROCS marker, if any.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// guarded lists the lower-is-better figures the guard enforces.
func guarded(b Bench) map[string]float64 {
	g := map[string]float64{
		"ns/op":     b.NsPerOp,
		"allocs/op": b.AllocsPerOp,
	}
	if v, ok := b.Metrics["goroutines/session"]; ok {
		g["goroutines/session"] = v
	}
	return g
}

func compare(base, cur File, threshold float64) []string {
	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bb := base.Benchmarks[name]
		cb, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from this run", name))
			continue
		}
		baseG, curG := guarded(bb), guarded(cb)
		units := make([]string, 0, len(baseG))
		for unit := range baseG {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			bv := baseG[unit]
			cv, present := curG[unit]
			if !present {
				// ns/op and allocs/op are always reported, so an absent unit
				// is a custom metric (e.g. goroutines/session) the benchmark
				// stopped emitting — failing keeps it from dodging the guard.
				failures = append(failures, fmt.Sprintf("%s %s: metric missing from this run", name, unit))
				continue
			}
			limit := bv * (1 + threshold)
			if bv == 0 && cv > 0 {
				failures = append(failures, fmt.Sprintf("%s %s: baseline 0, now %g", name, unit, cv))
				continue
			}
			if cv > limit {
				failures = append(failures, fmt.Sprintf("%s %s: %g exceeds baseline %g by more than %.0f%%",
					name, unit, cv, bv, threshold*100))
			}
		}
	}
	return failures
}
