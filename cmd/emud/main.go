// Command emud runs the multi-tenant emulation daemon: a farm of
// trace-modulated sessions behind an HTTP/JSON control plane. Each session
// is one emulated mobile link — a modulation engine replaying a
// network-quality trace — and can front live UDP traffic through an
// attached relay. All sessions share one sharded timer wheel and one trace
// store.
//
// Usage:
//
//	emud [-listen :8091] [-shards 4] [-granularity 10ms] [-tick 10ms]
//	     [-pump-shards 0]
//	     [-max-sessions 4096] [-idle-timeout 0] [-drain-timeout 5s]
//	     [-trace-cache 64] [-events 4096]
//	     [-max-session-inflight 0] [-max-inflight-bytes 0]
//	     [-snapshot PATH] [-snapshot-interval 10s] [-recover]
//	     [-wal-dir PATH] [-wal-sync always|interval|none] [-wal-segment 8388608]
//	     [-stream-idle-timeout 0] [-stream-quota 0]
//	     [-spill-dir PATH] [-mem-high 0] [-pinned-budget 0]
//	     [-faults] [-fault-seed 0]
//	     [-trace-sample 0] [-flight 256]
//	     [-log-level info] [-log-format text]
//	     [-role worker -name w1 -coordinator http://coord:8090 [-advertise URL]]
//
//	emud -role coordinator [-listen :8090]
//	     [-workers w1=http://h1:8091,w2=http://h2:8091]
//	     [-heartbeat 1s] [-suspect-after 3s] [-evict-after 10s]
//	     [-revival-probes 2] [-failover-p99 5s] [-vnodes 64]
//	     [-faults] [-fault-seed 0] [-log-level info] [-log-format text]
//
// With -role coordinator the process runs no sessions of its own.
// Instead it consistent-hashes session and stream creation across the
// registered workers, proxies the /v1/sessions and /v1/streams control
// plane (idempotency keys make client retries safe), heartbeats every
// worker's /v1/health, and pulls /v1/snapshot on each healthy probe.
// A worker silent past -suspect-after stops receiving new placements; one
// silent past -evict-after is declared dead and its sessions are replayed
// from the last pulled snapshot onto the survivors, cursor-exact. A
// worker whose health reports draining (SIGTERM, or POST
// /v1/cluster/workers/{name}/drain) is live-migrated instead: each
// session is handed off with its replay cursor and drop-lottery position,
// so its modulation output is byte-identical to never having moved.
// GET /v1/farm aggregates the farm; GET /v1/cluster shows leases.
//
// With -role worker the daemon is a normal single-node emud whose
// session IDs are prefixed by -name, and which registers itself with
// -coordinator on startup. On SIGTERM it begins draining (health turns
// 503 "draining") and keeps serving until the coordinator has migrated
// its sessions away or -drain-timeout passes — a rolling restart loses
// nothing.
//
// The control plane:
//
//	POST   /v1/sessions           create (and by default start) a session
//	GET    /v1/sessions           list sessions
//	GET    /v1/sessions/{id}      inspect one session
//	POST   /v1/sessions/{id}/start
//	POST   /v1/sessions/{id}/stop[?drain=2s]
//	DELETE /v1/sessions/{id}      stop and remove
//	GET    /v1/sessions/{id}/flight  per-session flight-recorder span dump
//	POST   /v1/streams?name=N     live-ingest a collected trace (chunked body,
//	                              tracefmt framing); distilled incrementally,
//	                              sessions can attach mid-upload via {"stream":N};
//	                              resumable=true keeps it open across drops
//	GET    /v1/streams            list live-ingest streams
//	GET    /v1/streams/{name}     inspect one stream (state, lag, tuples)
//	PATCH  /v1/streams/{name}     resume an interrupted upload at Upload-Offset
//	                              (Stream-Token auth; ?complete=true seals)
//	GET    /v1/streams/{name}/offset  committed and durable resume offsets
//	DELETE /v1/streams/{name}     abort/remove a stream (attached sessions keep
//	                              their trace)
//	GET    /v1/farm               farm-wide summary
//	GET    /v1/slo                SLO evaluation (objectives + worst sessions)
//	GET    /v1/health             readiness score (503 when a critical SLO fails)
//	GET    /v1/faults             fault-injection points (with -faults)
//	POST   /v1/faults             arm a point: {"name":..,"rate":..,"delay_ms":..}
//	DELETE /v1/faults             disarm every point
//	GET    /metrics               Prometheus-style export (per-session labels)
//	GET    /debug/events          recent engine events
//
// With -trace-sample R (e.g. 0.01) the daemon samples end-to-end spans for
// roughly one packet in 1/R across the whole journey — HTTP handler,
// session manager, timer wheel, modulation engine, relay pump — and keeps
// the last -flight spans per session in a lock-free flight recorder,
// dumped via the control plane and on panic quarantine. The control plane
// honors and emits W3C `traceparent` headers, so external callers can
// stitch daemon spans into their own traces.
//
// Live ingest closes the paper's collect→distill→emulate loop without an
// intermediate file: POST a collected trace to /v1/streams as it is being
// captured and the daemon distills it on the fly (window by window), so a
// session created with {"stream": "name"} starts modulating against the
// growing replay trace before the upload finishes. Distillation lag is
// bounded by the freeze rule and observable as the stream-distill-lag-p99
// objective on /v1/slo.
//
// With -snapshot the daemon periodically writes a crash-recovery file of
// every live session's spec and replay cursor; after a crash, restarting
// with -recover restores those sessions (same IDs, cursors
// fast-forwarded) before the control plane accepts traffic.
//
// With -wal-dir every stream chunk is appended to a per-stream
// write-ahead log before it is interpreted, so -recover also replays the
// WALs: live traces come back at their last durable offset, resumable
// uploads pick up where the fsynced prefix ends, and snapshot-restored
// sessions rebind to their recovered streams (streams are recovered
// first for exactly that reason). -wal-sync trades durability for
// throughput: "always" fsyncs every chunk, "interval" batches fsyncs,
// "none" leaves flushing to the OS.
//
// Under memory pressure (-mem-high heap bytes, -pinned-budget ingest
// bytes) the daemon browns out in stages instead of dying: span sampling
// stops, new streams get 429 + Retry-After, sealed live traces spill to
// -spill-dir, and finally live-edge reads pause. The current rung is on
// /v1/health as "pressure", and past reject-streams the critical
// ingest-brownout SLO flips readiness to 503.
//
// SIGINT/SIGTERM drain every session gracefully before exit.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tracemod/internal/emud"
	"tracemod/internal/emud/cluster"
	"tracemod/internal/emud/wal"
	"tracemod/internal/faults"
	"tracemod/internal/obs"
	"tracemod/internal/obs/span"
)

// newLogger builds the daemon's structured logger from the -log-level and
// -log-format flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("emud: bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("emud: bad -log-format %q (want text or json)", format)
	}
}

func main() {
	listen := flag.String("listen", ":8091", "control-plane listen address")
	shards := flag.Int("shards", 0, "timer-wheel shards (0 = default)")
	granularity := flag.Duration("granularity", 0, "timer-wheel coalescing tick (0 = paper's 10ms; negative = exact)")
	maxSessions := flag.Int("max-sessions", emud.DefaultMaxSessions, "maximum concurrent sessions")
	idleTimeout := flag.Duration("idle-timeout", 0, "expire sessions idle this long (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", emud.DefaultDrainTimeout, "graceful-drain bound on shutdown")
	traceCache := flag.Int("trace-cache", emud.DefaultStoreCapacity, "trace-store LRU capacity")
	strictTraces := flag.Bool("strict-traces", false, "refuse damaged or dirty trace files instead of salvaging them")
	events := flag.Int("events", 4096, "event-trace ring capacity (0 disables)")
	pumpShards := flag.Int("pump-shards", 0, "relay data-plane event loops (0 = GOMAXPROCS; negative disables sharding)")
	maxInflight := flag.Int("max-session-inflight", 0, "per-session in-flight packet cap (0 = unlimited)")
	maxBytes := flag.Int64("max-inflight-bytes", 0, "farm-wide in-flight byte budget (0 = unlimited)")
	snapshotPath := flag.String("snapshot", "", "crash-recovery snapshot file (empty disables)")
	snapshotEvery := flag.Duration("snapshot-interval", emud.DefaultSnapshotInterval, "periodic snapshot cadence")
	doRecover := flag.Bool("recover", false, "restore streams from -wal-dir and sessions from the -snapshot file on startup")
	walDir := flag.String("wal-dir", "", "per-stream write-ahead log directory (empty disables stream durability)")
	walSyncFlag := flag.String("wal-sync", "always", "WAL fsync policy: always, interval, or none")
	walSegment := flag.Int64("wal-segment", 0, "WAL segment rotation size in bytes (0 = default)")
	streamIdle := flag.Duration("stream-idle-timeout", 0, "seal receiving streams idle this long (0 = never)")
	streamQuota := flag.Int64("stream-quota", 0, "per-stream upload byte cap (0 = unlimited)")
	spillDir := flag.String("spill-dir", "", "directory for spilled sealed live traces under memory pressure")
	memHigh := flag.Int64("mem-high", 0, "heap bytes where brownout shedding starts (0 disables)")
	pinnedBudget := flag.Int64("pinned-budget", 0, "live-ingest pinned byte budget before brownout (0 disables)")
	enableFaults := flag.Bool("faults", false, "enable the fault-injection control plane (/v1/faults)")
	faultSeed := flag.Int64("fault-seed", 0, "seed for the fault injector's deterministic streams")
	traceSample := flag.Float64("trace-sample", 0, "span sampling rate in [0,1] (0 disables tracing; 1 traces everything)")
	flightCap := flag.Int("flight", span.DefaultFlightCapacity, "per-session flight-recorder span capacity")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	role := flag.String("role", "", `cluster role: "" (standalone), "worker", or "coordinator"`)
	workerName := flag.String("name", "", "worker: cluster name (prefixes session IDs; required with -role worker)")
	coordURL := flag.String("coordinator", "", "worker: coordinator base URL to register with (e.g. http://coord:8090)")
	advertise := flag.String("advertise", "", "worker: URL the coordinator reaches this worker at (default http://<listen>)")
	workersFlag := flag.String("workers", "", "coordinator: static worker set, name=url[,name=url...]")
	heartbeat := flag.Duration("heartbeat", cluster.DefaultHeartbeatInterval, "coordinator: heartbeat probe interval")
	suspectAfter := flag.Duration("suspect-after", 0, "coordinator: silence before a worker is suspected (0 = 3x heartbeat)")
	evictAfter := flag.Duration("evict-after", 0, "coordinator: silence before a worker is evicted and failed over (0 = 10x heartbeat)")
	revivalProbes := flag.Int("revival-probes", cluster.DefaultRevivalProbes, "coordinator: consecutive good probes a suspect needs to revive")
	failoverP99 := flag.Duration("failover-p99", cluster.DefaultFailoverP99, "coordinator: failover-time-p99 SLO threshold")
	vnodes := flag.Int("vnodes", 0, "coordinator: virtual nodes per worker on the placement ring (0 = default)")
	flag.Parse()

	log, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch *role {
	case "", "worker":
		if *role == "worker" && *workerName == "" {
			log.Error("-role worker requires -name")
			os.Exit(2)
		}
	case "coordinator":
		runCoordinator(log, coordinatorConfig{
			listen:        *listen,
			workers:       *workersFlag,
			heartbeat:     *heartbeat,
			suspectAfter:  *suspectAfter,
			evictAfter:    *evictAfter,
			revivalProbes: *revivalProbes,
			drainTimeout:  *drainTimeout,
			failoverP99:   *failoverP99,
			vnodes:        *vnodes,
			enableFaults:  *enableFaults,
			faultSeed:     *faultSeed,
		})
		return
	default:
		log.Error("bad -role (want \"\", worker, or coordinator)", "role", *role)
		os.Exit(2)
	}
	walSync, err := wal.ParseSyncPolicy(*walSyncFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	var tracer *obs.RingTracer
	if *events > 0 {
		tracer = obs.NewRingTracer(*events)
	}
	var inj *faults.Injector
	if *enableFaults {
		inj = faults.New(faults.Options{Seed: *faultSeed, Metrics: reg})
	}
	var spans *span.Tracer
	if *traceSample > 0 {
		spans = span.New(span.Config{Sample: *traceSample, Metrics: reg})
	}

	prefix := ""
	if *workerName != "" {
		prefix = *workerName + "-"
	}
	m := emud.NewManager(emud.Options{
		SessionIDPrefix:       prefix,
		Shards:                *shards,
		Granularity:           *granularity,
		MaxSessions:           *maxSessions,
		IdleTimeout:           *idleTimeout,
		DrainTimeout:          *drainTimeout,
		PumpShards:            *pumpShards,
		MaxSessionInFlight:    *maxInflight,
		MaxInFlightBytes:      *maxBytes,
		Store:                 emud.NewStore(emud.StoreOptions{Capacity: *traceCache, Metrics: reg, Faults: inj, StrictTraces: *strictTraces}),
		Faults:                inj,
		SnapshotPath:          *snapshotPath,
		SnapshotInterval:      *snapshotEvery,
		StreamWALDir:          *walDir,
		StreamWALSync:         walSync,
		StreamWALSegmentBytes: *walSegment,
		StreamIdleTimeout:     *streamIdle,
		StreamQuotaBytes:      *streamQuota,
		SpillDir:              *spillDir,
		HeapHighWater:         *memHigh,
		PinnedBudget:          *pinnedBudget,
		Metrics:               reg,
		Spans:                 spans,
		FlightSpans:           *flightCap,
		Logger:                log,
	})

	if *doRecover {
		if *snapshotPath == "" && *walDir == "" {
			log.Error("-recover requires -snapshot and/or -wal-dir")
			os.Exit(1)
		}
		// Streams first: snapshot-restored sessions rebind to live traces
		// by stream name, so the store must know them before m.Recover.
		if *walDir != "" {
			n, err := m.Streams().Recover()
			if err != nil {
				log.Error("stream recovery incomplete", "err", err, "recovered", n)
			} else if n > 0 {
				log.Info("recovered streams from WAL", "streams", n, "dir", *walDir)
			}
		}
		if *snapshotPath != "" {
			n, err := m.Recover(*snapshotPath)
			if err != nil {
				log.Error("recovery failed", "err", err, "restored", n)
			} else if n > 0 {
				log.Info("recovered sessions from snapshot", "sessions", n, "path", *snapshotPath)
			}
		}
	}

	srv, err := emud.NewAPI(m, reg, tracer).Serve(*listen)
	if err != nil {
		log.Error("control listener failed", "err", err)
		os.Exit(1)
	}
	log.Info("control plane up",
		"addr", srv.Addr(),
		"shards", m.Wheel().Shards(),
		"granularity", m.Wheel().Granularity(),
		"max_sessions", *maxSessions,
		"trace_sample", *traceSample,
		"role", *role)

	clustered := *role == "worker" && *coordURL != ""
	if clustered {
		self := *advertise
		if self == "" {
			self = "http://" + srv.Addr()
		}
		if err := registerWithCoordinator(*coordURL, *workerName, self); err != nil {
			log.Error("registration with coordinator failed", "coordinator", *coordURL, "err", err)
			_ = srv.Close()
			m.Close()
			os.Exit(1)
		}
		log.Info("registered with coordinator", "coordinator", *coordURL, "name", *workerName, "advertise", self)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Info("draining on signal", "signal", s.String(), "sessions", m.Count(), "timeout", *drainTimeout)
	start := time.Now()
	if clustered {
		// Flip health to "draining" but keep serving: the coordinator's
		// next probe sees it and live-migrates our sessions away. Tear the
		// listener down only once the farm is empty or the bound expires.
		m.BeginDrain()
		deadline := time.Now().Add(*drainTimeout)
		for m.Count() > 0 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		if n := m.Count(); n > 0 {
			log.Warn("drain bound expired with sessions still local", "sessions", n)
		} else {
			log.Info("all sessions migrated off")
		}
	}
	_ = srv.Close()
	m.Close()
	log.Info("drained", "took", time.Since(start).Round(time.Millisecond))
}

// registerWithCoordinator announces this worker to the coordinator's
// control plane, retrying while the coordinator is still coming up.
func registerWithCoordinator(coord, name, addr string) error {
	body, err := json.Marshal(cluster.WorkerSpec{Name: name, Addr: addr})
	if err != nil {
		return err
	}
	bo := faults.Backoff{Attempts: 10, Base: 200 * time.Millisecond, Max: 2 * time.Second}
	return bo.Do(func() error {
		res, err := http.Post(strings.TrimSuffix(coord, "/")+"/v1/cluster/register",
			"application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer res.Body.Close()
		if res.StatusCode >= 300 {
			return fmt.Errorf("register: coordinator said %d", res.StatusCode)
		}
		return nil
	})
}

// coordinatorConfig is the flag subset the coordinator role consumes.
type coordinatorConfig struct {
	listen        string
	workers       string
	heartbeat     time.Duration
	suspectAfter  time.Duration
	evictAfter    time.Duration
	revivalProbes int
	drainTimeout  time.Duration
	failoverP99   time.Duration
	vnodes        int
	enableFaults  bool
	faultSeed     int64
}

// runCoordinator runs the cluster control plane: no sessions of its own,
// just placement, health leases, failover, and the aggregated proxy.
func runCoordinator(log *slog.Logger, cfg coordinatorConfig) {
	specs, err := parseWorkers(cfg.workers)
	if err != nil {
		log.Error("bad -workers", "err", err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	var inj *faults.Injector
	if cfg.enableFaults {
		inj = faults.New(faults.Options{Seed: cfg.faultSeed, Metrics: reg})
	} else {
		inj = faults.New(faults.Options{Seed: cfg.faultSeed})
	}
	c := cluster.New(cluster.Options{
		Workers:           specs,
		HeartbeatInterval: cfg.heartbeat,
		SuspectAfter:      cfg.suspectAfter,
		EvictAfter:        cfg.evictAfter,
		RevivalProbes:     cfg.revivalProbes,
		DrainTimeout:      cfg.drainTimeout,
		FailoverP99:       cfg.failoverP99,
		VirtualNodes:      cfg.vnodes,
		Retry:             faults.Backoff{Attempts: 4, Base: 50 * time.Millisecond, Max: time.Second},
		Faults:            inj,
		Metrics:           reg,
		Logger:            log,
	})

	// The cluster routes plus the obs surface (/metrics, /debug/pprof)
	// on one listener; the coordinator's own /healthz wins the overlap.
	mux := http.NewServeMux()
	mux.Handle("/", c.Handler())
	mux.Handle("/metrics", obs.Mux(reg, nil))
	mux.Handle("/debug/", obs.Mux(reg, nil))
	hsrv := &http.Server{Addr: cfg.listen, Handler: mux}
	go func() {
		if err := hsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Error("coordinator listener failed", "err", err)
			os.Exit(1)
		}
	}()
	log.Info("coordinator up",
		"addr", cfg.listen,
		"workers", len(specs),
		"heartbeat", cfg.heartbeat)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Info("coordinator shutting down", "signal", s.String())
	_ = hsrv.Close()
	c.Close()
}

// parseWorkers parses "name=url[,name=url...]" into worker specs.
func parseWorkers(s string) ([]cluster.WorkerSpec, error) {
	if s == "" {
		return nil, nil
	}
	var specs []cluster.WorkerSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("want name=url, got %q", part)
		}
		specs = append(specs, cluster.WorkerSpec{Name: name, Addr: addr})
	}
	return specs, nil
}
