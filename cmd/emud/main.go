// Command emud runs the multi-tenant emulation daemon: a farm of
// trace-modulated sessions behind an HTTP/JSON control plane. Each session
// is one emulated mobile link — a modulation engine replaying a
// network-quality trace — and can front live UDP traffic through an
// attached relay. All sessions share one sharded timer wheel and one trace
// store.
//
// Usage:
//
//	emud [-listen :8091] [-shards 4] [-granularity 10ms] [-tick 10ms]
//	     [-max-sessions 4096] [-idle-timeout 0] [-drain-timeout 5s]
//	     [-trace-cache 64] [-events 4096]
//	     [-max-session-inflight 0] [-max-inflight-bytes 0]
//	     [-snapshot PATH] [-snapshot-interval 10s] [-recover]
//	     [-faults] [-fault-seed 0]
//
// The control plane:
//
//	POST   /v1/sessions           create (and by default start) a session
//	GET    /v1/sessions           list sessions
//	GET    /v1/sessions/{id}      inspect one session
//	POST   /v1/sessions/{id}/start
//	POST   /v1/sessions/{id}/stop[?drain=2s]
//	DELETE /v1/sessions/{id}      stop and remove
//	GET    /v1/farm               farm-wide summary
//	GET    /v1/faults             fault-injection points (with -faults)
//	POST   /v1/faults             arm a point: {"name":..,"rate":..,"delay_ms":..}
//	DELETE /v1/faults             disarm every point
//	GET    /metrics               Prometheus-style export (per-session labels)
//	GET    /debug/events          recent engine events
//
// With -snapshot the daemon periodically writes a crash-recovery file of
// every live session's spec and replay cursor; after a crash, restarting
// with -recover restores those sessions (same IDs, cursors
// fast-forwarded) before the control plane accepts traffic.
//
// SIGINT/SIGTERM drain every session gracefully before exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tracemod/internal/emud"
	"tracemod/internal/faults"
	"tracemod/internal/obs"
)

func main() {
	listen := flag.String("listen", ":8091", "control-plane listen address")
	shards := flag.Int("shards", 0, "timer-wheel shards (0 = default)")
	granularity := flag.Duration("granularity", 0, "timer-wheel coalescing tick (0 = paper's 10ms; negative = exact)")
	maxSessions := flag.Int("max-sessions", emud.DefaultMaxSessions, "maximum concurrent sessions")
	idleTimeout := flag.Duration("idle-timeout", 0, "expire sessions idle this long (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", emud.DefaultDrainTimeout, "graceful-drain bound on shutdown")
	traceCache := flag.Int("trace-cache", emud.DefaultStoreCapacity, "trace-store LRU capacity")
	strictTraces := flag.Bool("strict-traces", false, "refuse damaged or dirty trace files instead of salvaging them")
	events := flag.Int("events", 4096, "event-trace ring capacity (0 disables)")
	maxInflight := flag.Int("max-session-inflight", 0, "per-session in-flight packet cap (0 = unlimited)")
	maxBytes := flag.Int64("max-inflight-bytes", 0, "farm-wide in-flight byte budget (0 = unlimited)")
	snapshotPath := flag.String("snapshot", "", "crash-recovery snapshot file (empty disables)")
	snapshotEvery := flag.Duration("snapshot-interval", emud.DefaultSnapshotInterval, "periodic snapshot cadence")
	doRecover := flag.Bool("recover", false, "restore sessions from the -snapshot file on startup")
	enableFaults := flag.Bool("faults", false, "enable the fault-injection control plane (/v1/faults)")
	faultSeed := flag.Int64("fault-seed", 0, "seed for the fault injector's deterministic streams")
	flag.Parse()

	reg := obs.NewRegistry()
	var tracer *obs.RingTracer
	if *events > 0 {
		tracer = obs.NewRingTracer(*events)
	}
	var inj *faults.Injector
	if *enableFaults {
		inj = faults.New(faults.Options{Seed: *faultSeed, Metrics: reg})
	}

	m := emud.NewManager(emud.Options{
		Shards:             *shards,
		Granularity:        *granularity,
		MaxSessions:        *maxSessions,
		IdleTimeout:        *idleTimeout,
		DrainTimeout:       *drainTimeout,
		MaxSessionInFlight: *maxInflight,
		MaxInFlightBytes:   *maxBytes,
		Store:              emud.NewStore(emud.StoreOptions{Capacity: *traceCache, Metrics: reg, Faults: inj, StrictTraces: *strictTraces}),
		Faults:             inj,
		SnapshotPath:       *snapshotPath,
		SnapshotInterval:   *snapshotEvery,
		Metrics:            reg,
	})

	if *doRecover {
		if *snapshotPath == "" {
			fmt.Fprintln(os.Stderr, "emud: -recover requires -snapshot")
			os.Exit(1)
		}
		n, err := m.Recover(*snapshotPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "emud: recovery: %v (restored %d sessions)\n", err, n)
		} else if n > 0 {
			fmt.Printf("emud: recovered %d sessions from %s\n", n, *snapshotPath)
		}
	}

	srv, err := emud.NewAPI(m, reg, tracer).Serve(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emud: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("emud: control plane on %s (shards=%d granularity=%v max-sessions=%d)\n",
		srv.Addr(), m.Wheel().Shards(), m.Wheel().Granularity(), *maxSessions)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("emud: %v — draining %d sessions (timeout %v)\n", s, m.Count(), *drainTimeout)
	start := time.Now()
	_ = srv.Close()
	m.Close()
	fmt.Printf("emud: drained in %v\n", time.Since(start).Round(time.Millisecond))
}
