// Command scenario describes the built-in mobile scenarios and dumps their
// characteristic figures (Figures 2-5): observed signal level plus
// distilled latency, bandwidth, and loss per checkpoint (or as histograms
// for the stationary Chatterbox scenario).
//
// Usage:
//
//	scenario                 # list scenarios
//	scenario -name Porter    # dump Figure 2's series
package main

import (
	"flag"
	"fmt"
	"os"

	"tracemod/internal/expt"
	"tracemod/internal/scenario"
)

func main() {
	name := flag.String("name", "", "scenario to dump (empty = list all)")
	trials := flag.Int("trials", 4, "collection traversals to combine")
	seed := flag.Int64("seed", 1997, "base seed")
	flag.Parse()

	if *name == "" {
		fmt.Println("built-in scenarios:")
		for _, sc := range scenario.All() {
			kind := "stationary"
			if sc.Motion {
				kind = "mobile"
			}
			fmt.Printf("  %-12s %-10s traversal %-8v segments %d interferers %d\n",
				sc.Name, kind, sc.Profile.Duration(), len(sc.Profile.Segments), sc.Interferers)
		}
		return
	}

	sc, ok := scenario.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "scenario: unknown scenario %q\n", *name)
		os.Exit(1)
	}
	o := expt.Default()
	o.Trials = *trials
	o.BaseSeed = *seed
	fig, err := expt.FigScenario(sc, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(fig.Format())
}
