// Command distill performs the distillation phase: it reads a collected
// trace (tracefmt) and writes the replay trace — the list of
// network-quality tuples ⟨d, F, Vb, Vr, L⟩ — in the replay text format.
//
// Usage:
//
//	distill -i porter0.trace -o porter0.replay [-window 5s] [-step 1s]
//
// Family mode distills several traversals of the same path and writes
// optimistic/typical/pessimistic envelope replay traces (Section 6's
// benchmark-family application):
//
//	distill -family -o porter porter0.trace porter1.trace porter2.trace
//
// Follow mode tails a collected trace that is still being written and
// streams tuples to the output as their windows freeze, so the replay
// trace can be consumed while collection runs (live collect→emulate):
//
//	distill -follow -i porter0.trace -o porter0.replay [-poll 200ms] [-idle-exit 30s]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/distill"
	"tracemod/internal/distill/stream"
	"tracemod/internal/replay"
	"tracemod/internal/tracefmt"
)

func main() {
	in := flag.String("i", "", "input collected trace (required)")
	out := flag.String("o", "", "output replay trace (default input with .replay)")
	window := flag.Duration("window", 5*time.Second, "sliding window width")
	step := flag.Duration("step", time.Second, "tuple emission period")
	verbose := flag.Bool("v", false, "print every tuple")
	family := flag.Bool("family", false, "treat trailing args as a trace family; write envelope traces to <o>.{optimistic,typical,pessimistic}.replay")
	strict := flag.Bool("strict", false, "refuse imperfect input instead of sanitizing it (implies strict parsing)")
	salvage := flag.Bool("salvage", false, "parse damaged traces in salvage mode instead of aborting")
	follow := flag.Bool("follow", false, "tail a growing collected trace, streaming tuples as windows freeze")
	poll := flag.Duration("poll", 200*time.Millisecond, "follow mode: how often to re-check the input at the live edge")
	idleExit := flag.Duration("idle-exit", 0, "follow mode: finish when the input stops growing for this long (0 = only on signal)")
	flag.Parse()

	if *strict && *salvage {
		fmt.Fprintln(os.Stderr, "distill: -strict and -salvage are mutually exclusive")
		os.Exit(1)
	}
	cfg := distill.Config{Window: *window, Step: *step, Strict: *strict}

	if *follow {
		if *family {
			fmt.Fprintln(os.Stderr, "distill: -follow and -family are mutually exclusive")
			os.Exit(1)
		}
		if *in == "" {
			fmt.Fprintln(os.Stderr, "distill: -follow requires -i")
			os.Exit(1)
		}
		path := *out
		if path == "" {
			path = strings.TrimSuffix(*in, ".trace") + ".replay"
		}
		scfg := stream.Config{Window: *window, Step: *step, Strict: *strict}
		if err := runFollow(*in, path, scfg, *salvage, *poll, *idleExit); err != nil {
			fmt.Fprintf(os.Stderr, "distill: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *family {
		if err := runFamily(*out, flag.Args(), cfg, *salvage); err != nil {
			fmt.Fprintf(os.Stderr, "distill: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *in == "" {
		fmt.Fprintln(os.Stderr, "distill: -i is required")
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = strings.TrimSuffix(*in, ".trace") + ".replay"
	}

	tr, err := readCollected(*in, *salvage)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distill: %v\n", err)
		os.Exit(1)
	}

	res, err := distill.Distill(tr, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distill: %v\n", err)
		os.Exit(1)
	}
	if !res.Collected.Clean() {
		fmt.Fprintf(os.Stderr, "distill: input sanitized: %s\n", res.Collected)
	}

	o, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distill: %v\n", err)
		os.Exit(1)
	}
	defer o.Close()
	if err := replay.Write(o, res.Replay); err != nil {
		fmt.Fprintf(os.Stderr, "distill: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("distilled %q (%s): %s -> %s\n", *in, tr.Header.Comment, res.Describe(), path)
	fmt.Printf("mean bottleneck bandwidth %.2f Mb/s over %v\n",
		res.Replay.MeanVb().BitsPerSec()/1e6, res.Replay.TotalDuration())
	if *verbose {
		for i, t := range res.Replay {
			fmt.Printf("%4d %v\n", i, t)
		}
	}
}

// readCollected parses one collected trace, strictly or in salvage mode.
func readCollected(path string, salvage bool) (*tracefmt.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !salvage {
		return tracefmt.ReadAll(f)
	}
	tr, rep, err := tracefmt.SalvageAll(f)
	if err != nil {
		return nil, err
	}
	if !rep.Clean() {
		fmt.Fprintf(os.Stderr, "distill: %s: %s\n", path, rep)
	}
	return tr, nil
}

// runFamily distills each member trace and writes the family envelopes.
func runFamily(prefix string, paths []string, cfg distill.Config, salvage bool) error {
	if len(paths) == 0 {
		return fmt.Errorf("family mode needs trace files as arguments")
	}
	if prefix == "" {
		prefix = "family"
	}
	var fam replay.Family
	for _, path := range paths {
		tr, err := readCollected(path, salvage)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		res, err := distill.Distill(tr, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: %s\n", path, res.Describe())
		fam = append(fam, res.Replay)
	}
	env, err := fam.Envelope(cfg.Step)
	if err != nil {
		return err
	}
	for name, tr := range map[string]core.Trace{
		"optimistic":  env.Optimistic,
		"typical":     env.Typical,
		"pessimistic": env.Pessimistic,
	} {
		path := fmt.Sprintf("%s.%s.replay", prefix, name)
		o, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := replay.Write(o, tr); err != nil {
			o.Close()
			return err
		}
		o.Close()
		fmt.Printf("wrote %s (%v, mean bottleneck %.2f Mb/s)\n",
			path, tr.TotalDuration(), tr.MeanVb().BitsPerSec()/1e6)
	}
	return nil
}
