package main

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/distill/stream"
	"tracemod/internal/replay"
	"tracemod/internal/tracefmt"
)

// runFollow tails a growing collected trace: records are fed through the
// streaming distiller as the collector appends them, and each tuple is
// flushed to the output the moment its window freezes, so the replay
// trace is usable (by `emud` or a second distill) while collection is
// still running. The tail ends on SIGINT/SIGTERM or — with -idle-exit —
// when the input stops growing for that long; either way the distiller
// closes cleanly and the final windows are flushed.
func runFollow(in, out string, cfg stream.Config, salvage bool, poll, idleExit time.Duration) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()

	o, err := os.Create(out)
	if err != nil {
		return err
	}
	defer o.Close()
	sw, err := replay.NewStreamWriter(o)
	if err != nil {
		return err
	}

	var werr error
	cfg.OnTuple = func(t core.Tuple) {
		if werr == nil {
			werr = sw.Append(t)
		}
	}
	d := stream.New(cfg)
	r := tracefmt.NewStreamReader(tracefmt.StreamOptions{Salvage: salvage})

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	ingest := func(recs []any) error {
		for _, rec := range recs {
			if err := d.Ingest(rec); err != nil {
				return err
			}
		}
		if werr != nil {
			return werr
		}
		return sw.Flush()
	}

	buf := make([]byte, 64<<10)
	idleSince := time.Now()
	interrupted := false
tail:
	for {
		n, rerr := f.Read(buf)
		if n > 0 {
			idleSince = time.Now()
			if err := r.Feed(buf[:n]); err != nil {
				return err
			}
			recs, derr := r.ReadAvailable()
			if err := ingest(recs); err != nil {
				return err
			}
			if derr != nil {
				return derr
			}
			continue
		}
		if rerr != nil && rerr != io.EOF {
			return rerr
		}
		// At the live edge. Wait for growth, a signal, or idle expiry.
		if idleExit > 0 && time.Since(idleSince) >= idleExit {
			fmt.Fprintf(os.Stderr, "distill: input idle for %v, finishing\n", idleExit)
			break
		}
		select {
		case <-stop:
			interrupted = true
			break tail
		case <-time.After(poll):
		}
	}

	// Seal: drain the reader's tail, close the distiller, flush.
	recs, rep, ferr := r.Finish()
	if ierr := ingest(recs); ierr != nil {
		return ierr
	}
	if ferr != nil {
		return ferr
	}
	if rep != nil && !rep.Clean() {
		fmt.Fprintf(os.Stderr, "distill: %s: %s\n", in, rep)
	}
	sum, err := d.Close()
	if err != nil {
		return err
	}
	if err := sw.Flush(); err != nil {
		return err
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "distill: interrupted, output sealed")
	}
	fmt.Printf("followed %q: %d tuples over %v -> %s\n",
		in, len(sum.Replay), sum.Replay.TotalDuration(), out)
	return nil
}
