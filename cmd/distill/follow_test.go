package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/distill"
	"tracemod/internal/distill/stream"
	"tracemod/internal/packet"
	"tracemod/internal/replay"
	"tracemod/internal/tracefmt"
)

// Follow mode must converge on the batch answer: tailing a file that
// grows in arbitrary chunks yields a byte-identical replay trace once
// the writer goes idle.
func TestFollowMatchesBatch(t *testing.T) {
	const s1, s2 = 60, 1028
	params := core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 800}
	tr := &tracefmt.Trace{Header: tracefmt.Header{Device: "wavelan0"}}
	seq := uint16(0)
	for sec := 0; sec < 30; sec++ {
		base := int64(sec) * int64(time.Second)
		emit := func(size int, rtt time.Duration) {
			seq++
			tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
				At: base, Dir: tracefmt.DirOut, Size: uint16(size),
				Protocol: packet.ProtoICMP, ICMPType: packet.ICMPEcho, ID: 1, Seq: seq, RTT: -1,
			})
			tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
				At: base + int64(rtt), Dir: tracefmt.DirIn, Size: uint16(size),
				Protocol: packet.ProtoICMP, ICMPType: packet.ICMPEchoReply, ID: 1, Seq: seq, RTT: int64(rtt),
			})
		}
		emit(s1, params.RoundTrip(s1))
		emit(s2, params.RoundTrip(s2))
		emit(s2, params.RoundTrip(s2)+params.Vb.Cost(s2))
	}
	sort.SliceStable(tr.Packets, func(i, j int) bool { return tr.Packets[i].At < tr.Packets[j].At })
	var raw bytes.Buffer
	if err := tracefmt.WriteAll(&raw, tr); err != nil {
		t.Fatal(err)
	}

	batch, err := distill.Distill(tr, distill.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := replay.Write(&want, batch.Replay); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	in := filepath.Join(dir, "live.trace")
	out := filepath.Join(dir, "live.replay")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer f.Close()
		data := raw.Bytes()
		for off := 0; off < len(data); off += 777 {
			end := off + 777
			if end > len(data) {
				end = len(data)
			}
			f.Write(data[off:end])
			f.Sync()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	cfg := stream.Config{Window: 5 * time.Second, Step: time.Second}
	if err := runFollow(in, out, cfg, false, 5*time.Millisecond, 300*time.Millisecond); err != nil {
		t.Fatalf("runFollow: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("followed replay diverges from batch:\ngot %d bytes, want %d", len(got), want.Len())
	}
}
