// Package transport provides the transport protocols the paper's
// benchmarks run over: a UDP-style datagram socket (NFS's transport) and a
// Reno-style TCP ("RenoLite") with slow start, congestion avoidance, fast
// retransmit, and Jacobson/Karn retransmission timing (FTP's and HTTP's
// transport). Both run over simnet nodes and carry real wire bytes, so the
// modulation layer below sees authentic traffic.
package transport

import (
	"errors"
	"fmt"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
)

// MaxDatagram is the largest UDP payload that fits the MTU unfragmented.
const MaxDatagram = packet.MTU - packet.IPv4HeaderLen - packet.UDPHeaderLen

// Datagram is one received UDP message.
type Datagram struct {
	From     packet.IPAddr
	FromPort uint16
	Data     []byte
}

// UDPStack demultiplexes UDP traffic on one node.
type UDPStack struct {
	node      *simnet.Node
	socks     map[uint16]*UDPSocket
	ephemeral uint16
}

// NewUDP installs a UDP stack on node.
func NewUDP(node *simnet.Node) *UDPStack {
	u := &UDPStack{node: node, socks: map[uint16]*UDPSocket{}, ephemeral: 32768}
	node.RegisterProto(packet.ProtoUDP, u.input)
	return u
}

// Node returns the stack's node.
func (u *UDPStack) Node() *simnet.Node { return u.node }

func (u *UDPStack) input(n *simnet.Node, ip packet.IPv4) {
	dg := packet.UDP(ip.Payload())
	if dg.Valid() != nil || !dg.ChecksumOK(ip.Src(), ip.Dst()) {
		return
	}
	sock, ok := u.socks[dg.DstPort()]
	if !ok {
		return
	}
	data := append([]byte(nil), dg.Payload()...)
	sock.recvq.TrySend(Datagram{From: ip.Src(), FromPort: dg.SrcPort(), Data: data})
}

// ErrPortInUse is returned by Bind for an occupied port.
var ErrPortInUse = errors.New("transport: port in use")

// Bind opens a socket on the given port; port 0 picks an ephemeral one.
func (u *UDPStack) Bind(port uint16) (*UDPSocket, error) {
	if port == 0 {
		for u.socks[u.ephemeral] != nil {
			u.ephemeral++
			if u.ephemeral == 0 {
				u.ephemeral = 32768
			}
		}
		port = u.ephemeral
		u.ephemeral++
	} else if u.socks[port] != nil {
		return nil, ErrPortInUse
	}
	s := &UDPSocket{
		stack: u,
		port:  port,
		recvq: sim.NewChan[Datagram](u.node.Sched(), 128),
	}
	u.socks[port] = s
	return s, nil
}

// UDPSocket is a bound datagram endpoint.
type UDPSocket struct {
	stack *UDPStack
	port  uint16
	recvq *sim.Chan[Datagram]
}

// Port returns the bound local port.
func (s *UDPSocket) Port() uint16 { return s.port }

// SendTo transmits data to the remote address and port. Payloads larger
// than MaxDatagram panic: this stack does not fragment, so protocols above
// must chunk (as the NFS substrate does).
func (s *UDPSocket) SendTo(dst packet.IPAddr, port uint16, data []byte) bool {
	if len(data) > MaxDatagram {
		panic(fmt.Sprintf("transport: datagram %d exceeds %d", len(data), MaxDatagram))
	}
	src, ok := s.stack.node.SrcFor(dst)
	if !ok {
		return false
	}
	dg := packet.MarshalUDP(s.port, port, src, dst, data)
	return s.stack.node.SendIP(packet.ProtoUDP, dst, dg)
}

// Recv blocks until a datagram arrives.
func (s *UDPSocket) Recv(p *sim.Proc) (Datagram, bool) {
	return s.recvq.Recv(p)
}

// RecvTimeout blocks until a datagram arrives or d elapses.
func (s *UDPSocket) RecvTimeout(p *sim.Proc, d time.Duration) (Datagram, bool, bool) {
	return s.recvq.RecvTimeout(p, d)
}

// Close releases the port.
func (s *UDPSocket) Close() {
	delete(s.stack.socks, s.port)
	s.recvq.Close()
}
