package transport

import (
	"bytes"
	"testing"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
)

var (
	ipA  = packet.IP4(10, 0, 0, 1)
	ipB  = packet.IP4(10, 0, 0, 2)
	mask = packet.IP4(255, 255, 255, 0)
)

// pair builds two nodes on a medium with the given quality.
func pair(s *sim.Scheduler, q simnet.QualityProvider) (*simnet.Node, *simnet.Node) {
	m := simnet.NewMedium(s, "lan", q)
	a := simnet.NewNode(s, "a")
	a.AttachNIC(m, ipA, mask)
	b := simnet.NewNode(s, "b")
	b.AttachNIC(m, ipB, mask)
	return a, b
}

func fastLAN() simnet.Static {
	return simnet.Static{Latency: time.Millisecond, PerByte: 800} // 10 Mb/s
}

func lossyLAN(loss float64) simnet.Static {
	q := fastLAN()
	q.Loss = loss
	return q
}

func TestUDPSendRecv(t *testing.T) {
	s := sim.New(1)
	a, b := pair(s, fastLAN())
	ua, ub := NewUDP(a), NewUDP(b)
	sa, err := ua.Bind(0)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ub.Bind(2049)
	if err != nil {
		t.Fatal(err)
	}
	var got Datagram
	s.Spawn("recv", func(p *sim.Proc) {
		got, _ = sb.Recv(p)
		// Echo back to the sender's port.
		sb.SendTo(got.From, got.FromPort, []byte("pong"))
	})
	var echo Datagram
	s.Spawn("send", func(p *sim.Proc) {
		sa.SendTo(ipB, 2049, []byte("ping"))
		echo, _, _ = sa.RecvTimeout(p, time.Second)
	})
	s.Run()
	if string(got.Data) != "ping" || got.From != ipA {
		t.Fatalf("server got %+v", got)
	}
	if string(echo.Data) != "pong" || echo.FromPort != 2049 {
		t.Fatalf("client got %+v", echo)
	}
}

func TestUDPBindErrors(t *testing.T) {
	s := sim.New(1)
	a, _ := pair(s, fastLAN())
	u := NewUDP(a)
	if _, err := u.Bind(53); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Bind(53); err != ErrPortInUse {
		t.Fatalf("err = %v", err)
	}
	s1, _ := u.Bind(0)
	s2, _ := u.Bind(0)
	if s1.Port() == s2.Port() {
		t.Fatal("ephemeral ports must differ")
	}
	s1.Close()
	if _, err := u.Bind(s1.Port()); err != nil {
		t.Fatal("closed port should be reusable")
	}
}

func TestUDPOversizePanics(t *testing.T) {
	s := sim.New(1)
	a, _ := pair(s, fastLAN())
	u := NewUDP(a)
	sock, _ := u.Bind(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sock.SendTo(ipB, 1, make([]byte, MaxDatagram+1))
}

func TestUDPRecvTimeout(t *testing.T) {
	s := sim.New(1)
	a, _ := pair(s, fastLAN())
	u := NewUDP(a)
	sock, _ := u.Bind(0)
	var timedOut bool
	s.Spawn("r", func(p *sim.Proc) {
		_, _, timedOut = sock.RecvTimeout(p, 50*time.Millisecond)
	})
	s.Run()
	if !timedOut {
		t.Fatal("should time out with no traffic")
	}
}

func TestTCPHandshakeAndEcho(t *testing.T) {
	s := sim.New(2)
	a, b := pair(s, fastLAN())
	ta, tb := NewTCP(a), NewTCP(b)
	l, err := tb.Listen(21)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("server", func(p *sim.Proc) {
		c, ok := l.Accept(p)
		if !ok {
			t.Error("accept failed")
			return
		}
		data, err := c.ReadFull(p, 5)
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		c.Write(p, append([]byte("echo:"), data...))
		c.Close()
	})
	var got []byte
	s.Spawn("client", func(p *sim.Proc) {
		c, err := ta.Dial(p, ipB, 21)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Write(p, []byte("hello"))
		got, _ = c.ReadFull(p, 10)
		c.Close()
	})
	s.Run()
	if string(got) != "echo:hello" {
		t.Fatalf("got %q", got)
	}
}

func TestTCPDialRefused(t *testing.T) {
	s := sim.New(2)
	a, b := pair(s, fastLAN())
	ta := NewTCP(a)
	NewTCP(b) // stack exists but no listener
	var err error
	s.Spawn("client", func(p *sim.Proc) {
		_, err = ta.Dial(p, ipB, 9999)
	})
	s.Run()
	if err != ErrRefused {
		t.Fatalf("err = %v, want refused", err)
	}
}

func TestTCPBulkTransferClean(t *testing.T) {
	s := sim.New(3)
	a, b := pair(s, fastLAN())
	ta, tb := NewTCP(a), NewTCP(b)
	l, _ := tb.Listen(20)
	const size = 1 << 20 // 1 MB
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var received []byte
	var done sim.Time
	s.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		for {
			chunk, err := c.Read(p, 64*1024)
			if err != nil {
				break
			}
			received = append(received, chunk...)
		}
		done = p.Now()
	})
	s.Spawn("client", func(p *sim.Proc) {
		c, err := ta.Dial(p, ipB, 20)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if _, err := c.Write(p, payload); err != nil {
			t.Errorf("write: %v", err)
		}
		c.Close()
	})
	s.Run()
	if !bytes.Equal(received, payload) {
		t.Fatalf("received %d bytes, want %d intact", len(received), size)
	}
	// Sanity: ~1MB at 10Mb/s should take roughly a second, not minutes.
	if done.Duration() > 10*time.Second {
		t.Fatalf("transfer took %v, throughput collapsed", done.Duration())
	}
}

func TestTCPBulkTransferLossy(t *testing.T) {
	// 5% loss each way: retransmission must deliver everything intact.
	s := sim.New(4)
	a, b := pair(s, lossyLAN(0.05))
	ta, tb := NewTCP(a), NewTCP(b)
	l, _ := tb.Listen(20)
	const size = 256 * 1024
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	var received []byte
	s.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		for {
			chunk, err := c.Read(p, 64*1024)
			if err != nil {
				break
			}
			received = append(received, chunk...)
		}
	})
	var rtx int
	s.Spawn("client", func(p *sim.Proc) {
		c, err := ta.Dial(p, ipB, 20)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Write(p, payload)
		c.Close()
		rtx = c.Retransmits + c.FastRetrans
	})
	s.RunUntil(sim.Time(10 * time.Minute))
	if !bytes.Equal(received, payload) {
		t.Fatalf("received %d bytes, want %d intact under loss", len(received), size)
	}
	if rtx == 0 {
		t.Fatal("5%% loss must force retransmissions")
	}
}

func TestTCPConcurrentConnections(t *testing.T) {
	s := sim.New(5)
	a, b := pair(s, fastLAN())
	ta, tb := NewTCP(a), NewTCP(b)
	l, _ := tb.Listen(80)
	const conns = 5
	s.Spawn("server", func(p *sim.Proc) {
		for i := 0; i < conns; i++ {
			c, ok := l.Accept(p)
			if !ok {
				return
			}
			s.Spawn("server-conn", func(p *sim.Proc) {
				data, err := c.Read(p, 1024)
				if err != nil {
					return
				}
				c.Write(p, data)
				c.Close()
			})
		}
	})
	done := 0
	for i := 0; i < conns; i++ {
		i := i
		s.Spawn("client", func(p *sim.Proc) {
			c, err := ta.Dial(p, ipB, 80)
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			msg := []byte{byte(i), byte(i + 1)}
			c.Write(p, msg)
			got, err := c.ReadFull(p, 2)
			if err == nil && bytes.Equal(got, msg) {
				done++
			}
			c.Close()
		})
	}
	s.Run()
	if done != conns {
		t.Fatalf("completed %d of %d connections", done, conns)
	}
}

func TestTCPCloseDeliversEOFAfterData(t *testing.T) {
	s := sim.New(6)
	a, b := pair(s, fastLAN())
	ta, tb := NewTCP(a), NewTCP(b)
	l, _ := tb.Listen(20)
	var got []byte
	var eof bool
	s.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		for {
			chunk, err := c.Read(p, 1024)
			if err != nil {
				eof = err == ErrClosed
				break
			}
			got = append(got, chunk...)
		}
	})
	s.Spawn("client", func(p *sim.Proc) {
		c, _ := ta.Dial(p, ipB, 20)
		c.Write(p, []byte("last words"))
		c.Close()
	})
	s.Run()
	if string(got) != "last words" || !eof {
		t.Fatalf("got %q eof=%v", got, eof)
	}
}

func TestTCPWriteAfterCloseFails(t *testing.T) {
	s := sim.New(6)
	a, b := pair(s, fastLAN())
	ta, tb := NewTCP(a), NewTCP(b)
	l, _ := tb.Listen(20)
	s.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		c.Read(p, 10)
	})
	var err error
	s.Spawn("client", func(p *sim.Proc) {
		c, _ := ta.Dial(p, ipB, 20)
		c.Close()
		_, err = c.Write(p, []byte("x"))
	})
	s.Run()
	if err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestTCPRTTEstimation(t *testing.T) {
	s := sim.New(7)
	a, b := pair(s, simnet.Static{Latency: 20 * time.Millisecond, PerByte: 100})
	ta, tb := NewTCP(a), NewTCP(b)
	l, _ := tb.Listen(20)
	s.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		for {
			if _, err := c.Read(p, 64*1024); err != nil {
				break
			}
		}
	})
	var srtt time.Duration
	s.Spawn("client", func(p *sim.Proc) {
		c, _ := ta.Dial(p, ipB, 20)
		for i := 0; i < 20; i++ {
			c.Write(p, make([]byte, 512))
			p.Sleep(100 * time.Millisecond)
		}
		srtt = c.srtt
		c.Close()
	})
	s.Run()
	// True RTT ≈ 2*20ms + tx time; srtt should be in that neighbourhood.
	if srtt < 30*time.Millisecond || srtt > 80*time.Millisecond {
		t.Fatalf("srtt = %v, want ≈40-50ms", srtt)
	}
}

func TestTCPSlowStartGrowsCwnd(t *testing.T) {
	s := sim.New(8)
	a, b := pair(s, fastLAN())
	ta, tb := NewTCP(a), NewTCP(b)
	l, _ := tb.Listen(20)
	s.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		for {
			if _, err := c.Read(p, 64*1024); err != nil {
				break
			}
		}
	})
	var initial, grown int
	s.Spawn("client", func(p *sim.Proc) {
		c, _ := ta.Dial(p, ipB, 20)
		initial = c.cwnd
		c.Write(p, make([]byte, 128*1024))
		p.Sleep(2 * time.Second)
		grown = c.cwnd
		c.Close()
	})
	s.Run()
	if initial != InitCwndSegs*MSS {
		t.Fatalf("initial cwnd = %d", initial)
	}
	if grown <= initial*2 {
		t.Fatalf("cwnd grew %d -> %d, want substantial growth", initial, grown)
	}
}

func TestTCPReordering(t *testing.T) {
	// A hook that swaps every pair of consecutive data segments forces
	// out-of-order arrival; the stream must still reassemble exactly.
	s := sim.New(9)
	a, b := pair(s, fastLAN())
	var held []byte
	a.AddOutboundHook(simnet.HookFunc(func(dir simnet.Direction, ip []byte, next func([]byte)) {
		v := packet.IPv4(ip)
		if v.Valid() == nil && v.Protocol() == packet.ProtoTCP && len(packet.TCP(v.Payload()).Payload()) > 0 {
			if held == nil {
				held = ip
				return
			}
			first := held
			held = nil
			next(ip)    // later segment goes first
			next(first) // then the held one
			return
		}
		next(ip)
	}))
	ta, tb := NewTCP(a), NewTCP(b)
	l, _ := tb.Listen(20)
	payload := make([]byte, 100*1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var received []byte
	s.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		for {
			chunk, err := c.Read(p, 64*1024)
			if err != nil {
				break
			}
			received = append(received, chunk...)
		}
	})
	s.Spawn("client", func(p *sim.Proc) {
		c, _ := ta.Dial(p, ipB, 20)
		c.Write(p, payload)
		// Flush any final held segment by sending a tail marker after a
		// pause (the hook holds at most one segment).
		p.Sleep(time.Second)
		c.Close()
	})
	s.RunUntil(sim.Time(5 * time.Minute))
	if !bytes.Equal(received, payload) {
		t.Fatalf("received %d bytes, want %d intact under reordering", len(received), len(payload))
	}
}

func TestTCPDeterministic(t *testing.T) {
	run := func() time.Duration {
		s := sim.New(11)
		a, b := pair(s, lossyLAN(0.02))
		ta, tb := NewTCP(a), NewTCP(b)
		l, _ := tb.Listen(20)
		var done sim.Time
		s.Spawn("server", func(p *sim.Proc) {
			c, _ := l.Accept(p)
			for {
				if _, err := c.Read(p, 64*1024); err != nil {
					break
				}
			}
			done = p.Now()
		})
		s.Spawn("client", func(p *sim.Proc) {
			c, _ := ta.Dial(p, ipB, 20)
			c.Write(p, make([]byte, 200*1024))
			c.Close()
		})
		s.RunUntil(sim.Time(5 * time.Minute))
		return done.Duration()
	}
	if a, b := run(), run(); a != b || a == 0 {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
}
