// RenoLite: a compact TCP implementation sufficient for the paper's
// benchmarks — three-way handshake, sliding window with cumulative ACKs,
// slow start and congestion avoidance, fast retransmit on triple duplicate
// ACKs, Jacobson RTT estimation with Karn's rule and exponential backoff,
// out-of-order reassembly, graceful FIN close, and a persist probe against
// zero windows. It deliberately omits what the benchmarks never exercise
// (urgent data, simultaneous open, time-wait recycling).

package transport

import (
	"errors"
	"math/rand"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
)

// TCP tuning constants.
const (
	MSS          = packet.MTU - packet.IPv4HeaderLen - packet.TCPHeaderLen // 1460
	RecvBufSize  = 64 * 1024
	SendBufSize  = 64 * 1024
	InitialRTO   = 3 * time.Second
	MinRTO       = 300 * time.Millisecond
	MaxRTO       = 16 * time.Second
	MaxSynRetry  = 6
	MaxRetransmt = 12
	InitCwndSegs = 2
	// DelAckDelay bounds how long an acknowledgement may be withheld.
	DelAckDelay = 100 * time.Millisecond
)

// Errors returned by the TCP API.
var (
	ErrTimeout     = errors.New("transport: connection timed out")
	ErrRefused     = errors.New("transport: connection refused")
	ErrClosed      = errors.New("transport: connection closed")
	ErrListenInUse = errors.New("transport: listen port in use")
)

// connState is the TCP state machine, reduced to the states RenoLite uses.
type connState int

const (
	stSynSent connState = iota
	stSynRcvd
	stEstablished
	stFinWait   // we sent FIN, awaiting its ack
	stCloseWait // peer sent FIN, we still may send
	stLastAck   // peer FIN'd and we sent our FIN
	stClosed
)

type connKey struct {
	localPort  uint16
	remoteIP   packet.IPAddr
	remotePort uint16
}

// TCPStack demultiplexes TCP traffic on one node.
type TCPStack struct {
	node      *simnet.Node
	s         *sim.Scheduler
	rng       *rand.Rand
	conns     map[connKey]*Conn
	listeners map[uint16]*Listener
	ephemeral uint16
}

// NewTCP installs a TCP stack on node.
func NewTCP(node *simnet.Node) *TCPStack {
	t := &TCPStack{
		node:      node,
		s:         node.Sched(),
		rng:       node.Sched().RNG("tcp/" + node.Name),
		conns:     map[connKey]*Conn{},
		listeners: map[uint16]*Listener{},
		ephemeral: 40000,
	}
	node.RegisterProto(packet.ProtoTCP, t.input)
	return t
}

// Node returns the stack's node.
func (t *TCPStack) Node() *simnet.Node { return t.node }

// Listener accepts inbound connections on a port.
type Listener struct {
	stack   *TCPStack
	port    uint16
	backlog *sim.Chan[*Conn]
}

// Listen opens a passive socket on port.
func (t *TCPStack) Listen(port uint16) (*Listener, error) {
	if t.listeners[port] != nil {
		return nil, ErrListenInUse
	}
	l := &Listener{stack: t, port: port, backlog: sim.NewChan[*Conn](t.s, 16)}
	t.listeners[port] = l
	return l, nil
}

// Accept blocks until a connection is established; ok is false if the
// listener was closed.
func (l *Listener) Accept(p *sim.Proc) (*Conn, bool) {
	return l.backlog.Recv(p)
}

// Close stops accepting connections.
func (l *Listener) Close() {
	delete(l.stack.listeners, l.port)
	l.backlog.Close()
}

// Dial opens a connection to raddr:rport, blocking until established. SYNs
// are retransmitted with exponential backoff up to MaxSynRetry times.
func (t *TCPStack) Dial(p *sim.Proc, raddr packet.IPAddr, rport uint16) (*Conn, error) {
	for t.conns[connKey{t.ephemeral, raddr, rport}] != nil {
		t.ephemeral++
		if t.ephemeral < 40000 {
			t.ephemeral = 40000
		}
	}
	lport := t.ephemeral
	t.ephemeral++
	c := t.newConn(connKey{lport, raddr, rport}, stSynSent)
	c.iss = uint32(t.rng.Int63n(1 << 30))
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	c.sendSeg(packet.TCPSyn, c.iss, 0, nil)
	c.armRetransmit()

	c.established.Recv(p) // resumed on establishment or failure
	if c.state == stClosed {
		return nil, c.failure
	}
	return c, nil
}

func (t *TCPStack) newConn(key connKey, st connState) *Conn {
	c := &Conn{
		stack:       t,
		key:         key,
		state:       st,
		cwnd:        InitCwndSegs * MSS,
		ssthresh:    SendBufSize,
		rto:         InitialRTO,
		rwnd:        RecvBufSize,
		oo:          map[uint32][]byte{},
		established: sim.NewChan[struct{}](t.s, 1),
		readable:    sim.NewChan[struct{}](t.s, 1),
		writable:    sim.NewChan[struct{}](t.s, 1),
	}
	c.rtxFn = c.onRetransmitTimer
	c.delAckFn = c.onDelAckTimer
	t.conns[key] = c
	return c
}

// Conn is one TCP connection endpoint.
type Conn struct {
	stack *TCPStack
	key   connKey
	state connState

	// Send side.
	iss      uint32
	sndUna   uint32 // oldest unacknowledged sequence number
	sndNxt   uint32 // next sequence number to send
	sendBuf  []byte // unsent+unacked bytes; sendBuf[0] is at seq sndUna
	sendFin  bool   // application closed; FIN after buffer drains
	finSent  bool
	finSeq   uint32
	cwnd     int
	ssthresh int
	rwnd     int // peer's advertised window
	dupAcks  int

	// Fast recovery (NewReno-style).
	inRecovery bool
	recoverSeq uint32 // recovery ends when this sequence is acked

	// RTT estimation (Jacobson/Karn).
	srtt, rttvar time.Duration
	haveSRTT     bool
	rto          time.Duration
	sampleSeq    uint32 // ack covering this seq yields an RTT sample
	sampleAt     sim.Time
	sampleValid  bool

	// Retransmission/persist timer (cancellable; at most one armed).
	rtxTimer   sim.Timer
	rtxFn      func() // cached onRetransmitTimer closure
	retransmit int    // consecutive timeouts

	// Receive side.
	irs     uint32
	rcvNxt  uint32
	recvBuf []byte
	oo      map[uint32][]byte // out-of-order segments keyed by seq
	peerFin bool
	finRcvd uint32 // sequence number of peer FIN

	// Delayed ACK state (ack every second segment or after DelAckDelay).
	delAcks     int
	delAckTimer sim.Timer
	delAckFn    func() // cached onDelAckTimer closure

	// App wakeups.
	established *sim.Chan[struct{}]
	readable    *sim.Chan[struct{}]
	writable    *sim.Chan[struct{}]

	// listener receives this conn on establishment (passive opens only).
	listener *Listener

	failure error

	// Stats.
	Retransmits int
	FastRetrans int
}

// seqLT reports a < b in 32-bit sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLE reports a <= b in sequence space.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

func (c *Conn) sched() *sim.Scheduler { return c.stack.s }

// localIP returns our address toward the peer.
func (c *Conn) localIP() packet.IPAddr {
	ip, _ := c.stack.node.SrcFor(c.key.remoteIP)
	return ip
}

// recvWindow is the space we can advertise.
func (c *Conn) recvWindow() int {
	w := RecvBufSize - len(c.recvBuf)
	if w < 0 {
		w = 0
	}
	if w > 0xffff {
		w = 0xffff
	}
	return w
}

func (c *Conn) sendSeg(flags uint8, seq, ack uint32, data []byte) {
	f := packet.TCPFields{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: seq, Ack: ack, Flags: flags, Window: uint16(c.recvWindow()),
	}
	seg := packet.MarshalTCP(f, c.localIP(), c.key.remoteIP, data)
	c.stack.node.SendIP(packet.ProtoTCP, c.key.remoteIP, seg)
}

func (c *Conn) sendAck() {
	c.delAcks = 0
	c.delAckTimer.Stop()
	c.sendSeg(packet.TCPAck, c.sndNxt, c.rcvNxt, nil)
}

// ackSoon implements the delayed-ACK policy: acknowledge at once for every
// second in-order segment, otherwise within DelAckDelay.
func (c *Conn) ackSoon() {
	c.delAcks++
	if c.delAcks >= 2 {
		c.sendAck()
		return
	}
	if c.delAckTimer.Active() {
		return
	}
	c.delAckTimer = c.sched().AfterTimer(DelAckDelay, c.delAckFn)
}

func (c *Conn) onDelAckTimer() {
	if c.delAcks > 0 && c.state != stClosed {
		c.sendAck()
	}
}

// flight is the number of bytes in flight.
func (c *Conn) flight() int { return int(c.sndNxt - c.sndUna) }

// trySend transmits new data allowed by min(cwnd, rwnd).
func (c *Conn) trySend() {
	if c.state != stEstablished && c.state != stCloseWait && c.state != stSynRcvd {
		return
	}
	wnd := c.cwnd
	if c.rwnd < wnd {
		wnd = c.rwnd
	}
	for {
		unsent := len(c.sendBuf) - c.flight()
		if c.finSent {
			unsent = 0
		}
		if unsent <= 0 {
			break
		}
		room := wnd - c.flight()
		if room <= 0 {
			c.armPersistIfNeeded()
			return
		}
		n := unsent
		if n > MSS {
			n = MSS
		}
		if n > room {
			// Avoid silly-window dribbles unless it's the last data.
			if room < MSS && unsent > room {
				c.armPersistIfNeeded()
				return
			}
			n = room
		}
		off := c.flight()
		seq := c.sndNxt
		data := c.sendBuf[off : off+n]
		flags := uint8(packet.TCPAck | packet.TCPPsh)
		c.sendSeg(flags, seq, c.rcvNxt, data)
		c.sndNxt += uint32(n)
		if !c.sampleValid {
			c.sampleSeq = c.sndNxt
			c.sampleAt = c.sched().Now()
			c.sampleValid = true
		}
		c.armRetransmit()
	}
	c.maybeSendFin()
}

// maybeSendFin sends our FIN once all data is out.
func (c *Conn) maybeSendFin() {
	if !c.sendFin || c.finSent {
		return
	}
	if c.flight() != len(c.sendBuf) {
		return // unsent data remains
	}
	c.finSeq = c.sndNxt
	c.sndNxt++
	c.finSent = true
	c.sendSeg(packet.TCPFin|packet.TCPAck, c.finSeq, c.rcvNxt, nil)
	if c.state == stCloseWait {
		c.state = stLastAck
	} else if c.state == stEstablished {
		c.state = stFinWait
	}
	c.armRetransmit()
}

// armRetransmit starts the retransmission timer if anything is in flight.
func (c *Conn) armRetransmit() {
	if c.rtxTimer.Active() {
		return
	}
	if c.flight() == 0 && c.state != stSynSent && !c.finSent {
		return
	}
	c.rtxTimer = c.sched().AfterTimer(c.rto, c.rtxFn)
}

// disarmRetransmit cancels the pending timer outright, so acked
// connections leave no dead events behind in the scheduler heap.
func (c *Conn) disarmRetransmit() {
	c.rtxTimer.Stop()
}

func (c *Conn) onRetransmitTimer() {
	if c.state == stClosed {
		return
	}
	if c.flight() == 0 && c.state != stSynSent && !c.finSent {
		return
	}
	c.retransmit++
	limit := MaxRetransmt
	if c.state == stSynSent {
		limit = MaxSynRetry
	}
	if c.retransmit > limit {
		c.fail(ErrTimeout)
		return
	}
	// Karn: no RTT sample across a retransmission; back off the timer.
	c.sampleValid = false
	c.rto *= 2
	if c.rto > MaxRTO {
		c.rto = MaxRTO
	}
	c.Retransmits++

	switch c.state {
	case stSynSent:
		c.sendSeg(packet.TCPSyn, c.iss, 0, nil)
	case stSynRcvd:
		c.sendSeg(packet.TCPSyn|packet.TCPAck, c.iss, c.rcvNxt, nil)
	default:
		// Timeout congestion response: multiplicative decrease, restart
		// slow start, retransmit the oldest outstanding segment.
		half := c.flight() / 2
		if half < 2*MSS {
			half = 2 * MSS
		}
		c.ssthresh = half
		c.cwnd = MSS
		c.dupAcks = 0
		c.retransmitOldest()
	}
	c.armRetransmit()
}

// retransmitOldest resends the segment starting at sndUna (or the FIN).
func (c *Conn) retransmitOldest() {
	if c.flight() == 0 || (c.finSent && c.sndUna == c.finSeq) {
		if c.finSent {
			c.sendSeg(packet.TCPFin|packet.TCPAck, c.finSeq, c.rcvNxt, nil)
		}
		return
	}
	n := c.flight()
	if c.finSent {
		n-- // the FIN occupies one sequence slot beyond the data
	}
	if n > MSS {
		n = MSS
	}
	if n > len(c.sendBuf) {
		n = len(c.sendBuf)
	}
	if n <= 0 {
		if c.finSent {
			c.sendSeg(packet.TCPFin|packet.TCPAck, c.finSeq, c.rcvNxt, nil)
		}
		return
	}
	c.sendSeg(packet.TCPAck|packet.TCPPsh, c.sndUna, c.rcvNxt, c.sendBuf[:n])
}

// armPersistIfNeeded keeps a probe going against a zero/small peer window.
func (c *Conn) armPersistIfNeeded() {
	if c.rwnd >= MSS || len(c.sendBuf) == c.flight() {
		return
	}
	if c.rtxTimer.Active() {
		return
	}
	c.rtxTimer = c.sched().AfterTimer(c.rto, func() {
		if c.state == stClosed {
			return
		}
		// Window probe: one byte beyond the window.
		if len(c.sendBuf) > c.flight() {
			off := c.flight()
			c.sendSeg(packet.TCPAck, c.sndNxt, c.rcvNxt, c.sendBuf[off:off+1])
			c.sndNxt++
			c.armRetransmit()
		}
	})
}

func (c *Conn) fail(err error) {
	if c.state == stClosed {
		return
	}
	c.state = stClosed
	c.failure = err
	c.disarmRetransmit()
	c.delAckTimer.Stop()
	delete(c.stack.conns, c.key)
	c.established.TrySend(struct{}{})
	c.readable.TrySend(struct{}{})
	c.writable.TrySend(struct{}{})
}

// updateRTT folds in an RTT sample (Jacobson).
func (c *Conn) updateRTT(sample time.Duration) {
	if !c.haveSRTT {
		c.srtt = sample
		c.rttvar = sample / 2
		c.haveSRTT = true
	} else {
		delta := sample - c.srtt
		if delta < 0 {
			delta = -delta
		}
		c.rttvar = (3*c.rttvar + delta) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < MinRTO {
		c.rto = MinRTO
	}
	if c.rto > MaxRTO {
		c.rto = MaxRTO
	}
}

// input is the stack's segment demultiplexer.
func (t *TCPStack) input(n *simnet.Node, ip packet.IPv4) {
	seg := packet.TCP(ip.Payload())
	if seg.Valid() != nil || !seg.ChecksumOK(ip.Src(), ip.Dst()) {
		return
	}
	key := connKey{seg.DstPort(), ip.Src(), seg.SrcPort()}
	if c, ok := t.conns[key]; ok {
		c.segment(seg)
		return
	}
	// New connection?
	if seg.Flags()&packet.TCPSyn != 0 && seg.Flags()&packet.TCPAck == 0 {
		if l, ok := t.listeners[seg.DstPort()]; ok {
			l.acceptSyn(ip.Src(), seg)
			return
		}
	}
	// No socket: refuse non-RST segments.
	if seg.Flags()&packet.TCPRst == 0 {
		rst := packet.MarshalTCP(packet.TCPFields{
			SrcPort: seg.DstPort(), DstPort: seg.SrcPort(),
			Seq: seg.Ack(), Ack: seg.Seq() + 1, Flags: packet.TCPRst | packet.TCPAck,
		}, ip.Dst(), ip.Src(), nil)
		t.node.SendIP(packet.ProtoTCP, ip.Src(), rst)
	}
}

func (l *Listener) acceptSyn(from packet.IPAddr, seg packet.TCP) {
	t := l.stack
	key := connKey{l.port, from, seg.SrcPort()}
	c := t.newConn(key, stSynRcvd)
	c.listener = l
	c.irs = seg.Seq()
	c.rcvNxt = c.irs + 1
	c.iss = uint32(t.rng.Int63n(1 << 30))
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	c.rwnd = int(seg.Window())
	c.sendSeg(packet.TCPSyn|packet.TCPAck, c.iss, c.rcvNxt, nil)
	c.armRetransmit()
}

// segment handles one arriving segment for an existing connection.
func (c *Conn) segment(seg packet.TCP) {
	flags := seg.Flags()
	if flags&packet.TCPRst != 0 {
		c.fail(ErrRefused)
		return
	}

	switch c.state {
	case stSynSent:
		if flags&(packet.TCPSyn|packet.TCPAck) == packet.TCPSyn|packet.TCPAck && seg.Ack() == c.iss+1 {
			c.irs = seg.Seq()
			c.rcvNxt = c.irs + 1
			c.sndUna = seg.Ack()
			c.rwnd = int(seg.Window())
			c.state = stEstablished
			c.retransmit = 0
			c.disarmRetransmit()
			c.sendAck()
			c.established.TrySend(struct{}{})
		}
		return
	case stSynRcvd:
		if flags&packet.TCPAck != 0 && seg.Ack() == c.iss+1 {
			c.sndUna = seg.Ack()
			c.rwnd = int(seg.Window())
			c.state = stEstablished
			c.retransmit = 0
			c.disarmRetransmit()
			if c.listener != nil {
				c.listener.backlog.TrySend(c)
			}
			// The handshake ACK may carry data; fall through.
		} else if flags&packet.TCPSyn != 0 {
			// Duplicate SYN: re-answer.
			c.sendSeg(packet.TCPSyn|packet.TCPAck, c.iss, c.rcvNxt, nil)
			return
		} else {
			return
		}
	case stClosed:
		return
	}

	// ACK processing.
	if flags&packet.TCPAck != 0 {
		c.processAck(seg)
	}

	// Data and FIN processing.
	data := seg.Payload()
	if len(data) > 0 {
		c.processData(seg.Seq(), data)
	}
	if flags&packet.TCPFin != 0 {
		finSeq := seg.Seq() + uint32(len(data))
		if !c.peerFin {
			c.peerFin = true
			c.finRcvd = finSeq
		}
		if c.rcvNxt == c.finRcvd {
			c.rcvNxt = c.finRcvd + 1
			if c.state == stEstablished {
				c.state = stCloseWait
			} else if c.state == stFinWait {
				c.teardown()
			}
			c.sendAck()
			c.readable.TrySend(struct{}{})
		} else {
			c.sendAck() // FIN beyond a hole: ack what we have
		}
	}
}

func (c *Conn) processAck(seg packet.TCP) {
	ack := seg.Ack()
	if seqLT(c.sndUna, ack) && seqLE(ack, c.sndNxt) {
		// New data acknowledged.
		acked := ack - c.sndUna
		dataAcked := acked
		if c.finSent && seqLE(c.finSeq+1, ack) {
			dataAcked-- // the FIN's slot
		}
		if int(dataAcked) <= len(c.sendBuf) {
			c.sendBuf = c.sendBuf[dataAcked:]
		} else {
			c.sendBuf = nil
		}
		c.sndUna = ack
		c.retransmit = 0
		c.dupAcks = 0
		c.rwnd = int(seg.Window())
		// Forward progress collapses any retransmission backoff, as BSD
		// recomputes the timer from srtt on every ack; without this a
		// backed-off timer outlives the loss episode that caused it
		// (Karn's rule blocks new samples during recovery).
		if c.haveSRTT {
			c.rto = c.srtt + 4*c.rttvar
			if c.rto < MinRTO {
				c.rto = MinRTO
			}
			if c.rto > MaxRTO {
				c.rto = MaxRTO
			}
		}

		// RTT sample (Karn-validated).
		if c.sampleValid && seqLE(c.sampleSeq, ack) {
			c.updateRTT(c.sched().Now().Sub(c.sampleAt))
			c.sampleValid = false
		}

		// Congestion window management.
		switch {
		case c.inRecovery && seqLE(c.recoverSeq, ack):
			// Recovery complete: deflate.
			c.inRecovery = false
			c.cwnd = c.ssthresh
		case c.inRecovery:
			// Partial ack: the next hole is already lost; retransmit it
			// immediately (NewReno) and stay in recovery.
			c.retransmitOldest()
		case c.cwnd < c.ssthresh:
			// Slow start with appropriate byte counting.
			inc := int(dataAcked)
			if inc > 2*MSS {
				inc = 2 * MSS
			}
			c.cwnd += inc
		default:
			c.cwnd += MSS * MSS / c.cwnd // congestion avoidance
		}
		if c.cwnd > SendBufSize {
			c.cwnd = SendBufSize
		}

		c.disarmRetransmit()
		if c.flight() > 0 || (c.finSent && seqLT(ack, c.finSeq+1)) {
			c.armRetransmit()
		}

		// FIN fully acknowledged?
		if c.finSent && seqLE(c.finSeq+1, ack) {
			switch c.state {
			case stFinWait:
				if c.peerFin && c.rcvNxt == c.finRcvd+1 {
					c.teardown()
				}
				// else: wait for peer FIN
			case stLastAck:
				c.teardown()
			}
		}
		c.writable.TrySend(struct{}{})
		c.trySend()
		return
	}
	if ack == c.sndUna && c.flight() > 0 && len(seg.Payload()) == 0 {
		// Duplicate ACK.
		c.dupAcks++
		switch {
		case c.dupAcks == 3 && !c.inRecovery:
			// Fast retransmit, then NewReno-style fast recovery with
			// window inflation so transmission continues.
			half := c.flight() / 2
			if half < 2*MSS {
				half = 2 * MSS
			}
			c.ssthresh = half
			c.inRecovery = true
			c.recoverSeq = c.sndNxt
			c.cwnd = c.ssthresh + 3*MSS
			c.FastRetrans++
			c.sampleValid = false
			c.retransmitOldest()
			c.trySend()
		case c.inRecovery:
			c.cwnd += MSS // inflate per additional dup ack
			c.trySend()
		case c.dupAcks < 3:
			// Limited transmit (RFC 3042): send one new segment per early
			// duplicate ack so a small window can still produce the third
			// dupack instead of stalling into a timeout.
			c.limitedTransmit()
		}
		return
	}
	// Stale ACK: update window only.
	if ack == c.sndUna {
		c.rwnd = int(seg.Window())
		c.writable.TrySend(struct{}{})
		c.trySend()
	}
}

func (c *Conn) processData(seq uint32, data []byte) {
	// Trim data already received.
	if seqLT(seq, c.rcvNxt) {
		skip := c.rcvNxt - seq
		if int(skip) >= len(data) {
			c.sendAck() // pure duplicate
			return
		}
		data = data[skip:]
		seq = c.rcvNxt
	}
	if seq != c.rcvNxt {
		// Out of order: buffer (bounded by window) and send a dup ack.
		// Keep the longest data seen at a given offset; retransmissions
		// may re-segment the stream at different boundaries.
		if existing, dup := c.oo[seq]; dup {
			if len(data) > len(existing) {
				c.oo[seq] = append([]byte(nil), data...)
			}
		} else if len(c.oo) < 256 {
			c.oo[seq] = append([]byte(nil), data...)
		}
		c.sendAck()
		return
	}
	// In order: append, then drain out-of-order segments. Segment
	// boundaries may not align with the hole (post-RTO retransmissions
	// re-segment), so the drain is overlap-tolerant rather than an
	// exact-key lookup.
	filledHole := len(c.oo) > 0
	c.recvBuf = append(c.recvBuf, data...)
	c.rcvNxt += uint32(len(data))
	c.drainOutOfOrder()
	// Deferred FIN that data just reached?
	finReached := false
	if c.peerFin && c.rcvNxt == c.finRcvd {
		c.rcvNxt = c.finRcvd + 1
		finReached = true
		if c.state == stEstablished {
			c.state = stCloseWait
		} else if c.state == stFinWait {
			c.teardown()
		}
	}
	// Acknowledge immediately when this segment interacted with a hole or
	// a FIN (the sender needs the news for loss recovery); otherwise the
	// delayed-ACK policy applies.
	if filledHole || len(c.oo) > 0 || finReached {
		c.sendAck()
	} else {
		c.ackSoon()
	}
	c.readable.TrySend(struct{}{})
}

// limitedTransmit sends one previously unsent segment in response to an
// early duplicate ack, ignoring cwnd but respecting the peer's window.
func (c *Conn) limitedTransmit() {
	unsent := len(c.sendBuf) - c.flight()
	if c.finSent || unsent <= 0 {
		return
	}
	room := c.rwnd - c.flight()
	if room <= 0 {
		return
	}
	n := unsent
	if n > MSS {
		n = MSS
	}
	if n > room {
		n = room
	}
	off := c.flight()
	c.sendSeg(packet.TCPAck|packet.TCPPsh, c.sndNxt, c.rcvNxt, c.sendBuf[off:off+n])
	c.sndNxt += uint32(n)
	c.armRetransmit()
}

// drainOutOfOrder folds buffered segments into the in-order stream. Any
// entry overlapping rcvNxt contributes its unseen suffix; entries entirely
// below rcvNxt are discarded. The final recvBuf/rcvNxt state is unique
// regardless of map iteration order because the stream content at a given
// sequence number is fixed.
func (c *Conn) drainOutOfOrder() {
	for {
		advanced := false
		for seq, data := range c.oo {
			end := seq + uint32(len(data))
			if seqLE(end, c.rcvNxt) {
				delete(c.oo, seq) // entirely stale
				continue
			}
			if seqLE(seq, c.rcvNxt) {
				skip := c.rcvNxt - seq
				c.recvBuf = append(c.recvBuf, data[skip:]...)
				c.rcvNxt = end
				delete(c.oo, seq)
				advanced = true
			}
		}
		if !advanced {
			return
		}
	}
}

// teardown finishes a fully closed connection.
func (c *Conn) teardown() {
	if c.state == stClosed {
		return
	}
	c.state = stClosed
	c.disarmRetransmit()
	c.delAckTimer.Stop()
	delete(c.stack.conns, c.key)
	c.readable.TrySend(struct{}{})
	c.writable.TrySend(struct{}{})
}

// --- Application API (called from simulation processes) ---

// Write queues data for transmission, blocking while the send buffer is
// full. It returns len(data) or an error if the connection failed.
func (c *Conn) Write(p *sim.Proc, data []byte) (int, error) {
	written := 0
	for written < len(data) {
		if c.state == stClosed {
			if c.failure != nil {
				return written, c.failure
			}
			return written, ErrClosed
		}
		if c.sendFin {
			return written, ErrClosed
		}
		room := SendBufSize - len(c.sendBuf)
		if room <= 0 {
			c.writable.Recv(p)
			continue
		}
		n := len(data) - written
		if n > room {
			n = room
		}
		c.sendBuf = append(c.sendBuf, data[written:written+n]...)
		written += n
		c.trySend()
	}
	return written, nil
}

// Read returns up to max buffered bytes, blocking until data is available,
// the peer closes (io-style: remaining data first, then ErrClosed), or the
// connection fails.
func (c *Conn) Read(p *sim.Proc, max int) ([]byte, error) {
	for {
		if len(c.recvBuf) > 0 {
			n := len(c.recvBuf)
			if n > max {
				n = max
			}
			out := append([]byte(nil), c.recvBuf[:n]...)
			c.recvBuf = c.recvBuf[n:]
			if RecvBufSize-len(c.recvBuf) >= RecvBufSize/2 {
				// Window reopened substantially; let the peer know.
				if c.state != stClosed {
					c.sendAck()
				}
			}
			return out, nil
		}
		if c.peerFin && c.rcvNxt == c.finRcvd+1 {
			return nil, ErrClosed // clean EOF
		}
		if c.state == stClosed {
			if c.failure != nil {
				return nil, c.failure
			}
			return nil, ErrClosed
		}
		c.readable.Recv(p)
	}
}

// ReadFull reads exactly n bytes unless the connection ends first.
func (c *Conn) ReadFull(p *sim.Proc, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for len(out) < n {
		chunk, err := c.Read(p, n-len(out))
		if err != nil {
			return out, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// Close initiates a graceful close: queued data is still delivered, then a
// FIN is sent. Close does not block.
func (c *Conn) Close() {
	if c.state == stClosed || c.sendFin {
		return
	}
	c.sendFin = true
	c.trySend()
	c.maybeSendFin()
}

// State description for diagnostics.
func (c *Conn) StateString() string {
	switch c.state {
	case stSynSent:
		return "SYN-SENT"
	case stSynRcvd:
		return "SYN-RCVD"
	case stEstablished:
		return "ESTABLISHED"
	case stFinWait:
		return "FIN-WAIT"
	case stCloseWait:
		return "CLOSE-WAIT"
	case stLastAck:
		return "LAST-ACK"
	default:
		return "CLOSED"
	}
}

// Closed reports whether the connection has fully terminated.
func (c *Conn) Closed() bool { return c.state == stClosed }
