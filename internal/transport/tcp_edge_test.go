package transport

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
)

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		a, b   uint32
		lt, le bool
	}{
		{1, 2, true, true},
		{2, 2, false, true},
		{3, 2, false, false},
		// Wraparound: 2^32-1 < 1 in sequence space.
		{0xffffffff, 1, true, true},
		{1, 0xffffffff, false, false},
	}
	for _, c := range cases {
		if seqLT(c.a, c.b) != c.lt {
			t.Fatalf("seqLT(%d,%d) = %v", c.a, c.b, !c.lt)
		}
		if seqLE(c.a, c.b) != c.le {
			t.Fatalf("seqLE(%d,%d) = %v", c.a, c.b, !c.le)
		}
	}
}

// Property: for any offset below 2^31, a < a+delta in sequence space.
func TestSeqOrderProperty(t *testing.T) {
	f := func(a uint32, delta uint32) bool {
		d := delta % (1 << 30)
		if d == 0 {
			return seqLE(a, a) && !seqLT(a, a)
		}
		return seqLT(a, a+d) && !seqLT(a+d, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSYNRetransmissionUnderBlackout(t *testing.T) {
	// Total blackout for 4 seconds, then clear: Dial must retransmit its
	// SYN with backoff and eventually connect.
	s := sim.New(1)
	a, b := pair(s, fastLAN())
	blackout := true
	s.At(sim.Time(4*time.Second), func() { blackout = false })
	a.AddOutboundHook(simnet.HookFunc(func(dir simnet.Direction, ip []byte, next func([]byte)) {
		if blackout {
			return
		}
		next(ip)
	}))
	ta, tb := NewTCP(a), NewTCP(b)
	l, _ := tb.Listen(80)
	s.Spawn("server", func(p *sim.Proc) { l.Accept(p) })
	var conn *Conn
	var err error
	var when sim.Time
	s.Spawn("client", func(p *sim.Proc) {
		conn, err = ta.Dial(p, ipB, 80)
		when = p.Now()
	})
	s.RunUntil(sim.Time(2 * time.Minute))
	if err != nil || conn == nil {
		t.Fatalf("dial after blackout: %v", err)
	}
	if when.Duration() < 4*time.Second {
		t.Fatalf("connected at %v, before the blackout lifted", when.Duration())
	}
	if conn.Retransmits == 0 {
		t.Fatal("SYN must have been retransmitted")
	}
}

func TestDialGivesUpEventually(t *testing.T) {
	// Permanent blackout: Dial must fail with ErrTimeout after its SYN
	// retry budget, not hang.
	s := sim.New(1)
	a, b := pair(s, fastLAN())
	a.AddOutboundHook(simnet.HookFunc(func(dir simnet.Direction, ip []byte, next func([]byte)) {}))
	ta := NewTCP(a)
	NewTCP(b)
	var err error
	done := false
	s.Spawn("client", func(p *sim.Proc) {
		_, err = ta.Dial(p, ipB, 80)
		done = true
	})
	s.RunUntil(sim.Time(time.Hour))
	if !done {
		t.Fatal("dial never returned")
	}
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestListenerCloseWakesAccept(t *testing.T) {
	s := sim.New(1)
	a, b := pair(s, fastLAN())
	NewTCP(a)
	tb := NewTCP(b)
	l, _ := tb.Listen(80)
	accepted := true
	s.Spawn("server", func(p *sim.Proc) {
		_, accepted = l.Accept(p)
	})
	s.At(sim.Time(time.Millisecond), func() { l.Close() })
	s.Run()
	if accepted {
		t.Fatal("Accept should report failure after Close")
	}
	if _, err := tb.Listen(80); err != nil {
		t.Fatalf("port should be reusable after close: %v", err)
	}
}

func TestListenPortConflict(t *testing.T) {
	s := sim.New(1)
	a, _ := pair(s, fastLAN())
	ta := NewTCP(a)
	if _, err := ta.Listen(80); err != nil {
		t.Fatal(err)
	}
	if _, err := ta.Listen(80); err != ErrListenInUse {
		t.Fatalf("err = %v", err)
	}
}

func TestBidirectionalSimultaneousTransfer(t *testing.T) {
	// Both sides stream at once over one connection; both directions must
	// arrive intact (exercises the shared bottleneck and ack piggypath).
	s := sim.New(5)
	a, b := pair(s, fastLAN())
	ta, tb := NewTCP(a), NewTCP(b)
	l, _ := tb.Listen(9)
	const size = 128 * 1024
	mk := func(seed byte) []byte {
		data := make([]byte, size)
		for i := range data {
			data[i] = seed + byte(i%97)
		}
		return data
	}
	up, down := mk(1), mk(2)
	var gotUp, gotDown []byte
	wg := sim.NewWaitGroup(s)
	wg.Go("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		inner := sim.NewWaitGroup(s)
		inner.Go("server-write", func(p *sim.Proc) {
			c.Write(p, down)
			c.Close()
		})
		for len(gotUp) < size {
			chunk, err := c.Read(p, 64*1024)
			if err != nil {
				break
			}
			gotUp = append(gotUp, chunk...)
		}
		inner.Wait(p)
	})
	wg.Go("client", func(p *sim.Proc) {
		c, err := ta.Dial(p, ipB, 9)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		inner := sim.NewWaitGroup(s)
		inner.Go("client-write", func(p *sim.Proc) {
			c.Write(p, up)
		})
		for len(gotDown) < size {
			chunk, err := c.Read(p, 64*1024)
			if err != nil {
				break
			}
			gotDown = append(gotDown, chunk...)
		}
		inner.Wait(p)
		c.Close()
	})
	s.RunUntil(sim.Time(10 * time.Minute))
	if !bytes.Equal(gotUp, up) {
		t.Fatalf("upstream corrupted: %d bytes", len(gotUp))
	}
	if !bytes.Equal(gotDown, down) {
		t.Fatalf("downstream corrupted: %d bytes", len(gotDown))
	}
}

func TestBurstLossRecovery(t *testing.T) {
	// A hook that drops 30 consecutive data segments mid-transfer forces
	// RTO recovery with re-segmentation; the stream must stay intact.
	s := sim.New(6)
	a, b := pair(s, fastLAN())
	dropped, startAt := 0, 100
	seen := 0
	a.AddOutboundHook(simnet.HookFunc(func(dir simnet.Direction, ip []byte, next func([]byte)) {
		v := packet.IPv4(ip)
		if v.Valid() == nil && v.Protocol() == packet.ProtoTCP && len(packet.TCP(v.Payload()).Payload()) > 0 {
			seen++
			if seen >= startAt && dropped < 30 {
				dropped++
				return
			}
		}
		next(ip)
	}))
	ta, tb := NewTCP(a), NewTCP(b)
	l, _ := tb.Listen(20)
	payload := make([]byte, 512*1024)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	var received []byte
	s.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		for {
			chunk, err := c.Read(p, 64*1024)
			if err != nil {
				break
			}
			received = append(received, chunk...)
		}
	})
	s.Spawn("client", func(p *sim.Proc) {
		c, _ := ta.Dial(p, ipB, 20)
		c.Write(p, payload)
		c.Close()
	})
	s.RunUntil(sim.Time(10 * time.Minute))
	if dropped != 30 {
		t.Fatalf("hook dropped %d, want 30", dropped)
	}
	if !bytes.Equal(received, payload) {
		t.Fatalf("received %d bytes, want %d intact after burst loss", len(received), len(payload))
	}
}

func TestConnStateStrings(t *testing.T) {
	s := sim.New(1)
	a, b := pair(s, fastLAN())
	ta, tb := NewTCP(a), NewTCP(b)
	l, _ := tb.Listen(7)
	var c *Conn
	s.Spawn("server", func(p *sim.Proc) {
		sc, _ := l.Accept(p)
		sc.Read(p, 1)
	})
	s.Spawn("client", func(p *sim.Proc) {
		c, _ = ta.Dial(p, ipB, 7)
	})
	s.RunUntil(sim.Time(time.Second))
	if c == nil || c.StateString() != "ESTABLISHED" {
		t.Fatalf("state = %v", c.StateString())
	}
	if c.Closed() {
		t.Fatal("open connection reported closed")
	}
	if c.DebugString() == "" {
		t.Fatal("debug string empty")
	}
}
