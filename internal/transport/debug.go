package transport

import "fmt"

// DebugString renders connection internals for diagnostics.
func (c *Conn) DebugString() string {
	return fmt.Sprintf("st=%s una=%d nxt=%d flight=%d buf=%d rwnd=%d cwnd=%d ssthresh=%d dup=%d rto=%v rtx=%d rtxArmed=%v rcvNxt=%d recvBuf=%d oo=%d peerFin=%v finSent=%v",
		c.StateString(), c.sndUna-c.iss, c.sndNxt-c.iss, c.flight(), len(c.sendBuf), c.rwnd, c.cwnd, c.ssthresh, c.dupAcks, c.rto, c.retransmit, c.rtxTimer.Active(), c.rcvNxt-c.irs, len(c.recvBuf), len(c.oo), c.peerFin, c.finSent)
}

// DebugConns lists the stack's conns.
func (t *TCPStack) DebugConns() []*Conn {
	var out []*Conn
	for _, c := range t.conns {
		out = append(out, c)
	}
	return out
}
