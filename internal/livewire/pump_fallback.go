//go:build !linux || !(amd64 || arm64)

package livewire

// pumpShard exists on every platform so PumpGroup compiles unchanged; a
// fallback build never constructs one (newShards returns nil and the
// group reports disabled), so relays keep their per-relay pump
// goroutines.
type pumpShard struct{}

func (sh *pumpShard) close() {}

func newShards(g *PumpGroup, n int) []*pumpShard { return nil }

func (g *PumpGroup) attachShards(r *Relay) bool { return false }
