package livewire

import (
	"errors"
	"net"
	"os"
	"runtime"
	"syscall"
	"testing"
	"time"

	"tracemod/internal/faults"
)

// reservePort grabs a loopback UDP port and releases it, so the test
// knows an address that currently refuses traffic but can be bound later.
func reservePort(t *testing.T) *net.UDPAddr {
	t.Helper()
	probe, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.LocalAddr().(*net.UDPAddr)
	probe.Close()
	return addr
}

// TestRelaySurvivesRefusedTarget proves the self-healing behavior the
// pumps gained: a relay pointed at a dead target absorbs the ICMP
// port-unreachable errors (ECONNREFUSED on the connected UDP socket)
// instead of its pump exiting, and traffic resumes by itself once the
// target comes up.
func TestRelaySurvivesRefusedTarget(t *testing.T) {
	target := reservePort(t)

	r, err := NewRelay("127.0.0.1:0", target.String(), Config{
		Trace: constTrace(time.Millisecond, 0), Tick: -1, Seed: 1,
		Retry: faults.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c := dialRelay(t, r)

	// Poke the dead target. Each relayed write bounces an ICMP refusal
	// back onto the target-side socket; the old pump exited permanently
	// on the first one.
	for i := 0; i < 10; i++ {
		if _, err := c.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Bring the target up on the very port that was refusing.
	srv, err := net.ListenUDP("udp", target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, addr, err := srv.ReadFromUDP(buf)
			if err != nil {
				return
			}
			srv.WriteToUDP(buf[:n], addr)
		}
	}()

	// Traffic must resume without touching the relay.
	buf := make([]byte, 64)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("traffic never resumed; stats: %+v", r.Stats())
		}
		if _, err := c.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		if _, err := c.Read(buf); err == nil {
			break
		}
	}
	if st := r.Stats(); st.SocketErrors == 0 {
		t.Fatalf("the refused target never registered: %+v", st)
	}
}

// TestRelayCloseInterruptsBackoff proves shutdown stays prompt: a pump
// parked in a long retry sleep must wake on r.closed, not serve out its
// backoff.
func TestRelayCloseInterruptsBackoff(t *testing.T) {
	baseline := runtime.NumGoroutine()
	target := reservePort(t)

	r, err := NewRelay("127.0.0.1:0", target.String(), Config{
		Trace: constTrace(time.Millisecond, 0), Tick: -1, Seed: 1,
		Retry: faults.Backoff{Base: time.Hour, Max: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := dialRelay(t, r)

	// Bounce a refusal off the dead target so the target-side pump walks
	// into its hour-long backoff sleep.
	for i := 0; i < 5 && r.Stats().SocketErrors == 0; i++ {
		c.Write([]byte("ping"))
		time.Sleep(10 * time.Millisecond)
	}

	start := time.Now()
	r.Close()
	// Both pumps (and the clock) must be gone promptly.
	for runtime.NumGoroutine() > baseline {
		if time.Since(start) > 5*time.Second {
			t.Fatalf("pump goroutines survived Close for %v (baseline %d, now %d)",
				time.Since(start), baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTransientSocketErrClassification(t *testing.T) {
	transient := []error{
		syscall.ECONNREFUSED,
		syscall.ECONNRESET,
		syscall.EINTR,
		syscall.EAGAIN,
		syscall.ENOBUFS,
		syscall.EHOSTUNREACH,
		syscall.ENETUNREACH,
		syscall.ENETDOWN,
		&net.OpError{Op: "read", Err: os.NewSyscallError("recvfrom", syscall.ECONNREFUSED)},
	}
	for _, err := range transient {
		if !transientSocketErr(err) {
			t.Errorf("%v must be transient", err)
		}
	}
	fatal := []error{
		net.ErrClosed,
		&net.OpError{Op: "read", Err: net.ErrClosed},
		errors.New("something unclassifiable"),
		syscall.EBADF,
	}
	for _, err := range fatal {
		if transientSocketErr(err) {
			t.Errorf("%v must not be transient", err)
		}
	}
}

// TestRecoverPumpBoundsUnknownErrors: an error the pump cannot classify
// retries a bounded number of times, then the pump gives up.
func TestRecoverPumpBoundsUnknownErrors(t *testing.T) {
	r := &Relay{
		closed: make(chan struct{}),
		retry:  faults.Backoff{Base: time.Microsecond, Max: 10 * time.Microsecond},
	}
	streak := 0
	unknown := errors.New("mystery failure")
	for i := 0; i < maxPumpErrStreak; i++ {
		if !r.recoverPump(&streak, unknown) {
			t.Fatalf("retry %d refused; budget is %d", i, maxPumpErrStreak)
		}
	}
	if r.recoverPump(&streak, unknown) {
		t.Fatal("unknown-error streak must exhaust its budget")
	}
	// A transient error is never budget-limited.
	for i := 0; i < 3*maxPumpErrStreak; i++ {
		if !r.recoverPump(&streak, syscall.ECONNREFUSED) {
			t.Fatal("transient errors must retry indefinitely")
		}
	}
	// And a closed relay stops everything immediately.
	close(r.closed)
	if r.recoverPump(&streak, syscall.ECONNREFUSED) {
		t.Fatal("recoverPump must refuse after close")
	}
}
