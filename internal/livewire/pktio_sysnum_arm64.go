//go:build linux && arm64

package livewire

// Stable kernel ABI syscall numbers for the generic (asm-generic) table.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
