// Package livewire drives the modulation engine against a real network: a
// transparent UDP relay that subjects live traffic to a replay trace's
// delays and losses in wall-clock time. It is the modern analogue of
// running the paper's modulated kernel on a physical testbed — the same
// engine the simulator uses, under a real clock and real sockets.
//
// Topology: client ⇄ relay (this process) ⇄ target server. Traffic from
// the client is treated as the mobile host's outbound direction; traffic
// from the target as inbound (and so receives delay compensation).
package livewire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/modulation"
	"tracemod/internal/obs"
	"tracemod/internal/packet"
	"tracemod/internal/simnet"
)

// RealClock implements modulation.Clock over the wall clock.
type RealClock struct {
	epoch time.Time
}

// NewRealClock starts a clock at the current instant.
func NewRealClock() *RealClock { return &RealClock{epoch: time.Now()} }

// Now implements modulation.Clock.
func (c *RealClock) Now() time.Duration { return time.Since(c.epoch) }

// AfterFunc implements modulation.Clock.
func (c *RealClock) AfterFunc(d time.Duration, fn func()) { time.AfterFunc(d, fn) }

// Config parameterizes a relay.
type Config struct {
	// Trace drives the shaping; it loops for the relay's lifetime.
	Trace core.Trace
	// Tick is the scheduling granularity (modulation.DefaultTick if 0).
	Tick time.Duration
	// InboundExtra charges target→client packets an additional per-byte
	// cost (the physical receive path); see modulation.Config.
	InboundExtra core.PerByte
	// Compensation is subtracted from Vb for target→client traffic.
	Compensation core.PerByte
	// Seed drives the drop lottery (deterministic per relay).
	Seed int64
	// Obs, if non-nil, registers the relay's and the underlying engine's
	// telemetry on the registry (tracemod_livewire_* and
	// tracemod_modulation_*). Serve it with obs.StartDebugServer for live
	// introspection of a running daemon.
	Obs *obs.Registry
	// Tracer, if non-nil, receives the engine's packet-lifecycle events.
	Tracer obs.Tracer
}

// Stats counts relay activity.
type Stats struct {
	ClientToTarget int64
	TargetToClient int64
	Dropped        int64
}

// Relay is a live packet-shaping daemon.
type Relay struct {
	engine *modulation.Engine

	clientSide *net.UDPConn // clients talk to this
	targetSide *net.UDPConn // connected toward the target

	clientAddr atomic.Pointer[net.UDPAddr]

	closeOnce sync.Once
	closed    chan struct{}

	c2t, t2c, dropped atomic.Int64
}

// NewRelay binds listenAddr for clients and connects toward targetAddr.
// Use "127.0.0.1:0" as listenAddr to pick a free port; Addr reports it.
func NewRelay(listenAddr, targetAddr string, cfg Config) (*Relay, error) {
	if len(cfg.Trace) == 0 {
		return nil, errors.New("livewire: empty trace")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	laddr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("livewire: listen addr: %w", err)
	}
	taddr, err := net.ResolveUDPAddr("udp", targetAddr)
	if err != nil {
		return nil, fmt.Errorf("livewire: target addr: %w", err)
	}
	clientSide, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	targetSide, err := net.DialUDP("udp", nil, taddr)
	if err != nil {
		clientSide.Close()
		return nil, err
	}
	eng := modulation.NewEngine(NewRealClock(), &modulation.SliceSource{Trace: cfg.Trace, Loop: true}, modulation.Config{
		Tick:         cfg.Tick,
		InboundExtra: cfg.InboundExtra,
		Compensation: cfg.Compensation,
		RNG:          rand.New(rand.NewSource(cfg.Seed)),
		Metrics:      cfg.Obs,
		Tracer:       cfg.Tracer,
	})
	r := &Relay{
		engine:     eng,
		clientSide: clientSide,
		targetSide: targetSide,
		closed:     make(chan struct{}),
	}
	if cfg.Obs != nil {
		cfg.Obs.CounterFunc("tracemod_livewire_client_to_target_total",
			"Packets relayed from the client toward the target.",
			func() float64 { return float64(r.c2t.Load()) })
		cfg.Obs.CounterFunc("tracemod_livewire_target_to_client_total",
			"Packets relayed from the target back to the client.",
			func() float64 { return float64(r.t2c.Load()) })
		cfg.Obs.CounterFunc("tracemod_livewire_dropped_total",
			"Relayed packets lost to the drop lottery.",
			func() float64 { return float64(r.dropped.Load()) })
		cfg.Obs.Gauge("tracemod_livewire_trace_tuples",
			"Tuples in the replay trace driving the relay.").Set(int64(len(cfg.Trace)))
	}
	go r.pumpClientToTarget()
	go r.pumpTargetToClient()
	return r, nil
}

// Addr returns the client-facing address.
func (r *Relay) Addr() *net.UDPAddr { return r.clientSide.LocalAddr().(*net.UDPAddr) }

// Stats returns a snapshot of relay counters.
func (r *Relay) Stats() Stats {
	return Stats{
		ClientToTarget: r.c2t.Load(),
		TargetToClient: r.t2c.Load(),
		Dropped:        r.dropped.Load(),
	}
}

// Engine exposes the underlying modulation engine (for its statistics).
func (r *Relay) Engine() *modulation.Engine { return r.engine }

// Close shuts the relay down.
func (r *Relay) Close() {
	r.closeOnce.Do(func() {
		close(r.closed)
		r.clientSide.Close()
		r.targetSide.Close()
	})
}

// wireSize approximates the IP datagram size of a UDP payload, which is
// what the model's per-byte costs apply to.
func wireSize(payload int) int {
	return payload + packet.IPv4HeaderLen + packet.UDPHeaderLen
}

func (r *Relay) pumpClientToTarget() {
	buf := make([]byte, 64*1024)
	for {
		n, addr, err := r.clientSide.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		r.clientAddr.Store(addr)
		data := make([]byte, n)
		copy(data, buf[:n])
		before := r.engine.Stats().Dropped
		r.engine.Submit(simnet.Outbound, wireSize(n), func() {
			select {
			case <-r.closed:
			default:
				if _, err := r.targetSide.Write(data); err == nil {
					r.c2t.Add(1)
				}
			}
		})
		if after := r.engine.Stats().Dropped; after > before {
			r.dropped.Add(after - before)
		}
	}
}

func (r *Relay) pumpTargetToClient() {
	buf := make([]byte, 64*1024)
	for {
		n, err := r.targetSide.Read(buf)
		if err != nil {
			return // closed
		}
		addr := r.clientAddr.Load()
		if addr == nil {
			continue // no client yet
		}
		data := make([]byte, n)
		copy(data, buf[:n])
		before := r.engine.Stats().Dropped
		r.engine.Submit(simnet.Inbound, wireSize(n), func() {
			select {
			case <-r.closed:
			default:
				if _, err := r.clientSide.WriteToUDP(data, addr); err == nil {
					r.t2c.Add(1)
				}
			}
		})
		if after := r.engine.Stats().Dropped; after > before {
			r.dropped.Add(after - before)
		}
	}
}
