// Package livewire drives the modulation engine against a real network: a
// transparent UDP relay that subjects live traffic to a replay trace's
// delays and losses in wall-clock time. It is the modern analogue of
// running the paper's modulated kernel on a physical testbed — the same
// engine the simulator uses, under a real clock and real sockets.
//
// Topology: client ⇄ relay (this process) ⇄ target server. Traffic from
// the client is treated as the mobile host's outbound direction; traffic
// from the target as inbound (and so receives delay compensation).
package livewire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/emud/wheel"
	"tracemod/internal/faults"
	"tracemod/internal/modulation"
	"tracemod/internal/obs"
	"tracemod/internal/obs/span"
	"tracemod/internal/packet"
	"tracemod/internal/simnet"
)

// RealClock implements modulation.Clock over the wall clock. It delegates
// to a single-shard timer wheel, so a standalone relay and the emud
// session farm share one scheduling path; with Granularity 0 (the
// NewRealClock default) the wheel sleeps until each exact deadline,
// preserving the historical time.AfterFunc delivery semantics while
// keeping the pending-timer population off the runtime timer heap.
type RealClock struct {
	w *wheel.Wheel
}

// NewRealClock starts a clock at the current instant with exact
// (Granularity=0) scheduling.
func NewRealClock() *RealClock { return NewRealClockGranular(0) }

// NewRealClockGranular starts a clock whose wakeups coalesce onto
// granularity boundaries (0 = exact).
func NewRealClockGranular(granularity time.Duration) *RealClock {
	return &RealClock{w: wheel.New(wheel.Options{Shards: 1, Granularity: granularity})}
}

// Now implements modulation.Clock.
func (c *RealClock) Now() time.Duration { return c.w.Now() }

// AfterFunc implements modulation.Clock.
func (c *RealClock) AfterFunc(d time.Duration, fn func()) { c.w.AfterFunc(d, fn) }

// Close stops the clock's scheduling goroutine, discarding pending
// callbacks. A relay that owns its clock closes it on Close.
func (c *RealClock) Close() { c.w.Close() }

// bufPool recycles datagram buffers across relays and packets: each
// in-flight packet holds one max-datagram buffer from read until delivery
// or drop, instead of a fresh make([]byte, n) copy per datagram. The pool
// is shared by every relay in the process (emud runs many).
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, maxDatagram)
	return &b
}}

// maxDatagram is the largest UDP payload a relay accepts (the IPv4 limit).
const maxDatagram = 64 * 1024

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { bufPool.Put(b) }

// Submitter is the shaping surface a relay pushes datagrams through:
// exactly one of deliver or drop must eventually run for every call.
// *modulation.Engine implements it directly; the emud session farm
// interposes its per-session accounting by implementing it on Session.
type Submitter interface {
	SubmitWithDrop(dir simnet.Direction, size int, deliver, drop func())
}

// Config parameterizes a relay.
type Config struct {
	// Trace drives the shaping; it loops for the relay's lifetime.
	Trace core.Trace
	// Tick is the scheduling granularity (modulation.DefaultTick if 0).
	Tick time.Duration
	// InboundExtra charges target→client packets an additional per-byte
	// cost (the physical receive path); see modulation.Config.
	InboundExtra core.PerByte
	// Compensation is subtracted from Vb for target→client traffic.
	Compensation core.PerByte
	// Seed drives the drop lottery (deterministic per relay).
	Seed int64
	// Obs, if non-nil, registers the relay's and the underlying engine's
	// telemetry on the registry (tracemod_livewire_* and
	// tracemod_modulation_*). Serve it with obs.StartDebugServer for live
	// introspection of a running daemon.
	Obs *obs.Registry
	// Tracer, if non-nil, receives the engine's packet-lifecycle events.
	Tracer obs.Tracer
	// Spans, if non-nil, samples per-datagram "livewire.packet" root spans
	// in the pumps, threaded through the engine (modulation child, wheel
	// wait, delivery events) and ended after the socket write. The relay
	// owns rooting, so the engine itself is not given a tracer.
	Spans *span.Tracer
	// Retry shapes how a pump backs off after a transient socket error
	// (an ICMP port-unreachable bounced off a not-yet-started target, an
	// interrupted syscall) before reading again. The zero value uses the
	// faults package defaults.
	Retry faults.Backoff
	// Batch is the data plane's per-syscall datagram budget
	// (DefaultBatch if 0).
	Batch int
	// ForceGenericIO selects the portable single-message pktio even
	// where the batched recvmmsg/sendmmsg path is available — the
	// fallback test suite runs the relay this way on Linux.
	ForceGenericIO bool
	// Group, if enabled, places the relay's sockets on the shared
	// sharded pumps instead of spawning two goroutines.
	Group *PumpGroup
}

// Stats counts relay activity.
type Stats struct {
	ClientToTarget int64
	TargetToClient int64
	Dropped        int64
	SubmitPanics   int64 // panics recovered while submitting into the shaper
	SocketErrors   int64 // socket errors observed by the pumps (reads and writes)
	Reconnects     int64 // pump retries that resumed reading after a socket error
	SendErrors     int64 // post-modulation writes that failed (neither delivered nor lottery-dropped)

	ReadPackets    int64 // datagrams read by the data plane, both directions
	ReadBytes      int64 // payload bytes read
	SentBytes      int64 // payload bytes written
	Batches        int64 // read batches drained
	BatchedPackets int64 // datagrams carried by those read batches
	FlushFull      int64 // write flushes forced by a full batch mid-burst
	FlushBurst     int64 // write flushes at the end of a read burst
	DirectSends    int64 // deliveries sent outside any burst window
}

// AvgBatch returns the mean datagrams-per-read-batch.
func (s Stats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedPackets) / float64(s.Batches)
}

// Relay is a live packet-shaping daemon.
type Relay struct {
	submit Submitter
	bsub   BatchSubmitter     // non-nil when submit is batch-aware
	engine *modulation.Engine // nil for NewRelayWithSubmitter relays
	clock  *RealClock         // non-nil when the relay owns its clock
	spans  *span.Tracer       // nil-safe; only set for relays that own an engine

	clientSide *net.UDPConn // clients talk to this
	targetSide *net.UDPConn // connected toward the target

	clientIO batchConn // pktio over clientSide
	targetIO batchConn // pktio over targetSide

	qClient sendQ // coalesced writes toward the client
	qTarget sendQ // coalesced writes toward the target

	batch   int              // per-syscall datagram budget
	group   *PumpGroup       // nil when running per-relay pumps
	gins    *pumpInstruments // group-level series; nil-safe
	detach  func()           // shard deregistration; nil when not attached
	started time.Time

	clientAddr atomic.Pointer[net.UDPAddr]

	closeOnce sync.Once
	closed    chan struct{}

	retry faults.Backoff

	c2t, t2c, dropped, submitPanics atomic.Int64
	socketErrs, reconnects          atomic.Int64
	sendErrs                        atomic.Int64
	rxPkts, rxBytes, txBytes        atomic.Int64
	batches, batchedPkts            atomic.Int64
	cFlushFull, cFlushBurst         atomic.Int64
	cDirect                         atomic.Int64
}

// start wires the data plane: pktio over both sockets, then either a
// PumpGroup shard (batched Linux path) or two per-relay pump goroutines
// (everywhere else). Called exactly once, before the relay is returned
// to the caller.
func (r *Relay) start(group *PumpGroup, forceGeneric bool) {
	if r.batch <= 0 {
		r.batch = DefaultBatch
	}
	r.started = time.Now()
	r.bsub, _ = r.submit.(BatchSubmitter)
	r.clientIO = newBatchConn(r.clientSide, false, forceGeneric)
	r.targetIO = newBatchConn(r.targetSide, true, forceGeneric)
	r.gins = group.instruments()
	if group.attach(r) {
		r.group = group
		return
	}
	go r.pump(simnet.Outbound)
	go r.pump(simnet.Inbound)
}

// Sharded reports whether the relay runs on a PumpGroup shard rather
// than its own pump goroutines.
func (r *Relay) Sharded() bool { return r.group != nil }

// Uptime returns how long the relay has been running.
func (r *Relay) Uptime() time.Duration { return time.Since(r.started) }

// bindSockets resolves and binds the relay's two sockets.
func bindSockets(listenAddr, targetAddr string) (*net.UDPConn, *net.UDPConn, error) {
	laddr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, nil, fmt.Errorf("livewire: listen addr: %w", err)
	}
	taddr, err := net.ResolveUDPAddr("udp", targetAddr)
	if err != nil {
		return nil, nil, fmt.Errorf("livewire: target addr: %w", err)
	}
	clientSide, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, nil, err
	}
	targetSide, err := net.DialUDP("udp", nil, taddr)
	if err != nil {
		clientSide.Close()
		return nil, nil, err
	}
	return clientSide, targetSide, nil
}

// NewRelay binds listenAddr for clients and connects toward targetAddr.
// Use "127.0.0.1:0" as listenAddr to pick a free port; Addr reports it.
func NewRelay(listenAddr, targetAddr string, cfg Config) (*Relay, error) {
	if len(cfg.Trace) == 0 {
		return nil, errors.New("livewire: empty trace")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	clientSide, targetSide, err := bindSockets(listenAddr, targetAddr)
	if err != nil {
		return nil, err
	}
	clock := NewRealClock()
	eng := modulation.NewEngine(clock, &modulation.SliceSource{Trace: cfg.Trace, Loop: true}, modulation.Config{
		Tick:         cfg.Tick,
		InboundExtra: cfg.InboundExtra,
		Compensation: cfg.Compensation,
		RNG:          rand.New(rand.NewSource(cfg.Seed)),
		Metrics:      cfg.Obs,
		Tracer:       cfg.Tracer,
	})
	r := &Relay{
		submit:     eng,
		engine:     eng,
		clock:      clock,
		spans:      cfg.Spans,
		clientSide: clientSide,
		targetSide: targetSide,
		closed:     make(chan struct{}),
		retry:      cfg.Retry,
		batch:      cfg.Batch,
	}
	if cfg.Obs != nil {
		cfg.Obs.CounterFunc("tracemod_livewire_client_to_target_total",
			"Packets relayed from the client toward the target.",
			func() float64 { return float64(r.c2t.Load()) })
		cfg.Obs.CounterFunc("tracemod_livewire_target_to_client_total",
			"Packets relayed from the target back to the client.",
			func() float64 { return float64(r.t2c.Load()) })
		cfg.Obs.CounterFunc("tracemod_livewire_dropped_total",
			"Relayed packets lost to the drop lottery.",
			func() float64 { return float64(r.dropped.Load()) })
		cfg.Obs.CounterFunc("tracemod_livewire_socket_errors_total",
			"Socket errors observed by the relay pumps.",
			func() float64 { return float64(r.socketErrs.Load()) })
		cfg.Obs.CounterFunc("tracemod_livewire_reconnects_total",
			"Pump retries that resumed reading after a socket error.",
			func() float64 { return float64(r.reconnects.Load()) })
		cfg.Obs.CounterFunc("tracemod_livewire_send_errors_total",
			"Post-modulation datagram writes that failed at the socket.",
			func() float64 { return float64(r.sendErrs.Load()) })
		cfg.Obs.CounterFunc("tracemod_livewire_read_packets_total",
			"Datagrams read by the relay's data plane (both directions).",
			func() float64 { return float64(r.rxPkts.Load()) })
		cfg.Obs.CounterFunc("tracemod_livewire_read_bytes_total",
			"Payload bytes read by the relay's data plane.",
			func() float64 { return float64(r.rxBytes.Load()) })
		cfg.Obs.CounterFunc("tracemod_livewire_sent_bytes_total",
			"Payload bytes written by the relay's data plane.",
			func() float64 { return float64(r.txBytes.Load()) })
		cfg.Obs.CounterFunc("tracemod_livewire_read_batches_total",
			"Read batches drained by the relay's data plane.",
			func() float64 { return float64(r.batches.Load()) })
		cfg.Obs.CounterFunc("tracemod_livewire_batched_packets_total",
			"Datagrams carried by the relay's read batches.",
			func() float64 { return float64(r.batchedPkts.Load()) })
		cfg.Obs.Gauge("tracemod_livewire_trace_tuples",
			"Tuples in the replay trace driving the relay.").Set(int64(len(cfg.Trace)))
	}
	r.start(cfg.Group, cfg.ForceGenericIO)
	return r, nil
}

// RelayOpts tunes the data plane of a submitter-backed relay.
type RelayOpts struct {
	// Group, if enabled, places the relay on the shared sharded pumps.
	Group *PumpGroup
	// Batch is the per-syscall datagram budget (DefaultBatch if 0).
	Batch int
	// ForceGenericIO selects the portable single-message pktio.
	ForceGenericIO bool
	// Retry shapes pump backoff after transient socket errors.
	Retry faults.Backoff
}

// NewRelayWithSubmitter binds sockets and shapes traffic through a
// Submitter the caller owns — the emud session farm attaches one relay per
// session this way (the session interposes its accounting, and every
// engine shares the farm's timer wheel). The relay never closes the
// submitter's clock; revoking pending timers is the caller's teardown
// responsibility.
func NewRelayWithSubmitter(listenAddr, targetAddr string, sub Submitter) (*Relay, error) {
	return NewRelayWithSubmitterOpts(listenAddr, targetAddr, sub, RelayOpts{})
}

// NewRelayWithSubmitterOpts is NewRelayWithSubmitter with data-plane
// options. If the Submitter also implements BatchSubmitter, read bursts
// enter it whole through SubmitBatch.
func NewRelayWithSubmitterOpts(listenAddr, targetAddr string, sub Submitter, opts RelayOpts) (*Relay, error) {
	if sub == nil {
		return nil, errors.New("livewire: nil submitter")
	}
	clientSide, targetSide, err := bindSockets(listenAddr, targetAddr)
	if err != nil {
		return nil, err
	}
	r := &Relay{
		submit:     sub,
		clientSide: clientSide,
		targetSide: targetSide,
		closed:     make(chan struct{}),
		retry:      opts.Retry,
		batch:      opts.Batch,
	}
	r.start(opts.Group, opts.ForceGenericIO)
	return r, nil
}

// Addr returns the client-facing address.
func (r *Relay) Addr() *net.UDPAddr { return r.clientSide.LocalAddr().(*net.UDPAddr) }

// Stats returns a snapshot of relay counters.
func (r *Relay) Stats() Stats {
	return Stats{
		ClientToTarget: r.c2t.Load(),
		TargetToClient: r.t2c.Load(),
		Dropped:        r.dropped.Load(),
		SubmitPanics:   r.submitPanics.Load(),
		SocketErrors:   r.socketErrs.Load(),
		Reconnects:     r.reconnects.Load(),
		SendErrors:     r.sendErrs.Load(),
		ReadPackets:    r.rxPkts.Load(),
		ReadBytes:      r.rxBytes.Load(),
		SentBytes:      r.txBytes.Load(),
		Batches:        r.batches.Load(),
		BatchedPackets: r.batchedPkts.Load(),
		FlushFull:      r.cFlushFull.Load(),
		FlushBurst:     r.cFlushBurst.Load(),
		DirectSends:    r.cDirect.Load(),
	}
}

// rootSpan samples one datagram's root span (nil when unsampled or
// tracing is off).
func (r *Relay) rootSpan(dir simnet.Direction, size int) *span.Span {
	sp := r.spans.Root("livewire.packet")
	if sp != nil {
		sp.Attr("dir", int64(dir))
		sp.Attr("size", int64(size))
	}
	return sp
}

// Engine exposes the underlying modulation engine (for its statistics).
// It is nil for relays built with NewRelayWithSubmitter.
func (r *Relay) Engine() *modulation.Engine { return r.engine }

// Close shuts the relay down (and its clock, when the relay owns one).
// A shard-attached relay deregisters from its shard before the sockets
// close, so the event loop never touches a dying fd; whatever the write
// queues still hold is released back to the buffer pool.
func (r *Relay) Close() {
	r.closeOnce.Do(func() {
		close(r.closed)
		if r.detach != nil {
			r.detach()
		}
		r.clientSide.Close()
		r.targetSide.Close()
		r.drainQ(&r.qClient)
		r.drainQ(&r.qTarget)
		if r.clock != nil {
			r.clock.Close()
		}
	})
}

// wireSize approximates the IP datagram size of a UDP payload, which is
// what the model's per-byte costs apply to.
func wireSize(payload int) int {
	return payload + packet.IPv4HeaderLen + packet.UDPHeaderLen
}

// transientSocketErr reports whether a pump's socket error is worth
// retrying: the socket is still healthy, the condition momentary. On a
// connected UDP socket an ICMP port-unreachable from a dead target
// surfaces as ECONNREFUSED on a later read — precisely the error a
// relay pointed at a not-yet-started (or restarting) server sees, and
// precisely the one it must outlive.
func transientSocketErr(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return false // the socket is gone; no retry can help
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	for _, errno := range []syscall.Errno{
		syscall.ECONNREFUSED, syscall.ECONNRESET, syscall.EINTR,
		syscall.EAGAIN, syscall.ENOBUFS, syscall.EHOSTUNREACH,
		syscall.ENETUNREACH, syscall.ENETDOWN,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// maxPumpErrStreak bounds consecutive retries for errors the pump cannot
// classify as transient: an unknown condition gets a fair chance to
// clear, but a socket that is permanently broken must not spin forever.
const maxPumpErrStreak = 8

// recoverPump decides a pump's fate after a read error: false means exit
// (the relay is closing, or the error streak exhausted its budget), true
// means the backoff has been slept and the pump should read again.
func (r *Relay) recoverPump(streak *int, err error) bool {
	select {
	case <-r.closed:
		return false
	default:
	}
	r.socketErrs.Add(1)
	if !transientSocketErr(err) && *streak >= maxPumpErrStreak {
		return false
	}
	if !r.retry.Wait(*streak, r.closed) {
		return false // closed mid-sleep
	}
	*streak++
	r.reconnects.Add(1)
	return true
}

// The data plane itself — batch reading, shaping, and coalesced writing —
// lives in pump.go (processBatch and friends); the platform pktio
// implementations live in pktio*.go, and the shared sharded event loops
// in pump_linux.go. Every datagram still moves through one pooled
// max-size buffer from read to delivery or drop, with no per-datagram
// copy. (A buffer whose delivery timer is revoked by an emud session Stop
// is simply left to the garbage collector — sync.Pool does not require
// returns.)
