package livewire

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/modulation"
	"tracemod/internal/replay"
	"tracemod/internal/simnet"
)

// instantSubmitter delivers every packet immediately, in submit order —
// a zero-delay shaper that isolates the data plane for tests and
// benchmarks. It implements both Submitter and BatchSubmitter.
type instantSubmitter struct{}

func (instantSubmitter) SubmitWithDrop(_ simnet.Direction, _ int, deliver, _ func()) { deliver() }

func (instantSubmitter) SubmitBatch(subs []modulation.Submission) {
	for i := range subs {
		subs[i].Deliver()
	}
}

// burstEcho fires n datagrams at the relay in bursts of window and
// requires every echo back. A lockstep window keeps the in-flight count
// below any socket buffer, so a correct data plane loses nothing.
func burstEcho(t *testing.T, r *Relay, n, window int) {
	t.Helper()
	c := dialRelay(t, r)
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 2048)
	for sent := 0; sent < n; {
		burst := window
		if n-sent < burst {
			burst = n - sent
		}
		for i := 0; i < burst; i++ {
			if _, err := c.Write([]byte(fmt.Sprintf("pkt-%d", sent+i))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < burst; i++ {
			if _, err := c.Read(buf); err != nil {
				t.Fatalf("echo %d/%d: %v", sent+i, n, err)
			}
		}
		sent += burst
	}
}

// TestRelayBurstSharded drives a burst workload through a relay on a
// shared PumpGroup and checks the batched counters move.
func TestRelayBurstSharded(t *testing.T) {
	if !BatchIOSupported() {
		t.Skip("batched socket I/O not supported on this platform")
	}
	g := NewPumpGroup(PumpGroupConfig{Shards: 2})
	if !g.Enabled() {
		t.Fatal("pump group failed to start shards")
	}
	target := echoServer(t)
	r, err := NewRelay("127.0.0.1:0", target.String(), Config{
		Trace: constTrace(0, 0), Tick: -1, Seed: 1, Group: g,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sharded() {
		t.Fatal("relay did not attach to the group")
	}
	burstEcho(t, r, 200, 16)
	st := r.Stats()
	r.Close()
	g.Close()
	if st.ClientToTarget != 200 || st.TargetToClient != 200 {
		t.Fatalf("relayed %d/%d, want 200/200", st.ClientToTarget, st.TargetToClient)
	}
	if st.ReadPackets != 400 {
		t.Fatalf("ReadPackets = %d, want 400", st.ReadPackets)
	}
	if st.Batches == 0 || st.BatchedPackets != st.ReadPackets {
		t.Fatalf("batch counters: %+v", st)
	}
	if st.SendErrors != 0 || st.SocketErrors != 0 {
		t.Fatalf("errors on clean run: %+v", st)
	}
}

// TestRelayBurstGenericFallback forces the portable single-message pktio
// and runs the same workload: the fallback path must be functionally
// identical (this is what non-Linux builds run all the time).
func TestRelayBurstGenericFallback(t *testing.T) {
	target := echoServer(t)
	r, err := NewRelay("127.0.0.1:0", target.String(), Config{
		Trace: constTrace(0, 0), Tick: -1, Seed: 1, ForceGenericIO: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Sharded() {
		t.Fatal("ForceGenericIO relay must not be sharded")
	}
	burstEcho(t, r, 200, 16)
	st := r.Stats()
	if st.ClientToTarget != 200 || st.TargetToClient != 200 {
		t.Fatalf("relayed %d/%d, want 200/200", st.ClientToTarget, st.TargetToClient)
	}
	if st.ReadPackets != 400 {
		t.Fatalf("ReadPackets = %d, want 400", st.ReadPackets)
	}
}

// TestShardedGoroutinesFlat attaches many relays to one PumpGroup and
// checks the goroutine count does not scale with the relay count — the
// point of run-to-completion shards.
func TestShardedGoroutinesFlat(t *testing.T) {
	if !BatchIOSupported() {
		t.Skip("batched socket I/O not supported on this platform")
	}
	g := NewPumpGroup(PumpGroupConfig{Shards: 2})
	defer g.Close()
	if !g.Enabled() {
		t.Fatal("pump group failed to start shards")
	}
	target := echoServer(t)

	mk := func(n int) []*Relay {
		relays := make([]*Relay, 0, n)
		for i := 0; i < n; i++ {
			r, err := NewRelayWithSubmitterOpts("127.0.0.1:0", target.String(),
				instantSubmitter{}, RelayOpts{Group: g})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Sharded() {
				t.Fatal("relay did not attach to the group")
			}
			relays = append(relays, r)
		}
		return relays
	}

	base := mk(4)
	runtime.GC()
	before := runtime.NumGoroutine()
	more := mk(32)
	runtime.GC()
	after := runtime.NumGoroutine()
	for _, r := range append(base, more...) {
		r.Close()
	}
	// 32 extra relays on per-relay pumps would cost 64 goroutines; on
	// shards the count must stay flat (small slack for runtime noise).
	if grew := after - before; grew > 8 {
		t.Fatalf("goroutines grew by %d across 32 sharded relays", grew)
	}
}

// TestRelayCloseMidBurst races Relay.Close (and then group Close)
// against a client blasting packets: no panic, no deadlock, no send
// after close. Run with -race.
func TestRelayCloseMidBurst(t *testing.T) {
	target := echoServer(t)
	for round := 0; round < 5; round++ {
		var g *PumpGroup
		if BatchIOSupported() && round%2 == 0 {
			g = NewPumpGroup(PumpGroupConfig{Shards: 1})
		}
		r, err := NewRelay("127.0.0.1:0", target.String(), Config{
			Trace: constTrace(0, 0), Tick: -1, Seed: 1, Group: g,
		})
		if err != nil {
			t.Fatal(err)
		}
		c, err := net.DialUDP("udp", nil, r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := make([]byte, 512)
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Write(payload)
			}
		}()
		time.Sleep(time.Duration(round+1) * time.Millisecond)
		r.Close()
		close(stop)
		wg.Wait()
		c.Close()
		g.Close()
	}
}

// sinkServer is a bound-but-never-read UDP socket: loopback delivery
// into a full receive buffer is a silent drop, so the relay's sends
// always succeed and the sink costs the benchmark zero syscalls.
func sinkServer(b *testing.B) *net.UDPAddr {
	b.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { conn.Close() })
	return conn.LocalAddr().(*net.UDPAddr)
}

// benchRelayThroughput measures relay packets-per-second through the
// full paper data path: a client blasts fixed-size datagrams at a relay
// owning a real modulation engine on a zero-delay trace (windowed
// against the relay's processed count so the kernel socket buffer never
// overflows), and the relay shapes and forwards to a sink. Reported
// metric: pps through read→modulate→write.
func benchRelayThroughput(b *testing.B, cfg Config) {
	target := sinkServer(b)
	// A true pass-through trace (zero fixed and per-byte delay, zero
	// loss): every packet takes the engine's immediate path, so the
	// benchmark measures data-plane overhead, not emulated bandwidth.
	cfg.Trace = replay.Constant(core.DelayParams{}, 0, time.Hour, time.Second)
	cfg.Tick, cfg.Seed = -1, 1
	r, err := NewRelay("127.0.0.1:0", target.String(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	r.clientSide.SetReadBuffer(4 << 20)

	c, err := net.DialUDP("udp", nil, r.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	// The client blasts through the batched writer so the sender's
	// syscall rate never caps the measurement.
	cio := newBatchConn(c, true, false)
	ms := make([]ioMessage, DefaultBatch)
	for i := range ms {
		ms[i].buf = getBuf()
		ms[i].n = 256
	}
	defer releaseSlots(ms)

	const window = 512
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for sent := 0; sent < b.N; {
		burst := len(ms)
		if b.N-sent < burst {
			burst = b.N - sent
		}
		if _, err := cio.WriteBatch(ms[:burst]); err != nil {
			b.Fatal(err)
		}
		sent += burst
		// Parked wait, not a spin: on small machines a busy-wait would
		// steal the very core the data plane needs.
		for int64(sent)-r.rxPkts.Load() >= window {
			time.Sleep(20 * time.Microsecond)
		}
	}
	for r.rxPkts.Load() < int64(b.N) {
		if time.Since(start) > 30*time.Second {
			b.Fatalf("relay processed %d/%d", r.rxPkts.Load(), b.N)
		}
		time.Sleep(20 * time.Microsecond)
	}
	b.StopTimer()
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "pps")
}

// BenchmarkLivewireThroughput is the data-plane speed gate: the batched
// variant (recvmmsg/sendmmsg on a shared pump shard) against the generic
// variant, which is the pre-batching architecture — one blocking
// single-datagram read per packet on a per-relay pump goroutine.
func BenchmarkLivewireThroughput(b *testing.B) {
	b.Run("batched", func(b *testing.B) {
		if !BatchIOSupported() {
			b.Skip("batched socket I/O not supported on this platform")
		}
		g := NewPumpGroup(PumpGroupConfig{Shards: 2})
		defer g.Close()
		benchRelayThroughput(b, Config{Group: g})
	})
	b.Run("generic", func(b *testing.B) {
		benchRelayThroughput(b, Config{ForceGenericIO: true})
	})
}
