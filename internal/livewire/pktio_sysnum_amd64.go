//go:build linux && amd64

package livewire

// The stdlib syscall package predates sendmmsg on amd64, so both numbers
// are pinned here from the stable kernel ABI.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
