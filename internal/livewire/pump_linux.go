//go:build linux && (amd64 || arm64)

// PumpGroup shards: each shard is one goroutine around its own epoll set
// (separate from the runtime netpoller — a socket may sit in both). The
// shard loop is strictly run-to-completion: ready socket → nonblocking
// recvmmsg → SubmitBatch → coalesced write flush, then the next ready
// socket. Both of a relay's sockets register with the same shard, so a
// session's packets never migrate between loops and need no cross-shard
// synchronization.

package livewire

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"syscall"

	"tracemod/internal/simnet"
)

// shardDrainRounds bounds how many read batches one readiness event may
// drain before the loop moves on: a firehose socket cannot starve its
// shard-mates. Level-triggered epoll re-reports the socket if data
// remains.
const shardDrainRounds = 4

// wakeID is the epoll token reserved for a shard's wake pipe.
const wakeID = 0

type pumpShard struct {
	g     *PumpGroup
	epfd  int
	wakeR int
	wakeW int

	mu   sync.Mutex
	ends map[uint64]*pumpEnd

	done chan struct{}
}

// pumpEnd is one registered socket: the relay it belongs to and the
// traffic direction read from it.
type pumpEnd struct {
	id  uint64
	r   *Relay
	dir simnet.Direction
	io  *mmsgConn
}

func newShards(g *PumpGroup, n int) []*pumpShard {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	shards := make([]*pumpShard, 0, n)
	for i := 0; i < n; i++ {
		sh, err := newShard(g)
		if err != nil {
			for _, s := range shards {
				s.close()
			}
			return nil // no shards at all: the group reports disabled
		}
		shards = append(shards, sh)
	}
	return shards
}

func newShard(g *PumpGroup) (*pumpShard, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	sh := &pumpShard{
		g: g, epfd: epfd, wakeR: p[0], wakeW: p[1],
		ends: make(map[uint64]*pumpEnd),
		done: make(chan struct{}),
	}
	ev := syscall.EpollEvent{Events: uint32(syscall.EPOLLIN)}
	setEventID(&ev, wakeID)
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, sh.wakeR, &ev); err != nil {
		sh.closeFDs()
		return nil, err
	}
	go sh.loop()
	return sh, nil
}

// setEventID/eventID pack a 64-bit registration token into the epoll
// event's data union (the Fd/Pad field pair on both supported ABIs).
func setEventID(ev *syscall.EpollEvent, id uint64) {
	ev.Fd = int32(uint32(id))
	ev.Pad = int32(uint32(id >> 32))
}

func eventID(ev *syscall.EpollEvent) uint64 {
	return uint64(uint32(ev.Fd)) | uint64(uint32(ev.Pad))<<32
}

// attachShards registers both relay sockets with one shard (round-robin).
func (g *PumpGroup) attachShards(r *Relay) bool {
	cio, ok1 := r.clientIO.(*mmsgConn)
	tio, ok2 := r.targetIO.(*mmsgConn)
	if !ok1 || !ok2 {
		return false // ForceGenericIO relay: shards cannot drive it
	}
	sh := g.shards[int(g.next.Add(1))%len(g.shards)]
	ce := &pumpEnd{id: g.nextID.Add(1), r: r, dir: simnet.Outbound, io: cio}
	te := &pumpEnd{id: g.nextID.Add(1), r: r, dir: simnet.Inbound, io: tio}
	if err := sh.register(ce); err != nil {
		return false
	}
	if err := sh.register(te); err != nil {
		sh.unregister(ce)
		return false
	}
	r.detach = func() {
		sh.unregister(ce)
		sh.unregister(te)
	}
	return true
}

func (sh *pumpShard) register(pe *pumpEnd) error {
	sh.mu.Lock()
	sh.ends[pe.id] = pe
	sh.mu.Unlock()
	var ctlErr error
	err := pe.io.raw.Control(func(fd uintptr) {
		ev := syscall.EpollEvent{Events: uint32(syscall.EPOLLIN)}
		setEventID(&ev, pe.id)
		ctlErr = syscall.EpollCtl(sh.epfd, syscall.EPOLL_CTL_ADD, int(fd), &ev)
	})
	if err == nil {
		err = ctlErr
	}
	if err != nil {
		sh.mu.Lock()
		delete(sh.ends, pe.id)
		sh.mu.Unlock()
	}
	return err
}

// unregister detaches one socket. Relay.Close calls this before closing
// the socket, so the shard can never service a dying fd; the map removal
// alone already makes any in-flight event for the id a no-op.
func (sh *pumpShard) unregister(pe *pumpEnd) {
	sh.mu.Lock()
	delete(sh.ends, pe.id)
	sh.mu.Unlock()
	pe.io.raw.Control(func(fd uintptr) {
		syscall.EpollCtl(sh.epfd, syscall.EPOLL_CTL_DEL, int(fd), nil)
	})
}

func (sh *pumpShard) loop() {
	defer close(sh.done)
	events := make([]syscall.EpollEvent, 128)
	ms := make([]ioMessage, sh.g.batch)
	defer releaseSlots(ms)
	for {
		n, err := syscall.EpollWait(sh.epfd, events, -1)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			return
		}
		for i := 0; i < n; i++ {
			id := eventID(&events[i])
			if id == wakeID {
				if sh.drainWake() {
					return
				}
				continue
			}
			sh.mu.Lock()
			pe := sh.ends[id]
			sh.mu.Unlock()
			if pe != nil {
				sh.service(pe, ms)
			}
		}
	}
}

// drainWake empties the wake pipe and reports whether the group is
// closing.
func (sh *pumpShard) drainWake() bool {
	var buf [64]byte
	for {
		n, err := syscall.Read(sh.wakeR, buf[:])
		if n <= 0 || err != nil {
			break
		}
	}
	return sh.g.closing.Load()
}

// service drains one ready socket run-to-completion, up to the round
// budget.
func (sh *pumpShard) service(pe *pumpEnd, ms []ioMessage) {
	for round := 0; round < shardDrainRounds; round++ {
		for i := range ms {
			if ms[i].buf == nil {
				ms[i].buf = getBuf()
			}
		}
		n, err := pe.io.readBatch(ms, false)
		if err != nil {
			// Reading consumed the pending socket error (e.g. an ICMP
			// bounce on the connected target side); the shard moves on
			// and the socket re-arms via level-triggered epoll.
			if !errors.Is(err, net.ErrClosed) {
				pe.r.socketErrs.Add(1)
			}
			return
		}
		if n == 0 {
			return // EAGAIN: drained
		}
		pe.r.processBatch(pe.dir, ms[:n])
		for i := 0; i < n; i++ {
			ms[i].buf, ms[i].addr = nil, nil
		}
		if n < len(ms) {
			return
		}
	}
}

func (sh *pumpShard) close() {
	syscall.Write(sh.wakeW, []byte{1})
	<-sh.done
	sh.closeFDs()
}

func (sh *pumpShard) closeFDs() {
	syscall.Close(sh.epfd)
	syscall.Close(sh.wakeR)
	syscall.Close(sh.wakeW)
}
