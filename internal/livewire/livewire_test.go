package livewire

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/emud/wheel"
	"tracemod/internal/modulation"
	"tracemod/internal/replay"
)

// echoServer starts a real UDP echo server and returns its address.
func echoServer(t *testing.T) *net.UDPAddr {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, addr, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			conn.WriteToUDP(buf[:n], addr)
		}
	}()
	return conn.LocalAddr().(*net.UDPAddr)
}

func constTrace(f time.Duration, loss float64) core.Trace {
	return replay.Constant(core.DelayParams{F: f, Vb: 100, Vr: 0}, loss, time.Hour, time.Second)
}

func dialRelay(t *testing.T, r *Relay) *net.UDPConn {
	t.Helper()
	c, err := net.DialUDP("udp", nil, r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRelayShapesRTT(t *testing.T) {
	target := echoServer(t)
	// 20ms one-way latency, exact scheduling: RTT must be >= 40ms.
	r, err := NewRelay("127.0.0.1:0", target.String(), Config{
		Trace: constTrace(20*time.Millisecond, 0), Tick: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c := dialRelay(t, r)

	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var rtts []time.Duration
	buf := make([]byte, 1024)
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, err := c.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Read(buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		rtts = append(rtts, time.Since(start))
	}
	for i, rtt := range rtts {
		if rtt < 40*time.Millisecond {
			t.Fatalf("rtt %d = %v, want >= 40ms (2x shaped latency)", i, rtt)
		}
		if rtt > 500*time.Millisecond {
			t.Fatalf("rtt %d = %v, implausibly slow", i, rtt)
		}
	}
	st := r.Stats()
	if st.ClientToTarget != 5 || st.TargetToClient != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRelayUnshapedIsFast(t *testing.T) {
	target := echoServer(t)
	r, err := NewRelay("127.0.0.1:0", target.String(), Config{
		Trace: constTrace(0, 0), Tick: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c := dialRelay(t, r)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	start := time.Now()
	c.Write([]byte("x"))
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt > 100*time.Millisecond {
		t.Fatalf("near-zero trace gave rtt %v", rtt)
	}
}

func TestRelayDropsPackets(t *testing.T) {
	target := echoServer(t)
	r, err := NewRelay("127.0.0.1:0", target.String(), Config{
		Trace: constTrace(0, 0.7), Tick: -1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c := dialRelay(t, r)
	const sent = 60
	for i := 0; i < sent; i++ {
		c.Write([]byte{byte(i)})
	}
	// Count echoes arriving within a short window.
	c.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	buf := make([]byte, 1024)
	got := 0
	for {
		if _, err := c.Read(buf); err != nil {
			break
		}
		got++
	}
	// Each direction survives with P=0.3: expect ≈ sent * 0.09; allow slack.
	if got >= sent/2 {
		t.Fatalf("got %d of %d echoes; drop lottery not applied", got, sent)
	}
	if r.Stats().Dropped == 0 {
		t.Fatal("relay should count drops")
	}
}

func TestRelayRejectsBadConfig(t *testing.T) {
	if _, err := NewRelay("127.0.0.1:0", "127.0.0.1:9", Config{}); err == nil {
		t.Fatal("empty trace must be rejected")
	}
	bad := core.Trace{{D: -1}}
	if _, err := NewRelay("127.0.0.1:0", "127.0.0.1:9", Config{Trace: bad}); err == nil {
		t.Fatal("invalid trace must be rejected")
	}
	if _, err := NewRelay("not-an-addr", "127.0.0.1:9", Config{Trace: constTrace(0, 0)}); err == nil {
		t.Fatal("bad listen address must be rejected")
	}
}

func TestRealClockMonotone(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	time.Sleep(5 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatal("clock must advance")
	}
	fired := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("AfterFunc never fired")
	}
}

func TestRelayWithExternalEngine(t *testing.T) {
	// An emud-style attachment: the engine runs on a caller-owned wheel
	// handle; the relay shapes with it but does not own clock teardown.
	target := echoServer(t)
	w := wheel.New(wheel.Options{Shards: 2})
	defer w.Close()
	tm := w.Timers()
	eng := modulation.NewEngine(tm, &modulation.SliceSource{Trace: constTrace(15*time.Millisecond, 0), Loop: true},
		modulation.Config{Tick: -1, RNG: rand.New(rand.NewSource(1))})
	r, err := NewRelayWithSubmitter("127.0.0.1:0", target.String(), eng)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := NewRelayWithSubmitter("127.0.0.1:0", target.String(), nil); err == nil {
		t.Fatal("nil submitter must be rejected")
	}

	c := dialRelay(t, r)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 30*time.Millisecond {
		t.Fatalf("rtt %v, want >= 30ms through the shared wheel", rtt)
	}
	// Relay teardown must not touch the shared wheel: the handle still
	// schedules after the relay is gone.
	r.Close()
	fired := make(chan struct{})
	tm.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("shared wheel stopped scheduling after relay close")
	}
}

func TestRelayLargeDatagramRoundTrip(t *testing.T) {
	// Payloads near the pool buffer size survive the pooled no-copy path.
	target := echoServer(t)
	r, err := NewRelay("127.0.0.1:0", target.String(), Config{
		Trace: constTrace(0, 0), Tick: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c := dialRelay(t, r)
	payload := make([]byte, 32*1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64*1024)
	n, err := c.Read(got)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(payload) || !bytes.Equal(got[:n], payload) {
		t.Fatalf("echoed %d bytes, corrupted or truncated (want %d)", n, len(payload))
	}
}
