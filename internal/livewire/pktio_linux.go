//go:build linux && (amd64 || arm64)

// Linux fast path: recvmmsg/sendmmsg move a whole slice of datagrams per
// syscall. The issue's suggested golang.org/x/net ReadBatch/WriteBatch is
// not available to this zero-dependency module, so the same two syscalls
// are driven directly through syscall.RawConn; the build tag limits the
// hand-laid mmsghdr layout to the 64-bit ABIs it matches (32-bit Linux
// takes the portable pktio like every other platform).

package livewire

import (
	"net"
	"os"
	"runtime"
	"sync"
	"syscall"
	"unsafe"
)

const batchIOSupported = true

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit ABIs: a msghdr
// plus the per-message byte count the kernel writes back, padded to
// pointer alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	cnt uint32
	_   [4]byte
}

// mmsgConn drives one UDP socket with recvmmsg/sendmmsg. All direct
// syscalls run inside RawConn callbacks, which both serializes them with
// the runtime's fd lifecycle (no fd-reuse race with Close) and provides
// the blocking behaviour: returning false from a Read callback parks the
// goroutine on the netpoller until the socket is readable.
//
// Read scratch (rhdrs/riovs/rnames) is confined to the socket's single
// reader. Write scratch has its own lock because burst flushes and direct
// sends (delayed deliveries firing off the timer wheel) may overlap.
type mmsgConn struct {
	c         *net.UDPConn
	raw       syscall.RawConn
	connected bool

	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames []syscall.RawSockaddrAny

	wmu    sync.Mutex
	whdrs  []mmsghdr
	wiovs  []syscall.Iovec
	wnames []syscall.RawSockaddrAny
}

func newFastConn(c *net.UDPConn, connected bool) (batchConn, bool) {
	raw, err := c.SyscallConn()
	if err != nil {
		return nil, false
	}
	return &mmsgConn{c: c, raw: raw, connected: connected}, true
}

// ReadBatch implements batchConn (blocking).
func (m *mmsgConn) ReadBatch(ms []ioMessage) (int, error) {
	return m.readBatch(ms, true)
}

// readBatch fills ms from the socket: blocking waits on the netpoller for
// the first datagram; non-blocking (the shard loops, which learn about
// readiness from their own epoll set) returns 0 on EAGAIN.
func (m *mmsgConn) readBatch(ms []ioMessage, block bool) (int, error) {
	n := len(ms)
	if n == 0 {
		return 0, nil
	}
	if cap(m.rhdrs) < n {
		m.rhdrs = make([]mmsghdr, n)
		m.riovs = make([]syscall.Iovec, n)
		m.rnames = make([]syscall.RawSockaddrAny, n)
	}
	hdrs, iovs, names := m.rhdrs[:n], m.riovs[:n], m.rnames[:n]
	for i := 0; i < n; i++ {
		iovs[i].Base = &(*ms[i].buf)[0]
		iovs[i].Len = uint64(len(*ms[i].buf))
		h := &hdrs[i]
		*h = mmsghdr{}
		h.hdr.Iov = &iovs[i]
		h.hdr.Iovlen = 1
		if !m.connected {
			h.hdr.Name = (*byte)(unsafe.Pointer(&names[i]))
			h.hdr.Namelen = uint32(syscall.SizeofSockaddrAny)
		}
	}
	var got int
	var serr error
	err := m.raw.Read(func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&hdrs[0])), uintptr(n),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		switch errno {
		case 0:
			got = int(r1)
			return true
		case syscall.EAGAIN, syscall.EINTR:
			if block {
				return false // park on the netpoller until readable
			}
			got = 0
			return true
		default:
			serr = os.NewSyscallError("recvmmsg", errno)
			return true
		}
	})
	runtime.KeepAlive(ms)
	if err != nil {
		return 0, err
	}
	if serr != nil {
		return 0, serr
	}
	for i := 0; i < got; i++ {
		ms[i].n = int(hdrs[i].cnt)
		if m.connected {
			ms[i].addr = nil
		} else {
			ms[i].addr = sockaddrToUDP(&names[i])
		}
	}
	return got, nil
}

// WriteBatch implements batchConn. Partial sends without error retry the
// remainder; an error is charged to the first unsent message.
func (m *mmsgConn) WriteBatch(ms []ioMessage) (int, error) {
	n := len(ms)
	if n == 0 {
		return 0, nil
	}
	m.wmu.Lock()
	defer m.wmu.Unlock()
	if cap(m.whdrs) < n {
		m.whdrs = make([]mmsghdr, n)
		m.wiovs = make([]syscall.Iovec, n)
		m.wnames = make([]syscall.RawSockaddrAny, n)
	}
	hdrs, iovs, names := m.whdrs[:n], m.wiovs[:n], m.wnames[:n]
	for i := 0; i < n; i++ {
		iovs[i].Base = &(*ms[i].buf)[0]
		iovs[i].Len = uint64(ms[i].n)
		h := &hdrs[i]
		*h = mmsghdr{}
		h.hdr.Iov = &iovs[i]
		h.hdr.Iovlen = 1
		if !m.connected && ms[i].addr != nil {
			nl, ok := udpToSockaddr(&names[i], ms[i].addr)
			if !ok {
				return i, os.NewSyscallError("sendmmsg", syscall.EAFNOSUPPORT)
			}
			h.hdr.Name = (*byte)(unsafe.Pointer(&names[i]))
			h.hdr.Namelen = nl
		}
	}
	sent := 0
	for sent < n {
		var k int
		var serr error
		err := m.raw.Write(func(fd uintptr) bool {
			r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&hdrs[sent])), uintptr(n-sent),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch errno {
			case 0:
				k = int(r1)
				return true
			case syscall.EAGAIN, syscall.EINTR:
				return false // park until writable
			default:
				serr = os.NewSyscallError("sendmmsg", errno)
				return true
			}
		})
		if err != nil {
			runtime.KeepAlive(ms)
			return sent, err
		}
		if serr != nil {
			runtime.KeepAlive(ms)
			return sent, serr
		}
		if k <= 0 {
			break
		}
		sent += k
	}
	runtime.KeepAlive(ms)
	return sent, nil
}

// sockaddrToUDP converts a kernel-filled source address. Port bytes are
// read positionally, so the conversion is endianness-agnostic.
func sockaddrToUDP(rsa *syscall.RawSockaddrAny) *net.UDPAddr {
	switch rsa.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return &net.UDPAddr{
			IP:   net.IPv4(sa.Addr[0], sa.Addr[1], sa.Addr[2], sa.Addr[3]),
			Port: int(p[0])<<8 | int(p[1]),
		}
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		ip := make(net.IP, net.IPv6len)
		copy(ip, sa.Addr[:])
		return &net.UDPAddr{IP: ip, Port: int(p[0])<<8 | int(p[1])}
	}
	return nil
}

// udpToSockaddr fills a destination address for sendmmsg.
func udpToSockaddr(rsa *syscall.RawSockaddrAny, a *net.UDPAddr) (uint32, bool) {
	if ip4 := a.IP.To4(); ip4 != nil {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(a.Port>>8), byte(a.Port)
		copy(sa.Addr[:], ip4)
		return uint32(syscall.SizeofSockaddrInet4), true
	}
	if ip6 := a.IP.To16(); ip6 != nil {
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(a.Port>>8), byte(a.Port)
		copy(sa.Addr[:], ip6)
		return uint32(syscall.SizeofSockaddrInet6), true
	}
	return 0, false
}
