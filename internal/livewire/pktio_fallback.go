//go:build !linux || !(amd64 || arm64)

package livewire

import "net"

const batchIOSupported = false

// newFastConn has no fast path to offer on this platform; newBatchConn
// falls back to the portable single-message pktio.
func newFastConn(c *net.UDPConn, connected bool) (batchConn, bool) {
	return nil, false
}
