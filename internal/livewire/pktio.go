package livewire

import "net"

// DefaultBatch is the data plane's per-syscall datagram budget: how many
// packets one recvmmsg may return, and how many queued deliveries one
// sendmmsg may carry. 32 keeps a batch's pooled buffers (32 × 64 KiB)
// within a sane working set while amortizing the syscall and engine-lock
// cost over enough packets to matter.
const DefaultBatch = 32

// ioMessage is one datagram slot in a batched I/O exchange. buf is always
// a pooled max-datagram buffer (getBuf/putBuf); n is the payload length —
// set by ReadBatch, honored by WriteBatch. addr is the datagram's source
// (reads on unconnected sockets) or destination (writes on unconnected
// sockets); it is nil on connected sockets, which already know their peer.
type ioMessage struct {
	buf  *[]byte
	n    int
	addr *net.UDPAddr
}

// batchConn is the pktio surface the pumps drive. Two implementations
// exist: mmsgConn moves whole slices of datagrams per recvmmsg/sendmmsg
// syscall on Linux (amd64/arm64), and genericConn is the portable
// fallback that moves exactly one datagram per call through the stdlib
// net methods — same contract, so the pump logic above it is identical.
//
// ReadBatch blocks until at least one datagram is available, then fills
// as many slots as the socket can supply without blocking again and
// returns the count. WriteBatch sends the messages in order and returns
// how many were sent; a non-nil error refers to the first unsent message.
// ReadBatch must only be called from the socket's single reader (its pump
// goroutine or its owning shard); WriteBatch is safe to call concurrently.
type batchConn interface {
	ReadBatch(ms []ioMessage) (int, error)
	WriteBatch(ms []ioMessage) (int, error)
}

// genericConn is the portable single-message pktio: batches degrade to
// one datagram per syscall, trading throughput for running anywhere the
// stdlib does. It is also what ForceGenericIO selects in tests, so the
// fallback path is exercised on every platform.
type genericConn struct {
	c         *net.UDPConn
	connected bool
}

func (g *genericConn) ReadBatch(ms []ioMessage) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	m := &ms[0]
	if g.connected {
		n, err := g.c.Read(*m.buf)
		if err != nil {
			return 0, err
		}
		m.n, m.addr = n, nil
		return 1, nil
	}
	n, addr, err := g.c.ReadFromUDP(*m.buf)
	if err != nil {
		return 0, err
	}
	m.n, m.addr = n, addr
	return 1, nil
}

func (g *genericConn) WriteBatch(ms []ioMessage) (int, error) {
	for i := range ms {
		m := &ms[i]
		var err error
		if m.addr != nil && !g.connected {
			_, err = g.c.WriteToUDP((*m.buf)[:m.n], m.addr)
		} else {
			_, err = g.c.Write((*m.buf)[:m.n])
		}
		if err != nil {
			return i, err
		}
	}
	return len(ms), nil
}

// newBatchConn picks the fastest pktio available for the socket.
func newBatchConn(c *net.UDPConn, connected, forceGeneric bool) batchConn {
	if !forceGeneric && batchIOSupported {
		if bc, ok := newFastConn(c, connected); ok {
			return bc
		}
	}
	return &genericConn{c: c, connected: connected}
}

// BatchIOSupported reports whether this build has the batched
// recvmmsg/sendmmsg fast path (Linux on amd64/arm64). Elsewhere — and
// under ForceGenericIO — relays run the portable single-message pktio.
func BatchIOSupported() bool { return batchIOSupported }
