// The batched data plane: every datagram moves read batch → SubmitBatch →
// coalesced write batch, whether the relay runs its own pump goroutines
// (the portable fallback) or sits on a shared sharded event loop
// (PumpGroup, Linux). DESIGN.md §14 describes the ownership rules.

package livewire

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"tracemod/internal/modulation"
	"tracemod/internal/obs"
	"tracemod/internal/obs/span"
	"tracemod/internal/simnet"
)

// BatchSubmitter is the batch-aware extension of Submitter: a whole read
// burst enters the shaper under one engine lock acquisition.
// *modulation.Engine implements it natively; emud sessions interpose
// their per-packet admission control and accounting around it. A relay
// whose Submitter also implements BatchSubmitter uses it automatically.
type BatchSubmitter interface {
	SubmitBatch(subs []modulation.Submission)
}

// PumpGroupConfig parameterizes a PumpGroup.
type PumpGroupConfig struct {
	// Shards is the number of event-loop goroutines; 0 means GOMAXPROCS.
	// A negative value disables the group: relays fall back to a pump
	// goroutine per socket.
	Shards int
	// Batch is the per-syscall datagram budget (DefaultBatch if 0).
	Batch int
	// Metrics, if non-nil, registers the group's process-wide data-plane
	// series (tracemod_livewire_pump_*) on the registry.
	Metrics *obs.Registry
}

// PumpGroup owns a fixed set of run-to-completion event loops (shards)
// that service many relays' sockets: each relay is assigned to exactly
// one shard, both of its sockets together, so one session's packets are
// always read, shaped, and flushed by the same goroutine and the farm's
// goroutine count stays flat in the session count. On platforms without
// the batched-I/O fast path the group is inert (Enabled reports false)
// and relays transparently keep their per-relay pumps. All methods are
// nil-receiver safe.
type PumpGroup struct {
	batch  int
	want   int         // resolved shard count; 0 = group disabled
	failed atomic.Bool // shard startup failed: fall back for good

	// Shards start lazily on the first relay attach: an idle group costs
	// nothing — no epoll instances, no event-loop goroutines blocked in
	// raw syscalls stealing scheduler attention from relay-less farms.
	startMu sync.Mutex
	started bool
	shards  []*pumpShard

	next      atomic.Uint64 // round-robin shard assignment
	nextID    atomic.Uint64 // epoll registration tokens
	ins       *pumpInstruments
	closing   atomic.Bool
	closeOnce sync.Once
}

// NewPumpGroup starts the shards. On unsupported platforms (or with
// Shards < 0) it returns a disabled group, which is a valid, inert value.
func NewPumpGroup(cfg PumpGroupConfig) *PumpGroup {
	g := &PumpGroup{batch: cfg.Batch}
	if g.batch <= 0 {
		g.batch = DefaultBatch
	}
	g.nextID.Store(1) // id 0 is the shards' wake token
	g.ins = newPumpInstruments(cfg.Metrics)
	if cfg.Shards >= 0 && batchIOSupported {
		g.want = cfg.Shards
		if g.want == 0 {
			g.want = runtime.GOMAXPROCS(0)
		}
	}
	return g
}

// Enabled reports whether the group will run shards (they start on the
// first relay attach; an earlier startup failure reports false).
func (g *PumpGroup) Enabled() bool { return g != nil && g.want > 0 && !g.failed.Load() }

// ShardCount returns the number of event loops (0 when disabled).
func (g *PumpGroup) ShardCount() int {
	if g == nil || g.failed.Load() {
		return 0
	}
	return g.want
}

// ensure starts the shards on first use; false means the group cannot
// take relays (disabled, closing, or shard startup failed).
func (g *PumpGroup) ensure() bool {
	g.startMu.Lock()
	defer g.startMu.Unlock()
	if g.closing.Load() || g.want == 0 {
		return false
	}
	if !g.started {
		g.started = true
		g.shards = newShards(g, g.want)
		if g.shards == nil {
			g.failed.Store(true)
		}
	}
	return g.shards != nil
}

// Close stops every shard. Relays still attached keep working through
// whatever reads were in flight but receive no further event service;
// close relays first.
func (g *PumpGroup) Close() {
	if g == nil {
		return
	}
	g.closeOnce.Do(func() {
		g.closing.Store(true)
		g.startMu.Lock()
		shards := g.shards
		g.startMu.Unlock()
		for _, sh := range shards {
			sh.close()
		}
	})
}

// attach places the relay on one shard; false means the caller must run
// its own pump goroutines.
func (g *PumpGroup) attach(r *Relay) bool {
	if g == nil || g.closing.Load() || !g.ensure() {
		return false
	}
	return g.attachShards(r)
}

func (g *PumpGroup) instruments() *pumpInstruments {
	if g == nil {
		return nil
	}
	return g.ins
}

// pumpInstruments are the process-wide data-plane series. A nil
// *pumpInstruments means the group has no registry; every method is
// nil-safe so the hot path stays branch-plus-call.
type pumpInstruments struct {
	batches  *obs.Counter
	packets  *obs.Counter
	flushes  *obs.CounterVec // label: flush reason (full|burst|direct)
	sizes    *obs.CounterVec // label: read-batch size bucket
	sendErrs *obs.Counter
}

func newPumpInstruments(reg *obs.Registry) *pumpInstruments {
	if reg == nil {
		return nil
	}
	return &pumpInstruments{
		batches: reg.Counter("tracemod_livewire_pump_read_batches_total",
			"Read batches drained by the data-plane pumps."),
		packets: reg.Counter("tracemod_livewire_pump_read_packets_total",
			"Datagrams carried by those read batches."),
		flushes: reg.CounterVec("tracemod_livewire_pump_flushes_total",
			"Write flushes by reason: full (batch budget hit mid-burst), burst (end of read burst), direct (delayed delivery outside any burst).", "reason"),
		sizes: reg.CounterVec("tracemod_livewire_pump_batch_size_total",
			"Read-batch size distribution (datagrams per recvmmsg).", "bucket"),
		sendErrs: reg.Counter("tracemod_livewire_pump_send_errors_total",
			"Post-modulation datagram writes that failed at the socket."),
	}
}

func (ins *pumpInstruments) observeBatch(n int) {
	if ins == nil {
		return
	}
	ins.batches.Inc()
	ins.packets.Add(int64(n))
	ins.sizes.With(sizeBucket(n)).Inc()
}

func (ins *pumpInstruments) observeFlush(reason string, n int) {
	if ins == nil || n == 0 {
		return
	}
	ins.flushes.With(reason).Add(int64(n))
}

func (ins *pumpInstruments) observeSendErr() {
	if ins == nil {
		return
	}
	ins.sendErrs.Inc()
}

func sizeBucket(n int) string {
	switch {
	case n <= 1:
		return "1"
	case n <= 4:
		return "2-4"
	case n <= 8:
		return "5-8"
	case n <= 16:
		return "9-16"
	case n <= 32:
		return "17-32"
	case n <= 64:
		return "33-64"
	default:
		return "65+"
	}
}

const (
	flushReasonFull   = "full"
	flushReasonBurst  = "burst"
	flushReasonDirect = "direct"
)

// sendQ coalesces one egress socket's modulated deliveries into write
// batches. While a read burst is being shaped the window is open:
// deliveries (immediate ones from SubmitBatch, and any delayed ones that
// happen to fire mid-burst off the timer wheel) append here and leave in
// one sendmmsg when the pump flushes. Outside a burst the window is
// closed and deliveries go out directly — the wheel's delayed packets do
// not wait for traffic that may never come.
type sendQ struct {
	mu    sync.Mutex
	open  bool
	msgs  []ioMessage
	spans []*span.Span
	// freeM/freeS recycle the slices across flushes.
	freeM []ioMessage
	freeS []*span.Span
}

func (q *sendQ) openWindow() {
	q.mu.Lock()
	q.open = true
	q.mu.Unlock()
}

// take steals the queued entries (and optionally closes the window),
// handing back reusable backing arrays via give.
func (q *sendQ) take(closeWindow bool) ([]ioMessage, []*span.Span) {
	q.mu.Lock()
	if closeWindow {
		q.open = false
	}
	ms, sps := q.msgs, q.spans
	q.msgs, q.spans = q.freeM[:0], q.freeS[:0]
	q.freeM, q.freeS = nil, nil
	q.mu.Unlock()
	return ms, sps
}

func (q *sendQ) give(ms []ioMessage, sps []*span.Span) {
	clear(ms)
	clear(sps)
	q.mu.Lock()
	if q.freeM == nil {
		q.freeM, q.freeS = ms[:0], sps[:0]
	}
	q.mu.Unlock()
}

// readIO returns the socket a direction's traffic is read from.
func (r *Relay) readIO(dir simnet.Direction) batchConn {
	if dir == simnet.Outbound {
		return r.clientIO
	}
	return r.targetIO
}

// outQ returns the write queue and egress socket for a direction's
// shaped traffic.
func (r *Relay) outQ(dir simnet.Direction) (*sendQ, batchConn) {
	if dir == simnet.Outbound {
		return &r.qTarget, r.targetIO
	}
	return &r.qClient, r.clientIO
}

// subsPool recycles the per-burst Submission slices.
var subsPool = sync.Pool{New: func() any {
	s := make([]modulation.Submission, 0, DefaultBatch)
	return &s
}}

// processBatch runs one read batch through the shaper and flushes the
// resulting write batch: the whole per-burst data plane, shared by the
// pump goroutines and the shard loops. Ownership of every buffer in ms
// transfers here.
func (r *Relay) processBatch(dir simnet.Direction, ms []ioMessage) {
	r.batches.Add(1)
	r.batchedPkts.Add(int64(len(ms)))
	r.rxPkts.Add(int64(len(ms)))
	var bytes int64
	for i := range ms {
		bytes += int64(ms[i].n)
	}
	r.rxBytes.Add(bytes)
	r.gins.observeBatch(len(ms))

	var replyAddr *net.UDPAddr
	if dir == simnet.Outbound {
		for i := range ms {
			if ms[i].addr != nil {
				r.clientAddr.Store(ms[i].addr)
			}
		}
	} else {
		// Reply address captured at read time, as the classic pump did.
		replyAddr = r.clientAddr.Load()
		if replyAddr == nil {
			for i := range ms {
				putBuf(ms[i].buf)
			}
			return // no client yet
		}
	}

	q, _ := r.outQ(dir)
	q.openWindow()

	sp := subsPool.Get().(*[]modulation.Submission)
	subs := (*sp)[:0]
	for i := range ms {
		bp, n := ms[i].buf, ms[i].n
		size := wireSize(n)
		psp := r.rootSpan(dir, size)
		addr := replyAddr
		subs = append(subs, modulation.Submission{
			Dir:  dir,
			Size: size,
			Span: psp,
			Deliver: func() {
				r.send(dir, bp, n, addr, psp)
			},
			Drop: func() {
				psp.End()
				r.dropped.Add(1)
				putBuf(bp)
			},
		})
	}
	r.submitBurst(subs)
	clear(subs)
	*sp = subs[:0]
	subsPool.Put(sp)

	r.flushQ(dir, flushReasonBurst)
}

// submitBurst pushes one read burst into the shaper, recovering a panic
// thrown synchronously by the submitter (or a callback it runs inline)
// exactly as safeSubmit does for single packets: the pump survives, the
// burst's remaining pooled buffers are leaked to the garbage collector
// rather than risking a double put.
func (r *Relay) submitBurst(subs []modulation.Submission) {
	if len(subs) == 0 {
		return
	}
	defer func() {
		if v := recover(); v != nil {
			r.submitPanics.Add(1)
		}
	}()
	if r.bsub != nil {
		r.bsub.SubmitBatch(subs)
		return
	}
	for i := range subs {
		r.submitOne(&subs[i])
	}
}

// submitOne submits one packet of a burst through the single-packet
// Submitter surface (non-batch-aware submitters only).
func (r *Relay) submitOne(s *modulation.Submission) {
	if s.Span != nil && r.engine != nil {
		r.engine.SubmitSpan(s.Dir, s.Size, s.Span, s.Deliver, s.Drop)
		return
	}
	r.submit.SubmitWithDrop(s.Dir, s.Size, s.Deliver, s.Drop)
}

// send transmits one modulated datagram toward dir's egress socket,
// joining the open burst window when there is one.
func (r *Relay) send(dir simnet.Direction, bp *[]byte, n int, addr *net.UDPAddr, sp *span.Span) {
	select {
	case <-r.closed:
		sp.End()
		putBuf(bp)
		return
	default:
	}
	q, io := r.outQ(dir)
	q.mu.Lock()
	if q.open {
		q.msgs = append(q.msgs, ioMessage{buf: bp, n: n, addr: addr})
		q.spans = append(q.spans, sp)
		full := len(q.msgs) >= r.batch
		q.mu.Unlock()
		if full {
			r.flushQ(dir, flushReasonFull)
		}
		return
	}
	q.mu.Unlock()
	r.cDirect.Add(1)
	r.gins.observeFlush(flushReasonDirect, 1)
	one := [1]ioMessage{{buf: bp, n: n, addr: addr}}
	if k, err := io.WriteBatch(one[:]); err != nil || k == 0 {
		r.sendFailed(one[0], sp)
	} else {
		r.sent(dir, one[0], sp)
	}
}

// flushQ drains dir's write queue as one batch. A burst flush closes the
// window; a full flush mid-burst keeps it open.
func (r *Relay) flushQ(dir simnet.Direction, reason string) {
	q, io := r.outQ(dir)
	ms, sps := q.take(reason == flushReasonBurst)
	if len(ms) > 0 {
		if reason == flushReasonFull {
			r.cFlushFull.Add(1)
		} else {
			r.cFlushBurst.Add(1)
		}
		r.gins.observeFlush(reason, len(ms))
		r.writeAll(dir, io, ms, sps)
	}
	q.give(ms, sps)
}

// writeAll pushes a write batch out, skipping past per-message failures
// so one bad destination cannot strand the rest of the batch.
func (r *Relay) writeAll(dir simnet.Direction, io batchConn, ms []ioMessage, sps []*span.Span) {
	i := 0
	for i < len(ms) {
		k, err := io.WriteBatch(ms[i:])
		for j := i; j < i+k; j++ {
			r.sent(dir, ms[j], sps[j])
		}
		i += k
		if err != nil {
			if i < len(ms) {
				r.sendFailed(ms[i], sps[i])
				i++
			}
			continue
		}
		if k == 0 {
			// No progress and no error: release the remainder rather
			// than spin.
			for ; i < len(ms); i++ {
				r.sendFailed(ms[i], sps[i])
			}
			return
		}
	}
}

// sent books one successfully written datagram and releases its buffer.
func (r *Relay) sent(dir simnet.Direction, m ioMessage, sp *span.Span) {
	if dir == simnet.Outbound {
		r.c2t.Add(1)
	} else {
		r.t2c.Add(1)
	}
	r.txBytes.Add(int64(m.n))
	sp.Event("pump-send", int64(m.n))
	sp.End()
	putBuf(m.buf)
}

// sendFailed is the relay's drop path for a post-modulation write
// failure: the datagram already paid its way through the shaper, so it is
// neither a delivery nor a lottery drop — it is a socket error, and the
// pooled buffer and span still release exactly once.
func (r *Relay) sendFailed(m ioMessage, sp *span.Span) {
	r.sendErrs.Add(1)
	r.socketErrs.Add(1)
	r.gins.observeSendErr()
	sp.Event("pump-send-error", 0)
	sp.End()
	putBuf(m.buf)
}

// pump is the goroutine data plane: one blocking batch reader per socket,
// used when no PumpGroup shard took the relay (unsupported platform,
// disabled group, or ForceGenericIO). Same processBatch as the shards.
func (r *Relay) pump(dir simnet.Direction) {
	io := r.readIO(dir)
	ms := make([]ioMessage, r.batch)
	streak := 0
	for {
		for i := range ms {
			if ms[i].buf == nil {
				ms[i].buf = getBuf()
			}
		}
		n, err := io.ReadBatch(ms)
		if err != nil {
			if r.recoverPump(&streak, err) {
				continue
			}
			releaseSlots(ms)
			return
		}
		streak = 0
		r.processBatch(dir, ms[:n])
		for i := 0; i < n; i++ {
			ms[i].buf, ms[i].addr = nil, nil
		}
	}
}

// releaseSlots returns a read scratch's remaining pooled buffers.
func releaseSlots(ms []ioMessage) {
	for i := range ms {
		if ms[i].buf != nil {
			putBuf(ms[i].buf)
			ms[i].buf = nil
		}
	}
}

// drainQ releases whatever a closing relay still has queued.
func (r *Relay) drainQ(q *sendQ) {
	ms, sps := q.take(true)
	for i := range ms {
		sps[i].End()
		putBuf(ms[i].buf)
	}
	q.give(ms, sps)
}
