package livewire

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tracemod/internal/obs"
)

func TestRelayLiveIntrospection(t *testing.T) {
	// The full daemon surface: a relay with telemetry enabled, its
	// registry served by the debug listener, scraped over HTTP while
	// traffic flows — the acceptance path for `curl /metrics`.
	target := echoServer(t)
	reg := obs.NewRegistry()
	tracer := obs.NewRingTracer(256)
	r, err := NewRelay("127.0.0.1:0", target.String(), Config{
		Trace: constTrace(time.Millisecond, 0), Tick: -1, Seed: 1,
		Obs: reg, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv, err := obs.StartDebugServer("127.0.0.1:0", reg, tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := dialRelay(t, r)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	for i := 0; i < 5; i++ {
		if _, err := c.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Read(buf); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"tracemod_livewire_client_to_target_total 5",
		"tracemod_livewire_target_to_client_total 5",
		"tracemod_modulation_packets_submitted_total 10",
		"tracemod_modulation_packets_dropped_total 0",
		"tracemod_modulation_bottleneck_queue_depth",
		"tracemod_modulation_active_tuple_index",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
	if tracer.Total() == 0 {
		t.Fatal("tracer saw no lifecycle events")
	}

	resp2, err := http.Get("http://" + srv.Addr() + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	events, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), "submit") {
		t.Fatalf("/debug/events missing submit events:\n%s", events)
	}
}
