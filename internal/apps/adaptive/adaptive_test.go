package adaptive

import (
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/modulation"
	"tracemod/internal/packet"
	"tracemod/internal/replay"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
	"tracemod/internal/transport"
)

var (
	clientIP = packet.IP4(10, 7, 0, 1)
	serverIP = packet.IP4(10, 7, 0, 2)
	mask     = packet.IP4(255, 255, 255, 0)
)

// rig assembles client+server on a fast LAN with a modulation engine on
// the client driven by trace (nil = no modulation).
func rig(t *testing.T, seed int64, trace core.Trace) (*sim.Scheduler, *Client, *Server) {
	t.Helper()
	s := sim.New(seed)
	m := simnet.NewMedium(s, "lan", simnet.Ethernet10())
	cn := simnet.NewNode(s, "client")
	cn.AttachNIC(m, clientIP, mask)
	sn := simnet.NewNode(s, "server")
	sn.AttachNIC(m, serverIP, mask)
	if trace != nil {
		eng := modulation.NewEngine(modulation.SimClock{S: s},
			&modulation.SliceSource{Trace: trace, Loop: true},
			modulation.Config{Tick: modulation.DefaultTick, RNG: s.RNG("mod")})
		modulation.Install(cn, eng)
	}
	srv, err := NewServer(s, transport.NewUDP(sn), nil)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(transport.NewUDP(cn), serverIP, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s, client, srv
}

func TestFullFidelityOnFastNetwork(t *testing.T) {
	s, c, srv := rig(t, 1, nil)
	var samples []Sample
	s.Spawn("client", func(p *sim.Proc) { samples = c.Run(p, 30*time.Second) })
	s.RunUntil(sim.Time(time.Minute))
	if len(samples) < 10 {
		t.Fatalf("samples = %d", len(samples))
	}
	// After warm-up, a 10 Mb/s LAN sustains full fidelity.
	for _, smp := range samples[2:] {
		if smp.Level != 0 {
			t.Fatalf("level %d on a fast network: %+v", smp.Level, smp)
		}
		if smp.Bytes != DefaultLevels[0] {
			t.Fatalf("incomplete fetch: %+v", smp)
		}
	}
	if srv.Requests != len(samples) {
		t.Fatalf("server saw %d requests for %d samples", srv.Requests, len(samples))
	}
}

func TestDegradesOnSlowNetwork(t *testing.T) {
	// ≈100 Kb/s: the full 64KB object would take ~5s, far over target;
	// the client must settle on the minimal level.
	slow := replay.SlowNetLike(time.Hour)
	s, c, _ := rig(t, 2, slow)
	var samples []Sample
	s.Spawn("client", func(p *sim.Proc) { samples = c.Run(p, 60*time.Second) })
	s.RunUntil(sim.Time(10 * time.Minute))
	if len(samples) < 5 {
		t.Fatalf("samples = %d", len(samples))
	}
	tail := samples[len(samples)/2:]
	for _, smp := range tail {
		if smp.Level != len(DefaultLevels)-1 {
			t.Fatalf("late sample at level %d, want minimal: %+v", smp.Level, smp)
		}
	}
}

func TestStepAdaptation(t *testing.T) {
	// Fast for 60s, then a step down to ~150 Kb/s: the fidelity track must
	// drop to minimal shortly after the step.
	good := core.DelayParams{F: 2 * time.Millisecond, Vb: core.PerByteFromBandwidth(1.5e6), Vr: 0}
	bad := core.DelayParams{F: 10 * time.Millisecond, Vb: core.PerByteFromBandwidth(150e3), Vr: 0}
	trace := replay.Step(good, bad, 0, 0, 60*time.Second, time.Hour, time.Second)
	s, c, _ := rig(t, 3, trace)
	var samples []Sample
	s.Spawn("client", func(p *sim.Proc) { samples = c.Run(p, 150*time.Second) })
	s.RunUntil(sim.Time(time.Hour))

	ag := MeasureAgility(samples, 60*time.Second, len(DefaultLevels)-1)
	if ag.MeanLevelBefore > 0.4 {
		t.Fatalf("pre-step mean level %.2f, want near full fidelity", ag.MeanLevelBefore)
	}
	if ag.MeanLevelAfter < 1.2 {
		t.Fatalf("post-step mean level %.2f, want degraded", ag.MeanLevelAfter)
	}
	if ag.AdaptDelay < 0 || ag.AdaptDelay > 20*time.Second {
		t.Fatalf("adaptation took %v, want within a few fetch cycles", ag.AdaptDelay)
	}
}

func TestImpulseRecovery(t *testing.T) {
	// A 15-second bandwidth impulse: fidelity must dip and then recover.
	good := core.DelayParams{F: 2 * time.Millisecond, Vb: core.PerByteFromBandwidth(1.5e6), Vr: 0}
	spike := core.DelayParams{F: 30 * time.Millisecond, Vb: core.PerByteFromBandwidth(120e3), Vr: 0}
	trace := replay.Impulse(good, spike, 0, 0, 40*time.Second, 15*time.Second, time.Hour, time.Second)
	s, c, _ := rig(t, 4, trace)
	var samples []Sample
	s.Spawn("client", func(p *sim.Proc) { samples = c.Run(p, 120*time.Second) })
	s.RunUntil(sim.Time(time.Hour))

	dipped, recovered := false, false
	for _, smp := range samples {
		at := time.Duration(smp.At)
		if at > 42*time.Second && at < 55*time.Second && smp.Level > 0 {
			dipped = true
		}
		if at > 90*time.Second && smp.Level == 0 {
			recovered = true
		}
	}
	if !dipped {
		t.Fatalf("fidelity never dipped during the impulse:\n%s", FormatTrack(samples))
	}
	if !recovered {
		t.Fatalf("fidelity never recovered after the impulse:\n%s", FormatTrack(samples))
	}
}

func TestMeasureAgilityEmptyWindows(t *testing.T) {
	ag := MeasureAgility(nil, time.Second, 2)
	if ag.MeanLevelBefore != 0 || ag.MeanLevelAfter != 0 || ag.AdaptDelay != -1 {
		t.Fatalf("agility = %+v", ag)
	}
}

func TestFormatTrack(t *testing.T) {
	out := FormatTrack([]Sample{{At: time.Second, Level: 1, Bytes: 100, Elapsed: time.Millisecond, EstBW: 1e6}})
	if out == "" {
		t.Fatal("empty track output")
	}
}
