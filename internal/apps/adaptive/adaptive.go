// Package adaptive implements the application Section 6 points at: an
// application-aware adaptive client in the style of Odyssey ("a recent
// paper reports on the use of synthetic traces to explore the behavior of
// an adaptive mobile system in response to step and impulse variations in
// bandwidth" — the authors' own SOSP'97 follow-up).
//
// The client periodically fetches a data object from a server over UDP,
// choosing among fidelity levels (full / reduced / minimal object sizes)
// so that the expected fetch time stays under a latency target. It
// estimates available bandwidth and round-trip latency from its own
// transfers with exponential smoothing. Under trace modulation its
// fidelity track directly visualizes agility: how fast it sheds fidelity
// at a bandwidth step down, and how fast it recovers after an impulse.
package adaptive

import (
	"encoding/binary"
	"fmt"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/sim"
	"tracemod/internal/transport"
)

// Port is the fidelity server's UDP port.
const Port = 7007

// chunkSize is the server's datagram payload unit.
const chunkSize = 1024

// DefaultLevels are the fidelity sizes in bytes, best first: a full-
// fidelity object, a reduced one, and a minimal one.
var DefaultLevels = []int{64 * 1024, 16 * 1024, 4 * 1024}

// Server answers fetch requests: a 5-byte request (level byte + 4-byte
// request id) yields the level's object streamed as numbered chunks.
type Server struct {
	sock   *transport.UDPSocket
	levels []int

	Requests int
}

// NewServer binds the fidelity server.
func NewServer(s *sim.Scheduler, stack *transport.UDPStack, levels []int) (*Server, error) {
	if len(levels) == 0 {
		levels = DefaultLevels
	}
	sock, err := stack.Bind(Port)
	if err != nil {
		return nil, err
	}
	srv := &Server{sock: sock, levels: levels}
	s.Spawn("adaptive-server", srv.loop)
	return srv, nil
}

func (srv *Server) loop(p *sim.Proc) {
	for {
		req, ok := srv.sock.Recv(p)
		if !ok {
			return
		}
		if len(req.Data) < 5 {
			continue
		}
		level := int(req.Data[0])
		if level >= len(srv.levels) {
			continue
		}
		srv.Requests++
		id := binary.BigEndian.Uint32(req.Data[1:5])
		size := srv.levels[level]
		chunks := (size + chunkSize - 1) / chunkSize
		for i := 0; i < chunks; i++ {
			if i > 0 {
				// Pace chunks just under the wire rate so the device
				// queue is never overrun; a real server's send path has
				// the same effect.
				p.Sleep(time.Millisecond)
			}
			n := chunkSize
			if last := size - i*chunkSize; last < n {
				n = last
			}
			// Chunk header: request id, index, total.
			out := make([]byte, 12+n)
			binary.BigEndian.PutUint32(out[0:4], id)
			binary.BigEndian.PutUint32(out[4:8], uint32(i))
			binary.BigEndian.PutUint32(out[8:12], uint32(chunks))
			srv.sock.SendTo(req.From, req.FromPort, out)
		}
	}
}

// Sample is one fetch's outcome.
type Sample struct {
	At      time.Duration // fetch start, since client start
	Level   int           // fidelity level used (0 = full)
	Bytes   int           // bytes actually received
	Elapsed time.Duration // request to last chunk (or timeout)
	EstBW   float64       // smoothed bandwidth estimate after this fetch, bits/s
}

// Config tunes the adaptive client.
type Config struct {
	// Levels are the fidelity sizes, best first (DefaultLevels if nil).
	Levels []int
	// Target is the fetch-time budget steering level selection.
	Target time.Duration
	// Interval separates fetch starts.
	Interval time.Duration
	// ChunkGap is the receive timeout that ends a fetch.
	ChunkGap time.Duration
}

func (c *Config) fill() {
	if len(c.Levels) == 0 {
		c.Levels = DefaultLevels
	}
	if c.Target <= 0 {
		c.Target = 800 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.ChunkGap <= 0 {
		c.ChunkGap = 500 * time.Millisecond
	}
}

// Client is the fidelity-adaptive fetcher.
type Client struct {
	cfg    Config
	sock   *transport.UDPSocket
	server packet.IPAddr
	nextID uint32

	estBW  float64 // bits/second, exponentially smoothed
	estRTT time.Duration

	samples []Sample
}

// NewClient prepares a client toward the server.
func NewClient(stack *transport.UDPStack, server packet.IPAddr, cfg Config) (*Client, error) {
	cfg.fill()
	sock, err := stack.Bind(0)
	if err != nil {
		return nil, err
	}
	return &Client{
		cfg: cfg, sock: sock, server: server,
		estBW:  1e6, // optimistic prior: fast network
		estRTT: 20 * time.Millisecond,
	}, nil
}

// Samples returns the fetch history.
func (c *Client) Samples() []Sample { return c.samples }

// pickLevel chooses the best fidelity whose predicted fetch time fits the
// target; the minimal level is always admissible (the application never
// stops working, it degrades).
func (c *Client) pickLevel() int {
	for lvl, size := range c.cfg.Levels {
		predicted := time.Duration(float64(size*8)/c.estBW*float64(time.Second)) + 2*c.estRTT
		if predicted <= c.cfg.Target {
			return lvl
		}
	}
	return len(c.cfg.Levels) - 1
}

// fetch performs one request and collects chunks until the gap timeout.
func (c *Client) fetch(p *sim.Proc, level int) Sample {
	c.nextID++
	id := c.nextID
	req := make([]byte, 5)
	req[0] = byte(level)
	binary.BigEndian.PutUint32(req[1:5], id)
	start := p.Now()
	c.sock.SendTo(c.server, Port, req)

	received := 0
	var firstByte time.Duration
	total := -1
	seen := map[uint32]bool{}
	for {
		dg, ok, timedOut := c.sock.RecvTimeout(p, c.cfg.ChunkGap)
		if timedOut || !ok {
			break
		}
		if len(dg.Data) < 12 || binary.BigEndian.Uint32(dg.Data[0:4]) != id {
			continue // stale chunk from an earlier fetch
		}
		idx := binary.BigEndian.Uint32(dg.Data[4:8])
		total = int(binary.BigEndian.Uint32(dg.Data[8:12]))
		if seen[idx] {
			continue
		}
		seen[idx] = true
		received += len(dg.Data) - 12
		if firstByte == 0 {
			firstByte = p.Now().Sub(start)
		}
		if len(seen) == total {
			break
		}
	}
	elapsed := p.Now().Sub(start)

	// Update estimates: RTT from first byte, bandwidth from goodput over
	// the receive phase.
	const alpha = 0.4
	if firstByte > 0 {
		c.estRTT = time.Duration((1-alpha)*float64(c.estRTT) + alpha*float64(firstByte))
	}
	if received > 0 && elapsed > firstByte {
		bw := float64(received*8) / (elapsed - firstByte/2).Seconds()
		c.estBW = (1-alpha)*c.estBW + alpha*bw
	} else if received == 0 {
		// Total loss: assume the network collapsed.
		c.estBW *= 0.3
	}
	return Sample{
		At: start.Duration(), Level: level, Bytes: received,
		Elapsed: elapsed, EstBW: c.estBW,
	}
}

// Run fetches periodically for dur and returns the samples.
func (c *Client) Run(p *sim.Proc, dur time.Duration) []Sample {
	end := p.Now().Add(dur)
	for p.Now() < end {
		tick := p.Now()
		level := c.pickLevel()
		c.samples = append(c.samples, c.fetch(p, level))
		if next := tick.Add(c.cfg.Interval); next.Sub(p.Now()) > 0 {
			p.Sleep(next.Sub(p.Now()))
		}
	}
	return c.samples
}

// Agility summarizes the fidelity track around a known condition change at
// stepAt: the mean level before, the mean level after, and how long after
// the step the client first reached its new steady level.
type Agility struct {
	MeanLevelBefore float64
	MeanLevelAfter  float64
	AdaptDelay      time.Duration
}

// MeasureAgility analyzes samples around a step at stepAt. steady is the
// level the client should settle at after the step.
func MeasureAgility(samples []Sample, stepAt time.Duration, steady int) Agility {
	var a Agility
	nb, na := 0, 0
	adapted := time.Duration(-1)
	for _, s := range samples {
		if s.At < stepAt {
			a.MeanLevelBefore += float64(s.Level)
			nb++
			continue
		}
		a.MeanLevelAfter += float64(s.Level)
		na++
		if adapted < 0 && s.Level == steady {
			adapted = s.At - stepAt
		}
	}
	if nb > 0 {
		a.MeanLevelBefore /= float64(nb)
	}
	if na > 0 {
		a.MeanLevelAfter /= float64(na)
	}
	a.AdaptDelay = adapted
	return a
}

// FormatTrack renders the fidelity track for terminal output.
func FormatTrack(samples []Sample) string {
	out := ""
	for _, s := range samples {
		out += fmt.Sprintf("t=%6.1fs level=%d bytes=%6d took=%6.0fms est=%7.0f kb/s\n",
			time.Duration(s.At).Seconds(), s.Level, s.Bytes,
			float64(s.Elapsed)/float64(time.Millisecond), s.EstBW/1e3)
	}
	return out
}
