// Package nfs implements the paper's third benchmark substrate: an
// NFS-like remote filesystem over UDP (Section 4.2) and the Andrew
// benchmark that runs on it. The protocol has the two NFS traffic classes
// the paper calls out — small status-check messages (GETATTR, LOOKUP,
// READDIR) and larger data exchanges (READ, WRITE) — a retransmitting
// hard-mount client with attribute and data caches (so ScanDir and ReadAll
// run warm and emit only status checks), and an in-memory server.
package nfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/sim"
	"tracemod/internal/transport"
)

// Port is the NFS service port.
const Port = 2049

// Procedure numbers.
const (
	procNull uint8 = iota
	procGetattr
	procLookup
	procMkdir
	procCreate
	procRead
	procWrite
	procReaddir
	procRemove
	procRename
	procSetattr
)

// Message types.
const (
	msgCall  uint8 = 0
	msgReply uint8 = 1
)

// Reply status codes.
const (
	statOK      uint8 = 0
	statNoEnt   uint8 = 2
	statExist   uint8 = 17
	statNotDir  uint8 = 20
	statBadProc uint8 = 22
	statTooBig  uint8 = 27
)

// BlockSize is the READ/WRITE transfer size (a conservative early-NFS
// rsize/wsize, friendly to lossy links).
const BlockSize = 1024

// Attr is a file attribute record (the payload of status checks).
type Attr struct {
	FH    uint32
	IsDir bool
	Size  uint32
	Mtime int64
}

const attrLen = 4 + 1 + 4 + 8

func putAttr(b []byte, a Attr) {
	binary.BigEndian.PutUint32(b[0:4], a.FH)
	if a.IsDir {
		b[4] = 1
	} else {
		b[4] = 0
	}
	binary.BigEndian.PutUint32(b[5:9], a.Size)
	binary.BigEndian.PutUint64(b[9:17], uint64(a.Mtime))
}

func getAttr(b []byte) Attr {
	return Attr{
		FH:    binary.BigEndian.Uint32(b[0:4]),
		IsDir: b[4] == 1,
		Size:  binary.BigEndian.Uint32(b[5:9]),
		Mtime: int64(binary.BigEndian.Uint64(b[9:17])),
	}
}

// fsNode is one server-side file or directory.
type fsNode struct {
	attr     Attr
	data     []byte
	children map[string]uint32
}

// Server is the in-memory NFS server.
type Server struct {
	s      *sim.Scheduler
	sock   *transport.UDPSocket
	nodes  map[uint32]*fsNode
	nextFH uint32

	// Calls counts RPCs served, by procedure.
	Calls [11]int
}

// RootFH is the well-known root directory handle.
const RootFH = 1

// NewServer creates the filesystem and binds the NFS port.
func NewServer(s *sim.Scheduler, stack *transport.UDPStack) (*Server, error) {
	sock, err := stack.Bind(Port)
	if err != nil {
		return nil, err
	}
	srv := &Server{s: s, sock: sock, nodes: map[uint32]*fsNode{}, nextFH: RootFH + 1}
	srv.nodes[RootFH] = &fsNode{
		attr:     Attr{FH: RootFH, IsDir: true},
		children: map[string]uint32{},
	}
	s.Spawn("nfs-server", srv.loop)
	return srv, nil
}

func (srv *Server) loop(p *sim.Proc) {
	for {
		dg, ok := srv.sock.Recv(p)
		if !ok {
			return
		}
		if resp := srv.handle(dg.Data); resp != nil {
			srv.sock.SendTo(dg.From, dg.FromPort, resp)
		}
	}
}

// handle services one call; requests are idempotent so duplicate
// retransmissions are harmless.
func (srv *Server) handle(req []byte) []byte {
	if len(req) < 6 || req[4] != msgCall {
		return nil
	}
	xid := binary.BigEndian.Uint32(req[0:4])
	proc := req[5]
	body := req[6:]
	if int(proc) < len(srv.Calls) {
		srv.Calls[proc]++
	}

	reply := func(status uint8, payload []byte) []byte {
		out := make([]byte, 6+len(payload))
		binary.BigEndian.PutUint32(out[0:4], xid)
		out[4] = msgReply
		out[5] = status
		copy(out[6:], payload)
		return out
	}
	attrReply := func(a Attr) []byte {
		b := make([]byte, attrLen)
		putAttr(b, a)
		return reply(statOK, b)
	}

	switch proc {
	case procNull:
		return reply(statOK, nil)

	case procGetattr:
		if len(body) < 4 {
			return reply(statBadProc, nil)
		}
		n, ok := srv.nodes[binary.BigEndian.Uint32(body[0:4])]
		if !ok {
			return reply(statNoEnt, nil)
		}
		return attrReply(n.attr)

	case procLookup:
		dir, name, ok := srv.dirAndName(body)
		if !ok {
			return reply(statNotDir, nil)
		}
		fh, ok := dir.children[name]
		if !ok {
			return reply(statNoEnt, nil)
		}
		return attrReply(srv.nodes[fh].attr)

	case procMkdir, procCreate:
		dir, name, ok := srv.dirAndName(body)
		if !ok {
			return reply(statNotDir, nil)
		}
		if fh, exists := dir.children[name]; exists {
			// Idempotent: re-creating returns the existing node.
			return attrReply(srv.nodes[fh].attr)
		}
		fh := srv.nextFH
		srv.nextFH++
		node := &fsNode{attr: Attr{FH: fh, IsDir: proc == procMkdir, Mtime: int64(srv.s.Now())}}
		if node.attr.IsDir {
			node.children = map[string]uint32{}
		}
		srv.nodes[fh] = node
		dir.children[name] = fh
		dirNode := dir
		dirNode.attr.Mtime = int64(srv.s.Now())
		return attrReply(node.attr)

	case procRead:
		if len(body) < 10 {
			return reply(statBadProc, nil)
		}
		n, ok := srv.nodes[binary.BigEndian.Uint32(body[0:4])]
		if !ok || n.attr.IsDir {
			return reply(statNoEnt, nil)
		}
		off := int(binary.BigEndian.Uint32(body[4:8]))
		count := int(binary.BigEndian.Uint16(body[8:10]))
		if count > BlockSize {
			return reply(statTooBig, nil)
		}
		if off > len(n.data) {
			off = len(n.data)
		}
		end := off + count
		if end > len(n.data) {
			end = len(n.data)
		}
		return reply(statOK, n.data[off:end])

	case procWrite:
		if len(body) < 10 {
			return reply(statBadProc, nil)
		}
		n, ok := srv.nodes[binary.BigEndian.Uint32(body[0:4])]
		if !ok || n.attr.IsDir {
			return reply(statNoEnt, nil)
		}
		off := int(binary.BigEndian.Uint32(body[4:8]))
		dlen := int(binary.BigEndian.Uint16(body[8:10]))
		if dlen > BlockSize || len(body) < 10+dlen {
			return reply(statTooBig, nil)
		}
		data := body[10 : 10+dlen]
		if need := off + dlen; need > len(n.data) {
			n.data = append(n.data, make([]byte, need-len(n.data))...)
		}
		copy(n.data[off:], data)
		n.attr.Size = uint32(len(n.data))
		n.attr.Mtime = int64(srv.s.Now())
		return attrReply(n.attr)

	case procRemove:
		dir, name, ok := srv.dirAndName(body)
		if !ok {
			return reply(statNotDir, nil)
		}
		fh, exists := dir.children[name]
		if !exists {
			// Idempotent under retransmission: a repeated REMOVE whose
			// first execution succeeded reports success again.
			return reply(statOK, nil)
		}
		if n := srv.nodes[fh]; n.attr.IsDir && len(n.children) > 0 {
			return reply(statNotDir, nil) // non-empty directory
		}
		delete(srv.nodes, fh)
		delete(dir.children, name)
		dir.attr.Mtime = int64(srv.s.Now())
		return reply(statOK, nil)

	case procRename:
		// Arguments: two fh/name groups back to back (from, then to).
		from, fromName, ok := srv.dirAndName(body)
		if !ok {
			return reply(statNotDir, nil)
		}
		rest := body[5+len(fromName):]
		to, toName, ok := srv.dirAndName(rest)
		if !ok {
			return reply(statNotDir, nil)
		}
		fh, exists := from.children[fromName]
		if !exists {
			// Idempotent: the previous attempt may have completed.
			if _, already := to.children[toName]; already {
				return reply(statOK, nil)
			}
			return reply(statNoEnt, nil)
		}
		delete(from.children, fromName)
		to.children[toName] = fh
		now := int64(srv.s.Now())
		from.attr.Mtime = now
		to.attr.Mtime = now
		return reply(statOK, nil)

	case procSetattr:
		// Arguments: fh, newSize (truncation/extension is the only
		// settable attribute this substrate needs).
		if len(body) < 8 {
			return reply(statBadProc, nil)
		}
		n, ok := srv.nodes[binary.BigEndian.Uint32(body[0:4])]
		if !ok || n.attr.IsDir {
			return reply(statNoEnt, nil)
		}
		size := int(binary.BigEndian.Uint32(body[4:8]))
		switch {
		case size < len(n.data):
			n.data = n.data[:size]
		case size > len(n.data):
			n.data = append(n.data, make([]byte, size-len(n.data))...)
		}
		n.attr.Size = uint32(size)
		n.attr.Mtime = int64(srv.s.Now())
		return attrReply(n.attr)

	case procReaddir:
		if len(body) < 4 {
			return reply(statBadProc, nil)
		}
		n, ok := srv.nodes[binary.BigEndian.Uint32(body[0:4])]
		if !ok || !n.attr.IsDir {
			return reply(statNotDir, nil)
		}
		var out []byte
		for name, fh := range n.children {
			entry := make([]byte, 5+len(name))
			binary.BigEndian.PutUint32(entry[0:4], fh)
			entry[4] = uint8(len(name))
			copy(entry[5:], name)
			out = append(out, entry...)
			if len(out) > transport.MaxDatagram-64 {
				break // directory listing truncation, as real READDIR pages
			}
		}
		return reply(statOK, out)
	}
	return reply(statBadProc, nil)
}

// dirAndName parses "fh, namelen, name" arguments.
func (srv *Server) dirAndName(body []byte) (*fsNode, string, bool) {
	if len(body) < 5 {
		return nil, "", false
	}
	dir, ok := srv.nodes[binary.BigEndian.Uint32(body[0:4])]
	if !ok || !dir.attr.IsDir {
		return nil, "", false
	}
	nameLen := int(body[4])
	if len(body) < 5+nameLen {
		return nil, "", false
	}
	return dir, string(body[5 : 5+nameLen]), true
}

// NodeCount reports how many filesystem objects the server holds.
func (srv *Server) NodeCount() int { return len(srv.nodes) }

// Client-side errors.
var (
	ErrNoEnt  = errors.New("nfs: no such file or directory")
	ErrExists = errors.New("nfs: file exists")
	ErrProto  = errors.New("nfs: protocol error")
)

// AttrTTL is the client attribute-cache lifetime.
const AttrTTL = 3 * time.Second

// Client is a hard-mount NFS client with attribute and data caches.
type Client struct {
	s      *sim.Scheduler
	stack  *transport.UDPStack
	sock   *transport.UDPSocket
	server packet.IPAddr
	xid    uint32

	// MaxOutstanding is the number of concurrent data RPCs ReadFile and
	// WriteFile may keep in flight, like the BSD client's biod daemons.
	// The default of 1 is strict stop-and-wait.
	MaxOutstanding int

	attrCache map[uint32]cachedAttr
	dataCache map[uint32][]byte

	// Stats.
	RPCs        int
	Retransmits int
	CacheHits   int
}

type cachedAttr struct {
	attr Attr
	at   sim.Time
}

// NewClient prepares a client socket toward server.
func NewClient(s *sim.Scheduler, stack *transport.UDPStack, server packet.IPAddr) (*Client, error) {
	sock, err := stack.Bind(0)
	if err != nil {
		return nil, err
	}
	return &Client{
		s: s, stack: stack, sock: sock, server: server,
		attrCache: map[uint32]cachedAttr{},
		dataCache: map[uint32][]byte{},
	}, nil
}

// WriteFile writes data through to the server in BlockSize chunks, keeping
// up to MaxOutstanding RPCs in flight, and updates the local data cache.
func (c *Client) writeWindowed(p *sim.Proc, fh uint32, data []byte) error {
	type job struct{ off, end int }
	var jobs []job
	for off := 0; off < len(data); off += BlockSize {
		end := off + BlockSize
		if end > len(data) {
			end = len(data)
		}
		jobs = append(jobs, job{off, end})
	}
	workers := c.MaxOutstanding
	if workers > len(jobs) {
		workers = len(jobs)
	}
	next := 0
	var firstErr error
	wg := sim.NewWaitGroup(c.s)
	for w := 0; w < workers; w++ {
		wg.Go("nfs-biod", func(wp *sim.Proc) {
			// Each biod is its own RPC endpoint with its own socket, so
			// replies demultiplex by port rather than by shared state.
			sock, err := c.stack.Bind(0)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			defer sock.Close()
			biod := &Client{s: c.s, stack: c.stack, sock: sock, server: c.server}
			defer func() {
				c.RPCs += biod.RPCs
				c.Retransmits += biod.Retransmits
			}()
			for {
				if firstErr != nil || next >= len(jobs) {
					return
				}
				j := jobs[next]
				next++
				chunk := data[j.off:j.end]
				body := make([]byte, 10+len(chunk))
				binary.BigEndian.PutUint32(body[0:4], fh)
				binary.BigEndian.PutUint32(body[4:8], uint32(j.off))
				binary.BigEndian.PutUint16(body[8:10], uint16(len(chunk)))
				copy(body[10:], chunk)
				status, _, err := biod.call(wp, procWrite, body)
				if err == nil {
					err = statusErr(status)
				}
				if err != nil && firstErr == nil {
					firstErr = err
				}
			}
		})
	}
	wg.Wait(p)
	if firstErr != nil {
		return firstErr
	}
	c.dataCache[fh] = append([]byte(nil), data...)
	return nil
}

// call performs one RPC with hard-mount retry semantics: an initial 700 ms
// timeout backing off to a 10 s cap, retrying until answered.
func (c *Client) call(p *sim.Proc, proc uint8, body []byte) (uint8, []byte, error) {
	c.xid++
	xid := c.xid
	req := make([]byte, 6+len(body))
	binary.BigEndian.PutUint32(req[0:4], xid)
	req[4] = msgCall
	req[5] = proc
	copy(req[6:], body)

	timeout := 700 * time.Millisecond
	c.RPCs++
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.Retransmits++
		}
		c.sock.SendTo(c.server, Port, req)
		deadline := p.Now().Add(timeout)
		for {
			remaining := deadline.Sub(p.Now())
			dg, ok, timedOut := c.sock.RecvTimeout(p, remaining)
			if timedOut {
				break
			}
			if !ok {
				return 0, nil, ErrProto
			}
			if len(dg.Data) < 6 || dg.Data[4] != msgReply {
				continue
			}
			if binary.BigEndian.Uint32(dg.Data[0:4]) != xid {
				continue // stale reply to an earlier retransmission
			}
			return dg.Data[5], dg.Data[6:], nil
		}
		timeout *= 2
		if timeout > 10*time.Second {
			timeout = 10 * time.Second
		}
	}
}

func statusErr(status uint8) error {
	switch status {
	case statOK:
		return nil
	case statNoEnt:
		return ErrNoEnt
	case statExist:
		return ErrExists
	default:
		return fmt.Errorf("nfs: status %d", status)
	}
}

func fhBody(fh uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, fh)
	return b
}

func nameBody(dir uint32, name string) []byte {
	if len(name) > 255 {
		panic("nfs: name too long")
	}
	b := make([]byte, 5+len(name))
	binary.BigEndian.PutUint32(b[0:4], dir)
	b[4] = uint8(len(name))
	copy(b[5:], name)
	return b
}

// Getattr returns a file's attributes, from cache when fresh.
func (c *Client) Getattr(p *sim.Proc, fh uint32) (Attr, error) {
	if ca, ok := c.attrCache[fh]; ok && p.Now().Sub(ca.at) < AttrTTL {
		c.CacheHits++
		return ca.attr, nil
	}
	status, body, err := c.call(p, procGetattr, fhBody(fh))
	if err != nil {
		return Attr{}, err
	}
	if err := statusErr(status); err != nil {
		return Attr{}, err
	}
	if len(body) < attrLen {
		return Attr{}, ErrProto
	}
	a := getAttr(body)
	c.attrCache[fh] = cachedAttr{attr: a, at: p.Now()}
	return a, nil
}

// Lookup resolves name within dir.
func (c *Client) Lookup(p *sim.Proc, dir uint32, name string) (Attr, error) {
	status, body, err := c.call(p, procLookup, nameBody(dir, name))
	if err != nil {
		return Attr{}, err
	}
	if err := statusErr(status); err != nil {
		return Attr{}, err
	}
	if len(body) < attrLen {
		return Attr{}, ErrProto
	}
	a := getAttr(body)
	c.attrCache[a.FH] = cachedAttr{attr: a, at: p.Now()}
	return a, nil
}

func (c *Client) makeNode(p *sim.Proc, proc uint8, dir uint32, name string) (Attr, error) {
	status, body, err := c.call(p, proc, nameBody(dir, name))
	if err != nil {
		return Attr{}, err
	}
	if err := statusErr(status); err != nil {
		return Attr{}, err
	}
	if len(body) < attrLen {
		return Attr{}, ErrProto
	}
	a := getAttr(body)
	c.attrCache[a.FH] = cachedAttr{attr: a, at: p.Now()}
	return a, nil
}

// Mkdir creates a directory.
func (c *Client) Mkdir(p *sim.Proc, dir uint32, name string) (Attr, error) {
	return c.makeNode(p, procMkdir, dir, name)
}

// Create creates a file.
func (c *Client) Create(p *sim.Proc, dir uint32, name string) (Attr, error) {
	return c.makeNode(p, procCreate, dir, name)
}

// WriteFile writes data through to the server in BlockSize chunks and
// updates the local data cache. With MaxOutstanding > 1 blocks go out
// concurrently (write-behind).
func (c *Client) WriteFile(p *sim.Proc, fh uint32, data []byte) error {
	if c.MaxOutstanding > 1 && len(data) > BlockSize {
		return c.writeWindowed(p, fh, data)
	}
	for off := 0; off < len(data); off += BlockSize {
		end := off + BlockSize
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		body := make([]byte, 10+len(chunk))
		binary.BigEndian.PutUint32(body[0:4], fh)
		binary.BigEndian.PutUint32(body[4:8], uint32(off))
		binary.BigEndian.PutUint16(body[8:10], uint16(len(chunk)))
		copy(body[10:], chunk)
		status, reply, err := c.call(p, procWrite, body)
		if err != nil {
			return err
		}
		if err := statusErr(status); err != nil {
			return err
		}
		if len(reply) >= attrLen {
			a := getAttr(reply)
			c.attrCache[fh] = cachedAttr{attr: a, at: p.Now()}
		}
	}
	c.dataCache[fh] = append([]byte(nil), data...)
	return nil
}

// ReadFile returns a file's contents. A cached copy is revalidated with a
// single status check (GETATTR against cached mtime); on a miss the data
// moves in BlockSize READ exchanges. This is what makes the warm-cache
// phases of the Andrew benchmark status-check-only.
func (c *Client) ReadFile(p *sim.Proc, fh uint32) ([]byte, error) {
	attr, err := c.Getattr(p, fh)
	if err != nil {
		return nil, err
	}
	if cached, ok := c.dataCache[fh]; ok && uint32(len(cached)) == attr.Size {
		c.CacheHits++
		return cached, nil
	}
	data := make([]byte, 0, attr.Size)
	for off := 0; off < int(attr.Size); off += BlockSize {
		count := int(attr.Size) - off
		if count > BlockSize {
			count = BlockSize
		}
		body := make([]byte, 10)
		binary.BigEndian.PutUint32(body[0:4], fh)
		binary.BigEndian.PutUint32(body[4:8], uint32(off))
		binary.BigEndian.PutUint16(body[8:10], uint16(count))
		status, reply, err := c.call(p, procRead, body)
		if err != nil {
			return nil, err
		}
		if err := statusErr(status); err != nil {
			return nil, err
		}
		data = append(data, reply...)
	}
	c.dataCache[fh] = data
	return data, nil
}

// DirEntry is one READDIR result.
type DirEntry struct {
	FH   uint32
	Name string
}

// Readdir lists a directory.
func (c *Client) Readdir(p *sim.Proc, dir uint32) ([]DirEntry, error) {
	status, body, err := c.call(p, procReaddir, fhBody(dir))
	if err != nil {
		return nil, err
	}
	if err := statusErr(status); err != nil {
		return nil, err
	}
	var out []DirEntry
	for len(body) >= 5 {
		fh := binary.BigEndian.Uint32(body[0:4])
		n := int(body[4])
		if len(body) < 5+n {
			return nil, ErrProto
		}
		out = append(out, DirEntry{FH: fh, Name: string(body[5 : 5+n])})
		body = body[5+n:]
	}
	return out, nil
}

// Remove deletes a name from a directory (and any cache entries for it).
func (c *Client) Remove(p *sim.Proc, dir uint32, name string) error {
	status, _, err := c.call(p, procRemove, nameBody(dir, name))
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Rename moves a name between directories.
func (c *Client) Rename(p *sim.Proc, fromDir uint32, fromName string, toDir uint32, toName string) error {
	body := append(nameBody(fromDir, fromName), nameBody(toDir, toName)...)
	status, _, err := c.call(p, procRename, body)
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Truncate sets a file's size, extending with zeros or discarding the
// tail, and refreshes the attribute cache.
func (c *Client) Truncate(p *sim.Proc, fh uint32, size uint32) (Attr, error) {
	body := make([]byte, 8)
	binary.BigEndian.PutUint32(body[0:4], fh)
	binary.BigEndian.PutUint32(body[4:8], size)
	status, reply, err := c.call(p, procSetattr, body)
	if err != nil {
		return Attr{}, err
	}
	if err := statusErr(status); err != nil {
		return Attr{}, err
	}
	if len(reply) < attrLen {
		return Attr{}, ErrProto
	}
	a := getAttr(reply)
	c.attrCache[fh] = cachedAttr{attr: a, at: p.Now()}
	delete(c.dataCache, fh) // cached contents are stale after truncation
	return a, nil
}

// FlushFile drops one file's cache entries, forcing the next read to
// revalidate and fetch from the server.
func (c *Client) FlushFile(fh uint32) {
	delete(c.attrCache, fh)
	delete(c.dataCache, fh)
}

// FlushCaches empties the client caches (the paper flushes the NFS cache
// before each Andrew trial).
func (c *Client) FlushCaches() {
	c.attrCache = map[uint32]cachedAttr{}
	c.dataCache = map[uint32][]byte{}
}
