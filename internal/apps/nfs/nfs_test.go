package nfs

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
	"tracemod/internal/transport"
)

var (
	clientIP = packet.IP4(10, 9, 0, 1)
	serverIP = packet.IP4(10, 9, 0, 2)
	netMask  = packet.IP4(255, 255, 255, 0)
)

// buildLAN assembles a two-node Ethernet without importing the scenario
// package (which itself depends on this one for its interferers).
func buildLAN(s *sim.Scheduler) (client, server *simnet.Node) {
	em := simnet.NewMedium(s, "nfs-test-ether", simnet.Ethernet10())
	client = simnet.NewNode(s, "client")
	client.AttachNIC(em, clientIP, netMask)
	server = simnet.NewNode(s, "server")
	server.AttachNIC(em, serverIP, netMask)
	return client, server
}

// setup builds client+server on an isolated Ethernet.
func setup(t *testing.T, seed int64) (*sim.Scheduler, *Client, *Server) {
	t.Helper()
	s := sim.New(seed)
	cn, sn := buildLAN(s)
	us := transport.NewUDP(sn)
	uc := transport.NewUDP(cn)
	srv, err := NewServer(s, us)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(s, uc, serverIP)
	if err != nil {
		t.Fatal(err)
	}
	return s, c, srv
}

func TestFileLifecycle(t *testing.T) {
	s, c, srv := setup(t, 1)
	content := bytes.Repeat([]byte("the quick brown fox "), 200) // 4 KB
	var readBack []byte
	var looked Attr
	s.Spawn("client", func(p *sim.Proc) {
		dir, err := c.Mkdir(p, RootFH, "src")
		if err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		f, err := c.Create(p, dir.FH, "main.c")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := c.WriteFile(p, f.FH, content); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		// Bypass the data cache to force real READs.
		c.FlushCaches()
		readBack, err = c.ReadFile(p, f.FH)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		looked, err = c.Lookup(p, dir.FH, "main.c")
		if err != nil {
			t.Errorf("lookup: %v", err)
		}
	})
	s.RunUntil(sim.Time(time.Minute))
	if !bytes.Equal(readBack, content) {
		t.Fatalf("read %d bytes, want %d identical", len(readBack), len(content))
	}
	if looked.Size != uint32(len(content)) || looked.IsDir {
		t.Fatalf("lookup attr = %+v", looked)
	}
	if srv.Calls[procRead] == 0 || srv.Calls[procWrite] == 0 {
		t.Fatal("server should have seen READ and WRITE RPCs")
	}
}

func TestWarmCacheReadEmitsOnlyStatusChecks(t *testing.T) {
	s, c, srv := setup(t, 2)
	content := make([]byte, 8*1024)
	s.Spawn("client", func(p *sim.Proc) {
		f, _ := c.Create(p, RootFH, "warm.c")
		c.WriteFile(p, f.FH, content)
		readsBefore := srv.Calls[procRead]
		// Let the attribute cache expire so ReadFile must revalidate.
		p.Sleep(AttrTTL + time.Second)
		getattrsBefore := srv.Calls[procGetattr]
		data, err := c.ReadFile(p, f.FH)
		if err != nil || len(data) != len(content) {
			t.Errorf("read: %v, %d bytes", err, len(data))
		}
		if srv.Calls[procRead] != readsBefore {
			t.Error("warm-cache read must not issue READ RPCs")
		}
		if srv.Calls[procGetattr] != getattrsBefore+1 {
			t.Error("warm-cache read must revalidate with one GETATTR")
		}
	})
	s.RunUntil(sim.Time(time.Minute))
}

func TestAttrCacheTTL(t *testing.T) {
	s, c, srv := setup(t, 3)
	s.Spawn("client", func(p *sim.Proc) {
		f, _ := c.Create(p, RootFH, "x")
		before := srv.Calls[procGetattr]
		c.Getattr(p, f.FH) // cached from create
		c.Getattr(p, f.FH)
		if srv.Calls[procGetattr] != before {
			t.Error("fresh attrs must come from cache")
		}
		p.Sleep(AttrTTL + time.Millisecond)
		c.Getattr(p, f.FH)
		if srv.Calls[procGetattr] != before+1 {
			t.Error("expired attrs must refetch")
		}
	})
	s.RunUntil(sim.Time(time.Minute))
}

func TestReaddir(t *testing.T) {
	s, c, _ := setup(t, 4)
	s.Spawn("client", func(p *sim.Proc) {
		names := []string{"a.c", "b.c", "c.c"}
		for _, n := range names {
			c.Create(p, RootFH, n)
		}
		entries, err := c.Readdir(p, RootFH)
		if err != nil {
			t.Errorf("readdir: %v", err)
			return
		}
		if len(entries) != len(names) {
			t.Errorf("entries = %d, want %d", len(entries), len(names))
		}
		seen := map[string]bool{}
		for _, e := range entries {
			seen[e.Name] = true
		}
		for _, n := range names {
			if !seen[n] {
				t.Errorf("missing %s", n)
			}
		}
	})
	s.RunUntil(sim.Time(time.Minute))
}

func TestLookupNoEnt(t *testing.T) {
	s, c, _ := setup(t, 5)
	var err error
	s.Spawn("client", func(p *sim.Proc) {
		_, err = c.Lookup(p, RootFH, "missing")
	})
	s.RunUntil(sim.Time(time.Minute))
	if err != ErrNoEnt {
		t.Fatalf("err = %v, want ErrNoEnt", err)
	}
}

func TestCreateIdempotent(t *testing.T) {
	s, c, _ := setup(t, 6)
	s.Spawn("client", func(p *sim.Proc) {
		a1, err1 := c.Create(p, RootFH, "same")
		a2, err2 := c.Create(p, RootFH, "same")
		if err1 != nil || err2 != nil {
			t.Errorf("errors: %v %v", err1, err2)
			return
		}
		if a1.FH != a2.FH {
			t.Error("recreate must return the same handle")
		}
	})
	s.RunUntil(sim.Time(time.Minute))
}

func TestRPCRetransmitsOverLossyPath(t *testing.T) {
	// 30% loss each way: the hard-mount client must still complete.
	s := sim.New(7)
	cn, sn := buildLAN(s)
	// Degrade the wire via a loss hook on the client.
	rng := s.RNG("loss-hook")
	drop := simnet.HookFunc(func(dir simnet.Direction, ip []byte, next func([]byte)) {
		if rng.Float64() < 0.3 {
			return
		}
		next(ip)
	})
	cn.AddOutboundHook(drop)
	cn.AddInboundHook(drop)
	us := transport.NewUDP(sn)
	uc := transport.NewUDP(cn)
	srv, _ := NewServer(s, us)
	c, _ := NewClient(s, uc, serverIP)
	_ = srv
	var done bool
	s.Spawn("client", func(p *sim.Proc) {
		f, err := c.Create(p, RootFH, "lossy")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := c.WriteFile(p, f.FH, make([]byte, 16*1024)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		done = true
	})
	s.RunUntil(sim.Time(10 * time.Minute))
	if !done {
		t.Fatal("hard-mount client did not complete under loss")
	}
	if c.Retransmits == 0 {
		t.Fatal("30%% loss must force retransmissions")
	}
}

func TestGenTree(t *testing.T) {
	tree := GenTree(rand.New(rand.NewSource(1)))
	if len(tree.Files) != 70 {
		t.Fatalf("files = %d, want 70", len(tree.Files))
	}
	total := tree.TotalBytes()
	if total < 150*1024 || total > 250*1024 {
		t.Fatalf("total = %d, want ≈200KB", total)
	}
	if len(tree.Dirs) != 5 {
		t.Fatalf("dirs = %d, want 5", len(tree.Dirs))
	}
}

func TestAndrewOverEthernet(t *testing.T) {
	s, c, srv := setup(t, 8)
	tree := GenTree(rand.New(rand.NewSource(2)))
	var pt PhaseTimes
	var err error
	s.Spawn("andrew", func(p *sim.Proc) {
		pt, err = RunAndrew(p, c, tree, AndrewConfig{CPUScale: 1, RNG: rand.New(rand.NewSource(3))})
	})
	s.RunUntil(sim.Time(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Every phase ran and Make dominates, as in Figure 8.
	secs := pt.Seconds()
	for i, v := range secs {
		if v <= 0 {
			t.Fatalf("phase %d took %v", i, v)
		}
	}
	if pt.Make < pt.Copy || pt.Make < pt.ReadAll {
		t.Fatalf("Make (%v) should dominate: %+v", pt.Make, pt)
	}
	if pt.Total < 60*time.Second || pt.Total > 300*time.Second {
		t.Fatalf("total = %v, want Andrew-scale (1-4 minutes)", pt.Total)
	}
	if sum := pt.MakeDir + pt.Copy + pt.ScanDir + pt.ReadAll + pt.Make; sum != pt.Total {
		t.Fatalf("phases sum %v != total %v", sum, pt.Total)
	}
	// The benchmark created 2-level dirs + sources + objects.
	if srv.NodeCount() < 140 {
		t.Fatalf("server holds %d nodes", srv.NodeCount())
	}
}

func TestRemove(t *testing.T) {
	s, c, srv := setup(t, 9)
	s.Spawn("client", func(p *sim.Proc) {
		f, _ := c.Create(p, RootFH, "doomed")
		if err := c.Remove(p, RootFH, "doomed"); err != nil {
			t.Errorf("remove: %v", err)
			return
		}
		if _, err := c.Lookup(p, RootFH, "doomed"); err != ErrNoEnt {
			t.Errorf("lookup after remove: %v", err)
		}
		// Idempotent: removing again succeeds (retransmission semantics).
		if err := c.Remove(p, RootFH, "doomed"); err != nil {
			t.Errorf("second remove: %v", err)
		}
		_ = f
	})
	s.RunUntil(sim.Time(time.Minute))
	if srv.NodeCount() != 1 {
		t.Fatalf("nodes = %d, want root only", srv.NodeCount())
	}
}

func TestRemoveNonEmptyDirRefused(t *testing.T) {
	s, c, _ := setup(t, 10)
	var err error
	s.Spawn("client", func(p *sim.Proc) {
		d, _ := c.Mkdir(p, RootFH, "dir")
		c.Create(p, d.FH, "occupant")
		err = c.Remove(p, RootFH, "dir")
	})
	s.RunUntil(sim.Time(time.Minute))
	if err == nil {
		t.Fatal("removing a non-empty directory must fail")
	}
}

func TestRename(t *testing.T) {
	s, c, _ := setup(t, 11)
	s.Spawn("client", func(p *sim.Proc) {
		d1, _ := c.Mkdir(p, RootFH, "a")
		d2, _ := c.Mkdir(p, RootFH, "b")
		f, _ := c.Create(p, d1.FH, "x.c")
		c.WriteFile(p, f.FH, []byte("contents"))
		if err := c.Rename(p, d1.FH, "x.c", d2.FH, "y.c"); err != nil {
			t.Errorf("rename: %v", err)
			return
		}
		if _, err := c.Lookup(p, d1.FH, "x.c"); err != ErrNoEnt {
			t.Errorf("source still present: %v", err)
		}
		got, err := c.Lookup(p, d2.FH, "y.c")
		if err != nil || got.FH != f.FH {
			t.Errorf("target lookup: %+v %v", got, err)
		}
		// Contents survive the rename.
		data, err := c.ReadFile(p, f.FH)
		if err != nil || string(data) != "contents" {
			t.Errorf("read after rename: %q %v", data, err)
		}
	})
	s.RunUntil(sim.Time(time.Minute))
}

func TestRenameMissingSource(t *testing.T) {
	s, c, _ := setup(t, 12)
	var err error
	s.Spawn("client", func(p *sim.Proc) {
		err = c.Rename(p, RootFH, "ghost", RootFH, "elsewhere")
	})
	s.RunUntil(sim.Time(time.Minute))
	if err != ErrNoEnt {
		t.Fatalf("err = %v, want ErrNoEnt", err)
	}
}

func TestTruncate(t *testing.T) {
	s, c, srv := setup(t, 13)
	s.Spawn("client", func(p *sim.Proc) {
		f, _ := c.Create(p, RootFH, "t.c")
		c.WriteFile(p, f.FH, []byte("hello world"))
		a, err := c.Truncate(p, f.FH, 5)
		if err != nil || a.Size != 5 {
			t.Errorf("truncate down: %+v %v", a, err)
			return
		}
		data, err := c.ReadFile(p, f.FH)
		if err != nil || string(data) != "hello" {
			t.Errorf("read after truncate: %q %v", data, err)
		}
		// Extending zero-fills.
		a2, err := c.Truncate(p, f.FH, 8)
		if err != nil || a2.Size != 8 {
			t.Errorf("truncate up: %+v %v", a2, err)
			return
		}
		data2, _ := c.ReadFile(p, f.FH)
		if string(data2) != "hello\x00\x00\x00" {
			t.Errorf("extended data = %q", data2)
		}
	})
	s.RunUntil(sim.Time(time.Minute))
	if srv.Calls[procSetattr] != 2 {
		t.Fatalf("setattr calls = %d", srv.Calls[procSetattr])
	}
}

func TestWindowedWriteFile(t *testing.T) {
	s, c, srv := setup(t, 14)
	c.MaxOutstanding = 4
	content := make([]byte, 40*1024)
	for i := range content {
		content[i] = byte(i * 7)
	}
	var readBack []byte
	s.Spawn("client", func(p *sim.Proc) {
		f, _ := c.Create(p, RootFH, "big")
		if err := c.WriteFile(p, f.FH, content); err != nil {
			t.Errorf("windowed write: %v", err)
			return
		}
		c.FlushCaches()
		var err error
		readBack, err = c.ReadFile(p, f.FH)
		if err != nil {
			t.Errorf("read: %v", err)
		}
	})
	s.RunUntil(sim.Time(time.Minute))
	if !bytes.Equal(readBack, content) {
		t.Fatalf("windowed write corrupted: %d bytes", len(readBack))
	}
	if srv.Calls[procWrite] != 40 {
		t.Fatalf("write RPCs = %d, want 40", srv.Calls[procWrite])
	}
}

func TestWindowedWriteFaster(t *testing.T) {
	// Four outstanding RPCs must beat stop-and-wait over the same wire.
	run := func(window int) time.Duration {
		s, c, _ := setup(t, 15)
		c.MaxOutstanding = window
		var took time.Duration
		s.Spawn("client", func(p *sim.Proc) {
			f, _ := c.Create(p, RootFH, "timed")
			start := p.Now()
			if err := c.WriteFile(p, f.FH, make([]byte, 64*1024)); err != nil {
				t.Errorf("write: %v", err)
			}
			took = p.Now().Sub(start)
		})
		s.RunUntil(sim.Time(time.Minute))
		return took
	}
	serial, windowed := run(1), run(4)
	if windowed >= serial {
		t.Fatalf("windowed %v should beat serial %v", windowed, serial)
	}
}
