// The Andrew benchmark (Howard et al.) over the NFS substrate: MakeDir,
// Copy, ScanDir, ReadAll, and Make phases over a tree of about 70 source
// files occupying about 200 KB, with client CPU time modelled per phase so
// the Ethernet baseline lands near the paper's Figure 8 reference row.

package nfs

import (
	"fmt"
	"math/rand"
	"time"

	"tracemod/internal/sim"
)

// Tree describes the benchmark's source tree.
type Tree struct {
	Dirs  []string   // relative paths, parents before children
	Files []TreeFile // files within those dirs
}

// TreeFile is one source file.
type TreeFile struct {
	Dir  int // index into Tree.Dirs
	Name string
	Size int
}

// TotalBytes sums the file sizes.
func (t Tree) TotalBytes() int {
	n := 0
	for _, f := range t.Files {
		n += f.Size
	}
	return n
}

// GenTree synthesizes the Andrew input: five subsystem directories holding
// about 70 files totalling about 200 KB.
func GenTree(rng *rand.Rand) Tree {
	var t Tree
	subsystems := []string{"afsd", "butc", "kauth", "venus", "vol"}
	t.Dirs = append(t.Dirs, subsystems...)
	const files = 70
	const totalBytes = 200 * 1024
	remaining := totalBytes
	for i := 0; i < files; i++ {
		size := totalBytes/files/2 + rng.Intn(totalBytes/files)
		if i == files-1 || size > remaining {
			size = remaining
		}
		remaining -= size
		t.Files = append(t.Files, TreeFile{
			Dir:  i % len(t.Dirs),
			Name: fmt.Sprintf("src%02d.c", i),
			Size: size,
		})
	}
	return t
}

// PhaseTimes are the benchmark's reported elapsed times.
type PhaseTimes struct {
	MakeDir, Copy, ScanDir, ReadAll, Make time.Duration
	Total                                 time.Duration
}

// AndrewConfig tunes the benchmark's client CPU model. The defaults are
// calibrated so the Ethernet reference run lands near the paper's
// (2.25, 12.5, 7.75, 17.5, 84.0) seconds.
type AndrewConfig struct {
	// CPUScale multiplies every modelled CPU sleep (1.0 = the 75 MHz 486).
	CPUScale float64
	// RNG jitters CPU times ±10%; required.
	RNG *rand.Rand
}

// cpu sleeps for the modelled computation time with ±10% jitter.
func (cfg AndrewConfig) cpu(p *sim.Proc, d time.Duration) {
	scaled := float64(d) * cfg.CPUScale * (0.9 + 0.2*cfg.RNG.Float64())
	p.Sleep(time.Duration(scaled))
}

// Per-item CPU costs for the 1997 laptop.
const (
	cpuMkdir    = 150 * time.Millisecond  // per directory: mkdir + bookkeeping
	cpuCopyFile = 150 * time.Millisecond  // per file: local read + buffer copy
	cpuScanItem = 85 * time.Millisecond   // per entry: stat + pathname work
	cpuReadFile = 220 * time.Millisecond  // per file: read + checksum-style pass
	cpuCompile  = 1100 * time.Millisecond // per file: the compiler itself
	objFraction = 0.6                     // object bytes per source byte
)

// RunAndrew executes the five phases against a (fresh or flushed) client
// and returns per-phase elapsed times. The tree is created under the
// server root; run each trial against a fresh server for reproducibility.
func RunAndrew(p *sim.Proc, c *Client, tree Tree, cfg AndrewConfig) (PhaseTimes, error) {
	if cfg.CPUScale == 0 {
		cfg.CPUScale = 1.0
	}
	if cfg.RNG == nil {
		panic("nfs: AndrewConfig.RNG is required")
	}
	var pt PhaseTimes
	begin := p.Now()

	// Phase 1: MakeDir — recreate the directory skeleton.
	dirFH := make([]uint32, len(tree.Dirs))
	for i, name := range tree.Dirs {
		a, err := c.Mkdir(p, RootFH, name)
		if err != nil {
			return pt, fmt.Errorf("andrew mkdir %s: %w", name, err)
		}
		dirFH[i] = a.FH
		cfg.cpu(p, cpuMkdir)
	}
	// A second level, as the Andrew tree is not flat.
	subFH := make([]uint32, len(tree.Dirs))
	for i, name := range tree.Dirs {
		a, err := c.Mkdir(p, dirFH[i], name+".d")
		if err != nil {
			return pt, err
		}
		subFH[i] = a.FH
		cfg.cpu(p, cpuMkdir)
	}
	_ = subFH
	pt.MakeDir = p.Now().Sub(begin)

	// Phase 2: Copy — copy every source file into the tree.
	mark := p.Now()
	fileFH := make([]uint32, len(tree.Files))
	fileData := make([][]byte, len(tree.Files))
	for i, f := range tree.Files {
		a, err := c.Create(p, dirFH[f.Dir], f.Name)
		if err != nil {
			return pt, fmt.Errorf("andrew create %s: %w", f.Name, err)
		}
		fileFH[i] = a.FH
		data := make([]byte, f.Size)
		for j := range data {
			data[j] = byte('a' + (i+j)%26)
		}
		fileData[i] = data
		if err := c.WriteFile(p, a.FH, data); err != nil {
			return pt, fmt.Errorf("andrew write %s: %w", f.Name, err)
		}
		cfg.cpu(p, cpuCopyFile)
	}
	pt.Copy = p.Now().Sub(mark)

	// Phase 3: ScanDir — stat every entry in the tree.
	mark = p.Now()
	for _, fh := range dirFH {
		if _, err := c.Readdir(p, fh); err != nil {
			return pt, err
		}
	}
	for i := range tree.Files {
		if _, err := c.Getattr(p, fileFH[i]); err != nil {
			return pt, err
		}
		cfg.cpu(p, cpuScanItem)
	}
	pt.ScanDir = p.Now().Sub(mark)

	// Phase 4: ReadAll — read every byte; the client cache is warm from
	// Copy, so this emits status checks only.
	mark = p.Now()
	for i := range tree.Files {
		data, err := c.ReadFile(p, fileFH[i])
		if err != nil {
			return pt, err
		}
		if len(data) != tree.Files[i].Size {
			return pt, fmt.Errorf("andrew readall %s: got %d bytes, want %d",
				tree.Files[i].Name, len(data), tree.Files[i].Size)
		}
		cfg.cpu(p, cpuReadFile)
	}
	pt.ReadAll = p.Now().Sub(mark)

	// Phase 5: Make — compile every source (CPU-dominated), re-reading
	// sources through the cache and writing object files back via NFS.
	mark = p.Now()
	for i, f := range tree.Files {
		if _, err := c.ReadFile(p, fileFH[i]); err != nil {
			return pt, err
		}
		cfg.cpu(p, cpuCompile)
		obj, err := c.Create(p, dirFH[f.Dir], f.Name+".o")
		if err != nil {
			return pt, err
		}
		objData := make([]byte, int(float64(f.Size)*objFraction))
		if err := c.WriteFile(p, obj.FH, objData); err != nil {
			return pt, err
		}
	}
	pt.Make = p.Now().Sub(mark)

	pt.Total = p.Now().Sub(begin)
	return pt, nil
}

// Seconds renders the phase times the way Figure 8 reports them.
func (pt PhaseTimes) Seconds() [6]float64 {
	return [6]float64{
		pt.MakeDir.Seconds(), pt.Copy.Seconds(), pt.ScanDir.Seconds(),
		pt.ReadAll.Seconds(), pt.Make.Seconds(), pt.Total.Seconds(),
	}
}
