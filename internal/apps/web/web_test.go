package web

import (
	"math/rand"
	"testing"
	"time"

	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/transport"
)

func TestGenTracesShape(t *testing.T) {
	traces := GenTraces(rand.New(rand.NewSource(1)))
	if len(traces) != 5 {
		t.Fatalf("users = %d, want 5", len(traces))
	}
	totalReq := 0
	for _, ut := range traces {
		if len(ut.Pages) < 15 {
			t.Fatalf("%s has only %d pages", ut.User, len(ut.Pages))
		}
		totalReq += ut.Requests()
		if ut.TotalBytes() <= 0 {
			t.Fatal("trace with no bytes")
		}
	}
	if totalReq < 200 || totalReq > 900 {
		t.Fatalf("total requests = %d, want a few hundred", totalReq)
	}
}

func TestGenTracesDeterministic(t *testing.T) {
	a := GenTraces(rand.New(rand.NewSource(7)))
	b := GenTraces(rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i].Requests() != b[i].Requests() || a[i].TotalBytes() != b[i].TotalBytes() {
			t.Fatal("same seed must give identical traces")
		}
	}
}

func TestRunSmallWorkload(t *testing.T) {
	s := sim.New(2)
	tb := scenario.BuildEthernet(s)
	client := transport.NewTCP(tb.Laptop)
	server := transport.NewTCP(tb.Server)
	Serve(s, server)

	traces := []UserTrace{{User: "t", Pages: []Page{
		{HTMLSize: 4096, Objects: []int{2048, 1024}},
		{HTMLSize: 8192},
	}}}
	var elapsed time.Duration
	var err error
	s.Spawn("bench", func(p *sim.Proc) {
		elapsed, err = Run(p, client, scenario.ModServer, traces, Config{
			ProcMean: 100 * time.Millisecond,
			RNG:      rand.New(rand.NewSource(3)),
		})
	})
	s.RunUntil(sim.Time(5 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	// 5 requests x ~100ms processing plus transfer time.
	if elapsed < 400*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("elapsed = %v, implausible for 5 small objects", elapsed)
	}
}

func TestRunRequiresRNG(t *testing.T) {
	s := sim.New(2)
	tb := scenario.BuildEthernet(s)
	client := transport.NewTCP(tb.Laptop)
	panicked := false
	s.Spawn("bench", func(p *sim.Proc) {
		defer func() { panicked = recover() != nil }()
		Run(p, client, scenario.ModServer, nil, Config{})
	})
	s.Run()
	if !panicked {
		t.Fatal("missing RNG should panic")
	}
}

func TestWaveLANSlowerThanEthernet(t *testing.T) {
	traces := []UserTrace{{User: "t", Pages: []Page{
		{HTMLSize: 6144, Objects: []int{4096, 4096, 2048}},
		{HTMLSize: 6144, Objects: []int{4096}},
		{HTMLSize: 10240, Objects: []int{2048, 2048}},
	}}}
	run := func(wireless bool) time.Duration {
		s := sim.New(5)
		var client, server *transport.TCPStack
		var serverIP = scenario.ModServer
		if wireless {
			tb := scenario.BuildWireless(s, scenario.Porter)
			client, server = transport.NewTCP(tb.Laptop), transport.NewTCP(tb.Server)
			serverIP = scenario.ServerIP
		} else {
			tb := scenario.BuildEthernet(s)
			client, server = transport.NewTCP(tb.Laptop), transport.NewTCP(tb.Server)
		}
		Serve(s, server)
		var elapsed time.Duration
		s.Spawn("bench", func(p *sim.Proc) {
			elapsed, _ = Run(p, client, serverIP, traces, Config{
				ProcMean: 50 * time.Millisecond,
				RNG:      rand.New(rand.NewSource(9)),
			})
		})
		s.RunUntil(sim.Time(10 * time.Minute))
		return elapsed
	}
	eth, wl := run(false), run(true)
	if eth == 0 || wl == 0 {
		t.Fatalf("eth=%v wl=%v", eth, wl)
	}
	if wl <= eth {
		t.Fatalf("wavelan %v should be slower than ethernet %v", wl, eth)
	}
}
