// Package web implements the paper's World Wide Web benchmark
// (Section 4.2): reference traces of five users performing search tasks,
// replayed as fast as possible against a private server holding every
// referenced object. The client models Mosaic v2.6 behaviour: one HTTP/1.0
// style connection per object (no keep-alive) plus per-object client
// processing (parse/render) time.
package web

import (
	"fmt"
	"math/rand"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/sim"
	"tracemod/internal/transport"
)

// Port is the private web server's port.
const Port = 80

// Page is one page visit: an HTML document plus its inline objects.
type Page struct {
	HTMLSize int
	Objects  []int // inline object sizes
}

// UserTrace is the reference trace of one user's search task.
type UserTrace struct {
	User  string
	Pages []Page
}

// Requests counts the HTTP requests a trace will issue.
func (u UserTrace) Requests() int {
	n := 0
	for _, pg := range u.Pages {
		n += 1 + len(pg.Objects)
	}
	return n
}

// TotalBytes sums all object sizes in a trace.
func (u UserTrace) TotalBytes() int {
	n := 0
	for _, pg := range u.Pages {
		n += pg.HTMLSize
		for _, o := range pg.Objects {
			n += o
		}
	}
	return n
}

// GenTraces synthesizes the five users' search-task traces. Search tasks
// are many small pages: result listings with a few inline images. The
// workload is deterministic in rng.
func GenTraces(rng *rand.Rand) []UserTrace {
	users := []string{"u1", "u2", "u3", "u4", "u5"}
	traces := make([]UserTrace, 0, len(users))
	for _, name := range users {
		pages := 30 + rng.Intn(8) // ≈34 pages per search task
		ut := UserTrace{User: name}
		for i := 0; i < pages; i++ {
			pg := Page{HTMLSize: 2048 + rng.Intn(10*1024)}
			for j := rng.Intn(5); j > 0; j-- {
				pg.Objects = append(pg.Objects, 1024+rng.Intn(7*1024))
			}
			ut.Pages = append(ut.Pages, pg)
		}
		traces = append(traces, ut)
	}
	return traces
}

// Serve runs the private web server: it answers "GET <size>" requests with
// that many bytes (all URLs were rewritten to the private server, so the
// requested size is the object identity the benchmark needs).
func Serve(s *sim.Scheduler, stack *transport.TCPStack) {
	l, err := stack.Listen(Port)
	if err != nil {
		panic(fmt.Sprintf("web: listen: %v", err))
	}
	s.Spawn("web-server", func(p *sim.Proc) {
		for {
			conn, ok := l.Accept(p)
			if !ok {
				return
			}
			s.Spawn("web-conn", func(p *sim.Proc) { serveConn(p, conn) })
		}
	})
}

func serveConn(p *sim.Proc, c *transport.Conn) {
	defer c.Close()
	var req []byte
	for {
		b, err := c.Read(p, 64)
		if err != nil {
			return
		}
		req = append(req, b...)
		if n := len(req); n > 0 && req[n-1] == '\n' {
			break
		}
		if len(req) > 512 {
			return
		}
	}
	var size int
	if _, err := fmt.Sscanf(string(req), "GET %d", &size); err != nil {
		return
	}
	body := make([]byte, size)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	c.Write(p, []byte(fmt.Sprintf("HTTP/1.0 200 OK\nContent-Length: %d\n\n", size)))
	c.Write(p, body)
}

// fetch retrieves one object over a fresh connection, Mosaic-style.
func fetch(p *sim.Proc, stack *transport.TCPStack, server packet.IPAddr, size int) error {
	c, err := stack.Dial(p, server, Port)
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.Write(p, []byte(fmt.Sprintf("GET %d\n", size))); err != nil {
		return err
	}
	// Read header line-by-line until the blank line, then the body.
	lines := 0
	for lines < 3 {
		b, err := c.Read(p, 1)
		if err != nil {
			return err
		}
		if len(b) == 1 && b[0] == '\n' {
			lines++
		}
	}
	_, err = c.ReadFull(p, size)
	return err
}

// Config parameterizes a benchmark run.
type Config struct {
	// ProcMean is the mean per-object client processing (parse/render)
	// time; actual values draw uniformly in [0.6, 1.4]×ProcMean.
	ProcMean time.Duration
	// RNG drives processing-time jitter (the workload rng, independent of
	// the network).
	RNG *rand.Rand
}

// DefaultProcMean approximates Mosaic's per-object processing on a 75 MHz
// 486: a couple hundred milliseconds.
const DefaultProcMean = 250 * time.Millisecond

// Run replays all traces sequentially and returns the elapsed time, the
// paper's reported metric.
func Run(p *sim.Proc, stack *transport.TCPStack, server packet.IPAddr, traces []UserTrace, cfg Config) (time.Duration, error) {
	if cfg.ProcMean == 0 {
		cfg.ProcMean = DefaultProcMean
	}
	if cfg.RNG == nil {
		panic("web: Config.RNG is required")
	}
	start := p.Now()
	proc := func() {
		lo := 0.6 * float64(cfg.ProcMean)
		hi := 1.4 * float64(cfg.ProcMean)
		p.Sleep(time.Duration(lo + cfg.RNG.Float64()*(hi-lo)))
	}
	for _, ut := range traces {
		for _, pg := range ut.Pages {
			if err := fetch(p, stack, server, pg.HTMLSize); err != nil {
				return 0, fmt.Errorf("web: %s html: %w", ut.User, err)
			}
			proc()
			for _, obj := range pg.Objects {
				if err := fetch(p, stack, server, obj); err != nil {
					return 0, fmt.Errorf("web: %s object: %w", ut.User, err)
				}
				proc()
			}
		}
	}
	return p.Now().Sub(start), nil
}
