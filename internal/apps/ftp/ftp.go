// Package ftp implements the paper's FTP benchmark: a single large file
// transferred disk-to-disk over TCP, in both directions (Section 4.2). The
// benchmark is network-limited and sensitive to asymmetry, which is
// exactly what it is used to probe.
//
// The protocol is a minimal FTP-like stream: the client connects and sends
// a one-line command ("SEND <n>" to upload n bytes, "RECV <n>" to
// download), then the file body flows. Disk activity on the client is
// modelled by per-chunk sleeps at a 1997-laptop disk rate.
package ftp

import (
	"fmt"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/sim"
	"tracemod/internal/transport"
)

// Defaults for the paper's configuration.
const (
	Port        = 21
	DefaultSize = 10 << 20 // the paper transfers a 10 MB file
	// DefaultDiskRate approximates the laptop's disk in bytes/second,
	// calibrated so the Ethernet reference transfer lands near the
	// paper's ≈20 s for 10 MB; the server's disk is assumed fast enough
	// to never be the bottleneck.
	DefaultDiskRate = 550e3
	// ChunkSize is the application's read/write unit.
	ChunkSize = 32 * 1024
)

// Direction of a transfer from the client's point of view.
type Direction int

// Transfer directions.
const (
	Send Direction = iota // client uploads (paper's "send")
	Recv                  // client downloads (paper's "recv", fetch)
)

func (d Direction) String() string {
	if d == Send {
		return "send"
	}
	return "recv"
}

// Serve runs the FTP server loop on stack; it accepts connections forever
// and services one command per connection.
func Serve(s *sim.Scheduler, stack *transport.TCPStack) {
	l, err := stack.Listen(Port)
	if err != nil {
		panic(fmt.Sprintf("ftp: listen: %v", err))
	}
	s.Spawn("ftp-server", func(p *sim.Proc) {
		for {
			conn, ok := l.Accept(p)
			if !ok {
				return
			}
			s.Spawn("ftp-conn", func(p *sim.Proc) { serveConn(p, conn) })
		}
	})
}

func serveConn(p *sim.Proc, c *transport.Conn) {
	defer c.Close()
	line, err := readLine(p, c)
	if err != nil {
		return
	}
	var n int
	if _, err := fmt.Sscanf(line, "SEND %d", &n); err == nil {
		sinkBytes(p, c, n, 0) // server disk is not the bottleneck
		c.Write(p, []byte("OK\n"))
		return
	}
	if _, err := fmt.Sscanf(line, "RECV %d", &n); err == nil {
		streamBytes(p, c, n, 0)
		return
	}
}

func readLine(p *sim.Proc, c *transport.Conn) (string, error) {
	var line []byte
	for {
		b, err := c.Read(p, 1)
		if err != nil {
			return "", err
		}
		if len(b) == 1 && b[0] == '\n' {
			return string(line), nil
		}
		line = append(line, b...)
	}
}

// streamBytes writes n bytes in chunks, sleeping for disk reads at
// diskRate bytes/second (0 = no disk model).
func streamBytes(p *sim.Proc, c *transport.Conn, n int, diskRate float64) error {
	buf := make([]byte, ChunkSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	for sent := 0; sent < n; {
		chunk := n - sent
		if chunk > ChunkSize {
			chunk = ChunkSize
		}
		if diskRate > 0 {
			p.Sleep(time.Duration(float64(chunk) / diskRate * float64(time.Second)))
		}
		if _, err := c.Write(p, buf[:chunk]); err != nil {
			return err
		}
		sent += chunk
	}
	return nil
}

// sinkBytes reads n bytes, sleeping for disk writes at diskRate.
func sinkBytes(p *sim.Proc, c *transport.Conn, n int, diskRate float64) error {
	for got := 0; got < n; {
		chunk, err := c.Read(p, ChunkSize)
		if err != nil {
			return err
		}
		got += len(chunk)
		if diskRate > 0 {
			p.Sleep(time.Duration(float64(len(chunk)) / diskRate * float64(time.Second)))
		}
	}
	return nil
}

// Transfer runs one benchmark transfer from the client and returns its
// elapsed time. It must be called from a simulation process.
func Transfer(p *sim.Proc, stack *transport.TCPStack, server packet.IPAddr, dir Direction, size int, diskRate float64) (time.Duration, error) {
	start := p.Now()
	c, err := stack.Dial(p, server, Port)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	switch dir {
	case Send:
		if _, err := c.Write(p, []byte(fmt.Sprintf("SEND %d\n", size))); err != nil {
			return 0, err
		}
		if err := streamBytes(p, c, size, diskRate); err != nil {
			return 0, err
		}
		// Wait for the server's OK so the elapsed time covers delivery.
		if _, err := readLine(p, c); err != nil {
			return 0, err
		}
	case Recv:
		if _, err := c.Write(p, []byte(fmt.Sprintf("RECV %d\n", size))); err != nil {
			return 0, err
		}
		if err := sinkBytes(p, c, size, diskRate); err != nil {
			return 0, err
		}
	}
	return p.Now().Sub(start), nil
}
