package ftp

import (
	"testing"
	"time"

	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/transport"
)

func setupEthernet(t *testing.T, seed int64) (*sim.Scheduler, *transport.TCPStack) {
	t.Helper()
	s := sim.New(seed)
	tb := scenario.BuildEthernet(s)
	client := transport.NewTCP(tb.Laptop)
	server := transport.NewTCP(tb.Server)
	Serve(s, server)
	return s, client
}

func TestTransferBothDirections(t *testing.T) {
	s, client := setupEthernet(t, 1)
	const size = 512 * 1024
	var sendT, recvT time.Duration
	var err1, err2 error
	s.Spawn("bench", func(p *sim.Proc) {
		sendT, err1 = Transfer(p, client, scenario.ModServer, Send, size, DefaultDiskRate)
		recvT, err2 = Transfer(p, client, scenario.ModServer, Recv, size, DefaultDiskRate)
	})
	s.RunUntil(sim.Time(10 * time.Minute))
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v %v", err1, err2)
	}
	if sendT == 0 || recvT == 0 {
		t.Fatal("transfers did not complete")
	}
	// 512KB: disk ≈ 0.44s, network at 10Mb/s ≈ 0.43s. Both transfers in
	// the 0.4-3s range.
	for _, d := range []time.Duration{sendT, recvT} {
		if d < 300*time.Millisecond || d > 3*time.Second {
			t.Fatalf("send=%v recv=%v, out of plausible range", sendT, recvT)
		}
	}
}

func TestDiskRateDominatesWhenSlow(t *testing.T) {
	s, client := setupEthernet(t, 2)
	const size = 256 * 1024
	var slow, fast time.Duration
	s.Spawn("bench", func(p *sim.Proc) {
		slow, _ = Transfer(p, client, scenario.ModServer, Send, size, 100e3) // 100 KB/s disk
		fast, _ = Transfer(p, client, scenario.ModServer, Send, size, 0)     // no disk model
	})
	s.RunUntil(sim.Time(10 * time.Minute))
	if slow < 2*fast {
		t.Fatalf("slow-disk transfer %v should dwarf no-disk %v", slow, fast)
	}
	if slow < 2*time.Second { // 256KB at 100KB/s = 2.6s
		t.Fatalf("slow = %v, want >= 2s", slow)
	}
}

func TestTransferOverWaveLAN(t *testing.T) {
	s := sim.New(3)
	tb := scenario.BuildWireless(s, scenario.Porter)
	client := transport.NewTCP(tb.Laptop)
	server := transport.NewTCP(tb.Server)
	Serve(s, server)
	const size = 1 << 20 // 1 MB across the wireless path
	var sendT time.Duration
	var err error
	s.Spawn("bench", func(p *sim.Proc) {
		sendT, err = Transfer(p, client, scenario.ServerIP, Send, size, DefaultDiskRate)
	})
	s.RunUntil(sim.Time(10 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	// 1MB over ≈1.4Mb/s with loss: at least ~6s, and the wireless path
	// must be slower than the wired one.
	if sendT < 5*time.Second || sendT > 120*time.Second {
		t.Fatalf("wavelan send = %v, implausible", sendT)
	}
}

func TestDirectionString(t *testing.T) {
	if Send.String() != "send" || Recv.String() != "recv" {
		t.Fatal("direction strings wrong")
	}
}
