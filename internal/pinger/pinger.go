// Package pinger implements the paper's known workload (Sections 3.1.1 and
// 3.2.2): a modified ping that each second sends an ICMP ECHO with a small
// payload s1 and, upon receiving its ECHOREPLY, immediately sends two
// larger ECHOs of payload size s2 back-to-back. The first pair of
// round-trips yields the latency F and total per-byte cost V; the
// back-to-back pair separates the bottleneck cost Vb from the residual Vr;
// sequence-number gaps yield the loss rate.
//
// Every echo payload carries the send timestamp in its first 8 bytes, so
// the tracer can compute round-trip times from a single host's clock.
package pinger

import (
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
)

// Default workload geometry. Sizes are ICMP payload bytes; on the wire an
// echo is payload + 8 (ICMP) + 20 (IP) bytes.
const (
	DefaultS1       = 32   // small probe payload
	DefaultS2       = 1000 // large back-to-back probe payload
	DefaultInterval = time.Second
)

// WireSize returns the IP datagram size of an echo with the given payload.
func WireSize(payload int) int {
	return packet.IPv4HeaderLen + packet.ICMPHeaderLen + payload
}

type reply struct {
	seq uint16
	at  sim.Time
}

// Stats summarizes a pinger run.
type Stats struct {
	Sent     int // ECHO requests transmitted
	Received int // ECHOREPLYs received
	Triplets int // complete three-packet groups initiated
}

// Pinger drives the known workload from a node toward a target.
type Pinger struct {
	// S1 and S2 are the two payload sizes; S1 < S2.
	S1, S2 int
	// Interval separates successive groups (one second in the paper).
	Interval time.Duration
	// ID is the echo identifier; the paper stores the generating process
	// id in this field.
	ID uint16

	node    *simnet.Node
	target  packet.IPAddr
	seq     uint16
	replies *sim.Chan[reply]
	stats   Stats
}

// New prepares a pinger and installs its ICMP handler on node (replacing
// the default echo responder; the mobile host is the measurement endpoint,
// not a ping target).
func New(node *simnet.Node, target packet.IPAddr) *Pinger {
	pg := &Pinger{
		S1: DefaultS1, S2: DefaultS2, Interval: DefaultInterval,
		ID:      4242,
		node:    node,
		target:  target,
		replies: sim.NewChan[reply](node.Sched(), 64),
	}
	node.RegisterProto(packet.ProtoICMP, pg.handleICMP)
	return pg
}

// Stats returns the workload counters so far.
func (pg *Pinger) Stats() Stats { return pg.stats }

func (pg *Pinger) handleICMP(n *simnet.Node, ip packet.IPv4) {
	m := packet.ICMP(ip.Payload())
	if !m.Valid() || m.Type() != packet.ICMPEchoReply || m.ID() != pg.ID {
		return
	}
	pg.stats.Received++
	pg.replies.TrySend(reply{seq: m.Seq(), at: n.Sched().Now()})
}

// sendEcho transmits one ECHO with the given payload size and returns its
// sequence number.
func (pg *Pinger) sendEcho(payloadSize int) uint16 {
	pg.seq++
	seq := pg.seq
	now := int64(pg.node.Sched().Now())
	echo := packet.MarshalICMP(
		packet.ICMPFields{Type: packet.ICMPEcho, ID: pg.ID, Seq: seq},
		packet.EchoPayload(payloadSize, now),
	)
	pg.node.SendIP(packet.ProtoICMP, pg.target, echo)
	pg.stats.Sent++
	return seq
}

// waitFor blocks until the reply for seq arrives or the deadline passes,
// discarding stale replies for earlier sequence numbers.
func (pg *Pinger) waitFor(p *sim.Proc, seq uint16, deadline sim.Time) bool {
	for {
		remaining := deadline.Sub(p.Now())
		if remaining <= 0 {
			return false
		}
		r, ok, timedOut := pg.replies.RecvTimeout(p, remaining)
		if timedOut || !ok {
			return false
		}
		if r.seq == seq {
			return true
		}
		// Stale reply from an earlier group: keep waiting.
	}
}

// Run executes the workload for dur, generating one group per Interval.
// It must be called from a simulation process.
func (pg *Pinger) Run(p *sim.Proc, dur time.Duration) {
	end := p.Now().Add(dur)
	for p.Now() < end {
		groupStart := p.Now()
		pg.runGroup(p, groupStart.Add(pg.Interval))
		// Sleep out the rest of the interval.
		if wait := groupStart.Add(pg.Interval).Sub(p.Now()); wait > 0 {
			p.Sleep(wait)
		}
	}
}

// runGroup performs one two-stage probe group: a small echo, then — once
// its reply arrives — two large echoes sent back-to-back.
func (pg *Pinger) runGroup(p *sim.Proc, deadline sim.Time) {
	pg.stats.Triplets++
	seq1 := pg.sendEcho(pg.S1)
	if !pg.waitFor(p, seq1, deadline) {
		return // stage-1 reply lost or late; no stage 2 this interval
	}
	pg.sendEcho(pg.S2)
	seq3 := pg.sendEcho(pg.S2)
	// Wait (bounded) so stale replies don't leak into the next group.
	pg.waitFor(p, seq3, deadline)
}

// Start spawns the workload as a process and returns the pinger.
func Start(s *sim.Scheduler, node *simnet.Node, target packet.IPAddr, dur time.Duration) *Pinger {
	pg := New(node, target)
	s.Spawn("pinger", func(p *sim.Proc) { pg.Run(p, dur) })
	return pg
}
