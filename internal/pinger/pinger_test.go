package pinger

import (
	"testing"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
)

func TestWireSize(t *testing.T) {
	if WireSize(32) != 60 {
		t.Fatalf("WireSize(32) = %d, want 60", WireSize(32))
	}
}

func TestWorkloadGroupShape(t *testing.T) {
	// On a clean static LAN, every group completes: 3 echoes per second.
	s := sim.New(1)
	m := simnet.NewMedium(s, "lan", simnet.Static{Latency: time.Millisecond, PerByte: 1000})
	a := simnet.NewNode(s, "a")
	a.AttachNIC(m, packet.IP4(10, 0, 0, 1), packet.IP4(255, 255, 255, 0))
	b := simnet.NewNode(s, "b")
	b.AttachNIC(m, packet.IP4(10, 0, 0, 2), packet.IP4(255, 255, 255, 0))

	// Observe echo sends at the device.
	var sent []int
	var sentAt []sim.Time
	a.NIC(0).SetTap(func(dir simnet.Direction, at sim.Time, ip []byte, q simnet.Quality) {
		if dir != simnet.Outbound {
			return
		}
		info, err := packet.Decode(ip)
		if err == nil && info.Has(packet.LayerTypeICMPv4) && info.ICMP.Type() == packet.ICMPEcho {
			sent = append(sent, int(info.IP.TotalLen()))
			sentAt = append(sentAt, at)
		}
	})

	pg := Start(s, a, packet.IP4(10, 0, 0, 2), 5*time.Second)
	s.Run()

	st := pg.Stats()
	if st.Triplets != 5 {
		t.Fatalf("triplets = %d, want 5", st.Triplets)
	}
	if st.Sent != 15 || st.Received != 15 {
		t.Fatalf("sent/received = %d/%d, want 15/15", st.Sent, st.Received)
	}
	// Per group: sizes s1, s2, s2.
	s1, s2 := WireSize(DefaultS1), WireSize(DefaultS2)
	for g := 0; g < 5; g++ {
		if sent[3*g] != s1 || sent[3*g+1] != s2 || sent[3*g+2] != s2 {
			t.Fatalf("group %d sizes = %v", g, sent[3*g:3*g+3])
		}
		// The two large echoes are back-to-back: identical send times.
		if sentAt[3*g+1] != sentAt[3*g+2] {
			t.Fatalf("group %d stage-2 not back-to-back: %v vs %v", g, sentAt[3*g+1], sentAt[3*g+2])
		}
		// Groups start on 1-second boundaries.
		if got := sentAt[3*g].Duration(); got != time.Duration(g)*time.Second {
			t.Fatalf("group %d started at %v", g, got)
		}
	}
}

func TestPayloadCarriesTimestamp(t *testing.T) {
	s := sim.New(1)
	m := simnet.NewMedium(s, "lan", simnet.Static{Latency: time.Millisecond, PerByte: 100})
	a := simnet.NewNode(s, "a")
	a.AttachNIC(m, packet.IP4(10, 0, 0, 1), packet.IP4(255, 255, 255, 0))
	b := simnet.NewNode(s, "b")
	b.AttachNIC(m, packet.IP4(10, 0, 0, 2), packet.IP4(255, 255, 255, 0))
	var ts int64
	var tsOK bool
	var sentTime sim.Time
	b.NIC(0).SetTap(func(dir simnet.Direction, at sim.Time, ip []byte, q simnet.Quality) {
		if dir != simnet.Inbound || tsOK {
			return
		}
		info, err := packet.Decode(ip)
		if err == nil && info.Has(packet.LayerTypeICMPv4) && info.ICMP.Type() == packet.ICMPEcho {
			ts, tsOK = info.ICMP.SentAt()
		}
	})
	s.At(sim.Time(500*time.Millisecond), func() {}) // move clock off zero
	s.Spawn("delayed", func(p *sim.Proc) {
		p.Sleep(250 * time.Millisecond)
		sentTime = p.Now()
		pg := New(a, packet.IP4(10, 0, 0, 2))
		pg.Run(p, time.Second)
	})
	s.Run()
	if !tsOK {
		t.Fatal("no timestamp observed")
	}
	if ts != int64(sentTime) {
		t.Fatalf("timestamp = %d, want %d", ts, int64(sentTime))
	}
}

func TestLossyStage1SkipsStage2(t *testing.T) {
	// Drop every stage-1 echo (the first, small one) via an outbound hook:
	// then no stage-2 echoes should ever be sent.
	s := sim.New(1)
	m := simnet.NewMedium(s, "lan", simnet.Static{Latency: time.Millisecond, PerByte: 100})
	a := simnet.NewNode(s, "a")
	a.AttachNIC(m, packet.IP4(10, 0, 0, 1), packet.IP4(255, 255, 255, 0))
	b := simnet.NewNode(s, "b")
	b.AttachNIC(m, packet.IP4(10, 0, 0, 2), packet.IP4(255, 255, 255, 0))
	small := WireSize(DefaultS1)
	a.AddOutboundHook(simnet.HookFunc(func(dir simnet.Direction, ip []byte, next func([]byte)) {
		if len(ip) == small {
			return // drop
		}
		next(ip)
	}))
	pg := Start(s, a, packet.IP4(10, 0, 0, 2), 3*time.Second)
	s.Run()
	st := pg.Stats()
	if st.Sent != 3 { // only the three stage-1 probes
		t.Fatalf("sent = %d, want 3", st.Sent)
	}
	if st.Received != 0 {
		t.Fatalf("received = %d, want 0", st.Received)
	}
	if st.Triplets != 3 {
		t.Fatalf("triplets = %d", st.Triplets)
	}
}

func TestStaleRepliesDiscarded(t *testing.T) {
	// Delay all replies by 1.5 intervals: stage-1 replies arrive during the
	// *next* group, and the pinger must not mistake them for that group's.
	s := sim.New(1)
	m := simnet.NewMedium(s, "lan", simnet.Static{Latency: 1500 * time.Millisecond, PerByte: 10})
	a := simnet.NewNode(s, "a")
	a.AttachNIC(m, packet.IP4(10, 0, 0, 1), packet.IP4(255, 255, 255, 0))
	b := simnet.NewNode(s, "b")
	b.AttachNIC(m, packet.IP4(10, 0, 0, 2), packet.IP4(255, 255, 255, 0))
	pg := Start(s, a, packet.IP4(10, 0, 0, 2), 4*time.Second)
	s.Run()
	st := pg.Stats()
	// Every stage-1 reply misses its deadline, so no stage 2 ever fires.
	if st.Sent != 4 {
		t.Fatalf("sent = %d, want 4", st.Sent)
	}
}

func TestRunOverWirelessScenario(t *testing.T) {
	s := sim.New(9)
	tb := scenario.BuildWireless(s, scenario.Porter)
	pg := Start(s, tb.Laptop, scenario.ServerIP, 20*time.Second)
	s.RunFor(21 * time.Second)
	st := pg.Stats()
	if st.Triplets != 20 {
		t.Fatalf("triplets = %d, want 20", st.Triplets)
	}
	if st.Received == 0 || st.Sent < 20 {
		t.Fatalf("sent=%d received=%d", st.Sent, st.Received)
	}
	// Porter loses a few percent of packets; over 20s the workload should
	// still mostly succeed.
	if float64(st.Received) < 0.5*float64(st.Sent) {
		t.Fatalf("loss too extreme: %d/%d", st.Received, st.Sent)
	}
}
