// Session: one emulated mobile link hosted by the daemon. A session wraps
// one modulation.Engine and its private replay cursor around a shared,
// immutable trace, schedules every timer through a per-session handle on
// the farm's timer wheel, and optionally fronts the engine with a livewire
// UDP relay. Lifecycle is create → start → (drain) → stop; Stop is a hard
// barrier — once it returns, no engine timer of the session will ever
// fire again.
package emud

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/emud/wheel"
	"tracemod/internal/livewire"
	"tracemod/internal/modulation"
	"tracemod/internal/obs/span"
	"tracemod/internal/simnet"
)

// Typed rejection errors. ErrOverload marks admission-control sheds (the
// farm or session is at capacity — back off and retry); ErrNotRunning
// marks packets offered to a session outside StateRunning.
var (
	ErrOverload   = errors.New("emud: overloaded")
	ErrNotRunning = errors.New("emud: session not running")
	// ErrDraining marks creates refused because the farm is in a planned
	// shutdown (BeginDrain): the process is alive but handing its work
	// away. Mapped to HTTP 503 — distinct from the 429 overload path.
	ErrDraining = errors.New("emud: farm draining")
)

// State is a session's lifecycle position.
type State int32

// Session states.
const (
	StateCreated  State = iota // configured, engine not yet scheduling
	StateRunning               // engine live, accepting packets
	StateDraining              // rejecting new packets, in-flight completing
	StateStopped               // terminal: timers revoked
)

func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	}
	return "unknown"
}

// SessionConfig describes one session at creation.
type SessionConfig struct {
	// Name is a free-form label (reported back; need not be unique).
	Name string
	// Trace drives the session's modulation; it is shared and immutable.
	Trace core.Trace
	// Live, when non-nil, replaces Trace with a growing replay trace fed
	// by an in-flight live-ingest stream: the session's cursor waits at
	// the live edge (engine holds parameters) instead of treating it as
	// EOF, and resumes the moment the distiller emits the next tuple.
	Live *LiveTrace
	// TraceRef records where the trace came from (path, synthetic name)
	// for introspection only.
	TraceRef string
	// Loop replays the trace forever; otherwise the final tuple holds.
	Loop bool
	// Tick is the engine's delivery quantization (modulation.DefaultTick
	// if 0, exact if negative).
	Tick time.Duration
	// Seed drives the session's drop lottery (sessions are mutually
	// deterministic: same trace + seed → same losses).
	Seed int64
	// InboundExtra and Compensation mirror modulation.Config.
	InboundExtra core.PerByte
	Compensation core.PerByte
	// SkipTuples fast-forwards the replay cursor past this many tuples at
	// Start — crash recovery resumes a restored session where the lost
	// daemon's snapshot left it.
	SkipTuples int64
	// SkipDraws fast-forwards the drop-lottery RNG past this many draws at
	// Start by burning them from the freshly-seeded stream. A live
	// migration records the source's draw count so the destination engine
	// continues the exact lottery sequence — byte-identical drops — instead
	// of restarting the stream from the seed.
	SkipDraws int64
}

// SessionStats is a point-in-time snapshot of a session's activity.
type SessionStats struct {
	Submitted int64 // packets accepted into the engine
	Delivered int64 // packets that completed delivery
	Dropped   int64 // packets lost to the drop lottery
	Rejected  int64 // packets refused (not running)
	Shed      int64 // packets refused by admission control (overload)
	InFlight  int64 // accepted, not yet delivered or dropped
}

// Session is one hosted emulated link.
type Session struct {
	ID      string
	cfg     SessionConfig
	created time.Duration // wheel time at creation

	mu     sync.Mutex
	state  atomic.Int32
	engine *modulation.Engine
	timers *wheel.Timers
	relay  *livewire.Relay

	// relayListen/relayTarget remember the attach arguments so a crash
	// snapshot can re-attach the relay on recovery.
	relayListen, relayTarget string

	lastActive atomic.Int64 // wheel-time nanoseconds of last packet or transition

	submitted, delivered, dropped, rejected, shed atomic.Int64
	inflight                                      atomic.Int64
	chargedBytes                                  atomic.Int64  // this session's share of the farm byte budget
	drained                                       chan struct{} // closed when draining hits zero in flight
	quarantined                                   atomic.Bool   // a callback panicked; session is being stopped
	panicValue                                    atomic.Value  // string: the panic that quarantined the session

	// flight is the session's span black box (nil when tracing is off):
	// every sampled packet trace of this session records into it, and it
	// stays readable after Stop — that is the point.
	flight  *span.FlightRecorder
	expLoss float64 // duration-weighted trace loss, cached for the SLO

	// restoreErr records what a crash recovery could not bring back for
	// this session (e.g. ErrStreamGone). Set once at creation, before the
	// session is published.
	restoreErr error

	m *Manager // back-pointer for the wheel and per-session metrics
}

// State returns the session's current lifecycle state.
func (s *Session) State() State { return State(s.state.Load()) }

// Config returns the session's creation config.
func (s *Session) Config() SessionConfig { return s.cfg }

// Stats snapshots the session counters.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Submitted: s.submitted.Load(),
		Delivered: s.delivered.Load(),
		Dropped:   s.dropped.Load(),
		Rejected:  s.rejected.Load(),
		Shed:      s.shed.Load(),
		InFlight:  s.inflight.Load(),
	}
}

// Quarantined reports whether the session was stopped because one of its
// callbacks panicked.
func (s *Session) Quarantined() bool { return s.quarantined.Load() }

// PanicValue returns the rendered panic that quarantined the session
// (empty when not quarantined).
func (s *Session) PanicValue() string {
	v, _ := s.panicValue.Load().(string)
	return v
}

// RestoreError returns what crash recovery could not bring back for
// this session (nil for sessions that never lost anything). A session
// whose live stream vanished reports an error wrapping ErrStreamGone.
func (s *Session) RestoreError() error { return s.restoreErr }

// Flight returns the session's flight recorder (nil when tracing is off).
// The recorder outlives Stop, so a quarantined session's final moments
// stay dumpable.
func (s *Session) Flight() *span.FlightRecorder { return s.flight }

// ExpectedLoss returns the duration-weighted loss probability of the
// session's trace — what the drop rate should converge to. For a live
// session it is recomputed from the tuples that have arrived so far.
func (s *Session) ExpectedLoss() float64 {
	if s.cfg.Live != nil {
		return s.cfg.Live.WeightedLoss()
	}
	return s.expLoss
}

// Cursor reports the session's replay position as a count of tuples
// consumed since the trace's beginning (including any SkipTuples applied
// at Start). It is the value a crash snapshot records and a recovered
// session resumes from.
func (s *Session) Cursor() int64 {
	s.mu.Lock()
	eng := s.engine
	s.mu.Unlock()
	if eng == nil {
		return s.cfg.SkipTuples
	}
	n := eng.Stats().Tuples
	if n > 0 {
		// The engine's count includes the currently-active tuple, which is
		// not yet fully consumed — a restore must replay from it, not past
		// it.
		n--
	}
	return s.cfg.SkipTuples + n
}

// LotteryDraws reports the session's absolute position in its drop-lottery
// RNG stream: draws burned at Start (SkipDraws) plus draws the engine has
// made since. A migration snapshot records it so the destination resumes
// the stream exactly where the source left it.
func (s *Session) LotteryDraws() int64 {
	s.mu.Lock()
	eng := s.engine
	s.mu.Unlock()
	if eng == nil {
		return s.cfg.SkipDraws
	}
	return s.cfg.SkipDraws + eng.Stats().Draws
}

// Engine exposes the underlying engine (nil before Start). Intended for
// inspection; submitting directly bypasses session accounting.
func (s *Session) Engine() *modulation.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine
}

// RelayAddr returns the client-facing address of the attached relay, or
// nil when none is attached.
func (s *Session) RelayAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.relay == nil {
		return ""
	}
	return s.relay.Addr().String()
}

// IdleFor reports how long ago the session last saw a packet or a
// lifecycle transition.
func (s *Session) IdleFor() time.Duration {
	return s.m.wheel.Now() - time.Duration(s.lastActive.Load())
}

// touch records activity for idle expiry.
func (s *Session) touch() { s.lastActive.Store(int64(s.m.wheel.Now())) }

// Start brings the session to StateRunning, constructing its engine on a
// fresh wheel handle. Starting a running session is a no-op; starting a
// stopped one is an error.
func (s *Session) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.State() {
	case StateRunning:
		return nil
	case StateDraining, StateStopped:
		return errors.New("emud: session already stopped")
	}
	s.timers = s.m.wheel.Timers()
	var src modulation.Source
	if s.cfg.Live != nil {
		c := s.cfg.Live.NewCursor(s.cfg.Loop)
		c.Skip(s.cfg.SkipTuples)
		src = c
	} else {
		ss := &modulation.SliceSource{Trace: s.cfg.Trace, Loop: s.cfg.Loop}
		ss.Skip(s.cfg.SkipTuples)
		src = ss
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	for i := int64(0); i < s.cfg.SkipDraws; i++ {
		rng.Float64()
	}
	s.engine = modulation.NewEngine(s.timers, src,
		modulation.Config{
			Tick:         s.cfg.Tick,
			InboundExtra: s.cfg.InboundExtra,
			Compensation: s.cfg.Compensation,
			RNG:          rng,
		})
	s.state.Store(int32(StateRunning))
	s.touch()
	s.m.ins.sessionState(s)
	return nil
}

// AttachRelay fronts the running session with a livewire UDP relay:
// client traffic is the outbound direction, target traffic inbound. The
// relay lives until the session stops. Transient bind failures (a
// lingering socket from a just-stopped session, an injected fault) are
// retried with backoff; the session lock is not held across the retries.
func (s *Session) AttachRelay(listenAddr, targetAddr string) (addr string, err error) {
	s.mu.Lock()
	if s.State() != StateRunning {
		s.mu.Unlock()
		return "", errors.New("emud: relay requires a running session")
	}
	if s.relay != nil {
		s.mu.Unlock()
		return "", errors.New("emud: session already has a relay")
	}
	s.mu.Unlock()

	var r *livewire.Relay
	err = s.m.relayRetry.Do(func() error {
		if ferr := s.m.faultRelayAttach.Err(); ferr != nil {
			return ferr
		}
		var derr error
		r, derr = livewire.NewRelayWithSubmitterOpts(listenAddr, targetAddr, s, livewire.RelayOpts{
			Group: s.m.pumps,
		})
		return derr
	})
	if err != nil {
		return "", fmt.Errorf("emud: relay attach: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.State() != StateRunning || s.relay != nil {
		// Lost a race with Stop or a concurrent attach while unlocked.
		r.Close()
		if s.relay != nil {
			return "", errors.New("emud: session already has a relay")
		}
		return "", errors.New("emud: relay requires a running session")
	}
	s.relay = r
	// Remember the resolved listen address, not a ":0" wildcard spec: a
	// crash snapshot must rebind the same concrete port, or oblivious
	// relay clients would keep sending to a dead address after the
	// session fails over to another worker.
	s.relayListen, s.relayTarget = r.Addr().String(), targetAddr
	return s.relayListen, nil
}

// Relay returns the attached livewire relay (nil when none), for its
// data-plane statistics.
func (s *Session) Relay() *livewire.Relay {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.relay
}

// RelaySpecArgs returns the listen/target arguments the relay was
// attached with (empty when no relay is attached), for crash snapshots.
func (s *Session) RelaySpecArgs() (listen, target string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.relay == nil {
		return "", ""
	}
	return s.relayListen, s.relayTarget
}

// Submit runs one packet through the session's engine, with session
// accounting. deliver runs when (and if) the packet survives; packets are
// rejected outright unless the session is running.
func (s *Session) Submit(dir simnet.Direction, size int, deliver func()) bool {
	return s.submit(dir, size, deliver, nil)
}

// SubmitWithDrop implements livewire.Submitter, so an attached relay's
// traffic flows through the session's accounting. drop also runs when the
// session rejects the packet outright (the relay reclaims its buffer
// either way).
func (s *Session) SubmitWithDrop(dir simnet.Direction, size int, deliver, drop func()) {
	s.submit(dir, size, deliver, drop)
}

func (s *Session) submit(dir simnet.Direction, size int, deliver, drop func()) bool {
	eng, ok := s.runningEngine()
	if !ok {
		s.reject(drop)
		return false
	}
	charged, sp, ok := s.admitOne(dir, size, drop)
	if !ok {
		return false
	}
	s.touch()
	// The callback literals stay in this frame (rather than being built
	// behind admitOne) so escape analysis can keep the drop closure on the
	// stack: the engine only ever invokes drop synchronously, never stores
	// it, so only the deliver closure costs a heap allocation per packet.
	eng.SubmitSpan(dir, size, sp,
		func() { s.deliverOne(sp, charged, size, deliver) },
		func() { s.dropOne(sp, charged, drop) })
	return true
}

// SubmitBatch implements livewire.BatchSubmitter: an attached relay's
// read burst enters the session's engine under a single engine-lock
// acquisition. Per-packet admission control, accounting, and span rooting
// are unchanged from the sequential path — a shed or rejected packet
// drops out of the burst (its Drop callback runs exactly as it would
// sequentially) and only the admitted remainder reaches the engine.
func (s *Session) SubmitBatch(subs []modulation.Submission) {
	if len(subs) == 0 {
		return
	}
	eng, ok := s.runningEngine()
	if !ok {
		for i := range subs {
			s.reject(subs[i].Drop)
		}
		return
	}
	live := 0
	for i := range subs {
		sub, ok := s.admit(subs[i].Dir, subs[i].Size, subs[i].Deliver, subs[i].Drop)
		if ok {
			subs[live] = sub
			live++
		}
	}
	if live == 0 {
		return
	}
	s.touch()
	eng.SubmitBatch(subs[:live])
}

// runningEngine returns the engine iff the session accepts traffic.
func (s *Session) runningEngine() (*modulation.Engine, bool) {
	if s.State() != StateRunning {
		return nil, false
	}
	s.mu.Lock()
	eng := s.engine
	s.mu.Unlock()
	return eng, eng != nil
}

// admit runs one packet's admission control and accounting and wraps its
// callbacks with the session's bookkeeping for a batch submission;
// ok=false means the packet was shed (its drop callback has already run).
// Only the batch path pays for heap-allocated closures in the returned
// Submission; the sequential path in submit builds its callbacks inline.
func (s *Session) admit(dir simnet.Direction, size int, deliver, drop func()) (sub modulation.Submission, ok bool) {
	charged, sp, ok := s.admitOne(dir, size, drop)
	if !ok {
		return sub, false
	}
	return modulation.Submission{
		Dir:     dir,
		Size:    size,
		Span:    sp,
		Deliver: func() { s.deliverOne(sp, charged, size, deliver) },
		Drop:    func() { s.dropOne(sp, charged, drop) },
	}, true
}

// admitOne runs one packet's admission control, accounting, and span
// rooting; ok=false means the packet was shed (its drop callback has
// already run). The returned charge and span feed the session's delivery
// bookkeeping in deliverOne/dropOne.
func (s *Session) admitOne(dir simnet.Direction, size int, drop func()) (charged int64, sp *span.Span, ok bool) {
	// Admission control: a per-session in-flight cap bounds one tenant's
	// queue, a farm-wide in-flight byte budget bounds aggregate memory.
	// Both checks add first and undo on overflow, so concurrent submits
	// can't slip past the cap together.
	if lim := s.m.opts.MaxSessionInFlight; lim > 0 {
		if s.inflight.Add(1) > int64(lim) {
			s.inflight.Add(-1)
			s.shedOne(drop)
			return 0, nil, false
		}
	} else {
		s.inflight.Add(1)
	}
	if budget := s.m.opts.MaxInFlightBytes; budget > 0 {
		charged = int64(size)
		if s.m.inflightBytes.Add(charged) > budget {
			s.m.inflightBytes.Add(-charged)
			s.inflight.Add(-1)
			s.shedOne(drop)
			return 0, nil, false
		}
		s.chargedBytes.Add(charged)
	}

	s.submitted.Add(1)
	s.m.ins.submit(s)

	// Root the packet's trace once admission has passed: a sampled packet
	// gets a "session.packet" span recorded into the session's flight
	// recorder, with the engine contributing a "modulation" child (and its
	// "wheel.wait" grandchild) via SubmitSpan. sp is nil for unsampled
	// packets and whenever tracing is off — deliverOne/dropOne then cost
	// two nil checks.
	sp = s.m.spans.RootInto(s.flight, "session.packet")
	if sp != nil {
		sp.AttrStr("session", s.ID)
		sp.Attr("dir", int64(dir))
		sp.Attr("size", int64(size))
	}
	return charged, sp, true
}

// deliverOne is the session's delivery bookkeeping, run inside the
// packet's deliver callback. The deferred recover quarantines this
// session on a panic inside the tenant callback (or an injected fault)
// instead of unwinding the wheel shard; the wheel's own recovery would
// also catch it, but catching here attributes the panic to the session
// and keeps the in-flight accounting consistent. sp.End is deferred so
// the root span reaches the flight recorder even when the callback
// panics — the quarantine dump needs the whole tree.
func (s *Session) deliverOne(sp *span.Span, charged int64, size int, deliver func()) {
	defer func() {
		if v := recover(); v != nil {
			s.m.quarantine(s, v)
		}
	}()
	defer sp.End()
	if s.m.faultSessionPanic.Fire() {
		panic("faults: injected session.panic")
	}
	s.delivered.Add(1)
	s.m.ins.deliver(s)
	s.finishOne(charged)
	sp.Event("pump-send", int64(size))
	deliver()
}

// dropOne is deliverOne's counterpart for packets the engine's drop
// lottery discards, with the same panic-quarantine contract.
func (s *Session) dropOne(sp *span.Span, charged int64, drop func()) {
	defer func() {
		if v := recover(); v != nil {
			s.m.quarantine(s, v)
		}
	}()
	defer sp.End()
	s.dropped.Add(1)
	s.m.ins.drop(s)
	s.finishOne(charged)
	if drop != nil {
		drop()
	}
}

func (s *Session) reject(drop func()) {
	s.rejected.Add(1)
	if drop != nil {
		drop()
	}
}

// shedOne records one admission-control rejection.
func (s *Session) shedOne(drop func()) {
	s.shed.Add(1)
	s.m.shedTotal.Add(1)
	s.m.ins.shedOne(s)
	if drop != nil {
		drop()
	}
}

// finishOne retires one in-flight packet (refunding charged admission
// bytes) and signals a waiting drain.
func (s *Session) finishOne(charged int64) {
	if charged > 0 {
		s.m.inflightBytes.Add(-charged)
		s.chargedBytes.Add(-charged)
	}
	if s.inflight.Add(-1) == 0 && s.State() == StateDraining {
		s.mu.Lock()
		if s.drained != nil {
			select {
			case <-s.drained:
			default:
				close(s.drained)
			}
		}
		s.mu.Unlock()
	}
}

// Drain gracefully quiesces the session: new packets are rejected while
// in-flight deliveries complete, for at most timeout, then the session
// stops. Returns true when the drain emptied before the deadline.
func (s *Session) Drain(timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.DrainContext(ctx)
}

// DrainContext is Drain bounded by a context instead of a bare timeout,
// so a caller quiescing many sessions (Manager.Close) can share one
// deadline across all of them.
func (s *Session) DrainContext(ctx context.Context) bool {
	s.mu.Lock()
	if st := s.State(); st == StateStopped || st == StateDraining {
		s.mu.Unlock()
		return s.inflight.Load() == 0
	}
	if s.State() == StateCreated {
		s.mu.Unlock()
		s.Stop()
		return true
	}
	s.drained = make(chan struct{})
	s.state.Store(int32(StateDraining))
	s.m.ins.sessionState(s)
	ch := s.drained
	s.mu.Unlock()

	clean := s.inflight.Load() == 0
	if !clean {
		select {
		case <-ch:
			clean = true
		case <-ctx.Done():
		}
	}
	s.Stop()
	return clean
}

// Stop revokes every pending engine timer and closes the relay. The
// guarantee: when Stop returns, no timer of this session is running or
// will ever run — the wheel handle's Stop is a barrier. Stop must not be
// called from inside a delivery callback (it would deadlock on its own
// barrier); the control plane and janitor call it from their own
// goroutines.
func (s *Session) Stop() {
	s.mu.Lock()
	if s.State() == StateStopped {
		s.mu.Unlock()
		return
	}
	s.state.Store(int32(StateStopped))
	relay := s.relay
	s.relay = nil
	timers := s.timers
	s.mu.Unlock()

	if relay != nil {
		relay.Close()
	}
	if timers != nil {
		timers.Stop()
	}
	// The timer barrier above guarantees no delivery/drop callback of this
	// session is running or will ever run, so any bytes still charged to
	// the session belong to packets that will never retire — refund them,
	// or a stopped (e.g. quarantined) session would permanently consume
	// the farm's admission budget. A submit racing Stop can still strand
	// its single packet's charge; that window is one packet wide.
	if rem := s.chargedBytes.Swap(0); rem > 0 {
		s.m.inflightBytes.Add(-rem)
	}
	s.touch()
	s.m.ins.sessionState(s)
}
