package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// replayAll opens the log at dir collecting every replayed chunk.
func replayAll(t *testing.T, dir string, opts Options) (*Log, [][]byte) {
	t.Helper()
	opts.Dir = dir
	var chunks [][]byte
	l, err := Open(opts, func(p []byte) error {
		chunks = append(chunks, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, chunks
}

func flatten(chunks [][]byte) []byte {
	var out []byte
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

func TestWALAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, chunks := replayAll(t, dir, Options{})
	if len(chunks) != 0 {
		t.Fatalf("fresh log replayed %d chunks", len(chunks))
	}
	var want []byte
	for i := 0; i < 50; i++ {
		p := bytes.Repeat([]byte{byte(i)}, 100+i)
		want = append(want, p...)
		if err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if l.Offset() != int64(len(want)) {
		t.Fatalf("Offset = %d, want %d", l.Offset(), len(want))
	}
	if l.Durable() != l.Offset() {
		t.Fatalf("SyncAlways: Durable = %d, Offset = %d", l.Durable(), l.Offset())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, replayed := replayAll(t, dir, Options{})
	defer l2.Close()
	if got := flatten(replayed); !bytes.Equal(got, want) {
		t.Fatalf("replay mismatch: got %d bytes, want %d", len(got), len(want))
	}
	if l2.Offset() != int64(len(want)) {
		t.Fatalf("reopened Offset = %d, want %d", l2.Offset(), len(want))
	}
}

func TestWALAppendAfterRecoveryContinues(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{})
	first := []byte("the first epoch of the stream")
	if err := l.Append(first); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, _ := replayAll(t, dir, Options{})
	second := []byte("and the bytes after the crash")
	if err := l2.Append(second); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	l3, chunks := replayAll(t, dir, Options{})
	defer l3.Close()
	want := append(append([]byte(nil), first...), second...)
	if got := flatten(chunks); !bytes.Equal(got, want) {
		t.Fatalf("after append-after-recovery, replay = %q, want %q", got, want)
	}
}

func TestWALRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{SegmentBytes: 256})
	var want []byte
	for i := 0; i < 20; i++ {
		p := bytes.Repeat([]byte{byte('a' + i%26)}, 100)
		want = append(want, p...)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", names)
	}
	l2, chunks := replayAll(t, dir, Options{SegmentBytes: 256})
	defer l2.Close()
	if got := flatten(chunks); !bytes.Equal(got, want) {
		t.Fatalf("multi-segment replay mismatch: %d bytes vs %d", len(got), len(want))
	}
}

func TestWALSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			l, _ := replayAll(t, t.TempDir(), Options{Sync: pol})
			defer l.Close()
			if err := l.Append([]byte("chunk")); err != nil {
				t.Fatal(err)
			}
			if pol == SyncAlways && l.Durable() != l.Offset() {
				t.Fatalf("always: durable %d != offset %d", l.Durable(), l.Offset())
			}
			if pol == SyncNone && l.Durable() != 0 {
				t.Fatalf("none: durable advanced to %d without Sync", l.Durable())
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if l.Durable() != l.Offset() {
				t.Fatalf("after Sync: durable %d != offset %d", l.Durable(), l.Offset())
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "": SyncAlways, "interval": SyncInterval, "none": SyncNone,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

// seedLog writes n chunks of deterministic content and returns their
// concatenation plus the single segment file path.
func seedLog(t *testing.T, dir string, n int) ([]byte, string) {
	t.Helper()
	l, _ := replayAll(t, dir, Options{})
	var want []byte
	for i := 0; i < n; i++ {
		p := bytes.Repeat([]byte{byte(i + 1)}, 64)
		want = append(want, p...)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segments(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("want one segment, got %v (%v)", names, err)
	}
	return want, filepath.Join(dir, names[0])
}

// TestWALReplayCorruptFixtures drives replay over a table of hand-made
// damage — the crash and bit-rot shapes the salvage must survive — and
// asserts the durable-prefix contract: every chunk before the damage
// replays intact, nothing after it does, and the repaired log accepts
// appends again.
func TestWALReplayCorruptFixtures(t *testing.T) {
	const chunk = 64 + frameOverhead
	fixtures := []struct {
		name string
		mut  func(t *testing.T, path string, size int64)
		// wantChunks is how many 64-byte chunks must survive replay.
		wantChunks int
	}{
		{"truncate-mid-payload", func(t *testing.T, path string, size int64) {
			mustTruncate(t, path, size-10)
		}, 4},
		{"truncate-mid-frame-header", func(t *testing.T, path string, size int64) {
			mustTruncate(t, path, size-int64(64)-4)
		}, 4},
		{"truncate-mid-segment-header", func(t *testing.T, path string, size int64) {
			mustTruncate(t, path, headerLen-3)
		}, 0},
		{"bitflip-payload", func(t *testing.T, path string, _ int64) {
			flipByte(t, path, headerLen+2*chunk+frameOverhead+7) // inside chunk 2's payload
		}, 2},
		{"bitflip-crc", func(t *testing.T, path string, _ int64) {
			flipByte(t, path, headerLen+chunk+5) // inside chunk 1's CRC field
		}, 1},
		{"zero-length-field", func(t *testing.T, path string, _ int64) {
			patch(t, path, headerLen+3*chunk, []byte{0, 0, 0, 0})
		}, 3},
		{"giant-length-field", func(t *testing.T, path string, _ int64) {
			patch(t, path, headerLen+chunk, []byte{0xff, 0xff, 0xff, 0xff})
		}, 1},
		{"bad-magic", func(t *testing.T, path string, _ int64) {
			patch(t, path, 0, []byte{'X', 'X', 'X', 'X'})
		}, 0},
		{"bad-base-offset", func(t *testing.T, path string, _ int64) {
			patch(t, path, 8, []byte{0, 0, 0, 0, 0, 0, 0, 9})
		}, 0},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			dir := t.TempDir()
			want, path := seedLog(t, dir, 5)
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			fx.mut(t, path, fi.Size())

			l, chunks := replayAll(t, dir, Options{})
			got := flatten(chunks)
			wantPrefix := want[:fx.wantChunks*64]
			if !bytes.Equal(got, wantPrefix) {
				t.Fatalf("replayed %d bytes, want the %d-byte durable prefix", len(got), len(wantPrefix))
			}
			if l.Offset() != int64(len(wantPrefix)) {
				t.Fatalf("Offset = %d, want %d", l.Offset(), len(wantPrefix))
			}
			// The repaired log must accept appends and replay them next time.
			extra := []byte("post-repair bytes")
			if err := l.Append(extra); err != nil {
				t.Fatalf("append after repair: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, chunks2 := replayAll(t, dir, Options{})
			defer l2.Close()
			want2 := append(append([]byte(nil), wantPrefix...), extra...)
			if got2 := flatten(chunks2); !bytes.Equal(got2, want2) {
				t.Fatalf("post-repair replay mismatch: %d bytes vs %d", len(got2), len(want2))
			}
		})
	}
}

func TestWALDamagedMiddleSegmentDropsTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{SegmentBytes: 200})
	var want []byte
	for i := 0; i < 10; i++ {
		p := bytes.Repeat([]byte{byte(i + 1)}, 100)
		want = append(want, p...)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segments(dir)
	if err != nil || len(names) < 3 {
		t.Fatalf("want ≥3 segments, got %v", names)
	}
	// Corrupt the second segment's first frame: its own first chunk and
	// every later segment must vanish from the replay.
	flipByte(t, filepath.Join(dir, names[1]), headerLen+frameOverhead+3)

	l2, chunks := replayAll(t, dir, Options{SegmentBytes: 200})
	defer l2.Close()
	got := flatten(chunks)
	base, _ := segBaseOf(names[1])
	if !bytes.Equal(got, want[:base]) {
		t.Fatalf("replay after mid-log damage = %d bytes, want %d", len(got), base)
	}
	if left, _ := segments(dir); len(left) != 2 {
		t.Fatalf("orphan segments not removed: %v", left)
	}
}

func TestWALReplayCallbackErrorAborts(t *testing.T) {
	dir := t.TempDir()
	seedLog(t, dir, 3)
	boom := fmt.Errorf("apply failed")
	_, err := Open(Options{Dir: dir}, func([]byte) error { return boom })
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("apply failed")) {
		t.Fatalf("Open with failing callback = %v, want apply failure", err)
	}
}

func TestWALFrameEncoding(t *testing.T) {
	// Pin the on-disk shape: header magic/version/base, then
	// [len][crc][payload].
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{})
	payload := []byte("pinned frame")
	if err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint32(data[0:4]); got != Magic {
		t.Fatalf("magic = %#x", got)
	}
	if got := binary.BigEndian.Uint16(data[4:6]); got != Version {
		t.Fatalf("version = %d", got)
	}
	if got := binary.BigEndian.Uint64(data[8:16]); got != 0 {
		t.Fatalf("base = %d", got)
	}
	if got := binary.BigEndian.Uint32(data[16:20]); got != uint32(len(payload)) {
		t.Fatalf("frame len = %d", got)
	}
	if got := binary.BigEndian.Uint32(data[20:24]); got != crc32.ChecksumIEEE(payload) {
		t.Fatalf("frame crc = %#x", got)
	}
	if !bytes.Equal(data[24:], payload) {
		t.Fatalf("frame payload = %q", data[24:])
	}
}

func mustTruncate(t *testing.T, path string, size int64) {
	t.Helper()
	if size < 0 {
		size = 0
	}
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= int64(len(data)) {
		t.Fatalf("flip offset %d past file size %d", off, len(data))
	}
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func patch(t *testing.T, path string, off int64, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}
