package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment assembles a syntactically valid segment from chunks, for
// seeding the fuzzer with realistic inputs to mutate.
func buildSegment(base uint64, chunks ...[]byte) []byte {
	var b bytes.Buffer
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	binary.BigEndian.PutUint16(hdr[4:6], Version)
	binary.BigEndian.PutUint64(hdr[8:16], base)
	b.Write(hdr[:])
	var fh [frameOverhead]byte
	for _, c := range chunks {
		binary.BigEndian.PutUint32(fh[0:4], uint32(len(c)))
		binary.BigEndian.PutUint32(fh[4:8], crc32.ChecksumIEEE(c))
		b.Write(fh[:])
		b.Write(c)
	}
	return b.Bytes()
}

// FuzzWALReplay throws arbitrary bytes at the segment replayer as the
// first segment of a log, plus a truncation point, and checks the
// recovery invariants: Open never panics, never errors on damage (only
// on OS failures), replays exactly Offset() payload bytes, keeps every
// replayed frame's CRC-verified content, and leaves a log that accepts
// appends and replays them on the next open.
func FuzzWALReplay(f *testing.F) {
	f.Add(buildSegment(0, []byte("hello"), []byte("world")), uint16(0))
	f.Add(buildSegment(0, bytes.Repeat([]byte{0xaa}, 300)), uint16(5))
	f.Add(buildSegment(7, []byte("wrong base")), uint16(0))
	// Pre-corrupted seeds: flipped CRC, zero length, giant length.
	bad := buildSegment(0, []byte("abcdef"))
	bad[headerLen+5] ^= 0x40
	f.Add(bad, uint16(0))
	zl := buildSegment(0, []byte("x"), []byte("y"))
	copy(zl[headerLen+frameOverhead+1:], []byte{0, 0, 0, 0})
	f.Add(zl, uint16(0))
	f.Add([]byte("TWL1 but not really"), uint16(3))
	f.Add([]byte{}, uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		if len(data) > 1<<16 {
			return
		}
		if int(cut) < len(data) {
			data = data[:len(data)-int(cut)] // simulate a torn tail
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var replayed []byte
		l, err := Open(Options{Dir: dir}, func(p []byte) error {
			replayed = append(replayed, p...)
			return nil
		})
		if err != nil {
			t.Fatalf("Open on damaged input errored: %v", err)
		}
		if int64(len(replayed)) != l.Offset() {
			t.Fatalf("replayed %d bytes but Offset() = %d", len(replayed), l.Offset())
		}
		// Whatever replayed must be a prefix of the original frame stream:
		// re-walk data with the same framing and compare.
		if want := validPrefix(data); !bytes.Equal(replayed, want) {
			t.Fatalf("replayed %d bytes, independent walk found %d", len(replayed), len(want))
		}
		// The repaired log must be appendable, and the append must survive
		// a second open.
		extra := []byte("appended after repair")
		if err := l.Append(extra); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		var again []byte
		l2, err := Open(Options{Dir: dir}, func(p []byte) error {
			again = append(again, p...)
			return nil
		})
		if err != nil {
			t.Fatalf("re-open: %v", err)
		}
		defer l2.Close()
		want := append(append([]byte(nil), replayed...), extra...)
		if !bytes.Equal(again, want) {
			t.Fatalf("second replay lost data: %d bytes vs %d", len(again), len(want))
		}
	})
}

// validPrefix independently decodes the valid frame prefix of a raw
// first-segment image — the reference model the replayer must match.
func validPrefix(data []byte) []byte {
	if len(data) < headerLen ||
		binary.BigEndian.Uint32(data[0:4]) != Magic ||
		binary.BigEndian.Uint16(data[4:6]) != Version ||
		binary.BigEndian.Uint64(data[8:16]) != 0 {
		return nil
	}
	var out []byte
	i := headerLen
	for {
		if len(data)-i < frameOverhead {
			return out
		}
		n := binary.BigEndian.Uint32(data[i : i+4])
		if n == 0 || n > maxFrame {
			return out
		}
		end := i + frameOverhead + int(n)
		if end > len(data) {
			return out
		}
		payload := data[i+frameOverhead : end]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[i+4:i+8]) {
			return out
		}
		out = append(out, payload...)
		i = end
	}
}
