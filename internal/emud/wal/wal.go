// Package wal is the write-ahead log under the daemon's live-ingest
// streams. Every salvaged upload chunk is framed, checksummed, and
// appended to a per-stream segment log before it reaches the distiller,
// so a crash — kill -9, OOM, power loss — costs at most the bytes past
// the last fsync: on restart the log replays its durable prefix through
// the same distiller and the stream resumes at exactly that offset.
//
// The format is deliberately dumb. A log is a directory of segment
// files named by the payload offset their first frame starts at
// (0000000000000000.wal, ...). Each segment opens with a fixed header
// (magic, version, base offset) and then holds frames of the shape
//
//	[len uint32][crc32 uint32][payload]
//
// with the CRC (IEEE) covering the payload only. Replay walks segments
// in offset order and stops at the first frame that fails to frame or
// checksum — a torn tail from the crash, or real corruption; either
// way, nothing after it is trusted. The damaged suffix is truncated so
// the log is immediately appendable again.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Segment format constants.
const (
	// Magic opens every segment file ("TWL1").
	Magic = 0x54574c31
	// Version is the current segment format version.
	Version = 1
	// headerLen is the fixed segment header: magic u32, version u16,
	// reserved u16, base payload offset u64.
	headerLen = 16
	// frameOverhead is the per-frame framing cost: length + CRC.
	frameOverhead = 8
	// maxFrame bounds a single frame's payload; a replayed length field
	// past it is corruption, not a huge chunk (the ingest path feeds
	// 64 KiB chunks).
	maxFrame = 16 << 20

	segSuffix = ".wal"
)

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 8 << 20

// DefaultSyncEvery is the SyncInterval cadence when Options.SyncEvery is
// zero.
const DefaultSyncEvery = 100 * time.Millisecond

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// SyncPolicy selects how eagerly appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: the durable offset equals the
	// appended offset at all times. Safest, slowest; the zero value.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncEvery, amortizing
	// the fsync over many chunks. A crash loses at most one interval.
	SyncInterval
	// SyncNone never fsyncs explicitly; durability is whatever the OS
	// flushed on its own. Durable() only advances on explicit Sync.
	SyncNone
)

// ParseSyncPolicy maps the flag spellings ("always", "interval", "none")
// to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: bad sync policy %q (want always, interval, or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return "unknown"
}

// Options parameterizes a log.
type Options struct {
	// Dir is the log's directory (created if absent). Required.
	Dir string
	// SegmentBytes rotates to a fresh segment once the current one's
	// payload exceeds it (DefaultSegmentBytes if 0).
	SegmentBytes int64
	// Sync is the fsync policy (SyncAlways if zero).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval cadence (DefaultSyncEvery if 0).
	SyncEvery time.Duration
}

// Log is an append-only chunk log. Not safe for concurrent use; the
// stream's mutex serializes it.
type Log struct {
	opts Options

	f        *os.File
	segBase  int64 // payload offset of the current segment's first frame
	segBytes int64 // payload bytes written to the current segment
	off      int64 // total payload bytes appended (durable + pending)
	durable  int64 // payload bytes known to have reached stable storage
	lastSync time.Time
	closed   bool
	err      error // sticky I/O error; the log refuses further appends

	hdr [frameOverhead]byte
}

// Open opens (creating if needed) the log at opts.Dir, replays every
// durable frame in offset order through fn (which may be nil), truncates
// whatever torn or corrupt suffix the last crash left, and returns the
// log positioned to append at the durable offset. A non-nil error from
// fn aborts the open: the caller could not apply the replayed state.
func Open(opts Options, fn func(chunk []byte) error) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	l := &Log{opts: opts, lastSync: time.Now()}
	if err := l.recover(fn); err != nil {
		if l.f != nil {
			_ = l.f.Close()
		}
		return nil, err
	}
	return l, nil
}

// segments lists the log's segment files sorted by base offset, dropping
// files whose name does not parse (they were never ours).
func segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segSuffix) {
			if _, err := segBaseOf(e.Name()); err == nil {
				names = append(names, e.Name())
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

func segName(base int64) string { return fmt.Sprintf("%016x%s", base, segSuffix) }

func segBaseOf(name string) (int64, error) {
	base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 63)
	if err != nil {
		return 0, fmt.Errorf("wal: bad segment name %q: %w", name, err)
	}
	return int64(base), nil
}

// recover replays the durable prefix and repairs the tail: the first
// frame that fails to parse or checksum ends the replay, the segment is
// truncated there, and every later segment is deleted.
func (l *Log) recover(fn func([]byte) error) error {
	names, err := segments(l.opts.Dir)
	if err != nil {
		return err
	}
	goodIdx, goodEnd := -1, int64(headerLen)
	i := 0
	for ; i < len(names); i++ {
		base, _ := segBaseOf(names[i])
		if base != l.off {
			break // offset gap: this and every later segment is an orphan
		}
		path := filepath.Join(l.opts.Dir, names[i])
		end, replayed, rerr := l.replaySegment(path, base, fn)
		if rerr != nil {
			return rerr // fn failed, or the file is unreadable at the OS level
		}
		if end < 0 {
			break // the segment's own header is damaged: no frame survives
		}
		l.off += replayed
		l.durable = l.off
		goodIdx, goodEnd = i, end
		if fi, serr := os.Stat(path); serr == nil && fi.Size() > end {
			// Replay stopped inside the file — a torn or corrupt frame.
			// Keep this segment (truncated below); nothing after it counts.
			i++
			break
		}
	}
	// Everything from i on failed validation or sits past damage.
	for _, name := range names[i:] {
		_ = os.Remove(filepath.Join(l.opts.Dir, name))
	}
	if goodIdx < 0 {
		return l.openSegment(l.off) // empty or fully damaged log: start over
	}
	// Reopen the final good segment for append, truncating its torn tail.
	name := filepath.Join(l.opts.Dir, names[goodIdx])
	base, _ := segBaseOf(names[goodIdx])
	f, err := os.OpenFile(name, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopening %s: %w", name, err)
	}
	if err := f.Truncate(goodEnd); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: truncating %s: %w", name, err)
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: seeking %s: %w", name, err)
	}
	l.f = f
	l.segBase = base
	l.segBytes = l.off - base
	return nil
}

// replaySegment validates one segment and streams its frame payloads to
// fn. It returns the file offset just past the last valid frame (-1 when
// the header itself is bad), the payload bytes replayed, and a hard
// error only for OS-level read failures or a failing fn — framing and
// CRC damage are a normal end of replay, not an error.
func (l *Log) replaySegment(path string, base int64, fn func([]byte) error) (end, replayed int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return -1, 0, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()

	var hdr [headerLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return -1, 0, nil // short header: torn at creation
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != Magic ||
		binary.BigEndian.Uint16(hdr[4:6]) != Version ||
		int64(binary.BigEndian.Uint64(hdr[8:16])) != base {
		return -1, 0, nil
	}
	end = headerLen
	var fh [frameOverhead]byte
	var buf []byte
	for {
		if _, rerr := io.ReadFull(f, fh[:]); rerr != nil {
			return end, replayed, nil // clean end or torn frame header
		}
		n := binary.BigEndian.Uint32(fh[0:4])
		if n == 0 || n > maxFrame {
			return end, replayed, nil // corrupt length field
		}
		if int(n) > cap(buf) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, rerr := io.ReadFull(f, buf); rerr != nil {
			return end, replayed, nil // torn payload
		}
		if crc32.ChecksumIEEE(buf) != binary.BigEndian.Uint32(fh[4:8]) {
			return end, replayed, nil // corrupt payload
		}
		if fn != nil {
			if ferr := fn(buf); ferr != nil {
				return end, replayed, ferr
			}
		}
		end += frameOverhead + int64(n)
		replayed += int64(n)
	}
}

// openSegment creates a fresh segment whose first frame starts at base.
func (l *Log) openSegment(base int64) error {
	path := filepath.Join(l.opts.Dir, segName(base))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", path, err)
	}
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	binary.BigEndian.PutUint16(hdr[4:6], Version)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(base))
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	// The new segment's directory entry must itself be durable: without a
	// directory fsync, a crash after rotation can lose the whole new file
	// on some filesystems even though its appends were synced.
	if err := syncDir(l.opts.Dir); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: syncing segment directory: %w", err)
	}
	l.f = f
	l.segBase = base
	l.segBytes = 0
	return nil
}

// syncDir flushes a directory's entry table so newly created or renamed
// names inside it survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Append frames and writes one chunk, honoring the rotation threshold
// and the sync policy. Empty chunks are a no-op. Any I/O error is sticky:
// a log that failed to persist refuses to pretend otherwise.
func (l *Log) Append(p []byte) error {
	if l == nil {
		return nil
	}
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if len(p) == 0 {
		return nil
	}
	if l.segBytes >= l.opts.SegmentBytes {
		// The old segment's bytes must be stable before a successor claims
		// the offsets after them: rotation is a durability barrier.
		if err := l.syncNow(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return l.fail(fmt.Errorf("wal: closing segment: %w", err))
		}
		if err := l.openSegment(l.off); err != nil {
			return l.fail(err)
		}
	}
	binary.BigEndian.PutUint32(l.hdr[0:4], uint32(len(p)))
	binary.BigEndian.PutUint32(l.hdr[4:8], crc32.ChecksumIEEE(p))
	if _, err := l.f.Write(l.hdr[:]); err != nil {
		return l.fail(fmt.Errorf("wal: writing frame header: %w", err))
	}
	if _, err := l.f.Write(p); err != nil {
		return l.fail(fmt.Errorf("wal: writing frame payload: %w", err))
	}
	l.off += int64(len(p))
	l.segBytes += int64(len(p))
	switch l.opts.Sync {
	case SyncAlways:
		return l.syncNow()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			return l.syncNow()
		}
	}
	return nil
}

// Sync forces the appended prefix to stable storage.
func (l *Log) Sync() error {
	if l == nil {
		return nil
	}
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	return l.syncNow()
}

func (l *Log) syncNow() error {
	if err := l.f.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	l.durable = l.off
	l.lastSync = time.Now()
	return nil
}

func (l *Log) fail(err error) error {
	l.err = err
	return err
}

// Offset returns the total payload bytes appended (durable or not).
func (l *Log) Offset() int64 {
	if l == nil {
		return 0
	}
	return l.off
}

// Durable returns the payload bytes guaranteed to survive a crash: the
// offset at the last successful fsync.
func (l *Log) Durable() int64 {
	if l == nil {
		return 0
	}
	return l.durable
}

// Close syncs and closes the log. Further appends return ErrClosed.
func (l *Log) Close() error {
	if l == nil || l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.err == nil {
		if serr := l.f.Sync(); serr == nil {
			l.durable = l.off
		} else {
			err = serr
		}
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
