package emud

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tracemod/internal/faults"
	"tracemod/internal/obs"
	"tracemod/internal/obs/span"
	"tracemod/internal/simnet"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAPITraceparentEndToEnd sends a sampled W3C traceparent with a create
// request and asserts the control plane continues the caller's trace: the
// response header carries the same trace ID, and every server-side span
// (http.request, trace.resolve, session.create) lands in that trace with
// the handler span parented on the remote caller's span.
func TestAPITraceparentEndToEnd(t *testing.T) {
	sink := span.NewCollectorSink(0)
	tr := span.New(span.Config{Sample: 1, Sink: sink, Seed: 1})
	srv, _ := newTestAPI(t, Options{Spans: tr})

	remote := span.SpanContext{
		Trace:   span.TraceID{Hi: 0x1111, Lo: 0x2222},
		Span:    span.SpanID(0x3333),
		Sampled: true,
	}
	body := strings.NewReader(`{"synthetic": "wavelan"}`)
	req, err := http.NewRequest("POST", srv.URL+"/v1/sessions", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(span.TraceParentHeader, remote.TraceParent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d: %s", resp.StatusCode, raw)
	}

	echoed, ok := span.ParseTraceParent(resp.Header.Get(span.TraceParentHeader))
	if !ok {
		t.Fatalf("response traceparent %q unparsable", resp.Header.Get(span.TraceParentHeader))
	}
	if echoed.Trace != remote.Trace || !echoed.Sampled {
		t.Fatalf("response continued trace %+v, want %v", echoed, remote.Trace)
	}

	spans := sink.Spans()
	byName := map[string]*span.SpanData{}
	for _, d := range spans {
		if d.Trace != remote.Trace {
			t.Fatalf("span %q escaped the remote trace: %v", d.Name, d.Trace)
		}
		byName[d.Name] = d
	}
	for _, name := range []string{"http.request", "trace.resolve", "session.create"} {
		if byName[name] == nil {
			t.Fatalf("no %q span recorded; got %d spans", name, len(spans))
		}
	}
	if byName["http.request"].Parent != remote.Span {
		t.Fatalf("handler span parent = %v, want the remote caller's %v",
			byName["http.request"].Parent, remote.Span)
	}
	if byName["session.create"].Parent != byName["http.request"].ID {
		t.Fatalf("session.create parent = %v, want handler %v",
			byName["session.create"].Parent, byName["http.request"].ID)
	}
}

// TestAPIFlightEndpoint drives packets through a fully-sampled session and
// reads them back from the flight recorder endpoint in both formats.
func TestAPIFlightEndpoint(t *testing.T) {
	tr := span.New(span.Config{Sample: 1, Seed: 2})
	srv, m := newTestAPI(t, Options{Spans: tr, FlightSpans: 64})

	var created SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{Synthetic: "wavelan"},
		http.StatusCreated, &created)
	s, ok := m.Get(created.ID)
	if !ok {
		t.Fatal("created session vanished")
	}
	for i := 0; i < 5; i++ {
		s.Submit(simnet.Outbound, 500, func() {})
	}
	waitFor(t, "deliveries", func() bool {
		st := s.Stats()
		return st.Delivered+st.Dropped >= 5
	})
	// Spans reach the flight recorder on End; wait for the roots too.
	waitFor(t, "flight spans", func() bool { return s.Flight().Total() >= 5 })

	var dump FlightDump
	doJSON(t, "GET", srv.URL+"/v1/sessions/"+created.ID+"/flight", nil, http.StatusOK, &dump)
	if dump.Session != created.ID || dump.Capacity != 64 {
		t.Fatalf("dump header = %+v", dump)
	}
	roots := 0
	ids := map[span.SpanID]bool{}
	for _, d := range dump.Spans {
		ids[d.ID] = true
	}
	for _, d := range dump.Spans {
		if d.Parent == 0 {
			roots++
			if d.Name != "session.packet" {
				t.Fatalf("root span %q, want session.packet", d.Name)
			}
		} else if !ids[d.Parent] {
			t.Fatalf("span %q has parent %v not in dump", d.Name, d.Parent)
		}
	}
	if roots == 0 {
		t.Fatalf("no roots among %d spans", len(dump.Spans))
	}

	// The same dump renders as a human tree.
	resp, err := http.Get(srv.URL + "/v1/sessions/" + created.ID + "/flight?format=tree")
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(tree), "session.packet") {
		t.Fatalf("tree render = %d:\n%s", resp.StatusCode, tree)
	}

	doJSON(t, "GET", srv.URL+"/v1/sessions/s-999999/flight", nil, http.StatusNotFound, nil)
}

// Without a tracer there is no flight recorder: the endpoint says so
// instead of returning an empty dump that looks like a quiet session.
func TestAPIFlightDisabled(t *testing.T) {
	srv, _ := newTestAPI(t, Options{})
	var created SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{Synthetic: "wavelan"},
		http.StatusCreated, &created)
	doJSON(t, "GET", srv.URL+"/v1/sessions/"+created.ID+"/flight", nil, http.StatusNotFound, nil)
}

// TestAPISLOAndHealth reads the objective report and readiness verdict on
// a healthy farm, then quarantines its only session (injected callback
// panic) and asserts the critical quarantine-rate objective flips
// /v1/health to 503.
func TestAPISLOAndHealth(t *testing.T) {
	inj := faults.New(faults.Options{Seed: 42})
	srv, m := newTestAPI(t, Options{Faults: inj})

	var created SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{Synthetic: "wavelan"},
		http.StatusCreated, &created)

	var rep FarmSLOReport
	doJSON(t, "GET", srv.URL+"/v1/slo", nil, http.StatusOK, &rep)
	if len(rep.Objectives) != 7 {
		t.Fatalf("%d objectives in report: %+v", len(rep.Objectives), rep)
	}
	names := map[string]bool{}
	for _, o := range rep.Objectives {
		names[o.Name] = true
	}
	for _, want := range []string{
		"wheel-tick-lateness-p99", "delivery-deadline-compliance",
		"drop-accuracy", "quarantine-rate", "admission-shed-rate",
		"stream-distill-lag-p99", "ingest-brownout",
	} {
		if !names[want] {
			t.Fatalf("objective %q missing from %v", want, names)
		}
	}

	var h HealthInfo
	doJSON(t, "GET", srv.URL+"/v1/health", nil, http.StatusOK, &h)
	if !h.Ready || h.Sessions != 1 {
		t.Fatalf("healthy farm reported %+v", h)
	}

	// Panic the session's next delivery; 1 of 1 sessions quarantined takes
	// the critical quarantine-rate objective far below its 0.99 target.
	inj.Set("session.panic", faults.Config{Rate: 1})
	s, _ := m.Get(created.ID)
	s.Submit(simnet.Outbound, 100, func() {})
	waitFor(t, "quarantine", s.Quarantined)

	req, err := http.NewRequest("GET", srv.URL+"/v1/health", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("health after quarantine = %d: %s", resp.StatusCode, raw)
	}
}

// TestQuarantineFlightDumpWellParented is the acceptance check: when a
// traced session is quarantined by a panicking delivery callback, its
// flight dump still holds the packet's complete span tree — root
// session.packet, modulation child, wheel grandchild — correctly parented.
func TestQuarantineFlightDumpWellParented(t *testing.T) {
	inj := faults.New(faults.Options{Seed: 7})
	tr := span.New(span.Config{Sample: 1, Seed: 7})
	srv, m := newTestAPI(t, Options{Spans: tr, Faults: inj})
	inj.Set("session.panic", faults.Config{Rate: 1})

	var created SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{Synthetic: "wavelan"},
		http.StatusCreated, &created)
	s, _ := m.Get(created.ID)
	s.Submit(simnet.Outbound, 1000, func() {})
	waitFor(t, "quarantine", s.Quarantined)

	var dump FlightDump
	doJSON(t, "GET", srv.URL+"/v1/sessions/"+created.ID+"/flight", nil, http.StatusOK, &dump)
	if len(dump.Spans) == 0 {
		t.Fatal("quarantined session has an empty flight dump")
	}
	byID := map[span.SpanID]*span.SpanData{}
	trace := dump.Spans[0].Trace
	for _, d := range dump.Spans {
		if d.Trace != trace {
			t.Fatalf("span %q in foreign trace %v", d.Name, d.Trace)
		}
		byID[d.ID] = d
	}
	var root, mod *span.SpanData
	for _, d := range dump.Spans {
		switch d.Name {
		case "session.packet":
			root = d
		case "modulation":
			mod = d
		}
		if d.Parent != 0 && byID[d.Parent] == nil {
			t.Fatalf("span %q parent %v missing from dump", d.Name, d.Parent)
		}
	}
	if root == nil || root.Parent != 0 {
		t.Fatalf("no session.packet root in dump: %+v", dump.Spans)
	}
	if mod == nil || mod.Parent != root.ID {
		t.Fatalf("modulation span not parented on the root: %+v", mod)
	}
}

// TestFarmObservabilityScrape is the load-smoke scrape: a farm of traced
// sessions under traffic must serve /metrics, /v1/slo, /v1/health, and a
// flight dump — and the scrape must show zero dropped labels (bounded
// cardinality) with per-session series tracking live sessions only.
func TestFarmObservabilityScrape(t *testing.T) {
	const sessions = 40
	reg := obs.NewRegistry()
	tr := span.New(span.Config{Sample: 0.25, Metrics: reg, Seed: 9})
	// Coarse ticks keep the lateness SLO threshold (2 ticks) far above
	// race-detector scheduling noise: the test checks the surface's wiring,
	// not this machine's timer precision.
	srv, m := newTestAPI(t, Options{
		Metrics: reg, Spans: tr, MaxSessions: sessions + 1,
		Granularity: 50 * time.Millisecond,
	})

	ids := make([]string, 0, sessions)
	for i := 0; i < sessions; i++ {
		var created SessionInfo
		doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{
			Name: fmt.Sprintf("farm-%d", i), Synthetic: "wavelan",
		}, http.StatusCreated, &created)
		ids = append(ids, created.ID)
	}
	for _, id := range ids {
		s, _ := m.Get(id)
		for p := 0; p < 10; p++ {
			s.Submit(simnet.Outbound, 200, func() {})
		}
	}
	waitFor(t, "farm deliveries", func() bool {
		var resolved int64
		for _, s := range m.List() {
			st := s.Stats()
			resolved += st.Delivered + st.Dropped
		}
		return resolved >= sessions*10
	})

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body := string(scrape)
	if !strings.Contains(body, fmt.Sprintf("tracemod_emud_sessions_active %d", sessions)) {
		t.Fatalf("scrape missing active-session gauge for %d sessions", sessions)
	}
	// Bounded label growth: nothing hit a Vec cardinality cap, and the
	// per-session series count matches the live population.
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, obs.DroppedLabelsName+" "); ok && strings.TrimSpace(rest) != "0" {
			t.Fatalf("labels dropped under load: %s", line)
		}
	}
	if got := strings.Count(body, "tracemod_emud_session_state{"); got != sessions {
		t.Fatalf("%d session_state series for %d sessions", got, sessions)
	}

	var rep FarmSLOReport
	doJSON(t, "GET", srv.URL+"/v1/slo", nil, http.StatusOK, &rep)
	if rep.Score <= 0 {
		t.Fatalf("farm under load scored %v", rep.Score)
	}
	var h HealthInfo
	doJSON(t, "GET", srv.URL+"/v1/health", nil, http.StatusOK, &h)
	if !h.Ready || h.Sessions != sessions {
		t.Fatalf("health under load = %+v", h)
	}

	// At 25% sampling across 400 packets some session has flight data;
	// dump one to prove the endpoint works mid-load.
	dumped := false
	for _, id := range ids {
		s, _ := m.Get(id)
		if s.Flight().Total() == 0 {
			continue
		}
		var dump FlightDump
		doJSON(t, "GET", srv.URL+"/v1/sessions/"+id+"/flight", nil, http.StatusOK, &dump)
		if len(dump.Spans) == 0 {
			t.Fatalf("session %s reported %d flight spans but dumped none", id, s.Flight().Total())
		}
		dumped = true
		break
	}
	if !dumped {
		t.Fatal("no session collected flight spans at 25% sampling across 400 packets")
	}

	// Session deletion retires its per-session series: no label leak.
	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/sessions/"+ids[0], nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if strings.Contains(string(scrape2), fmt.Sprintf("session=%q", ids[0])) {
		t.Fatalf("deleted session %s still exported", ids[0])
	}
}
