package emud

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"tracemod/internal/simnet"
)

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "farm.json")
	m := newTestManager(t, Options{SnapshotPath: path, SnapshotInterval: -1})

	run := startSession(t, m, testTrace())
	idle, err := m.Create(SessionConfig{Name: "idle", Trace: testTrace(), Loop: true, Tick: -1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	stopped := startSession(t, m, testTrace())
	stopped.Stop()

	// Advance the running session's cursor a little.
	for i := 0; i < 5; i++ {
		run.Submit(simnet.Outbound, 100, func() {})
	}
	deadline := time.Now().Add(5 * time.Second)
	for run.Stats().InFlight > 0 {
		if time.Now().After(deadline) {
			t.Fatal("packets never drained")
		}
		time.Sleep(time.Millisecond)
	}
	wantCursor := run.Cursor()

	if err := m.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("tmp file left behind after atomic publish")
	}
	snap, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Sessions) != 2 {
		t.Fatalf("snapshot holds %d sessions, want 2 (stopped one omitted)", len(snap.Sessions))
	}

	// "Kill -9": a fresh manager restores the snapshot.
	m2 := newTestManager(t, Options{})
	n, err := m2.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d sessions, want 2", n)
	}
	r2, ok := m2.Get(run.ID)
	if !ok {
		t.Fatalf("running session %s not restored under its ID", run.ID)
	}
	if r2.State() != StateRunning {
		t.Fatalf("restored session state = %v, want running", r2.State())
	}
	if got := r2.Cursor(); got != wantCursor {
		t.Fatalf("restored cursor = %d, want %d", got, wantCursor)
	}
	i2, ok := m2.Get(idle.ID)
	if !ok || i2.State() != StateCreated {
		t.Fatalf("created-but-not-started session restored as %v", i2.State())
	}
	if i2.Config().Name != "idle" || i2.Config().Seed != 9 {
		t.Fatalf("restored config lost fields: %+v", i2.Config())
	}
	if _, ok := m2.Get(stopped.ID); ok {
		t.Fatal("stopped session must not be restored")
	}

	// Post-recovery creates must not collide with restored IDs.
	fresh, err := m2.Create(SessionConfig{Trace: testTrace()})
	if err != nil {
		t.Fatal(err)
	}
	if _, clash := map[string]bool{run.ID: true, idle.ID: true}[fresh.ID]; clash {
		t.Fatalf("fresh session reused restored ID %s", fresh.ID)
	}

	// A restored session keeps working.
	done := make(chan struct{})
	if !r2.Submit(simnet.Outbound, 100, func() { close(done) }) {
		t.Fatal("restored session refused a packet")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("restored session never delivered")
	}
}

func TestCloseWritesFinalSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "final.json")
	m := NewManager(Options{Granularity: time.Millisecond, SnapshotPath: path, SnapshotInterval: -1})
	s, err := m.Create(SessionConfig{Trace: testTrace(), Loop: true, Tick: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	m.Close()
	snap, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("no snapshot after Close: %v", err)
	}
	if len(snap.Sessions) != 1 || snap.Sessions[0].ID != s.ID {
		t.Fatalf("final snapshot sessions = %+v", snap.Sessions)
	}
}

func TestRecoverMissingFileIsFirstBoot(t *testing.T) {
	m := newTestManager(t, Options{})
	n, err := m.Recover(filepath.Join(t.TempDir(), "absent.json"))
	if n != 0 || err != nil {
		t.Fatalf("Recover(absent) = (%d, %v), want (0, nil)", n, err)
	}
}
