package emud

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tracemod/internal/obs"
	"tracemod/internal/tracefmt"
)

// corruptOneRecord smashes the length field of the record at index n in
// a collected trace file, returning the rewritten bytes and the size of
// the damaged region (frame + payload of the smashed record).
func corruptOneRecord(t *testing.T, data []byte, n int) ([]byte, int64) {
	t.Helper()
	// Walk the self-descriptive frames from the end of the header to
	// find the n-th record boundary.
	off := headerLenOf(t, data)
	out := append([]byte(nil), data...)
	for i := 0; ; i++ {
		if off+3 > len(out) {
			t.Fatalf("file ended before record %d", n)
		}
		plen := int(binary.BigEndian.Uint16(out[off+1 : off+3]))
		if i == n {
			out[off+1], out[off+2] = 0xff, 0xff
			return out, int64(3 + plen)
		}
		off += 3 + plen
	}
}

// headerLenOf measures the header by writing an empty trace with the
// same header and measuring it.
func headerLenOf(t *testing.T, data []byte) int {
	t.Helper()
	rd, err := tracefmt.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := tracefmt.NewWriter(&buf, rd.Header())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Len()
}

// TestStoreSalvagesCorruptCollectedTrace is the PR's acceptance
// scenario end-to-end: a collected trace with one corrupted record
// mid-stream loads through the store in salvage mode, distills, and the
// attached ReadReport counts exactly the damaged region.
func TestStoreSalvagesCorruptCollectedTrace(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(StoreOptions{Metrics: reg})
	dir := t.TempDir()
	path := writeCollectedFile(t, dir)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt, damaged := corruptOneRecord(t, data, 40)
	bad := filepath.Join(dir, "damaged.trace")
	if err := os.WriteFile(bad, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	// The pristine copy distills cleanly and leaves no salvage report.
	if _, err := st.Load(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.SalvageReport(path); ok {
		t.Fatal("pristine file must not report salvage")
	}

	// The damaged copy loads anyway — in salvage mode.
	tr, err := st.Load(bad)
	if err != nil {
		t.Fatalf("salvage load failed: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("salvaged trace is invalid: %v", err)
	}
	if tr.TotalDuration() < 10*time.Second {
		t.Fatalf("salvaged trace covers only %v", tr.TotalDuration())
	}

	rep, ok := st.SalvageReport(bad)
	if !ok {
		t.Fatal("salvage report missing")
	}
	if rep.Clean() {
		t.Fatalf("report claims a clean parse: %s", rep)
	}
	// Exactly the damaged region: one resync spanning the smashed
	// record's frame and payload, nothing else.
	if rep.Resyncs != 1 || rep.Damaged != 1 {
		t.Fatalf("resyncs=%d damaged=%d, want 1/1 (%s)", rep.Resyncs, rep.Damaged, rep)
	}
	if rep.Skipped != damaged {
		t.Fatalf("skipped %d bytes, want exactly %d (%s)", rep.Skipped, damaged, rep)
	}
	if st.salvaged.Load() != 1 {
		t.Fatalf("salvaged counter = %d, want 1", st.salvaged.Load())
	}
}

func TestStoreStrictModeQuarantinesDamage(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(StoreOptions{Metrics: reg, StrictTraces: true})
	dir := t.TempDir()
	path := writeCollectedFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt, _ := corruptOneRecord(t, data, 40)
	bad := filepath.Join(dir, "damaged.trace")
	if err := os.WriteFile(bad, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = st.Load(bad)
	var q *QuarantineError
	if !errors.As(err, &q) {
		t.Fatalf("err = %v, want QuarantineError", err)
	}
	if q.Path != bad {
		t.Fatalf("quarantine names %q, want %q", q.Path, bad)
	}
	if st.quarantined.Load() != 1 {
		t.Fatalf("quarantined counter = %d, want 1", st.quarantined.Load())
	}
}

// TestStoreQuarantinesUnsalvageable: a collected-format file whose body
// is pure noise salvages to an empty trace, fails distillation, and is
// quarantined with the salvage report attached.
func TestStoreQuarantinesUnsalvageable(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(StoreOptions{Metrics: reg, QuarantineTTL: 50 * time.Millisecond})
	dir := t.TempDir()

	var buf bytes.Buffer
	w, err := tracefmt.NewWriter(&buf, tracefmt.Header{Device: "d"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.Write(bytes.Repeat([]byte{0xa5, 0x7e, 0xc1}, 64))
	path := filepath.Join(dir, "noise.trace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = st.Load(path)
	var q *QuarantineError
	if !errors.As(err, &q) {
		t.Fatalf("err = %v, want QuarantineError", err)
	}
	if q.Report == nil || q.Report.Clean() {
		t.Fatalf("quarantine must carry the salvage accounting, got %v", q.Report)
	}

	// The quarantine is negative-cached: a second load answers from
	// memory without re-reading the file.
	if _, err := st.Load(path); err == nil {
		t.Fatal("quarantined file must keep failing inside the TTL")
	}
	if st.negativeHits.Load() != 1 {
		t.Fatalf("negative hits = %d, want 1", st.negativeHits.Load())
	}
	if st.parseErrors.Load() != 1 {
		t.Fatalf("parse errors = %d, want 1 (quarantine must not re-parse)", st.parseErrors.Load())
	}

	// Once the TTL passes and the file is repaired, it loads.
	writeReplayFile(t, dir, "noise.trace")
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := st.Load(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("quarantine stayed sticky past its TTL")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStoreSalvagesTornReplayFile: the lenient path for the text format.
func TestStoreSalvagesTornReplayFile(t *testing.T) {
	st := NewStore(StoreOptions{})
	dir := t.TempDir()
	good := writeReplayFile(t, dir, "good.replay")
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one tuple line.
	torn := bytes.Replace(data, []byte("\n1000000"), []byte("\nxx!!000"), 1)
	if bytes.Equal(torn, data) {
		t.Fatal("fixture assumption broken: no line to corrupt")
	}
	path := filepath.Join(dir, "torn.replay")
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := st.Load(path)
	if err != nil {
		t.Fatalf("lenient replay load failed: %v", err)
	}
	if len(tr) != 9 {
		t.Fatalf("kept %d tuples, want 9 (one line lost)", len(tr))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
