package emud

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tracemod/internal/capture"
	"tracemod/internal/core"
	"tracemod/internal/obs"
	"tracemod/internal/pinger"
	"tracemod/internal/replay"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/tracefmt"
)

// writeReplayFile serializes a small synthetic replay trace to dir.
func writeReplayFile(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr := replay.Constant(core.DelayParams{F: time.Millisecond, Vb: 100}, 0.01, 10*time.Second, time.Second)
	if err := replay.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeCollectedFile produces a genuine collected trace (simulated
// wireless walk + pinger) in tracefmt format.
func writeCollectedFile(t *testing.T, dir string) string {
	t.Helper()
	s := sim.New(3)
	tb := scenario.BuildWireless(s, scenario.Porter)
	const dur = 30 * time.Second
	pinger.Start(s, tb.Laptop, scenario.ServerIP, dur)
	tr, err := capture.Collect(s, tb.Laptop.NIC(0), 1<<16, dur, "store-test")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "collected.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tracefmt.WriteAll(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStoreLoadsReplayFileOnce(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(StoreOptions{Metrics: reg})
	path := writeReplayFile(t, t.TempDir(), "a.replay")

	tr1, err := st.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr1) != 10 {
		t.Fatalf("trace has %d tuples, want 10", len(tr1))
	}
	tr2, err := st.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// The identical slice is shared, not re-parsed.
	if &tr1[0] != &tr2[0] {
		t.Fatal("second load did not share the cached trace")
	}
	if st.hits.Load() != 1 || st.misses.Load() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.hits.Load(), st.misses.Load())
	}
}

func TestStoreDistillsCollectedTrace(t *testing.T) {
	st := NewStore(StoreOptions{})
	path := writeCollectedFile(t, t.TempDir())
	tr, err := st.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("distilled trace invalid: %v", err)
	}
	if tr.TotalDuration() < 10*time.Second {
		t.Fatalf("distilled trace covers only %v", tr.TotalDuration())
	}
}

func TestStoreSingleflight(t *testing.T) {
	st := NewStore(StoreOptions{Metrics: obs.NewRegistry()})
	path := writeReplayFile(t, t.TempDir(), "c.replay")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := st.Load(path); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if st.misses.Load() != 1 {
		t.Fatalf("%d parses for 32 concurrent loads, want 1", st.misses.Load())
	}
}

func TestStoreLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(StoreOptions{Capacity: 2, Metrics: reg})
	dir := t.TempDir()
	a := writeReplayFile(t, dir, "a.replay")
	b := writeReplayFile(t, dir, "b.replay")
	c := writeReplayFile(t, dir, "c.replay")
	for _, p := range []string{a, b, c} {
		if _, err := st.Load(p); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 2 {
		t.Fatalf("cache holds %d, want 2", st.Len())
	}
	if st.evictions.Load() != 1 {
		t.Fatalf("evictions = %d, want 1", st.evictions.Load())
	}
	// a was evicted; reloading it is a miss (re-parse), not an error.
	if _, err := st.Load(a); err != nil {
		t.Fatal(err)
	}
	if st.misses.Load() != 4 {
		t.Fatalf("misses = %d, want 4", st.misses.Load())
	}
}

func TestStoreErrorNotCachedWhenTTLDisabled(t *testing.T) {
	st := NewStore(StoreOptions{NegativeTTL: -1})
	dir := t.TempDir()
	path := filepath.Join(dir, "late.replay")
	if _, err := st.Load(path); err == nil {
		t.Fatal("missing file must error")
	}
	// With negative caching off, the file appearing afterwards must be
	// picked up immediately.
	writeReplayFile(t, dir, "late.replay")
	if _, err := st.Load(path); err != nil {
		t.Fatalf("load after file appeared: %v", err)
	}
}

func TestStoreNegativeCachesErrors(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(StoreOptions{NegativeTTL: 50 * time.Millisecond, Metrics: reg})
	dir := t.TempDir()
	path := filepath.Join(dir, "late.replay")
	if _, err := st.Load(path); err == nil {
		t.Fatal("missing file must error")
	}
	writeReplayFile(t, dir, "late.replay")
	// Within the TTL the failure is remembered — no re-parse, no IO.
	if _, err := st.Load(path); err == nil {
		t.Fatal("failure inside the negative TTL must still error")
	}
	if st.negativeHits.Load() != 1 {
		t.Fatalf("negative hits = %d, want 1", st.negativeHits.Load())
	}
	if st.parseErrors.Load() != 1 {
		t.Fatalf("parse errors = %d, want 1 (negative cache must not re-parse)", st.parseErrors.Load())
	}
	// Past the TTL the entry expires and the now-present file loads.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := st.Load(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("failure stayed sticky past the negative TTL")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStoreRejectsGarbage(t *testing.T) {
	st := NewStore(StoreOptions{})
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a trace of any kind\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(path); err == nil {
		t.Fatal("garbage file must fail to parse")
	}
}

func TestStoreRegisterLookup(t *testing.T) {
	st := NewStore(StoreOptions{})
	tr := replay.WaveLANLike(10 * time.Second)
	if err := st.Register("wavelan", tr); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Lookup("wavelan")
	if !ok || len(got) != len(tr) {
		t.Fatalf("lookup = (%d tuples, %v)", len(got), ok)
	}
	if _, ok := st.Lookup("absent"); ok {
		t.Fatal("absent name must not resolve")
	}
	if err := st.Register("bad", core.Trace{{D: -1}}); err == nil {
		t.Fatal("invalid trace must be rejected")
	}
}
