package emud

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tracemod/internal/obs"
)

func newTestAPI(t *testing.T, o Options) (*httptest.Server, *Manager) {
	t.Helper()
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
		o.Metrics = reg
	}
	if o.Granularity == 0 {
		o.Granularity = time.Millisecond
	}
	m := NewManager(o)
	t.Cleanup(m.Close)
	srv := httptest.NewServer(NewAPI(m, reg, obs.NewRingTracer(128)).Handler())
	t.Cleanup(srv.Close)
	return srv, m
}

func doJSON(t *testing.T, method, url string, body any, wantCode int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d: %s", method, url, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
}

func TestAPISessionCRUD(t *testing.T) {
	srv, m := newTestAPI(t, Options{})

	var created SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{
		Name:      "crud",
		Synthetic: "wavelan",
	}, http.StatusCreated, &created)
	if created.State != "running" || created.Tuples == 0 {
		t.Fatalf("created = %+v", created)
	}

	var got SessionInfo
	doJSON(t, "GET", srv.URL+"/v1/sessions/"+created.ID, nil, http.StatusOK, &got)
	if got.ID != created.ID || got.Name != "crud" {
		t.Fatalf("get = %+v", got)
	}

	var list []SessionInfo
	doJSON(t, "GET", srv.URL+"/v1/sessions", nil, http.StatusOK, &list)
	if len(list) != 1 || list[0].ID != created.ID {
		t.Fatalf("list = %+v", list)
	}

	doJSON(t, "POST", srv.URL+"/v1/sessions/"+created.ID+"/stop", nil, http.StatusOK, &got)
	if got.State != "stopped" {
		t.Fatalf("state after stop = %s", got.State)
	}

	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/sessions/"+created.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	if m.Count() != 0 {
		t.Fatalf("%d sessions after delete", m.Count())
	}
	doJSON(t, "GET", srv.URL+"/v1/sessions/"+created.ID, nil, http.StatusNotFound, nil)
}

func TestAPIInlineTraceAndDeferredStart(t *testing.T) {
	srv, _ := newTestAPI(t, Options{})
	start := false
	var created SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{
		Inline: []TupleJSON{
			{DurationSec: 1, LatencyMS: 5, VbNSPerByte: 100, Loss: 0.1},
			{DurationSec: 2, LatencyMS: 50, VbNSPerByte: 900, Loss: 0.5},
		},
		Start: &start,
		Seed:  7,
	}, http.StatusCreated, &created)
	if created.State != "created" || created.Tuples != 2 || created.TraceSec != 3 {
		t.Fatalf("created = %+v", created)
	}
	var started SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions/"+created.ID+"/start", nil, http.StatusOK, &started)
	if started.State != "running" {
		t.Fatalf("state after start = %s", started.State)
	}
}

func TestAPITraceFromFile(t *testing.T) {
	srv, _ := newTestAPI(t, Options{})
	path := writeReplayFile(t, t.TempDir(), "api.replay")
	var created SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{TracePath: path},
		http.StatusCreated, &created)
	if created.Tuples != 10 || created.TraceRef != path {
		t.Fatalf("created = %+v", created)
	}
}

func TestAPIRelayAttachAndTraffic(t *testing.T) {
	srv, _ := newTestAPI(t, Options{})

	// A tiny UDP echo server as the relay target.
	target, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	go func() {
		buf := make([]byte, 2048)
		for {
			n, addr, err := target.ReadFromUDP(buf)
			if err != nil {
				return
			}
			_, _ = target.WriteToUDP(buf[:n], addr)
		}
	}()

	var created SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{
		Synthetic:   "wavelan",
		DurationSec: 60,
		Relay: &RelaySpec{
			Listen: "127.0.0.1:0",
			Target: target.LocalAddr().String(),
		},
	}, http.StatusCreated, &created)
	if created.RelayAddr == "" {
		t.Fatal("no relay address reported")
	}

	conn, err := net.Dial("udp", created.RelayAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping-through-emud")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "ping-through-emud" {
		t.Fatalf("echo = %q", buf[:n])
	}

	// The round trip is visible in the session stats.
	var got SessionInfo
	doJSON(t, "GET", srv.URL+"/v1/sessions/"+created.ID, nil, http.StatusOK, &got)
	if got.Submitted < 2 || got.Delivered < 2 {
		t.Fatalf("stats after echo = %+v", got)
	}
}

func TestAPIFarmAndMetrics(t *testing.T) {
	srv, m := newTestAPI(t, Options{Shards: 2})
	var created SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{Synthetic: "slow"},
		http.StatusCreated, &created)

	var farm FarmInfo
	doJSON(t, "GET", srv.URL+"/v1/farm", nil, http.StatusOK, &farm)
	if farm.Sessions != 1 || farm.WheelShards != 2 {
		t.Fatalf("farm = %+v", farm)
	}
	if farm.MaxSessions != m.opts.MaxSessions {
		t.Fatalf("farm max = %d", farm.MaxSessions)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"tracemod_emud_sessions_active 1",
		fmt.Sprintf("tracemod_emud_session_state{session=%q} 1", created.ID),
		"tracemod_wheel_shards 2",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestAPIBadRequests(t *testing.T) {
	srv, _ := newTestAPI(t, Options{})
	for name, req := range map[string]SessionRequest{
		"no source":      {},
		"two sources":    {Synthetic: "wavelan", Inline: []TupleJSON{{DurationSec: 1}}},
		"bad synthetic":  {Synthetic: "carrier-pigeon"},
		"invalid inline": {Inline: []TupleJSON{{DurationSec: -1}}},
		"missing file":   {TracePath: "/does/not/exist.replay"},
	} {
		doJSON(t, "POST", srv.URL+"/v1/sessions", req, http.StatusBadRequest, nil)
		_ = name
	}
	doJSON(t, "POST", srv.URL+"/v1/sessions/s-999999/start", nil, http.StatusNotFound, nil)
	doJSON(t, "GET", srv.URL+"/v1/sessions/s-999999", nil, http.StatusNotFound, nil)
}

func TestAPIStopWithDrain(t *testing.T) {
	srv, _ := newTestAPI(t, Options{})
	var created SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{Synthetic: "wavelan"},
		http.StatusCreated, &created)
	var got SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions/"+created.ID+"/stop?drain=2s", nil,
		http.StatusOK, &got)
	if got.State != "stopped" {
		t.Fatalf("state after drained stop = %s", got.State)
	}
	doJSON(t, "POST", srv.URL+"/v1/sessions/"+created.ID+"/stop?drain=banana", nil,
		http.StatusBadRequest, nil)
}
