// Crash-safe session snapshots. The farm periodically serializes every
// live session's spec and replay cursor to one JSON file (atomically:
// tmp + rename), and writes a final snapshot at Close before draining.
// After a crash — kill -9, OOM, power loss — `emud -recover` loads the
// file and Restore rebuilds each non-stopped session under its original
// ID, fast-forwarding its trace cursor to where the lost daemon left it
// and best-effort re-attaching relays.
//
// Snapshots are self-contained: traces are embedded (deduplicated by
// ref), so recovery does not depend on the original trace files still
// existing or parsing.
package emud

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"tracemod/internal/core"
)

// SessionSnapshot is one session's durable state.
type SessionSnapshot struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	TraceRef string `json:"trace_ref"`
	// Stream names the live-ingest stream a live session was attached
	// to. The trace is not embedded — the stream's WAL is the durable
	// source; restore rebinds through the store's live registry (the
	// stream recovery must run first).
	Stream string `json:"stream,omitempty"`
	Loop   bool   `json:"loop"`
	// TickUS mirrors SessionConfig.Tick in microseconds (negative = exact).
	TickUS         int64   `json:"tick_us"`
	Seed           int64   `json:"seed"`
	InboundExtraNS float64 `json:"inbound_extra_ns_per_byte,omitempty"`
	CompensationNS float64 `json:"compensation_ns_per_byte,omitempty"`
	// Running records whether the session should be started on restore.
	Running bool `json:"running"`
	// Cursor is the replay position in tuples consumed since the trace's
	// beginning; restore passes it as SkipTuples.
	Cursor int64 `json:"cursor"`
	// RelayListen/RelayTarget re-attach the livewire relay on restore
	// (best-effort: the port may be taken by another process).
	RelayListen string `json:"relay_listen,omitempty"`
	RelayTarget string `json:"relay_target,omitempty"`
}

// FarmSnapshot is the whole farm's durable state.
type FarmSnapshot struct {
	TakenUnixNano int64 `json:"taken_unix_nano"`
	// Seq preserves the ID counter so post-recovery creates don't collide
	// with restored IDs.
	Seq int64 `json:"seq"`
	// Traces embeds every referenced trace, deduplicated by ref.
	Traces   map[string][]TupleJSON `json:"traces"`
	Sessions []SessionSnapshot      `json:"sessions"`
}

func tupleToJSON(t core.Tuple) TupleJSON {
	return TupleJSON{
		DurationSec: t.D.Seconds(),
		LatencyMS:   float64(t.F) / float64(time.Millisecond),
		VbNSPerByte: float64(t.Vb),
		VrNSPerByte: float64(t.Vr),
		Loss:        t.L,
	}
}

func tupleFromJSON(t TupleJSON) core.Tuple {
	return core.Tuple{
		D: time.Duration(t.DurationSec * float64(time.Second)),
		DelayParams: core.DelayParams{
			F:  time.Duration(t.LatencyMS * float64(time.Millisecond)),
			Vb: core.PerByte(t.VbNSPerByte),
			Vr: core.PerByte(t.VrNSPerByte),
		},
		L: t.Loss,
	}
}

// Snapshot captures the farm's current durable state. Stopped sessions
// are omitted — they have nothing to recover.
func (m *Manager) Snapshot() *FarmSnapshot {
	m.mu.Lock()
	seq := m.seq
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	return snapshotOf(sessions, seq)
}

func snapshotOf(sessions []*Session, seq int64) *FarmSnapshot {
	snap := &FarmSnapshot{
		TakenUnixNano: time.Now().UnixNano(),
		Seq:           seq,
		Traces:        map[string][]TupleJSON{},
	}
	for _, s := range sessions {
		st := s.State()
		if st == StateStopped || st == StateDraining {
			continue
		}
		cfg := s.Config()
		listen, target := s.RelaySpecArgs()
		ss := SessionSnapshot{
			ID:             s.ID,
			Name:           cfg.Name,
			TraceRef:       cfg.TraceRef,
			Loop:           cfg.Loop,
			TickUS:         cfg.Tick.Microseconds(),
			Seed:           cfg.Seed,
			InboundExtraNS: float64(cfg.InboundExtra),
			CompensationNS: float64(cfg.Compensation),
			Running:        st == StateRunning,
			Cursor:         s.Cursor(),
			RelayListen:    listen,
			RelayTarget:    target,
		}
		if cfg.Live != nil {
			// A live session's trace is not embedded: the stream's WAL is
			// the durable copy, and restore rebinds through the recovered
			// stream. The ref is "stream:<name>" by construction.
			ss.Stream = strings.TrimPrefix(cfg.TraceRef, "stream:")
		} else if _, ok := snap.Traces[cfg.TraceRef]; !ok {
			tuples := make([]TupleJSON, len(cfg.Trace))
			for i, t := range cfg.Trace {
				tuples[i] = tupleToJSON(t)
			}
			snap.Traces[cfg.TraceRef] = tuples
		}
		snap.Sessions = append(snap.Sessions, ss)
	}
	return snap
}

// WriteSnapshot writes the farm's snapshot to Options.SnapshotPath
// atomically (tmp file + rename), so a crash mid-write leaves the
// previous snapshot intact.
func (m *Manager) WriteSnapshot() error {
	m.mu.Lock()
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	return m.writeSnapshotOf(sessions)
}

// writeSnapshotOf serializes the given sessions (Close passes the list
// it already pulled out of the map before clearing it).
func (m *Manager) writeSnapshotOf(sessions []*Session) error {
	if m.opts.SnapshotPath == "" {
		return fmt.Errorf("emud: no snapshot path configured")
	}
	m.mu.Lock()
	seq := m.seq
	m.mu.Unlock()
	snap := snapshotOf(sessions, seq)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("emud: marshaling snapshot: %w", err)
	}
	tmp := m.opts.SnapshotPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("emud: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, m.opts.SnapshotPath); err != nil {
		return fmt.Errorf("emud: publishing snapshot: %w", err)
	}
	m.ins.incSnapshots()
	return nil
}

// snapshotLoop writes a snapshot every SnapshotInterval until Close.
func (m *Manager) snapshotLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.opts.SnapshotInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			_ = m.WriteSnapshot()
		case <-m.quit:
			return
		}
	}
}

// LoadSnapshot reads a snapshot file written by WriteSnapshot.
func LoadSnapshot(path string) (*FarmSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap FarmSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("emud: parsing snapshot %s: %w", path, err)
	}
	return &snap, nil
}

// Restore rebuilds every snapshotted session in this (fresh) farm under
// its original ID: running sessions are restarted with their replay
// cursor fast-forwarded to the snapshot position, and relays re-attach
// best-effort. It returns the number of sessions restored; per-session
// failures (a trace that no longer validates, a taken relay port) skip
// that session rather than aborting the rest.
func (m *Manager) Restore(snap *FarmSnapshot) (int, error) {
	if snap == nil {
		return 0, fmt.Errorf("emud: nil snapshot")
	}
	traces := make(map[string]core.Trace, len(snap.Traces))
	for ref, tuples := range snap.Traces {
		tr := make(core.Trace, len(tuples))
		for i, t := range tuples {
			tr[i] = tupleFromJSON(t)
		}
		traces[ref] = tr
	}
	restored := 0
	var firstErr error
	for _, ss := range snap.Sessions {
		cfg := SessionConfig{
			Name:         ss.Name,
			TraceRef:     ss.TraceRef,
			Loop:         ss.Loop,
			Tick:         time.Duration(ss.TickUS) * time.Microsecond,
			Seed:         ss.Seed,
			InboundExtra: core.PerByte(ss.InboundExtraNS),
			Compensation: core.PerByte(ss.CompensationNS),
			SkipTuples:   ss.Cursor,
		}
		var restoreErr error
		start := ss.Running
		if ss.Stream != "" {
			// A live session rebinds to its recovered stream. When the
			// stream did not survive (WAL off, deleted, unreadable), the
			// session is still restored — stopped, bound to an empty sealed
			// trace, with the typed loss in its status — so the operator
			// sees exactly which tenants lost their feed.
			if lt, ok := m.store.LookupLive(ss.Stream); ok {
				cfg.Live = lt
			} else {
				gone := NewLiveTrace()
				gone.Complete(ErrStreamGone)
				cfg.Live = gone
				restoreErr = fmt.Errorf("%w: %q", ErrStreamGone, ss.Stream)
				start = false
				if firstErr == nil {
					firstErr = fmt.Errorf("emud: session %s: %w", ss.ID, restoreErr)
				}
			}
		} else {
			trace, ok := traces[ss.TraceRef]
			if !ok {
				if firstErr == nil {
					firstErr = fmt.Errorf("emud: snapshot session %s references missing trace %q", ss.ID, ss.TraceRef)
				}
				continue
			}
			if !ss.Loop && cfg.SkipTuples > int64(len(trace)) {
				cfg.SkipTuples = int64(len(trace))
			}
			cfg.Trace = trace
		}
		s, err := m.createRestored(ss.ID, cfg, restoreErr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if start {
			if err := s.Start(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if ss.RelayListen != "" {
				// Best-effort: the listen port may now belong to someone else.
				_, _ = s.AttachRelay(ss.RelayListen, ss.RelayTarget)
			}
		}
		restored++
		m.ins.incRecovered()
	}
	m.mu.Lock()
	if snap.Seq > m.seq {
		m.seq = snap.Seq
	}
	m.mu.Unlock()
	return restored, firstErr
}

// createRestored is Create with a caller-supplied ID (recovery preserves
// the crashed daemon's session IDs so clients' handles stay valid).
// restoreErr, when non-nil, is surfaced in the session's status — the
// session exists but something it depended on did not survive the crash.
func (m *Manager) createRestored(id string, cfg SessionConfig, restoreErr error) (*Session, error) {
	if cfg.Live == nil {
		if err := cfg.Trace.Validate(); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("emud: manager closed")
	}
	if _, exists := m.sessions[id]; exists {
		return nil, fmt.Errorf("emud: session %s already exists", id)
	}
	if len(m.sessions) >= m.opts.MaxSessions {
		return nil, fmt.Errorf("emud: session limit reached (%d)", m.opts.MaxSessions)
	}
	s := &Session{
		ID:         id,
		cfg:        cfg,
		created:    m.wheel.Now(),
		expLoss:    cfg.Trace.WeightedLoss(),
		restoreErr: restoreErr,
		m:          m,
	}
	s.state.Store(int32(StateCreated))
	s.lastActive.Store(int64(s.created))
	m.sessions[s.ID] = s
	m.ins.incCreated()
	m.ins.setActive(len(m.sessions))
	m.ins.sessionState(s)
	return s, nil
}

// Recover loads the snapshot at path and restores it into this farm.
// A missing file is not an error (first boot): it returns (0, nil).
func (m *Manager) Recover(path string) (int, error) {
	snap, err := LoadSnapshot(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	return m.Restore(snap)
}
