// Crash-safe session snapshots. The farm periodically serializes every
// live session's spec and replay cursor to one JSON file (atomically:
// tmp + rename), and writes a final snapshot at Close before draining.
// After a crash — kill -9, OOM, power loss — `emud -recover` loads the
// file and Restore rebuilds each non-stopped session under its original
// ID, fast-forwarding its trace cursor to where the lost daemon left it
// and best-effort re-attaching relays.
//
// Snapshots are self-contained: traces are embedded (deduplicated by
// ref), so recovery does not depend on the original trace files still
// existing or parsing.
package emud

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tracemod/internal/core"
)

// ErrTraceUnrecoverable marks a restored session whose embedded trace
// could not be brought back — missing from the snapshot's trace table, or
// present but failing validation (a corrupt snapshot, or a snapshot
// damaged between write and recover). The session is parked (created
// stopped, error surfaced in its status) rather than silently skipped, so
// -recover never fails wholesale and the operator sees exactly which
// tenants lost their trace.
var ErrTraceUnrecoverable = errors.New("emud: trace unrecoverable")

// SessionSnapshot is one session's durable state.
type SessionSnapshot struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	TraceRef string `json:"trace_ref"`
	// Stream names the live-ingest stream a live session was attached
	// to. The trace is not embedded — the stream's WAL is the durable
	// source; restore rebinds through the store's live registry (the
	// stream recovery must run first).
	Stream string `json:"stream,omitempty"`
	Loop   bool   `json:"loop"`
	// TickUS mirrors SessionConfig.Tick in microseconds (negative = exact).
	TickUS         int64   `json:"tick_us"`
	Seed           int64   `json:"seed"`
	InboundExtraNS float64 `json:"inbound_extra_ns_per_byte,omitempty"`
	CompensationNS float64 `json:"compensation_ns_per_byte,omitempty"`
	// Running records whether the session should be started on restore.
	Running bool `json:"running"`
	// Cursor is the replay position in tuples consumed since the trace's
	// beginning; restore passes it as SkipTuples.
	Cursor int64 `json:"cursor"`
	// Draws is the session's position in its drop-lottery RNG stream;
	// restore passes it as SkipDraws so a migrated session's drop sequence
	// continues exactly where the source stopped drawing.
	Draws int64 `json:"rng_draws,omitempty"`
	// RelayListen/RelayTarget re-attach the livewire relay on restore
	// (best-effort: the port may be taken by another process).
	RelayListen string `json:"relay_listen,omitempty"`
	RelayTarget string `json:"relay_target,omitempty"`
}

// FarmSnapshot is the whole farm's durable state.
type FarmSnapshot struct {
	TakenUnixNano int64 `json:"taken_unix_nano"`
	// Seq preserves the ID counter so post-recovery creates don't collide
	// with restored IDs.
	Seq int64 `json:"seq"`
	// Traces embeds every referenced trace, deduplicated by ref.
	Traces   map[string][]TupleJSON `json:"traces"`
	Sessions []SessionSnapshot      `json:"sessions"`
}

func tupleToJSON(t core.Tuple) TupleJSON {
	return TupleJSON{
		DurationSec: t.D.Seconds(),
		LatencyMS:   float64(t.F) / float64(time.Millisecond),
		VbNSPerByte: float64(t.Vb),
		VrNSPerByte: float64(t.Vr),
		Loss:        t.L,
	}
}

func tupleFromJSON(t TupleJSON) core.Tuple {
	return core.Tuple{
		D: time.Duration(t.DurationSec * float64(time.Second)),
		DelayParams: core.DelayParams{
			F:  time.Duration(t.LatencyMS * float64(time.Millisecond)),
			Vb: core.PerByte(t.VbNSPerByte),
			Vr: core.PerByte(t.VrNSPerByte),
		},
		L: t.Loss,
	}
}

// Snapshot captures the farm's current durable state. Stopped sessions
// are omitted — they have nothing to recover.
func (m *Manager) Snapshot() *FarmSnapshot {
	m.mu.Lock()
	seq := m.seq
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	return snapshotOf(sessions, seq)
}

func snapshotOf(sessions []*Session, seq int64) *FarmSnapshot {
	snap := &FarmSnapshot{
		TakenUnixNano: time.Now().UnixNano(),
		Seq:           seq,
		Traces:        map[string][]TupleJSON{},
	}
	for _, s := range sessions {
		st := s.State()
		if st == StateStopped || st == StateDraining {
			continue
		}
		cfg := s.Config()
		listen, target := s.RelaySpecArgs()
		ss := SessionSnapshot{
			ID:             s.ID,
			Name:           cfg.Name,
			TraceRef:       cfg.TraceRef,
			Loop:           cfg.Loop,
			TickUS:         cfg.Tick.Microseconds(),
			Seed:           cfg.Seed,
			InboundExtraNS: float64(cfg.InboundExtra),
			CompensationNS: float64(cfg.Compensation),
			Running:        st == StateRunning,
			Cursor:         s.Cursor(),
			Draws:          s.LotteryDraws(),
			RelayListen:    listen,
			RelayTarget:    target,
		}
		if cfg.Live != nil {
			// A live session's trace is not embedded: the stream's WAL is
			// the durable copy, and restore rebinds through the recovered
			// stream. The ref is "stream:<name>" by construction.
			ss.Stream = strings.TrimPrefix(cfg.TraceRef, "stream:")
		} else if _, ok := snap.Traces[cfg.TraceRef]; !ok {
			tuples := make([]TupleJSON, len(cfg.Trace))
			for i, t := range cfg.Trace {
				tuples[i] = tupleToJSON(t)
			}
			snap.Traces[cfg.TraceRef] = tuples
		}
		snap.Sessions = append(snap.Sessions, ss)
	}
	return snap
}

// WriteSnapshot writes the farm's snapshot to Options.SnapshotPath
// atomically (tmp file + rename), so a crash mid-write leaves the
// previous snapshot intact.
func (m *Manager) WriteSnapshot() error {
	m.mu.Lock()
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	return m.writeSnapshotOf(sessions)
}

// writeSnapshotOf serializes the given sessions (Close passes the list
// it already pulled out of the map before clearing it).
func (m *Manager) writeSnapshotOf(sessions []*Session) error {
	if m.opts.SnapshotPath == "" {
		return fmt.Errorf("emud: no snapshot path configured")
	}
	m.mu.Lock()
	seq := m.seq
	m.mu.Unlock()
	snap := snapshotOf(sessions, seq)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("emud: marshaling snapshot: %w", err)
	}
	tmp := m.opts.SnapshotPath + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return fmt.Errorf("emud: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, m.opts.SnapshotPath); err != nil {
		return fmt.Errorf("emud: publishing snapshot: %w", err)
	}
	// The rename published the snapshot in memory, but the directory entry
	// itself is not durable until the directory is synced — a crash right
	// here could resurrect the previous snapshot (or the tmp name) on some
	// filesystems.
	if err := fsyncDir(filepath.Dir(m.opts.SnapshotPath)); err != nil {
		return fmt.Errorf("emud: syncing snapshot directory: %w", err)
	}
	m.ins.incSnapshots()
	return nil
}

// writeFileSync writes data and fsyncs the file before closing, so the
// rename that follows never publishes a name whose bytes are still only
// in the page cache.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fsyncDir flushes a directory's entry table, making a just-renamed or
// just-created name durable.
func fsyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// snapshotLoop writes a snapshot every SnapshotInterval until Close.
func (m *Manager) snapshotLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.opts.SnapshotInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			_ = m.WriteSnapshot()
		case <-m.quit:
			return
		}
	}
}

// LoadSnapshot reads a snapshot file written by WriteSnapshot.
func LoadSnapshot(path string) (*FarmSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap FarmSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("emud: parsing snapshot %s: %w", path, err)
	}
	return &snap, nil
}

// Restore rebuilds every snapshotted session in this (fresh) farm under
// its original ID: running sessions are restarted with their replay
// cursor fast-forwarded to the snapshot position, and relays re-attach
// best-effort. It returns the number of sessions restored; per-session
// failures (a trace that no longer validates, a taken relay port) skip
// that session rather than aborting the rest.
func (m *Manager) Restore(snap *FarmSnapshot) (int, error) {
	if snap == nil {
		return 0, fmt.Errorf("emud: nil snapshot")
	}
	traces := make(map[string]core.Trace, len(snap.Traces))
	for ref, tuples := range snap.Traces {
		tr := make(core.Trace, len(tuples))
		for i, t := range tuples {
			tr[i] = tupleFromJSON(t)
		}
		traces[ref] = tr
	}
	restored := 0
	var firstErr error
	for _, ss := range snap.Sessions {
		cfg := SessionConfig{
			Name:         ss.Name,
			TraceRef:     ss.TraceRef,
			Loop:         ss.Loop,
			Tick:         time.Duration(ss.TickUS) * time.Microsecond,
			Seed:         ss.Seed,
			InboundExtra: core.PerByte(ss.InboundExtraNS),
			Compensation: core.PerByte(ss.CompensationNS),
			SkipTuples:   ss.Cursor,
			SkipDraws:    ss.Draws,
		}
		var restoreErr error
		start := ss.Running
		if ss.Stream != "" {
			// A live session rebinds to its recovered stream. When the
			// stream did not survive (WAL off, deleted, unreadable), the
			// session is still restored — stopped, bound to an empty sealed
			// trace, with the typed loss in its status — so the operator
			// sees exactly which tenants lost their feed.
			if lt, ok := m.store.LookupLive(ss.Stream); ok {
				cfg.Live = lt
			} else {
				gone := NewLiveTrace()
				gone.Complete(ErrStreamGone)
				cfg.Live = gone
				restoreErr = fmt.Errorf("%w: %q", ErrStreamGone, ss.Stream)
				start = false
				if firstErr == nil {
					firstErr = fmt.Errorf("emud: session %s: %w", ss.ID, restoreErr)
				}
			}
		} else {
			// A trace session parks — stopped, with the typed loss in its
			// status — when its embedded trace is missing or invalid, the
			// same shape as a live session whose stream vanished. Recovery
			// never fails wholesale over one damaged tenant.
			var badTrace error
			trace, ok := traces[ss.TraceRef]
			if !ok {
				badTrace = fmt.Errorf("%w: trace %q missing from snapshot", ErrTraceUnrecoverable, ss.TraceRef)
			} else if err := trace.Validate(); err != nil {
				badTrace = fmt.Errorf("%w: trace %q: %v", ErrTraceUnrecoverable, ss.TraceRef, err)
			}
			if badTrace != nil {
				gone := NewLiveTrace()
				gone.Complete(badTrace)
				cfg.Live = gone
				restoreErr = badTrace
				start = false
				if firstErr == nil {
					firstErr = fmt.Errorf("emud: session %s: %w", ss.ID, badTrace)
				}
			} else {
				if !ss.Loop && cfg.SkipTuples > int64(len(trace)) {
					cfg.SkipTuples = int64(len(trace))
				}
				cfg.Trace = trace
			}
		}
		s, err := m.createRestored(ss.ID, cfg, restoreErr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if start {
			if err := s.Start(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if ss.RelayListen != "" {
				// Best-effort: the listen port may now belong to someone else.
				_, _ = s.AttachRelay(ss.RelayListen, ss.RelayTarget)
			}
		}
		restored++
		m.ins.incRecovered()
	}
	m.mu.Lock()
	if snap.Seq > m.seq {
		m.seq = snap.Seq
	}
	m.mu.Unlock()
	return restored, firstErr
}

// createRestored is Create with a caller-supplied ID (recovery preserves
// the crashed daemon's session IDs so clients' handles stay valid).
// restoreErr, when non-nil, is surfaced in the session's status — the
// session exists but something it depended on did not survive the crash.
func (m *Manager) createRestored(id string, cfg SessionConfig, restoreErr error) (*Session, error) {
	if cfg.Live == nil {
		if err := cfg.Trace.Validate(); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("emud: manager closed")
	}
	if _, exists := m.sessions[id]; exists {
		return nil, fmt.Errorf("emud: session %s already exists", id)
	}
	if len(m.sessions) >= m.opts.MaxSessions {
		return nil, fmt.Errorf("emud: session limit reached (%d)", m.opts.MaxSessions)
	}
	s := &Session{
		ID:         id,
		cfg:        cfg,
		created:    m.wheel.Now(),
		expLoss:    cfg.Trace.WeightedLoss(),
		restoreErr: restoreErr,
		m:          m,
	}
	s.state.Store(int32(StateCreated))
	s.lastActive.Store(int64(s.created))
	m.sessions[s.ID] = s
	m.ins.incCreated()
	m.ins.setActive(len(m.sessions))
	m.ins.sessionState(s)
	return s, nil
}

// Handoff quiesces one session and extracts it as a single-session
// snapshot for live migration: the session drains (new packets refused,
// in-flight deliveries complete, engine stopped), its replay cursor and
// drop-lottery draw count are captured frozen, and it is deleted from
// this farm. Restoring the returned snapshot elsewhere resumes the
// session under the same ID with byte-identical modulation decisions:
// the cursor pins the tuple in force and the draw count pins the lottery
// stream's position, so the packets the destination delivers and drops
// are exactly the packets an unmigrated run would have.
//
// Live (stream-fed) sessions refuse to hand off — their trace source is
// an in-flight upload that cannot move with them; the caller leaves them
// or lets failover park them with ErrStreamGone.
func (m *Manager) Handoff(id string, drainTimeout time.Duration) (*FarmSnapshot, error) {
	s, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("emud: session %s not found", id)
	}
	cfg := s.Config()
	if cfg.Live != nil {
		return nil, fmt.Errorf("emud: session %s: %w: live sessions cannot hand off", id, ErrStreamGone)
	}
	if drainTimeout <= 0 {
		drainTimeout = m.opts.DrainTimeout
	}
	// Capture the relay spec before the drain: Stop detaches the relay.
	listen, target := s.RelaySpecArgs()
	wasRunning := s.State() == StateRunning
	s.Drain(drainTimeout)

	tuples := make([]TupleJSON, len(cfg.Trace))
	for i, t := range cfg.Trace {
		tuples[i] = tupleToJSON(t)
	}
	snap := &FarmSnapshot{
		TakenUnixNano: time.Now().UnixNano(),
		Traces:        map[string][]TupleJSON{cfg.TraceRef: tuples},
		Sessions: []SessionSnapshot{{
			ID:             s.ID,
			Name:           cfg.Name,
			TraceRef:       cfg.TraceRef,
			Loop:           cfg.Loop,
			TickUS:         cfg.Tick.Microseconds(),
			Seed:           cfg.Seed,
			InboundExtraNS: float64(cfg.InboundExtra),
			CompensationNS: float64(cfg.Compensation),
			Running:        wasRunning,
			Cursor:         s.Cursor(),
			Draws:          s.LotteryDraws(),
			RelayListen:    listen,
			RelayTarget:    target,
		}},
	}
	m.Delete(id)
	m.log.Info("session handed off", "session", id,
		"cursor", snap.Sessions[0].Cursor, "draws", snap.Sessions[0].Draws)
	return snap, nil
}

// Recover loads the snapshot at path and restores it into this farm.
// A missing file is not an error (first boot): it returns (0, nil).
func (m *Manager) Recover(path string) (int, error) {
	snap, err := LoadSnapshot(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	return m.Restore(snap)
}
