// The cluster coordinator: the control-plane head of a multi-worker emud
// farm. It consistent-hashes sessions across registered workers, probes
// each worker's /v1/health on a heartbeat, and holds a lease state
// machine per worker with hysteresis in both directions: a worker that
// misses probes is suspected (no new placements) before it is evicted
// (sessions failed over), and a suspect must answer several consecutive
// probes before it is trusted again. Eviction replays the dead worker's
// last pulled snapshot onto ring survivors; a planned drain live-migrates
// sessions one at a time via handoff, carrying the replay cursor and the
// drop-lottery draw count so modulation output is byte-identical across
// the move. The coordinator keeps no durable state of its own — if it
// dies, workers keep emulating and a restarted coordinator re-learns the
// farm from registration plus its first snapshot pulls; the only loss is
// placement memory for sessions created before the restart.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tracemod/internal/emud"
	"tracemod/internal/faults"
	"tracemod/internal/obs"
)

// Worker lease states. The zero value is Alive so a freshly registered
// worker is placeable immediately; the first missed probes demote it.
type WorkerState int

// The lease state machine: Alive -> Suspect -> Dead on missed probes
// (with Suspect -> Alive revival after RevivalProbes consecutive
// successes), and Alive -> Draining when the worker reports a planned
// shutdown. Dead is terminal: an evicted worker's sessions have already
// been failed over, so it must re-register to rejoin.
const (
	WorkerAlive WorkerState = iota
	WorkerSuspect
	WorkerDraining
	WorkerDead
)

func (s WorkerState) String() string {
	switch s {
	case WorkerAlive:
		return "alive"
	case WorkerSuspect:
		return "suspect"
	case WorkerDraining:
		return "draining"
	case WorkerDead:
		return "dead"
	}
	return fmt.Sprintf("state-%d", int(s))
}

// WorkerSpec names a worker and its base control-plane URL
// (e.g. http://127.0.0.1:7001).
type WorkerSpec struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// Defaults for Options fields left zero.
const (
	DefaultHeartbeatInterval = 1 * time.Second
	DefaultRevivalProbes     = 2
	DefaultFailoverP99       = 5 * time.Second
	DefaultDrainTimeout      = 5 * time.Second
)

// Options configures a Coordinator.
type Options struct {
	// Workers is the initial membership; more can Register later.
	Workers []WorkerSpec

	// HeartbeatInterval is the probe period (default 1s).
	HeartbeatInterval time.Duration
	// SuspectAfter is how long a worker may go unheard before new
	// placements stop (default 3x heartbeat).
	SuspectAfter time.Duration
	// EvictAfter is how long before a silent worker is declared dead and
	// its sessions failed over (default 10x heartbeat). The gap between
	// SuspectAfter and EvictAfter is the hysteresis that keeps a GC pause
	// or transient partition from triggering a full failover.
	EvictAfter time.Duration
	// RevivalProbes is how many consecutive successful probes a suspect
	// needs to be trusted with placements again (default 2).
	RevivalProbes int
	// ProbeTimeout bounds one health probe (default HeartbeatInterval).
	ProbeTimeout time.Duration
	// VirtualNodes per worker on the placement ring (default 64).
	VirtualNodes int
	// DrainTimeout bounds each per-session quiesce during live migration
	// (default 5s).
	DrainTimeout time.Duration
	// FailoverP99 is the failover-time-p99 SLO bound (default 5s).
	FailoverP99 time.Duration

	// Retry shapes coordinator->worker retries (restore, proxy). The
	// idempotency keys the proxy attaches make these safe.
	Retry faults.Backoff

	Faults  *faults.Injector
	Metrics *obs.Registry
	Logger  *slog.Logger
	// Client is the HTTP client for worker calls (default: a dedicated
	// client with sane timeouts).
	Client *http.Client
}

// The coordinator's fault points, all nil-safe no-ops until armed:
// cluster.probe forces heartbeat probes to fail (partition simulation),
// cluster.failover and cluster.migrate stall or mark their paths, and
// cluster.proxy injects transport errors into proxied control calls to
// exercise the retry+idempotency machinery.
var clusterFaultPoints = []string{
	"cluster.probe",
	"cluster.failover",
	"cluster.migrate",
	"cluster.proxy",
}

// worker is one member's lease record.
type worker struct {
	name, addr string
	state      WorkerState
	lastOK     time.Time
	okStreak   int
	// snap is the latest snapshot pulled from the worker; it is what
	// failover replays, so its age bounds how much a crash can lose.
	snap   *emud.FarmSnapshot
	snapAt time.Time
	// migrating guards the drain path against double-starting.
	migrating bool
}

// Coordinator runs the cluster control plane. Create with New, serve
// Handler(), stop with Close.
type Coordinator struct {
	opts   Options
	log    *slog.Logger
	client *http.Client
	inj    *faults.Injector
	ring   *Ring
	mux    *http.ServeMux

	slos         *obs.SLOSet
	failoverHist *obs.Histogram

	stateGauge   *obs.GaugeVec
	sessionGauge *obs.GaugeVec
	probeFails   *obs.CounterVec
	failovers    *obs.Counter
	failedOver   *obs.Counter
	lost         *obs.Counter
	migrated     *obs.Counter
	proxied      *obs.Counter
	proxyRetries *obs.Counter

	mu          sync.Mutex
	workers     map[string]*worker
	place       map[string]string // session ID -> worker name
	streamPlace map[string]string // stream name -> worker name
	idem        map[string]*idemEntry

	idemSeq atomic.Int64

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds a coordinator, registers the initial workers, and starts
// the heartbeat loop.
func New(opts Options) *Coordinator {
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if opts.SuspectAfter <= 0 {
		opts.SuspectAfter = 3 * opts.HeartbeatInterval
	}
	if opts.EvictAfter <= 0 {
		opts.EvictAfter = 10 * opts.HeartbeatInterval
	}
	if opts.EvictAfter < opts.SuspectAfter {
		opts.EvictAfter = opts.SuspectAfter
	}
	if opts.RevivalProbes <= 0 {
		opts.RevivalProbes = DefaultRevivalProbes
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = opts.HeartbeatInterval
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = DefaultDrainTimeout
	}
	if opts.FailoverP99 <= 0 {
		opts.FailoverP99 = DefaultFailoverP99
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	c := &Coordinator{
		opts:        opts,
		log:         opts.Logger.With("comp", "cluster"),
		client:      opts.Client,
		inj:         opts.Faults,
		ring:        NewRing(opts.VirtualNodes),
		workers:     make(map[string]*worker),
		place:       make(map[string]string),
		streamPlace: make(map[string]string),
		idem:        make(map[string]*idemEntry),
		done:        make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{Timeout: 60 * time.Second}
	}
	for _, name := range clusterFaultPoints {
		c.inj.Point(name)
	}
	reg := opts.Metrics
	c.failoverHist = reg.Histogram("tracemod_cluster_failover_seconds",
		"Per-session failover latency: eviction decision to restored on a survivor.",
		nil)
	c.stateGauge = reg.GaugeVec("tracemod_cluster_worker_state",
		"Worker lease state (0 alive, 1 suspect, 2 draining, 3 dead).", "worker")
	c.sessionGauge = reg.GaugeVec("tracemod_cluster_worker_sessions",
		"Sessions in the worker's last pulled snapshot.", "worker")
	c.probeFails = reg.CounterVec("tracemod_cluster_probe_failures_total",
		"Heartbeat probes that got no HTTP response.", "worker")
	c.failovers = reg.Counter("tracemod_cluster_failovers_total",
		"Workers evicted and failed over.")
	c.failedOver = reg.Counter("tracemod_cluster_sessions_failed_over_total",
		"Sessions replayed onto a survivor after a worker death.")
	c.lost = reg.Counter("tracemod_cluster_sessions_lost_total",
		"Sessions that could not be recovered during failover (no snapshot or no survivor).")
	c.migrated = reg.Counter("tracemod_cluster_sessions_migrated_total",
		"Sessions live-migrated off a draining worker.")
	c.proxied = reg.Counter("tracemod_cluster_proxied_requests_total",
		"Control-plane requests forwarded to workers.")
	c.proxyRetries = reg.Counter("tracemod_cluster_proxy_retries_total",
		"Proxied requests retried after a transport error.")

	c.slos = obs.NewSLOSet()
	c.slos.Add(&obs.SLO{
		Name:      "failover-time-p99",
		Help:      "99th percentile of per-session failover latency.",
		Kind:      obs.SLOQuantile,
		Hist:      c.failoverHist,
		Quantile:  0.99,
		Threshold: opts.FailoverP99,
	})
	c.slos.Add(&obs.SLO{
		Name:     "worker-availability",
		Help:     "At least half the registered, non-retired workers hold an alive lease.",
		Kind:     obs.SLORatio,
		Critical: true,
		Target:   0.5,
		Ratio:    c.availabilityRatio,
	})

	for _, ws := range opts.Workers {
		c.register(ws.Name, ws.Addr)
	}
	c.mux = c.buildMux()
	c.wg.Add(1)
	go c.heartbeatLoop()
	return c
}

// Close stops the heartbeat loop and waits for in-flight failover or
// migration goroutines.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
}

// Register adds (or re-adds) a worker with an alive lease. A worker
// evicted as dead must come back through here; re-registering an alive
// worker just updates its address.
func (c *Coordinator) Register(name, addr string) error {
	if name == "" || addr == "" {
		return fmt.Errorf("cluster: register needs name and addr")
	}
	c.register(name, addr)
	return nil
}

func (c *Coordinator) register(name, addr string) {
	c.mu.Lock()
	w := c.workers[name]
	if w == nil {
		w = &worker{name: name}
		c.workers[name] = w
	}
	w.addr = addr
	w.state = WorkerAlive
	w.lastOK = time.Now()
	w.okStreak = 0
	w.migrating = false
	c.ring.Add(name)
	c.stateGauge.With(name).Set(int64(WorkerAlive))
	c.mu.Unlock()
	c.log.Info("worker registered", "worker", name, "addr", addr)
}

// WorkerInfo is one worker's lease as reported by /v1/cluster.
type WorkerInfo struct {
	Name  string `json:"name"`
	Addr  string `json:"addr"`
	State string `json:"state"`
	// LastOKSec is seconds since the last successful probe.
	LastOKSec float64 `json:"last_ok_sec"`
	// SnapshotSessions / SnapshotAgeSec describe the cached failover
	// snapshot (what would be replayed if the worker died now).
	SnapshotSessions int     `json:"snapshot_sessions"`
	SnapshotAgeSec   float64 `json:"snapshot_age_sec,omitempty"`
	// Placed is how many sessions the placement map pins to this worker.
	Placed int `json:"placed_sessions"`
}

// Workers reports every known worker's lease.
func (c *Coordinator) Workers() []WorkerInfo {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	placed := make(map[string]int, len(c.workers))
	for _, wn := range c.place {
		placed[wn]++
	}
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		wi := WorkerInfo{
			Name:      w.name,
			Addr:      w.addr,
			State:     w.state.String(),
			LastOKSec: now.Sub(w.lastOK).Seconds(),
			Placed:    placed[w.name],
		}
		if w.snap != nil {
			wi.SnapshotSessions = len(w.snap.Sessions)
			wi.SnapshotAgeSec = now.Sub(w.snapAt).Seconds()
		}
		out = append(out, wi)
	}
	sortWorkerInfos(out)
	return out
}

func sortWorkerInfos(ws []WorkerInfo) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Name < ws[j-1].Name; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

// availabilityRatio is the worker-availability SLO indicator: alive
// leases over registered workers, dead ones included — a dead worker
// drags availability until an operator replaces it or re-registers it.
func (c *Coordinator) availabilityRatio() (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.workers) == 0 {
		return 0, false
	}
	alive := 0
	for _, w := range c.workers {
		if w.state == WorkerAlive {
			alive++
		}
	}
	return float64(alive) / float64(len(c.workers)), true
}

func (c *Coordinator) heartbeatLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.Tick()
		}
	}
}

// Tick runs one heartbeat round: probe every non-dead worker
// concurrently, then fold the results into the lease state machine.
// Exported so tests can drive the clock deterministically.
func (c *Coordinator) Tick() {
	c.mu.Lock()
	targets := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		if w.state != WorkerDead {
			targets = append(targets, w)
		}
	}
	c.mu.Unlock()

	type result struct {
		name     string
		ok       bool
		draining bool
		snap     *emud.FarmSnapshot
	}
	results := make([]result, len(targets))
	var wg sync.WaitGroup
	for i, w := range targets {
		wg.Add(1)
		go func(i int, name, addr string) {
			defer wg.Done()
			ok, draining, snap := c.probe(name, addr)
			results[i] = result{name: name, ok: ok, draining: draining, snap: snap}
		}(i, w.name, w.addr)
	}
	wg.Wait()
	for _, r := range results {
		c.noteProbe(r.name, r.ok, r.draining, r.snap)
	}
}

// probe asks one worker for its health and, when it answers, pulls its
// snapshot so the failover cache stays fresh. Any HTTP response — even a
// 503 from an overloaded or draining farm — counts as alive; only a
// transport failure counts as a missed heartbeat. The cluster.probe
// fault point simulates a partition by failing the probe outright.
func (c *Coordinator) probe(name, addr string) (ok, draining bool, snap *emud.FarmSnapshot) {
	if pt := c.inj.Point("cluster.probe"); pt != nil && pt.Fire() {
		pt.Stall()
		return false, false, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/health", nil)
	if err != nil {
		return false, false, nil
	}
	res, err := c.client.Do(req)
	if err != nil {
		c.probeFails.With(name).Inc()
		return false, false, nil
	}
	var hi emud.HealthInfo
	derr := json.NewDecoder(io.LimitReader(res.Body, 1<<20)).Decode(&hi)
	res.Body.Close()
	if derr == nil {
		draining = hi.Draining || hi.Status == "draining"
	}
	snap = c.pullSnapshot(ctx, addr)
	return true, draining, snap
}

func (c *Coordinator) pullSnapshot(ctx context.Context, addr string) *emud.FarmSnapshot {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/snapshot", nil)
	if err != nil {
		return nil
	}
	res, err := c.client.Do(req)
	if err != nil {
		return nil
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil
	}
	var snap emud.FarmSnapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		return nil
	}
	return &snap
}

// noteProbe folds one probe result into the lease state machine.
func (c *Coordinator) noteProbe(name string, ok, draining bool, snap *emud.FarmSnapshot) {
	now := time.Now()
	var evict, migrate bool
	c.mu.Lock()
	w := c.workers[name]
	if w == nil || w.state == WorkerDead {
		c.mu.Unlock()
		return
	}
	if ok {
		if snap != nil {
			w.snap, w.snapAt = snap, now
			c.sessionGauge.With(name).Set(int64(len(snap.Sessions)))
		}
		w.lastOK = now
		w.okStreak++
		switch {
		case draining && w.state != WorkerDraining:
			w.state = WorkerDraining
			c.ring.Remove(name)
			migrate = true
		case !draining && w.state == WorkerSuspect && w.okStreak >= c.opts.RevivalProbes:
			w.state = WorkerAlive
			c.ring.Add(name)
			c.log.Info("worker revived", "worker", name, "streak", w.okStreak)
		case !draining && w.state == WorkerDraining:
			// The process came back without the draining flag — it was
			// restarted fresh. Trust it again.
			w.state = WorkerAlive
			w.migrating = false
			c.ring.Add(name)
			c.log.Info("worker back from drain", "worker", name)
		}
	} else {
		w.okStreak = 0
		silent := now.Sub(w.lastOK)
		switch {
		case silent >= c.opts.EvictAfter:
			w.state = WorkerDead
			c.ring.Remove(name)
			evict = true
		case silent >= c.opts.SuspectAfter && w.state == WorkerAlive:
			w.state = WorkerSuspect
			c.ring.Remove(name)
			c.log.Warn("worker suspected", "worker", name, "silent", silent)
		}
	}
	c.stateGauge.With(name).Set(int64(w.state))
	c.mu.Unlock()

	if evict {
		c.log.Error("worker evicted", "worker", name)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.failoverWorker(name)
		}()
	}
	if migrate {
		c.log.Info("worker draining: migrating sessions", "worker", name)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.migrateWorker(name)
		}()
	}
}

// singleSnapshot carves one session (and the trace it references) out of
// a farm snapshot so it can be restored alone on another worker.
func singleSnapshot(snap *emud.FarmSnapshot, ss emud.SessionSnapshot) *emud.FarmSnapshot {
	sub := &emud.FarmSnapshot{
		TakenUnixNano: snap.TakenUnixNano,
		Traces:        make(map[string][]emud.TupleJSON, 1),
		Sessions:      []emud.SessionSnapshot{ss},
	}
	if t, ok := snap.Traces[ss.TraceRef]; ok {
		sub.Traces[ss.TraceRef] = t
	}
	return sub
}

// failoverWorker replays a dead worker's cached snapshot onto ring
// survivors, one session at a time, observing per-session latency into
// the failover-time-p99 SLO. Sessions the cache never saw (created after
// the last pull, or the cache is empty) are lost and counted as such;
// sessions whose state restores but cannot run (live streams whose WAL
// died with the worker) park on the survivor with a typed error rather
// than vanishing.
func (c *Coordinator) failoverWorker(name string) {
	if pt := c.inj.Point("cluster.failover"); pt != nil {
		pt.Mark()
		pt.Stall()
	}
	c.failovers.Inc()

	c.mu.Lock()
	w := c.workers[name]
	var snap *emud.FarmSnapshot
	if w != nil {
		snap = w.snap
	}
	owned := make([]string, 0)
	for id, wn := range c.place {
		if wn == name {
			owned = append(owned, id)
		}
	}
	// The dead worker's streams are gone with its WAL directory; drop
	// their placements so routes 404 instead of 502-ing forever.
	lostStreams := 0
	for sn, wn := range c.streamPlace {
		if wn == name {
			delete(c.streamPlace, sn)
			lostStreams++
		}
	}
	c.mu.Unlock()

	inSnap := make(map[string]emud.SessionSnapshot)
	if snap != nil {
		for _, ss := range snap.Sessions {
			inSnap[ss.ID] = ss
		}
	}
	lost := 0
	for _, id := range owned {
		if _, ok := inSnap[id]; !ok {
			lost++
			c.mu.Lock()
			delete(c.place, id)
			c.mu.Unlock()
		}
	}

	moved := 0
	for id, ss := range inSnap {
		began := time.Now()
		target, addr, ok := c.pickAlive(id)
		if !ok {
			lost++
			c.mu.Lock()
			delete(c.place, id)
			c.mu.Unlock()
			continue
		}
		if err := c.postRestore(addr, singleSnapshot(snap, ss)); err != nil {
			c.log.Error("failover restore failed", "session", id, "target", target, "err", err)
			lost++
			c.mu.Lock()
			delete(c.place, id)
			c.mu.Unlock()
			continue
		}
		moved++
		c.failoverHist.Observe(time.Since(began))
		c.mu.Lock()
		c.place[id] = target
		c.mu.Unlock()
	}
	c.failedOver.Add(int64(moved))
	c.lost.Add(int64(lost))
	c.log.Info("failover complete", "worker", name,
		"moved", moved, "lost", lost, "streams_lost", lostStreams)
}

// pickAlive places key on the ring and resolves the member's address.
func (c *Coordinator) pickAlive(key string) (name, addr string, ok bool) {
	name, ok = c.ring.Get(key)
	if !ok {
		return "", "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[name]
	if w == nil {
		return "", "", false
	}
	return name, w.addr, true
}

// postRestore POSTs a snapshot to a worker's /v1/restore with retries.
// A parked session (RestoreResult.Error set but Restored > 0) counts as
// success: the session exists on the target with a typed error, which is
// the designed degraded outcome for unrecoverable state.
func (c *Coordinator) postRestore(addr string, snap *emud.FarmSnapshot) error {
	body, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	return c.opts.Retry.Do(func() error {
		res, err := c.client.Post(addr+"/v1/restore", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer res.Body.Close()
		var rr emud.RestoreResult
		_ = json.NewDecoder(io.LimitReader(res.Body, 1<<20)).Decode(&rr)
		if rr.Restored == 0 {
			return faults.Permanent(fmt.Errorf("restore rejected (%d): %s", res.StatusCode, rr.Error))
		}
		return nil
	})
}

// DrainWorker live-migrates every session off a worker: tell the worker
// to stop admitting (POST /v1/drain), then hand each session off —
// quiesce, snapshot with cursor and draw count, delete — and restore it
// on a ring survivor. Because the handoff carries both the tuple cursor
// (SkipTuples) and the lottery position (SkipDraws), the migrated
// session's modulation decisions continue exactly where the source
// stopped: byte-identical to never having moved. Live stream-fed
// sessions cannot move (their WAL is the worker's) and are skipped.
func (c *Coordinator) DrainWorker(name string) (moved, skipped int, err error) {
	c.mu.Lock()
	w := c.workers[name]
	if w == nil {
		c.mu.Unlock()
		return 0, 0, fmt.Errorf("cluster: unknown worker %q", name)
	}
	if w.state == WorkerDead {
		c.mu.Unlock()
		return 0, 0, fmt.Errorf("cluster: worker %q is dead", name)
	}
	addr := w.addr
	if w.state != WorkerDraining {
		w.state = WorkerDraining
		c.ring.Remove(name)
		c.stateGauge.With(name).Set(int64(WorkerDraining))
	}
	c.mu.Unlock()

	// Flip the worker's admission gate first so nothing lands behind the
	// migration sweep.
	err = c.opts.Retry.Do(func() error {
		res, derr := c.client.Post(addr+"/v1/drain", "application/json", nil)
		if derr != nil {
			return derr
		}
		res.Body.Close()
		return nil
	})
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: drain %s: %w", name, err)
	}
	return c.migrateWorker(name)
}

// migrateWorker moves every migratable session off an already-draining
// worker. Also triggered asynchronously when a probe discovers the
// worker drains itself (SIGTERM path).
func (c *Coordinator) migrateWorker(name string) (moved, skipped int, err error) {
	c.mu.Lock()
	w := c.workers[name]
	if w == nil {
		c.mu.Unlock()
		return 0, 0, fmt.Errorf("cluster: unknown worker %q", name)
	}
	if w.migrating {
		c.mu.Unlock()
		return 0, 0, nil
	}
	w.migrating = true
	addr := w.addr
	c.mu.Unlock()

	if pt := c.inj.Point("cluster.migrate"); pt != nil {
		pt.Mark()
		pt.Stall()
	}

	var infos []emud.SessionInfo
	err = c.opts.Retry.Do(func() error {
		res, gerr := c.client.Get(addr + "/v1/sessions")
		if gerr != nil {
			return gerr
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			return faults.Permanent(fmt.Errorf("list sessions: HTTP %d", res.StatusCode))
		}
		return json.NewDecoder(res.Body).Decode(&infos)
	})
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: migrate %s: %w", name, err)
	}

	drain := c.opts.DrainTimeout
	for _, si := range infos {
		if si.Live {
			// A stream-fed session's trace source is the worker's WAL;
			// it cannot hand off. It stays until the worker exits, then
			// parks via the failover path if the stream is gone.
			skipped++
			continue
		}
		snap, herr := c.handoffSession(addr, si.ID, drain)
		if herr != nil {
			c.log.Warn("handoff refused", "session", si.ID, "err", herr)
			skipped++
			continue
		}
		target, taddr, ok := c.pickAlive(si.ID)
		if !ok {
			// No survivor to land on: the session has already been
			// quiesced and deleted from the source, so its state lives
			// only in this snapshot now. Count it lost.
			c.lost.Inc()
			c.log.Error("no migration target; session lost", "session", si.ID)
			continue
		}
		if rerr := c.postRestore(taddr, snap); rerr != nil {
			c.lost.Inc()
			c.log.Error("migration restore failed", "session", si.ID, "target", target, "err", rerr)
			c.mu.Lock()
			delete(c.place, si.ID)
			c.mu.Unlock()
			continue
		}
		moved++
		c.migrated.Inc()
		c.mu.Lock()
		c.place[si.ID] = target
		c.mu.Unlock()
		c.log.Info("session migrated", "session", si.ID, "from", name, "to", target)
	}
	return moved, skipped, nil
}

// handoffSession quiesces one session on the source worker and returns
// its single-session snapshot (cursor and draw count included).
func (c *Coordinator) handoffSession(addr, id string, drain time.Duration) (*emud.FarmSnapshot, error) {
	var snap emud.FarmSnapshot
	err := c.opts.Retry.Do(func() error {
		url := fmt.Sprintf("%s/v1/sessions/%s/handoff?drain=%s", addr, id, drain)
		res, err := c.client.Post(url, "application/json", nil)
		if err != nil {
			return err
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(res.Body, 4096))
			return faults.Permanent(fmt.Errorf("handoff HTTP %d: %s", res.StatusCode, b))
		}
		return json.NewDecoder(res.Body).Decode(&snap)
	})
	if err != nil {
		return nil, err
	}
	return &snap, nil
}
