// Consistent-hash ring for session placement. Each member contributes a
// fixed number of virtual nodes hashed onto a 64-bit circle; a key is
// placed on the first virtual node clockwise from its own hash. Adding or
// removing one member therefore moves only ~1/N of the keyspace, which is
// what keeps failover cheap: when a worker dies, only its sessions move,
// and they scatter roughly evenly over the survivors instead of piling
// onto one.
package cluster

import (
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-member vnode count when Options leaves
// it zero. 64 keeps the placement spread within a few percent of even for
// small farms without making membership changes expensive.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over named members. All methods are
// safe for concurrent use.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	keys    []uint64          // sorted vnode hashes
	owner   map[uint64]string // vnode hash -> member name
	members map[string]struct{}
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<= 0 means DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{
		vnodes:  vnodes,
		owner:   make(map[uint64]string),
		members: make(map[string]struct{}),
	}
}

// mix64 is a Murmur3-style avalanche finalizer. Raw FNV-1a of short
// strings that differ only in their trailing bytes ("w1#0".."w1#63",
// "s-000001"..) clusters into narrow arcs of the circle — each member's
// vnodes land side by side and the spread collapses. The finalizer
// diffuses every input bit across the whole word.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

func vnodeKey(name string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{'#', byte(i), byte(i >> 8)})
	return mix64(h.Sum64())
}

// Add inserts a member. Adding a present member is a no-op.
func (r *Ring) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[name]; ok {
		return
	}
	r.members[name] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		k := vnodeKey(name, i)
		if _, taken := r.owner[k]; taken {
			// A 64-bit collision between distinct members' vnodes;
			// vanishingly rare, and dropping one vnode only skews the
			// spread by 1/vnodes.
			continue
		}
		r.owner[k] = name
		r.keys = append(r.keys, k)
	}
	sort.Slice(r.keys, func(i, j int) bool { return r.keys[i] < r.keys[j] })
}

// Remove deletes a member. Removing an absent member is a no-op.
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[name]; !ok {
		return
	}
	delete(r.members, name)
	kept := r.keys[:0]
	for _, k := range r.keys {
		if r.owner[k] == name {
			delete(r.owner, k)
			continue
		}
		kept = append(kept, k)
	}
	r.keys = kept
}

// Has reports whether name is a member.
func (r *Ring) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.members[name]
	return ok
}

// Len is the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Get places key on the ring: the owner of the first virtual node
// clockwise from the key's hash. Returns ok=false on an empty ring.
func (r *Ring) Get(key string) (string, bool) {
	return r.GetExcluding(key, nil)
}

// GetExcluding places key like Get but skips excluded members — used to
// pick a failover target that is not the worker being evicted (the ring
// may not have been updated yet when the caller races eviction).
func (r *Ring) GetExcluding(key string, exclude map[string]struct{}) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.keys) == 0 {
		return "", false
	}
	h := hash64(key)
	start := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= h })
	// Walk clockwise past excluded members; a full lap means every
	// member is excluded.
	for i := 0; i < len(r.keys); i++ {
		k := r.keys[(start+i)%len(r.keys)]
		m := r.owner[k]
		if _, skip := exclude[m]; skip {
			continue
		}
		return m, true
	}
	return "", false
}
