//go:build chaos

// The cluster chaos scenario: a three-worker farm under live relay
// traffic loses one worker to a kill -9. The coordinator must suspect,
// evict, and fail the dead worker's sessions over to the survivors — and
// every failed-over session must resume from exactly the cursor and
// drop-lottery position in the coordinator's last pulled snapshot, with
// its relay rebound so the (oblivious) traffic sources keep flowing.
//
// Run with: go test -race -tags=chaos ./internal/emud/cluster/...
package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tracemod/internal/emud"
	"tracemod/internal/faults"
	"tracemod/internal/obs"
)

const (
	chaosWorkers  = 3
	chaosSessions = 9
)

func TestChaosWorkerKillUnderRelayTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not short")
	}

	workers := make([]*testWorker, 0, chaosWorkers)
	specs := make([]WorkerSpec, 0, chaosWorkers)
	for i := 0; i < chaosWorkers; i++ {
		w := newTestWorker(t, fmt.Sprintf("w%d", i+1))
		workers = append(workers, w)
		specs = append(specs, WorkerSpec{Name: w.name, Addr: w.srv.URL})
	}
	c := New(Options{
		Workers:           specs,
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectAfter:      60 * time.Millisecond,
		EvictAfter:        150 * time.Millisecond,
		ProbeTimeout:      500 * time.Millisecond,
		RevivalProbes:     2,
		DrainTimeout:      2 * time.Second,
		Retry:             faults.Backoff{Attempts: 4, Base: time.Millisecond, Max: 10 * time.Millisecond},
		Faults:            faults.New(faults.Options{Seed: 42}),
		Metrics:           obs.NewRegistry(),
	})
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// A UDP sink for all relays to forward toward.
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	go func() {
		buf := make([]byte, 2048)
		for {
			if _, _, err := sink.ReadFromUDP(buf); err != nil {
				return
			}
		}
	}()

	// Sessions replay a 600-tuple trace (100 ms per tuple, looped) so the
	// cursor genuinely advances during the test, each with a live relay.
	tuples := make([]emud.TupleJSON, 600)
	for i := range tuples {
		tuples[i] = emud.TupleJSON{DurationSec: 0.1, LatencyMS: 1, Loss: 0.2}
	}
	type sess struct {
		id    string
		relay string
	}
	sessions := make([]sess, 0, chaosSessions)
	for i := 0; i < chaosSessions; i++ {
		req := emud.SessionRequest{
			Name:   fmt.Sprintf("chaos-%d", i),
			Inline: tuples,
			Seed:   int64(1000 + i),
			Relay: &emud.RelaySpec{
				Listen: "127.0.0.1:0",
				Target: sink.LocalAddr().String(),
			},
		}
		res, raw := postJSON(t, srv.URL+"/v1/sessions", req, nil)
		if res.StatusCode != http.StatusCreated {
			t.Fatalf("create %d = %d: %s", i, res.StatusCode, raw)
		}
		var si emud.SessionInfo
		if err := json.Unmarshal(raw, &si); err != nil {
			t.Fatal(err)
		}
		if si.RelayAddr == "" {
			t.Fatalf("session %s has no relay address", si.ID)
		}
		sessions = append(sessions, sess{id: si.ID, relay: si.RelayAddr})
	}

	// Pump UDP traffic at every relay for the whole scenario, including
	// across the kill: the sources are oblivious to the failover. Send
	// errors are expected while a relay is dead and are ignored.
	stop := make(chan struct{})
	defer close(stop)
	var sent atomic.Int64
	for _, s := range sessions {
		go func(addr string) {
			conn, err := net.Dial("udp", addr)
			if err != nil {
				return
			}
			defer conn.Close()
			pkt := make([]byte, 256)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := conn.Write(pkt); err == nil {
					sent.Add(1)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(s.relay)
	}

	// Let traffic flow and heartbeats pull a few snapshot generations.
	time.Sleep(300 * time.Millisecond)
	if sent.Load() == 0 {
		t.Fatal("no relay traffic flowed before the kill")
	}

	// Pick the worker owning the most sessions and kill it: HTTP gone,
	// farm torn down, relay sockets released — the process is dead.
	counts := make(map[int]int)
	for _, s := range sessions {
		for i, w := range workers {
			if strings.HasPrefix(s.id, w.name+"-") {
				counts[i]++
			}
		}
	}
	victim, best := 0, -1
	for i, n := range counts {
		if n > best {
			victim, best = i, n
		}
	}
	dead := workers[victim]
	if best < 1 {
		t.Fatalf("victim %s owns no sessions; placement: %v", dead.name, counts)
	}
	t.Logf("killing %s with %d of %d sessions", dead.name, best, len(sessions))

	dead.srv.Close()
	dead.m.Close()

	// The lease machinery must notice, evict, and land every cached
	// session on a survivor.
	waitFor(t, 10*time.Second, "victim eviction", func() bool {
		return c.workerState(dead.name) == WorkerDead
	})
	// The coordinator's failover contract replays the last pulled
	// snapshot. Read the cache only now: once the worker is unreachable
	// no probe can refresh it, so this is exactly what failover replays
	// (reading it before the kill would race one final in-flight pull).
	c.mu.Lock()
	cached := c.workers[dead.name].snap
	c.mu.Unlock()
	if cached == nil || len(cached.Sessions) != best {
		t.Fatalf("snapshot cache for %s holds %v sessions, want %d",
			dead.name, cached, best)
	}
	survivors := make([]*testWorker, 0, len(workers)-1)
	for i, w := range workers {
		if i != victim {
			survivors = append(survivors, w)
		}
	}
	find := func(id string) (*emud.Session, bool) {
		for _, w := range survivors {
			if s, ok := w.m.Get(id); ok {
				return s, true
			}
		}
		return nil, false
	}
	waitFor(t, 10*time.Second, "failover to land every session", func() bool {
		for _, ss := range cached.Sessions {
			if _, ok := find(ss.ID); !ok {
				return false
			}
		}
		return true
	})

	// Cursor-exact resume: each restored session's replay position and
	// drop-lottery position must equal the snapshot's, to the tuple and
	// to the draw.
	for _, ss := range cached.Sessions {
		s, _ := find(ss.ID)
		cfg := s.Config()
		if cfg.SkipTuples != ss.Cursor {
			t.Errorf("session %s resumed at cursor %d, snapshot says %d",
				ss.ID, cfg.SkipTuples, ss.Cursor)
		}
		if cfg.SkipDraws != ss.Draws {
			t.Errorf("session %s resumed at draw %d, snapshot says %d",
				ss.ID, cfg.SkipDraws, ss.Draws)
		}
		if ss.Running && s.State() != emud.StateRunning {
			t.Errorf("session %s is %v after failover, want running", ss.ID, s.State())
		}
		if s.Cursor() < ss.Cursor {
			t.Errorf("session %s cursor regressed: %d < snapshot %d",
				ss.ID, s.Cursor(), ss.Cursor)
		}
	}

	// The relays rebound on the survivors at their original addresses, so
	// the oblivious traffic sources reconverge: failed-over sessions must
	// see new packets.
	waitFor(t, 10*time.Second, "relay traffic to resume on survivors", func() bool {
		for _, ss := range cached.Sessions {
			if !ss.Running {
				continue
			}
			s, ok := find(ss.ID)
			if !ok || s.Stats().Submitted == 0 {
				return false
			}
		}
		return true
	})

	// Every session the cluster ever admitted is accounted for in the
	// aggregate view, and the control plane still admits new work.
	res, err := http.Get(srv.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list []emud.SessionInfo
	if err := json.NewDecoder(res.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(list) != len(sessions) {
		t.Fatalf("aggregate lists %d sessions after failover, want %d", len(list), len(sessions))
	}
	cres, craw := postJSON(t, srv.URL+"/v1/sessions", inlineSession("post-chaos", 99), nil)
	if cres.StatusCode != http.StatusCreated {
		t.Fatalf("create after failover = %d: %s", cres.StatusCode, craw)
	}
	t.Logf("chaos: %d sessions failed over, %d packets sent, farm still admitting",
		best, sent.Load())
}
