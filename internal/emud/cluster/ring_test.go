package cluster

import (
	"fmt"
	"testing"
)

func TestRingPlacementIsStable(t *testing.T) {
	r := NewRing(64)
	for _, m := range []string{"w1", "w2", "w3"} {
		r.Add(m)
	}
	first := make(map[string]string)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("s-%06d", i)
		m, ok := r.Get(k)
		if !ok {
			t.Fatalf("Get(%s) found nothing on a 3-member ring", k)
		}
		first[k] = m
	}
	// The defining consistent-hashing property: removing one member moves
	// only that member's keys.
	r.Remove("w2")
	moved := 0
	for k, was := range first {
		now, ok := r.Get(k)
		if !ok {
			t.Fatalf("Get(%s) found nothing after removal", k)
		}
		if was == "w2" {
			if now == "w2" {
				t.Fatalf("%s still placed on removed member", k)
			}
			moved++
			continue
		}
		if now != was {
			t.Fatalf("%s moved %s -> %s though its owner survived", k, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("w2 owned no keys out of 200; ring spread is broken")
	}
}

func TestRingSpread(t *testing.T) {
	r := NewRing(64)
	members := []string{"a", "b", "c", "d"}
	for _, m := range members {
		r.Add(m)
	}
	counts := make(map[string]int)
	const n = 4000
	for i := 0; i < n; i++ {
		m, _ := r.Get(fmt.Sprintf("key-%d", i))
		counts[m]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / n
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("member %s owns %.0f%% of keys; spread too skewed: %v",
				m, frac*100, counts)
		}
	}
}

func TestRingExcludingAndEmpty(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Get("x"); ok {
		t.Fatal("empty ring placed a key")
	}
	r.Add("w1")
	r.Add("w2")
	owner, _ := r.Get("some-session")
	other, ok := r.GetExcluding("some-session", map[string]struct{}{owner: {}})
	if !ok || other == owner {
		t.Fatalf("GetExcluding returned %q (ok=%v), want the other member", other, ok)
	}
	all := map[string]struct{}{"w1": {}, "w2": {}}
	if _, ok := r.GetExcluding("some-session", all); ok {
		t.Fatal("fully excluded ring still placed a key")
	}
	r.Remove("w1")
	r.Remove("w2")
	if r.Len() != 0 {
		t.Fatalf("Len = %d after removing all", r.Len())
	}
	if _, ok := r.Get("x"); ok {
		t.Fatal("drained ring placed a key")
	}
}
