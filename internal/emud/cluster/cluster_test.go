package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tracemod/internal/emud"
	"tracemod/internal/faults"
	"tracemod/internal/obs"
)

// testWorker is one in-process emud worker: a manager plus its HTTP API.
type testWorker struct {
	name string
	m    *emud.Manager
	srv  *httptest.Server
}

func newTestWorker(t *testing.T, name string) *testWorker {
	t.Helper()
	reg := obs.NewRegistry()
	m := emud.NewManager(emud.Options{
		Metrics:         reg,
		Granularity:     time.Millisecond,
		SessionIDPrefix: name + "-",
	})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(emud.NewAPI(m, reg, obs.NewRingTracer(128)).Handler())
	t.Cleanup(srv.Close)
	return &testWorker{name: name, m: m, srv: srv}
}

// newTestCluster builds a coordinator over the given workers with manual
// heartbeats: the loop period is an hour, so every probe round happens
// via an explicit Tick() and the lease clock is driven by real sleeps
// against small Suspect/Evict windows.
func newTestCluster(t *testing.T, workers ...*testWorker) (*Coordinator, *httptest.Server) {
	t.Helper()
	specs := make([]WorkerSpec, 0, len(workers))
	for _, w := range workers {
		specs = append(specs, WorkerSpec{Name: w.name, Addr: w.srv.URL})
	}
	c := New(Options{
		Workers:           specs,
		HeartbeatInterval: time.Hour, // tests call Tick() explicitly
		ProbeTimeout:      2 * time.Second,
		SuspectAfter:      150 * time.Millisecond,
		EvictAfter:        400 * time.Millisecond,
		RevivalProbes:     2,
		DrainTimeout:      2 * time.Second,
		Retry:             faults.Backoff{Attempts: 3, Base: time.Millisecond, Max: 5 * time.Millisecond},
		Faults:            faults.New(faults.Options{Seed: 11}),
		Metrics:           obs.NewRegistry(),
	})
	t.Cleanup(c.Close)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

func postJSON(t *testing.T, url string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(http.MethodPost, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, _ := io.ReadAll(res.Body)
	return res, raw
}

func inlineSession(name string, seed int64) emud.SessionRequest {
	return emud.SessionRequest{
		Name: name,
		Inline: []emud.TupleJSON{
			{DurationSec: 3600, Loss: 0.3},
		},
		TickUS: -1, // exact scheduling: no quantization battles in tests
		Seed:   seed,
	}
}

func TestProxyCreateRouteDelete(t *testing.T) {
	w1 := newTestWorker(t, "w1")
	w2 := newTestWorker(t, "w2")
	c, srv := newTestCluster(t, w1, w2)

	var made []emud.SessionInfo
	for i := 0; i < 6; i++ {
		res, raw := postJSON(t, srv.URL+"/v1/sessions", inlineSession(fmt.Sprintf("s%d", i), int64(i)), nil)
		if res.StatusCode != http.StatusCreated {
			t.Fatalf("create %d = %d: %s", i, res.StatusCode, raw)
		}
		var si emud.SessionInfo
		if err := json.Unmarshal(raw, &si); err != nil {
			t.Fatal(err)
		}
		made = append(made, si)
	}
	if n := w1.m.Count() + w2.m.Count(); n != 6 {
		t.Fatalf("farm holds %d sessions, want 6", n)
	}

	// Worker-prefixed IDs prove which farm each create landed on, and the
	// placement map must agree.
	for _, si := range made {
		c.mu.Lock()
		owner := c.place[si.ID]
		c.mu.Unlock()
		if !strings.HasPrefix(si.ID, owner+"-") {
			t.Fatalf("session %s placed on %q", si.ID, owner)
		}
		res, err := http.Get(srv.URL + "/v1/sessions/" + si.ID)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET %s via proxy = %d", si.ID, res.StatusCode)
		}
	}

	var list []emud.SessionInfo
	res, err := http.Get(srv.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 6 {
		t.Fatalf("aggregate list has %d sessions, want 6: %s", len(list), raw)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sessions/"+made[0].ID, nil)
	dres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dres.Body.Close()
	if dres.StatusCode != http.StatusNoContent {
		t.Fatalf("proxied delete = %d", dres.StatusCode)
	}
	c.mu.Lock()
	_, still := c.place[made[0].ID]
	c.mu.Unlock()
	if still {
		t.Fatal("placement survived delete")
	}
}

func TestIdempotentCreateNeverDoubleCreates(t *testing.T) {
	w1 := newTestWorker(t, "w1")
	w2 := newTestWorker(t, "w2")
	_, srv := newTestCluster(t, w1, w2)

	hdr := map[string]string{"Idempotency-Key": "client-key-1"}
	ids := make([]string, 0, 10)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, raw := postJSON(t, srv.URL+"/v1/sessions", inlineSession("dup", 1), hdr)
			if res.StatusCode != http.StatusCreated {
				t.Errorf("idempotent create = %d: %s", res.StatusCode, raw)
				return
			}
			var si emud.SessionInfo
			if err := json.Unmarshal(raw, &si); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			ids = append(ids, si.ID)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(ids) != 10 {
		t.Fatalf("%d successful creates, want 10", len(ids))
	}
	for _, id := range ids {
		if id != ids[0] {
			t.Fatalf("retries returned different IDs: %v", ids)
		}
	}
	if n := w1.m.Count() + w2.m.Count(); n != 1 {
		t.Fatalf("farm holds %d sessions after 10 retried creates, want 1", n)
	}
}

func TestProxyRetriesTransportFaults(t *testing.T) {
	w1 := newTestWorker(t, "w1")
	c, srv := newTestCluster(t, w1)

	// Every forward attempt fails: the create must exhaust its backoff
	// budget and surface a 502, leaving nothing on the worker.
	c.inj.Set("cluster.proxy", faults.Config{Rate: 1})
	res, raw := postJSON(t, srv.URL+"/v1/sessions", inlineSession("r", 1),
		map[string]string{"Idempotency-Key": "retry-key"})
	if res.StatusCode != http.StatusBadGateway {
		t.Fatalf("create under total fault = %d: %s", res.StatusCode, raw)
	}
	if w1.m.Count() != 0 {
		t.Fatalf("worker holds %d sessions after failed create", w1.m.Count())
	}
	if c.proxyRetries.Load() == 0 {
		t.Fatal("no retries recorded under injected transport faults")
	}

	// Heal the path and retry the same key: the failure must have been
	// forgotten (not cached), so this attempt executes and succeeds.
	c.inj.Reset()
	res, raw = postJSON(t, srv.URL+"/v1/sessions", inlineSession("r", 1),
		map[string]string{"Idempotency-Key": "retry-key"})
	if res.StatusCode != http.StatusCreated {
		t.Fatalf("create after heal = %d: %s", res.StatusCode, raw)
	}
	if w1.m.Count() != 1 {
		t.Fatalf("worker holds %d sessions, want 1", w1.m.Count())
	}
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLeaseSuspectEvictFailover(t *testing.T) {
	w1 := newTestWorker(t, "w1")
	w2 := newTestWorker(t, "w2")
	c, srv := newTestCluster(t, w1, w2)

	// Pick idempotency keys that provably spread across both workers —
	// placement hashes the key, so the test chooses keys whose ring
	// position is known instead of hoping random keys scatter.
	keys := placementKeys(t, c, map[string]int{"w1": 2, "w2": 2})
	ids := make([]string, 0, 4)
	for i, key := range keys {
		res, raw := postJSON(t, srv.URL+"/v1/sessions", inlineSession(fmt.Sprintf("f%d", i), int64(i)),
			map[string]string{"Idempotency-Key": key})
		if res.StatusCode != http.StatusCreated {
			t.Fatalf("create = %d: %s", res.StatusCode, raw)
		}
		var si emud.SessionInfo
		if err := json.Unmarshal(raw, &si); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, si.ID)
	}
	c.Tick() // pull snapshots so the failover cache knows every session

	// Kill w1 (kill -9: the HTTP server vanishes; the manager is simply
	// abandoned, like a dead process).
	w1.srv.Close()
	w1Sessions := make([]string, 0)
	for _, id := range ids {
		if strings.HasPrefix(id, "w1-") {
			w1Sessions = append(w1Sessions, id)
		}
	}
	if len(w1Sessions) == 0 || len(w1Sessions) == len(ids) {
		t.Fatalf("placement did not spread across workers: %v", ids)
	}

	// First missed probe: nothing yet (lastOK is fresh).
	c.Tick()
	if st := c.workerState("w1"); st != WorkerAlive {
		t.Fatalf("w1 = %v right after dying, want alive (hysteresis)", st)
	}
	// Past the suspicion window: no placements, no eviction.
	time.Sleep(200 * time.Millisecond)
	c.Tick()
	if st := c.workerState("w1"); st != WorkerSuspect {
		t.Fatalf("w1 = %v past suspect window, want suspect", st)
	}
	if c.ring.Has("w1") {
		t.Fatal("suspect worker still on the placement ring")
	}
	// Past the eviction window: dead, and its sessions replay on w2 with
	// their exact cursors.
	time.Sleep(250 * time.Millisecond)
	c.Tick()
	if st := c.workerState("w1"); st != WorkerDead {
		t.Fatalf("w1 = %v past evict window, want dead", st)
	}
	waitFor(t, 2*time.Second, "failover to land", func() bool {
		for _, id := range w1Sessions {
			if _, ok := w2.m.Get(id); !ok {
				return false
			}
		}
		return true
	})
	for _, id := range w1Sessions {
		s, _ := w2.m.Get(id)
		if s.State() != emud.StateRunning {
			t.Fatalf("failed-over session %s is %v, want running", id, s.State())
		}
		c.mu.Lock()
		owner := c.place[id]
		c.mu.Unlock()
		if owner != "w2" {
			t.Fatalf("placement for %s is %q after failover", id, owner)
		}
	}
	if c.failedOver.Load() != int64(len(w1Sessions)) {
		t.Fatalf("failed-over counter = %d, want %d", c.failedOver.Load(), len(w1Sessions))
	}
	if c.failoverHist.Count() == 0 {
		t.Fatal("failover histogram saw no observations; the SLO is blind")
	}

	// The aggregate health view: one dead worker of two keeps the
	// cluster ready (availability 0.5 meets the 0.5 target).
	res, err := http.Get(srv.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	var ch ClusterHealth
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if err := json.Unmarshal(raw, &ch); err != nil {
		t.Fatal(err)
	}
	if !ch.Ready || ch.Workers["w1"] != "dead" || ch.Workers["w2"] != "alive" {
		t.Fatalf("cluster health = %s", raw)
	}

	// The SLO surface must expose failover-time-p99 with samples.
	sres, err := http.Get(srv.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	sraw, _ := io.ReadAll(sres.Body)
	sres.Body.Close()
	if !strings.Contains(string(sraw), "failover-time-p99") {
		t.Fatalf("SLO report lacks failover-time-p99: %s", sraw)
	}
}

// placementKeys finds idempotency keys whose ring placement matches the
// requested per-worker counts, making create spread deterministic.
func placementKeys(t *testing.T, c *Coordinator, want map[string]int) []string {
	t.Helper()
	need := make(map[string]int, len(want))
	for k, v := range want {
		need[k] = v
	}
	keys := make([]string, 0)
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("pk-%d", i)
		m, ok := c.ring.Get(k)
		if !ok {
			t.Fatal("empty ring while picking placement keys")
		}
		if need[m] > 0 {
			need[m]--
			keys = append(keys, k)
		}
		done := true
		for _, n := range need {
			if n > 0 {
				done = false
			}
		}
		if done {
			return keys
		}
	}
	t.Fatalf("could not satisfy placement %v in 10000 candidate keys", want)
	return nil
}

// workerState reads one worker's lease state under the coordinator lock.
func (c *Coordinator) workerState(name string) WorkerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[name]
	if w == nil {
		return WorkerDead
	}
	return w.state
}

func TestSuspectRevivesWithHysteresis(t *testing.T) {
	w1 := newTestWorker(t, "w1")
	c, _ := newTestCluster(t, w1)

	// Partition the probe path (the worker itself is healthy).
	c.inj.Set("cluster.probe", faults.Config{Rate: 1})
	time.Sleep(200 * time.Millisecond)
	c.Tick()
	if st := c.workerState("w1"); st != WorkerSuspect {
		t.Fatalf("w1 = %v under partition, want suspect", st)
	}
	// Heal: one good probe is not enough (RevivalProbes = 2)...
	c.inj.Reset()
	c.Tick()
	if st := c.workerState("w1"); st != WorkerSuspect {
		t.Fatalf("w1 = %v after one good probe, want still suspect", st)
	}
	if c.ring.Has("w1") {
		t.Fatal("worker re-entered the ring after a single good probe")
	}
	// ...two are.
	c.Tick()
	if st := c.workerState("w1"); st != WorkerAlive {
		t.Fatalf("w1 = %v after revival streak, want alive", st)
	}
	if !c.ring.Has("w1") {
		t.Fatal("revived worker missing from the placement ring")
	}
}

func TestEvictedWorkerMustReRegister(t *testing.T) {
	w1 := newTestWorker(t, "w1")
	w2 := newTestWorker(t, "w2")
	c, srv := newTestCluster(t, w1, w2)

	c.inj.Set("cluster.probe", faults.Config{Rate: 1})
	time.Sleep(450 * time.Millisecond)
	c.Tick()
	if c.workerState("w1") != WorkerDead || c.workerState("w2") != WorkerDead {
		t.Fatalf("workers = %v/%v past evict window, want dead/dead",
			c.workerState("w1"), c.workerState("w2"))
	}
	c.inj.Reset()

	// Dead is terminal: probes stop, no auto-revival.
	c.Tick()
	c.Tick()
	if st := c.workerState("w1"); st != WorkerDead {
		t.Fatalf("w1 = %v after heal without re-register, want dead", st)
	}
	// With no alive workers the cluster reports unready.
	res, err := http.Get(srv.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(raw), "no-alive-workers") {
		t.Fatalf("health with all dead = %d %s", res.StatusCode, raw)
	}

	// Registration brings it back.
	res2, raw2 := postJSON(t, srv.URL+"/v1/cluster/register",
		WorkerSpec{Name: "w1", Addr: w1.srv.URL}, nil)
	if res2.StatusCode != http.StatusOK {
		t.Fatalf("register = %d: %s", res2.StatusCode, raw2)
	}
	if st := c.workerState("w1"); st != WorkerAlive {
		t.Fatalf("w1 = %v after re-register, want alive", st)
	}
	cres, err := http.Get(srv.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	cres.Body.Close()
}
