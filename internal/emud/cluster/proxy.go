// The coordinator's HTTP surface: the same /v1 control plane the workers
// speak, proxied. Session and stream creates are placed on the ring and
// forwarded with an Idempotency-Key — supplied by the client or minted
// here — and single-flighted per key, so a client retry (or the
// coordinator's own backoff retry after a transport error) lands on the
// same worker and replays the same response instead of double-creating.
// Reads fan out and merge; per-resource routes follow the placement map.
// /v1/farm, /v1/health and /v1/slo aggregate across workers.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"tracemod/internal/emud"
)

const (
	// proxyMaxBody bounds buffered request bodies. Stream append chunks
	// are the largest legitimate payload; they are bounded client-side,
	// and 8 MiB leaves generous headroom.
	proxyMaxBody = 8 << 20
	// idemTTL is how long a successful create's response replays for.
	idemTTL = 10 * time.Minute
)

// idemEntry is one in-flight or completed idempotent create. The owner
// (first arrival for the key) executes; followers block on done and then
// replay status+body. Failures are forgotten so a retry re-executes.
type idemEntry struct {
	done   chan struct{}
	status int
	body   []byte
	ctype  string
	exp    time.Time
}

// Handler returns the coordinator's control-plane handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

func (c *Coordinator) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/health", c.handleHealth)
	mux.HandleFunc("GET /v1/slo", c.handleSLO)
	mux.HandleFunc("GET /v1/farm", c.handleFarm)
	mux.HandleFunc("GET /v1/cluster", c.handleCluster)
	mux.HandleFunc("POST /v1/cluster/register", c.handleRegister)
	mux.HandleFunc("POST /v1/cluster/workers/{name}/drain", c.handleDrain)

	mux.HandleFunc("POST /v1/sessions", c.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions", c.handleListSessions)
	mux.HandleFunc("/v1/sessions/{id}", c.handleSessionRoute)
	mux.HandleFunc("/v1/sessions/{id}/{rest...}", c.handleSessionRoute)

	mux.HandleFunc("POST /v1/streams", c.handleCreateStream)
	mux.HandleFunc("GET /v1/streams", c.handleListStreams)
	mux.HandleFunc("/v1/streams/{name}", c.handleStreamRoute)
	mux.HandleFunc("/v1/streams/{name}/{rest...}", c.handleStreamRoute)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// --- placement-aware forwarding ---------------------------------------

// workerAddr resolves a placeable worker's address. Dead workers are
// unroutable; suspect and draining ones still serve their existing
// resources.
func (c *Coordinator) workerAddr(name string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[name]
	if w == nil || w.state == WorkerDead {
		return "", false
	}
	return w.addr, true
}

// forwarded is one proxied response, buffered so retries and idempotent
// replays can reuse it.
type forwarded struct {
	status int
	body   []byte
	header http.Header
}

// forward proxies r to the named worker, buffering the request body so a
// transport error can be retried under the coordinator's backoff policy.
// Responses — including worker-side errors like 429 or 409 — pass
// through verbatim; only transport failures (no HTTP response at all)
// are retried, and the cluster.proxy fault point can inject those.
func (c *Coordinator) forward(r *http.Request, workerName string) (*forwarded, error) {
	addr, ok := c.workerAddr(workerName)
	if !ok {
		return nil, fmt.Errorf("worker %q unroutable", workerName)
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, proxyMaxBody))
	if err != nil {
		return nil, err
	}
	url := addr + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var out *forwarded
	attempt := 0
	err = c.opts.Retry.Do(func() error {
		if attempt++; attempt > 1 {
			c.proxyRetries.Inc()
		}
		if pt := c.inj.Point("cluster.proxy"); pt != nil && pt.Fire() {
			pt.Stall()
			if ferr := pt.Err(); ferr != nil {
				return ferr
			}
			return fmt.Errorf("cluster.proxy: injected transport error")
		}
		req, rerr := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
		if rerr != nil {
			return rerr
		}
		for _, h := range []string{"Content-Type", "Idempotency-Key", "Upload-Offset"} {
			if v := r.Header.Get(h); v != "" {
				req.Header.Set(h, v)
			}
		}
		res, derr := c.client.Do(req)
		if derr != nil {
			return derr
		}
		defer res.Body.Close()
		rb, berr := io.ReadAll(res.Body)
		if berr != nil {
			return berr
		}
		out = &forwarded{status: res.StatusCode, body: rb, header: res.Header}
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.proxied.Inc()
	return out, nil
}

func (f *forwarded) write(w http.ResponseWriter) {
	for _, h := range []string{"Content-Type", "Retry-After", "Upload-Offset"} {
		if v := f.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(f.status)
	_, _ = w.Write(f.body)
}

// --- idempotent placement-keyed creates -------------------------------

// idemKey returns the request's idempotency key, minting one when the
// client did not send one so the coordinator's own retries are still
// safe against double-creation on the worker.
func (c *Coordinator) idemKey(r *http.Request) string {
	if k := r.Header.Get("Idempotency-Key"); k != "" {
		return k
	}
	return fmt.Sprintf("coord-%d-%d", time.Now().UnixNano(), c.idemSeq.Add(1))
}

// idemClaim single-flights a key: the first caller becomes the owner and
// must idemResolve; later callers get the entry to wait on.
func (c *Coordinator) idemClaim(key string) (*idemEntry, bool) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.idem {
		if !e.exp.IsZero() && now.After(e.exp) {
			delete(c.idem, k)
		}
	}
	if e, ok := c.idem[key]; ok {
		return e, false
	}
	e := &idemEntry{done: make(chan struct{})}
	c.idem[key] = e
	return e, true
}

// idemResolve publishes the owner's outcome. 2xx responses replay until
// idemTTL; everything else is forgotten so a retry re-executes.
func (c *Coordinator) idemResolve(key string, e *idemEntry, f *forwarded) {
	c.mu.Lock()
	if f != nil && f.status >= 200 && f.status < 300 {
		e.status = f.status
		e.body = f.body
		e.ctype = f.header.Get("Content-Type")
		e.exp = time.Now().Add(idemTTL)
	} else {
		delete(c.idem, key)
	}
	c.mu.Unlock()
	close(e.done)
}

// createPlaced handles a placement-keyed, idempotent create: place the
// key on the ring, single-flight it, forward with the key attached, and
// record the placement via record() on success.
func (c *Coordinator) createPlaced(w http.ResponseWriter, r *http.Request, record func(body []byte, workerName string)) {
	key := c.idemKey(r)
	r.Header.Set("Idempotency-Key", key)
	for {
		e, owner := c.idemClaim(key)
		if owner {
			target, ok := c.ring.Get(key)
			if !ok {
				c.idemResolve(key, e, nil)
				writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("no alive workers"))
				return
			}
			f, err := c.forward(r, target)
			if err != nil {
				c.idemResolve(key, e, nil)
				writeErr(w, http.StatusBadGateway, fmt.Errorf("worker %s: %w", target, err))
				return
			}
			if f.status >= 200 && f.status < 300 {
				record(f.body, target)
			}
			c.idemResolve(key, e, f)
			f.write(w)
			return
		}
		select {
		case <-e.done:
		case <-r.Context().Done():
			writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("canceled waiting on idempotent create"))
			return
		}
		c.mu.Lock()
		status, body, ctype := e.status, e.body, e.ctype
		c.mu.Unlock()
		if status == 0 {
			// The owner failed and forgot the entry; take ownership on
			// the next lap and re-execute.
			continue
		}
		if ctype != "" {
			w.Header().Set("Content-Type", ctype)
		}
		w.WriteHeader(status)
		_, _ = w.Write(body)
		return
	}
}

func (c *Coordinator) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	c.createPlaced(w, r, func(body []byte, workerName string) {
		var si emud.SessionInfo
		if json.Unmarshal(body, &si) == nil && si.ID != "" {
			c.mu.Lock()
			c.place[si.ID] = workerName
			c.mu.Unlock()
		}
	})
}

func (c *Coordinator) handleCreateStream(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	c.createPlaced(w, r, func(_ []byte, workerName string) {
		if name != "" {
			c.mu.Lock()
			c.streamPlace[name] = workerName
			c.mu.Unlock()
		}
	})
}

// --- per-resource routes ----------------------------------------------

func (c *Coordinator) handleSessionRoute(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	owner, ok := c.place[id]
	c.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("session %s not found on any worker", id))
		return
	}
	f, err := c.forward(r, owner)
	if err != nil {
		writeErr(w, http.StatusBadGateway, fmt.Errorf("worker %s: %w", owner, err))
		return
	}
	if f.status < 300 && (r.Method == http.MethodDelete ||
		(r.Method == http.MethodPost && r.PathValue("rest") == "handoff")) {
		// The session no longer exists on its worker (deleted, or handed
		// off to the caller as a snapshot); drop the placement.
		c.mu.Lock()
		delete(c.place, id)
		c.mu.Unlock()
	}
	f.write(w)
}

func (c *Coordinator) handleStreamRoute(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	c.mu.Lock()
	owner, ok := c.streamPlace[name]
	c.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("stream %s not found on any worker", name))
		return
	}
	f, err := c.forward(r, owner)
	if err != nil {
		writeErr(w, http.StatusBadGateway, fmt.Errorf("worker %s: %w", owner, err))
		return
	}
	if r.Method == http.MethodDelete && f.status < 300 {
		c.mu.Lock()
		delete(c.streamPlace, name)
		c.mu.Unlock()
	}
	f.write(w)
}

// --- fan-out reads and aggregates -------------------------------------

// routable lists workers whose resources are still reachable.
func (c *Coordinator) routable() []WorkerSpec {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerSpec, 0, len(c.workers))
	for _, w := range c.workers {
		if w.state != WorkerDead {
			out = append(out, WorkerSpec{Name: w.name, Addr: w.addr})
		}
	}
	return out
}

// fanGET issues GET path on every routable worker concurrently and
// returns the decoded bodies that answered 200.
func fanGET[T any](c *Coordinator, path string) map[string]T {
	workers := c.routable()
	var mu sync.Mutex
	out := make(map[string]T, len(workers))
	var wg sync.WaitGroup
	for _, ws := range workers {
		wg.Add(1)
		go func(ws WorkerSpec) {
			defer wg.Done()
			res, err := c.client.Get(ws.Addr + path)
			if err != nil {
				return
			}
			defer res.Body.Close()
			if res.StatusCode != http.StatusOK {
				return
			}
			var v T
			if json.NewDecoder(res.Body).Decode(&v) != nil {
				return
			}
			mu.Lock()
			out[ws.Name] = v
			mu.Unlock()
		}(ws)
	}
	wg.Wait()
	return out
}

func (c *Coordinator) handleListSessions(w http.ResponseWriter, _ *http.Request) {
	lists := fanGET[[]emud.SessionInfo](c, "/v1/sessions")
	merged := make([]emud.SessionInfo, 0)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	writeJSON(w, http.StatusOK, merged)
}

func (c *Coordinator) handleListStreams(w http.ResponseWriter, _ *http.Request) {
	lists := fanGET[[]json.RawMessage](c, "/v1/streams")
	merged := make([]json.RawMessage, 0)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	writeJSON(w, http.StatusOK, merged)
}

// WorkerFarm is one worker's farm view inside the aggregate.
type WorkerFarm struct {
	Name  string         `json:"name"`
	State string         `json:"state"`
	Farm  *emud.FarmInfo `json:"farm,omitempty"`
}

// ClusterFarmInfo is the /v1/farm aggregate across the cluster.
type ClusterFarmInfo struct {
	Workers  []WorkerFarm `json:"workers"`
	Alive    int          `json:"alive_workers"`
	Sessions int          `json:"sessions"`
	Streams  int          `json:"streams"`
	Placed   int          `json:"placed_sessions"`
	// RelayPackets aggregates the data-plane read counters farm-wide.
	RelayPackets int64 `json:"relay_read_packets"`
}

func (c *Coordinator) handleFarm(w http.ResponseWriter, _ *http.Request) {
	farms := fanGET[emud.FarmInfo](c, "/v1/farm")
	info := ClusterFarmInfo{Workers: make([]WorkerFarm, 0, len(c.workers))}
	for _, wi := range c.Workers() {
		wf := WorkerFarm{Name: wi.Name, State: wi.State}
		if f, ok := farms[wi.Name]; ok {
			fc := f
			wf.Farm = &fc
			info.Sessions += f.Sessions
			info.Streams += f.Streams
			info.RelayPackets += f.RelayPackets
		}
		if wi.State == WorkerAlive.String() {
			info.Alive++
		}
		info.Workers = append(info.Workers, wf)
	}
	c.mu.Lock()
	info.Placed = len(c.place)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

// ClusterHealth is the /v1/health aggregate: the cluster is ready while
// at least one worker holds an alive lease and every critical
// coordinator SLO (worker availability) is met.
type ClusterHealth struct {
	Ready   bool              `json:"ready"`
	Status  string            `json:"status"`
	Score   float64           `json:"score"`
	Workers map[string]string `json:"workers"`
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rep := c.slos.Evaluate()
	ch := ClusterHealth{Score: rep.Score, Workers: make(map[string]string)}
	alive := 0
	c.mu.Lock()
	for n, wk := range c.workers {
		ch.Workers[n] = wk.state.String()
		if wk.state == WorkerAlive {
			alive++
		}
	}
	c.mu.Unlock()
	ch.Ready = alive > 0 && rep.Ready
	switch {
	case ch.Ready:
		ch.Status = "ok"
	case alive == 0:
		ch.Status = "no-alive-workers"
	default:
		ch.Status = "degraded"
	}
	code := http.StatusOK
	if !ch.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, ch)
}

func (c *Coordinator) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.slos.Evaluate())
}

func (c *Coordinator) handleCluster(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var spec WorkerSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad register body: %w", err))
		return
	}
	if err := c.Register(spec.Name, spec.Addr); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
}

func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	moved, skipped, err := c.DrainWorker(name)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"worker": name, "migrated": moved, "skipped": skipped,
	})
}
