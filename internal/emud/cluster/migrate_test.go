package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"tracemod/internal/emud"
	"tracemod/internal/simnet"
)

// outcomes drives a fixed packet workload through a session and records
// each packet's fate as one byte: 'D' delivered, 'x' dropped. The trace
// is a single hour-long tuple with zero latency and 30% loss under exact
// scheduling, so every outcome resolves synchronously inside Submit and
// the string is a pure function of the session's (seed, draw position) —
// exactly the state a live migration must carry.
func outcomes(t *testing.T, s *emud.Session, n int) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		got := ""
		s.SubmitWithDrop(simnet.Outbound, 100+i%7,
			func() { got = "D" },
			func() { got = "x" })
		if got == "" {
			t.Fatalf("packet %d had no synchronous outcome", i)
		}
		sb.WriteString(got)
	}
	return sb.String()
}

// TestDrainMigrationByteIdentity is the differential test the migration
// design hangs on: a session that lives through a coordinator-driven
// drain migration must produce byte-for-byte the same delivery/drop
// sequence as the same session never migrated. The handoff snapshot
// carries the replay cursor (SkipTuples) and the drop-lottery position
// (SkipDraws); if either is off by one, the two runs diverge within a
// few packets at 30% loss.
func TestDrainMigrationByteIdentity(t *testing.T) {
	const (
		seed  = 42
		half  = 200
		total = 2 * half
	)

	// Reference: one worker, no cluster, the full workload in one life.
	ref := newTestWorker(t, "ref")
	res, raw := postJSON(t, ref.srv.URL+"/v1/sessions", inlineSession("ident", seed), nil)
	if res.StatusCode != http.StatusCreated {
		t.Fatalf("reference create = %d: %s", res.StatusCode, raw)
	}
	var refInfo emud.SessionInfo
	if err := json.Unmarshal(raw, &refInfo); err != nil {
		t.Fatal(err)
	}
	refSess, ok := ref.m.Get(refInfo.ID)
	if !ok {
		t.Fatal("reference session missing from manager")
	}
	want := outcomes(t, refSess, total)
	if !strings.Contains(want, "x") || !strings.Contains(want, "D") {
		t.Fatalf("degenerate reference outcome %q; loss lottery is not engaged", want)
	}

	// Cluster: two workers; the same session lives half its life on the
	// first, is drain-migrated, and finishes on the second.
	w1 := newTestWorker(t, "w1")
	w2 := newTestWorker(t, "w2")
	c, srv := newTestCluster(t, w1, w2)
	keys := placementKeys(t, c, map[string]int{"w1": 1})
	res, raw = postJSON(t, srv.URL+"/v1/sessions", inlineSession("ident", seed),
		map[string]string{"Idempotency-Key": keys[0]})
	if res.StatusCode != http.StatusCreated {
		t.Fatalf("cluster create = %d: %s", res.StatusCode, raw)
	}
	var si emud.SessionInfo
	if err := json.Unmarshal(raw, &si); err != nil {
		t.Fatal(err)
	}
	src, ok := w1.m.Get(si.ID)
	if !ok {
		t.Fatalf("session %s not on w1", si.ID)
	}
	firstHalf := outcomes(t, src, half)
	cursorBefore, drawsBefore := src.Cursor(), src.LotteryDraws()

	moved, skipped, err := c.DrainWorker("w1")
	if err != nil {
		t.Fatalf("DrainWorker: %v", err)
	}
	if moved != 1 || skipped != 0 {
		t.Fatalf("DrainWorker moved %d skipped %d, want 1/0", moved, skipped)
	}
	if _, still := w1.m.Get(si.ID); still {
		t.Fatal("session still on the drained worker")
	}
	dst, ok := w2.m.Get(si.ID)
	if !ok {
		t.Fatal("migrated session missing from survivor")
	}
	if st := dst.State(); st != emud.StateRunning {
		t.Fatalf("migrated session state = %v, want running", st)
	}
	// Exact continuity of both positions, not just "close".
	if got := dst.Cursor(); got != cursorBefore {
		t.Fatalf("cursor after migration = %d, want %d", got, cursorBefore)
	}
	if got := dst.LotteryDraws(); got != drawsBefore {
		t.Fatalf("lottery draws after migration = %d, want %d", got, drawsBefore)
	}

	secondHalf := outcomes(t, dst, half)
	got := firstHalf + secondHalf
	if got != want {
		t.Fatalf("migrated outcome diverged from single-node run:\n ref: %s\n got: %s\n(first divergence at byte %d)",
			want, got, firstDiff(want, got))
	}

	// The drained worker refuses new sessions while the survivor admits.
	res2, raw2 := postJSON(t, w1.srv.URL+"/v1/sessions", inlineSession("late", 1), nil)
	if res2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create on drained worker = %d: %s", res2.StatusCode, raw2)
	}
}

func firstDiff(a, b string) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// TestDrainMigrationUnderRepeatedMoves walks one session across workers
// twice (w1 -> w2 -> back onto w1 after it re-registers) and checks the
// draw position accumulates across moves rather than resetting to the
// last snapshot's base.
func TestDrainMigrationUnderRepeatedMoves(t *testing.T) {
	const seed, chunk = 7, 75
	ref := newTestWorker(t, "ref")
	res, raw := postJSON(t, ref.srv.URL+"/v1/sessions", inlineSession("hop", seed), nil)
	if res.StatusCode != http.StatusCreated {
		t.Fatalf("reference create = %d: %s", res.StatusCode, raw)
	}
	var refInfo emud.SessionInfo
	if err := json.Unmarshal(raw, &refInfo); err != nil {
		t.Fatal(err)
	}
	refSess, _ := ref.m.Get(refInfo.ID)
	want := outcomes(t, refSess, 3*chunk)

	w1 := newTestWorker(t, "w1")
	w2 := newTestWorker(t, "w2")
	c, srv := newTestCluster(t, w1, w2)
	keys := placementKeys(t, c, map[string]int{"w1": 1})
	res, raw = postJSON(t, srv.URL+"/v1/sessions", inlineSession("hop", seed),
		map[string]string{"Idempotency-Key": keys[0]})
	if res.StatusCode != http.StatusCreated {
		t.Fatalf("cluster create = %d: %s", res.StatusCode, raw)
	}
	var si emud.SessionInfo
	if err := json.Unmarshal(raw, &si); err != nil {
		t.Fatal(err)
	}

	s1, ok := w1.m.Get(si.ID)
	if !ok {
		t.Fatalf("session %s not on w1", si.ID)
	}
	got := outcomes(t, s1, chunk)

	if _, _, err := c.DrainWorker("w1"); err != nil {
		t.Fatalf("drain w1: %v", err)
	}
	s2, ok := w2.m.Get(si.ID)
	if !ok {
		t.Fatal("session missing from w2 after first migration")
	}
	got += outcomes(t, s2, chunk)

	// w1 comes back fresh (new manager process in real life; here a new
	// manager under the same name) and the session moves again.
	w1b := newTestWorker(t, "w1")
	if err := c.Register("w1", w1b.srv.URL); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.DrainWorker("w2"); err != nil {
		t.Fatalf("drain w2: %v", err)
	}
	s3, ok := w1b.m.Get(si.ID)
	if !ok {
		t.Fatal("session missing from revived w1 after second migration")
	}
	got += outcomes(t, s3, chunk)

	if got != want {
		t.Fatalf("twice-migrated outcome diverged at byte %d:\n ref: %s\n got: %s",
			firstDiff(want, got), want, got)
	}

	// Sanity on the aggregate view after all the churn.
	fres, err := http.Get(srv.URL + "/v1/farm")
	if err != nil {
		t.Fatal(err)
	}
	fraw, _ := io.ReadAll(fres.Body)
	fres.Body.Close()
	var cf ClusterFarmInfo
	if err := json.Unmarshal(fraw, &cf); err != nil {
		t.Fatal(err)
	}
	if cf.Sessions != 1 || cf.Placed != 1 {
		t.Fatalf("aggregate farm after churn = %s", fraw)
	}
}
