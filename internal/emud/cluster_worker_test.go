// Worker-side cluster substrate: recovery parking for unrecoverable
// traces, the draining/overloaded health split, session-admission
// brownout, idempotent creates, and the handoff endpoint's contract.
package emud

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tracemod/internal/faults"
	"tracemod/internal/obs"
	"tracemod/internal/simnet"
)

// rawJSON posts body as JSON with optional headers and returns the
// response status, body, and headers without asserting on the code.
func rawJSON(t *testing.T, method, url string, body any, hdr map[string]string) (int, string, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(raw), res.Header
}

// TestRestoreParksUnrecoverableTrace is the recovery-ordering guarantee:
// a snapshot where one session's trace is missing and another's is
// corrupt must still restore the healthy session AND materialize the
// broken ones — parked, stopped, with a typed error — instead of failing
// the whole -recover or silently dropping them.
func TestRestoreParksUnrecoverableTrace(t *testing.T) {
	good := testTrace()
	tuples := make([]TupleJSON, len(good))
	for i, tu := range good {
		tuples[i] = tupleToJSON(tu)
	}
	snap := &FarmSnapshot{
		Seq: 10,
		Traces: map[string][]TupleJSON{
			"good": tuples,
			"corrupt": {
				// Loss outside [0,1]: fails Trace.Validate on restore —
				// the file was damaged between snapshot and recovery.
				{DurationSec: 1, Loss: 42},
			},
		},
		Sessions: []SessionSnapshot{
			{ID: "s-ok", TraceRef: "good", Loop: true, TickUS: -1, Seed: 1, Running: true, Cursor: 1},
			{ID: "s-missing", TraceRef: "vanished", Loop: true, TickUS: -1, Seed: 2, Running: true},
			{ID: "s-corrupt", TraceRef: "corrupt", Loop: true, TickUS: -1, Seed: 3, Running: true},
		},
	}

	m := newTestManager(t, Options{})
	n, err := m.Restore(snap)
	if n != 3 {
		t.Fatalf("restored %d sessions, want all 3 (parked ones included)", n)
	}
	if !errors.Is(err, ErrTraceUnrecoverable) {
		t.Fatalf("Restore error = %v, want ErrTraceUnrecoverable", err)
	}

	ok, _ := m.Get("s-ok")
	if ok == nil || ok.State() != StateRunning {
		t.Fatalf("healthy session did not restore running: %+v", ok)
	}
	if got := ok.Cursor(); got != 1 {
		t.Fatalf("healthy session cursor = %d, want 1", got)
	}
	if ok.RestoreError() != nil {
		t.Fatalf("healthy session carries restore error %v", ok.RestoreError())
	}

	for _, id := range []string{"s-missing", "s-corrupt"} {
		s, found := m.Get(id)
		if !found {
			t.Fatalf("session %s vanished instead of parking", id)
		}
		if s.State() == StateRunning {
			t.Fatalf("session %s runs with an unrecoverable trace", id)
		}
		if !errors.Is(s.RestoreError(), ErrTraceUnrecoverable) {
			t.Fatalf("session %s restore error = %v, want ErrTraceUnrecoverable",
				id, s.RestoreError())
		}
		// Parked sessions refuse traffic instead of emulating garbage.
		if s.Submit(simnet.Outbound, 100, func() {}) {
			t.Fatalf("parked session %s accepted a packet", id)
		}
	}
}

// TestHealthDrainingVersusOverloaded pins the /v1/health contract the
// coordinator's probe depends on: draining fails readiness with status
// "draining" while liveness stays up, and brownout past reject-streams
// reports "overloaded" — two different reactions (migrate vs back off).
func TestHealthDrainingVersusOverloaded(t *testing.T) {
	t.Run("draining", func(t *testing.T) {
		srv, m := newTestAPI(t, Options{})
		var hi HealthInfo
		doJSON(t, "GET", srv.URL+"/v1/health", nil, http.StatusOK, &hi)
		if !hi.Ready || hi.Status != "ok" || hi.Draining {
			t.Fatalf("baseline health = %+v", hi)
		}

		m.BeginDrain()
		req, _ := http.NewRequest("GET", srv.URL+"/v1/health", nil)
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining health = %d, want 503", res.StatusCode)
		}
		doJSON(t, "GET", srv.URL+"/v1/health", nil, http.StatusServiceUnavailable, &hi)
		if hi.Ready || hi.Status != "draining" || !hi.Draining {
			t.Fatalf("draining health body = %+v", hi)
		}
		// Liveness is NOT readiness: the draining process must stay "up"
		// so its supervisor does not kill it mid-migration.
		lres, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		lres.Body.Close()
		if lres.StatusCode >= 300 {
			t.Fatalf("liveness while draining = %d", lres.StatusCode)
		}
		// And new sessions are refused with a typed 503.
		code, body, _ := rawJSON(t, "POST", srv.URL+"/v1/sessions",
			SessionRequest{Synthetic: "wavelan"}, nil)
		if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
			t.Fatalf("create while draining = %d: %s", code, body)
		}
	})

	t.Run("overloaded", func(t *testing.T) {
		reg := obs.NewRegistry()
		inj := faults.New(faults.Options{Metrics: reg})
		srv, m := newTestAPI(t, Options{Metrics: reg, Faults: inj, PressurePeriod: -1})
		inj.Set("pressure.force", faults.Config{Rate: 1, Delay: 2 * time.Millisecond})
		m.Pressure().Evaluate()

		var hi HealthInfo
		doJSON(t, "GET", srv.URL+"/v1/health", nil, http.StatusServiceUnavailable, &hi)
		if hi.Ready || hi.Status != "overloaded" || hi.Draining {
			t.Fatalf("overloaded health body = %+v", hi)
		}
	})
}

// TestSessionAdmissionBrownout: at shed-sampling or worse, new sessions
// get a typed 429 with Retry-After — one rung EARLIER than streams
// refuse, because a whole new tenant is the most expensive admission.
func TestSessionAdmissionBrownout(t *testing.T) {
	reg := obs.NewRegistry()
	inj := faults.New(faults.Options{Metrics: reg})
	srv, m := newTestAPI(t, Options{Metrics: reg, Faults: inj, PressurePeriod: -1})

	inj.Set("pressure.force", faults.Config{Rate: 1, Delay: 1 * time.Millisecond})
	m.Pressure().Evaluate()

	code, body, hdr := rawJSON(t, "POST", srv.URL+"/v1/sessions",
		SessionRequest{Synthetic: "wavelan"}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("create at shed-sampling = %d: %s, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("brownout 429 carries no Retry-After")
	}
	// Streams still admit at this rung (they refuse one rung later) —
	// the ladder sheds the most expensive unit first.
	if _, err := m.Streams().Create(StreamConfig{Name: "still-admitted"}); err != nil {
		t.Fatalf("stream create at shed-sampling: %v", err)
	}

	// Pressure clears: admission resumes.
	inj.Reset()
	m.Pressure().Evaluate()
	doJSON(t, "POST", srv.URL+"/v1/sessions",
		SessionRequest{Synthetic: "wavelan"}, http.StatusCreated, nil)
}

// TestCreateIdempotencyKey: retried creates with the same key return the
// same session exactly once; a different key creates a second session.
func TestCreateIdempotencyKey(t *testing.T) {
	srv, m := newTestAPI(t, Options{})
	post := func(key string) SessionInfo {
		t.Helper()
		code, body, _ := rawJSON(t, "POST", srv.URL+"/v1/sessions",
			SessionRequest{Synthetic: "wavelan"},
			map[string]string{"Idempotency-Key": key})
		if code != http.StatusCreated {
			t.Fatalf("create(%s) = %d: %s", key, code, body)
		}
		var si SessionInfo
		if err := json.Unmarshal([]byte(body), &si); err != nil {
			t.Fatal(err)
		}
		return si
	}
	a, b := post("k1"), post("k1")
	if a.ID != b.ID {
		t.Fatalf("same key minted two sessions: %s vs %s", a.ID, b.ID)
	}
	if c := post("k2"); c.ID == a.ID {
		t.Fatal("distinct key replayed the old session")
	}
	if m.Count() != 2 {
		t.Fatalf("farm holds %d sessions, want 2", m.Count())
	}
}

// TestHandoffCarriesExactPositions: a handoff quiesces the session,
// deletes it, and returns a single-session snapshot whose cursor and
// draw count let a restore continue the drop lottery without a gap.
func TestHandoffCarriesExactPositions(t *testing.T) {
	m := newTestManager(t, Options{})
	s, err := m.Create(SessionConfig{Trace: testTrace(), Loop: true, Tick: -1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Submit(simnet.Outbound, 100, func() {})
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight > 0 {
		if time.Now().After(deadline) {
			t.Fatal("packets never drained")
		}
		time.Sleep(time.Millisecond)
	}
	wantCursor, wantDraws := s.Cursor(), s.LotteryDraws()
	if wantDraws == 0 {
		t.Fatal("no lottery draws recorded; the workload never engaged the trace")
	}

	snap, err := m.Handoff(s.ID, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, still := m.Get(s.ID); still {
		t.Fatal("session survived its own handoff")
	}
	if len(snap.Sessions) != 1 {
		t.Fatalf("handoff snapshot holds %d sessions", len(snap.Sessions))
	}
	ss := snap.Sessions[0]
	if ss.Cursor != wantCursor || ss.Draws != wantDraws || !ss.Running {
		t.Fatalf("handoff snapshot = cursor %d draws %d running %v, want %d/%d/true",
			ss.Cursor, ss.Draws, ss.Running, wantCursor, wantDraws)
	}
	if _, ok := snap.Traces[ss.TraceRef]; !ok {
		t.Fatalf("handoff snapshot does not embed trace %q", ss.TraceRef)
	}

	// The snapshot restores — on any farm — with both positions intact.
	m2 := newTestManager(t, Options{})
	if n, err := m2.Restore(snap); n != 1 || err != nil {
		t.Fatalf("restore = (%d, %v)", n, err)
	}
	s2, _ := m2.Get(ss.ID)
	cfg := s2.Config()
	if cfg.SkipTuples != wantCursor || cfg.SkipDraws != wantDraws {
		t.Fatalf("restored positions = %d/%d, want %d/%d",
			cfg.SkipTuples, cfg.SkipDraws, wantCursor, wantDraws)
	}
	if s2.State() != StateRunning {
		t.Fatalf("restored session state = %v", s2.State())
	}
}
