package emud

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/distill"
	"tracemod/internal/obs"
	"tracemod/internal/packet"
	"tracemod/internal/replay"
	"tracemod/internal/simnet"
	"tracemod/internal/tracefmt"
)

// collectedTraceBytes serializes a synthetic ping-workload collected
// trace of the given length: each second carries the small/large/large
// probe triplet the distiller solves, over constant channel parameters.
func collectedTraceBytes(t testing.TB, seconds int) []byte {
	t.Helper()
	const s1, s2 = 60, 1028
	params := core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 800}
	tr := &tracefmt.Trace{Header: tracefmt.Header{Device: "wavelan0"}}
	seq := uint16(0)
	for sec := 0; sec < seconds; sec++ {
		base := int64(sec) * int64(time.Second)
		emit := func(size int, rtt time.Duration) {
			seq++
			tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
				At: base, Dir: tracefmt.DirOut, Size: uint16(size),
				Protocol: packet.ProtoICMP, ICMPType: packet.ICMPEcho, ID: 1, Seq: seq, RTT: -1,
			})
			tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
				At: base + int64(rtt), Dir: tracefmt.DirIn, Size: uint16(size),
				Protocol: packet.ProtoICMP, ICMPType: packet.ICMPEchoReply, ID: 1, Seq: seq, RTT: int64(rtt),
			})
		}
		emit(s1, params.RoundTrip(s1))
		emit(s2, params.RoundTrip(s2))
		emit(s2, params.RoundTrip(s2)+params.Vb.Cost(s2))
	}
	sort.SliceStable(tr.Packets, func(i, j int) bool { return tr.Packets[i].At < tr.Packets[j].At })
	var buf bytes.Buffer
	if err := tracefmt.WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The streams component must reproduce the batch distiller exactly: a
// chunked live ingest of the same bytes yields a byte-identical replay
// trace and a sealed LiveTrace.
func TestStreamIngestMatchesBatchDistill(t *testing.T) {
	data := collectedTraceBytes(t, 30)

	collected, err := tracefmt.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := distill.Distill(collected, distill.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	m := NewManager(Options{Metrics: obs.NewRegistry(), Granularity: time.Millisecond})
	defer m.Close()
	st, err := m.Streams().Create(StreamConfig{Name: "ingest"})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off += 999 {
		end := off + 999
		if end > len(data) {
			end = len(data)
		}
		if err := st.Write(data[off:end]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	sum, err := st.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}

	var want, got bytes.Buffer
	if err := replay.Write(&want, batch.Replay); err != nil {
		t.Fatal(err)
	}
	if err := replay.Write(&got, sum.Replay); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("streamed replay diverges from batch distill")
	}
	var liveBuf bytes.Buffer
	if err := replay.Write(&liveBuf, st.Live().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveBuf.Bytes(), want.Bytes()) {
		t.Fatal("live trace diverges from batch distill")
	}
	if done, derr := st.Live().Done(); !done || derr != nil {
		t.Fatalf("live trace not sealed cleanly: done=%v err=%v", done, derr)
	}
	if st.State() != StreamComplete {
		t.Fatalf("state = %s, want complete", st.State())
	}
}

// The PR's acceptance scenario end to end over HTTP: a collected trace
// is POSTed in chunks against a running daemon, a session attaches to
// the stream and delivers modulated packets while the upload is still
// in flight, and the distillation lag objective shows up on /v1/slo.
func TestLiveIngestSessionModulatesBeforeUploadCompletes(t *testing.T) {
	srv, m := newTestAPI(t, Options{})
	data := collectedTraceBytes(t, 60)

	pr, pw := io.Pipe()
	type postResult struct {
		code int
		body []byte
	}
	posted := make(chan postResult, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/streams?name=demo", "application/octet-stream", pr)
		if err != nil {
			posted <- postResult{code: -1, body: []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		posted <- postResult{code: resp.StatusCode, body: raw}
	}()

	// Send the first half of the collection and hold the upload open.
	// The watermark reaches ~30s of trace time, so windows freeze well
	// past the first — tuples must be visible at the live edge.
	half := len(data) / 2
	if _, err := pw.Write(data[:half]); err != nil {
		t.Fatal(err)
	}
	var info StreamInfo
	waitFor(t, "tuples at the live edge", func() bool {
		resp, err := http.Get(srv.URL + "/v1/streams/demo")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			return false
		}
		return info.Tuples > 0
	})
	if info.State != string(StreamReceiving) {
		t.Fatalf("stream state = %q before upload completes, want receiving", info.State)
	}

	// Attach a session to the in-flight stream and push traffic through
	// it: delivery proves modulation began before collection finished.
	var sess SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{Name: "live", Stream: "demo"},
		http.StatusCreated, &sess)
	if !sess.Live || sess.TraceRef != "stream:demo" || sess.Tuples == 0 {
		t.Fatalf("session = %+v, want live with tuples", sess)
	}
	s, ok := m.Get(sess.ID)
	if !ok {
		t.Fatal("session not in farm")
	}
	var delivered atomic.Int64
	waitFor(t, "modulated delivery mid-upload", func() bool {
		s.Submit(simnet.Outbound, 100, func() { delivered.Add(1) })
		return delivered.Load() > 0
	})

	// Only now finish the upload and collect the POST response.
	if _, err := pw.Write(data[half:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	res := <-posted
	if res.code != http.StatusCreated {
		t.Fatalf("POST /v1/streams = %d: %s", res.code, res.body)
	}
	var final StreamInfo
	if err := json.Unmarshal(res.body, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != string(StreamComplete) || final.Tuples == 0 || final.Damaged != 0 {
		t.Fatalf("final stream info = %+v", final)
	}
	// The completed stream carries the full distillation: 60s of trace
	// at the default 1s step.
	if final.DurationSec < 50 {
		t.Fatalf("distilled only %.0fs of a 60s collection", final.DurationSec)
	}

	// The distillation-lag objective is live on /v1/slo and within its
	// freeze bound (the synthetic feed never stalls).
	var slo FarmSLOReport
	doJSON(t, "GET", srv.URL+"/v1/slo", nil, http.StatusOK, &slo)
	found := false
	for _, r := range slo.Objectives {
		if r.Name == "stream-distill-lag-p99" {
			found = true
			if !r.Met {
				t.Fatalf("stream-distill-lag-p99 unmet: %+v", r)
			}
		}
	}
	if !found {
		t.Fatal("stream-distill-lag-p99 missing from /v1/slo")
	}

	// Lifecycle tail: list, duplicate rejection, delete, dangling ref.
	resp, err := http.Get(srv.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	var list []StreamInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].Name != "demo" {
		t.Fatalf("list = %+v", list)
	}
	dupResp, err := http.Post(srv.URL+"/v1/streams?name=demo", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dupResp.Body)
	dupResp.Body.Close()
	if dupResp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate stream = %d, want 409", dupResp.StatusCode)
	}
	doJSON(t, "DELETE", srv.URL+"/v1/streams/demo", nil, http.StatusNoContent, nil)
	doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{Stream: "demo"}, http.StatusBadRequest, nil)

	// The attached session survives the stream's deletion with its
	// tuples intact.
	var after SessionInfo
	doJSON(t, "GET", srv.URL+"/v1/sessions/"+sess.ID, nil, http.StatusOK, &after)
	if !after.Live || after.Tuples == 0 {
		t.Fatalf("session after stream delete = %+v", after)
	}
}

// A live cursor waits at the live edge instead of treating it as EOF,
// resumes on append, and only wraps (when looping) once the trace is
// sealed.
func TestLiveCursorEdgeSemantics(t *testing.T) {
	lt := NewLiveTrace()
	c := lt.NewCursor(true)
	if _, ok := c.Next(); ok {
		t.Fatal("empty live trace should read dry")
	}
	woken := 0
	c.SetOnAvailable(func() { woken++ })
	tu := core.Tuple{D: time.Second, DelayParams: core.DelayParams{F: time.Millisecond}, L: 0.5}
	lt.Append(tu)
	if woken != 1 {
		t.Fatalf("woken = %d after append, want 1", woken)
	}
	if got, ok := c.Next(); !ok || got != tu {
		t.Fatalf("Next = %+v ok=%v", got, ok)
	}
	// At the live edge a looping cursor still waits: the stream may grow.
	if _, ok := c.Next(); ok {
		t.Fatal("cursor wrapped before the trace was sealed")
	}
	lt.Complete(nil)
	if woken != 2 {
		t.Fatalf("woken = %d after complete, want 2", woken)
	}
	if got, ok := c.Next(); !ok || got != tu {
		t.Fatalf("sealed loop Next = %+v ok=%v", got, ok)
	}
	if lt.WeightedLoss() != 0.5 {
		t.Fatalf("WeightedLoss = %v", lt.WeightedLoss())
	}
	if lt.Append(core.Tuple{D: time.Second}); lt.Len() != 1 {
		t.Fatal("append after Complete must be ignored")
	}
}

// A strict stream refuses damage instead of salvaging around it, and
// failure seals the live trace with the error.
func TestStreamStrictFailsOnDamage(t *testing.T) {
	data := collectedTraceBytes(t, 10)
	data[len(data)/2] ^= 0xff // smash a record mid-file

	m := NewManager(Options{Granularity: time.Millisecond})
	defer m.Close()
	st, err := m.Streams().Create(StreamConfig{Name: "strict", Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	var werr error
	for off := 0; off < len(data) && werr == nil; off += 512 {
		end := off + 512
		if end > len(data) {
			end = len(data)
		}
		werr = st.Write(data[off:end])
	}
	if werr == nil {
		_, werr = st.Finish()
	}
	if werr == nil {
		t.Fatal("strict stream accepted damaged input")
	}
	if st.State() != StreamFailed {
		t.Fatalf("state = %s, want failed", st.State())
	}
	if done, derr := st.Live().Done(); !done || derr == nil {
		t.Fatalf("live trace after failure: done=%v err=%v", done, derr)
	}
}
