// Live replay traces: the growing counterpart of the store's immutable
// core.Trace. A LiveTrace accumulates tuples as a streaming distiller
// emits them, while sessions already attached replay it through
// LiveCursors. The cursor is a modulation.Source that simply runs dry at
// the live edge — the engine holds its current parameters exactly as the
// paper's kernel does when the daemon falls behind — and a Notifier
// wakeup resumes the schedule the moment the next tuple lands, so a
// session can start modulating against a collection that is still in
// progress.
package emud

import (
	"sync"
	"time"

	"tracemod/internal/core"
)

// LiveTrace is a replay trace that is still growing. Appends come from
// one producer (the stream's ingest loop); any number of cursors read
// concurrently.
type LiveTrace struct {
	mu     sync.Mutex
	tuples core.Trace
	total  time.Duration // sum of tuple durations
	loss   float64       // sum of L*D, for duration-weighted loss
	done   bool
	err    error
	notify []func()
}

// NewLiveTrace creates an empty growing trace.
func NewLiveTrace() *LiveTrace { return &LiveTrace{} }

// Append adds one tuple at the live edge and wakes every subscribed
// cursor. Appending after Complete is ignored.
func (lt *LiveTrace) Append(t core.Tuple) {
	lt.mu.Lock()
	if lt.done {
		lt.mu.Unlock()
		return
	}
	lt.tuples = append(lt.tuples, t)
	lt.total += t.D
	lt.loss += t.L * t.D.Seconds()
	fns := lt.notify
	lt.mu.Unlock()
	// Callbacks run outside the lock: the engine's wakeup takes the
	// engine mutex, and cursors take ours from inside the engine.
	for _, fn := range fns {
		fn()
	}
}

// Complete seals the trace: no more tuples will arrive. A non-nil err
// records why the stream ended early. Cursors are woken one last time so
// a looping session can wrap.
func (lt *LiveTrace) Complete(err error) {
	lt.mu.Lock()
	if lt.done {
		lt.mu.Unlock()
		return
	}
	lt.done = true
	lt.err = err
	fns := lt.notify
	lt.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Done reports whether the trace is sealed, and the error it ended with.
func (lt *LiveTrace) Done() (bool, error) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.done, lt.err
}

// Len returns the number of tuples so far.
func (lt *LiveTrace) Len() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return len(lt.tuples)
}

// Duration returns the total replay duration accumulated so far.
func (lt *LiveTrace) Duration() time.Duration {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.total
}

// WeightedLoss returns the duration-weighted loss of the tuples so far
// (0 while empty) — the live analogue of core.Trace.WeightedLoss, so the
// drop-accuracy SLO can judge sessions replaying a growing trace.
func (lt *LiveTrace) WeightedLoss() float64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.total <= 0 {
		return 0
	}
	return lt.loss / lt.total.Seconds()
}

// Snapshot copies the tuples accumulated so far.
func (lt *LiveTrace) Snapshot() core.Trace {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return append(core.Trace(nil), lt.tuples...)
}

// subscribe registers a wakeup callback fired after every Append and at
// Complete.
func (lt *LiveTrace) subscribe(fn func()) {
	lt.mu.Lock()
	lt.notify = append(lt.notify, fn)
	lt.mu.Unlock()
}

// NewCursor returns an independent read cursor. With loop set, the
// cursor wraps to the beginning — but only once the trace is complete;
// at the live edge it reports dry instead of replaying stale history.
func (lt *LiveTrace) NewCursor(loop bool) *LiveCursor {
	return &LiveCursor{lt: lt, loop: loop}
}

// LiveCursor reads a LiveTrace as a modulation.Source. The position is
// an absolute tuple index, so Skip past the live edge just means the
// cursor waits there until the stream grows to reach it.
type LiveCursor struct {
	lt   *LiveTrace
	loop bool
	pos  int
}

// Next implements modulation.Source: non-blocking, dry at the live edge.
func (c *LiveCursor) Next() (core.Tuple, bool) {
	c.lt.mu.Lock()
	defer c.lt.mu.Unlock()
	if c.pos >= len(c.lt.tuples) {
		if !c.loop || !c.lt.done || len(c.lt.tuples) == 0 {
			return core.Tuple{}, false
		}
		c.pos = 0
	}
	t := c.lt.tuples[c.pos]
	c.pos++
	return t, true
}

// Skip advances the cursor as if n tuples had been consumed.
func (c *LiveCursor) Skip(n int64) {
	if n > 0 {
		c.pos += int(n)
	}
}

// SetOnAvailable implements modulation.Notifier: the engine resumes its
// tuple schedule without polling when the stream grows.
func (c *LiveCursor) SetOnAvailable(fn func()) {
	c.lt.subscribe(fn)
}
