// Live replay traces: the growing counterpart of the store's immutable
// core.Trace. A LiveTrace accumulates tuples as a streaming distiller
// emits them, while sessions already attached replay it through
// LiveCursors. The cursor is a modulation.Source that simply runs dry at
// the live edge — the engine holds its current parameters exactly as the
// paper's kernel does when the daemon falls behind — and a Notifier
// wakeup resumes the schedule the moment the next tuple lands, so a
// session can start modulating against a collection that is still in
// progress.
package emud

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"tracemod/internal/core"
)

// tupleBytes approximates one in-memory tuple (5 × 8-byte fields) for
// the pinned-bytes accounting the brownout controller watches.
const tupleBytes = 40

// LiveTrace is a replay trace that is still growing. Appends come from
// one producer (the stream's ingest loop); any number of cursors read
// concurrently. Once sealed, the tuple slice can be spilled to disk
// under memory pressure and reloads transparently on the next read.
type LiveTrace struct {
	mu     sync.Mutex
	tuples core.Trace
	count  int           // authoritative length, valid even while spilled
	total  time.Duration // sum of tuple durations
	loss   float64       // sum of L*D, for duration-weighted loss
	done   bool
	err    error
	notify []func()

	spillPath string // non-empty while the tuples live on disk
}

// NewLiveTrace creates an empty growing trace.
func NewLiveTrace() *LiveTrace { return &LiveTrace{} }

// Append adds one tuple at the live edge and wakes every subscribed
// cursor. Appending after Complete is ignored.
func (lt *LiveTrace) Append(t core.Tuple) {
	lt.mu.Lock()
	if lt.done {
		lt.mu.Unlock()
		return
	}
	lt.tuples = append(lt.tuples, t)
	lt.count++
	lt.total += t.D
	lt.loss += t.L * t.D.Seconds()
	fns := lt.notify
	lt.mu.Unlock()
	// Callbacks run outside the lock: the engine's wakeup takes the
	// engine mutex, and cursors take ours from inside the engine.
	for _, fn := range fns {
		fn()
	}
}

// Complete seals the trace: no more tuples will arrive. A non-nil err
// records why the stream ended early. Cursors are woken one last time so
// a looping session can wrap.
func (lt *LiveTrace) Complete(err error) {
	lt.mu.Lock()
	if lt.done {
		lt.mu.Unlock()
		return
	}
	lt.done = true
	lt.err = err
	fns := lt.notify
	lt.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Done reports whether the trace is sealed, and the error it ended with.
func (lt *LiveTrace) Done() (bool, error) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.done, lt.err
}

// Len returns the number of tuples so far (spilled or resident).
func (lt *LiveTrace) Len() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.count
}

// MemBytes approximates the resident tuple memory this trace pins.
// Spilled tuples cost nothing until a read faults them back in.
func (lt *LiveTrace) MemBytes() int64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return int64(len(lt.tuples)) * tupleBytes
}

// Duration returns the total replay duration accumulated so far.
func (lt *LiveTrace) Duration() time.Duration {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.total
}

// WeightedLoss returns the duration-weighted loss of the tuples so far
// (0 while empty) — the live analogue of core.Trace.WeightedLoss, so the
// drop-accuracy SLO can judge sessions replaying a growing trace.
func (lt *LiveTrace) WeightedLoss() float64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.total <= 0 {
		return 0
	}
	return lt.loss / lt.total.Seconds()
}

// Snapshot copies the tuples accumulated so far (faulting them back
// from disk if spilled).
func (lt *LiveTrace) Snapshot() core.Trace {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.unspillLocked() != nil {
		return nil
	}
	return append(core.Trace(nil), lt.tuples...)
}

// Spilled reports whether the tuples currently live on disk.
func (lt *LiveTrace) Spilled() bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.spillPath != ""
}

// spillMagic stamps a spill file: "TSP1".
const spillMagic = 0x54535031

// Spill writes the tuple slice to path and drops the in-memory copy —
// the brownout controller's memory-for-latency trade. Only sealed
// traces spill: a growing trace's producer still holds the slice hot.
// Reads (Snapshot, cursor Next past the resident range) transparently
// fault the tuples back in. Idempotent: an already-spilled or empty
// trace is a no-op.
func (lt *LiveTrace) Spill(path string) error {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if !lt.done {
		return fmt.Errorf("emud: cannot spill a growing trace")
	}
	if lt.spillPath != "" || len(lt.tuples) == 0 {
		return nil
	}
	buf := make([]byte, 16+len(lt.tuples)*tupleBytes)
	binary.BigEndian.PutUint32(buf[0:4], spillMagic)
	binary.BigEndian.PutUint64(buf[8:16], uint64(len(lt.tuples)))
	p := 16
	for _, t := range lt.tuples {
		binary.BigEndian.PutUint64(buf[p:], uint64(t.D))
		binary.BigEndian.PutUint64(buf[p+8:], uint64(t.F))
		binary.BigEndian.PutUint64(buf[p+16:], math.Float64bits(float64(t.Vb)))
		binary.BigEndian.PutUint64(buf[p+24:], math.Float64bits(float64(t.Vr)))
		binary.BigEndian.PutUint64(buf[p+32:], math.Float64bits(t.L))
		p += tupleBytes
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("emud: spilling trace: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("emud: publishing spill: %w", err)
	}
	lt.spillPath = path
	lt.tuples = nil
	return nil
}

// unspillLocked faults a spilled tuple slice back into memory and
// removes the spill file (the controller may spill again later). No-op
// when resident.
func (lt *LiveTrace) unspillLocked() error {
	if lt.spillPath == "" {
		return nil
	}
	data, err := os.ReadFile(lt.spillPath)
	if err != nil {
		return fmt.Errorf("emud: reloading spilled trace: %w", err)
	}
	if len(data) < 16 || binary.BigEndian.Uint32(data[0:4]) != spillMagic {
		return fmt.Errorf("emud: spill file %s is corrupt", lt.spillPath)
	}
	n := int(binary.BigEndian.Uint64(data[8:16]))
	if n != lt.count || len(data) < 16+n*tupleBytes {
		return fmt.Errorf("emud: spill file %s holds %d tuples, want %d", lt.spillPath, n, lt.count)
	}
	tuples := make(core.Trace, n)
	p := 16
	for i := range tuples {
		tuples[i] = core.Tuple{
			D: time.Duration(binary.BigEndian.Uint64(data[p:])),
			DelayParams: core.DelayParams{
				F:  time.Duration(binary.BigEndian.Uint64(data[p+8:])),
				Vb: core.PerByte(math.Float64frombits(binary.BigEndian.Uint64(data[p+16:]))),
				Vr: core.PerByte(math.Float64frombits(binary.BigEndian.Uint64(data[p+24:]))),
			},
			L: math.Float64frombits(binary.BigEndian.Uint64(data[p+32:])),
		}
		p += tupleBytes
	}
	path := lt.spillPath
	lt.tuples = tuples
	lt.spillPath = ""
	_ = os.Remove(path)
	return nil
}

// subscribe registers a wakeup callback fired after every Append and at
// Complete.
func (lt *LiveTrace) subscribe(fn func()) {
	lt.mu.Lock()
	lt.notify = append(lt.notify, fn)
	lt.mu.Unlock()
}

// NewCursor returns an independent read cursor. With loop set, the
// cursor wraps to the beginning — but only once the trace is complete;
// at the live edge it reports dry instead of replaying stale history.
func (lt *LiveTrace) NewCursor(loop bool) *LiveCursor {
	return &LiveCursor{lt: lt, loop: loop}
}

// LiveCursor reads a LiveTrace as a modulation.Source. The position is
// an absolute tuple index, so Skip past the live edge just means the
// cursor waits there until the stream grows to reach it.
type LiveCursor struct {
	lt   *LiveTrace
	loop bool
	pos  int
}

// Next implements modulation.Source: non-blocking, dry at the live edge.
// A read into a spilled trace faults the tuples back in first.
func (c *LiveCursor) Next() (core.Tuple, bool) {
	lt := c.lt
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if c.pos >= lt.count {
		if !c.loop || !lt.done || lt.count == 0 {
			return core.Tuple{}, false
		}
		c.pos = 0
	}
	if lt.unspillLocked() != nil {
		return core.Tuple{}, false
	}
	t := lt.tuples[c.pos]
	c.pos++
	return t, true
}

// Skip advances the cursor as if n tuples had been consumed.
func (c *LiveCursor) Skip(n int64) {
	if n > 0 {
		c.pos += int(n)
	}
}

// SetOnAvailable implements modulation.Notifier: the engine resumes its
// tuple schedule without polling when the stream grows.
func (c *LiveCursor) SetOnAvailable(fn func()) {
	c.lt.subscribe(fn)
}
