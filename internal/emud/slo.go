// The farm's service-level objectives: what "this emulation is faithful
// and on time" means, measured live. Objectives are declared once at
// manager construction against the farm's own instruments and evaluated
// on demand by /v1/slo and /v1/health.
//
// The set mirrors the failure modes the paper's design cares about:
//
//   - tick lateness: the wheel must fire deliveries near their deadline
//     (the paper's 10 ms clock interrupt); a stalled shard shows up here
//     first.
//   - delivery deadline: the share of timer fires within two granularity
//     ticks — modulation delays are only faithful if the substrate honors
//     the schedule it was given.
//   - drop accuracy: each session's observed drop rate must track its
//     trace's duration-weighted loss (the replay's ground truth).
//   - quarantine and shed rates: a farm quarantining tenants or shedding
//     load is degraded even if the survivors are on time.
package emud

import (
	"math"
	"sort"
	"time"

	"tracemod/internal/emud/pressure"
	"tracemod/internal/obs"
)

// SLO evaluation tunables.
const (
	// sloMinResolved is how many resolved packets (delivered+dropped) a
	// session needs before its drop rate is judged — below it the binomial
	// noise swamps the signal.
	sloMinResolved = 200
	// sloDropTolerance is the allowed absolute deviation of a session's
	// observed drop rate from its trace's expected loss, plus a relative
	// term scaled by the expectation (binomial spread grows with p).
	sloDropTolerance = 0.02
	sloDropRelative  = 0.25
	// sloWorstSessions caps the per-session detail in the report.
	sloWorstSessions = 10
)

// SessionSLO is one session's drop-accuracy judgment in the report.
type SessionSLO struct {
	ID        string  `json:"id"`
	Expected  float64 `json:"expected_loss"`
	Observed  float64 `json:"observed_loss"`
	Deviation float64 `json:"deviation"`
	Resolved  int64   `json:"resolved_packets"`
	OK        bool    `json:"ok"`
}

// FarmSLOReport is the /v1/slo payload: the objective evaluation plus the
// worst drop-accuracy offenders among sessions with enough traffic.
type FarmSLOReport struct {
	obs.SLOReport
	Sessions []SessionSLO `json:"sessions,omitempty"`
}

// buildSLOs declares the farm's objectives against its live instruments.
// gran is the wheel granularity actually in force (0 = exact scheduling;
// thresholds then assume the paper's default tick).
func (m *Manager) buildSLOs(gran time.Duration) *obs.SLOSet {
	tick := gran
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	set := obs.NewSLOSet()
	set.Add(&obs.SLO{
		Name:     "wheel-tick-lateness-p99",
		Help:     "99th-percentile timer-fire lateness must stay within two ticks.",
		Kind:     obs.SLOQuantile,
		Critical: true,
		Hist:     m.wheel.FireLateness(),
		Quantile: 0.99,
		// Coalescing legitimately defers a fire up to one full granularity;
		// the second tick is the operating margin.
		Threshold: 2 * tick,
	})
	set.Add(&obs.SLO{
		Name:      "delivery-deadline-compliance",
		Help:      "Share of timer fires within two ticks of their deadline.",
		Kind:      obs.SLOCompliance,
		Hist:      m.wheel.FireLateness(),
		Threshold: 2 * tick,
		Target:    0.999,
	})
	set.Add(&obs.SLO{
		Name:   "drop-accuracy",
		Help:   "Share of sessions whose observed drop rate tracks their trace's expected loss.",
		Kind:   obs.SLORatio,
		Ratio:  m.dropAccuracyRatio,
		Target: 0.95,
	})
	set.Add(&obs.SLO{
		Name:     "quarantine-rate",
		Help:     "Share of sessions never quarantined for a panicking callback.",
		Kind:     obs.SLORatio,
		Critical: true,
		Ratio:    m.quarantineRatio,
		Target:   0.99,
	})
	set.Add(&obs.SLO{
		Name:   "admission-shed-rate",
		Help:   "Share of offered packets accepted by admission control.",
		Kind:   obs.SLORatio,
		Ratio:  m.shedRatio,
		Target: 0.95,
	})
	set.Add(&obs.SLO{
		Name:     "ingest-brownout",
		Help:     "Live ingest accepting new streams: the brownout ladder must stay below reject-streams.",
		Kind:     obs.SLORatio,
		Critical: true,
		Ratio:    m.brownoutRatio,
		Target:   1,
	})
	return set
}

// brownoutRatio is the ingest-brownout indicator: 1 while the farm
// accepts new streams, 0 from reject-streams upward. The closure reads
// the controller lazily — buildSLOs runs before the controller exists,
// and a nil controller reports Normal.
func (m *Manager) brownoutRatio() (float64, bool) {
	if m.pressure.Level() >= pressure.RejectStreams {
		return 0, true
	}
	return 1, true
}

// SLOs exposes the farm's objective set (for callers adding their own).
func (m *Manager) SLOs() *obs.SLOSet { return m.slos }

// sessionSLOs judges every session with enough resolved traffic.
func (m *Manager) sessionSLOs() []SessionSLO {
	var out []SessionSLO
	for _, s := range m.List() {
		st := s.Stats()
		resolved := st.Delivered + st.Dropped
		if resolved < sloMinResolved {
			continue
		}
		exp := s.ExpectedLoss()
		observed := float64(st.Dropped) / float64(resolved)
		dev := math.Abs(observed - exp)
		out = append(out, SessionSLO{
			ID:        s.ID,
			Expected:  exp,
			Observed:  observed,
			Deviation: dev,
			Resolved:  resolved,
			OK:        dev <= sloDropTolerance+sloDropRelative*exp,
		})
	}
	return out
}

// dropAccuracyRatio is the drop-accuracy SLO indicator: the fraction of
// judgeable sessions within tolerance. ok=false until any session has
// resolved enough packets.
func (m *Manager) dropAccuracyRatio() (float64, bool) {
	judged := m.sessionSLOs()
	if len(judged) == 0 {
		return 0, false
	}
	good := 0
	for _, j := range judged {
		if j.OK {
			good++
		}
	}
	return float64(good) / float64(len(judged)), true
}

// quarantineRatio reports the never-quarantined fraction of all sessions
// ever created.
func (m *Manager) quarantineRatio() (float64, bool) {
	m.mu.Lock()
	created := m.seq
	m.mu.Unlock()
	if created == 0 {
		return 0, false
	}
	return 1 - float64(m.quarantinedTotal.Load())/float64(created), true
}

// shedRatio reports the accepted fraction of all packets ever offered.
func (m *Manager) shedRatio() (float64, bool) {
	var accepted int64
	for _, s := range m.List() {
		accepted += s.submitted.Load()
	}
	shed := m.shedTotal.Load()
	total := accepted + shed
	if total == 0 {
		return 0, false
	}
	return float64(accepted) / float64(total), true
}

// SLOReport evaluates every objective and attaches the worst
// drop-accuracy offenders (violators first, then largest deviation).
func (m *Manager) SLOReport() FarmSLOReport {
	rep := FarmSLOReport{SLOReport: m.slos.Evaluate()}
	judged := m.sessionSLOs()
	sort.Slice(judged, func(i, j int) bool {
		if judged[i].OK != judged[j].OK {
			return !judged[i].OK
		}
		return judged[i].Deviation > judged[j].Deviation
	})
	if len(judged) > sloWorstSessions {
		judged = judged[:sloWorstSessions]
	}
	rep.Sessions = judged
	return rep
}
