// The control plane: an HTTP/JSON API over the session farm. Create,
// list, inspect, start, stop, and delete sessions; attach a livewire UDP
// relay to a session; and serve the farm's obs registry on the same mux
// (/metrics, /healthz, /debug/...). The surface is deliberately plain —
// net/http, no framework — so the daemon stays stdlib-only.
package emud

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/emud/pressure"
	"tracemod/internal/faults"
	"tracemod/internal/livewire"
	"tracemod/internal/obs"
	"tracemod/internal/obs/span"
	"tracemod/internal/replay"
)

// HTTP-hardening defaults for the control-plane server.
const (
	// DefaultMaxBodyBytes caps a request body (inline traces included);
	// larger bodies get 413.
	DefaultMaxBodyBytes = 8 << 20

	httpReadTimeout  = 30 * time.Second
	httpWriteTimeout = 60 * time.Second // must exceed the longest ?drain= wait
	httpIdleTimeout  = 2 * time.Minute
)

// API serves the control plane for one Manager.
type API struct {
	m   *Manager
	reg *obs.Registry   // may be nil
	tr  *obs.RingTracer // may be nil

	faultSlow, faultErr *faults.Point // control-plane chaos (nil when no injector)

	// idem deduplicates session creates by Idempotency-Key: a retried
	// create (a client resending after a lost response, or a cluster
	// coordinator's backoff retry) returns the original session instead of
	// minting a second one.
	idemMu sync.Mutex
	idem   map[string]*idemEntry
}

// idemEntry is one Idempotency-Key's state: pending (done open) while the
// first request executes, then the created session's ID. Failed creates
// are forgotten so a retry re-executes.
type idemEntry struct {
	done chan struct{}
	id   string
	exp  time.Time
}

// idemTTL bounds how long a completed create is replayable by key.
const idemTTL = 10 * time.Minute

// NewAPI builds the control plane. reg and tracer may be nil; when reg is
// non-nil the obs debug surface is mounted alongside the session routes.
func NewAPI(m *Manager, reg *obs.Registry, tracer *obs.RingTracer) *API {
	a := &API{m: m, reg: reg, tr: tracer}
	if inj := m.opts.Faults; inj != nil {
		a.faultSlow = inj.Point("control.slow")
		a.faultErr = inj.Point("control.error")
	}
	return a
}

// Mux returns the control-plane routes.
func (a *API) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", a.createSession)
	mux.HandleFunc("GET /v1/sessions", a.listSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", a.getSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", a.deleteSession)
	mux.HandleFunc("POST /v1/sessions/{id}/start", a.startSession)
	mux.HandleFunc("POST /v1/sessions/{id}/stop", a.stopSession)
	mux.HandleFunc("GET /v1/sessions/{id}/flight", a.flightDump)
	mux.HandleFunc("POST /v1/sessions/{id}/handoff", a.handoffSession)
	mux.HandleFunc("GET /v1/snapshot", a.snapshotDump)
	mux.HandleFunc("POST /v1/restore", a.restoreSnapshot)
	mux.HandleFunc("POST /v1/drain", a.beginDrain)
	mux.HandleFunc("POST /v1/streams", a.createStream)
	mux.HandleFunc("GET /v1/streams", a.listStreams)
	mux.HandleFunc("GET /v1/streams/{name}", a.getStream)
	mux.HandleFunc("PATCH /v1/streams/{name}", a.resumeStream)
	mux.HandleFunc("GET /v1/streams/{name}/offset", a.streamOffset)
	mux.HandleFunc("DELETE /v1/streams/{name}", a.deleteStream)
	mux.HandleFunc("GET /v1/farm", a.farmInfo)
	mux.HandleFunc("GET /v1/slo", a.sloReport)
	mux.HandleFunc("GET /v1/health", a.health)
	mux.HandleFunc("GET /v1/faults", a.getFaults)
	mux.HandleFunc("POST /v1/faults", a.setFault)
	mux.HandleFunc("DELETE /v1/faults", a.resetFaults)
	if a.reg != nil {
		// The obs debug surface on the same listener: /metrics, /healthz,
		// /debug/events, /debug/pprof/...
		for pattern, h := range muxRoutes(obs.Mux(a.reg, a.tr)) {
			mux.Handle(pattern, h)
		}
	} else {
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
	}
	return mux
}

// Handler returns the hardened control plane: the Mux routes behind
// W3C trace-context ingest/emit, body-size limits, control-plane fault
// points, and a JSON error envelope (plain-text errors like the mux's
// own 404/405 become {"error": ..., "status": ...}).
func (a *API) Handler() http.Handler {
	return a.trace(a.envelope(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Live-ingest uploads (initial POST and resumed PATCH) are exempt
		// from the body cap: a collected trace is unbounded by design, and
		// the stream path consumes it chunk-by-chunk without ever holding
		// the body in memory.
		// /v1/restore is exempt too: a failover snapshot embeds whole
		// traces and may legitimately exceed the inline-trace cap.
		upload := (r.Method == http.MethodPost && r.URL.Path == "/v1/streams") ||
			(r.Method == http.MethodPatch && strings.HasPrefix(r.URL.Path, "/v1/streams/")) ||
			(r.Method == http.MethodPost && r.URL.Path == "/v1/restore")
		if !upload {
			r.Body = http.MaxBytesReader(w, r.Body, DefaultMaxBodyBytes)
		}
		// The fault-control endpoint is exempt from control-plane fault
		// injection: arming control.error at rate 1 must not brick the
		// only switch that can disarm it.
		if r.URL.Path != "/v1/faults" {
			a.faultSlow.Stall()
			if a.faultErr.Fire() {
				writeErr(w, http.StatusInternalServerError, errors.New("injected control-plane fault"))
				return
			}
		}
		a.Mux().ServeHTTP(w, r)
	})))
}

// statusWriter records the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// trace is the outermost control-plane middleware: it ingests an incoming
// `traceparent` header (a sampled remote parent forces sampling, so
// external callers can always stitch a full tree), starts the request's
// server span, emits the span's own traceparent on the response, carries
// the span in the request context for handlers to hang children on, and
// writes one structured request log line (trace ID attached when
// sampled).
func (a *API) trace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		log := a.m.log
		if a.m.spans.Enabled() {
			parent, _ := span.ParseTraceParent(r.Header.Get(span.TraceParentHeader))
			if sp := a.m.spans.StartRemote(parent, "http.request"); sp != nil {
				sp.AttrStr("method", r.Method)
				sp.AttrStr("path", r.URL.Path)
				w.Header().Set(span.TraceParentHeader, sp.Context().TraceParent())
				r = r.WithContext(span.NewContext(r.Context(), sp))
				log = log.With("trace", sp.TraceID().String(), "span", sp.Context().Span.String())
				defer sp.End()
			}
		}
		next.ServeHTTP(sw, r)
		log.Debug("control request", "method", r.Method, "path", r.URL.Path, "status", sw.status)
	})
}

// envelopeWriter buffers non-JSON error responses so envelope can
// rewrite them as the control plane's JSON error shape.
type envelopeWriter struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
	intercept   bool
	buf         bytes.Buffer
}

func (w *envelopeWriter) WriteHeader(code int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	w.status = code
	if code >= 400 && !strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		w.intercept = true
		return // held back; envelope writes the JSON version
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *envelopeWriter) Write(p []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.intercept {
		return w.buf.Write(p)
	}
	return w.ResponseWriter.Write(p)
}

// envelope makes every error response JSON, including ones produced
// outside our handlers (ServeMux 404/405, MaxBytesReader's 413).
func (a *API) envelope(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ew := &envelopeWriter{ResponseWriter: w}
		next.ServeHTTP(ew, r)
		if ew.intercept {
			msg := strings.TrimSpace(ew.buf.String())
			if msg == "" {
				msg = http.StatusText(ew.status)
			}
			writeErr(w, ew.status, errors.New(msg))
		}
	})
}

// FaultRequest arms one fault point via POST /v1/faults.
type FaultRequest struct {
	// Name is the fault point ("store.parse", "wheel.stall", ...; GET
	// /v1/faults lists the registered menu).
	Name string `json:"name"`
	// Rate is the fire probability in [0, 1]; 0 disarms.
	Rate float64 `json:"rate"`
	// DelayMS configures stall-type points.
	DelayMS float64 `json:"delay_ms,omitempty"`
}

func (a *API) getFaults(w http.ResponseWriter, _ *http.Request) {
	inj := a.m.opts.Faults
	if inj == nil {
		writeErr(w, http.StatusNotFound, errors.New("no fault injector configured"))
		return
	}
	st := inj.Snapshot()
	if st == nil {
		st = []faults.State{}
	}
	writeJSON(w, http.StatusOK, st)
}

func (a *API) setFault(w http.ResponseWriter, r *http.Request) {
	inj := a.m.opts.Faults
	if inj == nil {
		writeErr(w, http.StatusNotFound, errors.New("no fault injector configured"))
		return
	}
	var req FaultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, decodeStatus(err), fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("fault name is required"))
		return
	}
	inj.Set(req.Name, faults.Config{
		Rate:  req.Rate,
		Delay: time.Duration(req.DelayMS * float64(time.Millisecond)),
	})
	writeJSON(w, http.StatusOK, inj.Snapshot())
}

func (a *API) resetFaults(w http.ResponseWriter, _ *http.Request) {
	inj := a.m.opts.Faults
	if inj == nil {
		writeErr(w, http.StatusNotFound, errors.New("no fault injector configured"))
		return
	}
	inj.Reset()
	w.WriteHeader(http.StatusNoContent)
}

// muxRoutes lists the obs debug mux's patterns so they can be re-homed
// onto the control-plane mux (http.ServeMux has no route enumeration).
func muxRoutes(h http.Handler) map[string]http.Handler {
	routes := map[string]http.Handler{}
	for _, p := range []string{
		"/metrics", "/healthz", "/debug/events",
		"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/profile",
		"/debug/pprof/symbol", "/debug/pprof/trace",
	} {
		routes[p] = h
	}
	return routes
}

// SessionRequest is the create-session body.
type SessionRequest struct {
	// Name labels the session (optional).
	Name string `json:"name,omitempty"`
	// Exactly one trace source: a file path (replay or collected format,
	// resolved through the trace store), a synthetic trace name
	// ("wavelan" or "slow" plus DurationSec), inline tuples, or the name
	// of a live-ingest stream (POST /v1/streams) — the session then
	// modulates against the growing trace, waiting at the live edge.
	TracePath string      `json:"trace_path,omitempty"`
	Synthetic string      `json:"synthetic,omitempty"`
	Inline    []TupleJSON `json:"inline,omitempty"`
	Stream    string      `json:"stream,omitempty"`
	// DurationSec sizes synthetic traces (default 3600).
	DurationSec float64 `json:"duration_sec,omitempty"`
	// Loop replays the trace forever (default true).
	Loop *bool `json:"loop,omitempty"`
	// TickUS is the engine quantization in microseconds: 0 = the default
	// 10 ms tick, negative = exact scheduling.
	TickUS int64 `json:"tick_us,omitempty"`
	// Seed drives the session's drop lottery.
	Seed int64 `json:"seed,omitempty"`
	// InboundExtraNS and CompensationNS are per-byte costs in ns/byte.
	InboundExtraNS float64 `json:"inbound_extra_ns_per_byte,omitempty"`
	CompensationNS float64 `json:"compensation_ns_per_byte,omitempty"`
	// Start launches the session immediately (default true).
	Start *bool `json:"start,omitempty"`
	// Relay, if set, attaches a UDP relay after start.
	Relay *RelaySpec `json:"relay,omitempty"`
}

// RelaySpec asks for a livewire relay on the session.
type RelaySpec struct {
	// Listen is the client-facing UDP address ("127.0.0.1:0" picks a
	// free port, reported back).
	Listen string `json:"listen"`
	// Target is the server the relay forwards toward.
	Target string `json:"target"`
}

// TupleJSON is one inline replay tuple.
type TupleJSON struct {
	DurationSec float64 `json:"duration_sec"`
	LatencyMS   float64 `json:"latency_ms"`
	VbNSPerByte float64 `json:"vb_ns_per_byte"`
	VrNSPerByte float64 `json:"vr_ns_per_byte"`
	Loss        float64 `json:"loss"`
}

// SessionInfo is the wire representation of a session.
type SessionInfo struct {
	ID        string  `json:"id"`
	Name      string  `json:"name,omitempty"`
	State     string  `json:"state"`
	TraceRef  string  `json:"trace_ref,omitempty"`
	Live      bool    `json:"live,omitempty"`
	Tuples    int     `json:"trace_tuples"`
	TraceSec  float64 `json:"trace_duration_sec"`
	Loop      bool    `json:"loop"`
	TickUS    int64   `json:"tick_us"`
	Seed      int64   `json:"seed"`
	RelayAddr string  `json:"relay_addr,omitempty"`
	IdleSec   float64 `json:"idle_sec"`

	Submitted   int64 `json:"submitted"`
	Delivered   int64 `json:"delivered"`
	Dropped     int64 `json:"dropped"`
	Rejected    int64 `json:"rejected"`
	Shed        int64 `json:"shed"`
	InFlight    int64 `json:"in_flight"`
	Cursor      int64 `json:"cursor"`
	Quarantined bool  `json:"quarantined,omitempty"`

	// Relay holds the live data-plane counters when a relay is attached.
	Relay *RelayStats `json:"relay,omitempty"`

	// Error carries a restore-time fault (e.g. a stream the session was
	// attached to that no longer exists after -recover).
	Error string `json:"error,omitempty"`
}

// RelayStats is the wire representation of a relay's data-plane counters
// plus throughput rates derived from the relay's uptime.
type RelayStats struct {
	Sharded      bool    `json:"sharded"`
	ReadPackets  int64   `json:"read_packets"`
	ReadBytes    int64   `json:"read_bytes"`
	SentBytes    int64   `json:"sent_bytes"`
	SendErrors   int64   `json:"send_errors"`
	SocketErrors int64   `json:"socket_errors"`
	ReadBatches  int64   `json:"read_batches"`
	AvgBatch     float64 `json:"avg_batch"`
	FlushFull    int64   `json:"flush_full"`
	FlushBurst   int64   `json:"flush_burst"`
	DirectSends  int64   `json:"direct_sends"`
	PPS          float64 `json:"pps"`
	BytesPerSec  float64 `json:"bytes_per_sec"`
}

func relayStats(r *livewire.Relay) *RelayStats {
	if r == nil {
		return nil
	}
	st := r.Stats()
	up := r.Uptime().Seconds()
	rs := &RelayStats{
		Sharded:      r.Sharded(),
		ReadPackets:  st.ReadPackets,
		ReadBytes:    st.ReadBytes,
		SentBytes:    st.SentBytes,
		SendErrors:   st.SendErrors,
		SocketErrors: st.SocketErrors,
		ReadBatches:  st.Batches,
		AvgBatch:     st.AvgBatch(),
		FlushFull:    st.FlushFull,
		FlushBurst:   st.FlushBurst,
		DirectSends:  st.DirectSends,
	}
	if up > 0 {
		rs.PPS = float64(st.ReadPackets) / up
		rs.BytesPerSec = float64(st.ReadBytes) / up
	}
	return rs
}

// FarmInfo summarizes the daemon.
type FarmInfo struct {
	Sessions      int           `json:"sessions"`
	MaxSessions   int           `json:"max_sessions"`
	Draining      bool          `json:"draining,omitempty"`
	WheelShards   int           `json:"wheel_shards"`
	GranularityUS int64         `json:"wheel_granularity_us"`
	TimersPending int64         `json:"timers_pending"`
	CachedTraces  int           `json:"cached_traces"`
	Streams       int           `json:"streams"`
	IdleTimeout   time.Duration `json:"idle_timeout_ns"`
	Shed          int64         `json:"shed"`
	Quarantined   int64         `json:"quarantined"`
	InFlightBytes int64         `json:"in_flight_bytes"`
	WheelPanics   int64         `json:"wheel_panics"`

	// Data-plane shape and farm-wide relay aggregates.
	PumpShards      int   `json:"pump_shards"`
	RelayPackets    int64 `json:"relay_read_packets"`
	RelayReadBytes  int64 `json:"relay_read_bytes"`
	RelaySentBytes  int64 `json:"relay_sent_bytes"`
	RelaySendErrors int64 `json:"relay_send_errors"`
}

func sessionInfo(s *Session) SessionInfo {
	cfg := s.Config()
	st := s.Stats()
	tuples, traceSec := len(cfg.Trace), cfg.Trace.TotalDuration().Seconds()
	if cfg.Live != nil {
		tuples, traceSec = cfg.Live.Len(), cfg.Live.Duration().Seconds()
	}
	var errStr string
	if err := s.RestoreError(); err != nil {
		errStr = err.Error()
	}
	return SessionInfo{
		ID:          s.ID,
		Name:        cfg.Name,
		State:       s.State().String(),
		TraceRef:    cfg.TraceRef,
		Live:        cfg.Live != nil,
		Tuples:      tuples,
		TraceSec:    traceSec,
		Loop:        cfg.Loop,
		TickUS:      cfg.Tick.Microseconds(),
		Seed:        cfg.Seed,
		RelayAddr:   s.RelayAddr(),
		IdleSec:     s.IdleFor().Seconds(),
		Submitted:   st.Submitted,
		Delivered:   st.Delivered,
		Dropped:     st.Dropped,
		Rejected:    st.Rejected,
		Shed:        st.Shed,
		InFlight:    st.InFlight,
		Cursor:      s.Cursor(),
		Quarantined: s.Quarantined(),
		Relay:       relayStats(s.Relay()),
		Error:       errStr,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// errorEnvelope is the control plane's uniform error shape.
type errorEnvelope struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorEnvelope{Error: err.Error(), Status: code})
}

// decodeStatus maps a JSON decode failure to its status: an oversized
// body (MaxBytesReader) is 413, everything else 400.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// resolveTrace turns a request's trace spec into a shared core.Trace, or
// — for a stream source — the growing LiveTrace backing it.
func (a *API) resolveTrace(req *SessionRequest) (core.Trace, *LiveTrace, string, error) {
	sources := 0
	for _, set := range []bool{req.TracePath != "", req.Synthetic != "", len(req.Inline) > 0, req.Stream != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, nil, "", errors.New("exactly one of trace_path, synthetic, inline, stream is required")
	}
	switch {
	case req.Stream != "":
		lt, ok := a.m.Store().LookupLive(req.Stream)
		if !ok {
			return nil, nil, "", fmt.Errorf("no such stream %q", req.Stream)
		}
		return nil, lt, "stream:" + req.Stream, nil
	case req.TracePath != "":
		tr, err := a.m.Store().Load(req.TracePath)
		return tr, nil, req.TracePath, err
	case req.Synthetic != "":
		dur := time.Duration(req.DurationSec * float64(time.Second))
		if dur <= 0 {
			dur = time.Hour
		}
		var tr core.Trace
		switch req.Synthetic {
		case "wavelan":
			tr = replay.WaveLANLike(dur)
		case "slow":
			tr = replay.SlowNetLike(dur)
		default:
			return nil, nil, "", fmt.Errorf("unknown synthetic trace %q (want wavelan or slow)", req.Synthetic)
		}
		return tr, nil, "synthetic:" + req.Synthetic, nil
	default:
		tr := make(core.Trace, 0, len(req.Inline))
		for _, t := range req.Inline {
			tr = append(tr, core.Tuple{
				D: time.Duration(t.DurationSec * float64(time.Second)),
				DelayParams: core.DelayParams{
					F:  time.Duration(t.LatencyMS * float64(time.Millisecond)),
					Vb: core.PerByte(t.VbNSPerByte),
					Vr: core.PerByte(t.VrNSPerByte),
				},
				L: t.Loss,
			})
		}
		if err := tr.Validate(); err != nil {
			return nil, nil, "", err
		}
		// The ref carries a content hash: two different inline traces must
		// not alias in the snapshot's deduplicated trace table.
		h := fnv.New64a()
		for _, t := range req.Inline {
			fmt.Fprintf(h, "%v|%v|%v|%v|%v;", t.DurationSec, t.LatencyMS, t.VbNSPerByte, t.VrNSPerByte, t.Loss)
		}
		return tr, nil, fmt.Sprintf("inline:%d-%016x", len(tr), h.Sum64()), nil
	}
}

// idemClaim resolves one Idempotency-Key attempt: owner=true means this
// request executes the create (and must settle the entry with
// idemResolve); otherwise the returned entry is an earlier attempt to
// wait on.
func (a *API) idemClaim(key string) (*idemEntry, bool) {
	a.idemMu.Lock()
	defer a.idemMu.Unlock()
	if a.idem == nil {
		a.idem = map[string]*idemEntry{}
	}
	now := time.Now()
	for k, e := range a.idem {
		if !e.exp.IsZero() && now.After(e.exp) {
			delete(a.idem, k)
		}
	}
	if e, ok := a.idem[key]; ok {
		return e, false
	}
	e := &idemEntry{done: make(chan struct{})}
	a.idem[key] = e
	return e, true
}

// idemResolve settles a claimed key: successful creates are remembered
// for idemTTL; failures are forgotten so a retry re-executes.
func (a *API) idemResolve(key, id string, ok bool) {
	a.idemMu.Lock()
	e := a.idem[key]
	if e != nil {
		if ok {
			e.id = id
			e.exp = time.Now().Add(idemTTL)
		} else {
			delete(a.idem, key)
		}
	}
	a.idemMu.Unlock()
	if e != nil {
		close(e.done)
	}
}

// createSession is POST /v1/sessions. With an Idempotency-Key header the
// create is exactly-once per key: a concurrent or later retry of the same
// key waits for (or replays) the first attempt's session instead of
// creating a second one — the guarantee a retrying client or proxying
// cluster coordinator relies on.
func (a *API) createSession(w http.ResponseWriter, r *http.Request) {
	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		a.doCreateSession(w, r)
		return
	}
	for {
		e, owner := a.idemClaim(key)
		if owner {
			id, ok := a.doCreateSession(w, r)
			a.idemResolve(key, id, ok)
			return
		}
		select {
		case <-e.done:
		case <-r.Context().Done():
			writeErr(w, http.StatusServiceUnavailable, r.Context().Err())
			return
		}
		if e.id != "" {
			if s, ok := a.m.Get(e.id); ok {
				writeJSON(w, http.StatusCreated, sessionInfo(s))
				return
			}
			writeErr(w, http.StatusConflict,
				fmt.Errorf("idempotency key replay: session %s no longer exists", e.id))
			return
		}
		// The first attempt failed and was forgotten; this retry executes.
	}
}

// doCreateSession performs the create and reports the new session's ID on
// success (for idempotency bookkeeping).
func (a *API) doCreateSession(w http.ResponseWriter, r *http.Request) (string, bool) {
	sp := span.FromContext(r.Context())
	var req SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, decodeStatus(err), fmt.Errorf("bad request body: %w", err))
		return "", false
	}
	rsp := sp.Child("trace.resolve")
	trace, live, ref, err := a.resolveTrace(&req)
	if rsp != nil {
		rsp.AttrStr("ref", ref)
		rsp.Attr("tuples", int64(len(trace)))
		rsp.End()
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return "", false
	}
	loop := req.Loop == nil || *req.Loop
	tick := time.Duration(req.TickUS) * time.Microsecond
	csp := sp.Child("session.create")
	defer csp.End()
	s, err := a.m.Create(SessionConfig{
		Name:         req.Name,
		Trace:        trace,
		Live:         live,
		TraceRef:     ref,
		Loop:         loop,
		Tick:         tick,
		Seed:         req.Seed,
		InboundExtra: core.PerByte(req.InboundExtraNS),
		Compensation: core.PerByte(req.CompensationNS),
	})
	if err != nil {
		code := http.StatusConflict
		if errors.Is(err, ErrOverload) {
			code = http.StatusTooManyRequests
		}
		if errors.Is(err, ErrDraining) {
			code = http.StatusServiceUnavailable
		}
		// writeStreamErr upgrades a typed BrownoutError to 429 with a
		// Retry-After hint — session admission rides the same ladder as
		// stream admission.
		writeStreamErr(w, code, err)
		return "", false
	}
	csp.AttrStr("session", s.ID)
	if req.Start == nil || *req.Start {
		if err := s.Start(); err != nil {
			a.m.Delete(s.ID)
			writeErr(w, http.StatusInternalServerError, err)
			return "", false
		}
		if req.Relay != nil {
			if _, err := s.AttachRelay(req.Relay.Listen, req.Relay.Target); err != nil {
				a.m.Delete(s.ID)
				writeErr(w, http.StatusBadRequest, err)
				return "", false
			}
		}
	} else if req.Relay != nil {
		a.m.Delete(s.ID)
		writeErr(w, http.StatusBadRequest, errors.New("relay requires start"))
		return "", false
	}
	writeJSON(w, http.StatusCreated, sessionInfo(s))
	return s.ID, true
}

func (a *API) listSessions(w http.ResponseWriter, _ *http.Request) {
	sessions := a.m.List()
	out := make([]SessionInfo, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, sessionInfo(s))
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) getSession(w http.ResponseWriter, r *http.Request) {
	s, ok := a.m.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(s))
}

func (a *API) deleteSession(w http.ResponseWriter, r *http.Request) {
	if !a.m.Delete(r.PathValue("id")) {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *API) startSession(w http.ResponseWriter, r *http.Request) {
	s, ok := a.m.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	if err := s.Start(); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(s))
}

// stopSession stops a session; with ?drain=DURATION it drains gracefully
// first (e.g. ?drain=2s).
func (a *API) stopSession(w http.ResponseWriter, r *http.Request) {
	s, ok := a.m.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	if d := r.URL.Query().Get("drain"); d != "" {
		timeout, err := time.ParseDuration(d)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad drain duration: %w", err))
			return
		}
		s.Drain(timeout)
	} else {
		s.Stop()
	}
	writeJSON(w, http.StatusOK, sessionInfo(s))
}

// snapshotDump is GET /v1/snapshot: the farm's current durable state as
// one self-contained FarmSnapshot — the same shape WriteSnapshot persists.
// A cluster coordinator polls it so a worker's latest state is already in
// hand when the worker dies.
func (a *API) snapshotDump(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.m.Snapshot())
}

// RestoreResult is the POST /v1/restore payload: how many sessions were
// rebuilt, and the first per-session failure when any session could not
// be fully brought back (parked sessions still count as restored).
type RestoreResult struct {
	Restored int    `json:"restored"`
	Error    string `json:"error,omitempty"`
}

// restoreSnapshot is POST /v1/restore: rebuild the sessions of a posted
// FarmSnapshot in this farm under their original IDs — the receiving half
// of failover and live migration. Per-session failures park or skip that
// session; the call only errors wholesale on an unreadable body.
func (a *API) restoreSnapshot(w http.ResponseWriter, r *http.Request) {
	var snap FarmSnapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		writeErr(w, decodeStatus(err), fmt.Errorf("bad snapshot body: %w", err))
		return
	}
	n, err := a.m.Restore(&snap)
	res := RestoreResult{Restored: n}
	code := http.StatusOK
	if err != nil {
		res.Error = err.Error()
		if n == 0 {
			code = http.StatusConflict
		}
	}
	writeJSON(w, code, res)
}

// handoffSession is POST /v1/sessions/{id}/handoff?drain=2s: quiesce one
// session and return it as a single-session snapshot for live migration.
// The session is deleted from this farm once extracted; the caller
// restores the snapshot on the destination.
func (a *API) handoffSession(w http.ResponseWriter, r *http.Request) {
	drain := a.m.opts.DrainTimeout
	if d := r.URL.Query().Get("drain"); d != "" {
		timeout, err := time.ParseDuration(d)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad drain duration: %w", err))
			return
		}
		drain = timeout
	}
	snap, err := a.m.Handoff(r.PathValue("id"), drain)
	if err != nil {
		code := http.StatusConflict
		if strings.Contains(err.Error(), "not found") {
			code = http.StatusNotFound
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// beginDrain is POST /v1/drain: flip the farm into planned-shutdown mode.
// New session creates are refused with 503, /v1/health fails readiness
// with status "draining" (liveness at /healthz stays up), and a cluster
// coordinator responds by live-migrating this worker's sessions away
// instead of declaring it dead.
func (a *API) beginDrain(w http.ResponseWriter, r *http.Request) {
	a.m.BeginDrain()
	a.health(w, r)
}

// streamLiveEdgeTimeout is the longest an in-flight upload may sit idle
// at the live edge before the daemon cuts it: the rolling per-chunk read
// deadline POST /v1/streams re-arms between chunks. A paused collector
// is tolerated up to this long; a dead one does not pin the stream
// forever.
const streamLiveEdgeTimeout = 30 * time.Second

// writeStreamErr maps the ingest path's typed errors onto the wire:
// brownout rejections become 429 with a Retry-After hint, offset
// mismatches 409 with the committed offset in Upload-Offset, quota
// overruns 413. Anything untyped falls back to the caller's code.
func writeStreamErr(w http.ResponseWriter, fallback int, err error) {
	var be *BrownoutError
	if errors.As(err, &be) {
		secs := int(be.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeErr(w, http.StatusTooManyRequests, err)
		return
	}
	var oe *OffsetError
	if errors.As(err, &oe) {
		w.Header().Set("Upload-Offset", strconv.FormatInt(oe.Committed, 10))
		writeErr(w, http.StatusConflict, err)
		return
	}
	var qe *QuotaError
	if errors.As(err, &qe) {
		writeErr(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	writeErr(w, fallback, err)
}

// pauseIngest reports whether the brownout ladder has reached the rung
// where live-edge reads stop. When it has, the typed error to send the
// uploader is returned: the connection is released, the stream stays
// receiving, and the collector comes back after Retry-After.
func (a *API) pauseIngest() *BrownoutError {
	p := a.m.Pressure()
	if lvl := p.Level(); lvl >= pressure.PauseIngest {
		return &BrownoutError{Level: lvl, RetryAfter: p.RetryAfter()}
	}
	return nil
}

// createStream is POST /v1/streams?name=N: a chunked collected-trace
// upload consumed through the streaming distiller. The stream (and its
// growing replay trace) is registered before the first byte is read, so
// sessions can attach while the upload is still in flight. Query params
// window, step, settle (Go durations) tune the distiller; strict=true
// refuses damaged input instead of salvaging around it; resumable=true
// keeps the stream open across connection loss — EOF parks it instead
// of sealing, and PATCH /v1/streams/{name} picks up at the committed
// offset (finalize with ?complete=true there).
func (a *API) createStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cfg := StreamConfig{
		Name:      q.Get("name"),
		Strict:    q.Get("strict") == "true",
		Resumable: q.Get("resumable") == "true",
	}
	for _, p := range []struct {
		key string
		dst *time.Duration
	}{{"window", &cfg.Window}, {"step", &cfg.Step}, {"settle", &cfg.Settle}} {
		if v := q.Get(p.key); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad %s: %w", p.key, err))
				return
			}
			*p.dst = d
		}
	}
	st, err := a.m.Streams().Create(cfg)
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "already exists") {
			code = http.StatusConflict
		}
		writeStreamErr(w, code, err)
		return
	}
	if err := st.acquireUpload(); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	defer st.releaseUpload()
	// Consume the upload chunk by chunk, rolling the connection deadlines
	// forward each time: the request lives as long as the collector keeps
	// sending, however slowly, without ever disabling timeouts outright.
	rc := http.NewResponseController(w)
	buf := make([]byte, 64<<10)
	for {
		if be := a.pauseIngest(); be != nil {
			if !cfg.Resumable {
				st.abort(fmt.Errorf("emud: stream %q upload shed: %w", st.Name, be))
			}
			writeStreamErr(w, http.StatusTooManyRequests, be)
			return
		}
		_ = rc.SetReadDeadline(time.Now().Add(streamLiveEdgeTimeout))
		_ = rc.SetWriteDeadline(time.Now().Add(streamLiveEdgeTimeout + httpWriteTimeout))
		n, rerr := r.Body.Read(buf)
		if n > 0 {
			if werr := st.Write(buf[:n]); werr != nil {
				writeStreamErr(w, http.StatusUnprocessableEntity, werr)
				return
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			if cfg.Resumable {
				// The stream survives the dead connection: everything up to
				// the committed offset is in the WAL, and the collector
				// resumes from GET .../offset + PATCH.
				writeErr(w, http.StatusBadRequest,
					fmt.Errorf("upload interrupted at offset %d; resume with PATCH: %w", st.Offset(), rerr))
				return
			}
			st.abort(fmt.Errorf("emud: stream %q upload interrupted: %w", st.Name, rerr))
			writeErr(w, http.StatusBadRequest, rerr)
			return
		}
	}
	if cfg.Resumable && q.Get("complete") != "true" {
		// Parked, not sealed: the collector ends this request whenever it
		// likes and finalizes later via PATCH ?complete=true.
		writeJSON(w, http.StatusCreated, st.Info())
		return
	}
	if _, err := st.Finish(); err != nil {
		writeStreamErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, st.Info())
}

// parseUploadOffset extracts the resume position from an Upload-Offset
// header (preferred) or a Content-Range "bytes N-..." fallback.
func parseUploadOffset(r *http.Request) (int64, error) {
	if v := r.Header.Get("Upload-Offset"); v != "" {
		off, err := strconv.ParseInt(v, 10, 64)
		if err != nil || off < 0 {
			return 0, fmt.Errorf("bad Upload-Offset %q", v)
		}
		return off, nil
	}
	if v := r.Header.Get("Content-Range"); v != "" {
		s := strings.TrimPrefix(v, "bytes ")
		if i := strings.IndexByte(s, '-'); i > 0 {
			if off, err := strconv.ParseInt(s[:i], 10, 64); err == nil && off >= 0 {
				return off, nil
			}
		}
		return 0, fmt.Errorf("bad Content-Range %q", v)
	}
	return 0, errors.New("Upload-Offset (or Content-Range) header required")
}

// resumeStream is PATCH /v1/streams/{name}: append more collected bytes
// to a receiving stream at a declared offset. The request must carry the
// stream's token (Stream-Token header) and its resume position
// (Upload-Offset). A stale offset gets 409 plus the committed offset to
// retry from; overlapping bytes below the committed offset are discarded
// idempotently, so blind retransmission of the last chunk is safe.
// ?complete=true seals the stream after the body is consumed.
func (a *API) resumeStream(w http.ResponseWriter, r *http.Request) {
	st, ok := a.m.Streams().Get(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such stream"))
		return
	}
	if tok := r.Header.Get("Stream-Token"); tok != st.Token() {
		writeErr(w, http.StatusForbidden, errors.New("missing or mismatched Stream-Token"))
		return
	}
	off, err := parseUploadOffset(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := st.acquireUpload(); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	defer st.releaseUpload()
	rc := http.NewResponseController(w)
	buf := make([]byte, 64<<10)
	for {
		if be := a.pauseIngest(); be != nil {
			writeStreamErr(w, http.StatusTooManyRequests, be)
			return
		}
		_ = rc.SetReadDeadline(time.Now().Add(streamLiveEdgeTimeout))
		_ = rc.SetWriteDeadline(time.Now().Add(streamLiveEdgeTimeout + httpWriteTimeout))
		n, rerr := r.Body.Read(buf)
		if n > 0 {
			if werr := st.WriteAt(off, buf[:n]); werr != nil {
				writeStreamErr(w, http.StatusUnprocessableEntity, werr)
				return
			}
			off += int64(n)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			// Connection lost again; the stream stays parked for the next
			// resume from the committed offset.
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("resume interrupted at offset %d: %w", st.Offset(), rerr))
			return
		}
	}
	if r.URL.Query().Get("complete") == "true" {
		if _, err := st.Finish(); err != nil {
			writeStreamErr(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, st.Info())
}

// StreamOffsetInfo is the GET /v1/streams/{name}/offset payload: where a
// resumed upload should pick up. Offset is the committed (ingested)
// position; Durable is the fsynced WAL prefix — after a crash the stream
// restarts from Durable, so a cautious collector resumes there.
type StreamOffsetInfo struct {
	Name      string `json:"name"`
	State     string `json:"state"`
	Offset    int64  `json:"offset"`
	Durable   int64  `json:"durable"`
	Resumable bool   `json:"resumable"`
}

func (a *API) streamOffset(w http.ResponseWriter, r *http.Request) {
	st, ok := a.m.Streams().Get(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such stream"))
		return
	}
	writeJSON(w, http.StatusOK, StreamOffsetInfo{
		Name:      st.Name,
		State:     string(st.State()),
		Offset:    st.Offset(),
		Durable:   st.Durable(),
		Resumable: st.Resumable(),
	})
}

func (a *API) listStreams(w http.ResponseWriter, _ *http.Request) {
	streams := a.m.Streams().List()
	out := make([]StreamInfo, 0, len(streams))
	for _, st := range streams {
		out = append(out, st.Info())
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) getStream(w http.ResponseWriter, r *http.Request) {
	st, ok := a.m.Streams().Get(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such stream"))
		return
	}
	writeJSON(w, http.StatusOK, st.Info())
}

func (a *API) deleteStream(w http.ResponseWriter, r *http.Request) {
	if !a.m.Streams().Delete(r.PathValue("name")) {
		writeErr(w, http.StatusNotFound, errors.New("no such stream"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *API) farmInfo(w http.ResponseWriter, _ *http.Request) {
	var relayPkts, relayRead, relaySent, relaySendErrs int64
	for _, s := range a.m.List() {
		if r := s.Relay(); r != nil {
			st := r.Stats()
			relayPkts += st.ReadPackets
			relayRead += st.ReadBytes
			relaySent += st.SentBytes
			relaySendErrs += st.SendErrors
		}
	}
	writeJSON(w, http.StatusOK, FarmInfo{
		Sessions:      a.m.Count(),
		MaxSessions:   a.m.opts.MaxSessions,
		Draining:      a.m.Draining(),
		WheelShards:   a.m.wheel.Shards(),
		GranularityUS: a.m.wheel.Granularity().Microseconds(),
		TimersPending: a.m.wheel.Pending(),
		CachedTraces:  a.m.store.Len(),
		Streams:       a.m.Streams().Count(),
		IdleTimeout:   a.m.opts.IdleTimeout,
		Shed:          a.m.Shed(),
		Quarantined:   a.m.Quarantined(),
		InFlightBytes: a.m.InFlightBytes(),
		WheelPanics:   a.m.wheel.Panics(),

		PumpShards:      a.m.Pumps().ShardCount(),
		RelayPackets:    relayPkts,
		RelayReadBytes:  relayRead,
		RelaySentBytes:  relaySent,
		RelaySendErrors: relaySendErrs,
	})
}

// FlightDump is the GET /v1/sessions/{id}/flight payload: the session's
// last-N sampled spans, oldest first.
type FlightDump struct {
	Session  string           `json:"session"`
	Capacity int              `json:"capacity"`
	Total    uint64           `json:"total"`
	Spans    []*span.SpanData `json:"spans"`
}

// flightDump serves a session's flight recorder. Default is the JSON
// span dump (the same wire shape as span JSONL records, in an array);
// ?format=tree renders the human-readable span forest instead.
func (a *API) flightDump(w http.ResponseWriter, r *http.Request) {
	s, ok := a.m.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	f := s.Flight()
	if f == nil {
		writeErr(w, http.StatusNotFound, errors.New("span tracing disabled; no flight recorder"))
		return
	}
	spans := f.Snapshot()
	if r.URL.Query().Get("format") == "tree" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = span.RenderTree(w, spans)
		return
	}
	writeJSON(w, http.StatusOK, FlightDump{
		Session:  s.ID,
		Capacity: f.Capacity(),
		Total:    f.Total(),
		Spans:    spans,
	})
}

func (a *API) sloReport(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.m.SLOReport())
}

// HealthInfo is the GET /v1/health payload: a readiness verdict (every
// critical objective met) and the overall SLO score.
type HealthInfo struct {
	Ready bool `json:"ready"`
	// Status classifies an unready farm so a poller can react correctly:
	// "ok" (ready), "draining" (planned shutdown in progress — stop
	// routing new work here and migrate, the process is alive), or
	// "overloaded" (brownout ladder at reject-streams or deeper — back
	// off and retry, the 429 path) / "degraded" (a critical SLO unmet for
	// another reason). Only a worker that stops answering entirely should
	// be treated as dead.
	Status   string  `json:"status"`
	Draining bool    `json:"draining,omitempty"`
	Score    float64 `json:"score"`
	Sessions int     `json:"sessions"`
	// Pressure is the brownout ladder's current rung ("normal" when the
	// farm is healthy); anything past reject-streams also fails the
	// critical ingest-brownout objective and flips Ready.
	Pressure string `json:"pressure"`
}

// health serves a readiness score derived from the SLO engine: 200 when
// every critical objective is met and the farm is not draining, 503
// otherwise — with Status distinguishing a draining worker (migrate its
// sessions) from an overloaded one (retry later). Load balancers, the
// cluster coordinator's heartbeat probe, and the load-smoke CI job poll
// this; liveness stays on /healthz, which a draining worker still passes.
func (a *API) health(w http.ResponseWriter, _ *http.Request) {
	rep := a.m.slos.Evaluate()
	lvl := a.m.Pressure().Level()
	status := "ok"
	ready := rep.Ready
	if !ready {
		status = "degraded"
		if lvl >= pressure.RejectStreams {
			status = "overloaded"
		}
	}
	if a.m.Draining() {
		status = "draining"
		ready = false
	}
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthInfo{
		Ready:    ready,
		Status:   status,
		Draining: a.m.Draining(),
		Score:    rep.Score,
		Sessions: a.m.Count(),
		Pressure: lvl.String(),
	})
}

// Serve binds addr and serves the control plane until the listener is
// closed; it returns the bound address.
func (a *API) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("emud: control listener: %w", err)
	}
	srv := &http.Server{
		Handler:           a.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       httpReadTimeout,
		WriteTimeout:      httpWriteTimeout,
		IdleTimeout:       httpIdleTimeout,
	}
	s := &Server{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Server is a running control-plane listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }
