// The control plane: an HTTP/JSON API over the session farm. Create,
// list, inspect, start, stop, and delete sessions; attach a livewire UDP
// relay to a session; and serve the farm's obs registry on the same mux
// (/metrics, /healthz, /debug/...). The surface is deliberately plain —
// net/http, no framework — so the daemon stays stdlib-only.
package emud

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/obs"
	"tracemod/internal/replay"
)

// API serves the control plane for one Manager.
type API struct {
	m   *Manager
	reg *obs.Registry   // may be nil
	tr  *obs.RingTracer // may be nil
}

// NewAPI builds the control plane. reg and tracer may be nil; when reg is
// non-nil the obs debug surface is mounted alongside the session routes.
func NewAPI(m *Manager, reg *obs.Registry, tracer *obs.RingTracer) *API {
	return &API{m: m, reg: reg, tr: tracer}
}

// Mux returns the control-plane routes.
func (a *API) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", a.createSession)
	mux.HandleFunc("GET /v1/sessions", a.listSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", a.getSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", a.deleteSession)
	mux.HandleFunc("POST /v1/sessions/{id}/start", a.startSession)
	mux.HandleFunc("POST /v1/sessions/{id}/stop", a.stopSession)
	mux.HandleFunc("GET /v1/farm", a.farmInfo)
	if a.reg != nil {
		// The obs debug surface on the same listener: /metrics, /healthz,
		// /debug/events, /debug/pprof/...
		for pattern, h := range muxRoutes(obs.Mux(a.reg, a.tr)) {
			mux.Handle(pattern, h)
		}
	} else {
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
	}
	return mux
}

// muxRoutes lists the obs debug mux's patterns so they can be re-homed
// onto the control-plane mux (http.ServeMux has no route enumeration).
func muxRoutes(h http.Handler) map[string]http.Handler {
	routes := map[string]http.Handler{}
	for _, p := range []string{
		"/metrics", "/healthz", "/debug/events",
		"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/profile",
		"/debug/pprof/symbol", "/debug/pprof/trace",
	} {
		routes[p] = h
	}
	return routes
}

// SessionRequest is the create-session body.
type SessionRequest struct {
	// Name labels the session (optional).
	Name string `json:"name,omitempty"`
	// Exactly one trace source: a file path (replay or collected format,
	// resolved through the trace store), a synthetic trace name
	// ("wavelan" or "slow" plus DurationSec), or inline tuples.
	TracePath string      `json:"trace_path,omitempty"`
	Synthetic string      `json:"synthetic,omitempty"`
	Inline    []TupleJSON `json:"inline,omitempty"`
	// DurationSec sizes synthetic traces (default 3600).
	DurationSec float64 `json:"duration_sec,omitempty"`
	// Loop replays the trace forever (default true).
	Loop *bool `json:"loop,omitempty"`
	// TickUS is the engine quantization in microseconds: 0 = the default
	// 10 ms tick, negative = exact scheduling.
	TickUS int64 `json:"tick_us,omitempty"`
	// Seed drives the session's drop lottery.
	Seed int64 `json:"seed,omitempty"`
	// InboundExtraNS and CompensationNS are per-byte costs in ns/byte.
	InboundExtraNS float64 `json:"inbound_extra_ns_per_byte,omitempty"`
	CompensationNS float64 `json:"compensation_ns_per_byte,omitempty"`
	// Start launches the session immediately (default true).
	Start *bool `json:"start,omitempty"`
	// Relay, if set, attaches a UDP relay after start.
	Relay *RelaySpec `json:"relay,omitempty"`
}

// RelaySpec asks for a livewire relay on the session.
type RelaySpec struct {
	// Listen is the client-facing UDP address ("127.0.0.1:0" picks a
	// free port, reported back).
	Listen string `json:"listen"`
	// Target is the server the relay forwards toward.
	Target string `json:"target"`
}

// TupleJSON is one inline replay tuple.
type TupleJSON struct {
	DurationSec float64 `json:"duration_sec"`
	LatencyMS   float64 `json:"latency_ms"`
	VbNSPerByte float64 `json:"vb_ns_per_byte"`
	VrNSPerByte float64 `json:"vr_ns_per_byte"`
	Loss        float64 `json:"loss"`
}

// SessionInfo is the wire representation of a session.
type SessionInfo struct {
	ID        string  `json:"id"`
	Name      string  `json:"name,omitempty"`
	State     string  `json:"state"`
	TraceRef  string  `json:"trace_ref,omitempty"`
	Tuples    int     `json:"trace_tuples"`
	TraceSec  float64 `json:"trace_duration_sec"`
	Loop      bool    `json:"loop"`
	TickUS    int64   `json:"tick_us"`
	Seed      int64   `json:"seed"`
	RelayAddr string  `json:"relay_addr,omitempty"`
	IdleSec   float64 `json:"idle_sec"`

	Submitted int64 `json:"submitted"`
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped"`
	Rejected  int64 `json:"rejected"`
	InFlight  int64 `json:"in_flight"`
}

// FarmInfo summarizes the daemon.
type FarmInfo struct {
	Sessions      int           `json:"sessions"`
	MaxSessions   int           `json:"max_sessions"`
	WheelShards   int           `json:"wheel_shards"`
	GranularityUS int64         `json:"wheel_granularity_us"`
	TimersPending int64         `json:"timers_pending"`
	CachedTraces  int           `json:"cached_traces"`
	IdleTimeout   time.Duration `json:"idle_timeout_ns"`
}

func sessionInfo(s *Session) SessionInfo {
	cfg := s.Config()
	st := s.Stats()
	return SessionInfo{
		ID:        s.ID,
		Name:      cfg.Name,
		State:     s.State().String(),
		TraceRef:  cfg.TraceRef,
		Tuples:    len(cfg.Trace),
		TraceSec:  cfg.Trace.TotalDuration().Seconds(),
		Loop:      cfg.Loop,
		TickUS:    cfg.Tick.Microseconds(),
		Seed:      cfg.Seed,
		RelayAddr: s.RelayAddr(),
		IdleSec:   s.IdleFor().Seconds(),
		Submitted: st.Submitted,
		Delivered: st.Delivered,
		Dropped:   st.Dropped,
		Rejected:  st.Rejected,
		InFlight:  st.InFlight,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// resolveTrace turns a request's trace spec into a shared core.Trace.
func (a *API) resolveTrace(req *SessionRequest) (core.Trace, string, error) {
	sources := 0
	for _, set := range []bool{req.TracePath != "", req.Synthetic != "", len(req.Inline) > 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, "", errors.New("exactly one of trace_path, synthetic, inline is required")
	}
	switch {
	case req.TracePath != "":
		tr, err := a.m.Store().Load(req.TracePath)
		return tr, req.TracePath, err
	case req.Synthetic != "":
		dur := time.Duration(req.DurationSec * float64(time.Second))
		if dur <= 0 {
			dur = time.Hour
		}
		var tr core.Trace
		switch req.Synthetic {
		case "wavelan":
			tr = replay.WaveLANLike(dur)
		case "slow":
			tr = replay.SlowNetLike(dur)
		default:
			return nil, "", fmt.Errorf("unknown synthetic trace %q (want wavelan or slow)", req.Synthetic)
		}
		return tr, "synthetic:" + req.Synthetic, nil
	default:
		tr := make(core.Trace, 0, len(req.Inline))
		for _, t := range req.Inline {
			tr = append(tr, core.Tuple{
				D: time.Duration(t.DurationSec * float64(time.Second)),
				DelayParams: core.DelayParams{
					F:  time.Duration(t.LatencyMS * float64(time.Millisecond)),
					Vb: core.PerByte(t.VbNSPerByte),
					Vr: core.PerByte(t.VrNSPerByte),
				},
				L: t.Loss,
			})
		}
		if err := tr.Validate(); err != nil {
			return nil, "", err
		}
		return tr, fmt.Sprintf("inline:%d-tuples", len(tr)), nil
	}
}

func (a *API) createSession(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	trace, ref, err := a.resolveTrace(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	loop := req.Loop == nil || *req.Loop
	tick := time.Duration(req.TickUS) * time.Microsecond
	s, err := a.m.Create(SessionConfig{
		Name:         req.Name,
		Trace:        trace,
		TraceRef:     ref,
		Loop:         loop,
		Tick:         tick,
		Seed:         req.Seed,
		InboundExtra: core.PerByte(req.InboundExtraNS),
		Compensation: core.PerByte(req.CompensationNS),
	})
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	if req.Start == nil || *req.Start {
		if err := s.Start(); err != nil {
			a.m.Delete(s.ID)
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		if req.Relay != nil {
			if _, err := s.AttachRelay(req.Relay.Listen, req.Relay.Target); err != nil {
				a.m.Delete(s.ID)
				writeErr(w, http.StatusBadRequest, err)
				return
			}
		}
	} else if req.Relay != nil {
		a.m.Delete(s.ID)
		writeErr(w, http.StatusBadRequest, errors.New("relay requires start"))
		return
	}
	writeJSON(w, http.StatusCreated, sessionInfo(s))
}

func (a *API) listSessions(w http.ResponseWriter, _ *http.Request) {
	sessions := a.m.List()
	out := make([]SessionInfo, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, sessionInfo(s))
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) getSession(w http.ResponseWriter, r *http.Request) {
	s, ok := a.m.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(s))
}

func (a *API) deleteSession(w http.ResponseWriter, r *http.Request) {
	if !a.m.Delete(r.PathValue("id")) {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *API) startSession(w http.ResponseWriter, r *http.Request) {
	s, ok := a.m.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	if err := s.Start(); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(s))
}

// stopSession stops a session; with ?drain=DURATION it drains gracefully
// first (e.g. ?drain=2s).
func (a *API) stopSession(w http.ResponseWriter, r *http.Request) {
	s, ok := a.m.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	if d := r.URL.Query().Get("drain"); d != "" {
		timeout, err := time.ParseDuration(d)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad drain duration: %w", err))
			return
		}
		s.Drain(timeout)
	} else {
		s.Stop()
	}
	writeJSON(w, http.StatusOK, sessionInfo(s))
}

func (a *API) farmInfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, FarmInfo{
		Sessions:      a.m.Count(),
		MaxSessions:   a.m.opts.MaxSessions,
		WheelShards:   a.m.wheel.Shards(),
		GranularityUS: a.m.wheel.Granularity().Microseconds(),
		TimersPending: a.m.wheel.Pending(),
		CachedTraces:  a.m.store.Len(),
		IdleTimeout:   a.m.opts.IdleTimeout,
	})
}

// Serve binds addr and serves the control plane until the listener is
// closed; it returns the bound address.
func (a *API) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("emud: control listener: %w", err)
	}
	srv := &http.Server{Handler: a.Mux(), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Server is a running control-plane listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }
