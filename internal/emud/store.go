// The trace store: every session needs a replay trace, many sessions
// replay the same one, and parsing (let alone distilling) a trace per
// session create would dominate the control plane. The store parses each
// file once and shares the resulting immutable core.Trace across sessions
// through an LRU cache; concurrent creates for the same path coalesce
// onto a single parse.
//
// Two on-disk formats are accepted, sniffed by their leading bytes: the
// serialized replay-trace format (internal/replay) is used as-is, and a
// collected trace (internal/tracefmt) is distilled into a replay trace on
// load — so emud can serve sessions straight from raw collection output.
package emud

import (
	"bytes"
	"container/list"
	"fmt"
	"os"
	"sync"

	"tracemod/internal/core"
	"tracemod/internal/distill"
	"tracemod/internal/obs"
	"tracemod/internal/replay"
	"tracemod/internal/tracefmt"
)

// DefaultStoreCapacity bounds the cached trace count when
// StoreOptions.Capacity is zero.
const DefaultStoreCapacity = 64

// StoreOptions parameterizes a Store.
type StoreOptions struct {
	// Capacity is the maximum number of cached traces
	// (DefaultStoreCapacity if 0). Eviction is least-recently-used; an
	// evicted trace stays alive for the sessions already holding it (it
	// is immutable) and is simply re-parsed on the next miss.
	Capacity int
	// Distill configures the distillation applied to collected
	// (tracefmt) files; zero values fall back to distill.DefaultConfig.
	Distill distill.Config
	// Metrics, if non-nil, registers the store's instruments (names under
	// tracemod_emud_store_*).
	Metrics *obs.Registry
}

// Store is the shared trace cache.
type Store struct {
	opts StoreOptions

	mu      sync.Mutex
	entries map[string]*list.Element // key -> lru element holding *storeEntry
	lru     *list.List               // front = most recently used

	hits, misses, evictions, parseErrors *obs.Counter
}

// storeEntry is one cached (or in-flight) load. The once coalesces
// concurrent loads of the same key onto a single parse; waiters block in
// once.Do without holding the store lock.
type storeEntry struct {
	key   string
	once  sync.Once
	trace core.Trace
	err   error
}

// NewStore creates a trace store.
func NewStore(o StoreOptions) *Store {
	if o.Capacity <= 0 {
		o.Capacity = DefaultStoreCapacity
	}
	if o.Distill.Window == 0 && o.Distill.Step == 0 {
		o.Distill = distill.DefaultConfig()
	}
	s := &Store{opts: o, entries: map[string]*list.Element{}, lru: list.New()}
	if reg := o.Metrics; reg != nil {
		s.hits = reg.Counter("tracemod_emud_store_hits_total", "Trace loads served from the cache.")
		s.misses = reg.Counter("tracemod_emud_store_misses_total", "Trace loads that parsed a file.")
		s.evictions = reg.Counter("tracemod_emud_store_evictions_total", "Cached traces evicted by LRU pressure.")
		s.parseErrors = reg.Counter("tracemod_emud_store_errors_total", "Trace loads that failed to parse.")
		reg.GaugeFunc("tracemod_emud_store_cached", "Traces currently cached in the store.",
			func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.lru.Len()) })
	}
	return s
}

// Load returns the replay trace for the file at path, parsing it at most
// once while it stays cached. The returned trace is shared and must be
// treated as immutable.
func (s *Store) Load(path string) (core.Trace, error) {
	e, hit := s.entry("file:" + path)
	if hit {
		s.hits.Inc()
	} else {
		s.misses.Inc()
	}
	e.once.Do(func() {
		e.trace, e.err = loadTraceFile(path, s.opts.Distill)
		if e.err != nil {
			s.parseErrors.Inc()
			s.forget(e.key)
		}
	})
	return e.trace, e.err
}

// Register caches an in-memory trace under "name:" + name (synthetic and
// inline traces arriving through the control plane), validating it first.
// Registered traces participate in LRU like file loads.
func (s *Store) Register(name string, tr core.Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	e, _ := s.entry("name:" + name)
	e.once.Do(func() { e.trace = tr })
	// Re-registering a live name keeps the first trace (entries are
	// immutable); callers pick fresh names per registration.
	return e.err
}

// Lookup fetches a previously registered trace by name.
func (s *Store) Lookup(name string) (core.Trace, bool) {
	s.mu.Lock()
	el, ok := s.entries["name:"+name]
	if ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	e := el.Value.(*storeEntry)
	e.once.Do(func() {}) // registration populates before publishing; this is a fence
	if e.err != nil || e.trace == nil {
		return nil, false
	}
	return e.trace, true
}

// Len reports the number of cached entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// entry returns the cached element for key, creating (and LRU-inserting)
// it if needed. The boolean reports whether the entry already existed.
func (s *Store) entry(key string) (*storeEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*storeEntry), true
	}
	e := &storeEntry{key: key}
	s.entries[key] = s.lru.PushFront(e)
	for s.lru.Len() > s.opts.Capacity {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*storeEntry).key)
		s.evictions.Inc()
	}
	return e, false
}

// forget drops a failed entry so the next Load retries the file instead
// of caching the error forever.
func (s *Store) forget(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.Remove(el)
		delete(s.entries, key)
	}
}

// loadTraceFile reads path and parses it by sniffed format.
func loadTraceFile(path string, dcfg distill.Config) (core.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if tracefmt.IsMagic(data) {
		collected, err := tracefmt.ReadAll(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("emud: collected trace %s: %w", path, err)
		}
		res, err := distill.Distill(collected, dcfg)
		if err != nil {
			return nil, fmt.Errorf("emud: distilling %s: %w", path, err)
		}
		return res.Replay, nil
	}
	tr, err := replay.Read(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("emud: replay trace %s: %w", path, err)
	}
	return tr, nil
}
