// The trace store: every session needs a replay trace, many sessions
// replay the same one, and parsing (let alone distilling) a trace per
// session create would dominate the control plane. The store parses each
// file once and shares the resulting immutable core.Trace across sessions
// through an LRU cache; concurrent creates for the same path coalesce
// onto a single parse.
//
// Two on-disk formats are accepted, sniffed by their leading bytes: the
// serialized replay-trace format (internal/replay) is used as-is, and a
// collected trace (internal/tracefmt) is distilled into a replay trace on
// load — so emud can serve sessions straight from raw collection output.
package emud

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/distill"
	"tracemod/internal/faults"
	"tracemod/internal/obs"
	"tracemod/internal/replay"
	"tracemod/internal/tracefmt"
)

// DefaultStoreCapacity bounds the cached trace count when
// StoreOptions.Capacity is zero.
const DefaultStoreCapacity = 64

// DefaultNegativeTTL is how long a failed parse stays cached when
// StoreOptions.NegativeTTL is zero. Short on purpose: it absorbs a
// create storm against a corrupt trace without delaying recovery once
// the file is fixed.
const DefaultNegativeTTL = time.Second

// DefaultQuarantineTTL is how long a quarantined trace — one that failed
// even salvage-mode loading — stays in the negative cache when
// StoreOptions.QuarantineTTL is zero. Much longer than the ordinary
// negative TTL: salvage already gave the file every benefit of the
// doubt, so re-parsing it sooner only burns IO on content that will not
// have changed.
const DefaultQuarantineTTL = 30 * time.Second

// StoreOptions parameterizes a Store.
type StoreOptions struct {
	// Capacity is the maximum number of cached traces
	// (DefaultStoreCapacity if 0). Eviction is least-recently-used; an
	// evicted trace stays alive for the sessions already holding it (it
	// is immutable) and is simply re-parsed on the next miss.
	Capacity int
	// NegativeTTL is how long a failed load is remembered, so a burst of
	// creates against a corrupt trace doesn't re-parse it per request.
	// Zero means DefaultNegativeTTL; negative disables negative caching
	// (every Load after a failure retries the file immediately).
	NegativeTTL time.Duration
	// QuarantineTTL is how long a quarantined trace (one that failed even
	// salvage loading) is remembered before the file is retried. Zero
	// means DefaultQuarantineTTL; negative disables quarantine caching.
	QuarantineTTL time.Duration
	// StrictTraces disables salvage-mode loading: a trace file with any
	// damage is quarantined instead of being repaired on the way in.
	StrictTraces bool
	// Distill configures the distillation applied to collected
	// (tracefmt) files; zero values fall back to distill.DefaultConfig.
	Distill distill.Config
	// Retry is the backoff policy for transient load failures; the zero
	// value uses the faults package defaults.
	Retry faults.Backoff
	// Faults arms the store's fault points ("store.parse" fails loads,
	// "store.evict" triggers eviction storms). Nil disables both.
	Faults *faults.Injector
	// Metrics, if non-nil, registers the store's instruments (names under
	// tracemod_emud_store_*).
	Metrics *obs.Registry
}

// QuarantineError marks a trace file the store refuses to serve: it
// failed to load even with salvage mode's best effort. When salvage ran
// far enough to produce an accounting, Report carries it — the operator
// sees exactly how much of the file was recoverable before the pipeline
// below (distillation, validation) rejected the remainder.
type QuarantineError struct {
	Path   string
	Report *tracefmt.ReadReport
	Err    error
}

func (e *QuarantineError) Error() string {
	if e.Report != nil {
		return fmt.Sprintf("emud: quarantined %s (%s): %v", e.Path, e.Report, e.Err)
	}
	return fmt.Sprintf("emud: quarantined %s: %v", e.Path, e.Err)
}

func (e *QuarantineError) Unwrap() error { return e.Err }

// Store is the shared trace cache.
type Store struct {
	opts          StoreOptions
	negTTL        time.Duration
	quarantineTTL time.Duration
	retry         faults.Backoff

	faultParse, faultEvict *faults.Point

	mu      sync.Mutex
	entries map[string]*list.Element // key -> lru element holding *storeEntry
	lru     *list.List               // front = most recently used
	// live holds growing traces by stream name, outside the LRU: a trace
	// still being distilled must not be evicted mid-stream, and it has no
	// file to re-parse from.
	live map[string]*LiveTrace

	hits, misses, evictions, parseErrors, negativeHits *obs.Counter
	salvaged, quarantined                              *obs.Counter
}

// storeEntry is one cached (or in-flight) load. The once coalesces
// concurrent loads of the same key onto a single parse; waiters block in
// once.Do without holding the store lock. trace/err/expires are written
// inside the once before done flips true, so readers that observe
// done==true see them complete.
type storeEntry struct {
	key     string
	once    sync.Once
	done    atomic.Bool
	trace   core.Trace
	report  *tracefmt.ReadReport // non-nil when the file loaded in salvage mode
	err     error
	expires time.Time // when a failed entry stops being trusted (zero = never)
}

// NewStore creates a trace store.
func NewStore(o StoreOptions) *Store {
	if o.Capacity <= 0 {
		o.Capacity = DefaultStoreCapacity
	}
	if o.Distill.Window == 0 && o.Distill.Step == 0 {
		o.Distill = distill.DefaultConfig()
	}
	s := &Store{opts: o, negTTL: o.NegativeTTL, quarantineTTL: o.QuarantineTTL,
		retry: o.Retry, entries: map[string]*list.Element{}, lru: list.New(),
		live: map[string]*LiveTrace{}}
	if s.negTTL == 0 {
		s.negTTL = DefaultNegativeTTL
	}
	if s.quarantineTTL == 0 {
		s.quarantineTTL = DefaultQuarantineTTL
	}
	if o.Faults != nil {
		s.faultParse = o.Faults.Point("store.parse")
		s.faultEvict = o.Faults.Point("store.evict")
	}
	if reg := o.Metrics; reg != nil {
		s.hits = reg.Counter("tracemod_emud_store_hits_total", "Trace loads served from the cache.")
		s.misses = reg.Counter("tracemod_emud_store_misses_total", "Trace loads that parsed a file.")
		s.evictions = reg.Counter("tracemod_emud_store_evictions_total", "Cached traces evicted by LRU pressure.")
		s.parseErrors = reg.Counter("tracemod_emud_store_errors_total", "Trace loads that failed to parse.")
		s.negativeHits = reg.Counter("tracemod_emud_store_negative_hits_total",
			"Trace loads answered from the negative cache (recent parse failure).")
		s.salvaged = reg.Counter("tracemod_emud_store_salvaged_total",
			"Trace loads that succeeded only via salvage-mode parsing.")
		s.quarantined = reg.Counter("tracemod_emud_store_quarantined_total",
			"Trace loads quarantined after salvage failed to recover the file.")
		reg.GaugeFunc("tracemod_emud_store_cached", "Traces currently cached in the store.",
			func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.lru.Len()) })
	}
	return s
}

// Load returns the replay trace for the file at path, parsing it at most
// once while it stays cached. The returned trace is shared and must be
// treated as immutable. Transient read failures are retried with
// backoff; a load that still fails is negative-cached for NegativeTTL so
// a create storm against a corrupt trace doesn't re-parse per request.
func (s *Store) Load(path string) (core.Trace, error) {
	e, hit := s.entry("file:" + path)
	if hit {
		if e.done.Load() && e.err != nil {
			s.negativeHits.Inc()
		} else {
			s.hits.Inc()
		}
	} else {
		s.misses.Inc()
	}
	e.once.Do(func() {
		e.err = s.retry.Do(func() error {
			if ferr := s.faultParse.Err(); ferr != nil {
				return ferr
			}
			tr, rep, lerr := loadTraceFile(path, s.opts.Distill, s.opts.StrictTraces)
			if lerr != nil {
				if errors.Is(lerr, fs.ErrNotExist) {
					// A missing file won't appear between retries.
					return faults.Permanent(lerr)
				}
				var q *QuarantineError
				if errors.As(lerr, &q) {
					// Salvage already exhausted the file's chances; a
					// retry re-reads identical bytes.
					return faults.Permanent(lerr)
				}
				return lerr
			}
			e.trace, e.report = tr, rep
			return nil
		})
		switch {
		case e.err == nil:
			if e.report != nil && !e.report.Clean() {
				s.salvaged.Inc()
			}
		default:
			s.parseErrors.Inc()
			var q *QuarantineError
			switch {
			case errors.As(e.err, &q):
				s.quarantined.Inc()
				if s.quarantineTTL < 0 {
					s.forget(e.key)
				} else {
					e.expires = time.Now().Add(s.quarantineTTL)
				}
			case s.negTTL < 0:
				s.forget(e.key)
			default:
				e.expires = time.Now().Add(s.negTTL)
			}
		}
		e.done.Store(true)
	})
	return e.trace, e.err
}

// SalvageReport returns the salvage accounting for a previously loaded
// trace file, when that load needed salvage mode. It returns (nil,
// false) for unknown paths, pristine files, and quarantined files no
// longer cached.
func (s *Store) SalvageReport(path string) (*tracefmt.ReadReport, bool) {
	s.mu.Lock()
	el, ok := s.entries["file:"+path]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	e := el.Value.(*storeEntry)
	if !e.done.Load() || e.report == nil {
		return nil, false
	}
	return e.report, true
}

// Register caches an in-memory trace under "name:" + name (synthetic and
// inline traces arriving through the control plane), validating it first.
// Registered traces participate in LRU like file loads.
func (s *Store) Register(name string, tr core.Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	e, _ := s.entry("name:" + name)
	e.once.Do(func() { e.trace = tr })
	// Re-registering a live name keeps the first trace (entries are
	// immutable); callers pick fresh names per registration.
	return e.err
}

// Lookup fetches a previously registered trace by name.
func (s *Store) Lookup(name string) (core.Trace, bool) {
	s.mu.Lock()
	el, ok := s.entries["name:"+name]
	if ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	e := el.Value.(*storeEntry)
	e.once.Do(func() {}) // registration populates before publishing; this is a fence
	if e.err != nil || e.trace == nil {
		return nil, false
	}
	return e.trace, true
}

// RegisterLive publishes a growing trace under a stream name. Unlike
// Register, live entries are pinned (no LRU participation) until
// DropLive — eviction would orphan sessions waiting at the live edge.
func (s *Store) RegisterLive(name string, lt *LiveTrace) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.live[name]; dup {
		return fmt.Errorf("emud: live trace %q already registered", name)
	}
	s.live[name] = lt
	return nil
}

// LookupLive fetches a registered growing trace by stream name.
func (s *Store) LookupLive(name string) (*LiveTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lt, ok := s.live[name]
	return lt, ok
}

// DropLive unpins a live trace. Sessions holding it keep replaying what
// arrived; only the name is released.
func (s *Store) DropLive(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.live, name)
}

// Len reports the number of cached entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// entry returns the cached element for key, creating (and LRU-inserting)
// it if needed. The boolean reports whether the entry already existed.
// Failed entries past their negative TTL are replaced, so the next load
// retries the file.
func (s *Store) entry(key string) (*storeEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*storeEntry)
		if e.done.Load() && e.err != nil && !e.expires.IsZero() && time.Now().After(e.expires) {
			s.lru.Remove(el)
			delete(s.entries, key)
		} else {
			s.lru.MoveToFront(el)
			return e, true
		}
	}
	if s.faultEvict.Fire() {
		// Injected eviction storm: shed the whole cache, as if capacity
		// collapsed to zero for an instant.
		for s.lru.Len() > 0 {
			oldest := s.lru.Back()
			s.lru.Remove(oldest)
			delete(s.entries, oldest.Value.(*storeEntry).key)
			s.evictions.Inc()
		}
	}
	e := &storeEntry{key: key}
	s.entries[key] = s.lru.PushFront(e)
	for s.lru.Len() > s.opts.Capacity {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*storeEntry).key)
		s.evictions.Inc()
	}
	return e, false
}

// forget drops a failed entry so the next Load retries the file instead
// of caching the error forever.
func (s *Store) forget(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.Remove(el)
		delete(s.entries, key)
	}
}

// loadTraceFile reads path and parses it by sniffed format. A damaged
// file is first retried in salvage mode (unless strict forbids it); the
// returned ReadReport is non-nil exactly when salvage mode did the
// loading. Files that fail even salvage come back as a *QuarantineError.
func loadTraceFile(path string, dcfg distill.Config, strict bool) (core.Trace, *tracefmt.ReadReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if tracefmt.IsMagic(data) {
		dcfg.Strict = strict
		collected, rerr := tracefmt.ReadAll(bytes.NewReader(data))
		if rerr == nil {
			res, derr := distill.Distill(collected, dcfg)
			if derr != nil {
				return nil, nil, &QuarantineError{Path: path, Err: derr}
			}
			return res.Replay, nil, nil
		}
		if strict {
			return nil, nil, &QuarantineError{Path: path, Err: rerr}
		}
		salvaged, rep, serr := tracefmt.SalvageAll(bytes.NewReader(data))
		if serr != nil {
			return nil, nil, &QuarantineError{Path: path, Err: serr}
		}
		res, derr := distill.Distill(salvaged, dcfg)
		if derr != nil {
			return nil, nil, &QuarantineError{Path: path, Report: rep, Err: derr}
		}
		return res.Replay, rep, nil
	}
	tr, err := replay.Read(bytes.NewReader(data))
	if err == nil {
		return tr, nil, nil
	}
	if strict || errors.Is(err, replay.ErrBadHeader) {
		return nil, nil, &QuarantineError{Path: path, Err: err}
	}
	ltr, _, lerr := replay.ReadLenient(bytes.NewReader(data))
	if lerr != nil {
		return nil, nil, &QuarantineError{Path: path, Err: lerr}
	}
	return ltr, nil, nil
}
