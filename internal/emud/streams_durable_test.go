// Durability and brownout tests for live ingest: WAL-backed recovery at
// the last fsynced offset, idempotent resumed uploads, the idle reaper,
// the brownout ladder engaging in order, and the typed surfaces the
// control plane maps them onto.
package emud

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tracemod/internal/distill"
	"tracemod/internal/faults"
	"tracemod/internal/obs"
	"tracemod/internal/obs/span"
	"tracemod/internal/replay"
	"tracemod/internal/tracefmt"
)

// newDurableManager builds a manager with stream durability on, using
// the default fsync-every-chunk policy so durable == committed.
func newDurableManager(t testing.TB, walDir string, extra func(*Options)) *Manager {
	t.Helper()
	o := Options{
		Granularity:  time.Millisecond,
		Metrics:      obs.NewRegistry(),
		StreamWALDir: walDir,
	}
	if extra != nil {
		extra(&o)
	}
	return NewManager(o)
}

// replayBytes serializes a live trace's tuples for byte-level comparison.
func replayBytes(t testing.TB, lt *LiveTrace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := replay.Write(&buf, lt.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The tentpole's crash-recovery contract: a daemon killed mid-upload
// (simulated by abandoning the manager without Close) replays the WAL on
// recovery and rebuilds the exact replay tuples the pre-crash ingest had
// produced — then the uploader resumes at the committed offset and the
// completed stream is byte-identical to an uninterrupted batch distill.
func TestStreamWALRecoveryResumesByteIdentical(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	data := collectedTraceBytes(t, 30)
	cut := (len(data) * 2) / 3

	m1 := newDurableManager(t, walDir, nil)
	st1, err := m1.Streams().Create(StreamConfig{Name: "crashy", Resumable: true})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < cut; off += 999 {
		end := off + 999
		if end > cut {
			end = cut
		}
		if err := st1.Write(data[off:end]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if st1.Durable() != int64(cut) {
		t.Fatalf("durable = %d after %d fsynced bytes", st1.Durable(), cut)
	}
	preCrash := replayBytes(t, st1.Live())
	// Crash: the manager is abandoned, never Closed. The WAL files hold
	// everything Append returned for.

	m2 := newDurableManager(t, walDir, nil)
	defer m2.Close()
	n, err := m2.Streams().Recover()
	if n != 1 || err != nil {
		t.Fatalf("Recover = (%d, %v), want (1, nil)", n, err)
	}
	st2, ok := m2.Streams().Get("crashy")
	if !ok {
		t.Fatal("recovered stream not registered")
	}
	if st2.State() != StreamReceiving {
		t.Fatalf("recovered state = %s, want receiving", st2.State())
	}
	if st2.Offset() != int64(cut) || st2.Durable() != int64(cut) {
		t.Fatalf("recovered offsets = (%d, %d), want %d", st2.Offset(), st2.Durable(), cut)
	}
	if st2.Token() != st1.Token() {
		t.Fatal("recovery must preserve the upload fencing token")
	}
	if got := replayBytes(t, st2.Live()); !bytes.Equal(got, preCrash) {
		t.Fatal("replayed tuples diverge from the pre-crash ingest")
	}
	if _, ok := m2.Store().LookupLive("crashy"); !ok {
		t.Fatal("recovered stream not in the store: sessions cannot rebind")
	}

	// Resume the upload exactly where the durable prefix ends — with a
	// deliberate overlap to prove retransmits are discarded idempotently.
	overlap := 500
	if err := st2.WriteAt(int64(cut-overlap), data[cut-overlap:]); err != nil {
		t.Fatalf("resumed WriteAt: %v", err)
	}
	sum, err := st2.Finish()
	if err != nil {
		t.Fatalf("Finish after resume: %v", err)
	}

	collected, err := tracefmt.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := distill.Distill(collected, distill.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := replay.Write(&want, batch.Replay); err != nil {
		t.Fatal(err)
	}
	if err := replay.Write(&got, sum.Replay); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("crash+resume replay diverges from uninterrupted batch distill")
	}
}

// A stream sealed before the crash recovers sealed: the marker re-renders
// the terminal state and the tuples come back complete.
func TestStreamWALRecoverySealedStream(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	data := collectedTraceBytes(t, 10)

	m1 := newDurableManager(t, walDir, nil)
	st1, err := m1.Streams().Create(StreamConfig{Name: "sealed"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Write(data); err != nil {
		t.Fatal(err)
	}
	if _, err := st1.Finish(); err != nil {
		t.Fatal(err)
	}
	want := replayBytes(t, st1.Live())

	m2 := newDurableManager(t, walDir, nil)
	defer m2.Close()
	if n, err := m2.Streams().Recover(); n != 1 || err != nil {
		t.Fatalf("Recover = (%d, %v)", n, err)
	}
	st2, _ := m2.Streams().Get("sealed")
	if st2.State() != StreamComplete {
		t.Fatalf("state = %s, want complete", st2.State())
	}
	if done, derr := st2.Live().Done(); !done || derr != nil {
		t.Fatalf("live trace: done=%v err=%v", done, derr)
	}
	if got := replayBytes(t, st2.Live()); !bytes.Equal(got, want) {
		t.Fatal("sealed stream's tuples diverge after recovery")
	}
}

// WriteAt's offset contract: gaps are refused with the committed offset,
// overlaps are discarded, whole duplicates are no-ops.
func TestStreamWriteAtOffsetSemantics(t *testing.T) {
	m := newDurableManager(t, filepath.Join(t.TempDir(), "wal"), nil)
	defer m.Close()
	data := collectedTraceBytes(t, 30)
	st, err := m.Streams().Create(StreamConfig{Name: "offsets", Resumable: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteAt(0, data[:1000]); err != nil {
		t.Fatal(err)
	}
	// A gap the server never saw: typed refusal carrying the committed
	// offset so the client rewinds.
	err = st.WriteAt(2000, data[2000:3000])
	var oe *OffsetError
	if !errors.As(err, &oe) || oe.Committed != 1000 || oe.Attempted != 2000 {
		t.Fatalf("gap write: %v", err)
	}
	// Overlap: only the novel suffix lands.
	if err := st.WriteAt(500, data[500:1500]); err != nil {
		t.Fatal(err)
	}
	if st.Offset() != 1500 {
		t.Fatalf("offset = %d after overlap write, want 1500", st.Offset())
	}
	// Whole duplicate: idempotent no-op.
	if err := st.WriteAt(0, data[:1000]); err != nil {
		t.Fatal(err)
	}
	if st.Offset() != 1500 {
		t.Fatalf("offset = %d after duplicate, want 1500", st.Offset())
	}
	if st.State() != StreamReceiving {
		t.Fatalf("state = %s", st.State())
	}
}

// The per-stream byte quota fails the stream with a typed QuotaError —
// it can never complete within budget, so the trace seals immediately.
func TestStreamQuotaFailsTyped(t *testing.T) {
	m := newDurableManager(t, "", func(o *Options) { o.StreamQuotaBytes = 1024 })
	defer m.Close()
	data := collectedTraceBytes(t, 10)
	st, err := m.Streams().Create(StreamConfig{Name: "capped"})
	if err != nil {
		t.Fatal(err)
	}
	werr := st.Write(data)
	var qe *QuotaError
	if !errors.As(werr, &qe) || qe.Quota != 1024 {
		t.Fatalf("quota write: %v", werr)
	}
	if st.State() != StreamFailed {
		t.Fatalf("state = %s, want failed", st.State())
	}
}

// The idle reaper seals a receiving stream whose uploader went silent:
// the windows freeze on what arrived and attached sessions see a
// complete trace instead of waiting forever.
func TestStreamIdleReaperSealsAbandonedUpload(t *testing.T) {
	m := newDurableManager(t, "", func(o *Options) { o.StreamIdleTimeout = 100 * time.Millisecond })
	defer m.Close()
	data := collectedTraceBytes(t, 20)
	st, err := m.Streams().Create(StreamConfig{Name: "abandoned"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reaper to seal the idle stream", func() bool {
		return st.State() != StreamReceiving
	})
	if st.State() != StreamComplete {
		t.Fatalf("state = %s, want complete (salvaged seal)", st.State())
	}
	if done, _ := st.Live().Done(); !done {
		t.Fatal("live trace not sealed by the reaper")
	}
}

// The satellite race test: DELETE /v1/streams/{name} while an upload is
// mid-chunk and a live cursor is reading the growing trace. Must be
// clean under the race detector and leave attached readers their tuples.
func TestDeleteStreamRacesUploadAndCursor(t *testing.T) {
	m := newDurableManager(t, filepath.Join(t.TempDir(), "wal"), nil)
	defer m.Close()
	data := collectedTraceBytes(t, 30)
	st, err := m.Streams().Create(StreamConfig{Name: "race"})
	if err != nil {
		t.Fatal(err)
	}
	cur := st.Live().NewCursor(false)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for off := 0; off < len(data); off += 512 {
			end := off + 512
			if end > len(data) {
				end = len(data)
			}
			if st.Write(data[off:end]) != nil {
				return // aborted by the delete: expected
			}
		}
	}()
	go func() {
		defer wg.Done()
		read := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok := cur.Next(); ok {
				read++
			}
		}
	}()
	time.Sleep(2 * time.Millisecond)
	if !m.Streams().Delete("race") {
		t.Fatal("Delete returned false")
	}
	close(stop)
	wg.Wait()
	if _, ok := m.Streams().Get("race"); ok {
		t.Fatal("stream still registered after delete")
	}
	if _, err := os.Stat(filepath.Join(m.Streams().walDir, "race")); !os.IsNotExist(err) {
		t.Fatalf("WAL directory survives delete: %v", err)
	}
}

// The brownout ladder engages in its fixed order, each rung observable:
// sampling suspends, stream creation gets a typed 429 with Retry-After,
// sealed live traces spill (and reload transparently), and /v1/health
// reports the rung with readiness flipped by the critical SLO.
func TestBrownoutLadderEngagesInOrder(t *testing.T) {
	reg := obs.NewRegistry()
	inj := faults.New(faults.Options{Metrics: reg})
	tracer := span.New(span.Config{Sample: 1, Metrics: reg})
	spillDir := t.TempDir()
	srv, m := newTestAPI(t, Options{
		Metrics:        reg,
		Faults:         inj,
		Spans:          tracer,
		PressurePeriod: -1, // no background loop: the test drives Evaluate
		SpillDir:       spillDir,
	})

	// A sealed stream with resident tuples, ready to spill at rung 3.
	data := collectedTraceBytes(t, 10)
	st, err := m.Streams().Create(StreamConfig{Name: "spillee"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write(data); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	wantTuples := replayBytes(t, st.Live())

	force := func(lvl int) {
		inj.Set("pressure.force", faults.Config{Rate: 1, Delay: time.Duration(lvl) * time.Millisecond})
		m.Pressure().Evaluate()
	}

	// Rung 1: sampling off. Tracing stays enabled — only paused.
	force(1)
	if !tracer.Suspended() || !tracer.Enabled() {
		t.Fatalf("shed-sampling: suspended=%v enabled=%v", tracer.Suspended(), tracer.Enabled())
	}
	if _, err := m.Streams().Create(StreamConfig{Name: "still-ok"}); err != nil {
		t.Fatalf("shed-sampling must not refuse streams: %v", err)
	}

	// Rung 2: new streams refused, typed, with a Retry-After over HTTP.
	force(2)
	_, err = m.Streams().Create(StreamConfig{Name: "refused"})
	var be *BrownoutError
	if !errors.As(err, &be) {
		t.Fatalf("reject-streams Create: %v", err)
	}
	resp, err := http.Post(srv.URL+"/v1/streams?name=refused", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("POST under brownout = %d, Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	hresp, err := http.Get(srv.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	io.Copy(&body, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("health under brownout = %d: %s", hresp.StatusCode, body.String())
	}
	if !strings.Contains(body.String(), `"pressure":"reject-streams"`) {
		t.Fatalf("health body lacks the pressure rung: %s", body.String())
	}

	// Rung 3: sealed traces spill to disk and the resident tuples drop.
	force(3)
	spillPath := filepath.Join(spillDir, "spillee.tuples")
	if _, err := os.Stat(spillPath); err != nil {
		t.Fatalf("spill file: %v", err)
	}
	if !st.Live().Spilled() || st.Live().MemBytes() != 0 {
		t.Fatalf("spilled=%v memBytes=%d", st.Live().Spilled(), st.Live().MemBytes())
	}
	// A read faults the tuples back in transparently, byte-identical.
	if got := replayBytes(t, st.Live()); !bytes.Equal(got, wantTuples) {
		t.Fatal("tuples diverge after spill round trip")
	}
	if st.Live().Spilled() {
		t.Fatal("unspill must clear the spill marker")
	}

	// Rung 4: live-edge reads pause — an upload chunk gets 429, data
	// delayed, never lost (the receiving stream is not aborted).
	force(4)
	still, ok := m.Streams().Get("still-ok")
	if !ok {
		t.Fatal("still-ok stream missing")
	}
	req, _ := http.NewRequest("PATCH", srv.URL+"/v1/streams/still-ok", bytes.NewReader(data[:100]))
	req.Header.Set("Stream-Token", still.Token())
	req.Header.Set("Upload-Offset", "0")
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusTooManyRequests || presp.Header.Get("Retry-After") == "" {
		t.Fatalf("PATCH under pause-ingest = %d", presp.StatusCode)
	}
	if still.State() != StreamReceiving {
		t.Fatalf("paused upload must not abort the stream: %s", still.State())
	}

	// Release the floor: the ladder steps down one rung per evaluation,
	// never jumps, and sampling resumes on the way out.
	inj.Set("pressure.force", faults.Config{})
	levels := []string{}
	for i := 0; i < 6; i++ {
		levels = append(levels, m.Pressure().Evaluate().String())
	}
	if levels[3] != "normal" || levels[0] == "normal" {
		t.Fatalf("downgrade path = %v, want one step per evaluation", levels)
	}
	if tracer.Suspended() {
		t.Fatal("sampling still suspended after recovery")
	}
}

// A session restored from a snapshot whose stream did not survive the
// crash comes back stopped, with a typed ErrStreamGone surfaced through
// its status JSON — the operator sees exactly what was lost.
func TestRestoreSurfacesErrStreamGone(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "snap.json")
	m1 := NewManager(Options{
		Granularity: time.Millisecond, Metrics: obs.NewRegistry(),
		SnapshotPath: snapPath, SnapshotInterval: -1,
	})
	st, err := m1.Streams().Create(StreamConfig{Name: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write(collectedTraceBytes(t, 10)); err != nil {
		t.Fatal(err)
	}
	s, err := m1.Create(SessionConfig{Name: "rider", Live: st.Live(), TraceRef: "stream:doomed", Loop: true, Tick: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m1.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	// Crash; the new daemon has no WAL dir, so the stream is gone.

	srv, m2 := newTestAPI(t, Options{})
	n, rerr := m2.Recover(snapPath)
	if n != 1 {
		t.Fatalf("Recover restored %d sessions", n)
	}
	if !errors.Is(rerr, ErrStreamGone) {
		t.Fatalf("Recover err = %v, want ErrStreamGone", rerr)
	}
	s2, ok := m2.Get(s.ID)
	if !ok {
		t.Fatal("session not restored")
	}
	if !errors.Is(s2.RestoreError(), ErrStreamGone) {
		t.Fatalf("RestoreError = %v", s2.RestoreError())
	}
	if s2.State() == StateRunning {
		t.Fatal("a session without its stream must not auto-start")
	}
	var info SessionInfo
	doJSON(t, "GET", srv.URL+"/v1/sessions/"+s.ID, nil, http.StatusOK, &info)
	if !strings.Contains(info.Error, "stream gone") || !strings.Contains(info.Error, "doomed") {
		t.Fatalf("status error = %q", info.Error)
	}
}

// The resumable upload protocol end to end over HTTP: POST half and
// disconnect (parked, not sealed), query the offset, resume via PATCH
// with the token — wrong token 403, gap offset 409 + Upload-Offset —
// finish with ?complete=true, and match the uninterrupted batch distill.
func TestResumableUploadOverHTTP(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	srv, m := newTestAPI(t, Options{StreamWALDir: walDir})
	data := collectedTraceBytes(t, 30)
	half := len(data) / 2

	resp, err := http.Post(srv.URL+"/v1/streams?name=res&resumable=true",
		"application/octet-stream", bytes.NewReader(data[:half]))
	if err != nil {
		t.Fatal(err)
	}
	var info StreamInfo
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.State != string(StreamReceiving) || info.Token == "" || info.Bytes != int64(half) {
		t.Fatalf("parked info = %+v", info)
	}

	var off StreamOffsetInfo
	doJSON(t, "GET", srv.URL+"/v1/streams/res/offset", nil, http.StatusOK, &off)
	if off.Offset != int64(half) || off.Durable != int64(half) || !off.Resumable {
		t.Fatalf("offset info = %+v", off)
	}

	patch := func(tok string, offset int64, body []byte, complete bool) *http.Response {
		url := srv.URL + "/v1/streams/res"
		if complete {
			url += "?complete=true"
		}
		req, _ := http.NewRequest("PATCH", url, bytes.NewReader(body))
		req.Header.Set("Stream-Token", tok)
		req.Header.Set("Upload-Offset", fmt.Sprint(offset))
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// Wrong token: fenced out.
	r := patch("not-the-token", off.Offset, data[half:half+100], false)
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong token = %d", r.StatusCode)
	}
	// A gap: refused with the committed offset to rewind to.
	r = patch(info.Token, off.Offset+4096, data[half:], false)
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusConflict || r.Header.Get("Upload-Offset") != fmt.Sprint(half) {
		t.Fatalf("gap PATCH = %d, Upload-Offset=%q", r.StatusCode, r.Header.Get("Upload-Offset"))
	}
	// The real resume, overlapping one chunk (idempotent), completing.
	r = patch(info.Token, int64(half-512), data[half-512:], true)
	var final StreamInfo
	if r.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(r.Body)
		r.Body.Close()
		t.Fatalf("resume PATCH = %d: %s", r.StatusCode, raw)
	}
	if err := json.NewDecoder(r.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if final.State != string(StreamComplete) || final.Bytes != int64(len(data)) {
		t.Fatalf("final = %+v", final)
	}

	// Byte identity with the uninterrupted batch pipeline.
	collected, err := tracefmt.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := distill.Distill(collected, distill.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := replay.Write(&want, batch.Replay); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Streams().Get("res")
	if got := replayBytes(t, st.Live()); !bytes.Equal(got, want.Bytes()) {
		t.Fatal("resumed upload diverges from batch distill")
	}
}
