package wheel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tracemod/internal/faults"
)

// fakeClock is an injectable wheel clock the skew tests jump around.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) read() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) jump(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// poke schedules a throwaway timer so a shard re-reads the (fake) clock:
// the wheel itself never polls, it sleeps until woken.
func poke(w *Wheel) { w.AfterFunc(0, func() {}) }

func TestWheelClockSkewForwardJump(t *testing.T) {
	clk := &fakeClock{}
	w := New(Options{Shards: 1, Now: clk.read})
	defer w.Close()

	fired := make(chan struct{})
	w.AfterFunc(50*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
		t.Fatal("timer fired before the fake clock advanced")
	case <-time.After(30 * time.Millisecond):
	}

	// The clock leaps a full second past the deadline (suspend/resume,
	// NTP step): the timer must fire on the next dispatch pass.
	clk.jump(time.Second)
	poke(w)
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer did not fire after a forward clock jump")
	}
}

func TestWheelClockSkewBackwardNoEarlyFire(t *testing.T) {
	clk := &fakeClock{now: 10 * time.Second}
	w := New(Options{Shards: 1, Now: clk.read})
	defer w.Close()

	var fired atomic.Bool
	w.AfterFunc(50*time.Millisecond, func() { fired.Store(true) })

	// The clock steps backwards; the deadline (10.05s absolute) is now
	// further away, and the wheel must not fire it early.
	clk.jump(-20 * time.Millisecond)
	poke(w)
	time.Sleep(60 * time.Millisecond)
	if fired.Load() {
		t.Fatal("timer fired early after a backward clock jump")
	}

	// Restoring the clock past the deadline delivers it.
	clk.jump(100 * time.Millisecond)
	poke(w)
	deadline := time.Now().Add(2 * time.Second)
	for !fired.Load() {
		if time.Now().After(deadline) {
			t.Fatal("timer never fired after the clock recovered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWheelCallbackPanicIsolated(t *testing.T) {
	var gotOwner *Timers
	var gotValue any
	hooked := make(chan struct{})
	w := New(Options{Shards: 1, OnPanic: func(o *Timers, v any) {
		gotOwner, gotValue = o, v
		close(hooked)
	}})
	defer w.Close()

	tm := w.Timers()
	tm.AfterFunc(0, func() { panic("boom") })
	select {
	case <-hooked:
	case <-time.After(2 * time.Second):
		t.Fatal("OnPanic hook never ran")
	}
	if gotOwner != tm || gotValue != "boom" {
		t.Fatalf("OnPanic got (%v, %v), want (handle, boom)", gotOwner, gotValue)
	}
	if w.Panics() != 1 {
		t.Fatalf("Panics() = %d, want 1", w.Panics())
	}

	// The owner is poisoned: its later callbacks are suppressed...
	ran := make(chan struct{}, 1)
	tm.AfterFunc(0, func() { ran <- struct{}{} })
	// ...but the shard survives and serves other owners.
	other := make(chan struct{})
	w.AfterFunc(0, func() { close(other) })
	select {
	case <-other:
	case <-time.After(2 * time.Second):
		t.Fatal("shard died after a callback panic")
	}
	select {
	case <-ran:
		t.Fatal("poisoned owner's callback still ran")
	case <-time.After(20 * time.Millisecond):
	}
	if !tm.Stopped() {
		t.Fatal("panicking owner not poisoned")
	}
	// Stop on the poisoned handle still works as a barrier for cleanup.
	tm.Stop()
}

func TestWheelStallFaultDelaysNotKills(t *testing.T) {
	inj := faults.New(faults.Options{Seed: 7})
	inj.Set("wheel.stall", faults.Config{Rate: 1, Delay: 10 * time.Millisecond})
	w := New(Options{Shards: 1, Faults: inj})
	defer w.Close()

	fired := make(chan struct{})
	w.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled wheel never delivered")
	}
}
