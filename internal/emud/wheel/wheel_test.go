package wheel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tracemod/internal/obs"
)

func TestExactFires(t *testing.T) {
	w := New(Options{Shards: 2})
	defer w.Close()
	var fired atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		w.AfterFunc(time.Duration(i)*100*time.Microsecond, func() {
			fired.Add(1)
			wg.Done()
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d/100 timers fired", fired.Load())
	}
	if w.Pending() != 0 {
		t.Fatalf("pending = %d after all fired", w.Pending())
	}
}

func TestFiresNotEarly(t *testing.T) {
	w := New(Options{Shards: 1})
	defer w.Close()
	const d = 30 * time.Millisecond
	start := w.Now()
	ch := make(chan time.Duration, 1)
	w.AfterFunc(d, func() { ch <- w.Now() })
	select {
	case at := <-ch:
		if at-start < d {
			t.Fatalf("fired after %v, want >= %v", at-start, d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestGranularityCoalesces(t *testing.T) {
	// With a large granularity, a short timer still fires — on the next
	// boundary — and never early.
	w := New(Options{Shards: 1, Granularity: 20 * time.Millisecond})
	defer w.Close()
	start := w.Now()
	ch := make(chan time.Duration, 1)
	w.AfterFunc(5*time.Millisecond, func() { ch <- w.Now() })
	select {
	case at := <-ch:
		if at-start < 5*time.Millisecond {
			t.Fatalf("fired after %v, before its deadline", at-start)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("coalesced timer never fired")
	}
}

func TestZeroAndNegativeDelay(t *testing.T) {
	w := New(Options{Shards: 1})
	defer w.Close()
	ch := make(chan struct{}, 2)
	w.AfterFunc(0, func() { ch <- struct{}{} })
	w.AfterFunc(-time.Second, func() { ch <- struct{}{} })
	for i := 0; i < 2; i++ {
		select {
		case <-ch:
		case <-time.After(2 * time.Second):
			t.Fatal("immediate timer never fired")
		}
	}
}

func TestTimersStopSuppresses(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(Options{Shards: 2, Metrics: reg})
	defer w.Close()
	tm := w.Timers()
	var fired atomic.Int64
	for i := 0; i < 50; i++ {
		tm.AfterFunc(20*time.Millisecond, func() { fired.Add(1) })
	}
	tm.Stop()
	if !tm.Stopped() {
		t.Fatal("Stopped() must report true after Stop")
	}
	time.Sleep(60 * time.Millisecond)
	if n := fired.Load(); n != 0 {
		t.Fatalf("%d callbacks fired after Stop", n)
	}
	// AfterFunc on a stopped handle is a no-op.
	tm.AfterFunc(time.Millisecond, func() { fired.Add(1) })
	time.Sleep(20 * time.Millisecond)
	if n := fired.Load(); n != 0 {
		t.Fatalf("stopped handle scheduled a callback (%d fired)", n)
	}
}

// TestStopIsBarrier asserts the teardown contract: once Stop returns, no
// callback of that handle is running or will run, even with fires racing
// the Stop.
func TestStopIsBarrier(t *testing.T) {
	w := New(Options{Shards: 4})
	defer w.Close()
	for round := 0; round < 50; round++ {
		tm := w.Timers()
		var stopped atomic.Bool
		var after atomic.Int64
		for i := 0; i < 20; i++ {
			tm.AfterFunc(time.Duration(i)*50*time.Microsecond, func() {
				if stopped.Load() {
					after.Add(1)
				}
			})
		}
		time.Sleep(300 * time.Microsecond) // let some fire mid-stop
		tm.Stop()
		stopped.Store(true)
		if n := after.Load(); n != 0 {
			t.Fatalf("round %d: %d callbacks observed post-Stop state", round, n)
		}
	}
}

func TestGoroutinesStayOShards(t *testing.T) {
	base := runtime.NumGoroutine()
	w := New(Options{Shards: 4, Granularity: DefaultGranularity})
	defer w.Close()
	var wg sync.WaitGroup
	const n = 20000
	wg.Add(n)
	for i := 0; i < n; i++ {
		w.AfterFunc(time.Duration(i%50)*time.Millisecond, wg.Done)
	}
	// With 20k timers in flight the process must not have grown by more
	// than the shard goroutines plus slack — the whole point of the wheel.
	if g := runtime.NumGoroutine(); g > base+4+16 {
		t.Fatalf("goroutines = %d with %d timers pending (base %d, 4 shards)", g, n, base)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timers did not drain")
	}
}

func TestCloseDiscardsAndAfterFuncNoops(t *testing.T) {
	w := New(Options{Shards: 1})
	var fired atomic.Int64
	w.AfterFunc(50*time.Millisecond, func() { fired.Add(1) })
	w.Close()
	w.Close() // idempotent
	w.AfterFunc(time.Millisecond, func() { fired.Add(1) })
	time.Sleep(80 * time.Millisecond)
	if n := fired.Load(); n != 0 {
		t.Fatalf("%d callbacks fired after Close", n)
	}
}

func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(Options{Shards: 2, Metrics: reg})
	defer w.Close()
	var wg sync.WaitGroup
	wg.Add(10)
	for i := 0; i < 10; i++ {
		w.AfterFunc(time.Millisecond, wg.Done)
	}
	tm := w.Timers()
	tm.AfterFunc(time.Millisecond, func() {})
	tm.Stop()
	wg.Wait()
	time.Sleep(20 * time.Millisecond)
	if w.scheduled.Load() != 11 {
		t.Fatalf("scheduled = %d, want 11", w.scheduled.Load())
	}
	if w.fired.Load() != 10 {
		t.Fatalf("fired = %d, want 10", w.fired.Load())
	}
	if w.suppressed.Load() != 1 {
		t.Fatalf("suppressed = %d, want 1", w.suppressed.Load())
	}
}
