// Package wheel implements the shared timer substrate of the emulation
// daemon: a sharded timer wheel that multiplexes every scheduled callback
// of every hosted session onto O(shards) goroutines.
//
// The paper's kernel fires deliveries off the host's 10 ms clock
// interrupt: one periodic tick services every pending packet. The stdlib
// time.AfterFunc, by contrast, costs one runtime timer (and, when it
// fires, a goroutine wakeup) per scheduled packet — fine for one
// modulated link, ruinous for a session farm with tens of thousands of
// packets in flight. The wheel restores the paper's economics: each shard
// runs one goroutine that sleeps until its earliest deadline (optionally
// coalesced onto a tick boundary) and then fires everything due.
//
// Cancellation is per owner, not per timer: a *Timers handle implements
// modulation.Clock for one session, and Timers.Stop suppresses every
// callback scheduled through the handle. Stop is a barrier — once it
// returns, no callback of that handle is running or will ever run — which
// is what makes engine teardown safe while packets are in flight.
package wheel

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"

	"tracemod/internal/faults"
	"tracemod/internal/obs"
	"tracemod/internal/obs/span"
)

// DefaultShards is the shard count used when Options.Shards is zero: a
// small constant, because shards exist to bound goroutines, not to chase
// core counts.
const DefaultShards = 4

// DefaultGranularity mirrors the paper's 10 ms clock-interrupt resolution:
// wheel wakeups coalesce onto 10 ms boundaries, so a shard services every
// deadline in a tick with a single wakeup.
const DefaultGranularity = 10 * time.Millisecond

// Options parameterizes a wheel.
type Options struct {
	// Shards is the number of scheduling goroutines (DefaultShards if 0).
	Shards int
	// Granularity coalesces wakeups onto tick boundaries: a timer due at t
	// fires at the first boundary ≥ t, never early. Zero keeps the
	// wheel's exact-delivery semantics (each shard sleeps until its
	// precise earliest deadline); that is the mode the single-session
	// livewire relay runs in. Negative is treated as zero.
	Granularity time.Duration
	// Metrics, if non-nil, registers the wheel's instruments (names under
	// tracemod_wheel_*).
	Metrics *obs.Registry
	// Now, if non-nil, replaces the wheel's wall-clock reading (tests use
	// it to simulate clock skew and jumps). Must be monotonic-safe to call
	// concurrently; the wheel never assumes successive readings advance.
	Now func() time.Duration
	// Faults, if non-nil, arms the wheel's injection sites: the
	// "wheel.stall" point delays a shard's dispatch pass by its configured
	// Delay, simulating tick stalls and scheduling skew.
	Faults *faults.Injector
	// OnPanic, if non-nil, is invoked after a dispatched callback panics
	// (the wheel recovers: a panicking session must not kill the daemon).
	// owner is the callback's Timers handle, nil for ownerless timers. The
	// hook runs on the shard goroutine — it must not block and must never
	// call Timers.Stop (the owner is already poisoned; stop it from
	// another goroutine).
	OnPanic func(owner *Timers, v any)
	// Spans, if non-nil, roots sampled "wheel.tick" spans around each
	// non-empty dispatch pass (batch size and fire lateness as
	// attributes). Tick spans are independent roots, not parented into
	// packet traces: one tick serves many sessions, and each packet's own
	// wheel wait is already covered by its "wheel.wait" span.
	Spans *span.Tracer
}

// Wheel is a sharded timer wheel. It implements modulation.Clock directly
// for callers that never cancel; sessions schedule through per-owner
// Timers handles instead.
type Wheel struct {
	epoch   time.Time
	nowFn   func() time.Duration // nil = wall clock from epoch
	gran    time.Duration
	shards  []*shard
	next    atomic.Uint64 // round-robin shard placement
	closed  atomic.Bool
	wg      sync.WaitGroup
	stall   *faults.Point // nil = no stall injection
	onPanic func(owner *Timers, v any)
	spans   *span.Tracer // nil = tick spans off

	pending    atomic.Int64 // entries currently in heaps
	scheduled  *obs.Counter
	fired      *obs.Counter
	suppressed *obs.Counter
	panics     *obs.Counter
	lateness   *obs.Histogram // dispatch time minus entry deadline
	panicCount atomic.Int64
}

// New starts a wheel with the given options.
func New(o Options) *Wheel {
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	if o.Granularity < 0 {
		o.Granularity = 0
	}
	w := &Wheel{epoch: time.Now(), nowFn: o.Now, gran: o.Granularity, onPanic: o.OnPanic, spans: o.Spans}
	if o.Faults != nil {
		w.stall = o.Faults.Point("wheel.stall")
	}
	if o.Metrics != nil {
		w.scheduled = o.Metrics.Counter("tracemod_wheel_timers_scheduled_total", "Callbacks scheduled on the timer wheel.")
		w.fired = o.Metrics.Counter("tracemod_wheel_timers_fired_total", "Wheel callbacks that ran.")
		w.suppressed = o.Metrics.Counter("tracemod_wheel_timers_suppressed_total", "Wheel callbacks suppressed by a stopped owner.")
		w.panics = o.Metrics.Counter("tracemod_wheel_callback_panics_total", "Wheel callbacks that panicked (recovered; owner poisoned).")
		w.lateness = o.Metrics.Histogram("tracemod_wheel_fire_lateness_seconds",
			"How late each callback fired relative to its deadline (coalescing admits up to one granularity; more means tick stall or overload). The tick-lateness SLO input.",
			latenessBuckets(o.Granularity))
		o.Metrics.GaugeFunc("tracemod_wheel_timers_pending", "Timers currently waiting in the wheel.",
			func() float64 { return float64(w.pending.Load()) })
		o.Metrics.Gauge("tracemod_wheel_shards", "Scheduling shards (goroutines) in the wheel.").Set(int64(o.Shards))
	}
	for i := 0; i < o.Shards; i++ {
		s := &shard{wake: make(chan struct{}, 1), quit: make(chan struct{})}
		w.shards = append(w.shards, s)
		w.wg.Add(1)
		go w.run(s)
	}
	return w
}

// latenessBuckets scales the fire-lateness histogram to the coalescing
// granularity: fine resolution below one tick (where all healthy fires
// land) and a coarse tail for stalls.
func latenessBuckets(gran time.Duration) []time.Duration {
	if gran <= 0 {
		gran = DefaultGranularity
	}
	return []time.Duration{
		gran / 10, gran / 4, gran / 2, gran,
		2 * gran, 5 * gran, 10 * gran, 100 * gran,
	}
}

// FireLateness exposes the fire-lateness histogram (nil when metrics are
// off) — the SLO engine evaluates tick-deadline objectives against it.
func (w *Wheel) FireLateness() *obs.Histogram { return w.lateness }

// Now returns elapsed wheel time (implements modulation.Clock).
func (w *Wheel) Now() time.Duration {
	if w.nowFn != nil {
		return w.nowFn()
	}
	return time.Since(w.epoch)
}

// Panics reports how many dispatched callbacks have panicked (and been
// recovered) over the wheel's lifetime.
func (w *Wheel) Panics() int64 { return w.panicCount.Load() }

// Granularity reports the coalescing tick (0 = exact).
func (w *Wheel) Granularity() time.Duration { return w.gran }

// Shards reports the shard count.
func (w *Wheel) Shards() int { return len(w.shards) }

// Pending reports how many timers are waiting in the wheel.
func (w *Wheel) Pending() int64 { return w.pending.Load() }

// AfterFunc schedules fn with no owner; it cannot be cancelled
// (implements modulation.Clock).
func (w *Wheel) AfterFunc(d time.Duration, fn func()) { w.schedule(nil, d, fn) }

// Timers returns a cancellation scope: a modulation.Clock whose pending
// callbacks can all be revoked at once with Stop.
func (w *Wheel) Timers() *Timers { return &Timers{w: w} }

// Close stops every shard goroutine. Pending timers are discarded; Close
// does not wait for in-flight callbacks beyond each shard's current
// dispatch batch.
func (w *Wheel) Close() {
	if w.closed.Swap(true) {
		return
	}
	for _, s := range w.shards {
		close(s.quit)
	}
	w.wg.Wait()
}

// Timers is a per-owner scheduling handle (one per emud session). It
// implements modulation.Clock.
type Timers struct {
	w       *Wheel
	stopped atomic.Bool
	// barrier orders callback dispatch against Stop: callbacks run under
	// RLock, Stop sets the flag and then takes the write lock, so Stop
	// returns only after every in-flight callback has finished and no
	// later one can start. Callbacks must therefore never call Stop on
	// their own handle (sessions stop from the control plane or the
	// manager's janitor goroutine, never from inside a delivery).
	barrier sync.RWMutex
}

// Now implements modulation.Clock.
func (t *Timers) Now() time.Duration { return t.w.Now() }

// AfterFunc implements modulation.Clock. After Stop it is a no-op.
func (t *Timers) AfterFunc(d time.Duration, fn func()) {
	if t.stopped.Load() {
		return
	}
	t.w.schedule(t, d, fn)
}

// Stopped reports whether Stop has been called.
func (t *Timers) Stopped() bool { return t.stopped.Load() }

// Stop revokes every callback scheduled through the handle. When Stop
// returns, no callback is running and none will ever run; entries already
// in a shard heap are discarded when they come due.
func (t *Timers) Stop() {
	t.stopped.Store(true)
	t.barrier.Lock()
	//lint:ignore SA2001 the empty critical section is the point: taking the
	// write lock waits out every dispatch holding the read lock.
	t.barrier.Unlock()
}

// entry is one scheduled callback.
type entry struct {
	at    time.Duration // absolute wheel time
	seq   uint64        // FIFO tiebreak for equal deadlines
	fn    func()
	owner *Timers // nil = uncancellable
}

type shard struct {
	mu   sync.Mutex
	h    entryHeap
	seq  uint64
	wake chan struct{}
	quit chan struct{}
	due  []entry // dispatch scratch, reused across wakeups
}

// schedule places fn on a shard, waking it if the new entry becomes the
// earliest deadline.
func (w *Wheel) schedule(owner *Timers, d time.Duration, fn func()) {
	if w.closed.Load() {
		return
	}
	if d < 0 {
		d = 0
	}
	at := w.Now() + d
	s := w.shards[w.next.Add(1)%uint64(len(w.shards))]
	s.mu.Lock()
	s.seq++
	earliest := s.h.Len() == 0 || at < s.h[0].at
	heap.Push(&s.h, entry{at: at, seq: s.seq, fn: fn, owner: owner})
	s.mu.Unlock()
	w.pending.Add(1)
	w.scheduled.Inc()
	if earliest {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// run is one shard's scheduling loop: pop everything due, dispatch it
// outside the lock, then sleep until the next deadline (aligned up to the
// granularity boundary when coalescing) or until a new earliest arrives.
func (w *Wheel) run(s *shard) {
	defer w.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		// Injected tick stall: the shard sleeps before servicing its heap,
		// so deadlines slip late — which the wheel's contract allows (never
		// early) and the chaos suite exercises.
		w.stall.Stall()
		now := w.Now()
		s.mu.Lock()
		s.due = s.due[:0]
		for s.h.Len() > 0 && s.h[0].at <= now {
			s.due = append(s.due, heap.Pop(&s.h).(entry))
		}
		wait := time.Duration(-1)
		if s.h.Len() > 0 {
			next := s.h[0].at
			if w.gran > 0 {
				// Coalesce: wake at the first tick boundary ≥ the deadline.
				next = (next + w.gran - 1) / w.gran * w.gran
			}
			wait = next - now
			if wait <= 0 {
				wait = time.Millisecond
			}
		}
		s.mu.Unlock()
		if n := len(s.due); n > 0 {
			w.pending.Add(int64(-n))
			if w.lateness != nil {
				for i := range s.due {
					w.lateness.Observe(now - s.due[i].at)
				}
			}
			// Sampled tick span: one root per non-empty dispatch pass.
			// s.due[0] is the earliest deadline in the pass (heap order).
			tick := w.spans.Root("wheel.tick")
			if tick != nil {
				tick.Attr("batch", int64(n))
				tick.Attr("lateness_ns", int64(now-s.due[0].at))
			}
			for i := range s.due {
				s.due[i].run(w)
				s.due[i] = entry{} // drop refs so pooled closures can be collected
			}
			tick.End()
		}
		if wait < 0 {
			// Idle: nothing scheduled, park until woken.
			select {
			case <-s.wake:
			case <-s.quit:
				return
			}
			continue
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-s.wake:
			if !timer.Stop() {
				<-timer.C
			}
		case <-s.quit:
			if !timer.Stop() {
				<-timer.C
			}
			return
		}
	}
}

// run dispatches the entry, honouring its owner's Stop barrier and
// isolating panics: a panicking callback is recovered, counted, and its
// owner poisoned (every later callback of that handle is suppressed), so
// one broken session cannot take the shard goroutine — and with it the
// whole daemon — down.
func (e *entry) run(w *Wheel) {
	o := e.owner
	if o != nil {
		o.barrier.RLock()
		if o.stopped.Load() {
			o.barrier.RUnlock()
			w.suppressed.Inc()
			return
		}
	}
	v := invoke(e.fn)
	if o != nil {
		if v != nil {
			// Poison before releasing the barrier so no later callback of
			// this owner starts; the full Stop (barrier + relay teardown)
			// must come from another goroutine.
			o.stopped.Store(true)
		}
		o.barrier.RUnlock()
	}
	if v != nil {
		w.panicCount.Add(1)
		w.panics.Inc()
		if w.onPanic != nil {
			w.onPanic(o, v)
		}
		return
	}
	w.fired.Inc()
}

// invoke runs fn, converting a panic into a returned value.
func invoke(fn func()) (v any) {
	defer func() { v = recover() }()
	fn()
	return nil
}

// entryHeap is a min-heap on (at, seq).
type entryHeap []entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(entry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = entry{}
	*h = old[:n-1]
	return e
}
