// Package emud is the multi-tenant emulation daemon: a session farm that
// hosts many concurrent modulated links in one process. Where the paper
// modulates one mobile host per kernel, emud serves thousands of emulated
// links from one engine pool — the ERRANT/TheaterQ shape of trace-driven
// emulation as a service.
//
// The subsystem has four parts: the Manager (session lifecycle: create,
// start, stop, idle expiry, graceful drain), a sharded timer wheel
// (internal/emud/wheel) every session schedules through, a trace Store
// that parses each trace file once and shares the immutable result, and
// an HTTP/JSON control plane (http.go) wired into internal/obs with
// per-session metric labels.
package emud

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tracemod/internal/emud/pressure"
	"tracemod/internal/emud/wal"
	"tracemod/internal/emud/wheel"
	"tracemod/internal/faults"
	"tracemod/internal/livewire"
	"tracemod/internal/obs"
	"tracemod/internal/obs/span"
)

// Defaults for Options zero values.
const (
	DefaultMaxSessions      = 4096
	DefaultJanitorPeriod    = time.Second
	DefaultDrainTimeout     = 5 * time.Second
	DefaultSnapshotInterval = 10 * time.Second
)

// Fault-point names the farm registers up front, so a chaos controller
// (or /v1/faults) sees the full menu before any point has fired.
var faultPointNames = []string{
	"store.parse",       // trace loads fail as if the file were corrupt
	"store.evict",       // eviction storm: the LRU sheds every cached trace
	"wheel.stall",       // wheel shards sleep before each dispatch round
	"relay.attach",      // relay socket setup fails (retried with backoff)
	"control.slow",      // control-plane handlers stall before responding
	"control.error",     // control-plane handlers fail with HTTP 500
	"session.panic",     // a session delivery callback panics (quarantine path)
	"stream.reap",       // marked when the idle reaper seals a stalled stream
	"pressure.brownout", // marked on every brownout ladder transition
	"pressure.force",    // armed: forces a brownout floor (delay_ms 1..4 = rung)
}

// Options parameterizes a Manager.
type Options struct {
	// Shards is the timer wheel's goroutine count (wheel.DefaultShards
	// if 0).
	Shards int
	// Granularity is the wheel's wakeup coalescing tick. Zero means
	// wheel.DefaultGranularity (the paper's 10 ms); negative means exact
	// scheduling.
	Granularity time.Duration
	// MaxSessions bounds concurrently existing sessions
	// (DefaultMaxSessions if 0).
	MaxSessions int
	// SessionIDPrefix prefixes every minted session ID ("" for the
	// single-node default "s-000001" shape). A cluster worker sets it to
	// its member name ("w1-s-000001") so IDs stay unique across the farm
	// and a failed-over or migrated session keeps its ID on the survivor.
	SessionIDPrefix string
	// IdleTimeout expires sessions that have seen no traffic for this
	// long (0 disables idle expiry).
	IdleTimeout time.Duration
	// JanitorPeriod is the idle-expiry scan interval
	// (DefaultJanitorPeriod if 0).
	JanitorPeriod time.Duration
	// DrainTimeout bounds graceful drains (DefaultDrainTimeout if 0).
	DrainTimeout time.Duration
	// MaxSessionInFlight caps one session's in-flight packets; excess
	// submits are shed with ErrOverload. Zero disables the cap.
	MaxSessionInFlight int
	// MaxInFlightBytes bounds aggregate in-flight payload bytes across
	// the whole farm; submits past the budget are shed. Zero disables.
	MaxInFlightBytes int64
	// Store supplies traces; a private store is created when nil.
	Store *Store
	// Faults is the chaos injector; its points thread through the wheel,
	// the store, relay attach, and the control plane. Nil disables every
	// fault point (the production default).
	Faults *faults.Injector
	// Retry is the backoff policy for relay attach and trace-store loads;
	// the zero value uses the faults package defaults.
	Retry faults.Backoff
	// SnapshotPath, when set, makes the farm crash-safe: session specs and
	// replay cursors are written there periodically and at Close, and
	// Restore replays them after a crash.
	SnapshotPath string
	// SnapshotInterval is the periodic snapshot cadence
	// (DefaultSnapshotInterval if 0; negative disables the periodic
	// writer, leaving only the on-close snapshot).
	SnapshotInterval time.Duration
	// StreamWALDir, when set, makes live-ingest streams durable: every
	// accepted upload chunk is appended to a per-stream write-ahead log
	// under this directory before it is interpreted, and RecoverStreams
	// replays the durable prefix after a crash.
	StreamWALDir string
	// StreamWALSync is the WAL fsync policy (wal.SyncAlways — the zero
	// value — syncs every append).
	StreamWALSync wal.SyncPolicy
	// StreamWALSegmentBytes is the WAL segment rotation size
	// (wal.DefaultSegmentBytes if 0).
	StreamWALSegmentBytes int64
	// StreamIdleTimeout seals receiving streams that have accepted no
	// chunk for this long, freeing their pinned bytes (0 disables the
	// reaper).
	StreamIdleTimeout time.Duration
	// StreamQuotaBytes caps one stream's total upload size; a chunk past
	// the quota fails the stream with a typed QuotaError (0 = unlimited).
	StreamQuotaBytes int64
	// SpillDir is where sealed live traces spill their tuples when the
	// brownout ladder reaches spill-traces ("" disables spilling).
	SpillDir string
	// HeapHighWater is the heap-in-use byte level where the brownout
	// ladder starts shedding (0 disables the heap watermark).
	HeapHighWater int64
	// PinnedBudget bounds the bytes pinned by live ingest before the
	// ladder sheds (0 disables the pinned watermark).
	PinnedBudget int64
	// PressurePeriod is the brownout evaluation cadence
	// (pressure.DefaultPeriod if 0; negative disables the loop — tests
	// drive Evaluate directly).
	PressurePeriod time.Duration
	// PumpShards sizes the shared livewire pump group servicing every
	// attached relay's sockets: 0 means GOMAXPROCS event loops (when the
	// platform's batched socket I/O is available — elsewhere relays keep
	// per-relay pump goroutines), a negative value disables the group
	// outright.
	PumpShards int
	// Metrics, if non-nil, registers the farm's instruments (names under
	// tracemod_emud_*), including per-session labelled counters.
	Metrics *obs.Registry
	// Spans, if non-nil, enables sampled end-to-end packet tracing: each
	// sampled packet gets a "session.packet" root span recorded into the
	// session's flight recorder (and the tracer's default sink), with the
	// modulation engine and timer wheel contributing children and events.
	// The manager rebinds the tracer's clock to the wheel's, so span times
	// share the wheel epoch.
	Spans *span.Tracer
	// FlightSpans is the per-session flight-recorder capacity
	// (span.DefaultFlightCapacity if 0) — only meaningful with Spans set.
	FlightSpans int
	// Logger receives the farm's structured lifecycle log (session
	// created/expired/quarantined, snapshots). Nil discards.
	Logger *slog.Logger
}

// instruments is the farm's metric bundle; nil means observability off
// (every method is nil-safe, mirroring the modulation engine's pattern).
type instruments struct {
	created, expired, deleted *obs.Counter
	shed, quarantined         *obs.Counter
	snapshots, recovered      *obs.Counter
	active                    *obs.Gauge

	submitted *obs.CounterVec // by session
	delivered *obs.CounterVec
	dropped   *obs.CounterVec
	state     *obs.GaugeVec
}

func newInstruments(reg *obs.Registry) *instruments {
	return &instruments{
		created: reg.Counter("tracemod_emud_sessions_created_total", "Sessions created over the daemon's lifetime."),
		expired: reg.Counter("tracemod_emud_sessions_expired_total", "Sessions stopped by idle expiry."),
		deleted: reg.Counter("tracemod_emud_sessions_deleted_total", "Sessions deleted from the farm."),
		shed: reg.Counter("tracemod_emud_packets_shed_total",
			"Packets refused by admission control (per-session cap or farm byte budget)."),
		quarantined: reg.Counter("tracemod_emud_sessions_quarantined_total",
			"Sessions stopped because a callback panicked."),
		snapshots: reg.Counter("tracemod_emud_snapshots_written_total",
			"Crash-recovery snapshots written to disk."),
		recovered: reg.Counter("tracemod_emud_sessions_recovered_total",
			"Sessions restored from a crash-recovery snapshot."),
		active: reg.Gauge("tracemod_emud_sessions_active", "Sessions currently existing (any state)."),
		submitted: reg.CounterVec("tracemod_emud_session_packets_submitted_total",
			"Packets accepted per session.", "session"),
		delivered: reg.CounterVec("tracemod_emud_session_packets_delivered_total",
			"Packets delivered per session.", "session"),
		dropped: reg.CounterVec("tracemod_emud_session_packets_dropped_total",
			"Packets lost to the drop lottery per session.", "session"),
		state: reg.GaugeVec("tracemod_emud_session_state",
			"Session lifecycle state (0=created 1=running 2=draining 3=stopped).", "session"),
	}
}

func (ins *instruments) submit(s *Session) {
	if ins != nil {
		ins.submitted.With(s.ID).Inc()
	}
}

func (ins *instruments) deliver(s *Session) {
	if ins != nil {
		ins.delivered.With(s.ID).Inc()
	}
}

func (ins *instruments) drop(s *Session) {
	if ins != nil {
		ins.dropped.With(s.ID).Inc()
	}
}

func (ins *instruments) sessionState(s *Session) {
	if ins != nil {
		ins.state.With(s.ID).Set(int64(s.State()))
	}
}

func (ins *instruments) incCreated() {
	if ins != nil {
		ins.created.Inc()
	}
}

func (ins *instruments) incExpired() {
	if ins != nil {
		ins.expired.Inc()
	}
}

func (ins *instruments) incDeleted() {
	if ins != nil {
		ins.deleted.Inc()
	}
}

func (ins *instruments) shedOne(*Session) {
	if ins != nil {
		ins.shed.Inc()
	}
}

func (ins *instruments) incQuarantined() {
	if ins != nil {
		ins.quarantined.Inc()
	}
}

func (ins *instruments) incSnapshots() {
	if ins != nil {
		ins.snapshots.Inc()
	}
}

func (ins *instruments) incRecovered() {
	if ins != nil {
		ins.recovered.Inc()
	}
}

func (ins *instruments) setActive(n int) {
	if ins != nil {
		ins.active.Set(int64(n))
	}
}

func (ins *instruments) remove(id string) {
	if ins != nil {
		ins.submitted.Remove(id)
		ins.delivered.Remove(id)
		ins.dropped.Remove(id)
		ins.state.Remove(id)
	}
}

// Manager is the session farm.
type Manager struct {
	opts     Options
	wheel    *wheel.Wheel
	store    *Store
	ins      *instruments
	spans    *span.Tracer // nil = packet tracing off
	log      *slog.Logger // never nil (discards by default)
	slos     *obs.SLOSet
	streams  *Streams
	pressure *pressure.Controller // nil-safe: Level() is Normal when unwired
	pumps    *livewire.PumpGroup  // nil-safe: shared relay data plane

	mu       sync.Mutex
	sessions map[string]*Session
	seq      int64
	closed   bool

	// Admission control and resilience accounting.
	inflightBytes    atomic.Int64
	shedTotal        atomic.Int64
	quarantinedTotal atomic.Int64

	// draining marks a planned shutdown in progress: new sessions are
	// refused, /v1/health fails readiness with status "draining" (while
	// liveness stays up), and a cluster coordinator reads it as "migrate
	// my sessions away" rather than "this worker is dead".
	draining atomic.Bool

	faultRelayAttach  *faults.Point
	faultSessionPanic *faults.Point
	relayRetry        faults.Backoff

	// quarantineCh feeds sessions whose callbacks panicked to a dedicated
	// goroutine that stops them — Stop must never run on the panicking
	// wheel shard itself (it would deadlock on the session's own barrier).
	quarantineCh chan *Session

	quit chan struct{}
	wg   sync.WaitGroup
}

// NewManager starts a farm (wheel shards, janitor, quarantine drainer,
// and — when SnapshotPath is set — the periodic snapshot writer).
func NewManager(o Options) *Manager {
	if o.MaxSessions <= 0 {
		o.MaxSessions = DefaultMaxSessions
	}
	if o.JanitorPeriod <= 0 {
		o.JanitorPeriod = DefaultJanitorPeriod
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = DefaultDrainTimeout
	}
	if o.SnapshotInterval == 0 {
		o.SnapshotInterval = DefaultSnapshotInterval
	}
	gran := o.Granularity
	if gran == 0 {
		gran = wheel.DefaultGranularity
	}
	if gran < 0 {
		gran = 0
	}
	m := &Manager{
		opts:         o,
		store:        o.Store,
		spans:        o.Spans,
		log:          o.Logger,
		sessions:     map[string]*Session{},
		quarantineCh: make(chan *Session, 64),
		quit:         make(chan struct{}),
	}
	if m.log == nil {
		m.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	m.wheel = wheel.New(wheel.Options{
		Shards:      o.Shards,
		Granularity: gran,
		Metrics:     o.Metrics,
		Faults:      o.Faults,
		Spans:       o.Spans,
		OnPanic:     func(owner *wheel.Timers, v any) { m.quarantine(m.sessionForTimers(owner), v) },
	})
	// Span timestamps and wheel deadlines must share an epoch, or flight
	// dumps would interleave two clocks. Rebinding here is safe: no span
	// of this farm has started yet.
	m.spans.SetNow(m.wheel.Now)
	m.slos = m.buildSLOs(gran)
	if o.Faults != nil {
		for _, name := range faultPointNames {
			o.Faults.Point(name)
		}
		m.faultRelayAttach = o.Faults.Point("relay.attach")
		m.faultSessionPanic = o.Faults.Point("session.panic")
	}
	m.relayRetry = o.Retry
	if m.store == nil {
		m.store = NewStore(StoreOptions{Metrics: o.Metrics, Faults: o.Faults, Retry: o.Retry})
	}
	m.streams = newStreams(m)
	m.pumps = livewire.NewPumpGroup(livewire.PumpGroupConfig{
		Shards:  o.PumpShards,
		Metrics: o.Metrics,
	})
	m.pressure = pressure.New(pressure.Config{
		HeapHighWater: o.HeapHighWater,
		PinnedBudget:  o.PinnedBudget,
		Period:        o.PressurePeriod,
		Pinned:        m.streams.PinnedBytes,
		OnChange:      m.onPressureChange,
		Metrics:       o.Metrics,
		Faults:        o.Faults,
		Logger:        m.log,
	})
	if o.Metrics != nil {
		m.ins = newInstruments(o.Metrics)
	}
	m.wg.Add(1)
	go m.quarantineLoop()
	if o.IdleTimeout > 0 {
		m.wg.Add(1)
		go m.janitor()
	}
	if o.SnapshotPath != "" && o.SnapshotInterval > 0 {
		m.wg.Add(1)
		go m.snapshotLoop()
	}
	return m
}

// quarantine marks a session whose callback panicked and hands it to the
// drainer goroutine for a full Stop. Safe to call from wheel callbacks:
// it never blocks and never takes the session's timer barrier.
func (m *Manager) quarantine(s *Session, v any) {
	if s == nil || !s.quarantined.CompareAndSwap(false, true) {
		return
	}
	s.panicValue.Store(fmt.Sprint(v))
	m.quarantinedTotal.Add(1)
	m.ins.incQuarantined()
	select {
	case m.quarantineCh <- s:
	default:
		// Channel full (a panic storm): fall back to a one-off goroutine
		// rather than blocking a wheel shard.
		go func() {
			s.Stop()
			m.logQuarantine(s)
		}()
	}
}

func (m *Manager) quarantineLoop() {
	defer m.wg.Done()
	for {
		select {
		case s := <-m.quarantineCh:
			s.Stop()
			m.logQuarantine(s)
		case <-m.quit:
			return
		}
	}
}

// logQuarantine dumps a quarantined session's black box to the structured
// log: the panic value, then — when tracing is on — the flight recorder's
// final span tree, so the "why" is captured even if no operator ever
// fetches /v1/sessions/{id}/flight. Runs after Stop, so the ring is
// quiescent apart from unsampled stragglers.
func (m *Manager) logQuarantine(s *Session) {
	v, _ := s.panicValue.Load().(string)
	log := m.log.With("session", s.ID)
	if s.flight == nil {
		log.Error("session quarantined", "panic", v)
		return
	}
	spans := s.flight.Snapshot()
	log.Error("session quarantined", "panic", v,
		"flight_spans", len(spans), "flight_total", s.flight.Total())
	if len(spans) > 0 {
		var tree strings.Builder
		_ = span.RenderTree(&tree, spans)
		log.Info("flight recorder dump", "tree", tree.String())
	}
}

// sessionForTimers maps a wheel handle back to its session (for panics
// surfacing through the wheel rather than the session's own recovery).
func (m *Manager) sessionForTimers(t *wheel.Timers) *Session {
	if t == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.sessions {
		s.mu.Lock()
		match := s.timers == t
		s.mu.Unlock()
		if match {
			return s
		}
	}
	return nil
}

// BeginDrain marks the farm as draining: new session creates are refused
// with ErrDraining and /v1/health fails readiness with status "draining"
// while the process stays alive to hand its sessions off. It does not by
// itself stop anything — Close (or per-session Handoff) does the work.
func (m *Manager) BeginDrain() {
	if m.draining.CompareAndSwap(false, true) {
		m.log.Info("farm draining: refusing new sessions")
	}
}

// Draining reports whether a planned shutdown is in progress.
func (m *Manager) Draining() bool { return m.draining.Load() }

// Quarantined reports how many sessions have been quarantined for
// panicking callbacks over the farm's lifetime.
func (m *Manager) Quarantined() int64 { return m.quarantinedTotal.Load() }

// Shed reports how many packets admission control has refused.
func (m *Manager) Shed() int64 { return m.shedTotal.Load() }

// InFlightBytes reports the farm-wide in-flight payload byte total
// currently charged against Options.MaxInFlightBytes.
func (m *Manager) InFlightBytes() int64 { return m.inflightBytes.Load() }

// Wheel exposes the farm's shared timer wheel.
func (m *Manager) Wheel() *wheel.Wheel { return m.wheel }

// Store exposes the farm's trace store.
func (m *Manager) Store() *Store { return m.store }

// Streams exposes the farm's live-ingest registry.
func (m *Manager) Streams() *Streams { return m.streams }

// Pressure exposes the farm's brownout controller.
func (m *Manager) Pressure() *pressure.Controller { return m.pressure }

// onPressureChange applies the shed actions as the brownout ladder
// moves: span sampling is suspended at shed-sampling and deeper, and
// sealed live traces spill at spill-traces and deeper. Rejecting new
// streams and pausing live-edge reads are enforced at their call sites
// by consulting the controller's level directly.
func (m *Manager) onPressureChange(_, to pressure.Level) {
	m.spans.Suspend(to >= pressure.ShedSampling)
	if to >= pressure.SpillTraces {
		m.streams.SpillSealed()
	}
}

// Create registers a new session in StateCreated. The trace must already
// be resolved (the control plane goes through the Store first). Live
// sessions skip trace validation: the growing trace may be empty at
// create time, and every tuple was already sanitized at emission.
//
// Admission rides the brownout ladder: from shed-sampling upward new
// sessions are refused with a typed BrownoutError (HTTP 429 +
// Retry-After) — a new tenant is the most expensive unit the farm can
// admit, so it is shed one rung before new streams. A draining farm
// refuses with ErrDraining. Recovery's createRestored bypasses both
// gates: failover must be able to land sessions on a loaded survivor.
func (m *Manager) Create(cfg SessionConfig) (*Session, error) {
	if cfg.Live == nil {
		if err := cfg.Trace.Validate(); err != nil {
			return nil, err
		}
	}
	if m.draining.Load() {
		return nil, ErrDraining
	}
	if lvl := m.pressure.Level(); lvl >= pressure.ShedSampling {
		return nil, &BrownoutError{Level: lvl, RetryAfter: m.pressure.RetryAfter()}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("emud: manager closed")
	}
	if len(m.sessions) >= m.opts.MaxSessions {
		return nil, fmt.Errorf("emud: session limit reached (%d): %w", m.opts.MaxSessions, ErrOverload)
	}
	m.seq++
	s := &Session{
		ID:      fmt.Sprintf("%ss-%06d", m.opts.SessionIDPrefix, m.seq),
		cfg:     cfg,
		created: m.wheel.Now(),
		expLoss: cfg.Trace.WeightedLoss(),
		m:       m,
	}
	if m.spans.Enabled() {
		s.flight = span.NewFlightRecorder(m.opts.FlightSpans)
	}
	s.state.Store(int32(StateCreated))
	s.lastActive.Store(int64(s.created))
	m.sessions[s.ID] = s
	m.ins.incCreated()
	m.ins.setActive(len(m.sessions))
	m.ins.sessionState(s)
	m.log.Debug("session created", "session", s.ID, "name", cfg.Name,
		"trace", cfg.TraceRef, "tuples", len(cfg.Trace))
	return s, nil
}

// Get returns a session by ID.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// List returns every session, ordered by ID.
func (m *Manager) List() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	// IDs are zero-padded sequence numbers, so lexical order is creation
	// order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Count returns the number of existing sessions.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Delete stops a session and removes it from the farm (and its labelled
// metrics from the export).
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
		m.ins.setActive(len(m.sessions))
	}
	m.mu.Unlock()
	if !ok {
		return false
	}
	s.Stop()
	m.ins.incDeleted()
	m.ins.remove(s.ID)
	m.log.Debug("session deleted", "session", s.ID)
	return true
}

// janitor periodically expires idle sessions. It runs on its own
// goroutine (not the wheel) because Stop must never be called from a
// wheel callback.
func (m *Manager) janitor() {
	defer m.wg.Done()
	tick := time.NewTicker(m.opts.JanitorPeriod)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			m.expireIdle()
		case <-m.quit:
			return
		}
	}
}

// expireIdle stops (and removes) sessions idle past the deadline.
func (m *Manager) expireIdle() {
	var idle []*Session
	m.mu.Lock()
	for _, s := range m.sessions {
		if st := s.State(); st == StateRunning || st == StateCreated {
			if s.IdleFor() > m.opts.IdleTimeout {
				idle = append(idle, s)
			}
		}
	}
	for _, s := range idle {
		delete(m.sessions, s.ID)
	}
	m.ins.setActive(len(m.sessions))
	m.mu.Unlock()
	for _, s := range idle {
		s.Stop()
		m.ins.incExpired()
		m.ins.remove(s.ID)
		m.log.Info("session expired idle", "session", s.ID)
	}
}

// Close drains every session in parallel under one shared DrainTimeout
// deadline, stops the helper goroutines, and shuts the wheel down. When
// SnapshotPath is set, a final snapshot is written before the drain so a
// crash-during-shutdown still has a recovery point.
func (m *Manager) Close() {
	m.draining.Store(true)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.sessions = map[string]*Session{}
	m.mu.Unlock()

	if m.opts.SnapshotPath != "" {
		_ = m.writeSnapshotOf(sessions)
	}

	// One context bounds every drain: each DrainContext returns by the
	// shared deadline (Stop after expiry is fast — the timer barrier only
	// waits out callbacks already running), so the WaitGroup below cannot
	// hang on a slow tenant.
	ctx, cancel := context.WithTimeout(context.Background(), m.opts.DrainTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			s.DrainContext(ctx)
		}(s)
	}
	wg.Wait()
	close(m.quit)
	m.wg.Wait()
	m.pressure.Close()
	m.streams.Close()
	m.wheel.Close()
	m.pumps.Close()
}

// Pumps exposes the shared relay data-plane group (nil-safe; may be
// disabled on platforms without batched socket I/O).
func (m *Manager) Pumps() *livewire.PumpGroup { return m.pumps }
