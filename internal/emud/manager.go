// Package emud is the multi-tenant emulation daemon: a session farm that
// hosts many concurrent modulated links in one process. Where the paper
// modulates one mobile host per kernel, emud serves thousands of emulated
// links from one engine pool — the ERRANT/TheaterQ shape of trace-driven
// emulation as a service.
//
// The subsystem has four parts: the Manager (session lifecycle: create,
// start, stop, idle expiry, graceful drain), a sharded timer wheel
// (internal/emud/wheel) every session schedules through, a trace Store
// that parses each trace file once and shares the immutable result, and
// an HTTP/JSON control plane (http.go) wired into internal/obs with
// per-session metric labels.
package emud

import (
	"fmt"
	"sync"
	"time"

	"tracemod/internal/emud/wheel"
	"tracemod/internal/obs"
)

// Defaults for Options zero values.
const (
	DefaultMaxSessions   = 4096
	DefaultJanitorPeriod = time.Second
	DefaultDrainTimeout  = 5 * time.Second
)

// Options parameterizes a Manager.
type Options struct {
	// Shards is the timer wheel's goroutine count (wheel.DefaultShards
	// if 0).
	Shards int
	// Granularity is the wheel's wakeup coalescing tick. Zero means
	// wheel.DefaultGranularity (the paper's 10 ms); negative means exact
	// scheduling.
	Granularity time.Duration
	// MaxSessions bounds concurrently existing sessions
	// (DefaultMaxSessions if 0).
	MaxSessions int
	// IdleTimeout expires sessions that have seen no traffic for this
	// long (0 disables idle expiry).
	IdleTimeout time.Duration
	// JanitorPeriod is the idle-expiry scan interval
	// (DefaultJanitorPeriod if 0).
	JanitorPeriod time.Duration
	// DrainTimeout bounds graceful drains (DefaultDrainTimeout if 0).
	DrainTimeout time.Duration
	// Store supplies traces; a private store is created when nil.
	Store *Store
	// Metrics, if non-nil, registers the farm's instruments (names under
	// tracemod_emud_*), including per-session labelled counters.
	Metrics *obs.Registry
}

// instruments is the farm's metric bundle; nil means observability off
// (every method is nil-safe, mirroring the modulation engine's pattern).
type instruments struct {
	created, expired, deleted *obs.Counter
	active                    *obs.Gauge

	submitted *obs.CounterVec // by session
	delivered *obs.CounterVec
	dropped   *obs.CounterVec
	state     *obs.GaugeVec
}

func newInstruments(reg *obs.Registry) *instruments {
	return &instruments{
		created: reg.Counter("tracemod_emud_sessions_created_total", "Sessions created over the daemon's lifetime."),
		expired: reg.Counter("tracemod_emud_sessions_expired_total", "Sessions stopped by idle expiry."),
		deleted: reg.Counter("tracemod_emud_sessions_deleted_total", "Sessions deleted from the farm."),
		active:  reg.Gauge("tracemod_emud_sessions_active", "Sessions currently existing (any state)."),
		submitted: reg.CounterVec("tracemod_emud_session_packets_submitted_total",
			"Packets accepted per session.", "session"),
		delivered: reg.CounterVec("tracemod_emud_session_packets_delivered_total",
			"Packets delivered per session.", "session"),
		dropped: reg.CounterVec("tracemod_emud_session_packets_dropped_total",
			"Packets lost to the drop lottery per session.", "session"),
		state: reg.GaugeVec("tracemod_emud_session_state",
			"Session lifecycle state (0=created 1=running 2=draining 3=stopped).", "session"),
	}
}

func (ins *instruments) submit(s *Session) {
	if ins != nil {
		ins.submitted.With(s.ID).Inc()
	}
}

func (ins *instruments) deliver(s *Session) {
	if ins != nil {
		ins.delivered.With(s.ID).Inc()
	}
}

func (ins *instruments) drop(s *Session) {
	if ins != nil {
		ins.dropped.With(s.ID).Inc()
	}
}

func (ins *instruments) sessionState(s *Session) {
	if ins != nil {
		ins.state.With(s.ID).Set(int64(s.State()))
	}
}

func (ins *instruments) incCreated() {
	if ins != nil {
		ins.created.Inc()
	}
}

func (ins *instruments) incExpired() {
	if ins != nil {
		ins.expired.Inc()
	}
}

func (ins *instruments) incDeleted() {
	if ins != nil {
		ins.deleted.Inc()
	}
}

func (ins *instruments) setActive(n int) {
	if ins != nil {
		ins.active.Set(int64(n))
	}
}

func (ins *instruments) remove(id string) {
	if ins != nil {
		ins.submitted.Remove(id)
		ins.delivered.Remove(id)
		ins.dropped.Remove(id)
		ins.state.Remove(id)
	}
}

// Manager is the session farm.
type Manager struct {
	opts  Options
	wheel *wheel.Wheel
	store *Store
	ins   *instruments

	mu       sync.Mutex
	sessions map[string]*Session
	seq      int64
	closed   bool

	janitorQuit chan struct{}
	wg          sync.WaitGroup
}

// NewManager starts a farm (wheel shards and janitor included).
func NewManager(o Options) *Manager {
	if o.MaxSessions <= 0 {
		o.MaxSessions = DefaultMaxSessions
	}
	if o.JanitorPeriod <= 0 {
		o.JanitorPeriod = DefaultJanitorPeriod
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = DefaultDrainTimeout
	}
	gran := o.Granularity
	if gran == 0 {
		gran = wheel.DefaultGranularity
	}
	if gran < 0 {
		gran = 0
	}
	m := &Manager{
		opts:        o,
		wheel:       wheel.New(wheel.Options{Shards: o.Shards, Granularity: gran, Metrics: o.Metrics}),
		store:       o.Store,
		sessions:    map[string]*Session{},
		janitorQuit: make(chan struct{}),
	}
	if m.store == nil {
		m.store = NewStore(StoreOptions{Metrics: o.Metrics})
	}
	if o.Metrics != nil {
		m.ins = newInstruments(o.Metrics)
	}
	if o.IdleTimeout > 0 {
		m.wg.Add(1)
		go m.janitor()
	}
	return m
}

// Wheel exposes the farm's shared timer wheel.
func (m *Manager) Wheel() *wheel.Wheel { return m.wheel }

// Store exposes the farm's trace store.
func (m *Manager) Store() *Store { return m.store }

// Create registers a new session in StateCreated. The trace must already
// be resolved (the control plane goes through the Store first).
func (m *Manager) Create(cfg SessionConfig) (*Session, error) {
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("emud: manager closed")
	}
	if len(m.sessions) >= m.opts.MaxSessions {
		return nil, fmt.Errorf("emud: session limit reached (%d)", m.opts.MaxSessions)
	}
	m.seq++
	s := &Session{
		ID:      fmt.Sprintf("s-%06d", m.seq),
		cfg:     cfg,
		created: m.wheel.Now(),
		m:       m,
	}
	s.state.Store(int32(StateCreated))
	s.lastActive.Store(int64(s.created))
	m.sessions[s.ID] = s
	m.ins.incCreated()
	m.ins.setActive(len(m.sessions))
	m.ins.sessionState(s)
	return s, nil
}

// Get returns a session by ID.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// List returns every session, ordered by ID.
func (m *Manager) List() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	// IDs are zero-padded sequence numbers, so lexical order is creation
	// order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Count returns the number of existing sessions.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Delete stops a session and removes it from the farm (and its labelled
// metrics from the export).
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
		m.ins.setActive(len(m.sessions))
	}
	m.mu.Unlock()
	if !ok {
		return false
	}
	s.Stop()
	m.ins.incDeleted()
	m.ins.remove(s.ID)
	return true
}

// janitor periodically expires idle sessions. It runs on its own
// goroutine (not the wheel) because Stop must never be called from a
// wheel callback.
func (m *Manager) janitor() {
	defer m.wg.Done()
	tick := time.NewTicker(m.opts.JanitorPeriod)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			m.expireIdle()
		case <-m.janitorQuit:
			return
		}
	}
}

// expireIdle stops (and removes) sessions idle past the deadline.
func (m *Manager) expireIdle() {
	var idle []*Session
	m.mu.Lock()
	for _, s := range m.sessions {
		if st := s.State(); st == StateRunning || st == StateCreated {
			if s.IdleFor() > m.opts.IdleTimeout {
				idle = append(idle, s)
			}
		}
	}
	for _, s := range idle {
		delete(m.sessions, s.ID)
	}
	m.ins.setActive(len(m.sessions))
	m.mu.Unlock()
	for _, s := range idle {
		s.Stop()
		m.ins.incExpired()
		m.ins.remove(s.ID)
	}
}

// Close drains every session (bounded by DrainTimeout, in parallel),
// stops the janitor, and shuts the wheel down.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.sessions = map[string]*Session{}
	m.mu.Unlock()

	if m.opts.IdleTimeout > 0 {
		close(m.janitorQuit)
	}
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			s.Drain(m.opts.DrainTimeout)
		}(s)
	}
	wg.Wait()
	m.wg.Wait()
	m.wheel.Close()
}
