package emud

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"tracemod/internal/livewire"
)

// udpSink binds a local UDP socket that never reads: a relay target that
// costs the tests nothing.
func udpSink(t *testing.T) string {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn.LocalAddr().String()
}

// TestRelayGoroutinesFlatWithPumpShards is the data-plane acceptance
// criterion: with the farm's PumpGroup enabled, attaching many relays
// must not grow the goroutine count — sessions share the fixed shard
// loops instead of spawning two pump goroutines each.
func TestRelayGoroutinesFlatWithPumpShards(t *testing.T) {
	if !livewire.BatchIOSupported() {
		t.Skip("batched socket I/O not supported on this platform")
	}
	m := newTestManager(t, Options{PumpShards: 2})
	if !m.Pumps().Enabled() {
		t.Fatal("pump group failed to start with PumpShards=2")
	}
	target := udpSink(t)

	attach := func(n int) []*Session {
		ss := make([]*Session, 0, n)
		for i := 0; i < n; i++ {
			s := startSession(t, m, testTrace())
			if _, err := s.AttachRelay("127.0.0.1:0", target); err != nil {
				t.Fatal(err)
			}
			if !s.Relay().Sharded() {
				t.Fatal("relay not on the shared pump shards")
			}
			ss = append(ss, s)
		}
		return ss
	}

	attach(4)
	runtime.GC()
	before := runtime.NumGoroutine()
	attach(24)
	runtime.GC()
	after := runtime.NumGoroutine()
	// 24 extra sessions on per-relay pumps would cost 48 goroutines; on
	// shards the data plane adds none (slack covers timer/runtime noise).
	if grew := after - before; grew > 10 {
		t.Fatalf("goroutines grew by %d across 24 sharded relays", grew)
	}
}

// TestSessionStopMidBurstSharded races Session.Stop and Delete against a
// client blasting datagrams into the session's sharded relay: packets
// racing the teardown must be either shaped or cleanly rejected — no
// panic, no deadlock, no writes after close. Run with -race.
func TestSessionStopMidBurstSharded(t *testing.T) {
	m := newTestManager(t, Options{PumpShards: 1})
	target := udpSink(t)
	for round := 0; round < 5; round++ {
		s := startSession(t, m, testTrace())
		addr, err := s.AttachRelay("127.0.0.1:0", target)
		if err != nil {
			t.Fatal(err)
		}
		c, err := net.Dial("udp", addr)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := make([]byte, 256)
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Write(payload)
			}
		}()
		time.Sleep(time.Duration(round+1) * time.Millisecond)
		s.Stop()
		m.Delete(s.ID)
		close(stop)
		wg.Wait()
		c.Close()
	}
}
