package emud

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/faults"
	"tracemod/internal/obs"
	"tracemod/internal/replay"
	"tracemod/internal/simnet"
)

func TestErrOverloadTyped(t *testing.T) {
	m := newTestManager(t, Options{MaxSessions: 1})
	startSession(t, m, testTrace())
	_, err := m.Create(SessionConfig{Trace: testTrace()})
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("session-limit error = %v, want ErrOverload", err)
	}
}

func TestAdmissionPerSessionCap(t *testing.T) {
	m := newTestManager(t, Options{MaxSessionInFlight: 4})
	s := startSession(t, m, testTrace())
	accepted, shed := 0, 0
	for i := 0; i < 20; i++ {
		if s.Submit(simnet.Outbound, 100, func() {}) {
			accepted++
		} else {
			shed++
		}
	}
	if accepted != 4 || shed != 16 {
		t.Fatalf("accepted=%d shed=%d, want 4/16", accepted, shed)
	}
	st := s.Stats()
	if st.Shed != 16 || st.Rejected != 0 {
		t.Fatalf("stats shed=%d rejected=%d, want 16/0 (overload is not a state rejection)", st.Shed, st.Rejected)
	}
	if m.Shed() != 16 {
		t.Fatalf("farm shed = %d, want 16", m.Shed())
	}
	// The cap recovers as packets deliver.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight > 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight packets never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if !s.Submit(simnet.Outbound, 100, func() {}) {
		t.Fatal("submit after drain-down still shed")
	}
}

func TestAdmissionFarmByteBudget(t *testing.T) {
	m := newTestManager(t, Options{MaxInFlightBytes: 1000})
	a := startSession(t, m, testTrace())
	b := startSession(t, m, testTrace())
	if !a.Submit(simnet.Outbound, 600, func() {}) {
		t.Fatal("first 600B packet shed under a 1000B budget")
	}
	if b.Submit(simnet.Outbound, 600, func() {}) {
		t.Fatal("second 600B packet admitted past the farm budget")
	}
	if b.Stats().Shed != 1 {
		t.Fatalf("b shed = %d, want 1", b.Stats().Shed)
	}
	// Delivery refunds the budget.
	deadline := time.Now().Add(5 * time.Second)
	for m.InFlightBytes() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight bytes stuck at %d", m.InFlightBytes())
		}
		time.Sleep(time.Millisecond)
	}
	if !b.Submit(simnet.Outbound, 600, func() {}) {
		t.Fatal("budget did not recover after delivery")
	}
}

func TestStopRefundsInFlightBytes(t *testing.T) {
	m := newTestManager(t, Options{MaxInFlightBytes: 1000})
	// An hour of fixed delay: the packet will still be in flight when the
	// session is stopped, so its timers die without ever delivering.
	slow := replay.Constant(core.DelayParams{F: time.Hour}, 0, time.Hour, time.Hour)
	s := startSession(t, m, slow)
	if !s.Submit(simnet.Outbound, 600, func() {}) {
		t.Fatal("600B packet shed under a 1000B budget")
	}
	if got := m.InFlightBytes(); got != 600 {
		t.Fatalf("in-flight bytes = %d, want 600", got)
	}
	s.Stop()
	if got := m.InFlightBytes(); got != 0 {
		t.Fatalf("in-flight bytes = %d after Stop, want 0 (stranded charge)", got)
	}
	// The freed budget is usable by the rest of the farm.
	other := startSession(t, m, testTrace())
	if !other.Submit(simnet.Outbound, 600, func() {}) {
		t.Fatal("budget not reusable after a session stopped mid-flight")
	}
}

func TestPanickingDeliveryQuarantinesSession(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestManager(t, Options{Metrics: reg})
	bad := startSession(t, m, testTrace())
	good := startSession(t, m, testTrace())

	if !bad.Submit(simnet.Outbound, 100, func() { panic("tenant bug") }) {
		t.Fatal("submit refused")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !bad.Quarantined() || bad.State() != StateStopped {
		if time.Now().After(deadline) {
			t.Fatalf("session not quarantined: quarantined=%v state=%v", bad.Quarantined(), bad.State())
		}
		time.Sleep(time.Millisecond)
	}
	if m.Quarantined() != 1 {
		t.Fatalf("farm quarantined = %d, want 1", m.Quarantined())
	}

	// The rest of the farm is unharmed.
	delivered := make(chan struct{})
	var once sync.Once
	if !good.Submit(simnet.Outbound, 100, func() { once.Do(func() { close(delivered) }) }) {
		t.Fatal("good session refused a packet")
	}
	select {
	case <-delivered:
	case <-time.After(5 * time.Second):
		t.Fatal("good session stopped delivering after another session panicked")
	}
}

func TestPanickingDropCallbackQuarantines(t *testing.T) {
	m := newTestManager(t, Options{})
	s := startSession(t, m, lossyTrace())
	// With ~50% loss, some drop callback panics quickly.
	for i := 0; i < 64 && !s.Quarantined(); i++ {
		s.Submit(simnet.Outbound, 100, func() {}) // deliver: fine

		s.SubmitWithDrop(simnet.Outbound, 100, func() {}, func() { panic("drop handler bug") })
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !s.Quarantined() {
		if time.Now().After(deadline) {
			t.Fatal("drop-callback panic never quarantined the session")
		}
		time.Sleep(time.Millisecond)
	}
	// The farm (and its wheel shards) survive: a fresh session works.
	fresh := startSession(t, m, testTrace())
	ok := make(chan struct{})
	var once sync.Once
	fresh.Submit(simnet.Outbound, 100, func() { once.Do(func() { close(ok) }) })
	select {
	case <-ok:
	case <-time.After(5 * time.Second):
		t.Fatal("farm broken after drop-callback panic")
	}
}

func TestInjectedSessionPanicPoint(t *testing.T) {
	inj := faults.New(faults.Options{Seed: 3})
	inj.Set("session.panic", faults.Config{Rate: 1})
	m := newTestManager(t, Options{Faults: inj})
	s := startSession(t, m, testTrace())
	s.Submit(simnet.Outbound, 100, func() {})
	deadline := time.Now().Add(5 * time.Second)
	for !s.Quarantined() {
		if time.Now().After(deadline) {
			t.Fatal("session.panic point did not quarantine the session")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRelayAttachRetriesInjectedFaults(t *testing.T) {
	inj := faults.New(faults.Options{Seed: 5})
	// ~50% of attach attempts fail; 3 backoff attempts make success
	// overwhelmingly likely, and the loop below retries the remainder.
	inj.Set("relay.attach", faults.Config{Rate: 0.5})
	m := newTestManager(t, Options{
		Faults: inj,
		Retry:  faults.Backoff{Attempts: 5, Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	s := startSession(t, m, testTrace())
	addr, err := s.AttachRelay("127.0.0.1:0", "127.0.0.1:9")
	if err != nil {
		t.Fatalf("attach with retries failed: %v", err)
	}
	if addr == "" {
		t.Fatal("no relay address")
	}
	if got := inj.Point("relay.attach").Fired(); got == 0 {
		t.Skip("fault never fired at rate 0.5 — seed surprise")
	}
}

func TestDrainFastPathLeaksNothing(t *testing.T) {
	m := newTestManager(t, Options{})
	// Many fast-path drains (no in-flight packets): no goroutine growth.
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		s := startSession(t, m, testTrace())
		if !s.Drain(time.Hour) { // generous timeout must not park anything
			t.Fatal("empty session failed to drain cleanly")
		}
		m.Delete(s.ID)
	}
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	after := runtime.NumGoroutine()
	if after > before+5 {
		t.Fatalf("goroutines grew %d -> %d across 100 fast drains", before, after)
	}
}

func TestManagerCloseBoundedAndLeakFree(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()
	m := NewManager(Options{
		Granularity:  time.Millisecond,
		IdleTimeout:  time.Minute,
		DrainTimeout: 200 * time.Millisecond,
		SnapshotPath: t.TempDir() + "/snap.json",
	})
	for i := 0; i < 8; i++ {
		s, err := m.Create(SessionConfig{Trace: testTrace(), Loop: true, Tick: -1})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		// Keep a packet in flight so Close's drain has real work.
		s.Submit(simnet.Outbound, 100, func() {})
	}
	start := time.Now()
	m.Close()
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("Close took %v with a 200ms drain budget", el)
	}
	runtime.GC()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			stacks := string(buf[:n])
			if strings.Contains(stacks, "emud") {
				t.Fatalf("goroutines leaked after Close: %d -> %d\n%s", before, runtime.NumGoroutine(), stacks)
			}
			break // unrelated runtime goroutines; don't flake
		}
		time.Sleep(10 * time.Millisecond)
	}
}
