package emud

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tracemod/internal/faults"
)

func TestAPIErrorEnvelopeEverywhere(t *testing.T) {
	srv, _ := newTestAPI(t, Options{})
	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{"GET", "/v1/sessions/nope", http.StatusNotFound},   // our handler
		{"GET", "/no/such/route", http.StatusNotFound},      // ServeMux 404
		{"DELETE", "/v1/farm", http.StatusMethodNotAllowed}, // ServeMux 405
		{"GET", "/v1/faults", http.StatusNotFound},          // no injector
		{"POST", "/v1/sessions", http.StatusBadRequest},     // empty body
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s %s content-type = %q, want JSON envelope", tc.method, tc.path, ct)
		}
		var env errorEnvelope
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("%s %s body %q is not an error envelope: %v", tc.method, tc.path, raw, err)
		}
		if env.Error == "" || env.Status != tc.want {
			t.Fatalf("%s %s envelope = %+v, want error text and status %d", tc.method, tc.path, env, tc.want)
		}
	}
}

func TestAPIBodyLimit(t *testing.T) {
	srv, _ := newTestAPI(t, Options{})
	// Well-formed JSON bigger than the cap: the decoder must hit the
	// MaxBytesReader limit (not a syntax error) to prove the 413 path.
	huge := append([]byte(`{"name":"`), bytes.Repeat([]byte("x"), DefaultMaxBodyBytes+1)...)
	huge = append(huge, []byte(`"}`)...)
	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("413 body not an envelope: %v", err)
	}
}

func TestAPISessionLimitIs429(t *testing.T) {
	srv, _ := newTestAPI(t, Options{MaxSessions: 1})
	req := SessionRequest{Synthetic: "wavelan", DurationSec: 10}
	var info SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", req, http.StatusCreated, &info)
	doJSON(t, "POST", srv.URL+"/v1/sessions", req, http.StatusTooManyRequests, nil)
}

func TestAPIFaultsEndpoint(t *testing.T) {
	inj := faults.New(faults.Options{Seed: 1})
	srv, _ := newTestAPI(t, Options{Faults: inj})

	// The registered menu is visible before anything is armed.
	var states []faults.State
	doJSON(t, "GET", srv.URL+"/v1/faults", nil, http.StatusOK, &states)
	names := map[string]bool{}
	for _, st := range states {
		names[st.Name] = true
		if st.Rate != 0 {
			t.Fatalf("point %s armed at boot", st.Name)
		}
	}
	for _, want := range faultPointNames {
		if !names[want] {
			t.Fatalf("fault menu missing %q (have %v)", want, states)
		}
	}

	// Arm a point; the response reflects it.
	doJSON(t, "POST", srv.URL+"/v1/faults",
		FaultRequest{Name: "store.parse", Rate: 0.25, DelayMS: 5}, http.StatusOK, &states)
	found := false
	for _, st := range states {
		if st.Name == "store.parse" {
			found = true
			if st.Rate != 0.25 || st.Delay != 5*time.Millisecond {
				t.Fatalf("armed state = %+v", st)
			}
		}
	}
	if !found {
		t.Fatal("armed point missing from snapshot")
	}

	// Missing name is a 400; reset disarms everything.
	doJSON(t, "POST", srv.URL+"/v1/faults", FaultRequest{Rate: 1}, http.StatusBadRequest, nil)
	doJSON(t, "DELETE", srv.URL+"/v1/faults", nil, http.StatusNoContent, nil)
	doJSON(t, "GET", srv.URL+"/v1/faults", nil, http.StatusOK, &states)
	for _, st := range states {
		if st.Rate != 0 {
			t.Fatalf("point %s still armed after reset", st.Name)
		}
	}
}

func TestAPIControlPlaneFaults(t *testing.T) {
	inj := faults.New(faults.Options{Seed: 2})
	srv, _ := newTestAPI(t, Options{Faults: inj})
	inj.Set("control.error", faults.Config{Rate: 1})
	resp, err := http.Get(srv.URL + "/v1/farm")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("control.error at rate 1 gave %d, want 500", resp.StatusCode)
	}
	// The fault endpoint itself must stay reachable — it is the only way
	// to disarm a rate-1 control.error without restarting the daemon.
	var states []faults.State
	doJSON(t, "GET", srv.URL+"/v1/faults", nil, http.StatusOK, &states)
	doJSON(t, "DELETE", srv.URL+"/v1/faults", nil, http.StatusNoContent, nil)
	var farm FarmInfo
	doJSON(t, "GET", srv.URL+"/v1/farm", nil, http.StatusOK, &farm)
}

func TestAPIInlineRefContentHashed(t *testing.T) {
	srv, _ := newTestAPI(t, Options{})
	mk := func(latency float64) SessionInfo {
		var info SessionInfo
		doJSON(t, "POST", srv.URL+"/v1/sessions", SessionRequest{
			Inline: []TupleJSON{{DurationSec: 60, LatencyMS: latency}},
		}, http.StatusCreated, &info)
		return info
	}
	a, b := mk(5), mk(9)
	if a.TraceRef == b.TraceRef {
		t.Fatalf("different inline traces share ref %q", a.TraceRef)
	}
	c := mk(5)
	if a.TraceRef != c.TraceRef {
		t.Fatalf("identical inline traces got different refs %q / %q", a.TraceRef, c.TraceRef)
	}
}

func TestServeHasTimeouts(t *testing.T) {
	m := newTestManager(t, Options{Granularity: time.Millisecond})
	srv, err := NewAPI(m, nil, nil).Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := srv.srv
	if hs.WriteTimeout == 0 || hs.IdleTimeout == 0 || hs.ReadTimeout == 0 || hs.ReadHeaderTimeout == 0 {
		t.Fatalf("server missing timeouts: read=%v write=%v idle=%v header=%v",
			hs.ReadTimeout, hs.WriteTimeout, hs.IdleTimeout, hs.ReadHeaderTimeout)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}
