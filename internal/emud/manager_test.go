package emud

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/obs"
	"tracemod/internal/replay"
	"tracemod/internal/simnet"
)

// testTrace is a lossless constant-quality trace: 5ms latency, cheap
// per-byte costs, no loss, long enough to never run out mid-test.
func testTrace() core.Trace {
	return replay.Constant(core.DelayParams{F: 5 * time.Millisecond, Vb: 10}, 0, time.Hour, time.Hour)
}

// lossyTrace drops about half of all packets.
func lossyTrace() core.Trace {
	return replay.Constant(core.DelayParams{F: time.Millisecond, Vb: 10}, 0.5, time.Hour, time.Hour)
}

func newTestManager(t *testing.T, o Options) *Manager {
	t.Helper()
	if o.Granularity == 0 {
		o.Granularity = time.Millisecond // keep test latencies honest
	}
	m := NewManager(o)
	t.Cleanup(m.Close)
	return m
}

func startSession(t *testing.T, m *Manager, tr core.Trace) *Session {
	t.Helper()
	s, err := m.Create(SessionConfig{Trace: tr, Loop: true, Tick: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionLifecycle(t *testing.T) {
	m := newTestManager(t, Options{})
	s := startSession(t, m, testTrace())
	if s.State() != StateRunning {
		t.Fatalf("state = %v, want running", s.State())
	}
	if err := s.Start(); err != nil {
		t.Fatalf("restarting a running session: %v", err)
	}
	got, ok := m.Get(s.ID)
	if !ok || got != s {
		t.Fatal("Get did not return the session")
	}
	s.Stop()
	if s.State() != StateStopped {
		t.Fatalf("state = %v, want stopped", s.State())
	}
	if err := s.Start(); err == nil {
		t.Fatal("starting a stopped session must fail")
	}
	if s.Submit(simnet.Outbound, 100, func() {}) {
		t.Fatal("stopped session accepted a packet")
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Stats().Rejected)
	}
	if !m.Delete(s.ID) {
		t.Fatal("Delete failed")
	}
	if m.Delete(s.ID) {
		t.Fatal("double Delete succeeded")
	}
}

func TestSessionDeliversAndDrops(t *testing.T) {
	m := newTestManager(t, Options{})
	s := startSession(t, m, lossyTrace())
	const n = 400
	var delivered atomic.Int64
	for i := 0; i < n; i++ {
		if !s.Submit(simnet.Outbound, 200, func() { delivered.Add(1) }) {
			t.Fatal("running session rejected a packet")
		}
	}
	// Drops are synchronous, deliveries complete within the trace latency.
	deadline := time.After(5 * time.Second)
	for s.Stats().Delivered+s.Stats().Dropped < n {
		select {
		case <-deadline:
			t.Fatalf("stalled: %+v", s.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	st := s.Stats()
	if st.Submitted != n || st.Delivered+st.Dropped != n || st.InFlight != 0 {
		t.Fatalf("stats %+v do not balance", st)
	}
	if st.Dropped < n/10 || st.Dropped > n*9/10 {
		t.Fatalf("dropped %d of %d with L=0.5", st.Dropped, n)
	}
}

func TestMaxSessions(t *testing.T) {
	m := newTestManager(t, Options{MaxSessions: 2})
	tr := testTrace()
	for i := 0; i < 2; i++ {
		if _, err := m.Create(SessionConfig{Trace: tr}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Create(SessionConfig{Trace: tr}); err == nil {
		t.Fatal("third session must exceed MaxSessions=2")
	}
	// Deleting frees a slot.
	m.Delete(m.List()[0].ID)
	if _, err := m.Create(SessionConfig{Trace: tr}); err != nil {
		t.Fatal(err)
	}
}

func TestListOrder(t *testing.T) {
	m := newTestManager(t, Options{})
	tr := testTrace()
	for i := 0; i < 5; i++ {
		if _, err := m.Create(SessionConfig{Trace: tr}); err != nil {
			t.Fatal(err)
		}
	}
	ids := m.List()
	for i := 1; i < len(ids); i++ {
		if ids[i-1].ID >= ids[i].ID {
			t.Fatalf("List out of order: %s before %s", ids[i-1].ID, ids[i].ID)
		}
	}
}

// TestNoTimerFiresAfterStop is the teardown race check: sessions are
// stopped with packets in flight, concurrently with submitters, and no
// delivery callback may run after its session's Stop has returned. Run
// under -race.
func TestNoTimerFiresAfterStop(t *testing.T) {
	m := newTestManager(t, Options{Shards: 4})
	// 20ms latency keeps packets in flight across the Stop.
	tr := replay.Constant(core.DelayParams{F: 20 * time.Millisecond, Vb: 10}, 0, time.Hour, time.Hour)

	const rounds = 30
	for round := 0; round < rounds; round++ {
		s := startSession(t, m, tr)
		var stopped atomic.Bool
		var fired atomic.Int64
		deliver := func() {
			if stopped.Load() {
				fired.Add(1)
			}
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Submit(simnet.Outbound, 500, deliver)
			}
		}()
		// Stop mid-stream with in-flight packets.
		time.Sleep(time.Duration(round%5) * time.Millisecond)
		s.Stop()
		stopped.Store(true)
		wg.Wait()
		time.Sleep(2 * time.Millisecond)
		if n := fired.Load(); n != 0 {
			t.Fatalf("round %d: %d deliveries fired after Stop returned", round, n)
		}
		m.Delete(s.ID)
	}
}

// TestGoroutinesFlatUnderLoad is the acceptance criterion for the wheel:
// goroutine count must be O(shards + sessions), not O(in-flight packets).
// We hold hundreds then thousands of packets in flight and require the
// goroutine count to stay flat.
func TestGoroutinesFlatUnderLoad(t *testing.T) {
	m := newTestManager(t, Options{Shards: 4})
	// 400ms latency: everything submitted below stays in flight while we
	// count goroutines.
	tr := replay.Constant(core.DelayParams{F: 400 * time.Millisecond, Vb: 1}, 0, time.Hour, time.Hour)
	const sessions = 8
	var ss []*Session
	for i := 0; i < sessions; i++ {
		ss = append(ss, startSession(t, m, tr))
	}

	inflight := func(perSession int) int {
		for _, s := range ss {
			for i := 0; i < perSession; i++ {
				s.Submit(simnet.Outbound, 100, func() {})
			}
		}
		runtime.Gosched()
		return runtime.NumGoroutine()
	}

	gLow := inflight(25)   // 200 packets in flight
	gHigh := inflight(250) // ~2200 in flight (10x the rate)
	if m.Wheel().Pending() < 1000 {
		t.Fatalf("only %d timers pending; load did not build up", m.Wheel().Pending())
	}
	// Flat means O(shards+sessions): allow scheduler noise, but nothing
	// proportional to the ~2000 extra in-flight packets.
	if gHigh > gLow+10 {
		t.Fatalf("goroutines grew %d -> %d with 10x packets in flight", gLow, gHigh)
	}
}

func TestDrainCompletesInFlight(t *testing.T) {
	m := newTestManager(t, Options{})
	tr := replay.Constant(core.DelayParams{F: 10 * time.Millisecond, Vb: 10}, 0, time.Hour, time.Hour)
	s := startSession(t, m, tr)
	var delivered atomic.Int64
	const n = 50
	for i := 0; i < n; i++ {
		s.Submit(simnet.Outbound, 100, func() { delivered.Add(1) })
	}
	if !s.Drain(5 * time.Second) {
		t.Fatalf("drain timed out: %+v", s.Stats())
	}
	if s.State() != StateStopped {
		t.Fatalf("state after drain = %v", s.State())
	}
	if got := delivered.Load(); got != n {
		t.Fatalf("delivered %d of %d during drain", got, n)
	}
	if s.Stats().InFlight != 0 {
		t.Fatalf("in flight after drain: %d", s.Stats().InFlight)
	}
}

func TestDrainRejectsNewPackets(t *testing.T) {
	m := newTestManager(t, Options{})
	tr := replay.Constant(core.DelayParams{F: 50 * time.Millisecond, Vb: 10}, 0, time.Hour, time.Hour)
	s := startSession(t, m, tr)
	s.Submit(simnet.Outbound, 100, func() {})
	done := make(chan bool)
	go func() { done <- s.Drain(5 * time.Second) }()
	for s.State() != StateDraining && s.State() != StateStopped {
		time.Sleep(100 * time.Microsecond)
	}
	if s.State() == StateDraining && s.Submit(simnet.Outbound, 100, func() {}) {
		t.Fatal("draining session accepted a packet")
	}
	if !<-done {
		t.Fatal("drain did not empty")
	}
}

func TestIdleExpiry(t *testing.T) {
	m := newTestManager(t, Options{
		IdleTimeout:   30 * time.Millisecond,
		JanitorPeriod: 5 * time.Millisecond,
	})
	s := startSession(t, m, testTrace())
	deadline := time.After(3 * time.Second)
	for m.Count() > 0 {
		select {
		case <-deadline:
			t.Fatal("idle session never expired")
		case <-time.After(time.Millisecond):
		}
	}
	if s.State() != StateStopped {
		t.Fatalf("expired session state = %v", s.State())
	}
}

func TestIdleExpiryTouchKeepsAlive(t *testing.T) {
	m := newTestManager(t, Options{
		IdleTimeout:   60 * time.Millisecond,
		JanitorPeriod: 5 * time.Millisecond,
	})
	s := startSession(t, m, testTrace())
	// Keep touching for a while; the session must survive.
	for i := 0; i < 10; i++ {
		s.Submit(simnet.Outbound, 100, func() {})
		time.Sleep(10 * time.Millisecond)
	}
	if m.Count() != 1 {
		t.Fatal("active session was expired")
	}
}

func TestManagerCloseDrainsAll(t *testing.T) {
	m := NewManager(Options{Granularity: time.Millisecond})
	tr := replay.Constant(core.DelayParams{F: 5 * time.Millisecond, Vb: 10}, 0, time.Hour, time.Hour)
	var delivered atomic.Int64
	const sessions, per = 8, 20
	for i := 0; i < sessions; i++ {
		s, err := m.Create(SessionConfig{Trace: tr, Loop: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < per; j++ {
			s.Submit(simnet.Outbound, 100, func() { delivered.Add(1) })
		}
	}
	m.Close()
	if got := delivered.Load(); got != sessions*per {
		t.Fatalf("Close delivered %d of %d in-flight packets", got, sessions*per)
	}
	if _, err := m.Create(SessionConfig{Trace: tr}); err == nil {
		t.Fatal("Create after Close must fail")
	}
	m.Close() // idempotent
}

func TestPerSessionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestManager(t, Options{Metrics: reg})
	s := startSession(t, m, testTrace())
	var wg sync.WaitGroup
	const n = 10
	for i := 0; i < n; i++ {
		wg.Add(1)
		s.Submit(simnet.Outbound, 100, func() { wg.Done() })
	}
	wg.Wait()

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	want := []string{
		fmt.Sprintf(`tracemod_emud_session_packets_submitted_total{session=%q} %d`, s.ID, n),
		fmt.Sprintf(`tracemod_emud_session_packets_delivered_total{session=%q} %d`, s.ID, n),
		fmt.Sprintf(`tracemod_emud_session_state{session=%q} 1`, s.ID),
		"tracemod_emud_sessions_active 1",
		"tracemod_emud_sessions_created_total 1",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("export missing %q", w)
		}
	}

	// Deleting the session removes its labelled series.
	m.Delete(s.ID)
	sb.Reset()
	reg.WritePrometheus(&sb)
	if strings.Contains(sb.String(), s.ID) {
		t.Fatalf("deleted session %s still present in export", s.ID)
	}
}

func TestCreateRejectsInvalidTrace(t *testing.T) {
	m := newTestManager(t, Options{})
	if _, err := m.Create(SessionConfig{Trace: core.Trace{{D: -1}}}); err == nil {
		t.Fatal("invalid trace accepted")
	}
	if _, err := m.Create(SessionConfig{Trace: nil}); err == nil {
		t.Fatal("nil trace accepted")
	}
}
