//go:build chaos

// The chaos suite: every fault point armed at 10% against a live farm of
// 200+ sessions, under the race detector. The daemon must stay up — shed
// under overload, retry transient faults, quarantine panicking sessions
// — and a simulated kill -9 (snapshot taken mid-run, farm abandoned)
// followed by recovery must restore every non-drained session with its
// replay cursor.
//
// Run with: go test -race -tags=chaos ./internal/emud/...
package emud

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tracemod/internal/distill"
	"tracemod/internal/faults"
	"tracemod/internal/obs"
	"tracemod/internal/replay"
	"tracemod/internal/simnet"
	"tracemod/internal/tracefmt"
)

const (
	chaosSessions = 200
	chaosRate     = 0.10
)

func TestChaosFarmSurvivesAllFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not short")
	}
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "chaos-snapshot.json")
	tracePath := writeReplayFile(t, dir, "chaos.replay")

	reg := obs.NewRegistry()
	inj := faults.New(faults.Options{Seed: 42, Metrics: reg})
	m := NewManager(Options{
		Granularity:        time.Millisecond,
		MaxSessions:        chaosSessions + 64,
		MaxSessionInFlight: 32,
		MaxInFlightBytes:   4 << 20,
		DrainTimeout:       time.Second,
		Faults:             inj,
		Retry:              faults.Backoff{Attempts: 4, Base: time.Millisecond, Max: 5 * time.Millisecond},
		Store: NewStore(StoreOptions{
			Capacity:    8, // small: eviction storms have something to shred
			NegativeTTL: 20 * time.Millisecond,
			Faults:      inj,
			Retry:       faults.Backoff{Attempts: 4, Base: time.Millisecond, Max: 5 * time.Millisecond},
			Metrics:     reg,
		}),
		SnapshotPath:     snapPath,
		SnapshotInterval: 50 * time.Millisecond,
		Metrics:          reg,
	})
	// The farm is deliberately abandoned un-Closed at the end (that is the
	// kill -9); only the wheel is torn down so the test binary's goroutine
	// check doesn't drown.
	defer m.wheel.Close()

	srv := httptest.NewServer(NewAPI(m, reg, obs.NewRingTracer(1024)).Handler())
	defer srv.Close()

	// Arm the full menu at 10%. Stall-type points get a small delay so the
	// suite injects real skew without taking minutes.
	for _, name := range faultPointNames {
		doJSON(t, "POST", srv.URL+"/v1/faults",
			FaultRequest{Name: name, Rate: chaosRate, DelayMS: 1}, http.StatusOK, nil)
	}

	// Phase 1: create 200+ sessions through the faulted control plane.
	// control.error 500s, injected store.parse failures, and shed creates
	// are all expected — the client retries, the daemon must not die.
	created := make([]string, 0, chaosSessions)
	for attempt := 0; len(created) < chaosSessions; attempt++ {
		if attempt > chaosSessions*50 {
			t.Fatalf("could not create %d sessions in %d attempts (have %d)",
				chaosSessions, attempt, len(created))
		}
		req := SessionRequest{Name: fmt.Sprintf("chaos-%d", attempt), Synthetic: "wavelan", DurationSec: 60}
		if attempt%5 == 0 {
			req = SessionRequest{Name: req.Name, TracePath: tracePath}
		}
		var info SessionInfo
		body, code := tryJSON(t, "POST", srv.URL+"/v1/sessions", req, &info)
		switch code {
		case http.StatusCreated:
			created = append(created, info.ID)
		case http.StatusInternalServerError, http.StatusBadRequest, http.StatusTooManyRequests:
			// Injected failure or negative-cached parse error; retry.
		default:
			t.Fatalf("create returned %d: %s", code, body)
		}
	}

	// Phase 2: hammer traffic through every session from many goroutines,
	// with session.panic armed — some sessions will be quarantined, the
	// rest must keep delivering.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				id := created[rng.Intn(len(created))]
				s, ok := m.Get(id)
				if !ok {
					continue
				}
				s.Submit(simnet.Outbound, 64+rng.Intn(1400), func() {})
			}
		}(w)
	}
	// Concurrently exercise relay attach (retried through relay.attach)
	// and the control plane's read paths.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 16; i++ {
			if s, ok := m.Get(created[i]); ok {
				_, _ = s.AttachRelay("127.0.0.1:0", "127.0.0.1:9")
			}
			var farm FarmInfo
			if _, code := tryJSON(t, "GET", srv.URL+"/v1/farm", nil, &farm); code != http.StatusOK &&
				code != http.StatusInternalServerError {
				t.Errorf("farm info = %d mid-chaos", code)
			}
		}
	}()
	wg.Wait()

	// The daemon is up: the farm answers, sessions exist, and the
	// defenses have engaged.
	if m.Count() == 0 {
		t.Fatal("farm lost every session")
	}
	quarantined := m.Quarantined()
	t.Logf("chaos: %d sessions, %d quarantined, %d shed, %d wheel panics, %d in-flight bytes",
		m.Count(), quarantined, m.Shed(), m.wheel.Panics(), m.InFlightBytes())
	if quarantined == 0 {
		t.Fatal("session.panic at 10% quarantined nothing")
	}
	// Quarantined sessions must not strand their admission-budget charge:
	// once the live queues retire, the farm counter returns to (nearly)
	// zero. A submit racing a quarantine Stop can strand one packet's
	// charge, so allow a few packets of residue — the bug this guards
	// against stranded the whole in-flight queue of every quarantined
	// session (megabytes, not kilobytes).
	budgetDeadline := time.Now().Add(10 * time.Second)
	for m.InFlightBytes() > 16*1500 {
		if time.Now().After(budgetDeadline) {
			t.Fatalf("in-flight byte budget stuck at %d after chaos", m.InFlightBytes())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range created {
		if s, ok := m.Get(id); ok && s.Quarantined() && s.State() != StateStopped {
			// Quarantine drains asynchronously; give it a moment.
			deadline := time.Now().Add(5 * time.Second)
			for s.State() != StateStopped && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if s.State() != StateStopped {
				t.Fatalf("quarantined session %s never stopped", id)
			}
		}
	}

	// Healthy sessions still deliver with all faults armed. Any single
	// probe can be eaten by the armed session.panic point (that is the
	// point of the exercise), so retry across survivors.
	probed := false
	for attempt := 0; attempt < 20 && !probed; attempt++ {
		var survivor *Session
		for _, id := range created {
			if s, ok := m.Get(id); ok && !s.Quarantined() && s.State() == StateRunning {
				survivor = s
				break
			}
		}
		if survivor == nil {
			t.Fatal("no healthy session survived 10% chaos")
		}
		delivered := make(chan struct{})
		var once sync.Once
		if !survivor.Submit(simnet.Outbound, 100, func() { once.Do(func() { close(delivered) }) }) {
			time.Sleep(5 * time.Millisecond) // shed or just quarantined; retry
			continue
		}
		select {
		case <-delivered:
			probed = true
		case <-time.After(2 * time.Second):
			// Injected panic ate the probe; pick another survivor.
		}
	}
	if !probed {
		t.Fatal("healthy sessions stopped delivering under chaos")
	}

	// Phase 3: kill -9 and recover. End the scenario (Reset disarms every
	// point), take the final snapshot the periodic writer would have on
	// disk, and abandon the farm without Close — no drain, no goodbye.
	doJSON(t, "DELETE", srv.URL+"/v1/faults", nil, http.StatusNoContent, nil)
	if err := m.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshot(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		cursor  int64
		running bool
	}
	wants := map[string]want{}
	for _, ss := range snap.Sessions {
		wants[ss.ID] = want{cursor: ss.Cursor, running: ss.Running}
	}
	if len(wants) == 0 {
		t.Fatal("snapshot recorded no sessions")
	}

	m2 := NewManager(Options{Granularity: time.Millisecond, MaxSessions: chaosSessions + 64})
	defer m2.Close()
	n, err := m2.Restore(snap)
	if err != nil {
		t.Fatalf("restore: %v (restored %d)", err, n)
	}
	if n != len(wants) {
		t.Fatalf("restored %d of %d snapshotted sessions", n, len(wants))
	}
	for id, w := range wants {
		s, ok := m2.Get(id)
		if !ok {
			t.Fatalf("session %s missing after recovery", id)
		}
		if got := s.Cursor(); got != w.cursor {
			t.Fatalf("session %s cursor = %d after recovery, want %d", id, got, w.cursor)
		}
		if w.running && s.State() != StateRunning {
			t.Fatalf("session %s state = %v after recovery, want running", id, s.State())
		}
	}
	// Recovered sessions carry live traffic again.
	for _, ss := range snap.Sessions {
		if !ss.Running {
			continue
		}
		s, _ := m2.Get(ss.ID)
		ok := make(chan struct{})
		var o sync.Once
		if !s.Submit(simnet.Outbound, 100, func() { o.Do(func() { close(ok) }) }) {
			t.Fatalf("recovered session %s refused traffic", ss.ID)
		}
		select {
		case <-ok:
		case <-time.After(10 * time.Second):
			t.Fatalf("recovered session %s never delivered", ss.ID)
		}
		break // one is proof enough
	}
	t.Logf("chaos: recovered %d sessions after simulated kill -9", n)
}

// tryJSON is doJSON without a status assertion: chaos clients must
// tolerate injected control-plane failures.
func tryJSON(t *testing.T, method, url string, body any, out any) (string, int) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return string(raw), resp.StatusCode
}

// A kill -9 between upload chunks, repeated at random cut points: each
// crash leaves a WAL whose replay must reproduce the pre-crash replay
// tuples byte-for-byte up to the durable offset, and resuming from the
// committed offset must converge on the batch-distilled output exactly.
func TestChaosKillMidUploadRecoversDurablePrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not short")
	}
	data := collectedTraceBytes(t, 60)
	collected, err := tracefmt.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := distill.Distill(collected, distill.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := replay.Write(&want, batch.Replay); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 5; round++ {
		walDir := filepath.Join(t.TempDir(), fmt.Sprintf("wal-%d", round))
		quiet := func(o *Options) { o.PressurePeriod = -1 }
		m1 := newDurableManager(t, walDir, quiet)
		st1, err := m1.Streams().Create(StreamConfig{Name: "victim", Resumable: true})
		if err != nil {
			t.Fatal(err)
		}
		// Feed randomly sized chunks and crash at a random point past the
		// header but before the end.
		cut := len(data)/4 + rng.Intn(len(data)/2)
		off := 0
		for off < cut {
			n := 256 + rng.Intn(2048)
			if off+n > cut {
				n = cut - off
			}
			if err := st1.Write(data[off : off+n]); err != nil {
				t.Fatalf("round %d write: %v", round, err)
			}
			off += n
		}
		preCrash := replayBytes(t, st1.Live())
		durable := st1.Durable()
		if durable != int64(cut) {
			t.Fatalf("round %d: durable=%d, fsynced %d", round, durable, cut)
		}
		m1.wheel.Close() // the kill -9: nothing else is shut down

		m2 := newDurableManager(t, walDir, quiet)
		if n, err := m2.Streams().Recover(); n != 1 || err != nil {
			t.Fatalf("round %d Recover = (%d, %v)", round, n, err)
		}
		st2, _ := m2.Streams().Get("victim")
		if st2.Offset() != durable {
			t.Fatalf("round %d: recovered offset %d, want %d", round, st2.Offset(), durable)
		}
		if got := replayBytes(t, st2.Live()); !bytes.Equal(got, preCrash) {
			t.Fatalf("round %d: replayed tuples diverge from pre-crash ingest", round)
		}
		if err := st2.WriteAt(durable, data[durable:]); err != nil {
			t.Fatalf("round %d resume: %v", round, err)
		}
		sum, err := st2.Finish()
		if err != nil {
			t.Fatalf("round %d finish: %v", round, err)
		}
		var got bytes.Buffer
		if err := replay.Write(&got, sum.Replay); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("round %d: crash+resume diverges from batch distill", round)
		}
		m2.Close()
	}
}
