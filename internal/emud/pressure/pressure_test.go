package pressure

import (
	"testing"
	"time"

	"tracemod/internal/faults"
	"tracemod/internal/obs"
)

// manual builds a controller with injectable probes and no background
// loop, so tests drive Evaluate deterministically.
func manual(t *testing.T, cfg Config, heap, pinned *int64) *Controller {
	t.Helper()
	cfg.Period = -1
	cfg.Heap = func() int64 { return *heap }
	cfg.Pinned = func() int64 { return *pinned }
	c := New(cfg)
	t.Cleanup(c.Close)
	return c
}

func TestLadderEngagesInOrder(t *testing.T) {
	heap, pinned := int64(0), int64(0)
	c := manual(t, Config{HeapHighWater: 1000}, &heap, &pinned)

	steps := []struct {
		heap int64
		want Level
	}{
		{500, Normal},
		{1000, ShedSampling},
		{1100, RejectStreams},
		{1200, SpillTraces},
		{1300, PauseIngest},
	}
	for _, s := range steps {
		heap = s.heap
		if got := c.Evaluate(); got != s.want {
			t.Fatalf("heap=%d: level = %v, want %v", s.heap, got, s.want)
		}
	}
}

func TestUpgradeJumpsDowngradeSteps(t *testing.T) {
	heap, pinned := int64(0), int64(0)
	var transitions []Level
	c := manual(t, Config{
		HeapHighWater: 1000,
		OnChange:      func(_, to Level) { transitions = append(transitions, to) },
	}, &heap, &pinned)

	// A spike jumps straight to the top rung in one evaluation.
	heap = 5000
	if got := c.Evaluate(); got != PauseIngest {
		t.Fatalf("spike: level = %v, want pause-ingest", got)
	}
	// Recovery steps down one rung per evaluation, never skipping.
	heap = 100
	want := []Level{SpillTraces, RejectStreams, ShedSampling, Normal}
	for _, w := range want {
		if got := c.Evaluate(); got != w {
			t.Fatalf("downgrade: level = %v, want %v", got, w)
		}
	}
	if got := c.Evaluate(); got != Normal {
		t.Fatalf("settled: level = %v", got)
	}
	wantSeq := append([]Level{PauseIngest}, want...)
	if len(transitions) != len(wantSeq) {
		t.Fatalf("transitions = %v, want %v", transitions, wantSeq)
	}
	for i, w := range wantSeq {
		if transitions[i] != w {
			t.Fatalf("transition %d = %v, want %v", i, transitions[i], w)
		}
	}
}

func TestDowngradeHysteresis(t *testing.T) {
	heap, pinned := int64(0), int64(0)
	c := manual(t, Config{HeapHighWater: 1000}, &heap, &pinned)

	heap = 1000
	if got := c.Evaluate(); got != ShedSampling {
		t.Fatalf("at boundary: %v", got)
	}
	// Just below the boundary is inside the hysteresis band: no flap.
	heap = 950
	if got := c.Evaluate(); got != ShedSampling {
		t.Fatalf("inside hysteresis band: %v, want shed-sampling held", got)
	}
	// A real drop clears the band and steps down.
	heap = 800
	if got := c.Evaluate(); got != Normal {
		t.Fatalf("below band: %v, want normal", got)
	}
}

func TestPinnedBudgetLadder(t *testing.T) {
	heap, pinned := int64(0), int64(0)
	c := manual(t, Config{PinnedBudget: 1000}, &heap, &pinned)

	steps := []struct {
		pinned int64
		want   Level
	}{
		{500, Normal},
		{750, ShedSampling},
		{900, RejectStreams},
		{1000, SpillTraces},
		{1100, PauseIngest},
	}
	for _, s := range steps {
		pinned = s.pinned
		if got := c.Evaluate(); got != s.want {
			t.Fatalf("pinned=%d: level = %v, want %v", s.pinned, got, s.want)
		}
	}
}

func TestWorstProbeWins(t *testing.T) {
	heap, pinned := int64(0), int64(0)
	c := manual(t, Config{HeapHighWater: 1000, PinnedBudget: 1000}, &heap, &pinned)
	heap, pinned = 500, 1000 // heap fine, pinned at its spill boundary
	if got := c.Evaluate(); got != SpillTraces {
		t.Fatalf("level = %v, want spill-traces from the pinned probe", got)
	}
}

func TestFaultForcedFloor(t *testing.T) {
	heap, pinned := int64(0), int64(0)
	inj := faults.New(faults.Options{})
	c := manual(t, Config{HeapHighWater: 1 << 40, Faults: inj}, &heap, &pinned)

	if got := c.Evaluate(); got != Normal {
		t.Fatalf("pre-force: %v", got)
	}
	// delay_ms encodes the forced rung: 4 = pause-ingest.
	inj.Set("pressure.force", faults.Config{Rate: 1, Delay: 4 * time.Millisecond})
	if got := c.Evaluate(); got != PauseIngest {
		t.Fatalf("forced: %v, want pause-ingest", got)
	}
	inj.Reset()
	// Forced pressure released: steps back down like organic recovery.
	for i := 0; i < 4; i++ {
		c.Evaluate()
	}
	if got := c.Level(); got != Normal {
		t.Fatalf("after reset: %v, want normal", got)
	}
	// Transitions were marked on the brownout ledger point.
	for _, st := range inj.Snapshot() {
		if st.Name == "pressure.brownout" && st.Fired < 2 {
			t.Fatalf("pressure.brownout marked %d times, want ≥2", st.Fired)
		}
	}
}

func TestMetricsAndNilSafety(t *testing.T) {
	var c *Controller
	if c.Level() != Normal {
		t.Fatal("nil controller must report Normal")
	}
	c.Close() // must not panic

	heap, pinned := int64(2000), int64(0)
	reg := obs.NewRegistry()
	cc := manual(t, Config{HeapHighWater: 1000, Metrics: reg}, &heap, &pinned)
	if got := cc.Evaluate(); got != PauseIngest {
		t.Fatalf("level = %v", got)
	}
	if cc.RetryAfter() <= 0 {
		t.Fatal("RetryAfter must be positive while degraded")
	}
}

func TestBackgroundLoop(t *testing.T) {
	heap, pinned := int64(2000), int64(0)
	c := New(Config{
		HeapHighWater: 1000,
		Period:        time.Millisecond,
		Heap:          func() int64 { return heap },
		Pinned:        func() int64 { return pinned },
	})
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for c.Level() != PauseIngest {
		if time.Now().After(deadline) {
			t.Fatalf("loop never reached pause-ingest (level %v)", c.Level())
		}
		time.Sleep(time.Millisecond)
	}
}
