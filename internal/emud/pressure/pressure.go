// Package pressure is the daemon's brownout controller: a watermark
// monitor over heap-in-use and pinned live-ingest bytes that degrades
// service in a fixed priority order instead of letting the kernel OOM
// killer choose for it. The ladder sheds the cheapest, most recoverable
// work first:
//
//  1. shed-sampling   — span sampling off (observability gets cheaper)
//  2. reject-streams  — new live-ingest streams refused, typed 429 +
//     Retry-After (existing work is protected)
//  3. spill-traces    — sealed LiveTraces spill their tuples to disk
//     (memory traded for reload latency)
//  4. pause-ingest    — live-edge reads pause: backpressure reaches the
//     uploader's TCP window (data is delayed, never lost)
//
// Upgrades are immediate (a memory spike cannot wait); downgrades step
// one level per evaluation and only once the pressure falls a hysteresis
// margin below the boundary, so the ladder cannot flap. Every transition
// increments an obs counter, marks a faults point (so chaos runs see the
// defense activate in the same ledger they arm), and is visible on
// /v1/health through the manager's brownout SLO.
package pressure

import (
	"log/slog"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"tracemod/internal/faults"
	"tracemod/internal/obs"
)

// Level is a rung on the shed ladder. Higher is more degraded.
type Level int32

// The shed ladder, least to most degraded.
const (
	Normal        Level = iota // full service
	ShedSampling               // span sampling suspended
	RejectStreams              // new streams refused with 429 + Retry-After
	SpillTraces                // sealed live traces spilled to disk
	PauseIngest                // live-edge reads paused (backpressure)

	maxLevel = PauseIngest
)

func (l Level) String() string {
	switch l {
	case Normal:
		return "normal"
	case ShedSampling:
		return "shed-sampling"
	case RejectStreams:
		return "reject-streams"
	case SpillTraces:
		return "spill-traces"
	case PauseIngest:
		return "pause-ingest"
	}
	return "unknown"
}

// DefaultPeriod is the evaluation cadence when Config.Period is zero.
const DefaultPeriod = 250 * time.Millisecond

// hysteresis is the fraction a metric must fall below a boundary before
// the controller steps back down through it.
const hysteresis = 0.9

// Config parameterizes a Controller.
type Config struct {
	// HeapHighWater is the heap-in-use byte level where shedding starts;
	// deeper rungs engage at fixed multiples above it (1.1×, 1.2×, 1.3×).
	// Zero disables the heap watermark.
	HeapHighWater int64
	// PinnedBudget bounds the bytes pinned by live ingest (growing traces
	// plus reader buffers). Shedding starts at 75% of the budget and
	// reaches pause-ingest at 110%. Zero disables the pinned watermark.
	PinnedBudget int64
	// Period is the evaluation cadence (DefaultPeriod if 0). Negative
	// disables the background loop: the owner calls Evaluate itself
	// (tests, or an external scheduler).
	Period time.Duration
	// Heap probes heap-in-use bytes; defaults to the runtime's live heap
	// metric. Override in tests to synthesize pressure.
	Heap func() int64
	// Pinned probes the live-ingest pinned byte total (nil = always 0).
	Pinned func() int64
	// OnChange runs after each transition, outside the controller's lock,
	// on the evaluation goroutine. The receiver applies the shed actions
	// (suspend sampling, spill, ...).
	OnChange func(from, to Level)
	// Metrics, if non-nil, registers the controller's instruments
	// (tracemod_pressure_*).
	Metrics *obs.Registry
	// Faults, if non-nil, wires two points: "pressure.brownout" is marked
	// on every transition, and "pressure.force" — when armed — forces a
	// floor level for chaos runs (delay_ms 1..4 selects the rung; 0 means
	// reject-streams).
	Faults *faults.Injector
	// Logger receives one line per transition. Nil discards.
	Logger *slog.Logger
}

// Controller runs the watermark evaluation. All methods are safe on a
// nil receiver (a farm without watermarks configured): Level() is then
// permanently Normal.
type Controller struct {
	cfg   Config
	level atomic.Int32

	transitions *obs.CounterVec
	markPoint   *faults.Point // "pressure.brownout": marked per transition
	forcePoint  *faults.Point // "pressure.force": chaos floor

	mu   sync.Mutex // serializes Evaluate (ticker vs. tests)
	quit chan struct{}
	wg   sync.WaitGroup
}

// New builds a controller and, unless cfg.Period is negative, starts its
// evaluation loop.
func New(cfg Config) *Controller {
	if cfg.Period == 0 {
		cfg.Period = DefaultPeriod
	}
	c := &Controller{cfg: cfg, quit: make(chan struct{})}
	if cfg.Heap == nil {
		c.cfg.Heap = runtimeHeap
	}
	if cfg.Pinned == nil {
		c.cfg.Pinned = func() int64 { return 0 }
	}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("tracemod_pressure_level",
			"Brownout ladder position (0=normal 1=shed-sampling 2=reject-streams 3=spill-traces 4=pause-ingest).",
			func() float64 { return float64(c.Level()) })
		reg.GaugeFunc("tracemod_pressure_heap_bytes",
			"Heap-in-use bytes as last sampled by the brownout controller.",
			func() float64 { return float64(c.cfg.Heap()) })
		reg.GaugeFunc("tracemod_pressure_pinned_bytes",
			"Bytes pinned by live ingest (growing traces + reader buffers).",
			func() float64 { return float64(c.cfg.Pinned()) })
		c.transitions = reg.CounterVec("tracemod_pressure_transitions_total",
			"Brownout ladder transitions, labelled by the level entered.", "level")
	}
	if inj := cfg.Faults; inj != nil {
		c.markPoint = inj.Point("pressure.brownout")
		c.forcePoint = inj.Point("pressure.force")
	}
	if cfg.Period > 0 {
		c.wg.Add(1)
		go c.loop()
	}
	return c
}

// runtimeHeap probes the bytes occupied by live and not-yet-swept heap
// objects — the number a watermark against OOM actually cares about. The
// fresh sample per call keeps the probe callable from both the
// evaluation loop and a concurrent /metrics scrape.
func runtimeHeap() int64 {
	sample := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(sample)
	if v := sample[0].Value; v.Kind() == metrics.KindUint64 {
		return int64(v.Uint64())
	}
	return 0
}

// Level returns the current ladder position. Nil-safe: Normal forever.
func (c *Controller) Level() Level {
	if c == nil {
		return Normal
	}
	return Level(c.level.Load())
}

// RetryAfter suggests the Retry-After value for a request refused at the
// current level: deeper degradation asks callers to stay away longer.
func (c *Controller) RetryAfter() time.Duration {
	switch c.Level() {
	case SpillTraces:
		return 5 * time.Second
	case PauseIngest:
		return 10 * time.Second
	default:
		return 2 * time.Second
	}
}

func (c *Controller) loop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.Period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			c.Evaluate()
		case <-c.quit:
			return
		}
	}
}

// Close stops the evaluation loop. The level freezes where it was.
func (c *Controller) Close() {
	if c == nil {
		return
	}
	select {
	case <-c.quit:
	default:
		close(c.quit)
	}
	c.wg.Wait()
}

// severity maps one metric against its high water to a ladder rung:
// the boundaries are highWater × {1, 1.1, 1.2, 1.3}.
func severity(v, highWater int64) Level {
	if highWater <= 0 || v < highWater {
		return Normal
	}
	switch f := float64(v) / float64(highWater); {
	case f >= 1.3:
		return PauseIngest
	case f >= 1.2:
		return SpillTraces
	case f >= 1.1:
		return RejectStreams
	default:
		return ShedSampling
	}
}

// pinnedSeverity maps the pinned-byte total against its budget: the
// boundaries are budget × {0.75, 0.9, 1.0, 1.1} — live ingest is what
// pins the memory, so its own watermark reaches the spill/pause rungs
// (the rungs that actually free or stop pinning) sooner.
func pinnedSeverity(v, budget int64) Level {
	if budget <= 0 {
		return Normal
	}
	switch f := float64(v) / float64(budget); {
	case f >= 1.1:
		return PauseIngest
	case f >= 1.0:
		return SpillTraces
	case f >= 0.9:
		return RejectStreams
	case f >= 0.75:
		return ShedSampling
	default:
		return Normal
	}
}

// target computes the ladder rung the probes call for right now. scale
// inflates the probes (scale > 1 makes the verdict stickier), which is
// how the downgrade path applies its hysteresis margin.
func (c *Controller) target(heap, pinned int64, scale float64) Level {
	h := severity(int64(float64(heap)*scale), c.cfg.HeapHighWater)
	p := pinnedSeverity(int64(float64(pinned)*scale), c.cfg.PinnedBudget)
	t := max(h, p)
	if c.forcePoint.Fire() {
		forced := Level(c.forcePoint.Delay() / time.Millisecond)
		if forced <= Normal || forced > maxLevel {
			forced = RejectStreams
		}
		t = max(t, forced)
	}
	return t
}

// Evaluate runs one watermark pass and returns the level in force after
// it. Upgrades jump straight to the target; downgrades take one step per
// call and only once the metrics sit below the boundary by the
// hysteresis margin.
func (c *Controller) Evaluate() Level {
	if c == nil {
		return Normal
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	heap, pinned := c.cfg.Heap(), c.cfg.Pinned()
	cur := Level(c.level.Load())
	next := cur
	if t := c.target(heap, pinned, 1); t > cur {
		next = t
	} else if sticky := c.target(heap, pinned, 1/hysteresis); sticky < cur {
		next = cur - 1
	}
	if next == cur {
		return cur
	}
	c.level.Store(int32(next))
	if c.transitions != nil {
		c.transitions.With(next.String()).Inc()
	}
	c.markPoint.Mark()
	if c.cfg.Logger != nil {
		c.cfg.Logger.Warn("brownout transition",
			"from", cur.String(), "to", next.String(),
			"heap_bytes", heap, "pinned_bytes", pinned)
	}
	if c.cfg.OnChange != nil {
		c.cfg.OnChange(cur, next)
	}
	return next
}
