// Live ingest: the collect→emulate pipeline with the file removed. A
// Stream glues the salvaging tracefmt.StreamReader to the streaming
// distiller (internal/distill/stream) and pours the emitted tuples into
// a LiveTrace registered with the farm's store — so a session can start
// modulating against a collection the moment its first window freezes,
// while the upload is still in flight. Distillation lag stays bounded
// (Window/2 + Settle + Step behind the packet watermark) and observable:
// the distiller's lag histogram backs the "stream-distill-lag-p99"
// objective on /v1/slo.
//
// With a WAL directory configured the pipeline is also durable: every
// accepted chunk is appended to a per-stream write-ahead log before it
// reaches the reader, so a crashed daemon replays the durable prefix on
// -recover and the uploader resumes from the committed offset instead
// of starting over. Uploads carry a stream token and an offset, making
// retries idempotent: a duplicated chunk is discarded, a gap is refused
// with the committed offset so the client can rewind.
package emud

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"tracemod/internal/distill"
	"tracemod/internal/distill/stream"
	"tracemod/internal/emud/pressure"
	"tracemod/internal/emud/wal"
	"tracemod/internal/faults"
	"tracemod/internal/obs"
	"tracemod/internal/tracefmt"
)

// StreamState is a stream's lifecycle position.
type StreamState string

// Stream states.
const (
	StreamReceiving StreamState = "receiving" // upload in flight, tuples growing
	StreamComplete  StreamState = "complete"  // upload finished, trace sealed
	StreamFailed    StreamState = "failed"    // ingest error; trace sealed early
)

// Per-stream metadata files inside the WAL directory.
const (
	streamConfigFile = "config.json"
	streamSealedFile = "sealed.json"
)

// ErrStreamGone marks a recovered session whose live stream did not
// survive the crash: the WAL was disabled, deleted, or unreadable. The
// session is restored stopped with this error in its status so the
// operator sees exactly what was lost.
var ErrStreamGone = errors.New("emud: stream gone")

// BrownoutError is the typed refusal the brownout controller issues for
// new work while the farm sheds load. The control plane maps it to
// HTTP 429 with a Retry-After header.
type BrownoutError struct {
	Level      pressure.Level
	RetryAfter time.Duration
}

func (e *BrownoutError) Error() string {
	return fmt.Sprintf("emud: shedding load (%s): retry after %s", e.Level, e.RetryAfter)
}

// OffsetError is the typed refusal for a resumed upload whose offset
// does not meet the committed prefix: the client must re-query the
// offset and rewind. Mapped to HTTP 409.
type OffsetError struct {
	Name      string
	Committed int64 // bytes durably accepted so far
	Attempted int64 // offset the client tried to write at
}

func (e *OffsetError) Error() string {
	return fmt.Sprintf("emud: stream %q offset mismatch: committed %d, upload resumed at %d",
		e.Name, e.Committed, e.Attempted)
}

// QuotaError is the typed refusal for a chunk that would push a stream
// past its byte quota. The stream fails — it can never complete within
// budget. Mapped to HTTP 413.
type QuotaError struct {
	Name      string
	Quota     int64
	Attempted int64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("emud: stream %q quota exceeded: %d bytes over the %d-byte budget",
		e.Name, e.Attempted-e.Quota, e.Quota)
}

// StreamConfig parameterizes one live-ingest stream.
type StreamConfig struct {
	// Name identifies the stream; sessions attach via trace ref
	// "stream:" + Name. Names must be path-safe: letters, digits,
	// dots, underscores, dashes; no leading dot; at most 128 bytes.
	Name string
	// Window, Step, Settle tune the streaming distiller (package
	// defaults when zero: 5s window, 1s step, settle = window).
	Window, Step, Settle time.Duration
	// Strict refuses damaged input outright: no salvage resync in the
	// reader, and any record the sanitizer would touch fails the stream.
	Strict bool
	// Resumable keeps the stream receiving when an upload connection
	// ends without an explicit completion, so the client can resume
	// from the committed offset.
	Resumable bool
}

// streamConfigJSON is the durable stream spec written next to the WAL,
// so recovery rebuilds the exact pipeline (same distiller geometry,
// same salvage stance) before replaying bytes into it.
type streamConfigJSON struct {
	Name      string `json:"name"`
	WindowNS  int64  `json:"window_ns,omitempty"`
	StepNS    int64  `json:"step_ns,omitempty"`
	SettleNS  int64  `json:"settle_ns,omitempty"`
	Strict    bool   `json:"strict,omitempty"`
	Resumable bool   `json:"resumable,omitempty"`
	Token     string `json:"token"`
}

// streamSealJSON marks a sealed stream on disk: recovery re-seals the
// rebuilt stream instead of reopening the upload.
type streamSealJSON struct {
	State StreamState `json:"state"`
	Error string      `json:"error,omitempty"`
}

// Stream is one live collect→emulate pipeline instance. Writes are
// serialized by the mutex; the HTTP handler owning the upload is the
// only producer.
type Stream struct {
	Name    string
	cfg     StreamConfig
	live    *LiveTrace
	created time.Duration        // wheel time at creation
	token   string               // upload fencing token
	dir     string               // per-stream WAL dir ("" = durability off)
	now     func() time.Duration // wheel clock (nil in bare tests)

	mu        sync.Mutex
	r         *tracefmt.StreamReader
	d         *stream.Distiller
	wal       *wal.Log // nil when durability is off
	state     StreamState
	err       error
	bytes     int64 // committed upload offset
	records   int64
	quota     int64         // max upload bytes (0 = unlimited)
	lastWrite time.Duration // wheel time of the last accepted chunk
	uploading bool          // one upload connection at a time
	summary   *stream.Summary
	report    *tracefmt.ReadReport
}

// StreamInfo is the wire representation of a stream.
type StreamInfo struct {
	Name    string `json:"name"`
	State   string `json:"state"`
	Bytes   int64  `json:"bytes"`
	Records int64  `json:"records"`
	// Token fences resumed uploads: PATCH must present it.
	Token string `json:"token,omitempty"`
	// Durable is the upload prefix guaranteed to survive a crash (equals
	// Bytes when no WAL is configured — nothing survives, but the
	// committed offset is still the resume point within this process).
	Durable   int64 `json:"durable"`
	Resumable bool  `json:"resumable,omitempty"`
	// Tuples and DurationSec describe the growing replay trace.
	Tuples      int     `json:"tuples"`
	DurationSec float64 `json:"duration_sec"`
	// LagSec is the distillation lag: how far tuple emission trails the
	// packet watermark.
	LagSec float64 `json:"lag_sec"`
	// Damaged counts corrupt regions the salvaging reader resynced past.
	Damaged int64  `json:"damaged,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Live returns the stream's growing replay trace.
func (st *Stream) Live() *LiveTrace { return st.live }

// Token returns the stream's upload fencing token.
func (st *Stream) Token() string { return st.token }

// Resumable reports whether the stream survives upload disconnects.
func (st *Stream) Resumable() bool { return st.cfg.Resumable }

// State returns the stream's current lifecycle state.
func (st *Stream) State() StreamState {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.state
}

// Err returns the ingest error of a failed stream.
func (st *Stream) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Offset returns the committed upload offset: the next byte a resumed
// upload must supply.
func (st *Stream) Offset() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bytes
}

// Durable returns the upload prefix guaranteed to survive a crash.
func (st *Stream) Durable() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.durableLocked()
}

func (st *Stream) durableLocked() int64 {
	if st.wal != nil {
		return st.wal.Durable()
	}
	return st.bytes
}

// Summary returns the completed stream's distillation diagnostics (nil
// until StreamComplete).
func (st *Stream) Summary() *stream.Summary {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.summary
}

// Info snapshots the stream for the control plane.
func (st *Stream) Info() StreamInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	info := StreamInfo{
		Name:        st.Name,
		State:       string(st.state),
		Bytes:       st.bytes,
		Records:     st.records,
		Token:       st.token,
		Durable:     st.durableLocked(),
		Resumable:   st.cfg.Resumable,
		Tuples:      st.live.Len(),
		DurationSec: st.live.Duration().Seconds(),
		LagSec:      st.d.Lag().Seconds(),
	}
	if st.report != nil {
		info.Damaged = int64(st.report.Damaged)
	} else {
		info.Damaged = int64(st.r.Report().Damaged)
	}
	if st.err != nil {
		info.Error = st.err.Error()
	}
	return info
}

// pinned approximates the memory this stream pins outside the GC's
// discretion: the reader's undecoded tail plus the resident tuples.
func (st *Stream) pinned() int64 {
	st.mu.Lock()
	buffered := int64(st.r.Buffered())
	st.mu.Unlock()
	return buffered + st.live.MemBytes()
}

// Write feeds one chunk of the collected-trace upload at the committed
// offset. Any error fails the stream permanently and seals the live
// trace so attached sessions stop waiting.
func (st *Stream) Write(p []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.writeLocked(p)
}

// WriteAt feeds one chunk at an explicit upload offset — the resume
// path. An offset inside the committed prefix is a retransmit: the
// overlap is discarded and only the novel suffix ingested (idempotent
// retries). An offset past the committed prefix is a gap the server
// never saw: refused with a typed OffsetError carrying the committed
// offset so the client rewinds.
func (st *Stream) WriteAt(off int64, p []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if off > st.bytes {
		return &OffsetError{Name: st.Name, Committed: st.bytes, Attempted: off}
	}
	if skip := st.bytes - off; skip > 0 {
		if skip >= int64(len(p)) {
			return nil // wholly duplicate chunk: already committed
		}
		p = p[skip:]
	}
	return st.writeLocked(p)
}

func (st *Stream) writeLocked(p []byte) error {
	if st.state != StreamReceiving {
		return fmt.Errorf("emud: stream %q is %s", st.Name, st.state)
	}
	if len(p) == 0 {
		return nil
	}
	if st.quota > 0 && st.bytes+int64(len(p)) > st.quota {
		return st.failLocked(&QuotaError{Name: st.Name, Quota: st.quota, Attempted: st.bytes + int64(len(p))})
	}
	// Durability before interpretation: once Append returns, a crash
	// replays this chunk. An ingest error after that is deterministic —
	// the replay fails the stream the same way this call does.
	if err := st.wal.Append(p); err != nil {
		return st.failLocked(fmt.Errorf("emud: stream %q wal append: %w", st.Name, err))
	}
	if st.now != nil {
		st.lastWrite = st.now()
	}
	return st.ingestLocked(p)
}

// ingestLocked advances the committed offset and runs the chunk through
// the reader and distiller. Shared by live writes and WAL replay (which
// must not re-append).
func (st *Stream) ingestLocked(p []byte) error {
	st.bytes += int64(len(p))
	if err := st.r.Feed(p); err != nil {
		return st.failLocked(err)
	}
	recs, rerr := st.r.ReadAvailable()
	// Records decoded before a sticky strict error still count — same
	// stance as the batch reader, which hands records out up to the
	// point of damage.
	for _, rec := range recs {
		if err := st.d.Ingest(rec); err != nil {
			return st.failLocked(err)
		}
	}
	st.records += int64(len(recs))
	if rerr != nil {
		return st.failLocked(rerr)
	}
	return nil
}

// Finish marks the upload complete: the reader's held-back tail is
// flushed, every remaining window freezes, and the live trace is
// sealed. The summary mirrors what the batch distiller would have
// produced from the same bytes.
func (st *Stream) Finish() (*stream.Summary, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.finishLocked()
}

func (st *Stream) finishLocked() (*stream.Summary, error) {
	if st.state != StreamReceiving {
		return nil, fmt.Errorf("emud: stream %q is %s", st.Name, st.state)
	}
	recs, rep, err := st.r.Finish()
	st.report = rep
	for _, rec := range recs {
		if ierr := st.d.Ingest(rec); ierr != nil {
			return nil, st.failLocked(ierr)
		}
	}
	st.records += int64(len(recs))
	if err != nil {
		return nil, st.failLocked(err)
	}
	sum, cerr := st.d.Close()
	if cerr != nil {
		return nil, st.failLocked(cerr)
	}
	st.summary = sum
	st.state = StreamComplete
	st.live.Complete(nil)
	st.sealLocked()
	return sum, nil
}

// failLocked seals a broken stream. Returns the error for convenience.
func (st *Stream) failLocked(err error) error {
	st.state = StreamFailed
	st.err = err
	st.live.Complete(err)
	st.sealLocked()
	return err
}

// sealLocked makes the terminal state durable: the WAL is synced and
// closed (no more appends can come), and the sealed marker written so
// recovery re-seals the stream instead of reopening the upload.
func (st *Stream) sealLocked() {
	_ = st.wal.Close()
	if st.dir == "" {
		return
	}
	seal := streamSealJSON{State: st.state}
	if st.err != nil {
		seal.Error = st.err.Error()
	}
	data, err := json.Marshal(seal)
	if err != nil {
		return
	}
	tmp := filepath.Join(st.dir, streamSealedFile+".tmp")
	if os.WriteFile(tmp, data, 0o644) == nil {
		_ = os.Rename(tmp, filepath.Join(st.dir, streamSealedFile))
	}
}

// abort fails a receiving stream from outside the upload path (DELETE
// while in flight). No-op on sealed streams.
func (st *Stream) abort(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.state == StreamReceiving {
		_ = st.failLocked(err)
	}
}

// acquireUpload claims the stream's single upload slot. Two concurrent
// uploads to one stream would interleave arbitrarily; the second is
// refused instead (HTTP 409).
func (st *Stream) acquireUpload() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.uploading {
		return fmt.Errorf("emud: stream %q already has an upload in flight", st.Name)
	}
	st.uploading = true
	return nil
}

func (st *Stream) releaseUpload() {
	st.mu.Lock()
	st.uploading = false
	st.mu.Unlock()
}

// reapIfIdle seals the stream when no chunk has been accepted within
// timeout: the windows freeze on what arrived, attached sessions see a
// complete trace, and the pinned reader tail stops growing. Returns
// true when this call sealed the stream.
func (st *Stream) reapIfIdle(now, timeout time.Duration) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.state != StreamReceiving || now-st.lastWrite <= timeout {
		return false
	}
	// Finish salvages what arrived; a strict-mode torn tail fails the
	// stream instead. Sealed either way.
	_, _ = st.finishLocked()
	return true
}

// validStreamName enforces path-safe stream names: the name becomes a
// WAL directory and a spill filename.
func validStreamName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// newStreamToken mints an upload fencing token.
func newStreamToken() string {
	var b [16]byte
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// Streams is the farm's live-ingest registry.
type Streams struct {
	m *Manager

	walDir      string
	walSync     wal.SyncPolicy
	walSegBytes int64
	idleTimeout time.Duration
	quota       int64
	spillDir    string

	reapPoint     *faults.Point
	reaps, spills *obs.Counter

	mu      sync.Mutex
	streams map[string]*Stream

	quit chan struct{}
	wg   sync.WaitGroup
}

// newStreams wires the registry, its gauge, and the distillation-lag
// objective into the farm.
func newStreams(m *Manager) *Streams {
	o := m.opts
	ss := &Streams{
		m:           m,
		walDir:      o.StreamWALDir,
		walSync:     o.StreamWALSync,
		walSegBytes: o.StreamWALSegmentBytes,
		idleTimeout: o.StreamIdleTimeout,
		quota:       o.StreamQuotaBytes,
		spillDir:    o.SpillDir,
		streams:     map[string]*Stream{},
		quit:        make(chan struct{}),
	}
	if ss.spillDir != "" {
		_ = os.MkdirAll(ss.spillDir, 0o755)
	}
	ss.reapPoint = o.Faults.Point("stream.reap")
	if reg := o.Metrics; reg != nil {
		reg.GaugeFunc("tracemod_stream_live_streams",
			"Live-ingest streams currently receiving.",
			func() float64 {
				ss.mu.Lock()
				defer ss.mu.Unlock()
				n := 0
				for _, st := range ss.streams {
					if st.State() == StreamReceiving {
						n++
					}
				}
				return float64(n)
			})
		ss.reaps = reg.Counter("tracemod_stream_reaped_total",
			"Idle live-ingest streams sealed by the reaper.")
		ss.spills = reg.Counter("tracemod_stream_spills_total",
			"Sealed live traces spilled to disk under memory pressure.")
		// The lag histogram is shared with every Distiller this farm
		// creates (the registry dedups by name). The threshold is the
		// analytical bound for the default geometry — Window/2 + Settle +
		// Step = 8.5s — plus one step of slack for watermark jitter at
		// the moment of observation.
		dc := distill.DefaultConfig()
		lag := reg.Histogram("tracemod_stream_distill_lag",
			"Distillation lag: packet watermark minus emitted window center, at emission.",
			stream.LagBounds())
		m.slos.Add(&obs.SLO{
			Name:      "stream-distill-lag-p99",
			Help:      "99th-percentile distillation lag of live-ingest streams must stay within the freeze bound.",
			Kind:      obs.SLOQuantile,
			Hist:      lag,
			Quantile:  0.99,
			Threshold: dc.Window/2 + dc.Window + 2*dc.Step,
		})
	}
	if ss.idleTimeout > 0 {
		ss.wg.Add(1)
		go ss.reapLoop()
	}
	return ss
}

// Close stops the reaper and flushes every stream's WAL. Receiving
// streams stay receiving on disk: a restart with -recover resumes them.
func (ss *Streams) Close() {
	select {
	case <-ss.quit:
	default:
		close(ss.quit)
	}
	ss.wg.Wait()
	for _, st := range ss.List() {
		st.mu.Lock()
		_ = st.wal.Close()
		st.mu.Unlock()
	}
}

// PinnedBytes sums the memory pinned by live ingest across every
// stream — the brownout controller's second watermark.
func (ss *Streams) PinnedBytes() int64 {
	var sum int64
	for _, st := range ss.List() {
		sum += st.pinned()
	}
	return sum
}

// SpillSealed writes every sealed, resident live trace to the spill
// directory and drops the in-memory tuples — the brownout ladder's
// third rung. No-op without a spill directory.
func (ss *Streams) SpillSealed() {
	if ss.spillDir == "" {
		return
	}
	for _, st := range ss.List() {
		if st.State() == StreamReceiving || st.live.Spilled() || st.live.MemBytes() == 0 {
			continue
		}
		path := filepath.Join(ss.spillDir, st.Name+".tuples")
		if err := st.live.Spill(path); err != nil {
			ss.m.log.Warn("live trace spill failed", "stream", st.Name, "err", err)
			continue
		}
		ss.spills.Inc()
		ss.m.log.Info("live trace spilled", "stream", st.Name, "path", path)
	}
}

func (ss *Streams) reapLoop() {
	defer ss.wg.Done()
	period := ss.idleTimeout / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			ss.reapIdle()
		case <-ss.quit:
			return
		}
	}
}

func (ss *Streams) reapIdle() {
	now := ss.m.wheel.Now()
	for _, st := range ss.List() {
		if st.reapIfIdle(now, ss.idleTimeout) {
			ss.reaps.Inc()
			ss.reapPoint.Mark()
			ss.m.log.Warn("idle stream sealed by reaper", "stream", st.Name,
				"bytes", st.Offset(), "state", string(st.State()))
		}
	}
}

// Create registers a new receiving stream and exposes its growing trace
// through the store, so sessions can attach before the upload finishes.
// While the brownout ladder is at reject-streams or deeper, creation is
// refused with a typed BrownoutError (HTTP 429 + Retry-After).
func (ss *Streams) Create(cfg StreamConfig) (*Stream, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("emud: stream name is required")
	}
	if !validStreamName(cfg.Name) {
		return nil, fmt.Errorf("emud: invalid stream name %q (want [A-Za-z0-9._-], no leading dot, ≤128 bytes)", cfg.Name)
	}
	if lvl := ss.m.pressure.Level(); lvl >= pressure.RejectStreams {
		return nil, &BrownoutError{Level: lvl, RetryAfter: ss.m.pressure.RetryAfter()}
	}
	if ss.walDir != "" {
		// A fresh create supersedes any WAL a previous, unrecovered life
		// of this name left behind.
		_ = os.RemoveAll(filepath.Join(ss.walDir, cfg.Name))
	}
	st, err := ss.newStream(cfg, newStreamToken())
	if err != nil {
		return nil, err
	}
	if st.dir != "" {
		l, werr := wal.Open(wal.Options{
			Dir:          st.dir,
			SegmentBytes: ss.walSegBytes,
			Sync:         ss.walSync,
		}, func([]byte) error { return nil })
		if werr != nil {
			return nil, fmt.Errorf("emud: opening stream wal: %w", werr)
		}
		st.wal = l
	}
	if err := ss.register(st); err != nil {
		st.mu.Lock()
		_ = st.wal.Close()
		st.mu.Unlock()
		if st.dir != "" {
			_ = os.RemoveAll(st.dir)
		}
		return nil, err
	}
	ss.m.log.Debug("stream created", "stream", cfg.Name, "durable", st.dir != "")
	return st, nil
}

// newStream builds the pipeline instance (and, with a WAL root, its
// directory and durable config) without registering it.
func (ss *Streams) newStream(cfg StreamConfig, token string) (*Stream, error) {
	st := &Stream{
		Name:      cfg.Name,
		cfg:       cfg,
		live:      NewLiveTrace(),
		created:   ss.m.wheel.Now(),
		token:     token,
		now:       ss.m.wheel.Now,
		lastWrite: ss.m.wheel.Now(),
		quota:     ss.quota,
		state:     StreamReceiving,
		r:         tracefmt.NewStreamReader(tracefmt.StreamOptions{Salvage: !cfg.Strict}),
	}
	st.d = stream.New(stream.Config{
		Window:  cfg.Window,
		Step:    cfg.Step,
		Settle:  cfg.Settle,
		Strict:  cfg.Strict,
		OnTuple: st.live.Append,
		Metrics: ss.m.opts.Metrics,
	})
	if ss.walDir != "" {
		st.dir = filepath.Join(ss.walDir, cfg.Name)
		if err := os.MkdirAll(st.dir, 0o755); err != nil {
			return nil, fmt.Errorf("emud: creating stream wal dir: %w", err)
		}
		cj := streamConfigJSON{
			Name:      cfg.Name,
			WindowNS:  int64(cfg.Window),
			StepNS:    int64(cfg.Step),
			SettleNS:  int64(cfg.Settle),
			Strict:    cfg.Strict,
			Resumable: cfg.Resumable,
			Token:     token,
		}
		data, err := json.Marshal(cj)
		if err != nil {
			return nil, err
		}
		tmp := filepath.Join(st.dir, streamConfigFile+".tmp")
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return nil, fmt.Errorf("emud: writing stream config: %w", err)
		}
		if err := os.Rename(tmp, filepath.Join(st.dir, streamConfigFile)); err != nil {
			return nil, fmt.Errorf("emud: publishing stream config: %w", err)
		}
	}
	return st, nil
}

// register inserts the stream into the registry and the store.
func (ss *Streams) register(st *Stream) error {
	ss.mu.Lock()
	if _, dup := ss.streams[st.Name]; dup {
		ss.mu.Unlock()
		return fmt.Errorf("emud: stream %q already exists", st.Name)
	}
	ss.streams[st.Name] = st
	ss.mu.Unlock()
	if err := ss.m.store.RegisterLive(st.Name, st.live); err != nil {
		ss.mu.Lock()
		delete(ss.streams, st.Name)
		ss.mu.Unlock()
		return err
	}
	return nil
}

// Recover scans the WAL root and rebuilds every stream found there:
// the durable chunk prefix replays through a fresh reader+distiller
// pipeline (bit-identical tuples up to the durable offset), sealed
// streams re-seal, receiving streams reopen at the committed offset for
// the uploader to resume. Call before session Restore so "stream:"
// trace refs resolve. Per-stream failures skip that stream; the first
// is returned alongside the count recovered.
func (ss *Streams) Recover() (int, error) {
	if ss.walDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(ss.walDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	recovered := 0
	var firstErr error
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if err := ss.recoverOne(e.Name()); err != nil {
			ss.m.log.Warn("stream recovery failed", "stream", e.Name(), "err", err)
			if firstErr == nil {
				firstErr = fmt.Errorf("emud: recovering stream %q: %w", e.Name(), err)
			}
			continue
		}
		recovered++
	}
	return recovered, firstErr
}

func (ss *Streams) recoverOne(name string) error {
	dir := filepath.Join(ss.walDir, name)
	data, err := os.ReadFile(filepath.Join(dir, streamConfigFile))
	if err != nil {
		return err
	}
	var cj streamConfigJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return fmt.Errorf("parsing %s: %w", streamConfigFile, err)
	}
	if cj.Name != name {
		return fmt.Errorf("config names %q, directory is %q", cj.Name, name)
	}
	st, err := ss.newStream(StreamConfig{
		Name:      cj.Name,
		Window:    time.Duration(cj.WindowNS),
		Step:      time.Duration(cj.StepNS),
		Settle:    time.Duration(cj.SettleNS),
		Strict:    cj.Strict,
		Resumable: cj.Resumable,
	}, cj.Token)
	if err != nil {
		return err
	}
	// Replay the durable prefix through the same ingest path live
	// writes take, minus the WAL append. An ingest failure mid-replay
	// reproduces the original run's failure and seals the stream; the
	// remaining frames (there are none — writes stop at failure) are
	// skipped rather than aborting the WAL open.
	l, err := wal.Open(wal.Options{
		Dir:          dir,
		SegmentBytes: ss.walSegBytes,
		Sync:         ss.walSync,
	}, func(p []byte) error {
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.state != StreamReceiving {
			return nil
		}
		_ = st.ingestLocked(p)
		return nil
	})
	if err != nil {
		return err
	}
	st.mu.Lock()
	st.wal = l
	st.mu.Unlock()
	// A sealed marker means the original stream ended before the crash:
	// re-render the same terminal state.
	if sdata, serr := os.ReadFile(filepath.Join(dir, streamSealedFile)); serr == nil {
		var sj streamSealJSON
		if json.Unmarshal(sdata, &sj) == nil {
			st.mu.Lock()
			if st.state == StreamReceiving {
				switch sj.State {
				case StreamComplete:
					_, _ = st.finishLocked()
				case StreamFailed:
					msg := sj.Error
					if msg == "" {
						msg = "stream failed before crash"
					}
					_ = st.failLocked(errors.New(msg))
				}
			}
			st.mu.Unlock()
		}
	}
	if err := ss.register(st); err != nil {
		st.mu.Lock()
		_ = st.wal.Close()
		st.mu.Unlock()
		return err
	}
	ss.m.log.Info("stream recovered", "stream", name,
		"bytes", st.Offset(), "state", string(st.State()), "tuples", st.live.Len())
	return nil
}

// Get returns a stream by name.
func (ss *Streams) Get(name string) (*Stream, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	st, ok := ss.streams[name]
	return st, ok
}

// List returns every stream, ordered by name.
func (ss *Streams) List() []*Stream {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]*Stream, 0, len(ss.streams))
	for _, st := range ss.streams {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delete removes a stream from the registry, the store, and the disk
// (WAL directory and spill file). A stream still receiving is aborted:
// the in-flight upload fails on its next chunk. Sessions already
// attached keep the tuples that arrived.
func (ss *Streams) Delete(name string) bool {
	ss.mu.Lock()
	st, ok := ss.streams[name]
	if ok {
		delete(ss.streams, name)
	}
	ss.mu.Unlock()
	if !ok {
		return false
	}
	st.abort(fmt.Errorf("emud: stream %q deleted", name))
	ss.m.store.DropLive(name)
	if st.dir != "" {
		_ = os.RemoveAll(st.dir)
	}
	if ss.spillDir != "" {
		_ = os.Remove(filepath.Join(ss.spillDir, name+".tuples"))
	}
	ss.m.log.Debug("stream deleted", "stream", name)
	return true
}

// Count returns the number of registered streams (any state).
func (ss *Streams) Count() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.streams)
}
