// Live ingest: the collect→emulate pipeline with the file removed. A
// Stream glues the salvaging tracefmt.StreamReader to the streaming
// distiller (internal/distill/stream) and pours the emitted tuples into
// a LiveTrace registered with the farm's store — so a session can start
// modulating against a collection the moment its first window freezes,
// while the upload is still in flight. Distillation lag stays bounded
// (Window/2 + Settle + Step behind the packet watermark) and observable:
// the distiller's lag histogram backs the "stream-distill-lag-p99"
// objective on /v1/slo.
package emud

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tracemod/internal/distill"
	"tracemod/internal/distill/stream"
	"tracemod/internal/obs"
	"tracemod/internal/tracefmt"
)

// StreamState is a stream's lifecycle position.
type StreamState string

// Stream states.
const (
	StreamReceiving StreamState = "receiving" // upload in flight, tuples growing
	StreamComplete  StreamState = "complete"  // upload finished, trace sealed
	StreamFailed    StreamState = "failed"    // ingest error; trace sealed early
)

// StreamConfig parameterizes one live-ingest stream.
type StreamConfig struct {
	// Name identifies the stream; sessions attach via trace ref
	// "stream:" + Name.
	Name string
	// Window, Step, Settle tune the streaming distiller (package
	// defaults when zero: 5s window, 1s step, settle = window).
	Window, Step, Settle time.Duration
	// Strict refuses damaged input outright: no salvage resync in the
	// reader, and any record the sanitizer would touch fails the stream.
	Strict bool
}

// Stream is one live collect→emulate pipeline instance. Writes are
// serialized by the mutex; the HTTP handler owning the upload is the
// only producer.
type Stream struct {
	Name    string
	cfg     StreamConfig
	live    *LiveTrace
	created time.Duration // wheel time at creation

	mu      sync.Mutex
	r       *tracefmt.StreamReader
	d       *stream.Distiller
	state   StreamState
	err     error
	bytes   int64
	records int64
	summary *stream.Summary
	report  *tracefmt.ReadReport
}

// StreamInfo is the wire representation of a stream.
type StreamInfo struct {
	Name    string `json:"name"`
	State   string `json:"state"`
	Bytes   int64  `json:"bytes"`
	Records int64  `json:"records"`
	// Tuples and DurationSec describe the growing replay trace.
	Tuples      int     `json:"tuples"`
	DurationSec float64 `json:"duration_sec"`
	// LagSec is the distillation lag: how far tuple emission trails the
	// packet watermark.
	LagSec float64 `json:"lag_sec"`
	// Damaged counts corrupt regions the salvaging reader resynced past.
	Damaged int64  `json:"damaged,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Live returns the stream's growing replay trace.
func (st *Stream) Live() *LiveTrace { return st.live }

// State returns the stream's current lifecycle state.
func (st *Stream) State() StreamState {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.state
}

// Err returns the ingest error of a failed stream.
func (st *Stream) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Summary returns the completed stream's distillation diagnostics (nil
// until StreamComplete).
func (st *Stream) Summary() *stream.Summary {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.summary
}

// Info snapshots the stream for the control plane.
func (st *Stream) Info() StreamInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	info := StreamInfo{
		Name:        st.Name,
		State:       string(st.state),
		Bytes:       st.bytes,
		Records:     st.records,
		Tuples:      st.live.Len(),
		DurationSec: st.live.Duration().Seconds(),
		LagSec:      st.d.Lag().Seconds(),
	}
	if st.report != nil {
		info.Damaged = int64(st.report.Damaged)
	} else {
		info.Damaged = int64(st.r.Report().Damaged)
	}
	if st.err != nil {
		info.Error = st.err.Error()
	}
	return info
}

// Write feeds one chunk of the collected-trace upload through the
// reader and distiller. Any error fails the stream permanently and
// seals the live trace so attached sessions stop waiting.
func (st *Stream) Write(p []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.state != StreamReceiving {
		return fmt.Errorf("emud: stream %q is %s", st.Name, st.state)
	}
	st.bytes += int64(len(p))
	if err := st.r.Feed(p); err != nil {
		return st.failLocked(err)
	}
	recs, rerr := st.r.ReadAvailable()
	// Records decoded before a sticky strict error still count — same
	// stance as the batch reader, which hands records out up to the
	// point of damage.
	for _, rec := range recs {
		if err := st.d.Ingest(rec); err != nil {
			return st.failLocked(err)
		}
	}
	st.records += int64(len(recs))
	if rerr != nil {
		return st.failLocked(rerr)
	}
	return nil
}

// Finish marks the upload complete: the reader's held-back tail is
// flushed, every remaining window freezes, and the live trace is
// sealed. The summary mirrors what the batch distiller would have
// produced from the same bytes.
func (st *Stream) Finish() (*stream.Summary, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.state != StreamReceiving {
		return nil, fmt.Errorf("emud: stream %q is %s", st.Name, st.state)
	}
	recs, rep, err := st.r.Finish()
	st.report = rep
	for _, rec := range recs {
		if ierr := st.d.Ingest(rec); ierr != nil {
			return nil, st.failLocked(ierr)
		}
	}
	st.records += int64(len(recs))
	if err != nil {
		return nil, st.failLocked(err)
	}
	sum, cerr := st.d.Close()
	if cerr != nil {
		return nil, st.failLocked(cerr)
	}
	st.summary = sum
	st.state = StreamComplete
	st.live.Complete(nil)
	return sum, nil
}

// failLocked seals a broken stream. Returns the error for convenience.
func (st *Stream) failLocked(err error) error {
	st.state = StreamFailed
	st.err = err
	st.live.Complete(err)
	return err
}

// abort fails a receiving stream from outside the upload path (DELETE
// while in flight). No-op on sealed streams.
func (st *Stream) abort(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.state == StreamReceiving {
		_ = st.failLocked(err)
	}
}

// Streams is the farm's live-ingest registry.
type Streams struct {
	m *Manager

	mu      sync.Mutex
	streams map[string]*Stream
}

// newStreams wires the registry, its gauge, and the distillation-lag
// objective into the farm.
func newStreams(m *Manager) *Streams {
	ss := &Streams{m: m, streams: map[string]*Stream{}}
	if reg := m.opts.Metrics; reg != nil {
		reg.GaugeFunc("tracemod_stream_live_streams",
			"Live-ingest streams currently receiving.",
			func() float64 {
				ss.mu.Lock()
				defer ss.mu.Unlock()
				n := 0
				for _, st := range ss.streams {
					if st.State() == StreamReceiving {
						n++
					}
				}
				return float64(n)
			})
		// The lag histogram is shared with every Distiller this farm
		// creates (the registry dedups by name). The threshold is the
		// analytical bound for the default geometry — Window/2 + Settle +
		// Step = 8.5s — plus one step of slack for watermark jitter at
		// the moment of observation.
		dc := distill.DefaultConfig()
		lag := reg.Histogram("tracemod_stream_distill_lag",
			"Distillation lag: packet watermark minus emitted window center, at emission.",
			stream.LagBounds())
		m.slos.Add(&obs.SLO{
			Name:      "stream-distill-lag-p99",
			Help:      "99th-percentile distillation lag of live-ingest streams must stay within the freeze bound.",
			Kind:      obs.SLOQuantile,
			Hist:      lag,
			Quantile:  0.99,
			Threshold: dc.Window/2 + dc.Window + 2*dc.Step,
		})
	}
	return ss
}

// Create registers a new receiving stream and exposes its growing trace
// through the store, so sessions can attach before the upload finishes.
func (ss *Streams) Create(cfg StreamConfig) (*Stream, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("emud: stream name is required")
	}
	st := &Stream{
		Name:    cfg.Name,
		cfg:     cfg,
		live:    NewLiveTrace(),
		created: ss.m.wheel.Now(),
		state:   StreamReceiving,
		r:       tracefmt.NewStreamReader(tracefmt.StreamOptions{Salvage: !cfg.Strict}),
	}
	st.d = stream.New(stream.Config{
		Window:  cfg.Window,
		Step:    cfg.Step,
		Settle:  cfg.Settle,
		Strict:  cfg.Strict,
		OnTuple: st.live.Append,
		Metrics: ss.m.opts.Metrics,
	})
	ss.mu.Lock()
	if _, dup := ss.streams[cfg.Name]; dup {
		ss.mu.Unlock()
		return nil, fmt.Errorf("emud: stream %q already exists", cfg.Name)
	}
	ss.streams[cfg.Name] = st
	ss.mu.Unlock()
	if err := ss.m.store.RegisterLive(cfg.Name, st.live); err != nil {
		ss.mu.Lock()
		delete(ss.streams, cfg.Name)
		ss.mu.Unlock()
		return nil, err
	}
	ss.m.log.Debug("stream created", "stream", cfg.Name)
	return st, nil
}

// Get returns a stream by name.
func (ss *Streams) Get(name string) (*Stream, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	st, ok := ss.streams[name]
	return st, ok
}

// List returns every stream, ordered by name.
func (ss *Streams) List() []*Stream {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]*Stream, 0, len(ss.streams))
	for _, st := range ss.streams {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delete removes a stream from the registry and the store. A stream
// still receiving is aborted: the in-flight upload fails on its next
// chunk. Sessions already attached keep the tuples that arrived.
func (ss *Streams) Delete(name string) bool {
	ss.mu.Lock()
	st, ok := ss.streams[name]
	if ok {
		delete(ss.streams, name)
	}
	ss.mu.Unlock()
	if !ok {
		return false
	}
	st.abort(fmt.Errorf("emud: stream %q deleted", name))
	ss.m.store.DropLive(name)
	ss.m.log.Debug("stream deleted", "stream", name)
	return true
}

// Count returns the number of registered streams (any state).
func (ss *Streams) Count() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.streams)
}
