package tracefmt

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes to both the strict and the salvaging
// reader. Invariants: neither panics; the report's record count matches
// what the salvaged trace actually holds; and whenever the strict parse
// succeeds, salvage must agree with it exactly and report a clean
// stream.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("TMT1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		strict, strictErr := ReadAll(bytes.NewReader(data))
		tr, rep, err := SalvageAll(bytes.NewReader(data))
		if err != nil {
			// Header unreadable: strict must have failed too.
			if strictErr == nil {
				t.Fatalf("salvage rejected header the strict reader accepted: %v", err)
			}
			return
		}
		if got := len(tr.Packets) + len(tr.Devices) + len(tr.Lost); got != rep.Records {
			t.Fatalf("report says %d records, trace holds %d", rep.Records, got)
		}
		if strictErr == nil {
			if !rep.Clean() {
				t.Fatalf("strict parse succeeded but salvage reported damage: %s", rep)
			}
			if len(tr.Packets) != len(strict.Packets) ||
				len(tr.Devices) != len(strict.Devices) ||
				len(tr.Lost) != len(strict.Lost) {
				t.Fatalf("salvage diverged from a successful strict parse")
			}
		}
	})
}
