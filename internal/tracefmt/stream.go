// Streaming decode: parsing a collected trace while it is still being
// written — a growing file tailed by a follower, or a chunked upload
// arriving over HTTP. The core difficulty is telling a truncated tail
// (more bytes may come; wait) from real corruption (they will not;
// resync or fail). StreamReader makes exactly the decisions the batch
// readers make, deferring any judgment that could change with more
// data: feeding a stream byte-at-a-time and finishing yields the same
// records and the same ReadReport as handing the final bytes to
// ReadAll (strict) or SalvageAll (salvage mode) in one piece.
package tracefmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrStreamFinished is returned by Feed and ReadAvailable after Finish.
var ErrStreamFinished = errors.New("tracefmt: stream already finished")

// StreamOptions parameterizes a StreamReader.
type StreamOptions struct {
	// Salvage resynchronizes past damage the way SalvageAll does,
	// instead of failing at the first framing error the way ReadAll
	// does.
	Salvage bool
}

// StreamReader decodes trace records incrementally from fed byte
// chunks. Not safe for concurrent use.
type StreamReader struct {
	opts StreamOptions

	buf []byte
	i   int // parse cursor into buf

	hdrDone bool
	hdr     Header

	rep  ReadReport
	err  error // sticky fatal (bad header; strict framing errors)
	done bool  // Finish was called

	out []any // decoded records awaiting ReadAvailable

	// Strict-mode CRC bookkeeping (mirrors Reader.remember).
	lastKind    RecordType
	lastPayload []byte

	// Salvage-mode hold-back: the most recent data record stays pending
	// while a following RecCRC could still reject it (mirrors
	// salvageRecords' append-then-dropLast).
	pendRec     any
	pendKind    RecordType
	pendPayload []byte

	// Salvage-mode resync scan state.
	resyncing bool
	resyncAt  int // the framing-error position the gap is charged from
	resyncJ   int // scan cursor
}

// NewStreamReader creates an incremental reader; the header is parsed
// from the first fed bytes.
func NewStreamReader(opts StreamOptions) *StreamReader {
	return &StreamReader{opts: opts}
}

// Feed appends a chunk of the stream. It never parses; call
// ReadAvailable to drain whatever the new bytes complete.
func (r *StreamReader) Feed(p []byte) error {
	if r.done {
		return ErrStreamFinished
	}
	r.buf = append(r.buf, p...)
	return nil
}

// Header returns the file header once enough bytes have been fed to
// parse it.
func (r *StreamReader) Header() (Header, bool) { return r.hdr, r.hdrDone }

// Buffered reports how many fed bytes are not yet consumed by a
// decision — the undecodable tail (at most one record frame plus the
// resync lookahead, outside pathological headers).
func (r *StreamReader) Buffered() int { return len(r.buf) - r.i }

// Report returns the salvage accounting so far. Only complete after
// Finish; in strict mode only Records is maintained.
func (r *StreamReader) Report() ReadReport { return r.rep }

// ReadAvailable decodes and returns every record the bytes fed so far
// fully determine, without blocking for more. A truncated record at the
// tail is not an error — it may complete with the next Feed; Finish
// renders the final judgment. In strict mode a framing error is sticky
// and returned alongside any records decoded before it; in salvage mode
// damage is accounted in the report instead.
func (r *StreamReader) ReadAvailable() ([]any, error) {
	if r.done {
		return nil, ErrStreamFinished
	}
	r.run(false)
	return r.drain(), r.err
}

// Finish declares the stream complete — the writer closed, the upload
// ended — and renders every judgment that was waiting on more data:
// a partial record at the tail becomes a truncated tail (salvage) or a
// truncation error (strict). It returns the final records, the complete
// report, and the terminal error, exactly matching the batch readers on
// the same bytes.
func (r *StreamReader) Finish() ([]any, *ReadReport, error) {
	if r.done {
		return nil, nil, ErrStreamFinished
	}
	r.run(true)
	r.done = true
	if r.err == nil && !r.hdrDone {
		r.err = r.headerError()
	}
	rep := r.rep
	return r.drain(), &rep, r.err
}

func (r *StreamReader) drain() []any {
	out := r.out
	r.out = nil
	// Compact: everything before the cursor is decided. During a resync
	// the parse cursor is parked at the framing error while the scan
	// cursor walks ahead, so cut at the scan cursor instead — every byte
	// before it has been rejected as an anchor and matters only as a
	// count. Without this, a garbage flood pins memory for as long as the
	// scan fails to land.
	cut := r.i
	if r.resyncing && r.resyncJ > cut {
		cut = r.resyncJ
	}
	if cut > 0 {
		n := copy(r.buf, r.buf[cut:])
		r.buf = r.buf[:n]
		if r.resyncing {
			// resyncAt may go negative: it survives only as the subtraction
			// origin for the gap accounting when the anchor finally lands.
			r.resyncAt -= cut
			r.resyncJ -= cut
		}
		if r.i -= cut; r.i < 0 {
			r.i = 0
		}
	}
	return out
}

// headerError reproduces NewReader's error for an incomplete header at
// end of stream.
func (r *StreamReader) headerError() error {
	if len(r.buf) == 0 {
		return io.EOF
	}
	if len(r.buf) >= 4 && binary.BigEndian.Uint32(r.buf[:4]) != Magic {
		return ErrBadMagic
	}
	return io.ErrUnexpectedEOF
}

// run advances the parse as far as the fed bytes allow. With final set,
// end-of-buffer is end-of-stream and every deferred judgment lands.
func (r *StreamReader) run(final bool) {
	if r.err != nil {
		return
	}
	if !r.hdrDone && !r.parseHeader() {
		return
	}
	if r.err != nil {
		return
	}
	if r.opts.Salvage {
		r.runSalvage(final)
	} else {
		r.runStrict(final)
	}
}

// parseHeader consumes the file header once it is fully present,
// mirroring NewReader: magic, version, device string, start, comment
// string. Returns false while more bytes are needed.
func (r *StreamReader) parseHeader() bool {
	b := r.buf
	if len(b) < 4 {
		return false
	}
	if binary.BigEndian.Uint32(b[:4]) != Magic {
		r.err = ErrBadMagic
		return false
	}
	if len(b) < 6 {
		return false
	}
	if ver := binary.BigEndian.Uint16(b[4:6]); ver != Version {
		r.err = fmt.Errorf("%w: %d", ErrBadVersion, ver)
		return false
	}
	p := 6
	// Device string.
	if len(b) < p+2 {
		return false
	}
	dn := int(binary.BigEndian.Uint16(b[p : p+2]))
	if len(b) < p+2+dn+8+2 {
		return false
	}
	device := string(b[p+2 : p+2+dn])
	p += 2 + dn
	start := int64(binary.BigEndian.Uint64(b[p : p+8]))
	p += 8
	cn := int(binary.BigEndian.Uint16(b[p : p+2]))
	if len(b) < p+2+cn {
		return false
	}
	comment := string(b[p+2 : p+2+cn])
	p += 2 + cn

	r.hdr = Header{Device: device, Start: start, Comment: comment}
	r.hdrDone = true
	r.i = p
	return true
}

// runStrict mirrors Reader.Next: any framing violation is a sticky
// error; a partial frame at the tail waits (or, with final, becomes the
// truncation error ReadAll would report).
func (r *StreamReader) runStrict(final bool) {
	b := r.buf
	for {
		i := r.i
		if i == len(b) {
			return // clean boundary: io.EOF territory, not an error
		}
		if len(b)-i < 3 {
			if !final {
				return
			}
			r.err = unexpectedEOF(io.ErrUnexpectedEOF)
			return
		}
		n := int(binary.BigEndian.Uint16(b[i+1 : i+3]))
		end := i + 3 + n
		if end > len(b) {
			if !final {
				return
			}
			r.err = unexpectedEOF(io.ErrUnexpectedEOF)
			return
		}
		payload := b[i+3 : end]
		switch t := RecordType(b[i]); t {
		case RecPacket:
			if n < packetRecLen {
				r.err = fmt.Errorf("tracefmt: short packet record (%d bytes)", n)
				return
			}
			r.emit(decodePacket(payload), t, payload)
		case RecDevice:
			if n < deviceRecLen {
				r.err = fmt.Errorf("tracefmt: short device record (%d bytes)", n)
				return
			}
			r.emit(decodeDevice(payload), t, payload)
		case RecLost:
			if n < lostRecLen {
				r.err = fmt.Errorf("tracefmt: short lost record (%d bytes)", n)
				return
			}
			r.emit(decodeLost(payload), t, payload)
		case RecCRC:
			if n < crcRecLen {
				r.err = fmt.Errorf("tracefmt: short crc record (%d bytes)", n)
				return
			}
			if r.lastPayload != nil && !crcMatches(payload, r.lastKind, r.lastPayload) {
				r.err = fmt.Errorf("%w (covering %d-byte type-%d record)",
					ErrCRCMismatch, len(r.lastPayload), r.lastKind)
				return
			}
			r.lastPayload = nil
		default:
			// Self-descriptive framing: skip what we do not understand.
		}
		r.i = end
	}
}

// emit appends a decoded record in strict mode, remembering its payload
// for a following RecCRC. The payload is copied: drain compacts buf.
func (r *StreamReader) emit(rec any, t RecordType, payload []byte) {
	r.out = append(r.out, rec)
	r.rep.Records++
	r.lastKind = t
	r.lastPayload = append([]byte(nil), payload...)
}

// runSalvage mirrors salvageRecords, deferring every judgment that more
// bytes could change: a frame overrunning the buffer waits (it may
// complete), an unknown record whose following boundary cannot be
// verified yet waits, a resync scan pauses where the anchor test needs
// bytes not yet fed. With final set, each pending judgment lands on the
// batch reader's exact branch.
func (r *StreamReader) runSalvage(final bool) {
	b := r.buf
	for {
		if r.resyncing {
			if !r.scanAnchor(final) {
				return
			}
			continue
		}
		i := r.i
		if i == len(b) {
			if final {
				r.releasePending()
			}
			return
		}
		if len(b)-i < 3 {
			if !final {
				return
			}
			// Too short to even frame a record.
			r.releasePending()
			r.rep.Skipped += int64(len(b) - i)
			r.rep.TruncatedTail = true
			r.rep.Damaged++
			r.i = len(b)
			return
		}
		typ := RecordType(b[i])
		n := int(binary.BigEndian.Uint16(b[i+1 : i+3]))
		min := minRecLen(typ)
		if min >= 0 && n < min {
			// A known record claiming less than its fixed payload: the
			// length field (or the type byte) is corrupt. No future byte
			// can fix that — resync now.
			r.startResync(i)
			continue
		}
		end := i + 3 + n
		if end > len(b) {
			if !final {
				return // the frame may complete with the next Feed
			}
			if min >= 0 && n <= min+anchorSlack {
				// A believable record cut off mid-payload: the classic
				// torn tail of an interrupted collection.
				r.releasePending()
				r.rep.Skipped += int64(len(b) - i)
				r.rep.TruncatedTail = true
				r.rep.Damaged++
				r.i = len(b)
				return
			}
			// The claimed length overruns the stream by more than any
			// real record could: corruption, not truncation.
			r.startResync(i)
			continue
		}
		payload := b[i+3 : end]
		switch typ {
		case RecPacket, RecDevice, RecLost:
			r.releasePending()
			switch typ {
			case RecPacket:
				r.pendRec = decodePacket(payload)
			case RecDevice:
				r.pendRec = decodeDevice(payload)
			case RecLost:
				r.pendRec = decodeLost(payload)
			}
			r.pendKind = typ
			r.pendPayload = append([]byte(nil), payload...)
		case RecCRC:
			if r.pendPayload != nil && !crcMatches(payload, r.pendKind, r.pendPayload) {
				// The integrity record disagrees: the held data record
				// never reaches the caller.
				r.pendRec, r.pendPayload = nil, nil
				r.rep.CRCDropped++
				r.rep.Damaged++
			} else {
				r.releasePending()
			}
		default:
			// Unknown type: trust the self-descriptive framing only if
			// it lands somewhere a record could start. The boundary test
			// peeks at the next frame, so it must wait until that frame
			// is decidable.
			ok, decided := r.boundaryAt(end, final)
			if !decided {
				return
			}
			if !ok {
				r.startResync(i)
				continue
			}
		}
		r.i = end
	}
}

// releasePending hands the held data record to the caller: nothing can
// reject it anymore.
func (r *StreamReader) releasePending() {
	if r.pendRec != nil {
		r.out = append(r.out, r.pendRec)
		r.rep.Records++
		r.pendRec, r.pendPayload = nil, nil
	}
}

// boundaryAt evaluates plausibleBoundary(buf, j) if its outcome can no
// longer change with more data, returning (verdict, decided).
func (r *StreamReader) boundaryAt(j int, final bool) (bool, bool) {
	b := r.buf
	if final {
		return plausibleBoundary(b, j), true
	}
	if len(b)-j < 3 {
		// End-of-stream would be a boundary, a partial frame might
		// become one: wait.
		return false, false
	}
	n := int(binary.BigEndian.Uint16(b[j+1 : j+3]))
	if min := minRecLen(RecordType(b[j])); min >= 0 && n < min {
		return false, true // stable: no future byte raises n
	}
	if j+3+n <= len(b) {
		return true, true // stable: the frame fits already
	}
	return false, false // the frame may yet fit: wait
}

// startResync begins a forward scan for a plausible anchor at the byte
// after a framing error, exactly as resyncFrom does. A resync clears
// the CRC chain, so the held record is safe to release.
func (r *StreamReader) startResync(i int) {
	r.releasePending()
	r.resyncing = true
	r.resyncAt = i
	r.resyncJ = i + 1
}

// scanAnchor advances the resync scan. It returns true when the scan
// concluded (anchor found, or final end-of-stream) and parsing can
// resume; false when the anchor test needs bytes not yet fed.
func (r *StreamReader) scanAnchor(final bool) bool {
	b := r.buf
	j := r.resyncJ
	for j < len(b) {
		if len(b)-j < 3 {
			if !final {
				break // a frame could start here once more bytes arrive
			}
			j = len(b)
			break
		}
		min := minRecLen(RecordType(b[j]))
		if min < 0 {
			j++
			continue
		}
		n := int(binary.BigEndian.Uint16(b[j+1 : j+3]))
		if n < min || n > min+anchorSlack {
			j++
			continue
		}
		if j+3+n > len(b) {
			if !final {
				break // the candidate payload may yet arrive in full
			}
			j++
			continue
		}
		if RecordType(b[j]) == RecPacket && b[j+3+8] > 1 {
			j++
			continue
		}
		// Anchor: charge the whole gap as one damaged region.
		r.rep.Skipped += int64(j - r.resyncAt)
		r.rep.Resyncs++
		r.rep.Damaged++
		r.resyncing = false
		r.i = j
		return true
	}
	if final && j == len(b) {
		r.rep.Skipped += int64(j - r.resyncAt)
		r.rep.Resyncs++
		r.rep.Damaged++
		r.resyncing = false
		r.i = j
		return true
	}
	r.resyncJ = j
	return false
}
