package tracefmt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStreamReader holds the streaming salvage parser to its contract:
// on ANY byte sequence, fed in ANY chunking, it must produce exactly
// the records and report SalvageAll produces from the same bytes in one
// piece. The chunk seed varies the feeding pattern so the fuzzer
// explores decision points near chunk boundaries.
func FuzzStreamReader(f *testing.F) {
	var clean bytes.Buffer
	if err := WriteAllOptions(&clean, sampleTrace(), WriterOptions{CRC: true}); err != nil {
		f.Fatal(err)
	}
	f.Add(clean.Bytes(), uint8(1))
	f.Add(clean.Bytes()[:clean.Len()-5], uint8(7))
	for _, name := range []string{"bitflip.trace", "truncated.trace", "unknown_flood.trace"} {
		if data, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
			f.Add(data, uint8(3))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte, chunkSeed uint8) {
		if len(data) > 64<<10 {
			t.Skip("bounding fuzz input size")
		}
		want, wantRep, wantErr := SalvageAll(bytes.NewReader(data))

		r := NewStreamReader(StreamOptions{Salvage: true})
		var recs []any
		chunk := int(chunkSeed%32) + 1
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if err := r.Feed(data[off:end]); err != nil {
				t.Fatalf("Feed: %v", err)
			}
			got, err := r.ReadAvailable()
			recs = append(recs, got...)
			if err != nil {
				if wantErr == nil {
					t.Fatalf("stream failed (%v) where salvage succeeded", err)
				}
				return
			}
		}
		rest, rep, err := r.Finish()
		recs = append(recs, rest...)
		if (err != nil) != (wantErr != nil) {
			t.Fatalf("err=%v, SalvageAll err=%v", err, wantErr)
		}
		if wantErr != nil {
			return
		}
		got := splitRecords(recs)
		if !sameRecords(got, want) {
			t.Fatalf("records diverge: got %d/%d/%d, want %d/%d/%d",
				len(got.Packets), len(got.Devices), len(got.Lost),
				len(want.Packets), len(want.Devices), len(want.Lost))
		}
		if *rep != *wantRep {
			t.Fatalf("report %+v, want %+v", *rep, *wantRep)
		}
	})
}
