package tracefmt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func readFixture(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("fixture %s missing (run go run ./internal/tracefmt/testdata/gen.go): %v", name, err)
	}
	return data
}

func TestSalvageCleanStreamMatchesStrict(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	strict, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tr, rep, err := SalvageAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean stream reported dirty: %s", rep)
	}
	if rep.Records != len(strict.Packets)+len(strict.Devices)+len(strict.Lost) {
		t.Fatalf("records = %d", rep.Records)
	}
	if len(tr.Packets) != len(strict.Packets) || len(tr.Devices) != len(strict.Devices) || len(tr.Lost) != len(strict.Lost) {
		t.Fatalf("salvage diverged from strict parse on a clean stream")
	}
	for i := range strict.Packets {
		if tr.Packets[i] != strict.Packets[i] {
			t.Fatalf("packet %d differs", i)
		}
	}
}

// The acceptance scenario: one record corrupted mid-stream, the report
// counting exactly the damaged region.
func TestSalvageCountsExactDamagedRegion(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Device: "wavelan0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	headerLen := buf.Len()
	const total = 12
	for i := 0; i < total; i++ {
		err := w.WriteDevice(DeviceRecord{At: int64(i) * int64(time.Second), Signal: 18, Quality: 9, Silence: 3})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Smash record 5's length field to 0xFFFF: the frame now claims to
	// overrun the stream, so the reader must hunt for the next boundary.
	const unit = 3 + deviceRecLen
	off := headerLen + 5*unit
	data[off+1], data[off+2] = 0xff, 0xff

	if _, err := ReadAll(bytes.NewReader(data)); err == nil {
		t.Fatal("strict reader must reject the corrupt stream")
	}
	tr, rep, err := SalvageAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Devices) != total-1 || rep.Records != total-1 {
		t.Fatalf("kept %d records, want %d (%s)", rep.Records, total-1, rep)
	}
	// The damaged region is exactly the smashed record: its 3-byte frame
	// plus its payload, nothing more.
	if rep.Skipped != unit {
		t.Fatalf("skipped %d bytes, want exactly %d (%s)", rep.Skipped, unit, rep)
	}
	if rep.Resyncs != 1 || rep.Damaged != 1 {
		t.Fatalf("resyncs=%d damaged=%d, want 1/1", rep.Resyncs, rep.Damaged)
	}
	// Every surviving record is intact.
	for i, d := range tr.Devices {
		want := int64(i) * int64(time.Second)
		if i >= 5 {
			want = int64(i+1) * int64(time.Second)
		}
		if d.At != want {
			t.Fatalf("device %d At=%d, want %d", i, d.At, want)
		}
	}
}

func TestSalvageBitFlipFixture(t *testing.T) {
	data := readFixture(t, "bitflip.trace")
	if _, err := ReadAll(bytes.NewReader(data)); err == nil {
		t.Fatal("strict reader must reject the CRC mismatch")
	}
	tr, rep, err := SalvageAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// The fixture holds 10 CRC-protected packets with one payload bit
	// flipped: the framing survives, so nothing is skipped — the CRC
	// alone catches the damage.
	if rep.Records != 9 || len(tr.Packets) != 9 {
		t.Fatalf("kept %d records, want 9 (%s)", rep.Records, rep)
	}
	if rep.CRCDropped != 1 || rep.Skipped != 0 || rep.Resyncs != 0 {
		t.Fatalf("report = %s, want exactly one crc rejection", rep)
	}
	// Packet 4 (Size 104) is the one that must be gone.
	for _, p := range tr.Packets {
		if p.Size == 104 {
			t.Fatal("the corrupted record survived salvage")
		}
	}
}

func TestSalvageTruncatedFixture(t *testing.T) {
	data := readFixture(t, "truncated.trace")
	if _, err := ReadAll(bytes.NewReader(data)); err == nil {
		t.Fatal("strict reader must reject the torn tail")
	}
	tr, rep, err := SalvageAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 7 || len(tr.Devices) != 7 {
		t.Fatalf("kept %d records, want 7 (%s)", rep.Records, rep)
	}
	if !rep.TruncatedTail {
		t.Fatalf("report = %s, want truncated tail", rep)
	}
	// 3-byte frame + 13 of the final record's 20 payload bytes remain.
	if rep.Skipped != 16 {
		t.Fatalf("skipped %d bytes, want 16 (%s)", rep.Skipped, rep)
	}
}

func TestSalvageUnknownFloodFixture(t *testing.T) {
	data := readFixture(t, "unknown_flood.trace")
	strict, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("the flood is well-formed; strict parse failed: %v", err)
	}
	tr, rep, err := SalvageAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("well-formed extension records reported as damage: %s", rep)
	}
	if len(tr.Packets) != 5 || len(strict.Packets) != 5 {
		t.Fatalf("packets = %d strict / %d salvage, want 5", len(strict.Packets), len(tr.Packets))
	}
}

func TestSalvageGarbageBody(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Device: "d"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(PacketRecord{At: 1, RTT: -1, ICMPType: NoICMP}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Garbage after one good record: the record survives, the garbage is
	// charged to the report.
	buf.Write(bytes.Repeat([]byte{0xfe, 0x37, 0x91}, 40))
	tr, rep, err := SalvageAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) != 1 {
		t.Fatalf("packets = %d, want the one good record", len(tr.Packets))
	}
	if rep.Clean() || rep.Skipped == 0 {
		t.Fatalf("garbage must be reported: %s", rep)
	}
}

func TestSalvageBadHeaderFails(t *testing.T) {
	if _, _, err := SalvageAll(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("an unreadable header cannot be salvaged")
	}
}

func TestCRCRoundTripAndStrictVerify(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAllOptions(&buf, sampleTrace(), WriterOptions{CRC: true}); err != nil {
		t.Fatal(err)
	}
	// A v1-style consumer that ignores CRC records still reads the trace.
	tr, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) != 4 || len(tr.Devices) != 2 || len(tr.Lost) != 1 {
		t.Fatalf("CRC-protected trace misparsed: %d/%d/%d", len(tr.Packets), len(tr.Devices), len(tr.Lost))
	}
	if tr.Packets[0] != sampleTrace().Packets[0] {
		t.Fatal("packet payload corrupted by CRC framing")
	}
}

func TestWriterRejectsOversizedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Device: "d"})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, MaxRecordLen+1)
	if err := w.WriteRaw(RecordType(200), big); err == nil {
		t.Fatal("oversized record must be rejected, not truncated")
	}
	// The stream is not poisoned: a following valid record still writes.
	if err := w.WriteDevice(DeviceRecord{At: 1}); err != nil {
		t.Fatalf("writer poisoned after oversized record: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Devices) != 1 {
		t.Fatalf("devices = %d, want 1", len(tr.Devices))
	}
	// Exactly at the limit is fine.
	if err := w.WriteRaw(RecordType(200), make([]byte, MaxRecordLen)); err != nil {
		t.Fatalf("max-size record rejected: %v", err)
	}
}
