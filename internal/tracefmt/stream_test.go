package tracefmt

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"
)

// streamChunkSizes is the sweep every identity test runs: pathological
// byte-at-a-time, primes that misalign with record framing, and
// whole-buffer.
var streamChunkSizes = []int{1, 2, 3, 7, 17, 64, 1024, 1 << 20}

// feedAll pushes data through a StreamReader in fixed-size chunks,
// calling ReadAvailable after every chunk, and finishes.
func feedAll(t *testing.T, r *StreamReader, data []byte, chunk int) ([]any, *ReadReport, error) {
	t.Helper()
	var recs []any
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if err := r.Feed(data[off:end]); err != nil {
			t.Fatalf("Feed: %v", err)
		}
		got, err := r.ReadAvailable()
		recs = append(recs, got...)
		if err != nil {
			// Sticky strict error: drain nothing more, but Finish still
			// renders the final report.
			rest, rep, ferr := r.Finish()
			return append(recs, rest...), rep, ferr
		}
	}
	rest, rep, err := r.Finish()
	return append(recs, rest...), rep, err
}

// splitRecords sorts a record sequence into the Trace shape.
func splitRecords(recs []any) *Trace {
	t := &Trace{}
	for _, rec := range recs {
		switch v := rec.(type) {
		case PacketRecord:
			t.Packets = append(t.Packets, v)
		case DeviceRecord:
			t.Devices = append(t.Devices, v)
		case LostRecord:
			t.Lost = append(t.Lost, v)
		}
	}
	return t
}

func sameRecords(a, b *Trace) bool {
	return len(a.Packets) == len(b.Packets) && len(a.Devices) == len(b.Devices) && len(a.Lost) == len(b.Lost) &&
		(len(a.Packets) == 0 || reflect.DeepEqual(a.Packets, b.Packets)) &&
		(len(a.Devices) == 0 || reflect.DeepEqual(a.Devices, b.Devices)) &&
		(len(a.Lost) == 0 || reflect.DeepEqual(a.Lost, b.Lost))
}

// assertMatchesSalvage drives the salvaging StreamReader over data at
// every chunk size and demands the records and report SalvageAll
// produces from the same bytes.
func assertMatchesSalvage(t *testing.T, name string, data []byte) {
	t.Helper()
	want, wantRep, wantErr := SalvageAll(bytes.NewReader(data))
	for _, chunk := range streamChunkSizes {
		r := NewStreamReader(StreamOptions{Salvage: true})
		recs, rep, err := feedAll(t, r, data, chunk)
		if (err != nil) != (wantErr != nil) {
			t.Fatalf("%s chunk=%d: err=%v, SalvageAll err=%v", name, chunk, err, wantErr)
		}
		if wantErr != nil {
			continue // header unreadable both ways; nothing else to compare
		}
		if hdr, ok := r.Header(); !ok || hdr != want.Header {
			t.Fatalf("%s chunk=%d: header=%+v ok=%v, want %+v", name, chunk, hdr, ok, want.Header)
		}
		got := splitRecords(recs)
		if !sameRecords(got, want) {
			t.Fatalf("%s chunk=%d: records diverge: got %d/%d/%d, want %d/%d/%d",
				name, chunk, len(got.Packets), len(got.Devices), len(got.Lost),
				len(want.Packets), len(want.Devices), len(want.Lost))
		}
		if *rep != *wantRep {
			t.Fatalf("%s chunk=%d: report %+v, want %+v", name, chunk, *rep, *wantRep)
		}
	}
}

func TestStreamReaderMatchesSalvageOnFixtures(t *testing.T) {
	for _, name := range []string{"bitflip.trace", "truncated.trace", "unknown_flood.trace"} {
		assertMatchesSalvage(t, name, readFixture(t, name))
	}
}

func TestStreamReaderMatchesSalvageOnCleanStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	assertMatchesSalvage(t, "clean", buf.Bytes())

	var crc bytes.Buffer
	if err := WriteAllOptions(&crc, sampleTrace(), WriterOptions{CRC: true}); err != nil {
		t.Fatal(err)
	}
	assertMatchesSalvage(t, "clean+crc", crc.Bytes())
}

func TestStreamReaderMatchesSalvageOnDamage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAllOptions(&buf, sampleTrace(), WriterOptions{CRC: true}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := map[string]func([]byte) []byte{
		"payload-flip": func(b []byte) []byte {
			b[len(b)/2] ^= 0x40
			return b
		},
		"length-smash": func(b []byte) []byte {
			b[len(b)/3] = 0xff
			b[len(b)/3+1] = 0xff
			return b
		},
		"torn-tail": func(b []byte) []byte { return b[:len(b)-7] },
		"mid-cut":   func(b []byte) []byte { return b[:2*len(b)/3] },
	}
	for name, mutate := range cases {
		assertMatchesSalvage(t, name, mutate(append([]byte(nil), data...)))
	}
}

// The satellite's core promise: a truncated tail mid-stream is "wait",
// not "corrupt". The reader must hand over everything before the tear,
// report no damage, and resume seamlessly when the rest arrives.
func TestStreamReaderTruncatedTailWaitsForMore(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cut := len(data) - 9 // mid-record

	r := NewStreamReader(StreamOptions{Salvage: true})
	if err := r.Feed(data[:cut]); err != nil {
		t.Fatal(err)
	}
	first, err := r.ReadAvailable()
	if err != nil {
		t.Fatalf("ReadAvailable on truncated tail: %v", err)
	}
	if r.Report().TruncatedTail || r.Report().Damaged != 0 {
		t.Fatalf("mid-stream tail misjudged as damage: %+v", r.Report())
	}
	if r.Buffered() == 0 {
		t.Fatal("the partial record should still be buffered")
	}
	if err := r.Feed(data[cut:]); err != nil {
		t.Fatal(err)
	}
	rest, rep, err := r.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("reassembled stream reported dirty: %+v", *rep)
	}
	want, _ := ReadAll(bytes.NewReader(data))
	if got := splitRecords(append(first, rest...)); !sameRecords(got, want) {
		t.Fatal("reassembled records diverge from a clean parse")
	}
}

// Strict mode mirrors Reader.Next: records stream out until the framing
// error, which then sticks.
func TestStreamReaderStrictMatchesReader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAllOptions(&buf, sampleTrace(), WriterOptions{CRC: true}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x40 // flip a payload bit: the CRC must catch it

	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var wantRecs []any
	var wantErr error
	for {
		rec, err := rd.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				wantErr = err
			}
			break
		}
		wantRecs = append(wantRecs, rec)
	}
	if wantErr == nil {
		t.Fatal("fixture should trip the CRC check")
	}

	for _, chunk := range streamChunkSizes {
		r := NewStreamReader(StreamOptions{})
		recs, _, err := feedAll(t, r, data, chunk)
		if err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("chunk=%d: err=%v, want %v", chunk, err, wantErr)
		}
		if len(recs) != len(wantRecs) {
			t.Fatalf("chunk=%d: %d records before the error, want %d", chunk, len(recs), len(wantRecs))
		}
	}
}

func TestStreamReaderStrictCleanStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	want, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range streamChunkSizes {
		r := NewStreamReader(StreamOptions{})
		recs, _, err := feedAll(t, r, buf.Bytes(), chunk)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if got := splitRecords(recs); !sameRecords(got, want) {
			t.Fatalf("chunk=%d: records diverge from ReadAll", chunk)
		}
	}
}

func TestStreamReaderBadHeader(t *testing.T) {
	r := NewStreamReader(StreamOptions{Salvage: true})
	if err := r.Feed([]byte("not a trace, definitely")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAvailable(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err=%v, want ErrBadMagic", err)
	}
	if _, _, err := r.Finish(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("Finish err=%v, want ErrBadMagic", err)
	}
}

func TestStreamReaderAfterFinish(t *testing.T) {
	r := NewStreamReader(StreamOptions{Salvage: true})
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if err := r.Feed(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := r.Feed([]byte{1}); !errors.Is(err, ErrStreamFinished) {
		t.Fatalf("Feed after Finish: %v", err)
	}
	if _, err := r.ReadAvailable(); !errors.Is(err, ErrStreamFinished) {
		t.Fatalf("ReadAvailable after Finish: %v", err)
	}
}

// A growing stream must never have unbounded memory pinned in the
// reader: after draining, only the undecidable tail stays buffered.
func TestStreamReaderBuffersOnlyTail(t *testing.T) {
	r := NewStreamReader(StreamOptions{Salvage: true})
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Device: "wavelan0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.Feed(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAvailable(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		var rec bytes.Buffer
		wr, _ := NewWriter(&rec, Header{})
		_ = wr.WritePacket(PacketRecord{At: int64(i) * int64(time.Millisecond), Size: 60, RTT: -1})
		_ = wr.Flush()
		// Strip the empty file header (magic+version+strings+start = 18
		// bytes) the throwaway writer added.
		if err := r.Feed(rec.Bytes()[18:]); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ReadAvailable(); err != nil {
			t.Fatal(err)
		}
		if got := r.Buffered(); got > 3+packetRecLen {
			t.Fatalf("record %d: %d bytes pinned; the drained prefix must be released", i, got)
		}
	}
}

// A resync scan over a garbage flood must not pin the flood in memory:
// drain compacts the scanned-and-rejected gap as the scan advances, so
// the buffered tail stays near one chunk no matter how long the scan
// runs without landing on an anchor.
func TestStreamReaderResyncMemoryBounded(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	// A packet record claiming a 0-byte payload: a framing error no
	// future byte can repair, so the reader resyncs. The flood is all
	// one unknown record type, which the anchor test rejects forever.
	data := append(buf.Bytes(), byte(RecPacket), 0, 0)
	flood := bytes.Repeat([]byte{0xAA}, 4<<20)

	r := NewStreamReader(StreamOptions{Salvage: true})
	const chunk = 64 << 10
	if err := r.Feed(data); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAvailable(); err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(flood); off += chunk {
		if err := r.Feed(flood[off : off+chunk]); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ReadAvailable(); err != nil {
			t.Fatal(err)
		}
		if got := r.Buffered(); got > chunk+1024 {
			t.Fatalf("offset %d: %d bytes pinned during resync; scan garbage must be compacted", off, got)
		}
	}
	_, rep, err := r.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if rep.Resyncs == 0 || rep.Skipped < int64(len(flood)) {
		t.Fatalf("report %+v: want the whole flood charged to one resync gap", *rep)
	}
}

// The compaction must not change what the reader decides: a flood that
// ends in a real anchor yields the same records and report as SalvageAll
// over the same bytes, at every chunk size.
func TestStreamReaderResyncFloodMatchesSalvage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	data := append(buf.Bytes(), byte(RecPacket), 0, 0)
	data = append(data, bytes.Repeat([]byte{0xAA}, 128<<10)...)
	var tail bytes.Buffer
	if err := WriteAll(&tail, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	// Re-append the sample records (minus the duplicate header) so the
	// scan has a genuine anchor to land on after the flood.
	data = append(data, tail.Bytes()[18+len("wavelan0")+len(sampleTrace().Header.Comment):]...)
	assertMatchesSalvage(t, "resync-flood", data)
}
