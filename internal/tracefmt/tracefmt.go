// Package tracefmt defines the collected-trace file format: a
// self-descriptive stream of typed, length-prefixed records (in the spirit
// of the authors' RFC 2041 mobile network tracing format). A trace holds
// packet records for every datagram in or out of the traced device,
// periodic device-characteristic records (signal level, signal quality,
// silence level), and lost-record markers emitted when the collection
// buffer overruns.
//
// Readers skip record types they do not understand, so the format can be
// extended without breaking old tools.
package tracefmt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

func float32bits(f float32) uint32     { return math.Float32bits(f) }
func float32frombits(b uint32) float32 { return math.Float32frombits(b) }

// Magic identifies a trace file ("TMT1").
const Magic uint32 = 0x544d5431

// MagicLen is the number of leading bytes IsMagic needs to sniff a file.
const MagicLen = 4

// IsMagic reports whether prefix opens a collected-trace stream: at least
// MagicLen bytes beginning with the big-endian Magic. Consumers that
// accept either trace format (emud's trace store, notably) sniff with it
// before choosing a parser.
func IsMagic(prefix []byte) bool {
	return len(prefix) >= MagicLen && binary.BigEndian.Uint32(prefix[:MagicLen]) == Magic
}

// Version is the current format version.
const Version uint16 = 1

// RecordType tags each record in the stream.
type RecordType uint8

// Record types. Unknown types are skipped by Reader.
//
// RecCRC is the format-v2 integrity record: it follows a data record and
// carries the covered record's type plus an IEEE CRC32 of its payload.
// v1 readers ignore it through the skip-unknown framing, so CRC-protected
// traces stay readable by every older tool.
const (
	RecPacket RecordType = 1
	RecDevice RecordType = 2
	RecLost   RecordType = 3
	RecCRC    RecordType = 4
)

// Direction of a traced packet relative to the traced host.
type Direction uint8

// Packet directions.
const (
	DirOut Direction = 0
	DirIn  Direction = 1
)

func (d Direction) String() string {
	if d == DirOut {
		return "out"
	}
	return "in"
}

// NoICMP marks a packet record that carries no ICMP information.
const NoICMP = 0xff

// Header opens every trace file.
type Header struct {
	// Device names the traced network device (e.g. "wavelan0").
	Device string
	// Start is the virtual-clock origin of the trace in nanoseconds.
	Start int64
	// Comment is free-form metadata (scenario name, trial number).
	Comment string
}

// PacketRecord describes one traced packet (Section 3.1.1): timing, size,
// protocol, and — for the known ping workload — the echo id, sequence
// number, and the round-trip time computed from the timestamp carried in
// the ECHOREPLY payload. All timestamps come from the single traced host,
// so no clock synchronization is assumed.
type PacketRecord struct {
	// At is when the packet passed the device, in virtual nanoseconds.
	At int64
	// Dir is the packet's direction.
	Dir Direction
	// Size is the IP datagram size in bytes.
	Size uint16
	// Protocol is the IP protocol number.
	Protocol uint8

	// ICMPType is the ICMP message type, or NoICMP.
	ICMPType uint8
	// ID and Seq are the echo identifier and sequence number.
	ID, Seq uint16
	// RTT is the round-trip time for ECHOREPLY packets (computed by the
	// tracer from the payload timestamp), or -1.
	RTT int64

	// SrcPort and DstPort are transport ports for UDP/TCP packets.
	SrcPort, DstPort uint16
	// TCPFlags holds the TCP control bits for TCP packets.
	TCPFlags uint8
}

// Time returns the record timestamp as a duration since the virtual epoch.
func (r PacketRecord) Time() time.Duration { return time.Duration(r.At) }

// DeviceRecord is a periodic sample of device-reported characteristics.
type DeviceRecord struct {
	At                       int64
	Signal, Quality, Silence float32
}

// Time returns the record timestamp as a duration since the virtual epoch.
func (r DeviceRecord) Time() time.Duration { return time.Duration(r.At) }

// LostRecord reports that Count records of type Of were overwritten in the
// collection buffer before the daemon drained them.
type LostRecord struct {
	At    int64
	Count uint32
	Of    RecordType
}

// Trace is a fully parsed trace file.
type Trace struct {
	Header  Header
	Packets []PacketRecord
	Devices []DeviceRecord
	Lost    []LostRecord
}

// TotalLost sums the lost-record counts.
func (t *Trace) TotalLost() int {
	n := 0
	for _, l := range t.Lost {
		n += int(l.Count)
	}
	return n
}

// Duration returns the span from the first to the last packet record.
func (t *Trace) Duration() time.Duration {
	if len(t.Packets) == 0 {
		return 0
	}
	return time.Duration(t.Packets[len(t.Packets)-1].At - t.Packets[0].At)
}

// WriterOptions parameterizes a Writer.
type WriterOptions struct {
	// CRC appends a RecCRC integrity record after every data record, so
	// salvaging readers can detect payload corruption that leaves the
	// framing intact. Adds 8 bytes per record.
	CRC bool
}

// Writer emits a trace stream.
type Writer struct {
	w    *bufio.Writer
	opts WriterOptions
	err  error
}

// NewWriter writes the file header and returns a record writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	return NewWriterOptions(w, h, WriterOptions{})
}

// NewWriterOptions writes the file header and returns a record writer with
// explicit options.
func NewWriterOptions(w io.Writer, h Header, opts WriterOptions) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.BigEndian, Magic); err != nil {
		return nil, err
	}
	if err := binary.Write(bw, binary.BigEndian, Version); err != nil {
		return nil, err
	}
	if err := writeString(bw, h.Device); err != nil {
		return nil, err
	}
	if err := binary.Write(bw, binary.BigEndian, h.Start); err != nil {
		return nil, err
	}
	if err := writeString(bw, h.Comment); err != nil {
		return nil, err
	}
	return &Writer{w: bw, opts: opts}, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > 0xffff {
		return errors.New("tracefmt: string too long")
	}
	if err := binary.Write(w, binary.BigEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// MaxRecordLen is the largest payload one record can frame (the length
// field is 16 bits).
const MaxRecordLen = 0xffff

// ErrRecordTooLarge is returned for a payload that does not fit the
// 16-bit length field. Nothing is written and the writer stays usable:
// the caller chose a bad record, the stream is not at fault.
var ErrRecordTooLarge = errors.New("tracefmt: record payload exceeds frame limit")

func (w *Writer) record(t RecordType, payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(payload) > MaxRecordLen {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrRecordTooLarge, len(payload), MaxRecordLen)
	}
	if err := w.w.WriteByte(byte(t)); err != nil {
		w.err = err
		return err
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(payload)))
	if _, err := w.w.Write(lenBuf[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = err
		return err
	}
	if w.opts.CRC && t != RecCRC {
		return w.writeCRC(t, payload)
	}
	return nil
}

// WriteRaw appends a record of an arbitrary (possibly extension) type.
// Like every record writer it rejects payloads that do not fit the
// 16-bit length frame with ErrRecordTooLarge.
func (w *Writer) WriteRaw(t RecordType, payload []byte) error {
	return w.record(t, payload)
}

const crcRecLen = 1 + 4

// writeCRC appends the integrity record covering the data record just
// written: its type plus an IEEE CRC32 of its payload.
func (w *Writer) writeCRC(covered RecordType, payload []byte) error {
	var b [crcRecLen]byte
	b[0] = byte(covered)
	binary.BigEndian.PutUint32(b[1:5], crc32.ChecksumIEEE(payload))
	return w.record(RecCRC, b[:])
}

const packetRecLen = 8 + 1 + 2 + 1 + 1 + 2 + 2 + 8 + 2 + 2 + 1

// WritePacket appends a packet record.
func (w *Writer) WritePacket(r PacketRecord) error {
	var b [packetRecLen]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(r.At))
	b[8] = byte(r.Dir)
	binary.BigEndian.PutUint16(b[9:11], r.Size)
	b[11] = r.Protocol
	b[12] = r.ICMPType
	binary.BigEndian.PutUint16(b[13:15], r.ID)
	binary.BigEndian.PutUint16(b[15:17], r.Seq)
	binary.BigEndian.PutUint64(b[17:25], uint64(r.RTT))
	binary.BigEndian.PutUint16(b[25:27], r.SrcPort)
	binary.BigEndian.PutUint16(b[27:29], r.DstPort)
	b[29] = r.TCPFlags
	return w.record(RecPacket, b[:])
}

const deviceRecLen = 8 + 4 + 4 + 4

// WriteDevice appends a device-characteristics record.
func (w *Writer) WriteDevice(r DeviceRecord) error {
	var b [deviceRecLen]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(r.At))
	binary.BigEndian.PutUint32(b[8:12], float32bits(r.Signal))
	binary.BigEndian.PutUint32(b[12:16], float32bits(r.Quality))
	binary.BigEndian.PutUint32(b[16:20], float32bits(r.Silence))
	return w.record(RecDevice, b[:])
}

const lostRecLen = 8 + 4 + 1

// WriteLost appends a lost-records marker.
func (w *Writer) WriteLost(r LostRecord) error {
	var b [lostRecLen]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(r.At))
	binary.BigEndian.PutUint32(b[8:12], r.Count)
	b[12] = byte(r.Of)
	return w.record(RecLost, b[:])
}

// Flush writes buffered records through to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Errors from Reader.
var (
	ErrBadMagic    = errors.New("tracefmt: bad magic")
	ErrBadVersion  = errors.New("tracefmt: unsupported version")
	ErrCRCMismatch = errors.New("tracefmt: record payload fails its CRC")
)

// Reader parses a trace stream.
type Reader struct {
	r      *bufio.Reader
	header Header

	// lastKind/lastPayload remember the most recent data record so a
	// following RecCRC can be verified against it.
	lastKind    RecordType
	lastPayload []byte
}

// NewReader validates the header and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.BigEndian, &magic); err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	var ver uint16
	if err := binary.Read(br, binary.BigEndian, &ver); err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	var h Header
	var err error
	if h.Device, err = readString(br); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.BigEndian, &h.Start); err != nil {
		return nil, err
	}
	if h.Comment, err = readString(br); err != nil {
		return nil, err
	}
	return &Reader{r: br, header: h}, nil
}

// Header returns the file header.
func (r *Reader) Header() Header { return r.header }

// Next returns the next record as one of PacketRecord, DeviceRecord, or
// LostRecord. Unknown record types are skipped; RecCRC records are
// verified against the preceding data record (a mismatch is an error) but
// never returned. io.EOF signals a clean end.
func (r *Reader) Next() (any, error) {
	for {
		t, err := r.r.ReadByte()
		if err != nil {
			return nil, err // io.EOF at a record boundary is a clean end
		}
		var lenBuf [2]byte
		if _, err := io.ReadFull(r.r, lenBuf[:]); err != nil {
			return nil, unexpectedEOF(err)
		}
		n := int(binary.BigEndian.Uint16(lenBuf[:]))
		payload := make([]byte, n)
		if _, err := io.ReadFull(r.r, payload); err != nil {
			return nil, unexpectedEOF(err)
		}
		switch RecordType(t) {
		case RecPacket:
			if n < packetRecLen {
				return nil, fmt.Errorf("tracefmt: short packet record (%d bytes)", n)
			}
			r.remember(RecPacket, payload)
			return decodePacket(payload), nil
		case RecDevice:
			if n < deviceRecLen {
				return nil, fmt.Errorf("tracefmt: short device record (%d bytes)", n)
			}
			r.remember(RecDevice, payload)
			return decodeDevice(payload), nil
		case RecLost:
			if n < lostRecLen {
				return nil, fmt.Errorf("tracefmt: short lost record (%d bytes)", n)
			}
			r.remember(RecLost, payload)
			return decodeLost(payload), nil
		case RecCRC:
			if n < crcRecLen {
				return nil, fmt.Errorf("tracefmt: short crc record (%d bytes)", n)
			}
			// A CRC with no preceding data record (e.g. a stream resumed
			// mid-file) has nothing to check and is skipped.
			if r.lastPayload != nil && !crcMatches(payload, r.lastKind, r.lastPayload) {
				return nil, fmt.Errorf("%w (covering %d-byte type-%d record)",
					ErrCRCMismatch, len(r.lastPayload), r.lastKind)
			}
			r.lastPayload = nil
			continue
		default:
			// Self-descriptive framing: skip what we do not understand.
			continue
		}
	}
}

// remember retains a data record for verification by a following RecCRC.
func (r *Reader) remember(t RecordType, payload []byte) {
	r.lastKind, r.lastPayload = t, payload
}

// crcMatches checks a RecCRC payload against the record it covers.
func crcMatches(crcPayload []byte, kind RecordType, covered []byte) bool {
	return RecordType(crcPayload[0]) == kind &&
		binary.BigEndian.Uint32(crcPayload[1:5]) == crc32.ChecksumIEEE(covered)
}

func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("tracefmt: truncated record: %w", io.ErrUnexpectedEOF)
	}
	return err
}

func decodePacket(b []byte) PacketRecord {
	return PacketRecord{
		At:       int64(binary.BigEndian.Uint64(b[0:8])),
		Dir:      Direction(b[8]),
		Size:     binary.BigEndian.Uint16(b[9:11]),
		Protocol: b[11],
		ICMPType: b[12],
		ID:       binary.BigEndian.Uint16(b[13:15]),
		Seq:      binary.BigEndian.Uint16(b[15:17]),
		RTT:      int64(binary.BigEndian.Uint64(b[17:25])),
		SrcPort:  binary.BigEndian.Uint16(b[25:27]),
		DstPort:  binary.BigEndian.Uint16(b[27:29]),
		TCPFlags: b[29],
	}
}

func decodeDevice(b []byte) DeviceRecord {
	return DeviceRecord{
		At:      int64(binary.BigEndian.Uint64(b[0:8])),
		Signal:  float32frombits(binary.BigEndian.Uint32(b[8:12])),
		Quality: float32frombits(binary.BigEndian.Uint32(b[12:16])),
		Silence: float32frombits(binary.BigEndian.Uint32(b[16:20])),
	}
}

func decodeLost(b []byte) LostRecord {
	return LostRecord{
		At:    int64(binary.BigEndian.Uint64(b[0:8])),
		Count: binary.BigEndian.Uint32(b[8:12]),
		Of:    RecordType(b[12]),
	}
}

// ReadAll parses an entire trace.
func ReadAll(r io.Reader) (*Trace, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Header: rd.Header()}
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		switch v := rec.(type) {
		case PacketRecord:
			t.Packets = append(t.Packets, v)
		case DeviceRecord:
			t.Devices = append(t.Devices, v)
		case LostRecord:
			t.Lost = append(t.Lost, v)
		}
	}
}

// WriteAll serializes an entire trace.
func WriteAll(w io.Writer, t *Trace) error {
	return WriteAllOptions(w, t, WriterOptions{})
}

// WriteAllOptions serializes an entire trace with explicit writer options
// (notably per-record CRC protection).
func WriteAllOptions(w io.Writer, t *Trace, opts WriterOptions) error {
	wr, err := NewWriterOptions(w, t.Header, opts)
	if err != nil {
		return err
	}
	for _, p := range t.Packets {
		if err := wr.WritePacket(p); err != nil {
			return err
		}
	}
	for _, d := range t.Devices {
		if err := wr.WriteDevice(d); err != nil {
			return err
		}
	}
	for _, l := range t.Lost {
		if err := wr.WriteLost(l); err != nil {
			return err
		}
	}
	return wr.Flush()
}
