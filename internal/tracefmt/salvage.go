// Salvage mode: parsing a field-collected trace that took damage — a
// corrupted sector, a truncated upload, a collection daemon killed
// mid-write. The strict Reader aborts at the first framing error; the
// salvaging reader instead resynchronizes by scanning forward for the
// next plausible record boundary, keeps everything that still decodes,
// and returns a ReadReport accounting exactly for what was lost. On a
// clean stream it returns byte-for-byte what the strict reader would.
package tracefmt

import (
	"encoding/binary"
	"fmt"
	"io"
)

// ReadReport accounts for a salvaging parse.
type ReadReport struct {
	// Records counts the data records decoded and kept.
	Records int
	// Damaged counts records lost to corruption: resync regions, a
	// truncated final record, and CRC-rejected records.
	Damaged int
	// Skipped is the total bytes discarded while hunting for a boundary
	// (including a truncated tail).
	Skipped int64
	// Resyncs counts forward scans performed after a framing error.
	Resyncs int
	// CRCDropped counts records rejected because their integrity record
	// disagreed with their payload.
	CRCDropped int
	// TruncatedTail reports that the stream ended mid-record.
	TruncatedTail bool
}

// Clean reports whether the parse salvaged nothing — the stream was
// perfectly well-formed.
func (r ReadReport) Clean() bool {
	return r.Damaged == 0 && r.Skipped == 0 && r.Resyncs == 0 &&
		r.CRCDropped == 0 && !r.TruncatedTail
}

func (r ReadReport) String() string {
	if r.Clean() {
		return fmt.Sprintf("clean: %d records", r.Records)
	}
	s := fmt.Sprintf("salvaged %d records; %d damaged, %d bytes skipped across %d resyncs, %d crc-rejected",
		r.Records, r.Damaged, r.Skipped, r.Resyncs, r.CRCDropped)
	if r.TruncatedTail {
		s += ", truncated tail"
	}
	return s
}

// SalvageAll parses a possibly damaged trace, recovering every record it
// can. The error is non-nil only when the header itself is unreadable
// (nothing after it can be trusted without the framing the header
// anchors) or the underlying reader fails.
func SalvageAll(r io.Reader) (*Trace, *ReadReport, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	body, err := io.ReadAll(rd.r)
	if err != nil {
		return nil, nil, err
	}
	t := &Trace{Header: rd.Header()}
	rep := &ReadReport{}
	salvageRecords(body, t, rep)
	return t, rep, nil
}

// minRecLen returns the minimum payload length for a known record type,
// or -1 for unknown types.
func minRecLen(t RecordType) int {
	switch t {
	case RecPacket:
		return packetRecLen
	case RecDevice:
		return deviceRecLen
	case RecLost:
		return lostRecLen
	case RecCRC:
		return crcRecLen
	default:
		return -1
	}
}

// anchorSlack is how much longer than its minimum a record may claim to
// be and still anchor a resync. The writer emits exact-length payloads;
// the slack tolerates forward-compatible extensions without letting a
// corrupted length field masquerade as a boundary.
const anchorSlack = 64

// plausibleAnchor reports whether offset j looks like the start of a real
// record: a known type, a length within the type's plausible window, the
// whole payload present, and — for packet records — a sane direction
// byte. Used only to end a resync scan, so it is deliberately stricter
// than what the sequential parser accepts.
func plausibleAnchor(b []byte, j int) bool {
	if len(b)-j < 3 {
		return false
	}
	min := minRecLen(RecordType(b[j]))
	if min < 0 {
		return false
	}
	n := int(binary.BigEndian.Uint16(b[j+1 : j+3]))
	if n < min || n > min+anchorSlack || j+3+n > len(b) {
		return false
	}
	if RecordType(b[j]) == RecPacket && b[j+3+8] > 1 {
		return false
	}
	return true
}

// plausibleBoundary reports whether offset j could be a record boundary
// at all: end of stream, or a frame that fits the remaining bytes. Used
// to sanity-check the framing of unknown record types before trusting it
// — deliberately looser than plausibleAnchor, because rejecting a frame
// the strict reader would accept must never happen.
func plausibleBoundary(b []byte, j int) bool {
	if j == len(b) {
		return true
	}
	if len(b)-j < 3 {
		return false
	}
	n := int(binary.BigEndian.Uint16(b[j+1 : j+3]))
	if min := minRecLen(RecordType(b[j])); min >= 0 && n < min {
		return false
	}
	return j+3+n <= len(b)
}

// resyncFrom scans forward from the byte after a framing error until a
// plausible anchor (or the end of the stream), charging the gap to the
// report as exactly one damaged region.
func resyncFrom(b []byte, i int, rep *ReadReport) int {
	j := i + 1
	for j < len(b) && !plausibleAnchor(b, j) {
		j++
	}
	rep.Skipped += int64(j - i)
	rep.Resyncs++
	rep.Damaged++
	return j
}

// salvageRecords runs the salvaging record loop over the post-header
// bytes, appending recovered records to t and accounting in rep.
func salvageRecords(b []byte, t *Trace, rep *ReadReport) {
	// lastKind/lastPayload mirror the strict reader's CRC bookkeeping.
	var lastKind RecordType
	var lastPayload []byte
	i := 0
	for i < len(b) {
		if len(b)-i < 3 {
			// Too short to even frame a record.
			rep.Skipped += int64(len(b) - i)
			rep.TruncatedTail = true
			rep.Damaged++
			return
		}
		typ := RecordType(b[i])
		n := int(binary.BigEndian.Uint16(b[i+1 : i+3]))
		min := minRecLen(typ)
		if min >= 0 && n < min {
			// A known record claiming less than its fixed payload: the
			// length field (or the type byte) is corrupt.
			i = resyncFrom(b, i, rep)
			lastPayload = nil
			continue
		}
		end := i + 3 + n
		if end > len(b) {
			if min >= 0 && n <= min+anchorSlack {
				// A believable record cut off mid-payload: the classic
				// torn tail of an interrupted collection.
				rep.Skipped += int64(len(b) - i)
				rep.TruncatedTail = true
				rep.Damaged++
				return
			}
			// The claimed length overruns the stream by more than any
			// real record could: corruption, not truncation.
			i = resyncFrom(b, i, rep)
			lastPayload = nil
			continue
		}
		payload := b[i+3 : end]
		switch typ {
		case RecPacket:
			t.Packets = append(t.Packets, decodePacket(payload))
			rep.Records++
			lastKind, lastPayload = typ, payload
		case RecDevice:
			t.Devices = append(t.Devices, decodeDevice(payload))
			rep.Records++
			lastKind, lastPayload = typ, payload
		case RecLost:
			t.Lost = append(t.Lost, decodeLost(payload))
			rep.Records++
			lastKind, lastPayload = typ, payload
		case RecCRC:
			if lastPayload != nil && !crcMatches(payload, lastKind, lastPayload) {
				dropLast(t, lastKind)
				rep.Records--
				rep.CRCDropped++
				rep.Damaged++
			}
			lastPayload = nil
		default:
			// Unknown type: trust the self-descriptive framing only if it
			// lands somewhere a record could start. A corrupted type byte
			// drags a garbage length with it; following that length would
			// desynchronize the whole remainder of the stream.
			if !plausibleBoundary(b, end) {
				i = resyncFrom(b, i, rep)
				lastPayload = nil
				continue
			}
		}
		i = end
	}
}

// dropLast removes the most recently appended record of the given kind —
// its CRC just proved the payload lied.
func dropLast(t *Trace, kind RecordType) {
	switch kind {
	case RecPacket:
		t.Packets = t.Packets[:len(t.Packets)-1]
	case RecDevice:
		t.Devices = t.Devices[:len(t.Devices)-1]
	case RecLost:
		t.Lost = t.Lost[:len(t.Lost)-1]
	}
}
