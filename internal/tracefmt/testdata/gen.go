//go:build ignore

// gen regenerates the committed corrupt-trace fixtures and the seed
// corpus for the ingest-edge fuzz targets. Run from the repository root:
//
//	go run ./internal/tracefmt/testdata/gen.go
//
// The fixtures are deterministic; the salvage tests hard-code the kept /
// skipped counts this construction produces.
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"tracemod/internal/tracefmt"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	td := filepath.Join(root, "internal/tracefmt/testdata")

	bitflip := bitflipTrace()
	truncated := truncatedTrace()
	flood := unknownFloodTrace()
	write(filepath.Join(td, "bitflip.trace"), bitflip)
	write(filepath.Join(td, "truncated.trace"), truncated)
	write(filepath.Join(td, "unknown_flood.trace"), flood)

	// Fuzz seed corpora. go test runs these as ordinary seed cases on
	// every `go test` invocation, so the committed corpus rides in the
	// race/chaos matrix for free.
	corpus(filepath.Join(td, "fuzz/FuzzReader"), map[string][]byte{
		"valid":    validTrace(),
		"bitflip":  bitflip,
		"truncated": truncated,
		"flood":    flood,
	})
	corpus(filepath.Join(root, "internal/distill/testdata/fuzz/FuzzDistill"), map[string][]byte{
		"workload": workloadTrace(),
		"bitflip":  bitflip,
	})
	corpus(filepath.Join(root, "internal/replay/testdata/fuzz/FuzzReplayParse"), map[string][]byte{
		"valid":   []byte("#tracemod-replay v1\n1000000 2000 5000.000 800.000 0.010000\n1000000 2000 5000.000 800.000 0.000000\n"),
		"nan":     []byte("#tracemod-replay v1\n1000000 2000 NaN Inf -0.5\n1000000 -5 5000.0 800.0 2.0\n"),
		"garbage": []byte("#tracemod-replay v1\nnot numbers at all\n1000000 2000 5000.0 800.0 0.01\n"),
	})
	fmt.Println("fixtures and fuzz corpus regenerated")
}

func write(path string, data []byte) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		panic(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
}

func corpus(dir string, seeds map[string][]byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	for name, data := range seeds {
		path := filepath.Join(dir, name)
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

func packetAt(i int) tracefmt.PacketRecord {
	return tracefmt.PacketRecord{
		At: int64(i) * int64(time.Millisecond), Dir: tracefmt.DirOut,
		Size: uint16(100 + i), Protocol: 17, ICMPType: tracefmt.NoICMP,
		SrcPort: 700, DstPort: 2049, RTT: -1,
	}
}

// bitflipTrace is a CRC-protected stream of 10 packet records with one
// bit flipped inside packet 4's Size field: the framing survives, the
// CRC does not. Expected salvage: 9 records kept, 1 crc-rejected.
func bitflipTrace() []byte {
	h := tracefmt.Header{Device: "wavelan0", Comment: "fixture: payload bit flip"}
	// Measure the header by flushing before any record is written.
	var buf bytes.Buffer
	w, err := tracefmt.NewWriterOptions(&buf, h, tracefmt.WriterOptions{CRC: true})
	if err != nil {
		panic(err)
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	headerLen := buf.Len()
	for i := 0; i < 10; i++ {
		if err := w.WritePacket(packetAt(i)); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	data := buf.Bytes()
	// Each record unit: packet (3+30) followed by its CRC record (3+8-3=8
	// total: type+len+5). Flip a bit in record 4's Size low byte
	// (payload offset 10).
	const unit = (3 + 30) + (3 + 5)
	off := headerLen + 4*unit + 3 + 10
	data[off] ^= 0x20
	return data
}

// truncatedTrace is 8 device records with the last one cut off
// mid-payload. Expected salvage: 7 records kept, 16 tail bytes skipped.
func truncatedTrace() []byte {
	var buf bytes.Buffer
	w, err := tracefmt.NewWriter(&buf, tracefmt.Header{Device: "wavelan0", Comment: "fixture: torn tail"})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 8; i++ {
		err := w.WriteDevice(tracefmt.DeviceRecord{
			At: int64(i) * int64(time.Second), Signal: 18.5, Quality: 9.25, Silence: 3,
		})
		if err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	data := buf.Bytes()
	return data[:len(data)-7] // leaves 3+13 bytes of the final 3+20-byte record
}

// unknownFloodTrace interleaves 5 packet records with 20 unknown-type
// extension records of varying sizes: every reader must skip the flood
// through the self-descriptive framing and keep all 5 packets.
func unknownFloodTrace() []byte {
	var buf bytes.Buffer
	w, err := tracefmt.NewWriter(&buf, tracefmt.Header{Device: "wavelan0", Comment: "fixture: unknown-type flood"})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			payload := bytes.Repeat([]byte{byte(17 * (i + j))}, 5+3*j)
			if err := w.WriteRaw(tracefmt.RecordType(200+j), payload); err != nil {
				panic(err)
			}
		}
		if err := w.WritePacket(packetAt(i)); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func validTrace() []byte {
	var buf bytes.Buffer
	tr := &tracefmt.Trace{
		Header: tracefmt.Header{Device: "wavelan0", Start: 1000, Comment: "seed"},
		Packets: []tracefmt.PacketRecord{packetAt(0), packetAt(1)},
		Devices: []tracefmt.DeviceRecord{{At: 5, Signal: 18, Quality: 9, Silence: 3}},
		Lost:    []tracefmt.LostRecord{{At: 9, Count: 2, Of: tracefmt.RecPacket}},
	}
	if err := tracefmt.WriteAllOptions(&buf, tr, tracefmt.WriterOptions{CRC: true}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// workloadTrace is a tiny ping-workload trace the distiller can actually
// solve: 5 small/large/large triplets with consistent RTTs.
func workloadTrace() []byte {
	tr := &tracefmt.Trace{Header: tracefmt.Header{Device: "wavelan0", Comment: "distill seed"}}
	seq := uint16(0)
	emit := func(base int64, size int, rtt time.Duration) {
		seq++
		tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
			At: base, Dir: tracefmt.DirOut, Size: uint16(size),
			Protocol: 1, ICMPType: 8, ID: 1, Seq: seq, RTT: -1,
		})
		tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
			At: base + int64(rtt), Dir: tracefmt.DirIn, Size: uint16(size),
			Protocol: 1, ICMPType: 0, ID: 1, Seq: seq, RTT: int64(rtt),
		})
	}
	for sec := 0; sec < 5; sec++ {
		base := int64(sec) * int64(time.Second)
		emit(base, 60, 5*time.Millisecond)
		emit(base, 1028, 15*time.Millisecond)
		emit(base, 1028, 20*time.Millisecond)
	}
	// The collection daemon drains records in timestamp order.
	sort.SliceStable(tr.Packets, func(i, j int) bool { return tr.Packets[i].At < tr.Packets[j].At })
	var buf bytes.Buffer
	if err := tracefmt.WriteAll(&buf, tr); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
