package tracefmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func sampleTrace() *Trace {
	return &Trace{
		Header: Header{Device: "wavelan0", Start: 1000, Comment: "Porter trial 2"},
		Packets: []PacketRecord{
			{At: 1000, Dir: DirOut, Size: 92, Protocol: 1, ICMPType: 8, ID: 42, Seq: 1, RTT: -1},
			{At: 5_000_000, Dir: DirIn, Size: 92, Protocol: 1, ICMPType: 0, ID: 42, Seq: 1, RTT: 4_999_000},
			{At: 6_000_000, Dir: DirOut, Size: 576, Protocol: 17, SrcPort: 700, DstPort: 2049, ICMPType: NoICMP, RTT: -1},
			{At: 7_000_000, Dir: DirIn, Size: 1500, Protocol: 6, SrcPort: 20, DstPort: 1234, TCPFlags: 0x18, ICMPType: NoICMP, RTT: -1},
		},
		Devices: []DeviceRecord{
			{At: 1000, Signal: 18.5, Quality: 9.25, Silence: 3},
			{At: 100_001_000, Signal: 17.25, Quality: 8.5, Silence: 3},
		},
		Lost: []LostRecord{{At: 50_000_000, Count: 7, Of: RecPacket}},
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != tr.Header {
		t.Fatalf("header = %+v, want %+v", got.Header, tr.Header)
	}
	if len(got.Packets) != len(tr.Packets) {
		t.Fatalf("packets = %d", len(got.Packets))
	}
	for i := range tr.Packets {
		if got.Packets[i] != tr.Packets[i] {
			t.Fatalf("packet %d = %+v, want %+v", i, got.Packets[i], tr.Packets[i])
		}
	}
	for i := range tr.Devices {
		if got.Devices[i] != tr.Devices[i] {
			t.Fatalf("device %d mismatch", i)
		}
	}
	if len(got.Lost) != 1 || got.Lost[0] != tr.Lost[0] {
		t.Fatalf("lost = %+v", got.Lost)
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := sampleTrace()
	if tr.TotalLost() != 7 {
		t.Fatalf("TotalLost = %d", tr.TotalLost())
	}
	if tr.Duration() != time.Duration(7_000_000-1000) {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if (&Trace{}).Duration() != 0 {
		t.Fatal("empty trace duration should be 0")
	}
	if tr.Packets[0].Time() != 1000*time.Nanosecond {
		t.Fatal("Time accessor wrong")
	}
	if tr.Devices[0].Time() != 1000*time.Nanosecond {
		t.Fatal("device Time accessor wrong")
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0, 0, 0, 0, 0, 1})
	if _, err := NewReader(buf); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, Magic)
	binary.Write(&buf, binary.BigEndian, uint16(99))
	if _, err := NewReader(&buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	_, err := ReadAll(bytes.NewReader(cut))
	if err == nil {
		t.Fatal("truncated trace should error")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
}

func TestUnknownRecordSkipped(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Device: "d"})
	if err != nil {
		t.Fatal(err)
	}
	// Inject an unknown record type by hand, then a valid one.
	if err := w.record(RecordType(200), []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteDevice(DeviceRecord{At: 5, Signal: 1}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	tr, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Devices) != 1 || tr.Devices[0].At != 5 {
		t.Fatalf("devices = %+v", tr.Devices)
	}
}

func TestStreamingReader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Header().Device != "wavelan0" {
		t.Fatal("header device wrong")
	}
	kinds := map[string]int{}
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch rec.(type) {
		case PacketRecord:
			kinds["p"]++
		case DeviceRecord:
			kinds["d"]++
		case LostRecord:
			kinds["l"]++
		}
	}
	if kinds["p"] != 4 || kinds["d"] != 2 || kinds["l"] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, &Trace{Header: Header{Device: "x"}}); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets)+len(tr.Devices)+len(tr.Lost) != 0 {
		t.Fatal("empty trace should stay empty")
	}
}

func TestDirectionString(t *testing.T) {
	if DirOut.String() != "out" || DirIn.String() != "in" {
		t.Fatal("direction strings wrong")
	}
}

// Property: packet records round-trip bit-exactly for arbitrary field
// values.
func TestPacketRecordRoundTripProperty(t *testing.T) {
	f := func(at int64, dir bool, size uint16, proto, itype uint8, id, seq uint16, rtt int64, sp, dp uint16, fl uint8) bool {
		rec := PacketRecord{
			At: at, Dir: DirOut, Size: size, Protocol: proto,
			ICMPType: itype, ID: id, Seq: seq, RTT: rtt,
			SrcPort: sp, DstPort: dp, TCPFlags: fl,
		}
		if dir {
			rec.Dir = DirIn
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{Device: "d"})
		if err != nil {
			return false
		}
		if w.WritePacket(rec) != nil || w.Flush() != nil {
			return false
		}
		tr, err := ReadAll(&buf)
		if err != nil || len(tr.Packets) != 1 {
			return false
		}
		return tr.Packets[0] == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: headers with arbitrary device/comment strings round-trip.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(device, comment string, start int64) bool {
		if len(device) > 1000 || len(comment) > 1000 {
			return true
		}
		var buf bytes.Buffer
		h := Header{Device: device, Start: start, Comment: comment}
		w, err := NewWriter(&buf, h)
		if err != nil {
			return false
		}
		w.Flush()
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		return rd.Header() == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
