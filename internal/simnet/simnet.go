// Package simnet is the in-process network substrate: nodes with one or
// more NICs, shared transmission media with time-varying quality, IP
// forwarding, and hook chains on the path between the IP layer and the
// device — the place where the paper's trace-collection and modulation
// layers install themselves ("between the IP and Ethernet layers of the
// protocol stack").
//
// Frames on a Medium are real serialized bytes (Ethernet around IPv4), so
// every layer above sees authentic sizes, headers, and checksums.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/packet"
	"tracemod/internal/sim"
)

// Quality is the instantaneous condition of a medium: one-way latency, a
// per-byte transmission cost (inverse bandwidth), a per-packet loss
// probability, and the device-reported signal characteristics that trace
// collection records alongside packets.
type Quality struct {
	Latency time.Duration
	PerByte core.PerByte
	Loss    float64

	// Device characteristics in WaveLAN units (Section 3.1.1).
	Signal  float64
	Quality float64
	Silence float64
}

// QualityProvider yields the medium's condition at a virtual time.
type QualityProvider interface {
	Sample(at sim.Time) Quality
}

// Static is a QualityProvider with constant conditions (a wired LAN).
type Static Quality

// Sample implements QualityProvider.
func (q Static) Sample(sim.Time) Quality { return Quality(q) }

// Ethernet10 returns the quality of the isolated 10 Mb/s Ethernet the paper
// uses as its modulation testbed.
func Ethernet10() Static {
	return Static{
		Latency: 150 * time.Microsecond,
		PerByte: core.PerByteFromBandwidth(10e6),
		Loss:    0,
		Signal:  0, // wired: no radio statistics
	}
}

// Direction distinguishes the two hook paths on a node.
type Direction int

// Hook directions.
const (
	Outbound Direction = iota
	Inbound
)

func (d Direction) String() string {
	if d == Outbound {
		return "out"
	}
	return "in"
}

// Hook intercepts IP datagrams on a node's input or output path. The hook
// must either call next (immediately or from a scheduled event) to let the
// datagram continue, or drop it by never calling next. Hooks run in
// registration order.
type Hook interface {
	Filter(dir Direction, ip []byte, next func(ip []byte))
}

// HookFunc adapts a function to the Hook interface.
type HookFunc func(dir Direction, ip []byte, next func(ip []byte))

// Filter implements Hook.
func (f HookFunc) Filter(dir Direction, ip []byte, next func(ip []byte)) { f(dir, ip, next) }

// Tap observes frames at the device boundary (the paper's traced-device
// hooks). at is the time the frame passed the device, q the device's
// current conditions.
type Tap func(dir Direction, at sim.Time, ip []byte, q Quality)

// MediumStats counts traffic through a medium.
type MediumStats struct {
	Frames     int64 // frames fully transmitted
	Bytes      int64 // bytes fully transmitted (including Ethernet framing)
	Lost       int64 // frames dropped by the loss process
	QueueDrops int64 // frames dropped at a full NIC queue
}

type txJob struct {
	src   *NIC
	frame []byte
}

// Medium is a shared, half-duplex broadcast transmission domain: one
// transmission at a time, serialized FIFO (the contention behaviour of both
// 1997 Ethernet and the WaveLAN air interface). Latency pipelines;
// transmission time does not.
type Medium struct {
	s        *sim.Scheduler
	name     string
	provider QualityProvider
	rng      *rand.Rand
	nics     []*NIC
	hwSeq    uint16 // per-medium HW address allocator; addresses only resolve within a medium
	queue    []txJob
	busy     bool
	stats    MediumStats
}

// NewMedium creates a medium whose conditions come from provider.
func NewMedium(s *sim.Scheduler, name string, provider QualityProvider) *Medium {
	return &Medium{s: s, name: name, provider: provider, rng: s.RNG("medium/" + name)}
}

// Name returns the medium's name.
func (m *Medium) Name() string { return m.name }

// Stats returns a snapshot of the medium's counters.
func (m *Medium) Stats() MediumStats { return m.stats }

// Sample returns the medium's current conditions.
func (m *Medium) Sample() Quality { return m.provider.Sample(m.s.Now()) }

func (m *Medium) attach(n *NIC) { m.nics = append(m.nics, n) }

func (m *Medium) enqueue(src *NIC, frame []byte) {
	if src.queued >= src.QueueCap {
		m.stats.QueueDrops++
		return
	}
	src.queued++
	m.queue = append(m.queue, txJob{src: src, frame: frame})
	if !m.busy {
		m.startNext()
	}
}

func (m *Medium) startNext() {
	if len(m.queue) == 0 {
		m.busy = false
		return
	}
	m.busy = true
	job := m.queue[0]
	m.queue = m.queue[1:]
	q := m.provider.Sample(m.s.Now())
	loss := q.Loss + job.src.TxExtraLoss
	if loss > 1 {
		loss = 1
	}
	txTime := q.PerByte.Cost(len(job.frame))
	m.s.After(txTime, func() {
		job.src.queued--
		m.stats.Frames++
		m.stats.Bytes += int64(len(job.frame))
		if m.rng.Float64() < loss {
			m.stats.Lost++
		} else {
			m.s.After(q.Latency, func() { m.deliver(job) })
		}
		m.startNext()
	})
}

func (m *Medium) deliver(job txJob) {
	eth := packet.Ethernet(job.frame)
	if !eth.Valid() {
		return
	}
	dst := eth.Dst()
	broadcast := dst == packet.HWAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	for _, n := range m.nics {
		if n == job.src {
			continue
		}
		if broadcast || n.HW == dst {
			n.receive(job.frame)
			if !broadcast {
				return
			}
		}
	}
}

// NIC is a node's attachment to a medium.
type NIC struct {
	node   *Node
	medium *Medium

	IP   packet.IPAddr
	Mask packet.IPAddr
	HW   packet.HWAddr

	// QueueCap bounds the frames this NIC may have queued on the medium
	// (device + driver queue); excess is dropped at the tail.
	QueueCap int
	queued   int

	// TxExtraLoss is additional loss probability for frames this NIC
	// transmits, modelling an asymmetric channel (a mobile transmitter is
	// often weaker than the base station's).
	TxExtraLoss float64

	tap Tap
}

// Medium returns the medium the NIC is attached to.
func (n *NIC) Medium() *Medium { return n.medium }

// SetTap installs (or clears, with nil) the device-level trace tap.
func (n *NIC) SetTap(t Tap) { n.tap = t }

// Conditions returns the device's current reported conditions.
func (n *NIC) Conditions() Quality { return n.medium.Sample() }

func (n *NIC) sameSubnet(ip packet.IPAddr) bool {
	return n.IP&n.Mask == ip&n.Mask
}

// send encapsulates an IP datagram in Ethernet and queues it on the medium.
func (n *NIC) send(ip []byte, nextHop packet.IPAddr) {
	dstHW, ok := n.medium.resolve(nextHop)
	if !ok {
		return // no such neighbour: silently dropped like a failed ARP
	}
	frame := make([]byte, packet.EthernetHeaderLen+len(ip))
	eth := packet.Ethernet(frame)
	eth.SetSrc(n.HW)
	eth.SetDst(dstHW)
	eth.SetEtherType(packet.EtherTypeIPv4)
	copy(eth.Payload(), ip)
	if n.tap != nil {
		n.tap(Outbound, n.node.s.Now(), eth.Payload(), n.medium.Sample())
	}
	n.medium.enqueue(n, frame)
}

// resolve finds the hardware address of the NIC holding ip on this medium.
func (m *Medium) resolve(ip packet.IPAddr) (packet.HWAddr, bool) {
	for _, n := range m.nics {
		if n.IP == ip {
			return n.HW, true
		}
	}
	return packet.HWAddr{}, false
}

func (n *NIC) receive(frame []byte) {
	eth := packet.Ethernet(frame)
	ip := eth.Payload()
	if n.tap != nil {
		n.tap(Inbound, n.node.s.Now(), ip, n.medium.Sample())
	}
	n.node.input(n, ip)
}

// Handler processes a received IP datagram addressed to this node.
type Handler func(n *Node, ip packet.IPv4)

// route is one entry in a node's routing table.
type route struct {
	prefix  packet.IPAddr
	mask    packet.IPAddr
	gateway packet.IPAddr // 0 means directly connected
	nic     *NIC
}

// NodeStats counts a node's IP-layer activity.
type NodeStats struct {
	Sent      int64
	Received  int64
	Forwarded int64
	NoRoute   int64
	TTLDrops  int64
	BadSum    int64
}

// Node is a host or router in the emulated network.
type Node struct {
	Name string

	// Forwarding enables router behaviour for datagrams not addressed to
	// this node.
	Forwarding bool

	s        *sim.Scheduler
	nics     []*NIC
	routes   []route
	outHooks []Hook
	inHooks  []Hook
	handlers map[uint8]Handler
	ipID     uint16
	stats    NodeStats
}

// NewNode creates a node on scheduler s.
func NewNode(s *sim.Scheduler, name string) *Node {
	n := &Node{Name: name, s: s, handlers: map[uint8]Handler{}}
	n.handlers[packet.ProtoICMP] = icmpEchoResponder
	return n
}

// Sched returns the owning scheduler.
func (n *Node) Sched() *sim.Scheduler { return n.s }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats { return n.stats }

// AttachNIC connects the node to a medium with the given address and mask,
// adds a directly-connected route for the subnet, and returns the NIC.
func (n *Node) AttachNIC(m *Medium, ip, mask packet.IPAddr) *NIC {
	m.hwSeq++
	nic := &NIC{
		node: n, medium: m, IP: ip, Mask: mask,
		HW:       packet.HWAddr{0x02, 0x00, 0x00, 0x00, byte(m.hwSeq >> 8), byte(m.hwSeq)},
		QueueCap: 50,
	}
	n.nics = append(n.nics, nic)
	m.attach(nic)
	n.routes = append(n.routes, route{prefix: ip & mask, mask: mask, nic: nic})
	return nic
}

// AddRoute adds a gateway route for the given prefix.
func (n *Node) AddRoute(prefix, mask, gateway packet.IPAddr) {
	nic := n.lookupNIC(gateway)
	if nic == nil {
		panic(fmt.Sprintf("simnet: %s: gateway %v is not on any attached subnet", n.Name, gateway))
	}
	n.routes = append(n.routes, route{prefix: prefix & mask, mask: mask, gateway: gateway, nic: nic})
}

// SetDefaultRoute adds a 0.0.0.0/0 route via gateway.
func (n *Node) SetDefaultRoute(gateway packet.IPAddr) {
	n.AddRoute(0, 0, gateway)
}

func (n *Node) lookupNIC(ip packet.IPAddr) *NIC {
	for _, nic := range n.nics {
		if nic.sameSubnet(ip) {
			return nic
		}
	}
	return nil
}

// lookupRoute picks the longest-prefix matching route for dst.
func (n *Node) lookupRoute(dst packet.IPAddr) *route {
	var best *route
	for i := range n.routes {
		r := &n.routes[i]
		if dst&r.mask == r.prefix {
			if best == nil || r.mask > best.mask {
				best = r
			}
		}
	}
	return best
}

// Addr returns the node's primary (first NIC) address.
func (n *Node) Addr() packet.IPAddr {
	if len(n.nics) == 0 {
		panic("simnet: node has no NIC")
	}
	return n.nics[0].IP
}

// NIC returns the i-th attached NIC.
func (n *Node) NIC(i int) *NIC { return n.nics[i] }

// SrcFor returns the source address the node would use to reach dst (the
// IP of the route's outgoing NIC), for transports that compute
// pseudo-header checksums. ok is false when no route exists.
func (n *Node) SrcFor(dst packet.IPAddr) (packet.IPAddr, bool) {
	r := n.lookupRoute(dst)
	if r == nil {
		return 0, false
	}
	return r.nic.IP, true
}

// IsLocal reports whether ip is one of the node's addresses.
func (n *Node) IsLocal(ip packet.IPAddr) bool {
	for _, nic := range n.nics {
		if nic.IP == ip {
			return true
		}
	}
	return false
}

// AddOutboundHook appends a hook to the output path (runs after the IP
// layer, before the device).
func (n *Node) AddOutboundHook(h Hook) { n.outHooks = append(n.outHooks, h) }

// AddInboundHook appends a hook to the input path (runs after the device,
// before protocol dispatch).
func (n *Node) AddInboundHook(h Hook) { n.inHooks = append(n.inHooks, h) }

// RegisterProto installs the handler for an IP protocol number, replacing
// any previous handler (including the built-in ICMP echo responder).
func (n *Node) RegisterProto(proto uint8, h Handler) { n.handlers[proto] = h }

// SendIP builds an IPv4 datagram and sends it through the output hooks and
// routing. It returns false if no route exists.
func (n *Node) SendIP(proto uint8, dst packet.IPAddr, payload []byte) bool {
	if len(payload) > packet.MTU-packet.IPv4HeaderLen {
		panic(fmt.Sprintf("simnet: payload %d exceeds MTU", len(payload)))
	}
	r := n.lookupRoute(dst)
	if r == nil {
		n.stats.NoRoute++
		return false
	}
	n.ipID++
	src := r.nic.IP
	ip := packet.MarshalIPv4(packet.IPv4Fields{
		ID: n.ipID, TTL: 64, Protocol: proto, Src: src, Dst: dst,
	}, payload)
	n.stats.Sent++
	n.runHooks(n.outHooks, Outbound, ip, func(out []byte) { n.transmit(out) })
	return true
}

// transmit routes a post-hook datagram out the proper NIC.
func (n *Node) transmit(ip []byte) {
	v := packet.IPv4(ip)
	if v.Valid() != nil {
		return
	}
	r := n.lookupRoute(v.Dst())
	if r == nil {
		n.stats.NoRoute++
		return
	}
	nextHop := v.Dst()
	if r.gateway != 0 {
		nextHop = r.gateway
	}
	r.nic.send(ip, nextHop)
}

// runHooks threads the datagram through the chain, ending at final.
func (n *Node) runHooks(hooks []Hook, dir Direction, ip []byte, final func([]byte)) {
	var step func(i int, b []byte)
	step = func(i int, b []byte) {
		if i == len(hooks) {
			final(b)
			return
		}
		hooks[i].Filter(dir, b, func(next []byte) { step(i+1, next) })
	}
	step(0, ip)
}

// input handles a datagram arriving on nic.
func (n *Node) input(nic *NIC, ip []byte) {
	v := packet.IPv4(ip)
	if v.Valid() != nil || !v.ChecksumOK() {
		n.stats.BadSum++
		return
	}
	if !n.IsLocal(v.Dst()) {
		if !n.Forwarding {
			return
		}
		n.forward(ip)
		return
	}
	n.runHooks(n.inHooks, Inbound, ip, func(b []byte) {
		w := packet.IPv4(b)
		if w.Valid() != nil {
			return
		}
		n.stats.Received++
		if h, ok := n.handlers[w.Protocol()]; ok {
			h(n, w)
		}
	})
}

func (n *Node) forward(ip []byte) {
	v := packet.IPv4(ip)
	if v.TTL() <= 1 {
		n.stats.TTLDrops++
		return
	}
	// Copy before mutating: upstream hooks may retain the buffer.
	fwd := make([]byte, len(ip))
	copy(fwd, ip)
	w := packet.IPv4(fwd)
	w.SetTTL(w.TTL() - 1)
	w.SetChecksum()
	n.stats.Forwarded++
	n.transmit(fwd)
}

// icmpEchoResponder is every node's built-in answer to ICMP ECHO: reply
// with ECHOREPLY carrying the same id, sequence number, and payload.
func icmpEchoResponder(n *Node, ip packet.IPv4) {
	m := packet.ICMP(ip.Payload())
	if !m.Valid() || m.Type() != packet.ICMPEcho {
		return
	}
	reply := packet.MarshalICMP(packet.ICMPFields{
		Type: packet.ICMPEchoReply, ID: m.ID(), Seq: m.Seq(),
	}, m.Payload())
	n.SendIP(packet.ProtoICMP, ip.Src(), reply)
}
