package simnet

import (
	"testing"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/sim"
)

// chain builds a linear topology a - r1 - r2 - b across three media and
// returns the end hosts.
func chain(s *sim.Scheduler) (*Node, *Node) {
	m1 := NewMedium(s, "m1", Static{Latency: time.Millisecond, PerByte: 100})
	m2 := NewMedium(s, "m2", Static{Latency: time.Millisecond, PerByte: 100})
	m3 := NewMedium(s, "m3", Static{Latency: time.Millisecond, PerByte: 100})

	net1a, net1r := packet.IP4(10, 1, 0, 1), packet.IP4(10, 1, 0, 254)
	net2a, net2b := packet.IP4(10, 2, 0, 1), packet.IP4(10, 2, 0, 2)
	net3r, net3b := packet.IP4(10, 3, 0, 254), packet.IP4(10, 3, 0, 1)
	m24 := packet.IP4(255, 255, 255, 0)

	a := NewNode(s, "a")
	a.AttachNIC(m1, net1a, m24)
	a.SetDefaultRoute(net1r)

	r1 := NewNode(s, "r1")
	r1.Forwarding = true
	r1.AttachNIC(m1, net1r, m24)
	r1.AttachNIC(m2, net2a, m24)
	r1.AddRoute(packet.IP4(10, 3, 0, 0), m24, net2b)

	r2 := NewNode(s, "r2")
	r2.Forwarding = true
	r2.AttachNIC(m2, net2b, m24)
	r2.AttachNIC(m3, net3r, m24)
	r2.AddRoute(packet.IP4(10, 1, 0, 0), m24, net2a)

	b := NewNode(s, "b")
	b.AttachNIC(m3, net3b, m24)
	b.SetDefaultRoute(net3r)
	return a, b
}

func TestTwoHopForwardingRoundTrip(t *testing.T) {
	s := sim.New(1)
	a, b := chain(s)
	var echoed bool
	var ttl uint8
	b.RegisterProto(200, func(n *Node, ip packet.IPv4) {
		ttl = ip.TTL()
		n.SendIP(201, ip.Src(), []byte("pong"))
	})
	a.RegisterProto(201, func(n *Node, ip packet.IPv4) { echoed = true })
	if !a.SendIP(200, packet.IP4(10, 3, 0, 1), []byte("ping")) {
		t.Fatal("send failed")
	}
	s.Run()
	if !echoed {
		t.Fatal("no round trip across two routers")
	}
	if ttl != 62 {
		t.Fatalf("TTL = %d, want 62 after two hops", ttl)
	}
}

func TestICMPAcrossChain(t *testing.T) {
	s := sim.New(2)
	a, _ := chain(s)
	var rtt time.Duration
	a.RegisterProto(packet.ProtoICMP, func(n *Node, ip packet.IPv4) {
		m := packet.ICMP(ip.Payload())
		if m.Valid() && m.Type() == packet.ICMPEchoReply {
			if sent, ok := m.SentAt(); ok {
				rtt = s.Now().Sub(sim.Time(sent))
			}
		}
	})
	echo := packet.MarshalICMP(packet.ICMPFields{Type: packet.ICMPEcho, ID: 5, Seq: 1},
		packet.EchoPayload(64, int64(s.Now())))
	a.SendIP(packet.ProtoICMP, packet.IP4(10, 3, 0, 1), echo)
	s.Run()
	// Six medium traversals at 1ms latency each, plus transmission time.
	if rtt < 6*time.Millisecond || rtt > 8*time.Millisecond {
		t.Fatalf("rtt = %v, want ≈6-7ms across three media each way", rtt)
	}
}

func TestSharedMediumFairness(t *testing.T) {
	// Two senders saturating one medium: the FIFO queue gives them
	// throughput within a factor of two of each other.
	s := sim.New(3)
	m := NewMedium(s, "shared", Static{Latency: 0, PerByte: 1000})
	m24 := packet.IP4(255, 255, 255, 0)
	mk := func(last byte) *Node {
		n := NewNode(s, "n")
		n.AttachNIC(m, packet.IP4(10, 0, 0, last), m24)
		return n
	}
	s1, s2, sink := mk(1), mk(2), mk(3)
	got := map[packet.IPAddr]int{}
	sink.RegisterProto(200, func(n *Node, ip packet.IPv4) { got[ip.Src()]++ })
	for _, snd := range []*Node{s1, s2} {
		snd := snd
		s.Spawn("sender", func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				snd.SendIP(200, packet.IP4(10, 0, 0, 3), make([]byte, 400))
				p.Sleep(300 * time.Microsecond) // offered load ≈ 1.5x capacity each
			}
		})
	}
	s.Run()
	a, b := got[packet.IP4(10, 0, 0, 1)], got[packet.IP4(10, 0, 0, 2)]
	if a == 0 || b == 0 {
		t.Fatalf("starvation: %d vs %d", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("unfair medium: %d vs %d", a, b)
	}
}

func TestHookDropCounting(t *testing.T) {
	// A dropping outbound hook must reduce Sent-side deliveries without
	// touching the medium's loss counter (the hook is above the device).
	s := sim.New(4)
	m := NewMedium(s, "lan", Static{Latency: time.Millisecond, PerByte: 100})
	m24 := packet.IP4(255, 255, 255, 0)
	a := NewNode(s, "a")
	a.AttachNIC(m, packet.IP4(10, 0, 0, 1), m24)
	b := NewNode(s, "b")
	b.AttachNIC(m, packet.IP4(10, 0, 0, 2), m24)
	n := 0
	a.AddOutboundHook(HookFunc(func(d Direction, ip []byte, next func([]byte)) {
		n++
		if n%2 == 0 {
			return
		}
		next(ip)
	}))
	got := 0
	b.RegisterProto(200, func(nn *Node, ip packet.IPv4) { got++ })
	for i := 0; i < 10; i++ {
		a.SendIP(200, packet.IP4(10, 0, 0, 2), []byte("x"))
	}
	s.Run()
	if got != 5 {
		t.Fatalf("delivered %d, want 5", got)
	}
	if m.Stats().Lost != 0 {
		t.Fatal("hook drops must not count as medium loss")
	}
	if a.Stats().Sent != 10 {
		t.Fatalf("sent counter = %d, want 10 (counted at the IP layer)", a.Stats().Sent)
	}
}

func TestMTUEnforcement(t *testing.T) {
	s := sim.New(5)
	m := NewMedium(s, "lan", Static{PerByte: 1})
	a := NewNode(s, "a")
	a.AttachNIC(m, packet.IP4(10, 0, 0, 1), packet.IP4(255, 255, 255, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("oversize payload must panic")
		}
	}()
	a.SendIP(200, packet.IP4(10, 0, 0, 2), make([]byte, packet.MTU))
}

func TestSrcForRouting(t *testing.T) {
	s := sim.New(6)
	a, _ := chain(s)
	src, ok := a.SrcFor(packet.IP4(10, 3, 0, 1))
	if !ok || src != packet.IP4(10, 1, 0, 1) {
		t.Fatalf("SrcFor = %v,%v", src, ok)
	}
	if _, ok := a.SrcFor(packet.IP4(192, 168, 0, 1)); ok {
		// a has a default route, so everything resolves; flip to a node
		// without one.
		n := NewNode(s, "lonely")
		if _, ok2 := n.SrcFor(packet.IP4(1, 2, 3, 4)); ok2 {
			t.Fatal("node without routes should not resolve")
		}
	}
}
