package simnet

import (
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/packet"
	"tracemod/internal/sim"
)

var (
	ipA  = packet.IP4(10, 0, 0, 1)
	ipB  = packet.IP4(10, 0, 0, 2)
	ipGW = packet.IP4(10, 0, 0, 254)
	ipG2 = packet.IP4(10, 0, 1, 254)
	ipC  = packet.IP4(10, 0, 1, 1)
	mask = packet.IP4(255, 255, 255, 0)
)

// lan builds two nodes A and B on one static medium.
func lan(s *sim.Scheduler, q Static) (*Node, *Node, *Medium) {
	m := NewMedium(s, "lan", q)
	a := NewNode(s, "a")
	a.AttachNIC(m, ipA, mask)
	b := NewNode(s, "b")
	b.AttachNIC(m, ipB, mask)
	return a, b, m
}

func fastQuality() Static {
	return Static{Latency: time.Millisecond, PerByte: 100, Loss: 0}
}

func TestDeliverToHandler(t *testing.T) {
	s := sim.New(1)
	a, b, _ := lan(s, fastQuality())
	var got []byte
	var at sim.Time
	b.RegisterProto(200, func(n *Node, ip packet.IPv4) {
		got = append([]byte(nil), ip.Payload()...)
		at = s.Now()
	})
	payload := []byte("hello network")
	if !a.SendIP(200, ipB, payload) {
		t.Fatal("SendIP returned false")
	}
	s.Run()
	if string(got) != "hello network" {
		t.Fatalf("payload = %q", got)
	}
	// Delivery = tx time + latency. Frame = 14 eth + 20 ip + 13 payload = 47B at 100ns/B = 4.7µs, + 1ms.
	want := sim.Time(0).Add(4700*time.Nanosecond + time.Millisecond)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	if b.Stats().Received != 1 || a.Stats().Sent != 1 {
		t.Fatalf("stats: %+v %+v", a.Stats(), b.Stats())
	}
}

func TestICMPEchoResponder(t *testing.T) {
	s := sim.New(1)
	a, _, _ := lan(s, fastQuality())
	var reply packet.ICMP
	var rtt time.Duration
	start := s.Now()
	a.RegisterProto(packet.ProtoICMP, func(n *Node, ip packet.IPv4) {
		m := packet.ICMP(ip.Payload())
		if m.Valid() && m.Type() == packet.ICMPEchoReply {
			reply = append(packet.ICMP(nil), m...)
			rtt = s.Now().Sub(start)
		}
	})
	echo := packet.MarshalICMP(packet.ICMPFields{Type: packet.ICMPEcho, ID: 33, Seq: 7}, packet.EchoPayload(64, 0))
	a.SendIP(packet.ProtoICMP, ipB, echo)
	s.Run()
	if reply == nil {
		t.Fatal("no echo reply")
	}
	if reply.ID() != 33 || reply.Seq() != 7 || len(reply.Payload()) != 64 {
		t.Fatalf("reply fields: id=%d seq=%d len=%d", reply.ID(), reply.Seq(), len(reply.Payload()))
	}
	if rtt <= 2*time.Millisecond {
		t.Fatalf("rtt = %v, want > 2ms (two traversals)", rtt)
	}
}

func TestMediumSerializes(t *testing.T) {
	// Two packets sent at once: the second's delivery is pushed out by the
	// first's transmission time (half-duplex serialization), and latency
	// pipelines.
	s := sim.New(1)
	a, b, _ := lan(s, Static{Latency: 10 * time.Millisecond, PerByte: 1000})
	var deliveries []sim.Time
	b.RegisterProto(200, func(n *Node, ip packet.IPv4) { deliveries = append(deliveries, s.Now()) })
	payload := make([]byte, 966) // frame = 966+20+14 = 1000B -> 1ms tx
	a.SendIP(200, ipB, payload)
	a.SendIP(200, ipB, payload)
	s.Run()
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %d", len(deliveries))
	}
	if want := sim.Time(0).Add(11 * time.Millisecond); deliveries[0] != want {
		t.Fatalf("first delivery %v, want %v", deliveries[0], want)
	}
	if want := sim.Time(0).Add(12 * time.Millisecond); deliveries[1] != want {
		t.Fatalf("second delivery %v, want %v (1ms behind, not 10ms)", deliveries[1], want)
	}
}

func TestLossDropsFrames(t *testing.T) {
	s := sim.New(42)
	a, b, m := lan(s, Static{Latency: time.Microsecond, PerByte: 1, Loss: 0.5})
	got := 0
	b.RegisterProto(200, func(n *Node, ip packet.IPv4) { got++ })
	const sent = 400
	s.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < sent; i++ {
			a.SendIP(200, ipB, []byte{1})
			p.Sleep(time.Millisecond)
		}
	})
	s.Run()
	if got == 0 || got == sent {
		t.Fatalf("got %d of %d: loss process not working", got, sent)
	}
	if frac := float64(got) / sent; frac < 0.4 || frac > 0.6 {
		t.Fatalf("survival fraction %.2f, want ≈0.5", frac)
	}
	if m.Stats().Lost == 0 {
		t.Fatal("medium should count losses")
	}
}

func TestQueueCapDropTail(t *testing.T) {
	s := sim.New(1)
	a, b, m := lan(s, Static{Latency: 0, PerByte: 10000}) // slow: 10µs/B
	a.NIC(0).QueueCap = 3
	got := 0
	b.RegisterProto(200, func(n *Node, ip packet.IPv4) { got++ })
	for i := 0; i < 10; i++ {
		a.SendIP(200, ipB, []byte{1, 2, 3})
	}
	s.Run()
	if got != 3 {
		t.Fatalf("delivered %d, want 3 (queue cap)", got)
	}
	if m.Stats().QueueDrops != 7 {
		t.Fatalf("queue drops = %d, want 7", m.Stats().QueueDrops)
	}
}

// routedNet builds a -- gw -- c across two media (wireless-ish + ethernet).
func routedNet(s *sim.Scheduler) (*Node, *Node, *Node) {
	mw := NewMedium(s, "wireless", Static{Latency: 2 * time.Millisecond, PerByte: 4000})
	me := NewMedium(s, "ether", Ethernet10())
	a := NewNode(s, "laptop")
	a.AttachNIC(mw, ipA, mask)
	a.SetDefaultRoute(ipGW)
	gw := NewNode(s, "gw")
	gw.Forwarding = true
	gw.AttachNIC(mw, ipGW, mask)
	gw.AttachNIC(me, ipG2, mask)
	c := NewNode(s, "server")
	c.AttachNIC(me, ipC, mask)
	c.SetDefaultRoute(ipG2)
	return a, gw, c
}

func TestForwardingAcrossRouter(t *testing.T) {
	s := sim.New(1)
	a, gw, c := routedNet(s)
	var gotTTL uint8
	var echoed bool
	c.RegisterProto(222, func(n *Node, ip packet.IPv4) {
		gotTTL = ip.TTL()
		// Reply back across the router.
		n.SendIP(223, ip.Src(), []byte("pong"))
	})
	a.RegisterProto(223, func(n *Node, ip packet.IPv4) { echoed = true })
	a.SendIP(222, ipC, []byte("ping"))
	s.Run()
	if gotTTL != 63 {
		t.Fatalf("TTL = %d, want 63 after one hop", gotTTL)
	}
	if !echoed {
		t.Fatal("reply did not come back")
	}
	if gw.Stats().Forwarded != 2 {
		t.Fatalf("forwarded = %d, want 2", gw.Stats().Forwarded)
	}
}

func TestTTLExpiry(t *testing.T) {
	s := sim.New(1)
	_, gw, _ := routedNet(s)
	// Inject a TTL-1 datagram directly at the router's input.
	ip := packet.MarshalIPv4(packet.IPv4Fields{TTL: 1, Protocol: 200, Src: ipA, Dst: ipC}, []byte("x"))
	gw.input(gw.NIC(0), ip)
	s.Run()
	if gw.Stats().TTLDrops != 1 {
		t.Fatalf("ttl drops = %d", gw.Stats().TTLDrops)
	}
	if gw.Stats().Forwarded != 0 {
		t.Fatal("expired datagram must not be forwarded")
	}
}

func TestNoRoute(t *testing.T) {
	s := sim.New(1)
	a, _, _ := lan(s, fastQuality())
	if a.SendIP(200, packet.IP4(192, 168, 9, 9), []byte("x")) {
		t.Fatal("SendIP should fail with no route")
	}
	if a.Stats().NoRoute != 1 {
		t.Fatal("NoRoute not counted")
	}
}

func TestBadChecksumDropped(t *testing.T) {
	s := sim.New(1)
	a, b, _ := lan(s, fastQuality())
	got := 0
	b.RegisterProto(200, func(n *Node, ip packet.IPv4) { got++ })
	// Corrupt datagram injected straight into b's input path.
	ip := packet.MarshalIPv4(packet.IPv4Fields{TTL: 4, Protocol: 200, Src: ipA, Dst: ipB}, []byte("x"))
	ip[8] ^= 0xff // break checksum
	b.input(b.NIC(0), ip)
	s.Run()
	if got != 0 || b.Stats().BadSum != 1 {
		t.Fatalf("got=%d badsum=%d", got, b.Stats().BadSum)
	}
	_ = a
}

func TestOutboundHookDelaysAndDrops(t *testing.T) {
	s := sim.New(1)
	a, b, _ := lan(s, fastQuality())
	var deliveredAt sim.Time
	b.RegisterProto(200, func(n *Node, ip packet.IPv4) { deliveredAt = s.Now() })
	n := 0
	a.AddOutboundHook(HookFunc(func(dir Direction, ip []byte, next func([]byte)) {
		if dir != Outbound {
			t.Errorf("dir = %v", dir)
		}
		n++
		if n == 1 {
			return // drop first packet
		}
		s.After(50*time.Millisecond, func() { next(ip) }) // delay second
	}))
	a.SendIP(200, ipB, []byte("dropped"))
	a.SendIP(200, ipB, []byte("delayed"))
	s.Run()
	if deliveredAt < sim.Time(0).Add(50*time.Millisecond) {
		t.Fatalf("delivered at %v, want >= 50ms", deliveredAt)
	}
	if n != 2 {
		t.Fatalf("hook saw %d packets", n)
	}
}

func TestInboundHookChainOrder(t *testing.T) {
	s := sim.New(1)
	a, b, _ := lan(s, fastQuality())
	var order []string
	b.AddInboundHook(HookFunc(func(d Direction, ip []byte, next func([]byte)) {
		order = append(order, "h1")
		next(ip)
	}))
	b.AddInboundHook(HookFunc(func(d Direction, ip []byte, next func([]byte)) {
		order = append(order, "h2")
		next(ip)
	}))
	b.RegisterProto(200, func(n *Node, ip packet.IPv4) { order = append(order, "handler") })
	a.SendIP(200, ipB, []byte("x"))
	s.Run()
	if len(order) != 3 || order[0] != "h1" || order[1] != "h2" || order[2] != "handler" {
		t.Fatalf("order = %v", order)
	}
}

func TestTapSeesBothDirections(t *testing.T) {
	s := sim.New(1)
	a, _, _ := lan(s, fastQuality())
	var taps []Direction
	var sizes []int
	a.NIC(0).SetTap(func(dir Direction, at sim.Time, ip []byte, q Quality) {
		taps = append(taps, dir)
		sizes = append(sizes, len(ip))
	})
	echo := packet.MarshalICMP(packet.ICMPFields{Type: packet.ICMPEcho, ID: 1, Seq: 1}, packet.EchoPayload(32, 0))
	a.SendIP(packet.ProtoICMP, ipB, echo)
	s.Run()
	if len(taps) != 2 || taps[0] != Outbound || taps[1] != Inbound {
		t.Fatalf("taps = %v", taps)
	}
	wantSize := packet.IPv4HeaderLen + packet.ICMPHeaderLen + 32
	if sizes[0] != wantSize || sizes[1] != wantSize {
		t.Fatalf("sizes = %v, want %d", sizes, wantSize)
	}
}

func TestTimeVaryingQuality(t *testing.T) {
	// Provider that doubles per-byte cost after 1 second.
	prov := providerFunc(func(at sim.Time) Quality {
		q := Quality{Latency: 0, PerByte: 1000}
		if at >= sim.Time(time.Second) {
			q.PerByte = 2000
		}
		return q
	})
	s := sim.New(1)
	m := NewMedium(s, "vary", prov)
	a := NewNode(s, "a")
	a.AttachNIC(m, ipA, mask)
	b := NewNode(s, "b")
	b.AttachNIC(m, ipB, mask)
	var times []sim.Time
	b.RegisterProto(200, func(n *Node, ip packet.IPv4) { times = append(times, s.Now()) })
	payload := make([]byte, 966) // 1000B frame
	send := func(at time.Duration) { s.At(sim.Time(at), func() { a.SendIP(200, ipB, payload) }) }
	send(0)
	send(2 * time.Second)
	s.Run()
	if len(times) != 2 {
		t.Fatal("expected 2 deliveries")
	}
	if d := times[0].Duration(); d != time.Millisecond {
		t.Fatalf("early tx = %v, want 1ms", d)
	}
	if d := times[1].Duration() - 2*time.Second; d != 2*time.Millisecond {
		t.Fatalf("late tx = %v, want 2ms", d)
	}
}

type providerFunc func(at sim.Time) Quality

func (f providerFunc) Sample(at sim.Time) Quality { return f(at) }

func TestEthernet10Profile(t *testing.T) {
	q := Ethernet10().Sample(0)
	if q.PerByte != core.PerByteFromBandwidth(10e6) {
		t.Fatal("ethernet bandwidth wrong")
	}
	if q.Loss != 0 {
		t.Fatal("ethernet should be lossless")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []sim.Time {
		s := sim.New(99)
		a, b, _ := lan(s, Static{Latency: time.Millisecond, PerByte: 500, Loss: 0.3})
		var times []sim.Time
		b.RegisterProto(200, func(n *Node, ip packet.IPv4) { times = append(times, s.Now()) })
		s.Spawn("send", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				a.SendIP(200, ipB, []byte("abcdef"))
				p.Sleep(10 * time.Millisecond)
			}
		})
		s.Run()
		return times
	}
	x, y := run(), run()
	if len(x) != len(y) {
		t.Fatalf("lengths differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("run diverged at %d", i)
		}
	}
}

func TestBroadcastDelivery(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, "lan", fastQuality())
	a := NewNode(s, "a")
	na := a.AttachNIC(m, ipA, mask)
	recv := 0
	for i := 2; i <= 4; i++ {
		n := NewNode(s, "n")
		n.AttachNIC(m, packet.IP4(10, 0, 0, byte(i)), mask)
		n.RegisterProto(200, func(nn *Node, ip packet.IPv4) { recv++ })
	}
	ip := packet.MarshalIPv4(packet.IPv4Fields{TTL: 4, Protocol: 200, Src: ipA, Dst: packet.IP4(255, 255, 255, 255)}, []byte("b"))
	frame := make([]byte, packet.EthernetHeaderLen+len(ip))
	eth := packet.Ethernet(frame)
	eth.SetSrc(na.HW)
	eth.SetDst(packet.HWAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	eth.SetEtherType(packet.EtherTypeIPv4)
	copy(eth.Payload(), ip)
	m.enqueue(na, frame)
	s.Run()
	// Broadcast reaches all attached NICs, but dst 255.255.255.255 is not
	// local to any node, so handlers never fire; delivery itself is the
	// behaviour under test via medium stats.
	if m.Stats().Frames != 1 {
		t.Fatal("broadcast frame not transmitted")
	}
	if recv != 0 {
		t.Fatal("non-local broadcast should not reach handlers")
	}
}
