// Package scenario defines the paper's four WaveLAN evaluation scenarios —
// Porter, Flagstaff, Wean, and Chatterbox (Section 4.1) — as radio profiles
// authored from the characteristics reported in Figures 2 through 5, plus
// the testbed topologies the experiments run on.
package scenario

import (
	"fmt"
	"time"

	"tracemod/internal/apps/nfs"

	"tracemod/internal/packet"
	"tracemod/internal/radio"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
	"tracemod/internal/synrgen"
	"tracemod/internal/transport"
)

// Scenario is one mobile networking scenario to trace and reproduce.
type Scenario struct {
	Name string
	// Profile describes channel conditions along the traversal.
	Profile radio.Profile
	// Interferers is the number of SynRGen-style cross-traffic hosts
	// sharing the wireless cell (five in Chatterbox, zero elsewhere).
	Interferers int
	// Motion is false for stationary scenarios, whose figures are
	// histograms rather than per-checkpoint series.
	Motion bool
	// UplinkExtraLoss is additional loss on mobile-transmitted frames: the
	// asymmetric channel behaviour the paper's Flagstaff FTP runs expose
	// (real send much slower than receive), which round-trip-only
	// collection cannot see and modulation therefore averages.
	UplinkExtraLoss float64
}

func ms(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }

// Porter is inter-building travel: Wean Hall lobby, across an outdoor
// patio, then through Porter Hall (Figure 2). Signal starts variable,
// improves across the patio, falls off inside Porter Hall; latency hovers
// at 1.5-10 ms with spikes near 100 ms; bandwidth 1.4-1.6 Mb/s with dips to
// 900 Kb/s; loss typically below 10%, worst early on the patio and at the
// end of Porter Hall.
var Porter = Scenario{
	Name:   "Porter",
	Motion: true,
	Profile: radio.Profile{
		Name: "Porter",
		Segments: []radio.Segment{
			{Label: "x0-x1", Dur: 45 * time.Second, SignalLo: 6, SignalHi: 20, LatencyLo: ms(2), LatencyHi: ms(10), SpikeProb: 0.03, SpikeMax: ms(100), BWLo: 1.35e6, BWHi: 1.6e6, LossLo: 0.006, LossHi: 0.025},
			{Label: "x1-x2", Dur: 50 * time.Second, SignalLo: 12, SignalHi: 23, LatencyLo: ms(1.5), LatencyHi: ms(8), SpikeProb: 0.015, SpikeMax: ms(80), BWLo: 1.45e6, BWHi: 1.62e6, LossLo: 0.003, LossHi: 0.02},
			{Label: "x2-x3", Dur: 50 * time.Second, SignalLo: 17, SignalHi: 26, LatencyLo: ms(1.5), LatencyHi: ms(6), SpikeProb: 0.01, SpikeMax: ms(60), BWLo: 1.5e6, BWHi: 1.62e6, LossLo: 0, LossHi: 0.015},
			{Label: "x3-x4", Dur: 50 * time.Second, SignalLo: 15, SignalHi: 24, LatencyLo: ms(1.5), LatencyHi: ms(8), SpikeProb: 0.015, SpikeMax: ms(80), BWLo: 1.45e6, BWHi: 1.62e6, LossLo: 0.003, LossHi: 0.018},
			{Label: "x4-x5", Dur: 55 * time.Second, SignalLo: 8, SignalHi: 22, LatencyLo: ms(2), LatencyHi: ms(10), SpikeProb: 0.03, SpikeMax: ms(100), BWLo: 1.4e6, BWHi: 1.6e6, LossLo: 0.008, LossHi: 0.03},
			{Label: "x5-x6", Dur: 55 * time.Second, SignalLo: 5, SignalHi: 16, LatencyLo: ms(2), LatencyHi: ms(12), SpikeProb: 0.04, SpikeMax: ms(110), BWLo: 1.3e6, BWHi: 1.55e6, LossLo: 0.012, LossHi: 0.04},
		},
	},
}

// Flagstaff is outdoor travel along the back edge of campus and around
// Flagstaff Hill (Figure 3). Signal quality is below Porter's and falls
// sharply on entering Schenley Park; latency is much better than Porter;
// average bandwidth is somewhat better; loss is significantly worse,
// particularly late in the traversal.
var Flagstaff = Scenario{
	Name:            "Flagstaff",
	Motion:          true,
	UplinkExtraLoss: 0.03,
	Profile: radio.Profile{
		Name: "Flagstaff",
		Segments: []radio.Segment{
			{Label: "y0-y1", Dur: 40 * time.Second, SignalLo: 8, SignalHi: 20, LatencyLo: ms(1), LatencyHi: ms(5), SpikeProb: 0.01, SpikeMax: ms(40), BWLo: 1.5e6, BWHi: 1.68e6, LossLo: 0.003, LossHi: 0.018},
			{Label: "y1-y3", Dur: 80 * time.Second, SignalLo: 6, SignalHi: 11, LatencyLo: ms(1), LatencyHi: ms(4), SpikeProb: 0.01, SpikeMax: ms(30), BWLo: 1.55e6, BWHi: 1.68e6, LossLo: 0.008, LossHi: 0.03},
			{Label: "y3-y5", Dur: 80 * time.Second, SignalLo: 5, SignalHi: 9, LatencyLo: ms(1), LatencyHi: ms(4), SpikeProb: 0.01, SpikeMax: ms(30), BWLo: 1.55e6, BWHi: 1.68e6, LossLo: 0.012, LossHi: 0.04},
			{Label: "y5-y7", Dur: 80 * time.Second, SignalLo: 5, SignalHi: 9, LatencyLo: ms(1), LatencyHi: ms(4.5), SpikeProb: 0.015, SpikeMax: ms(35), BWLo: 1.5e6, BWHi: 1.65e6, LossLo: 0.015, LossHi: 0.045},
			{Label: "y7-y9", Dur: 80 * time.Second, SignalLo: 5, SignalHi: 8, LatencyLo: ms(1), LatencyHi: ms(5), SpikeProb: 0.015, SpikeMax: ms(40), BWLo: 1.5e6, BWHi: 1.65e6, LossLo: 0.02, LossHi: 0.055},
		},
	},
}

// Wean is travel from a graduate office to a classroom inside Wean Hall,
// including a three-floor elevator ride (Figure 4): acceptable and variable
// on the walk, quite good while waiting, precipitous signal drop with
// latency peaking at 350 ms and atrocious loss in the elevator, then good
// again on the walk to the classroom. Bandwidth overall is somewhat below
// Porter's.
var Wean = Scenario{
	Name:   "Wean",
	Motion: true,
	Profile: radio.Profile{
		Name: "Wean",
		Segments: []radio.Segment{
			{Label: "z0-z3", Dur: 60 * time.Second, SignalLo: 8, SignalHi: 20, LatencyLo: ms(2), LatencyHi: ms(8), SpikeProb: 0.015, SpikeMax: ms(60), BWLo: 1.25e6, BWHi: 1.5e6, LossLo: 0.006, LossHi: 0.025},
			{Label: "z3-z4", Dur: 30 * time.Second, SignalLo: 19, SignalHi: 26, LatencyLo: ms(1.5), LatencyHi: ms(5), SpikeProb: 0.01, SpikeMax: ms(40), BWLo: 1.3e6, BWHi: 1.52e6, LossLo: 0.003, LossHi: 0.012},
			{Label: "z4-z5", Dur: 25 * time.Second, SignalLo: 1, SignalHi: 6, LatencyLo: ms(30), LatencyHi: ms(350), SpikeProb: 0, SpikeMax: 0, BWLo: 0.15e6, BWHi: 0.6e6, LossLo: 0.35, LossHi: 0.70},
			{Label: "z5-z7", Dur: 45 * time.Second, SignalLo: 14, SignalHi: 24, LatencyLo: ms(2), LatencyHi: ms(6), SpikeProb: 0.01, SpikeMax: ms(50), BWLo: 1.25e6, BWHi: 1.5e6, LossLo: 0.003, LossHi: 0.018},
		},
	},
}

// Chatterbox is a stationary host in a conference room shared with five
// other laptops running a SynRGen edit-debug workload against a remote
// file server (Figure 5): signal consistently high (around 18), but
// contention yields poorer latency and bandwidth than the mobile scenarios
// and high variance. Loss from the radio itself stays reasonable; most of
// the damage is real queueing behind the interferers, which the testbed
// reproduces with actual cross traffic rather than baked-in numbers.
var Chatterbox = Scenario{
	Name:        "Chatterbox",
	Motion:      false,
	Interferers: 5,
	Profile: radio.Profile{
		Name: "Chatterbox",
		Segments: []radio.Segment{
			{Label: "c0-c1", Dur: 300 * time.Second, SignalLo: 16, SignalHi: 20, LatencyLo: ms(2), LatencyHi: ms(12), SpikeProb: 0.02, SpikeMax: ms(90), BWLo: 1.35e6, BWHi: 1.58e6, LossLo: 0.005, LossHi: 0.04},
		},
	},
}

// All returns the four scenarios in the paper's presentation order.
func All() []Scenario { return []Scenario{Wean, Porter, Flagstaff, Chatterbox} }

// ByName returns the named scenario (case-sensitive) and whether it exists.
func ByName(name string) (Scenario, bool) {
	for _, sc := range All() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Addresses used by the testbeds.
var (
	Mask      = packet.IP4(255, 255, 255, 0)
	LaptopIP  = packet.IP4(10, 1, 0, 1)
	GatewayW  = packet.IP4(10, 1, 0, 254) // gateway, wireless side
	GatewayE  = packet.IP4(10, 2, 0, 254) // gateway, ethernet side
	ServerIP  = packet.IP4(10, 2, 0, 1)
	ModLaptop = packet.IP4(10, 3, 0, 1) // isolated modulation ethernet
	ModServer = packet.IP4(10, 3, 0, 2)
)

// Testbed is an assembled experiment network.
type Testbed struct {
	Sched    *sim.Scheduler
	Laptop   *simnet.Node
	Server   *simnet.Node
	Gateway  *simnet.Node // nil on the isolated-Ethernet testbed
	Wireless *simnet.Medium
	Ether    *simnet.Medium
	Model    *radio.Model // nil on the isolated-Ethernet testbed
}

// BuildWireless assembles the live-scenario testbed: the mobile laptop on a
// WaveLAN-like medium realized from sc's profile, bridged by a gateway to a
// campus Ethernet holding the server, plus sc.Interferers cross-traffic
// hosts on the wireless cell.
func BuildWireless(s *sim.Scheduler, sc Scenario) *Testbed {
	model := radio.NewModel(sc.Profile, s.RNG("radio/"+sc.Name))
	wm := simnet.NewMedium(s, "wavelan", model)
	em := simnet.NewMedium(s, "campus-ether", simnet.Ethernet10())

	laptop := simnet.NewNode(s, "laptop")
	lnic := laptop.AttachNIC(wm, LaptopIP, Mask)
	lnic.TxExtraLoss = sc.UplinkExtraLoss
	laptop.SetDefaultRoute(GatewayW)

	gw := simnet.NewNode(s, "gateway")
	gw.Forwarding = true
	gw.AttachNIC(wm, GatewayW, Mask)
	gw.AttachNIC(em, GatewayE, Mask)

	server := simnet.NewNode(s, "server")
	server.AttachNIC(em, ServerIP, Mask)
	server.SetDefaultRoute(GatewayE)

	tb := &Testbed{Sched: s, Laptop: laptop, Server: server, Gateway: gw, Wireless: wm, Ether: em, Model: model}
	if sc.Interferers > 0 {
		tb.addInterferers(sc.Interferers)
	}
	return tb
}

// BuildEthernet assembles the modulation testbed: the same two machines on
// an isolated Ethernet (Section 5.1), with no wireless hardware.
func BuildEthernet(s *sim.Scheduler) *Testbed {
	em := simnet.NewMedium(s, "isolated-ether", simnet.Ethernet10())
	laptop := simnet.NewNode(s, "laptop")
	laptop.AttachNIC(em, ModLaptop, Mask)
	server := simnet.NewNode(s, "server")
	server.AttachNIC(em, ModServer, Mask)
	return &Testbed{Sched: s, Laptop: laptop, Server: server, Ether: em}
}

// NFSServerIP is the interferers' file server on the campus Ethernet (the
// paper's Chatterbox room-mates run SynRGen against "files stored on a
// remote NFS file server", distinct from the benchmark server).
var NFSServerIP = packet.IP4(10, 2, 0, 2)

// addInterferers stands up the interferers' NFS file server and one
// SynRGen edit-debug user per interfering laptop. All their RPC traffic
// crosses the shared wireless cell through the gateway — real datagrams,
// real sizes, bursty with think-time gaps.
func (tb *Testbed) addInterferers(n int) {
	s := tb.Sched
	fileServer := simnet.NewNode(s, "nfs-server")
	fileServer.AttachNIC(tb.Ether, NFSServerIP, Mask)
	fileServer.SetDefaultRoute(GatewayE)
	if _, err := nfs.NewServer(s, transport.NewUDP(fileServer)); err != nil {
		panic(fmt.Sprintf("scenario: interferer nfs server: %v", err))
	}

	end := sim.Time(tb.Model.Profile().Duration())
	for i := 0; i < n; i++ {
		node := simnet.NewNode(s, "interferer")
		addr := packet.IP4(10, 1, 0, byte(10+i))
		node.AttachNIC(tb.Wireless, addr, Mask)
		node.SetDefaultRoute(GatewayW)
		stack := transport.NewUDP(node)
		rng := s.RNG(fmt.Sprintf("interferer/%d", i))
		name := fmt.Sprintf("user%d", i)

		s.Spawn("interferer", func(p *sim.Proc) {
			client, err := nfs.NewClient(s, stack, NFSServerIP)
			if err != nil {
				panic(fmt.Sprintf("scenario: interferer client: %v", err))
			}
			client.MaxOutstanding = 4 // biod-style write-behind
			user := synrgen.New(client, synrgen.Params{
				Files:     12,
				FileSize:  14 * 1024,
				ThinkMean: 400 * time.Millisecond,
				RNG:       rng,
			})
			// Desynchronize the room before populating the working set.
			p.Sleep(time.Duration(rng.Int63n(int64(3 * time.Second))))
			if err := user.Setup(p, name); err != nil {
				return // a hopeless channel; the user gives up
			}
			user.Run(p, end)
		})
	}
}
