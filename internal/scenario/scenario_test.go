package scenario

import (
	"testing"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
)

func TestAllScenariosWellFormed(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("want 4 scenarios, got %d", len(all))
	}
	for _, sc := range all {
		if sc.Profile.Duration() < 100*time.Second {
			t.Errorf("%s: traversal %v too short to cover a benchmark", sc.Name, sc.Profile.Duration())
		}
		for _, seg := range sc.Profile.Segments {
			if seg.BWLo <= 0 || seg.BWHi < seg.BWLo {
				t.Errorf("%s/%s: bad bandwidth range", sc.Name, seg.Label)
			}
			if seg.LossHi >= 1 || seg.LossLo < 0 || seg.LossHi < seg.LossLo {
				t.Errorf("%s/%s: bad loss range", sc.Name, seg.Label)
			}
			if seg.LatencyHi < seg.LatencyLo {
				t.Errorf("%s/%s: bad latency range", sc.Name, seg.Label)
			}
		}
	}
}

func TestByName(t *testing.T) {
	sc, ok := ByName("Porter")
	if !ok || sc.Name != "Porter" {
		t.Fatal("Porter not found")
	}
	if _, ok := ByName("porter"); ok {
		t.Fatal("lookup is case-sensitive")
	}
}

func TestScenarioNarrativeShapes(t *testing.T) {
	// Wean's elevator segment must be dramatically worse than its walk.
	var elevator, walk *struct{ loss, bw float64 }
	for _, seg := range Wean.Profile.Segments {
		v := &struct{ loss, bw float64 }{(seg.LossLo + seg.LossHi) / 2, (seg.BWLo + seg.BWHi) / 2}
		switch seg.Label {
		case "z4-z5":
			elevator = v
		case "z0-z3":
			walk = v
		}
	}
	if elevator == nil || walk == nil {
		t.Fatal("Wean segments missing")
	}
	if elevator.loss < 5*walk.loss {
		t.Fatal("elevator loss should be atrocious relative to the walk")
	}
	if elevator.bw > walk.bw/2 {
		t.Fatal("elevator bandwidth should collapse")
	}

	// Flagstaff loss should worsen monotonically-ish: last > first.
	fs := Flagstaff.Profile.Segments
	if fs[len(fs)-1].LossLo <= fs[0].LossLo {
		t.Fatal("Flagstaff loss should be worst late in the traversal")
	}

	// Chatterbox is stationary with five interferers.
	if Chatterbox.Motion || Chatterbox.Interferers != 5 {
		t.Fatal("Chatterbox should be static with 5 interferers")
	}
}

func TestBuildWirelessConnectivity(t *testing.T) {
	s := sim.New(11)
	tb := BuildWireless(s, Porter)
	var rtt time.Duration
	start := s.Now()
	tb.Laptop.RegisterProto(packet.ProtoICMP, func(n *simnet.Node, ip packet.IPv4) {
		m := packet.ICMP(ip.Payload())
		if m.Valid() && m.Type() == packet.ICMPEchoReply {
			rtt = s.Now().Sub(start)
			s.Stop()
		}
	})
	echo := packet.MarshalICMP(packet.ICMPFields{Type: packet.ICMPEcho, ID: 1, Seq: 1}, packet.EchoPayload(32, 0))
	tb.Laptop.SendIP(packet.ProtoICMP, ServerIP, echo)
	s.Run()
	if rtt == 0 {
		t.Fatal("no echo reply across gateway")
	}
	if rtt < time.Millisecond {
		t.Fatalf("rtt %v implausibly fast for a WaveLAN path", rtt)
	}
}

func TestBuildEthernetConnectivity(t *testing.T) {
	s := sim.New(11)
	tb := BuildEthernet(s)
	got := false
	tb.Server.RegisterProto(99, func(n *simnet.Node, ip packet.IPv4) { got = true })
	tb.Laptop.SendIP(99, ModServer, []byte("hi"))
	s.Run()
	if !got {
		t.Fatal("isolated ethernet not connected")
	}
	if tb.Gateway != nil || tb.Model != nil {
		t.Fatal("ethernet testbed should have no gateway or radio model")
	}
}

func TestInterferersLoadTheMedium(t *testing.T) {
	s := sim.New(21)
	tb := BuildWireless(s, Chatterbox)
	s.RunFor(30 * time.Second)
	st := tb.Wireless.Stats()
	if st.Frames < 50 {
		t.Fatalf("only %d frames in 30s: interferers idle", st.Frames)
	}
	if st.Bytes < 100_000 {
		t.Fatalf("only %d bytes of cross traffic", st.Bytes)
	}
}

func TestNoInterferersOutsideChatterbox(t *testing.T) {
	s := sim.New(21)
	tb := BuildWireless(s, Flagstaff)
	s.RunFor(20 * time.Second)
	if tb.Wireless.Stats().Frames != 0 {
		t.Fatal("Flagstaff cell should be quiet with no workload")
	}
}
