// Package capture implements the collection phase (Section 3.1): an
// in-kernel-style tracer hooked into a traced device's input and output
// routines, a fixed-size circular buffer that counts the records it loses
// when overrun, a pseudo-device with open/read/close semantics, and a
// user-level daemon that periodically drains the pseudo-device into the
// tracefmt stream on "disk".
package capture

import (
	"bytes"
	"time"

	"tracemod/internal/obs"
	"tracemod/internal/packet"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
	"tracemod/internal/tracefmt"
)

// DeviceSampleInterval is how often the kernel examines the device's
// performance parameters and logs a device record.
const DeviceSampleInterval = 100 * time.Millisecond

// Ring is the fixed-size in-kernel record buffer. When full, the oldest
// record is overwritten and counted as lost by type.
type Ring struct {
	recs []any
	typ  []tracefmt.RecordType
	head int // index of oldest
	n    int
	lost map[tracefmt.RecordType]uint32

	// Telemetry hooks (nil-safe; see Collector.EnableMetrics).
	pushed, overrun *obs.Counter
}

// NewRing creates a buffer holding at most capacity records.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		panic("capture: ring capacity must be >= 1")
	}
	return &Ring{
		recs: make([]any, capacity),
		typ:  make([]tracefmt.RecordType, capacity),
		lost: map[tracefmt.RecordType]uint32{},
	}
}

// Len returns the number of buffered records.
func (r *Ring) Len() int { return r.n }

// Push appends a record, evicting (and counting) the oldest if full.
func (r *Ring) Push(t tracefmt.RecordType, rec any) {
	r.pushed.Inc()
	if r.n == len(r.recs) {
		r.lost[r.typ[r.head]]++
		r.overrun.Inc()
		r.head = (r.head + 1) % len(r.recs)
		r.n--
	}
	i := (r.head + r.n) % len(r.recs)
	r.recs[i] = rec
	r.typ[i] = t
	r.n++
}

// Drain removes and returns all buffered records in arrival order. If any
// records were lost since the previous drain, a tracefmt.LostRecord per
// lost type (stamped at) is prepended, and the loss counters reset.
func (r *Ring) Drain(at sim.Time) []any {
	var out []any
	for _, t := range []tracefmt.RecordType{tracefmt.RecPacket, tracefmt.RecDevice, tracefmt.RecLost} {
		if c := r.lost[t]; c > 0 {
			out = append(out, tracefmt.LostRecord{At: int64(at), Count: c, Of: t})
			delete(r.lost, t)
		}
	}
	for r.n > 0 {
		out = append(out, r.recs[r.head])
		r.recs[r.head] = nil
		r.head = (r.head + 1) % len(r.recs)
		r.n--
	}
	return out
}

// LostSinceDrain returns the records lost since the last Drain.
func (r *Ring) LostSinceDrain() int {
	n := 0
	for _, c := range r.lost {
		n += int(c)
	}
	return n
}

// Collector is the kernel half of trace collection: it taps a NIC, turns
// frames into packet records (with protocol-specific detail for ICMP, UDP,
// and TCP), and samples device characteristics periodically. The
// pseudo-device interface is Open (enable tracing), Read (drain records),
// and Close (disable tracing).
type Collector struct {
	s    *sim.Scheduler
	nic  *simnet.NIC
	ring *Ring
	open bool

	// Skew is the collection host's fractional clock-rate error: every
	// recorded interval is stretched by (1+Skew). The paper's insistence
	// on single-host round trips exists because skew multiplies intervals
	// (a benign, tiny error) whereas unsynchronized clock *offsets* would
	// corrupt one-way measurements outright. Set before Open.
	Skew float64
	// Granularity quantizes recorded timestamps (the host's clock
	// resolution); zero records exact times. Set before Open.
	Granularity time.Duration

	// packets counts records captured (not lost) for tests and overhead
	// accounting.
	packets int

	// Telemetry (nil-safe; see EnableMetrics).
	mPackets *obs.Counter
	mSamples *obs.Counter
	mDrains  *obs.Counter
	mDepth   *obs.Gauge
}

// EnableMetrics registers the collector's telemetry (names under
// tracemod_capture_*) on reg: records pushed into / overwritten in the
// kernel ring, packet and device-sample tap counts, pseudo-device drains,
// and the current ring occupancy. Call before Open.
func (c *Collector) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.ring.pushed = reg.Counter("tracemod_capture_ring_pushed_total", "Records pushed into the in-kernel ring buffer.")
	c.ring.overrun = reg.Counter("tracemod_capture_ring_overrun_total", "Records overwritten (lost) in the in-kernel ring buffer.")
	c.mPackets = reg.Counter("tracemod_capture_packets_total", "Packets observed by the device tap.")
	c.mSamples = reg.Counter("tracemod_capture_device_samples_total", "Device-characteristic samples recorded.")
	c.mDrains = reg.Counter("tracemod_capture_drains_total", "Pseudo-device Read (drain) calls.")
	c.mDepth = reg.Gauge("tracemod_capture_ring_depth", "Records currently buffered in the in-kernel ring.")
}

// hostTime maps true virtual time onto the imperfect collection-host
// clock.
func (c *Collector) hostTime(t sim.Time) int64 {
	v := float64(t) * (1 + c.Skew)
	if c.Granularity > 0 {
		g := float64(c.Granularity)
		v = float64(int64(v/g)) * g
	}
	return int64(v)
}

// hostInterval maps a true interval (a round-trip time computed from two
// readings of the same host clock) onto the imperfect clock.
func (c *Collector) hostInterval(d time.Duration) int64 {
	v := float64(d) * (1 + c.Skew)
	if c.Granularity > 0 {
		g := float64(c.Granularity)
		v = float64(int64(v/g)) * g
	}
	return int64(v)
}

// NewCollector prepares a collector for nic with the given in-kernel
// buffer capacity.
func NewCollector(s *sim.Scheduler, nic *simnet.NIC, bufCap int) *Collector {
	return &Collector{s: s, nic: nic, ring: NewRing(bufCap)}
}

// Open enables tracing: hooks the device and starts periodic device
// sampling. Opening an open collector is a no-op.
func (c *Collector) Open() {
	if c.open {
		return
	}
	c.open = true
	c.nic.SetTap(c.tap)
	c.sampleDevice() // sample immediately, then periodically
}

// Close disables tracing and unhooks the device.
func (c *Collector) Close() {
	c.open = false
	c.nic.SetTap(nil)
}

// Opened reports whether tracing is enabled.
func (c *Collector) Opened() bool { return c.open }

// Read drains the pseudo-device.
func (c *Collector) Read() []any {
	c.mDrains.Inc()
	recs := c.ring.Drain(c.s.Now())
	c.mDepth.Set(int64(c.ring.Len()))
	return recs
}

// Captured returns the number of records pushed (including later-lost).
func (c *Collector) Captured() int { return c.packets }

func (c *Collector) sampleDevice() {
	if !c.open {
		return
	}
	q := c.nic.Conditions()
	c.ring.Push(tracefmt.RecDevice, tracefmt.DeviceRecord{
		At:      c.hostTime(c.s.Now()),
		Signal:  float32(q.Signal),
		Quality: float32(q.Quality),
		Silence: float32(q.Silence),
	})
	c.packets++
	c.mSamples.Inc()
	c.mDepth.Set(int64(c.ring.Len()))
	c.s.After(DeviceSampleInterval, c.sampleDevice)
}

// tap is the hook placed in the traced device's input and output routines.
func (c *Collector) tap(dir simnet.Direction, at sim.Time, ip []byte, q simnet.Quality) {
	info, err := packet.Decode(ip)
	if err != nil {
		return
	}
	rec := tracefmt.PacketRecord{
		At:       c.hostTime(at),
		Size:     info.IP.TotalLen(),
		Protocol: info.IP.Protocol(),
		ICMPType: tracefmt.NoICMP,
		RTT:      -1,
	}
	if dir == simnet.Inbound {
		rec.Dir = tracefmt.DirIn
	}
	switch {
	case info.Has(packet.LayerTypeICMPv4):
		m := info.ICMP
		rec.ICMPType = m.Type()
		rec.ID = m.ID()
		rec.Seq = m.Seq()
		// For ECHOREPLY packets the tracer computes the round trip from
		// the timestamp carried in the payload; all timestamps come from
		// this single host, so no synchronized clocks are needed.
		if dir == simnet.Inbound && m.Type() == packet.ICMPEchoReply {
			if sent, ok := m.SentAt(); ok {
				// Send and receive were both stamped on this host, so
				// the interval sees rate skew and granularity but never
				// an offset — the property the methodology relies on.
				rec.RTT = c.hostInterval(at.Sub(sim.Time(sent)))
			}
		}
	case info.Has(packet.LayerTypeUDP):
		rec.SrcPort = info.UDP.SrcPort()
		rec.DstPort = info.UDP.DstPort()
	case info.Has(packet.LayerTypeTCP):
		rec.SrcPort = info.TCP.SrcPort()
		rec.DstPort = info.TCP.DstPort()
		rec.TCPFlags = info.TCP.Flags()
	}
	c.ring.Push(tracefmt.RecPacket, rec)
	c.packets++
	c.mPackets.Inc()
	c.mDepth.Set(int64(c.ring.Len()))
}

// DaemonInterval is how often the user-level daemon extracts collected
// data from the pseudo-device.
const DaemonInterval = 500 * time.Millisecond

// Daemon periodically drains a collector into a trace writer, mimicking
// the user-level process that writes collected data to disk.
type Daemon struct {
	c  *Collector
	w  *tracefmt.Writer
	wg *sim.WaitGroup
}

// StartDaemon opens the collector, spawns the drain process, and arranges
// for it to stop (after a final drain) at the given end time.
func StartDaemon(s *sim.Scheduler, c *Collector, w *tracefmt.Writer, end sim.Time) *Daemon {
	d := &Daemon{c: c, w: w, wg: sim.NewWaitGroup(s)}
	c.Open()
	d.wg.Go("capture-daemon", func(p *sim.Proc) {
		for p.Now() < end {
			step := DaemonInterval
			if remaining := end.Sub(p.Now()); remaining < step {
				step = remaining
			}
			p.Sleep(step)
			d.flush()
		}
		c.Close()
		d.flush()
	})
	return d
}

// Wait blocks the calling process until the daemon has finished.
func (d *Daemon) Wait(p *sim.Proc) { d.wg.Wait(p) }

func (d *Daemon) flush() {
	for _, rec := range d.c.Read() {
		switch v := rec.(type) {
		case tracefmt.PacketRecord:
			d.w.WritePacket(v)
		case tracefmt.DeviceRecord:
			d.w.WriteDevice(v)
		case tracefmt.LostRecord:
			d.w.WriteLost(v)
		}
	}
}

// Opts configures a collection session.
type Opts struct {
	// BufCap is the in-kernel record buffer capacity.
	BufCap int
	// Skew and Granularity model the collection host's clock; see
	// Collector.
	Skew        float64
	Granularity time.Duration
	// Obs, if non-nil, receives the collector's telemetry (see
	// Collector.EnableMetrics).
	Obs *obs.Registry
}

// Collect runs a complete collection session on nic for the given
// duration, using an in-kernel buffer of bufCap records, and returns the
// parsed trace. The caller is responsible for generating workload traffic
// (see the pinger package) during the same window.
func Collect(s *sim.Scheduler, nic *simnet.NIC, bufCap int, dur time.Duration, comment string) (*tracefmt.Trace, error) {
	return CollectWith(s, nic, Opts{BufCap: bufCap}, dur, comment)
}

// CollectWith is Collect with full clock and buffer configuration.
func CollectWith(s *sim.Scheduler, nic *simnet.NIC, opts Opts, dur time.Duration, comment string) (*tracefmt.Trace, error) {
	bufCap := opts.BufCap
	if bufCap <= 0 {
		bufCap = 1 << 16
	}
	var disk bytes.Buffer
	w, err := tracefmt.NewWriter(&disk, tracefmt.Header{
		Device:  "wavelan0",
		Start:   int64(s.Now()),
		Comment: comment,
	})
	if err != nil {
		return nil, err
	}
	c := NewCollector(s, nic, bufCap)
	c.Skew = opts.Skew
	c.Granularity = opts.Granularity
	c.EnableMetrics(opts.Obs)
	d := StartDaemon(s, c, w, s.Now().Add(dur))

	var result *tracefmt.Trace
	var perr error
	s.Spawn("collect-finalize", func(p *sim.Proc) {
		d.Wait(p)
		if err := w.Flush(); err != nil {
			perr = err
			return
		}
		result, perr = tracefmt.ReadAll(&disk)
	})
	s.RunUntil(s.Now().Add(dur + time.Second))
	if perr != nil {
		return nil, perr
	}
	return result, nil
}
