package capture

import (
	"strings"
	"testing"
	"time"

	"tracemod/internal/obs"
	"tracemod/internal/pinger"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
)

func TestCollectorMetrics(t *testing.T) {
	s := sim.New(1)
	tb := scenario.BuildWireless(s, scenario.Porter)
	reg := obs.NewRegistry()
	dur := 30 * time.Second
	pinger.Start(s, tb.Laptop, scenario.ServerIP, dur)
	tr, err := CollectWith(s, tb.Laptop.NIC(0), Opts{BufCap: 1 << 16, Obs: reg}, dur, "obs-test")
	if err != nil {
		t.Fatal(err)
	}
	pushed := reg.Counter("tracemod_capture_ring_pushed_total", "").Load()
	packets := reg.Counter("tracemod_capture_packets_total", "").Load()
	samples := reg.Counter("tracemod_capture_device_samples_total", "").Load()
	drains := reg.Counter("tracemod_capture_drains_total", "").Load()
	if packets != int64(len(tr.Packets)) {
		t.Fatalf("packet counter = %d, trace has %d", packets, len(tr.Packets))
	}
	if samples != int64(len(tr.Devices)) {
		t.Fatalf("sample counter = %d, trace has %d", samples, len(tr.Devices))
	}
	if pushed != packets+samples {
		t.Fatalf("pushed = %d, want %d", pushed, packets+samples)
	}
	if drains == 0 {
		t.Fatal("expected drain calls to be counted")
	}
	if over := reg.Counter("tracemod_capture_ring_overrun_total", "").Load(); over != 0 {
		t.Fatalf("no overruns expected with a big buffer, got %d", over)
	}
	if depth := reg.Gauge("tracemod_capture_ring_depth", "").Load(); depth != 0 {
		t.Fatalf("ring depth after final drain = %d, want 0", depth)
	}
}

func TestCollectorMetricsCountOverruns(t *testing.T) {
	s := sim.New(2)
	tb := scenario.BuildWireless(s, scenario.Porter)
	reg := obs.NewRegistry()
	dur := 30 * time.Second
	pinger.Start(s, tb.Laptop, scenario.ServerIP, dur)
	if _, err := CollectWith(s, tb.Laptop.NIC(0), Opts{BufCap: 4, Obs: reg}, dur, "tiny"); err != nil {
		t.Fatal(err)
	}
	if over := reg.Counter("tracemod_capture_ring_overrun_total", "").Load(); over == 0 {
		t.Fatal("tiny ring should overrun")
	}
	if !strings.Contains(reg.PrometheusString(), "tracemod_capture_ring_overrun_total") {
		t.Fatal("overrun counter missing from export")
	}
}
