package capture

import (
	"testing"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/pinger"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/tracefmt"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Push(tracefmt.RecPacket, i)
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	out := r.Drain(0)
	if len(out) != 3 {
		t.Fatalf("drained %d", len(out))
	}
	for i, v := range out {
		if v.(int) != i {
			t.Fatalf("order wrong: %v", out)
		}
	}
	if r.Len() != 0 {
		t.Fatal("drain should empty the ring")
	}
}

func TestRingOverrunCountsLost(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Push(tracefmt.RecPacket, i)
	}
	if r.LostSinceDrain() != 2 {
		t.Fatalf("lost = %d, want 2", r.LostSinceDrain())
	}
	out := r.Drain(sim.Time(77))
	// First record must be the loss marker, then the 3 surviving newest.
	lost, ok := out[0].(tracefmt.LostRecord)
	if !ok {
		t.Fatalf("first drained record = %T, want LostRecord", out[0])
	}
	if lost.Count != 2 || lost.Of != tracefmt.RecPacket || lost.At != 77 {
		t.Fatalf("lost = %+v", lost)
	}
	if len(out) != 4 || out[1].(int) != 2 || out[3].(int) != 4 {
		t.Fatalf("out = %v", out)
	}
	// Counter resets after drain.
	if r.LostSinceDrain() != 0 {
		t.Fatal("lost counter should reset")
	}
}

func TestRingLostByType(t *testing.T) {
	r := NewRing(1)
	r.Push(tracefmt.RecDevice, "d")
	r.Push(tracefmt.RecPacket, "p") // evicts the device record
	r.Push(tracefmt.RecPacket, "p2")
	out := r.Drain(0)
	foundDev, foundPkt := false, false
	for _, rec := range out {
		if l, ok := rec.(tracefmt.LostRecord); ok {
			switch l.Of {
			case tracefmt.RecDevice:
				foundDev = l.Count == 1
			case tracefmt.RecPacket:
				foundPkt = l.Count == 1
			}
		}
	}
	if !foundDev || !foundPkt {
		t.Fatalf("per-type loss markers missing: %v", out)
	}
}

func TestRingCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRing(0)
}

func TestCollectorTapsPingTraffic(t *testing.T) {
	s := sim.New(3)
	tb := scenario.BuildWireless(s, scenario.Porter)
	c := NewCollector(s, tb.Laptop.NIC(0), 4096)
	c.Open()
	if !c.Opened() {
		t.Fatal("collector should be open")
	}
	pinger.Start(s, tb.Laptop, scenario.ServerIP, 5*time.Second)
	s.RunFor(6 * time.Second)
	c.Close()
	recs := c.Read()

	var echoes, replies, devices int
	var sawRTT bool
	for _, rec := range recs {
		switch v := rec.(type) {
		case tracefmt.PacketRecord:
			if v.ICMPType == packet.ICMPEcho && v.Dir == tracefmt.DirOut {
				echoes++
			}
			if v.ICMPType == packet.ICMPEchoReply && v.Dir == tracefmt.DirIn {
				replies++
				if v.RTT > 0 {
					sawRTT = true
				}
			}
		case tracefmt.DeviceRecord:
			devices++
			if v.Signal <= 0 {
				t.Fatal("device record should carry signal level")
			}
		}
	}
	// 5 groups x up to 3 echoes each.
	if echoes < 10 || replies < 8 {
		t.Fatalf("echoes=%d replies=%d: workload not captured", echoes, replies)
	}
	if !sawRTT {
		t.Fatal("ECHOREPLY records must carry computed RTTs")
	}
	if devices < 40 { // 5s at 100ms sampling
		t.Fatalf("devices=%d, want ≈50", devices)
	}
}

func TestCollectorRecordsSizes(t *testing.T) {
	s := sim.New(3)
	tb := scenario.BuildWireless(s, scenario.Porter)
	c := NewCollector(s, tb.Laptop.NIC(0), 4096)
	c.Open()
	pg := pinger.Start(s, tb.Laptop, scenario.ServerIP, 2*time.Second)
	s.RunFor(3 * time.Second)
	sizes := map[uint16]bool{}
	for _, rec := range c.Read() {
		if v, ok := rec.(tracefmt.PacketRecord); ok && v.ICMPType == packet.ICMPEcho {
			sizes[v.Size] = true
		}
	}
	s1 := uint16(pinger.WireSize(pg.S1))
	s2 := uint16(pinger.WireSize(pg.S2))
	if !sizes[s1] || !sizes[s2] {
		t.Fatalf("sizes seen %v, want %d and %d", sizes, s1, s2)
	}
}

func TestCollectEndToEnd(t *testing.T) {
	s := sim.New(5)
	tb := scenario.BuildWireless(s, scenario.Porter)
	pinger.Start(s, tb.Laptop, scenario.ServerIP, 10*time.Second)
	tr, err := Collect(s, tb.Laptop.NIC(0), 8192, 10*time.Second, "porter test")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Comment != "porter test" || tr.Header.Device != "wavelan0" {
		t.Fatalf("header = %+v", tr.Header)
	}
	if len(tr.Packets) < 30 {
		t.Fatalf("packets = %d, want >= 30 over 10s", len(tr.Packets))
	}
	if len(tr.Devices) < 80 {
		t.Fatalf("devices = %d, want ≈100", len(tr.Devices))
	}
	if tr.TotalLost() != 0 {
		t.Fatalf("lost = %d with a huge buffer", tr.TotalLost())
	}
	// Records must be time-ordered.
	for i := 1; i < len(tr.Packets); i++ {
		if tr.Packets[i].At < tr.Packets[i-1].At {
			t.Fatal("packet records out of order")
		}
	}
}

func TestCollectWithTinyBufferLosesRecords(t *testing.T) {
	s := sim.New(5)
	tb := scenario.BuildWireless(s, scenario.Porter)
	pinger.Start(s, tb.Laptop, scenario.ServerIP, 10*time.Second)
	// A 4-record kernel buffer drained every 500ms will certainly overrun:
	// each second produces ~6 packet records plus 10 device records.
	tr, err := Collect(s, tb.Laptop.NIC(0), 4, 10*time.Second, "lossy")
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalLost() == 0 {
		t.Fatal("tiny buffer should overrun and report lost records")
	}
}

func TestDaemonStopsAtEnd(t *testing.T) {
	s := sim.New(5)
	tb := scenario.BuildWireless(s, scenario.Porter)
	pinger.Start(s, tb.Laptop, scenario.ServerIP, 3*time.Second)
	tr, err := Collect(s, tb.Laptop.NIC(0), 8192, 3*time.Second, "short")
	if err != nil {
		t.Fatal(err)
	}
	limit := int64(3100 * time.Millisecond)
	for _, p := range tr.Packets {
		if p.At > limit {
			t.Fatalf("record at %v after collection end", p.At)
		}
	}
}

func TestHostClockSkewStretchesIntervals(t *testing.T) {
	s := sim.New(3)
	tb := scenario.BuildWireless(s, scenario.Porter)
	c := NewCollector(s, tb.Laptop.NIC(0), 4096)
	c.Skew = 0.10 // absurd 10% skew to make the effect unmistakable
	c.Open()
	pinger.Start(s, tb.Laptop, scenario.ServerIP, 3*time.Second)
	s.RunFor(4 * time.Second)
	c.Close()

	// Compare against a perfect-clock collection of the identical run.
	s2 := sim.New(3)
	tb2 := scenario.BuildWireless(s2, scenario.Porter)
	c2 := NewCollector(s2, tb2.Laptop.NIC(0), 4096)
	c2.Open()
	pinger.Start(s2, tb2.Laptop, scenario.ServerIP, 3*time.Second)
	s2.RunFor(4 * time.Second)
	c2.Close()

	rtts := func(recs []any) []int64 {
		var out []int64
		for _, rec := range recs {
			if v, ok := rec.(tracefmt.PacketRecord); ok && v.RTT > 0 {
				out = append(out, v.RTT)
			}
		}
		return out
	}
	skewed, perfect := rtts(c.Read()), rtts(c2.Read())
	if len(skewed) == 0 || len(skewed) != len(perfect) {
		t.Fatalf("rtt counts differ: %d vs %d", len(skewed), len(perfect))
	}
	for i := range skewed {
		ratio := float64(skewed[i]) / float64(perfect[i])
		if ratio < 1.0999 || ratio > 1.1001 {
			t.Fatalf("rtt %d stretched by %.5f, want exactly 1.1", i, ratio)
		}
	}
}

func TestHostClockGranularityQuantizes(t *testing.T) {
	s := sim.New(3)
	tb := scenario.BuildWireless(s, scenario.Porter)
	c := NewCollector(s, tb.Laptop.NIC(0), 4096)
	c.Granularity = time.Millisecond
	c.Open()
	pinger.Start(s, tb.Laptop, scenario.ServerIP, 3*time.Second)
	s.RunFor(4 * time.Second)
	c.Close()
	saw := 0
	for _, rec := range c.Read() {
		if v, ok := rec.(tracefmt.PacketRecord); ok {
			saw++
			if v.At%int64(time.Millisecond) != 0 {
				t.Fatalf("timestamp %d not on 1ms grid", v.At)
			}
			if v.RTT > 0 && v.RTT%int64(time.Millisecond) != 0 {
				t.Fatalf("rtt %d not on 1ms grid", v.RTT)
			}
		}
	}
	if saw == 0 {
		t.Fatal("no packet records")
	}
}

func TestCollectWithDefaultsBufCap(t *testing.T) {
	s := sim.New(5)
	tb := scenario.BuildWireless(s, scenario.Porter)
	pinger.Start(s, tb.Laptop, scenario.ServerIP, 2*time.Second)
	tr, err := CollectWith(s, tb.Laptop.NIC(0), Opts{}, 2*time.Second, "defaults")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) == 0 || tr.TotalLost() != 0 {
		t.Fatalf("packets=%d lost=%d", len(tr.Packets), tr.TotalLost())
	}
}
