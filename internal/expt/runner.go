// The experiment harness's worker pool. Every figure and table is built
// from independent cells — one (scenario, trial, bench) combination per
// cell, each owning a private scheduler — so the cells can fan out across
// OS threads while the merged output stays byte-identical at any worker
// count.

package expt

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves Options.Workers to a concrete pool size.
func workers(o Options) int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// forEach runs fn(0) .. fn(n-1) across min(workers, n) goroutines.
//
// Determinism contract: each fn(i) must write only to its own index of any
// shared output slice, and must derive all randomness from its own
// scheduler (seeded by i). Under that contract the merged output is
// independent of worker count and schedule. Every job runs even after a
// failure — no early exit — and the lowest-index error is returned, so
// error selection is also schedule-independent.
func forEach(o Options, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := workers(o)
	if w > n {
		w = n
	}
	if w == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
