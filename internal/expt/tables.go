// Table generators for Figures 6-8: each scenario gets four live ("Real")
// trials and four modulated trials, the latter each driven by an
// independently collected and distilled trace, exactly as Section 5.1
// describes. The Ethernet reference row runs the benchmark on the bare
// modulation testbed.

package expt

import (
	"fmt"
	"strings"

	"tracemod/internal/core"
	"tracemod/internal/scenario"
	"tracemod/internal/stats"
)

// Cell is one Real-vs-Modulated comparison.
type Cell struct {
	Real, Mod stats.Summary
}

// Agrees applies the paper's accuracy criterion: the difference of the
// means is within the sum of the standard deviations.
func (c Cell) Agrees() bool { return stats.Overlaps(c.Real, c.Mod) }

// Sigma is the divergence in multiples of the summed deviations.
func (c Cell) Sigma() float64 { return stats.DivergenceSigma(c.Real, c.Mod) }

// WebRow is one scenario's Figure 6 entry.
type WebRow struct {
	Scenario string
	Cell
}

// WebTable is the Figure 6 reproduction.
type WebTable struct {
	Rows     []WebRow
	Ethernet stats.Summary
}

// FTPRow is one scenario's Figure 7 entry.
type FTPRow struct {
	Scenario   string
	Send, Recv Cell
}

// FTPTable is the Figure 7 reproduction.
type FTPTable struct {
	Rows                       []FTPRow
	EthernetSend, EthernetRecv stats.Summary
}

// PhaseNames are the Andrew benchmark phases in Figure 8 order.
var PhaseNames = [6]string{"MakeDir", "Copy", "ScanDir", "ReadAll", "Make", "Total"}

// AndrewRow is one scenario's Figure 8 entry: a cell per phase plus total.
type AndrewRow struct {
	Scenario string
	Phases   [6]Cell
}

// AndrewTable is the Figure 8 reproduction.
type AndrewTable struct {
	Rows     []AndrewRow
	Ethernet [6]stats.Summary
}

// collectTraces gathers one distilled trace per modulated trial, one
// worker-pool cell per trial.
func collectTraces(sc scenario.Scenario, o Options) ([]core.Trace, error) {
	traces := make([]core.Trace, o.Trials)
	err := forEach(o, o.Trials, func(i int) error {
		res, err := Collect(sc, i, o)
		if err != nil {
			return fmt.Errorf("collect %s trial %d: %w", sc.Name, i, err)
		}
		traces[i] = res.Replay
		return nil
	})
	if err != nil {
		return nil, err
	}
	return traces, nil
}

// benchCell runs o.Trials live and modulated trials of benchmark b and
// summarizes elapsed seconds. The 2×Trials runs are independent cells:
// job 2i is trial i live, job 2i+1 is trial i modulated, so the error
// priority matches the old serial live-then-modulated order.
func benchCell(sc scenario.Scenario, b Bench, traces []core.Trace, comp core.PerByte, o Options) (Cell, [][6]float64, [][6]float64, error) {
	realR := make([]Result, o.Trials)
	modR := make([]Result, o.Trials)
	err := forEach(o, 2*o.Trials, func(j int) error {
		i := j / 2
		if j%2 == 0 {
			r, err := RunLive(sc, b, i, o)
			if err != nil {
				return fmt.Errorf("live %s/%v trial %d: %w", sc.Name, b, i, err)
			}
			realR[i] = r
			return nil
		}
		m, err := RunModulated(traces[i], b, i, comp, o)
		if err != nil {
			return fmt.Errorf("mod %s/%v trial %d: %w", sc.Name, b, i, err)
		}
		modR[i] = m
		return nil
	})
	if err != nil {
		return Cell{}, nil, nil, err
	}
	var real, mod []float64
	var realPhases, modPhases [][6]float64
	for i := 0; i < o.Trials; i++ {
		real = append(real, realR[i].Elapsed.Seconds())
		if realR[i].Phases != nil {
			realPhases = append(realPhases, realR[i].Phases.Seconds())
		}
		mod = append(mod, modR[i].Elapsed.Seconds())
		if modR[i].Phases != nil {
			modPhases = append(modPhases, modR[i].Phases.Seconds())
		}
	}
	return Cell{Real: stats.Summarize(real), Mod: stats.Summarize(mod)}, realPhases, modPhases, nil
}

// ethernetReference runs the benchmark on the bare testbed, one cell per
// trial.
func ethernetReference(b Bench, o Options) (stats.Summary, [][6]float64, error) {
	rs := make([]Result, o.Trials)
	err := forEach(o, o.Trials, func(i int) error {
		r, err := RunEthernetReference(b, i, o)
		if err != nil {
			return err
		}
		rs[i] = r
		return nil
	})
	if err != nil {
		return stats.Summary{}, nil, err
	}
	var xs []float64
	var phases [][6]float64
	for _, r := range rs {
		xs = append(xs, r.Elapsed.Seconds())
		if r.Phases != nil {
			phases = append(phases, r.Phases.Seconds())
		}
	}
	return stats.Summarize(xs), phases, nil
}

// Fig6Web reproduces Figure 6 (the Web benchmark table).
func Fig6Web(o Options) (*WebTable, error) {
	comp, err := MeasureCompensation(o)
	if err != nil {
		return nil, err
	}
	t := &WebTable{}
	for _, sc := range scenario.All() {
		traces, err := collectTraces(sc, o)
		if err != nil {
			return nil, err
		}
		cell, _, _, err := benchCell(sc, BenchWeb, traces, comp, o)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, WebRow{Scenario: sc.Name, Cell: cell})
	}
	ref, _, err := ethernetReference(BenchWeb, o)
	if err != nil {
		return nil, err
	}
	t.Ethernet = ref
	return t, nil
}

// Fig7FTP reproduces Figure 7 (the FTP benchmark table).
func Fig7FTP(o Options) (*FTPTable, error) {
	comp, err := MeasureCompensation(o)
	if err != nil {
		return nil, err
	}
	t := &FTPTable{}
	for _, sc := range scenario.All() {
		traces, err := collectTraces(sc, o)
		if err != nil {
			return nil, err
		}
		send, _, _, err := benchCell(sc, BenchFTPSend, traces, comp, o)
		if err != nil {
			return nil, err
		}
		recv, _, _, err := benchCell(sc, BenchFTPRecv, traces, comp, o)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, FTPRow{Scenario: sc.Name, Send: send, Recv: recv})
	}
	var err2 error
	if t.EthernetSend, _, err2 = ethernetReference(BenchFTPSend, o); err2 != nil {
		return nil, err2
	}
	if t.EthernetRecv, _, err2 = ethernetReference(BenchFTPRecv, o); err2 != nil {
		return nil, err2
	}
	return t, nil
}

// Fig8Andrew reproduces Figure 8 (the Andrew benchmark table).
func Fig8Andrew(o Options) (*AndrewTable, error) {
	comp, err := MeasureCompensation(o)
	if err != nil {
		return nil, err
	}
	t := &AndrewTable{}
	for _, sc := range scenario.All() {
		traces, err := collectTraces(sc, o)
		if err != nil {
			return nil, err
		}
		_, realPh, modPh, err := benchCell(sc, BenchAndrew, traces, comp, o)
		if err != nil {
			return nil, err
		}
		row := AndrewRow{Scenario: sc.Name}
		for ph := 0; ph < 6; ph++ {
			var rs, ms []float64
			for _, tr := range realPh {
				rs = append(rs, tr[ph])
			}
			for _, tr := range modPh {
				ms = append(ms, tr[ph])
			}
			row.Phases[ph] = Cell{Real: stats.Summarize(rs), Mod: stats.Summarize(ms)}
		}
		t.Rows = append(t.Rows, row)
	}
	_, refPh, err := ethernetReference(BenchAndrew, o)
	if err != nil {
		return nil, err
	}
	for ph := 0; ph < 6; ph++ {
		var xs []float64
		for _, tr := range refPh {
			xs = append(xs, tr[ph])
		}
		t.Ethernet[ph] = stats.Summarize(xs)
	}
	return t, nil
}

// Format renders the table in the paper's style.
func (t *WebTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: Elapsed Times for World Wide Web Benchmark (seconds)\n")
	fmt.Fprintf(&b, "%-12s %-16s %-16s %-8s\n", "Scenario", "Real (s)", "Modulated (s)", "agree?")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %-16s %-16s %v (%.2fσ)\n", r.Scenario, r.Real, r.Mod, r.Agrees(), r.Sigma())
	}
	fmt.Fprintf(&b, "%-12s %-16s %-16s\n", "Ethernet", t.Ethernet, "—")
	return b.String()
}

// Format renders the table in the paper's style.
func (t *FTPTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Elapsed Times for FTP Benchmark (seconds)\n")
	fmt.Fprintf(&b, "%-12s %-5s %-16s %-16s %-8s\n", "Scenario", "dir", "Real (s)", "Modulated (s)", "agree?")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %-5s %-16s %-16s %v (%.2fσ)\n", r.Scenario, "send", r.Send.Real, r.Send.Mod, r.Send.Agrees(), r.Send.Sigma())
		fmt.Fprintf(&b, "%-12s %-5s %-16s %-16s %v (%.2fσ)\n", "", "recv", r.Recv.Real, r.Recv.Mod, r.Recv.Agrees(), r.Recv.Sigma())
	}
	fmt.Fprintf(&b, "%-12s %-5s %-16s\n", "Ethernet", "send", t.EthernetSend)
	fmt.Fprintf(&b, "%-12s %-5s %-16s\n", "", "recv", t.EthernetRecv)
	return b.String()
}

// Format renders the table in the paper's style.
func (t *AndrewTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: Elapsed Times for Andrew Benchmark Phases (seconds)\n")
	fmt.Fprintf(&b, "%-12s %-5s", "Scenario", "")
	for _, n := range PhaseNames {
		fmt.Fprintf(&b, " %-15s", n)
	}
	fmt.Fprintln(&b)
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %-5s", r.Scenario, "Real")
		for _, c := range r.Phases {
			fmt.Fprintf(&b, " %-15s", c.Real)
		}
		fmt.Fprintln(&b)
		fmt.Fprintf(&b, "%-12s %-5s", "", "Mod.")
		for _, c := range r.Phases {
			fmt.Fprintf(&b, " %-15s", c.Mod)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-12s %-5s", "Ethernet", "Real")
	for _, s := range t.Ethernet {
		fmt.Fprintf(&b, " %-15s", s)
	}
	fmt.Fprintln(&b)
	return b.String()
}
