// Figure 1 — Effect of Delay Compensation: FTP transfers of varying sizes
// over a synthetic WaveLAN-like replay trace, fetched and stored, with and
// without inbound delay compensation; plus the slower-network check that
// shows compensation is a property of the modulation setup, not of the
// traced network.

package expt

import (
	"fmt"
	"strings"
	"time"

	"tracemod/internal/apps/ftp"
	"tracemod/internal/core"
	"tracemod/internal/modulation"
	"tracemod/internal/replay"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/transport"
)

// Fig1Point is one transfer's measurement.
type Fig1Point struct {
	SizeMB          int
	Store           time.Duration // outbound, unaffected by compensation
	FetchRaw        time.Duration // inbound, no compensation
	FetchComp       time.Duration // inbound, compensated
	ThroughputMbps3 [3]float64    // store, fetch-raw, fetch-comp
}

// Fig1Result is the full figure.
type Fig1Result struct {
	Compensation core.PerByte
	Points       []Fig1Point
	// SlowNet verifies compensation independence: the same compensation
	// value applied to a much slower synthetic network.
	SlowStore, SlowFetchRaw, SlowFetchComp time.Duration
}

// fig1Transfer runs one modulated FTP transfer with no disk model (the
// figure isolates network behaviour).
func fig1Transfer(trace core.Trace, dir ftp.Direction, size int, comp core.PerByte, o Options) (time.Duration, error) {
	s := sim.New(o.BaseSeed + 3301)
	tb := scenario.BuildEthernet(s)
	dev := modulation.StartDaemon(s, trace, true)
	eng := modulation.NewEngine(modulation.SimClock{S: s}, dev, modulation.Config{
		Tick:         o.Tick,
		InboundExtra: PhysicalInboundExtra(),
		Compensation: comp,
		RNG:          s.RNG("fig1"),
	})
	modulation.Install(tb.Laptop, eng)
	ct, st := transport.NewTCP(tb.Laptop), transport.NewTCP(tb.Server)
	ftp.Serve(s, st)
	var elapsed time.Duration
	var err error
	s.Spawn("fig1", func(p *sim.Proc) {
		elapsed, err = ftp.Transfer(p, ct, scenario.ModServer, dir, size, 0)
	})
	s.RunUntil(s.Now().Add(o.RunCap))
	if err != nil {
		return 0, err
	}
	if elapsed == 0 {
		return 0, fmt.Errorf("expt: fig1 transfer did not finish")
	}
	return elapsed, nil
}

// Fig1 reproduces Figure 1.
func Fig1(o Options) (*Fig1Result, error) {
	comp, err := MeasureCompensation(o)
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{Compensation: comp}
	trace := replay.WaveLANLike(time.Hour)
	sizes := []int{1, 2, 4, 6, 8, 10}

	// Independence check on a much slower network (Section 3.3): the same
	// compensation value must still move fetch toward store.
	slow := replay.SlowNetLike(2 * time.Hour)
	const slowSize = 1 << 20

	// Every transfer is an independent cell: fan them all out and merge by
	// index. Jobs 0..3*len(sizes)-1 are the main grid, size-major in
	// (store, fetch-raw, fetch-comp) order; the last three are the
	// slow-network check in the same order.
	times := make([]time.Duration, 3*len(sizes)+3)
	err = forEach(o, len(times), func(i int) error {
		tr, size := trace, 0
		j := i
		if i < 3*len(sizes) {
			size = sizes[i/3] << 20
		} else {
			tr, size, j = slow, slowSize, i-3*len(sizes)
		}
		dir, c := ftp.Send, comp
		switch j % 3 {
		case 1:
			dir, c = ftp.Recv, 0
		case 2:
			dir = ftp.Recv
		}
		d, err := fig1Transfer(tr, dir, size, c, o)
		if err != nil {
			return err
		}
		times[i] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, mb := range sizes {
		pt := Fig1Point{SizeMB: mb,
			Store: times[3*si], FetchRaw: times[3*si+1], FetchComp: times[3*si+2]}
		mbits := float64(mb<<20) * 8 / 1e6
		pt.ThroughputMbps3 = [3]float64{
			mbits / pt.Store.Seconds(),
			mbits / pt.FetchRaw.Seconds(),
			mbits / pt.FetchComp.Seconds(),
		}
		res.Points = append(res.Points, pt)
	}
	res.SlowStore = times[3*len(sizes)]
	res.SlowFetchRaw = times[3*len(sizes)+1]
	res.SlowFetchComp = times[3*len(sizes)+2]
	return res, nil
}

// Format renders the figure's data as aligned series.
func (r *Fig1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: Effect of Delay Compensation (synthetic WaveLAN-like trace)\n")
	fmt.Fprintf(&b, "compensation = %.1f ns/B (physical path ≈ %.2f Mb/s)\n", float64(r.Compensation), r.Compensation.BitsPerSec()/1e6)
	fmt.Fprintf(&b, "%-8s %-12s %-14s %-14s %-24s\n", "size", "store", "fetch(raw)", "fetch(comp)", "throughput Mb/s (s/f/fc)")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8s %-12v %-14v %-14v %.3f / %.3f / %.3f\n",
			fmt.Sprintf("%dMB", p.SizeMB), p.Store.Round(time.Millisecond),
			p.FetchRaw.Round(time.Millisecond), p.FetchComp.Round(time.Millisecond),
			p.ThroughputMbps3[0], p.ThroughputMbps3[1], p.ThroughputMbps3[2])
	}
	fmt.Fprintf(&b, "slow-network check (1MB, ≈100Kb/s trace): store=%v fetch(raw)=%v fetch(comp)=%v\n",
		r.SlowStore.Round(time.Millisecond), r.SlowFetchRaw.Round(time.Millisecond), r.SlowFetchComp.Round(time.Millisecond))
	return b.String()
}
