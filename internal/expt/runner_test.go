package expt

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"tracemod/internal/scenario"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		o := fastOptions()
		o.Workers = w
		const n = 100
		var counts [n]int32
		if err := forEach(o, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Indexes 7 and 63 fail; whichever worker count runs, the reported
	// error must be index 7's — and every job must still run (no early
	// exit), or error selection would depend on the schedule.
	for _, w := range []int{1, 4, 16} {
		o := fastOptions()
		o.Workers = w
		var ran int32
		err := forEach(o, 64, func(i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 7 || i == 63 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 7 failed" {
			t.Fatalf("workers=%d: err = %v, want job 7's", w, err)
		}
		if ran != 64 {
			t.Fatalf("workers=%d: ran %d jobs, want 64", w, ran)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := forEach(fastOptions(), 0, func(int) error {
		return errors.New("must not run")
	}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelRunnerByteIdentical is the harness's determinism guarantee:
// the same options produce byte-identical rendered output at any worker
// count. Runs under -race in CI, so it also proves the cells share no
// mutable state.
func TestParallelRunnerByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker-count figure runs are slow")
	}
	base := fastOptions()
	render := func(o Options) string {
		fig, err := FigScenario(scenario.Porter, o)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := AblateCompensation(o)
		if err != nil {
			t.Fatal(err)
		}
		return fig.Format() + ab.Format()
	}
	workerCounts := []int{1, 4, runtime.NumCPU()}
	want := ""
	for i, w := range workerCounts {
		o := base
		o.Workers = w
		got := render(o)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("output at workers=%d differs from workers=%d:\n--- want ---\n%s\n--- got ---\n%s",
				w, workerCounts[0], want, got)
		}
	}
}
