// Package expt is the experiment harness: it composes the substrates into
// the paper's validation pipeline — live benchmark runs over the simulated
// wireless scenarios, trace collection and distillation, delay-compensation
// measurement, and modulated benchmark runs over the isolated Ethernet —
// and regenerates every table and figure in the evaluation (Figures 1-8).
package expt

import (
	"fmt"
	"math/rand"
	"time"

	"tracemod/internal/apps/ftp"
	"tracemod/internal/apps/nfs"
	"tracemod/internal/apps/web"
	"tracemod/internal/capture"
	"tracemod/internal/core"
	"tracemod/internal/distill"
	"tracemod/internal/modulation"
	"tracemod/internal/obs/span"
	"tracemod/internal/packet"
	"tracemod/internal/pinger"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
	"tracemod/internal/tracefmt"
	"tracemod/internal/transport"
)

// Options parameterizes a full experiment run.
type Options struct {
	// Trials per cell; the paper runs four.
	Trials int
	// BaseSeed derives every trial's seed deterministically.
	BaseSeed int64
	// Tick is the modulation scheduling granularity.
	Tick time.Duration
	// Distill holds the sliding-window configuration.
	Distill distill.Config
	// FTPSize is the FTP benchmark's file size.
	FTPSize int
	// WebProcMean is the browser's per-object processing time.
	WebProcMean time.Duration
	// RunCap bounds each benchmark run in virtual time.
	RunCap time.Duration
	// Workers caps how many experiment cells run concurrently; 0 means
	// runtime.NumCPU(), 1 runs serially. Every cell owns a private
	// scheduler seeded from its indices, so results — and rendered output
	// bytes — are identical at any worker count.
	Workers int
}

// Default returns the paper's configuration.
func Default() Options {
	return Options{
		Trials:      4,
		BaseSeed:    1997,
		Tick:        modulation.DefaultTick,
		Distill:     distill.DefaultConfig(),
		FTPSize:     ftp.DefaultSize,
		WebProcMean: web.DefaultProcMean,
		RunCap:      2 * time.Hour,
	}
}

// WebTraces returns the fixed five-user workload replayed in every Web
// benchmark run (the paper replays the same captured references
// everywhere).
func WebTraces() []web.UserTrace {
	return web.GenTraces(rand.New(rand.NewSource(42)))
}

// AndrewTree returns the fixed Andrew input tree.
func AndrewTree() nfs.Tree {
	return nfs.GenTree(rand.New(rand.NewSource(43)))
}

// Bench selects a benchmark.
type Bench int

// The paper's benchmarks.
const (
	BenchWeb Bench = iota
	BenchFTPSend
	BenchFTPRecv
	BenchAndrew
)

func (b Bench) String() string {
	switch b {
	case BenchWeb:
		return "web"
	case BenchFTPSend:
		return "ftp-send"
	case BenchFTPRecv:
		return "ftp-recv"
	default:
		return "andrew"
	}
}

// Result is one benchmark trial's outcome.
type Result struct {
	Elapsed time.Duration
	// Phases is set for the Andrew benchmark only.
	Phases *nfs.PhaseTimes
}

// runBench wires the chosen benchmark between laptop and server and runs
// it to completion. workSeed drives the benchmark's own CPU/processing
// jitter so real and modulated trials of the same index share a workload.
func runBench(s *sim.Scheduler, laptop, server *scenarioNode, b Bench, workSeed int64, o Options) (Result, error) {
	var res Result
	var benchErr error
	wrng := rand.New(rand.NewSource(workSeed))

	switch b {
	case BenchWeb:
		ct, st := transport.NewTCP(laptop.node), transport.NewTCP(server.node)
		web.Serve(s, st)
		traces := WebTraces()
		s.Spawn("web-bench", func(p *sim.Proc) {
			res.Elapsed, benchErr = web.Run(p, ct, server.addr, traces, web.Config{
				ProcMean: o.WebProcMean, RNG: wrng,
			})
		})
	case BenchFTPSend, BenchFTPRecv:
		ct, st := transport.NewTCP(laptop.node), transport.NewTCP(server.node)
		ftp.Serve(s, st)
		dir := ftp.Send
		if b == BenchFTPRecv {
			dir = ftp.Recv
		}
		s.Spawn("ftp-bench", func(p *sim.Proc) {
			res.Elapsed, benchErr = ftp.Transfer(p, ct, server.addr, dir, o.FTPSize, ftp.DefaultDiskRate)
		})
	case BenchAndrew:
		cu, su := transport.NewUDP(laptop.node), transport.NewUDP(server.node)
		if _, err := nfs.NewServer(s, su); err != nil {
			return res, err
		}
		client, err := nfs.NewClient(s, cu, server.addr)
		if err != nil {
			return res, err
		}
		tree := AndrewTree()
		s.Spawn("andrew-bench", func(p *sim.Proc) {
			var pt nfs.PhaseTimes
			pt, benchErr = nfs.RunAndrew(p, client, tree, nfs.AndrewConfig{CPUScale: 1, RNG: wrng})
			res.Phases = &pt
			res.Elapsed = pt.Total
		})
	}

	s.RunUntil(s.Now().Add(o.RunCap))
	if benchErr != nil {
		return res, benchErr
	}
	if res.Elapsed == 0 {
		return res, fmt.Errorf("expt: %v did not finish within %v", b, o.RunCap)
	}
	return res, nil
}

// scenarioNode pairs a node with the address peers use to reach it.
type scenarioNode struct {
	node *simnet.Node
	addr packet.IPAddr
}

// RunLive executes one benchmark trial over the live wireless scenario.
func RunLive(sc scenario.Scenario, b Bench, trial int, o Options) (Result, error) {
	s := sim.New(o.BaseSeed + int64(trial)*101)
	tb := scenario.BuildWireless(s, sc)
	return runBench(s,
		&scenarioNode{tb.Laptop, scenario.LaptopIP},
		&scenarioNode{tb.Server, scenario.ServerIP},
		b, workloadSeed(o, trial), o)
}

// RunEthernetReference executes one benchmark trial over the bare isolated
// Ethernet (the reference rows of Figures 6-8).
func RunEthernetReference(b Bench, trial int, o Options) (Result, error) {
	s := sim.New(o.BaseSeed + int64(trial)*103)
	tb := scenario.BuildEthernet(s)
	return runBench(s,
		&scenarioNode{tb.Laptop, scenario.ModLaptop},
		&scenarioNode{tb.Server, scenario.ModServer},
		b, workloadSeed(o, trial), o)
}

// workloadSeed keeps the benchmark-internal randomness identical across
// real and modulated trials of the same index.
func workloadSeed(o Options, trial int) int64 { return o.BaseSeed*7919 + int64(trial) }

// Collect performs one collection traversal of the scenario — the pinger
// workload plus the in-kernel tracer — and distills the result.
func Collect(sc scenario.Scenario, trial int, o Options) (*distill.Result, error) {
	_, res, err := CollectFull(sc, trial, o)
	return res, err
}

// CollectFull is Collect, also returning the raw collected trace (the
// figure harness reads device records for the signal-level series).
func CollectFull(sc scenario.Scenario, trial int, o Options) (*tracefmt.Trace, *distill.Result, error) {
	s := sim.New(o.BaseSeed + int64(trial)*107 + 13)
	tb := scenario.BuildWireless(s, sc)
	dur := sc.Profile.Duration()
	pinger.Start(s, tb.Laptop, scenario.ServerIP, dur)
	tr, err := capture.Collect(s, tb.Laptop.NIC(0), 1<<16, dur,
		fmt.Sprintf("%s trial %d", sc.Name, trial))
	if err != nil {
		return nil, nil, err
	}
	res, err := distill.Distill(tr, o.Distill)
	if err != nil {
		return nil, nil, err
	}
	return tr, res, nil
}

// MeasureCompensation measures the physical modulation network with the
// same collection tools and returns its long-term average bottleneck
// per-byte cost (Section 3.3). It depends only on the modulation setup, so
// one measurement serves every experiment.
func MeasureCompensation(o Options) (core.PerByte, error) {
	s := sim.New(o.BaseSeed + 7)
	tb := scenario.BuildEthernet(s)
	const dur = 60 * time.Second
	pinger.Start(s, tb.Laptop, scenario.ModServer, dur)
	tr, err := capture.Collect(s, tb.Laptop.NIC(0), 1<<16, dur, "compensation measurement")
	if err != nil {
		return 0, err
	}
	res, err := distill.Distill(tr, o.Distill)
	if err != nil {
		return 0, err
	}
	return res.Replay.MeanVb(), nil
}

// PhysicalInboundExtra is the modulation testbed's receive-path per-byte
// cost, charged serially on inbound packets by the emulated kernel (the
// endpoint-placement artifact Figure 1 demonstrates); the measured
// Compensation exists to cancel it.
func PhysicalInboundExtra() core.PerByte {
	return simnet.Ethernet10().PerByte
}

// RunModulated executes one benchmark trial on the isolated Ethernet with
// the modulation layer driven by trace (looped, as the daemon does for
// benchmarks that outlast the traversal).
func RunModulated(trace core.Trace, b Bench, trial int, comp core.PerByte, o Options) (Result, error) {
	r, _, err := runModulated(trace, b, trial, comp, o, nil)
	return r, err
}

// RunModulatedTraced is RunModulated with full span sampling: every packet
// the engine shapes gets a self-rooted "modulation.packet" span with its
// cursor, bottleneck, coalescing, and delivery events, timestamped in
// virtual time off the trial's own scheduler. Spans are collected up to
// maxSpans (0 = the collector's default cap) and returned alongside the
// benchmark result — the `expt -trace-out` feed.
func RunModulatedTraced(trace core.Trace, b Bench, trial int, comp core.PerByte, o Options, maxSpans int) (Result, []*span.SpanData, error) {
	sink := span.NewCollectorSink(maxSpans)
	r, _, err := runModulated(trace, b, trial, comp, o, sink)
	return r, sink.Spans(), err
}

func runModulated(trace core.Trace, b Bench, trial int, comp core.PerByte, o Options, sink *span.CollectorSink) (Result, *modulation.Engine, error) {
	s := sim.New(o.BaseSeed + int64(trial)*109 + 29)
	tb := scenario.BuildEthernet(s)
	dev := modulation.StartDaemon(s, trace, true)
	var spans *span.Tracer
	if sink != nil {
		spans = span.New(span.Config{
			Sample: 1,
			Sink:   sink,
			Now:    modulation.SimClock{S: s}.Now,
			// Deterministic IDs: a traced run's span dump is reproducible
			// for the same seed and trial, like every other expt output.
			Seed: uint64(o.BaseSeed)*2654435761 + uint64(trial) + 1,
		})
	}
	eng := modulation.NewEngine(modulation.SimClock{S: s}, dev, modulation.Config{
		Tick:         o.Tick,
		InboundExtra: PhysicalInboundExtra(),
		Compensation: comp,
		RNG:          s.RNG("modulation"),
		Spans:        spans,
	})
	modulation.Install(tb.Laptop, eng)
	r, err := runBench(s,
		&scenarioNode{tb.Laptop, scenario.ModLaptop},
		&scenarioNode{tb.Server, scenario.ModServer},
		b, workloadSeed(o, trial), o)
	return r, eng, err
}
