// Figures 2-5 — scenario characteristics: observed signal level plus
// distilled latency, bandwidth, and loss for four trials of each scenario.
// Motion scenarios (Porter, Flagstaff, Wean) plot the range of observed
// values per checkpoint leg, as the paper's vertical bars; the stationary
// Chatterbox scenario plots histograms.

package expt

import (
	"fmt"
	"strings"
	"time"

	"tracemod/internal/scenario"
	"tracemod/internal/stats"
)

// LegPoint is one checkpoint leg's observation ranges across trials.
type LegPoint struct {
	// Label names the leg's starting checkpoint (the figure's X label).
	Label string
	// Ranges across all trials for samples within the leg.
	Signal        stats.Range
	LatencyMs     stats.Range
	BandwidthKbps stats.Range
	LossPct       stats.Range
}

// ScenarioFig is one of Figures 2-5.
type ScenarioFig struct {
	Scenario string
	Motion   bool

	// Points is the per-checkpoint series (motion scenarios).
	Points []LegPoint

	// Histograms for the stationary scenario (Figure 5).
	SignalH, LatencyH, BandwidthH, LossH *stats.Histogram

	// Diagnostics.
	Trials      int
	Corrections int
}

// FigScenario reproduces the scenario's characteristics figure from
// o.Trials collection traversals.
func FigScenario(sc scenario.Scenario, o Options) (*ScenarioFig, error) {
	fig := &ScenarioFig{Scenario: sc.Name, Motion: sc.Motion, Trials: o.Trials}

	type trialData struct {
		signalAt []struct {
			at time.Duration
			v  float64
		}
		latency []struct {
			at time.Duration
			v  float64
		} // ms
		bandwidth []struct {
			at time.Duration
			v  float64
		} // kb/s
		loss []struct {
			at time.Duration
			v  float64
		} // percent
	}
	// Each collection traversal is an independent cell: run them across
	// the worker pool, one slot per trial, and reduce in index order.
	trials := make([]trialData, o.Trials)
	corrections := make([]int, o.Trials)
	err := forEach(o, o.Trials, func(i int) error {
		raw, res, err := CollectFull(sc, i, o)
		if err != nil {
			return err
		}
		corrections[i] = res.Corrections
		var td trialData
		start := raw.Header.Start
		if len(raw.Packets) > 0 {
			start = raw.Packets[0].At
		}
		for _, d := range raw.Devices {
			td.signalAt = append(td.signalAt, struct {
				at time.Duration
				v  float64
			}{time.Duration(d.At - start), float64(d.Signal)})
		}
		at := time.Duration(0)
		for _, tu := range res.Replay {
			td.latency = append(td.latency, struct {
				at time.Duration
				v  float64
			}{at, float64(tu.F) / float64(time.Millisecond)})
			td.bandwidth = append(td.bandwidth, struct {
				at time.Duration
				v  float64
			}{at, tu.Vb.BitsPerSec() / 1e3})
			td.loss = append(td.loss, struct {
				at time.Duration
				v  float64
			}{at, tu.L * 100})
			at += tu.D
		}
		trials[i] = td
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, c := range corrections {
		fig.Corrections += c
	}

	if !sc.Motion {
		fig.SignalH = stats.NewHistogram(0, 35, 14)
		fig.LatencyH = stats.NewHistogram(0, 50, 20)
		fig.BandwidthH = stats.NewHistogram(0, 2000, 20)
		fig.LossH = stats.NewHistogram(0, 30, 15)
		for _, td := range trials {
			for _, s := range td.signalAt {
				fig.SignalH.Add(s.v)
			}
			for _, s := range td.latency {
				fig.LatencyH.Add(s.v)
			}
			for _, s := range td.bandwidth {
				fig.BandwidthH.Add(s.v)
			}
			for _, s := range td.loss {
				fig.LossH.Add(s.v)
			}
		}
		return fig, nil
	}

	// Motion: reduce each leg between consecutive checkpoints to ranges.
	// Inter-checkpoint intervals are normalized per the paper: every trial
	// maps onto the same profile timeline.
	cps := sc.Profile.Checkpoints()
	for ci := 0; ci+1 < len(cps); ci++ {
		lo, hi := cps[ci].At, cps[ci+1].At
		inLeg := func(samples []struct {
			at time.Duration
			v  float64
		}) []float64 {
			var vals []float64
			for _, s := range samples {
				if s.at >= lo && s.at < hi {
					vals = append(vals, s.v)
				}
			}
			return vals
		}
		pt := LegPoint{Label: cps[ci].Label}
		var sig, lat, bw, loss []float64
		for _, td := range trials {
			sig = append(sig, inLeg(td.signalAt)...)
			lat = append(lat, inLeg(td.latency)...)
			bw = append(bw, inLeg(td.bandwidth)...)
			loss = append(loss, inLeg(td.loss)...)
		}
		pt.Signal = stats.RangeOf(sig)
		pt.LatencyMs = stats.RangeOf(lat)
		pt.BandwidthKbps = stats.RangeOf(bw)
		pt.LossPct = stats.RangeOf(loss)
		fig.Points = append(fig.Points, pt)
	}
	return fig, nil
}

// Format renders the figure as aligned text series (or histograms for the
// stationary scenario).
func (f *ScenarioFig) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario figure: %s (%d trials, %d corrected estimates)\n", f.Scenario, f.Trials, f.Corrections)
	if f.Motion {
		fmt.Fprintf(&b, "%-8s %-16s %-18s %-20s %-16s\n", "leg", "signal", "latency (ms)", "bandwidth (kb/s)", "loss (%)")
		for _, p := range f.Points {
			fmt.Fprintf(&b, "%-8s %-16s %-18s %-20s %-16s\n",
				p.Label, p.Signal, p.LatencyMs, p.BandwidthKbps, p.LossPct)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "signal level histogram:\n%s", f.SignalH.Render(40))
	fmt.Fprintf(&b, "latency histogram (ms):\n%s", f.LatencyH.Render(40))
	fmt.Fprintf(&b, "bandwidth histogram (kb/s):\n%s", f.BandwidthH.Render(40))
	fmt.Fprintf(&b, "loss histogram (%%):\n%s", f.LossH.Render(40))
	return b.String()
}
