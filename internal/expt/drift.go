// Clock ablation: the paper repeatedly argues that its single-host,
// round-trip-only design is what makes collection survive ordinary clocks
// ("fine-granularity, low-drift, synchronized clocks ... are not yet
// readily available on mobile platforms"). This ablation quantifies that
// claim: clock-rate skew multiplies every interval by (1+skew), so the
// distilled parameters degrade only linearly and gently, while coarse
// timestamp granularity adds quantization noise to the solved equations.

package expt

import (
	"fmt"
	"math"
	"strings"
	"time"

	"tracemod/internal/capture"
	"tracemod/internal/distill"
	"tracemod/internal/pinger"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/tracefmt"
)

// DriftRow is one clock configuration's distillation outcome.
type DriftRow struct {
	Skew        float64
	Granularity time.Duration
	// MeanBWMbps is the distilled duration-weighted bottleneck bandwidth.
	MeanBWMbps float64
	// MeanFMs is the mean distilled latency in milliseconds.
	MeanFMs float64
	// BWErrPct and FErrPct compare against the perfect-clock row.
	BWErrPct, FErrPct float64
	// Corrections counts negative-solution fallbacks (quantization noise
	// pushes solutions negative).
	Corrections int
}

// DriftResult is the clock ablation.
type DriftResult struct {
	Rows []DriftRow
}

// collectSkewed performs a Porter collection with the given host clock.
func collectSkewed(o Options, skew float64, gran time.Duration) (*tracefmt.Trace, error) {
	s := sim.New(o.BaseSeed + 13)
	tb := scenario.BuildWireless(s, scenario.Porter)
	dur := scenario.Porter.Profile.Duration()
	pinger.Start(s, tb.Laptop, scenario.ServerIP, dur)
	return capture.CollectWith(s, tb.Laptop.NIC(0), capture.Opts{
		BufCap: 1 << 16, Skew: skew, Granularity: gran,
	}, dur, "drift ablation")
}

// AblateClock sweeps host clock skew and timestamp granularity on
// otherwise identical Porter traversals.
func AblateClock(o Options) (*DriftResult, error) {
	configs := []struct {
		skew float64
		gran time.Duration
	}{
		{0, 0},                     // perfect clock
		{100e-6, 0},                // 100 ppm crystal
		{1e-2, 0},                  // a pathological 1% skew
		{0, time.Millisecond},      // 1 ms timestamps
		{0, 10 * time.Millisecond}, // the paper's 10 ms clock interrupt
		{100e-6, time.Millisecond}, // realistic 1997 laptop
	}
	res := &DriftResult{}
	var baseBW, baseF float64
	for i, cfg := range configs {
		tr, err := collectSkewed(o, cfg.skew, cfg.gran)
		if err != nil {
			return nil, err
		}
		d, err := distill.Distill(tr, o.Distill)
		if err != nil {
			return nil, fmt.Errorf("drift %v/%v: %w", cfg.skew, cfg.gran, err)
		}
		var fSum float64
		for _, tu := range d.Replay {
			fSum += float64(tu.F)
		}
		row := DriftRow{
			Skew:        cfg.skew,
			Granularity: cfg.gran,
			MeanBWMbps:  d.Replay.MeanVb().BitsPerSec() / 1e6,
			MeanFMs:     fSum / float64(len(d.Replay)) / float64(time.Millisecond),
			Corrections: d.Corrections,
		}
		if i == 0 {
			baseBW, baseF = row.MeanBWMbps, row.MeanFMs
		}
		if baseBW > 0 {
			row.BWErrPct = 100 * (row.MeanBWMbps - baseBW) / baseBW
		}
		if baseF > 0 {
			row.FErrPct = 100 * (row.MeanFMs - baseF) / baseF
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the ablation.
func (r *DriftResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: collection-host clock quality (Porter traversal)\n")
	fmt.Fprintf(&b, "%-10s %-12s %-10s %-10s %-9s %-9s %-6s\n",
		"skew", "granularity", "bw Mb/s", "F ms", "bw err%", "F err%", "corr")
	for _, row := range r.Rows {
		gran := "exact"
		if row.Granularity > 0 {
			gran = row.Granularity.String()
		}
		if math.IsInf(row.MeanBWMbps, 0) || row.MeanBWMbps > 100 {
			// Back-to-back probe spacing quantized to zero: the clock is
			// too coarse for the medium and distillation breaks down,
			// which is why the paper records microsecond timestamps even
			// though its *scheduler* only ticks at 10 ms.
			fmt.Fprintf(&b, "%-10.2g %-12s %-10s %-10.3f %-9s %-+9.2f %-6d\n",
				row.Skew, gran, "broken", row.MeanFMs, "—", row.FErrPct, row.Corrections)
			continue
		}
		fmt.Fprintf(&b, "%-10.2g %-12s %-10.3f %-10.3f %-+9.2f %-+9.2f %-6d\n",
			row.Skew, gran, row.MeanBWMbps, row.MeanFMs, row.BWErrPct, row.FErrPct, row.Corrections)
	}
	b.WriteString("round-trip intervals see skew multiplicatively (err ≈ skew) and never a clock offset;\n")
	b.WriteString("one-way measurements between unsynchronized hosts would instead absorb the full offset into F.\n")
	return b.String()
}
