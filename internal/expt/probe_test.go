package expt

import (
	"testing"
	"time"

	"tracemod/internal/apps/ftp"
	"tracemod/internal/core"
	"tracemod/internal/modulation"
	"tracemod/internal/replay"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/transport"
)

// TestProbePipeline is a development probe: it prints the magnitudes of
// each pipeline stage so the experiment constants can be calibrated.
func TestProbePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("probe only")
	}
	o := Default()
	o.FTPSize = 10 << 20

	// Live FTP over Porter.
	for _, b := range []Bench{BenchFTPSend, BenchFTPRecv} {
		res, err := RunLive(scenario.Porter, b, 0, o)
		if err != nil {
			t.Fatalf("live %v: %v", b, err)
		}
		t.Logf("live porter %v: %v", b, res.Elapsed)
	}
	// Ethernet reference.
	for _, b := range []Bench{BenchFTPSend, BenchFTPRecv} {
		res, err := RunEthernetReference(b, 0, o)
		if err != nil {
			t.Fatalf("eth %v: %v", b, err)
		}
		t.Logf("ethernet %v: %v", b, res.Elapsed)
	}

	// Collection + distillation on Porter.
	dres, err := Collect(scenario.Porter, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("distilled: %s, meanVb bw = %.2f Mb/s", dres.Describe(), dres.Replay.MeanVb().BitsPerSec()/1e6)

	comp, err := MeasureCompensation(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("compensation = %.1f ns/B (%.2f Mb/s)", float64(comp), comp.BitsPerSec()/1e6)

	// Modulated FTP with the distilled trace.
	for _, b := range []Bench{BenchFTPSend, BenchFTPRecv} {
		res, err := RunModulated(dres.Replay, b, 0, comp, o)
		if err != nil {
			t.Fatalf("mod %v: %v", b, err)
		}
		t.Logf("modulated porter %v: %v", b, res.Elapsed)
	}
}

// TestProbeFig1Asymmetry checks whether the endpoint delay-queue asymmetry
// appears without compensation, using the synthetic WaveLAN-like trace.
func TestProbeFig1Asymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("probe only")
	}
	trace := replay.WaveLANLike(time.Hour)
	run := func(dir ftp.Direction, comp float64) time.Duration {
		s := sim.New(123)
		tb := scenario.BuildEthernet(s)
		dev := modulation.StartDaemon(s, trace, true)
		eng := modulation.NewEngine(modulation.SimClock{S: s}, dev, modulation.Config{
			Tick:         modulation.DefaultTick,
			Compensation: core.PerByte(comp),
			RNG:          s.RNG("m"),
		})
		modulation.Install(tb.Laptop, eng)
		ct, st := transport.NewTCP(tb.Laptop), transport.NewTCP(tb.Server)
		ftp.Serve(s, st)
		var el time.Duration
		s.Spawn("bench", func(p *sim.Proc) {
			el, _ = ftp.Transfer(p, ct, scenario.ModServer, dir, 4<<20, 0)
		})
		s.RunUntil(sim.Time(time.Hour))
		return el
	}
	store := run(ftp.Send, 0)
	fetchRaw := run(ftp.Recv, 0)
	fetchComp := run(ftp.Recv, 800) // ≈10 Mb/s physical Vb
	t.Logf("store=%v fetch(raw)=%v fetch(comp)=%v", store, fetchRaw, fetchComp)
}
