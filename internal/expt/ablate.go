// Ablations of the paper's design choices:
//
//   - scheduling granularity: Section 5.4 conjectures the 10 ms clock tick
//     under-delays the Andrew benchmark's short NFS status checks; sweep
//     the tick and watch the modulated elapsed time approach the live run;
//   - compensation magnitude: sweep the inbound compensation as a multiple
//     of the measured physical Vb and watch the fetch/store ratio;
//   - sliding-window width: Section 3.2.2 picks five seconds to balance
//     outlier rejection against reactivity; sweep it and measure the
//     modulated-vs-live FTP error.

package expt

import (
	"fmt"
	"strings"
	"time"

	"tracemod/internal/apps/ftp"
	"tracemod/internal/core"
	"tracemod/internal/distill"
	"tracemod/internal/replay"
	"tracemod/internal/scenario"
)

// TickAblation is one row of the scheduling-granularity sweep.
type TickAblation struct {
	Tick    time.Duration // 0 = exact scheduling
	Andrew  time.Duration // modulated Andrew total
	FTPSend time.Duration // modulated FTP send
	ScanDir time.Duration // the phase the paper calls out
	ReadAll time.Duration
}

// TickAblationResult is the full sweep with its live baselines.
type TickAblationResult struct {
	LiveAndrew  time.Duration
	LiveScanDir time.Duration
	LiveReadAll time.Duration
	LiveFTPSend time.Duration
	Rows        []TickAblation
}

// AblateTick sweeps the modulation tick on the Wean scenario.
func AblateTick(o Options) (*TickAblationResult, error) {
	res := &TickAblationResult{}

	// Preparation: the two live baselines, the trace collection, and the
	// compensation measurement are mutually independent cells.
	var live, liveFTP Result
	var dres *distill.Result
	var comp core.PerByte
	err := forEach(o, 4, func(i int) error {
		var err error
		switch i {
		case 0:
			live, err = RunLive(scenario.Wean, BenchAndrew, 0, o)
		case 1:
			liveFTP, err = RunLive(scenario.Wean, BenchFTPSend, 0, o)
		case 2:
			dres, err = Collect(scenario.Wean, 0, o)
		default:
			comp, err = MeasureCompensation(o)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	res.LiveAndrew = live.Elapsed
	res.LiveScanDir = live.Phases.ScanDir
	res.LiveReadAll = live.Phases.ReadAll
	res.LiveFTPSend = liveFTP.Elapsed

	// Sweep grid: job 2k is tick k's Andrew run, job 2k+1 its FTP run.
	// The two jobs of one row write disjoint fields, so they may fan out.
	ticks := []time.Duration{-1, time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond}
	rows := make([]TickAblation, len(ticks))
	err = forEach(o, 2*len(ticks), func(j int) error {
		k := j / 2
		tick := ticks[k]
		oo := o
		oo.Tick = tick
		row := &rows[k]
		if j%2 == 0 {
			row.Tick = tick
			if tick < 0 {
				row.Tick = 0
			}
			andrew, err := RunModulated(dres.Replay, BenchAndrew, 0, comp, oo)
			if err != nil {
				return fmt.Errorf("ablate tick %v andrew: %w", tick, err)
			}
			row.Andrew = andrew.Elapsed
			row.ScanDir = andrew.Phases.ScanDir
			row.ReadAll = andrew.Phases.ReadAll
			return nil
		}
		ftpRes, err := RunModulated(dres.Replay, BenchFTPSend, 0, comp, oo)
		if err != nil {
			return fmt.Errorf("ablate tick %v ftp: %w", tick, err)
		}
		row.FTPSend = ftpRes.Elapsed
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Format renders the sweep.
func (r *TickAblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: modulation scheduling granularity (Wean trace)\n")
	fmt.Fprintf(&b, "live: andrew=%v scandir=%v readall=%v ftp-send=%v\n",
		r.LiveAndrew.Round(10*time.Millisecond), r.LiveScanDir.Round(10*time.Millisecond),
		r.LiveReadAll.Round(10*time.Millisecond), r.LiveFTPSend.Round(10*time.Millisecond))
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-12s %-12s\n", "tick", "andrew", "scandir", "readall", "ftp-send")
	for _, row := range r.Rows {
		name := row.Tick.String()
		if row.Tick == 0 {
			name = "exact"
		}
		fmt.Fprintf(&b, "%-10s %-12v %-12v %-12v %-12v\n", name,
			row.Andrew.Round(10*time.Millisecond), row.ScanDir.Round(10*time.Millisecond),
			row.ReadAll.Round(10*time.Millisecond), row.FTPSend.Round(10*time.Millisecond))
	}
	return b.String()
}

// CompAblation is one row of the compensation sweep.
type CompAblation struct {
	Scale      float64 // multiple of the measured physical Vb
	Store      time.Duration
	Fetch      time.Duration
	FetchRatio float64 // fetch/store elapsed
}

// CompAblationResult is the compensation sweep.
type CompAblationResult struct {
	Measured core.PerByte
	Rows     []CompAblation
}

// AblateCompensation sweeps inbound compensation on the synthetic
// WaveLAN-like trace (4 MB transfers, no disk model).
func AblateCompensation(o Options) (*CompAblationResult, error) {
	comp, err := MeasureCompensation(o)
	if err != nil {
		return nil, err
	}
	res := &CompAblationResult{Measured: comp}
	trace := replay.WaveLANLike(time.Hour)
	const size = 4 << 20

	// Job 0 is the shared store transfer; jobs 1..len(scales) are the
	// fetch transfers at each compensation scale.
	scales := []float64{0, 0.5, 1.0, 1.5}
	times := make([]time.Duration, 1+len(scales))
	err = forEach(o, len(times), func(i int) error {
		if i == 0 {
			d, err := fig1Transfer(trace, ftp.Send, size, comp, o)
			times[0] = d
			return err
		}
		c := core.PerByte(float64(comp) * scales[i-1])
		d, err := fig1Transfer(trace, ftp.Recv, size, c, o)
		times[i] = d
		return err
	})
	if err != nil {
		return nil, err
	}
	store := times[0]
	for si, scale := range scales {
		fetch := times[si+1]
		res.Rows = append(res.Rows, CompAblation{
			Scale: scale, Store: store, Fetch: fetch,
			FetchRatio: fetch.Seconds() / store.Seconds(),
		})
	}
	return res, nil
}

// Format renders the sweep.
func (r *CompAblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: inbound delay compensation (measured Vb = %.1f ns/B)\n", float64(r.Measured))
	fmt.Fprintf(&b, "%-8s %-12s %-12s %-10s\n", "scale", "store", "fetch", "fetch/store")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8.2g %-12v %-12v %.4f\n", row.Scale,
			row.Store.Round(10*time.Millisecond), row.Fetch.Round(10*time.Millisecond), row.FetchRatio)
	}
	return b.String()
}

// WindowAblation is one row of the sliding-window sweep.
type WindowAblation struct {
	Window   time.Duration
	Tuples   int
	ModSend  time.Duration
	ErrorPct float64 // |mod - live| / live
}

// WindowAblationResult is the window sweep.
type WindowAblationResult struct {
	LiveSend time.Duration
	Rows     []WindowAblation
}

// AblateWindow sweeps the distillation window width on Porter and measures
// the modulated FTP-send error against the live run.
func AblateWindow(o Options) (*WindowAblationResult, error) {
	var live Result
	var comp core.PerByte
	err := forEach(o, 2, func(i int) error {
		var err error
		if i == 0 {
			live, err = RunLive(scenario.Porter, BenchFTPSend, 0, o)
		} else {
			comp, err = MeasureCompensation(o)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &WindowAblationResult{LiveSend: live.Elapsed}
	windows := []time.Duration{time.Second, 3 * time.Second, 5 * time.Second, 9 * time.Second, 15 * time.Second}
	rows := make([]WindowAblation, len(windows))
	err = forEach(o, len(windows), func(i int) error {
		w := windows[i]
		oo := o
		oo.Distill.Window = w
		dres, err := Collect(scenario.Porter, 0, oo)
		if err != nil {
			return err
		}
		mod, err := RunModulated(dres.Replay, BenchFTPSend, 0, comp, oo)
		if err != nil {
			return err
		}
		errPct := 100 * abs(mod.Elapsed.Seconds()-live.Elapsed.Seconds()) / live.Elapsed.Seconds()
		rows[i] = WindowAblation{
			Window: w, Tuples: len(dres.Replay), ModSend: mod.Elapsed, ErrorPct: errPct,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Format renders the sweep.
func (r *WindowAblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: distillation sliding-window width (Porter, FTP send)\n")
	fmt.Fprintf(&b, "live send = %v\n", r.LiveSend.Round(10*time.Millisecond))
	fmt.Fprintf(&b, "%-8s %-8s %-12s %-8s\n", "window", "tuples", "mod send", "err %")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %-8d %-12v %.1f\n", row.Window, row.Tuples,
			row.ModSend.Round(10*time.Millisecond), row.ErrorPct)
	}
	return b.String()
}
