// Buffer ablation: the paper's collection kernel keeps careful count of
// records lost to circular-buffer overruns (Section 3.1.2). This sweep
// shows why that bookkeeping matters: as the in-kernel buffer shrinks
// below the drain rate, records vanish, triplets break up, and the
// distilled trace degrades — visibly, because the losses are counted
// rather than silent.

package expt

import (
	"fmt"
	"strings"

	"tracemod/internal/capture"
	"tracemod/internal/distill"
	"tracemod/internal/pinger"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
)

// BufRow is one buffer size's collection outcome.
type BufRow struct {
	BufCap           int
	PacketsKept      int
	RecordsLost      int
	TripletsComplete int
	MeanBWMbps       float64
	DistillError     string // non-empty when distillation failed outright
}

// BufResult is the buffer-capacity ablation.
type BufResult struct {
	Rows []BufRow
}

// AblateBuffer sweeps the in-kernel record buffer capacity on identical
// Porter traversals.
func AblateBuffer(o Options) (*BufResult, error) {
	res := &BufResult{}
	for _, bufCap := range []int{8, 16, 32, 128, 1 << 16} {
		s := sim.New(o.BaseSeed + 13)
		tb := scenario.BuildWireless(s, scenario.Porter)
		dur := scenario.Porter.Profile.Duration()
		pinger.Start(s, tb.Laptop, scenario.ServerIP, dur)
		tr, err := capture.Collect(s, tb.Laptop.NIC(0), bufCap, dur, "buffer ablation")
		if err != nil {
			return nil, err
		}
		row := BufRow{
			BufCap:      bufCap,
			PacketsKept: len(tr.Packets),
			RecordsLost: tr.TotalLost(),
		}
		d, err := distill.Distill(tr, o.Distill)
		if err != nil {
			row.DistillError = err.Error()
		} else {
			row.TripletsComplete = d.TripletsComplete
			row.MeanBWMbps = d.Replay.MeanVb().BitsPerSec() / 1e6
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the ablation.
func (r *BufResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: in-kernel collection buffer capacity (Porter traversal)\n")
	fmt.Fprintf(&b, "%-8s %-10s %-10s %-10s %-10s\n", "bufcap", "kept", "lost", "triplets", "bw Mb/s")
	for _, row := range r.Rows {
		bw := fmt.Sprintf("%.3f", row.MeanBWMbps)
		if row.DistillError != "" {
			bw = "failed"
		}
		fmt.Fprintf(&b, "%-8d %-10d %-10d %-10d %-10s\n",
			row.BufCap, row.PacketsKept, row.RecordsLost, row.TripletsComplete, bw)
	}
	b.WriteString("overruns are counted, never silent: the lost column is the kernel's own accounting.\n")
	return b.String()
}
