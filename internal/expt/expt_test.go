package expt

import (
	"math"
	"testing"
	"time"

	"tracemod/internal/scenario"
)

// fastOptions keeps experiment tests quick: two trials and a smaller FTP
// payload, which preserves every structural property under test.
func fastOptions() Options {
	o := Default()
	o.Trials = 2
	o.FTPSize = 2 << 20
	return o
}

func TestWorkloadsAreFixedAcrossCalls(t *testing.T) {
	a, b := WebTraces(), WebTraces()
	if len(a) != 5 || len(b) != 5 {
		t.Fatal("web workload must have five users")
	}
	for i := range a {
		if a[i].Requests() != b[i].Requests() || a[i].TotalBytes() != b[i].TotalBytes() {
			t.Fatal("web workload must be identical across calls")
		}
	}
	ta, tb := AndrewTree(), AndrewTree()
	if len(ta.Files) != len(tb.Files) || ta.TotalBytes() != tb.TotalBytes() {
		t.Fatal("andrew tree must be identical across calls")
	}
}

func TestBenchString(t *testing.T) {
	names := map[Bench]string{BenchWeb: "web", BenchFTPSend: "ftp-send", BenchFTPRecv: "ftp-recv", BenchAndrew: "andrew"}
	for b, want := range names {
		if b.String() != want {
			t.Fatalf("%d = %q, want %q", b, b.String(), want)
		}
	}
}

func TestRunLiveDeterministicPerTrial(t *testing.T) {
	o := fastOptions()
	a, err := RunLive(scenario.Porter, BenchFTPSend, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLive(scenario.Porter, BenchFTPSend, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("same trial differed: %v vs %v", a.Elapsed, b.Elapsed)
	}
	c, err := RunLive(scenario.Porter, BenchFTPSend, 1, o)
	if err != nil {
		t.Fatal(err)
	}
	if c.Elapsed == a.Elapsed {
		t.Fatal("different trials should differ")
	}
}

func TestEthernetFasterThanWireless(t *testing.T) {
	o := fastOptions()
	eth, err := RunEthernetReference(BenchFTPSend, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	live, err := RunLive(scenario.Porter, BenchFTPSend, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	if eth.Elapsed >= live.Elapsed {
		t.Fatalf("ethernet %v should beat wireless %v", eth.Elapsed, live.Elapsed)
	}
}

func TestCollectProducesValidReplay(t *testing.T) {
	o := fastOptions()
	res, err := Collect(scenario.Porter, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Replay.Validate(); err != nil {
		t.Fatal(err)
	}
	// The replay trace must span the traversal.
	if res.Replay.TotalDuration() < scenario.Porter.Profile.Duration() {
		t.Fatalf("replay spans %v, traversal is %v", res.Replay.TotalDuration(), scenario.Porter.Profile.Duration())
	}
	bw := res.Replay.MeanVb().BitsPerSec()
	if bw < 0.8e6 || bw > 2.2e6 {
		t.Fatalf("distilled bandwidth %.2f Mb/s not WaveLAN-like", bw/1e6)
	}
}

func TestMeasureCompensationIsPhysicalPath(t *testing.T) {
	o := fastOptions()
	comp, err := MeasureCompensation(o)
	if err != nil {
		t.Fatal(err)
	}
	// The isolated Ethernet runs at 10 Mb/s -> 800 ns/B.
	if math.Abs(comp.BitsPerSec()-10e6) > 1.5e6 {
		t.Fatalf("compensation %.2f Mb/s, want ≈10", comp.BitsPerSec()/1e6)
	}
}

func TestModulatedTracksLive(t *testing.T) {
	// The headline property: a modulated run lands near its live
	// counterpart. Allow a generous band; the tables check tightness.
	o := fastOptions()
	res, err := Collect(scenario.Porter, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := MeasureCompensation(o)
	if err != nil {
		t.Fatal(err)
	}
	live, err := RunLive(scenario.Porter, BenchFTPSend, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := RunModulated(res.Replay, BenchFTPSend, 0, comp, o)
	if err != nil {
		t.Fatal(err)
	}
	ratio := mod.Elapsed.Seconds() / live.Elapsed.Seconds()
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("modulated/live = %.2f (mod %v, live %v)", ratio, mod.Elapsed, live.Elapsed)
	}
}

func TestAndrewPhasesUnderModulation(t *testing.T) {
	o := fastOptions()
	res, err := Collect(scenario.Wean, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := MeasureCompensation(o)
	mod, err := RunModulated(res.Replay, BenchAndrew, 0, comp, o)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Phases == nil {
		t.Fatal("andrew result must carry phases")
	}
	secs := mod.Phases.Seconds()
	sum := 0.0
	for _, v := range secs[:5] {
		if v <= 0 {
			t.Fatalf("phase times = %v", secs)
		}
		sum += v
	}
	if math.Abs(sum-secs[5]) > 0.01 {
		t.Fatalf("phases sum %.2f != total %.2f", sum, secs[5])
	}
}

func TestFig1Structure(t *testing.T) {
	o := fastOptions()
	r, err := Fig1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("points = %d, want 6 sizes", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Store <= 0 || p.FetchRaw <= 0 || p.FetchComp <= 0 {
			t.Fatalf("point %+v has missing transfers", p)
		}
		// Compensation must move fetch toward (or past) store relative to
		// the raw fetch.
		if p.FetchComp > p.FetchRaw {
			t.Fatalf("%dMB: compensation made fetch slower (%v -> %v)", p.SizeMB, p.FetchRaw, p.FetchComp)
		}
		// Throughput is bounded by the synthetic trace's 1.5 Mb/s.
		for _, mbps := range p.ThroughputMbps3 {
			if mbps <= 0 || mbps > 1.6 {
				t.Fatalf("%dMB: throughput %.2f Mb/s out of range", p.SizeMB, mbps)
			}
		}
	}
	// Elapsed time grows with size.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Store <= r.Points[i-1].Store {
			t.Fatal("store elapsed should grow with size")
		}
	}
	// The slow-network check ran and is much slower than WaveLAN.
	if r.SlowStore < 4*r.Points[0].Store {
		t.Fatalf("slow-net store %v should dwarf wavelan %v", r.SlowStore, r.Points[0].Store)
	}
	if r.Format() == "" {
		t.Fatal("format must render")
	}
}

func TestFigScenarioMotion(t *testing.T) {
	o := fastOptions()
	fig, err := FigScenario(scenario.Wean, o)
	if err != nil {
		t.Fatal(err)
	}
	if !fig.Motion || len(fig.Points) != len(scenario.Wean.Profile.Segments) {
		t.Fatalf("points = %d, want one per leg", len(fig.Points))
	}
	// The elevator leg (z4) must show the worst loss and bandwidth.
	var elevator, walk *LegPoint
	for i := range fig.Points {
		switch fig.Points[i].Label {
		case "z4":
			elevator = &fig.Points[i]
		case "z0":
			walk = &fig.Points[i]
		}
	}
	if elevator == nil || walk == nil {
		t.Fatalf("legs missing: %+v", fig.Points)
	}
	if elevator.LossPct.Max < 20 {
		t.Fatalf("elevator loss %v, want atrocious", elevator.LossPct)
	}
	if elevator.BandwidthKbps.Min > walk.BandwidthKbps.Min {
		t.Fatal("elevator bandwidth should collapse below the walk's")
	}
	if elevator.Signal.Min > 8 {
		t.Fatalf("elevator signal %v, want near-noise", elevator.Signal)
	}
	if fig.Format() == "" {
		t.Fatal("format must render")
	}
}

func TestFigScenarioStationary(t *testing.T) {
	o := fastOptions()
	fig, err := FigScenario(scenario.Chatterbox, o)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Motion || fig.SignalH == nil || fig.LossH == nil {
		t.Fatal("stationary scenario must produce histograms")
	}
	if fig.SignalH.N == 0 || fig.LatencyH.N == 0 {
		t.Fatal("histograms must have observations")
	}
	// Chatterbox signal is consistently high (~18).
	var lo int
	for i := 0; i < 6; i++ { // bins below ~15
		lo += fig.SignalH.Counts[i]
	}
	if frac := float64(lo) / float64(fig.SignalH.N); frac > 0.2 {
		t.Fatalf("%.0f%% of signal samples below 15; Chatterbox should be high-signal", frac*100)
	}
	if fig.Format() == "" {
		t.Fatal("format must render")
	}
}

func TestFig7Shape(t *testing.T) {
	// Structural check on a reduced table (2 trials, 2MB transfers):
	// every scenario is slower than Ethernet, and formatting works.
	o := fastOptions()
	tbl, err := Fig7FTP(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row.Send.Real.Mean <= tbl.EthernetSend.Mean {
			t.Fatalf("%s live send %.1fs should exceed ethernet %.1fs",
				row.Scenario, row.Send.Real.Mean, tbl.EthernetSend.Mean)
		}
		if row.Send.Mod.Mean <= 0 || row.Recv.Mod.Mean <= 0 {
			t.Fatalf("%s missing modulated results", row.Scenario)
		}
	}
	if tbl.Format() == "" {
		t.Fatal("format must render")
	}
}

func TestAblateCompensationShape(t *testing.T) {
	o := fastOptions()
	r, err := AblateCompensation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Fetch elapsed decreases monotonically as compensation grows.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Fetch > r.Rows[i-1].Fetch {
			t.Fatalf("fetch not monotone in compensation: %+v", r.Rows)
		}
	}
	if r.Format() == "" {
		t.Fatal("format must render")
	}
}

func TestCellCriteria(t *testing.T) {
	c := Cell{}
	c.Real.Mean, c.Real.Std = 100, 5
	c.Mod.Mean, c.Mod.Std = 104, 2
	if !c.Agrees() {
		t.Fatal("4 <= 7 should agree")
	}
	if math.Abs(c.Sigma()-4.0/7.0) > 1e-9 {
		t.Fatalf("sigma = %v", c.Sigma())
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Default()
	if o.Trials != 4 || o.Tick != 10*time.Millisecond {
		t.Fatalf("defaults = %+v", o)
	}
	if o.Distill.Window != 5*time.Second || o.Distill.Step != time.Second {
		t.Fatalf("distill defaults = %+v", o.Distill)
	}
	if o.FTPSize != 10<<20 {
		t.Fatalf("ftp size = %d", o.FTPSize)
	}
}

func TestAblateClockShape(t *testing.T) {
	o := fastOptions()
	r, err := AblateClock(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// 100ppm skew must be essentially free (|err| < 0.1%).
	ppm := r.Rows[1]
	if math.Abs(ppm.BWErrPct) > 0.1 || math.Abs(ppm.FErrPct) > 0.1 {
		t.Fatalf("100ppm skew err = %.3f%%/%.3f%%, want ≈0", ppm.BWErrPct, ppm.FErrPct)
	}
	// 1% skew errs about 1%.
	pct := r.Rows[2]
	if math.Abs(pct.BWErrPct) > 2.5 {
		t.Fatalf("1%% skew bw err = %.3f%%", pct.BWErrPct)
	}
	// Coarse granularity forces corrections.
	if r.Rows[4].Corrections <= r.Rows[0].Corrections {
		t.Fatal("10ms granularity should force more negative-solution corrections")
	}
	if r.Format() == "" {
		t.Fatal("format must render")
	}
}
