package replay

import (
	"testing"
	"time"

	"tracemod/internal/core"
)

func famTrace(f time.Duration, vb core.PerByte, loss float64, dur time.Duration) core.Trace {
	return Constant(core.DelayParams{F: f, Vb: vb, Vr: 10}, loss, dur, time.Second)
}

func TestEnvelopeOrderStatistics(t *testing.T) {
	fam := Family{
		famTrace(1*time.Millisecond, 1000, 0.01, 10*time.Second),
		famTrace(3*time.Millisecond, 3000, 0.03, 10*time.Second),
		famTrace(9*time.Millisecond, 9000, 0.09, 10*time.Second),
	}
	env, err := fam.Envelope(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []core.Trace{env.Optimistic, env.Typical, env.Pessimistic} {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if tr.TotalDuration() != 10*time.Second {
			t.Fatalf("duration = %v", tr.TotalDuration())
		}
	}
	if env.Optimistic[0].F != time.Millisecond || env.Optimistic[0].Vb != 1000 {
		t.Fatalf("optimistic = %+v", env.Optimistic[0])
	}
	if env.Typical[0].F != 3*time.Millisecond || env.Typical[0].L != 0.03 {
		t.Fatalf("typical = %+v", env.Typical[0])
	}
	if env.Pessimistic[0].F != 9*time.Millisecond || env.Pessimistic[0].Vb != 9000 {
		t.Fatalf("pessimistic = %+v", env.Pessimistic[0])
	}
}

func TestEnvelopeUnequalLengthsClamp(t *testing.T) {
	fam := Family{
		famTrace(2*time.Millisecond, 2000, 0, 5*time.Second),
		famTrace(4*time.Millisecond, 4000, 0, 10*time.Second),
	}
	env, err := fam.Envelope(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if env.Pessimistic.TotalDuration() != 10*time.Second {
		t.Fatalf("span = %v, want the longest member", env.Pessimistic.TotalDuration())
	}
	// Past the short trace's end its final tuple still participates.
	late := env.Optimistic.At(8*time.Second, false)
	if late.F != 2*time.Millisecond {
		t.Fatalf("late optimistic F = %v (short trace should clamp)", late.F)
	}
}

func TestEnvelopeMedianEvenCount(t *testing.T) {
	fam := Family{
		famTrace(2*time.Millisecond, 2000, 0.02, 4*time.Second),
		famTrace(4*time.Millisecond, 4000, 0.04, 4*time.Second),
	}
	env, err := fam.Envelope(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if env.Typical[0].F != 3*time.Millisecond {
		t.Fatalf("even-count median F = %v, want interpolated 3ms", env.Typical[0].F)
	}
}

func TestEnvelopeErrors(t *testing.T) {
	if _, err := (Family{}).Envelope(time.Second); err != ErrEmptyFamily {
		t.Fatalf("err = %v", err)
	}
	bad := Family{core.Trace{{D: -1}}}
	if _, err := bad.Envelope(time.Second); err == nil {
		t.Fatal("invalid member must be rejected")
	}
}

func TestEnvelopeOrderingInvariant(t *testing.T) {
	// For every instant: optimistic <= typical <= pessimistic in every
	// delay parameter.
	fam := Family{
		WaveLANLike(30 * time.Second),
		SlowNetLike(30 * time.Second),
		famTrace(5*time.Millisecond, 5000, 0.05, 30*time.Second),
	}
	env, err := fam.Envelope(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := range env.Typical {
		o, ty, pe := env.Optimistic[i], env.Typical[i], env.Pessimistic[i]
		if o.F > ty.F || ty.F > pe.F {
			t.Fatalf("tuple %d F ordering broken: %v %v %v", i, o.F, ty.F, pe.F)
		}
		if o.Vb > ty.Vb || ty.Vb > pe.Vb {
			t.Fatalf("tuple %d Vb ordering broken", i)
		}
		if o.L > ty.L || ty.L > pe.L {
			t.Fatalf("tuple %d L ordering broken", i)
		}
	}
}
