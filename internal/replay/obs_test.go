package replay

import (
	"bytes"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/obs"
)

func TestPackageMetricsCountTuples(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	tr := WaveLANLike(10 * time.Second) // 10 synthetic tuples via Constant
	if got := reg.Counter("tracemod_replay_tuples_synthetic_total", "").Load(); got != 10 {
		t.Fatalf("synthetic counter = %d, want 10", got)
	}
	Ramp(core.DelayParams{F: time.Millisecond}, core.DelayParams{F: 2 * time.Millisecond}, 0, 5*time.Second, time.Second)
	if got := reg.Counter("tracemod_replay_tuples_synthetic_total", "").Load(); got != 15 {
		t.Fatalf("synthetic counter after ramp = %d, want 15", got)
	}

	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("tracemod_replay_tuples_written_total", "").Load(); got != 10 {
		t.Fatalf("written counter = %d, want 10", got)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("tracemod_replay_tuples_read_total", "").Load(); got != 10 {
		t.Fatalf("read counter = %d, want 10", got)
	}
	if got := reg.Counter("tracemod_replay_traces_read_total", "").Load(); got != 1 {
		t.Fatalf("traces counter = %d, want 1", got)
	}

	if _, err := Read(bytes.NewBufferString("not a trace")); err == nil {
		t.Fatal("expected parse error")
	}
	if got := reg.Counter("tracemod_replay_read_errors_total", "").Load(); got != 1 {
		t.Fatalf("error counter = %d, want 1", got)
	}
}

func TestMetricsDisabledByDefault(t *testing.T) {
	// With no registry installed the generators still work (nil-safe
	// counters) — this is the path every pre-existing caller takes.
	tr := WaveLANLike(3 * time.Second)
	if len(tr) != 3 {
		t.Fatalf("got %d tuples", len(tr))
	}
}
